package exp

import (
	"math"
	"os"
	"testing"

	"tensat"
	"tensat/internal/cost"
	"tensat/internal/egraph"
	"tensat/internal/rewrite"
	"tensat/internal/tensor"
)

func TestProbeInfeasible(t *testing.T) {
	if os.Getenv("TENSAT_DIAG") == "" {
		t.Skip("diagnostics")
	}
	g0 := mustModel(t, "SqueezeNet", Default())
	res, err := tensat.Optimize(g0, tensat.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.Graph.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	g, err := tensor.UnmarshalGraph(data)
	if err != nil {
		t.Fatal(err)
	}
	c := Default()
	c.NodeLimit = 3000
	ex, err := c.explore(g, 1, rewrite.FilterEfficient)
	if err != nil {
		t.Fatal(err)
	}
	model := cost.NewT4()
	empty := 0
	ex.G.Classes(func(cls *egraph.Class) {
		ok := false
		for i, n := range cls.Nodes {
			if ex.Filtered.Has(cls.Stamps[i]) {
				continue
			}
			args := make([]*tensor.Meta, len(n.Children))
			bad := false
			for k, ch := range n.Children {
				args[k] = rewrite.ClassMeta(ex.G, ch)
				if args[k] == nil {
					bad = true
				}
			}
			if bad {
				continue
			}
			if !math.IsInf(model.NodeCost(tensor.Op(n.Op), n.Int, n.Str, args), 1) {
				ok = true
				break
			}
		}
		if !ok {
			empty++
			if empty <= 5 {
				for i, n := range cls.Nodes {
					t.Logf("class e%d node %d: %s filtered=%v", cls.ID, i, ex.G.NodeString(n), ex.Filtered.Has(cls.Stamps[i]))
				}
			}
		}
	})
	t.Logf("classes with no finite node: %d of %d", empty, ex.G.ClassCount())
}
