package exp

import (
	"fmt"
	"time"

	"tensat"
	"tensat/internal/cost"
	"tensat/internal/extract"
	"tensat/internal/ilp"
	"tensat/internal/models"
	"tensat/internal/rewrite"
	"tensat/internal/rules"
)

// Table1Row compares optimization time and achieved speedup, TASO vs
// TENSAT (paper Table 1).
type Table1Row struct {
	Model                      string
	TasoTime, TensatTime       time.Duration
	TasoSpeedup, TensatSpeedup float64 // percent
}

// Table1 regenerates Table 1.
func (c Config) Table1() ([]Table1Row, error) {
	runs, err := c.RunAll()
	if err != nil {
		return nil, err
	}
	rows := make([]Table1Row, 0, len(runs))
	for _, r := range runs {
		rows = append(rows, Table1Row{
			Model:         r.Model,
			TasoTime:      r.TasoTotal,
			TensatTime:    r.TensatTime,
			TasoSpeedup:   r.TasoSpeedup,
			TensatSpeedup: r.TensatSpeedup,
		})
	}
	return rows, nil
}

// FormatTable1 renders Table 1 rows.
func FormatTable1(rows []Table1Row) string {
	t := newTable("Model", "TASO time", "TENSAT time", "TASO speedup", "TENSAT speedup")
	for _, r := range rows {
		t.row(r.Model, fmtDur(r.TasoTime), fmtDur(r.TensatTime),
			fmt.Sprintf("%.1f%%", r.TasoSpeedup), fmt.Sprintf("%.1f%%", r.TensatSpeedup))
	}
	return "Table 1: optimization time and runtime speedup, TASO vs TENSAT\n" + t.String()
}

// Table3Row is TENSAT's optimization-time breakdown (paper Table 3).
type Table3Row struct {
	Model                   string
	Exploration, Extraction time.Duration
}

// Table3 regenerates Table 3.
func (c Config) Table3() ([]Table3Row, error) {
	var rows []Table3Row
	for _, m := range models.Benchmarks() {
		g := m.Build(c.Scale)
		res, err := tensat.Optimize(g, c.tensatOptions(kmultiFor(m.Name)))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.Name, err)
		}
		rows = append(rows, Table3Row{Model: m.Name, Exploration: res.ExploreTime, Extraction: res.ExtractTime})
	}
	return rows, nil
}

// FormatTable3 renders Table 3 rows.
func FormatTable3(rows []Table3Row) string {
	t := newTable("Model", "Exploration", "Extraction")
	for _, r := range rows {
		t.row(r.Model, fmtDur(r.Exploration), fmtDur(r.Extraction))
	}
	return "Table 3: optimization time breakdown for TENSAT\n" + t.String()
}

// Table4Row compares greedy and ILP extraction by optimized-graph
// runtime (paper Table 4: BERT, NasRNN, NasNet-A, k_multi = 1).
type Table4Row struct {
	Model                 string
	Original, Greedy, ILP float64 // simulated runtime (us)
}

// Table4Models lists the models the paper uses for Table 4.
var Table4Models = []string{"BERT", "NasRNN", "NasNet-A"}

// Table4 regenerates Table 4.
func (c Config) Table4() ([]Table4Row, error) {
	_, rt := c.deviceAndRuntime()
	var rows []Table4Row
	for _, name := range Table4Models {
		m, err := models.ByName(name)
		if err != nil {
			return nil, err
		}
		g := m.Build(c.Scale)
		ex, err := c.explore(g, 1, rewrite.FilterEfficient)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		greedy, err := extract.Greedy(ex, cost.NewT4())
		if err != nil {
			return nil, fmt.Errorf("%s greedy: %w", name, err)
		}
		ilpRes, err := c.ilpExtract(ex, false, ilp.TopoReal)
		if err != nil {
			return nil, fmt.Errorf("%s ilp: %w", name, err)
		}
		// One shared measurement salt: identical graphs must measure
		// identically for the greedy-vs-ILP comparison to be meaningful.
		orig, _ := c.measureRuntime(rt, g, 0)
		gm, _ := c.measureRuntime(rt, greedy.Graph, 0)
		im, _ := c.measureRuntime(rt, ilpRes.Graph, 0)
		rows = append(rows, Table4Row{Model: name, Original: orig, Greedy: gm, ILP: im})
	}
	return rows, nil
}

// FormatTable4 renders Table 4 rows.
func FormatTable4(rows []Table4Row) string {
	t := newTable("Model", "Original", "Greedy", "ILP")
	for _, r := range rows {
		t.row(r.Model,
			fmt.Sprintf("%.1fus", r.Original),
			fmt.Sprintf("%.1fus", r.Greedy),
			fmt.Sprintf("%.1fus", r.ILP))
	}
	return "Table 4: greedy vs ILP extraction, simulated graph runtime\n" + t.String()
}

// Table5Row compares ILP solve time with and without cycle
// constraints (paper Table 5: real/int topological variables).
type Table5Row struct {
	Model    string
	KMulti   int
	WithReal time.Duration
	WithInt  time.Duration
	Without  time.Duration
	// TimedOut flags per column (paper: ">3600" entries).
	RealTimedOut, IntTimedOut, WithoutTimedOut bool
}

// Table5 regenerates Table 5 for k_multi in kmultis (paper: 1 and 2).
// The cycle-constrained solves are expected to hit their timeout on
// larger e-graphs — that is the experiment's point (the paper reports
// ">3600" cells) — so this experiment clamps the e-graph size and the
// per-solve timeout to keep the wall-clock bounded.
func (c Config) Table5(kmultis ...int) ([]Table5Row, error) {
	if len(kmultis) == 0 {
		kmultis = []int{1, 2}
	}
	if c.NodeLimit > 3000 {
		c.NodeLimit = 3000
	}
	if c.ILPTimeout > 20*time.Second {
		c.ILPTimeout = 20 * time.Second
	}
	var rows []Table5Row
	for _, name := range Table4Models {
		m, err := models.ByName(name)
		if err != nil {
			return nil, err
		}
		g := m.Build(c.Scale)
		for _, k := range kmultis {
			row := Table5Row{Model: name, KMulti: k}
			// With cycle constraints: explore without filtering.
			exNone, err := c.explore(g, k, rewrite.FilterNone)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			for _, topo := range []ilp.TopoMode{ilp.TopoReal, ilp.TopoInt} {
				res, err := c.ilpExtract(exNone, true, topo)
				dur, timedOut := c.ILPTimeout, true
				if err == nil {
					dur, timedOut = res.ILP.Time, res.ILP.TimedOut
				}
				if topo == ilp.TopoReal {
					row.WithReal, row.RealTimedOut = dur, timedOut
				} else {
					row.WithInt, row.IntTimedOut = dur, timedOut
				}
			}
			// Without cycle constraints: efficient filtering first.
			exFilt, err := c.explore(g, k, rewrite.FilterEfficient)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			res, err := c.ilpExtract(exFilt, false, ilp.TopoReal)
			if err != nil {
				row.Without, row.WithoutTimedOut = c.ILPTimeout, true
			} else {
				row.Without, row.WithoutTimedOut = res.ILP.Time, res.ILP.TimedOut
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatTable5 renders Table 5 rows.
func FormatTable5(rows []Table5Row) string {
	t := newTable("Model", "k_multi", "With cycle (real)", "With cycle (int)", "Without cycle")
	cell := func(d time.Duration, timedOut bool) string {
		if timedOut {
			return ">" + fmtDur(d)
		}
		return fmtDur(d)
	}
	for _, r := range rows {
		t.row(r.Model, fmt.Sprintf("%d", r.KMulti),
			cell(r.WithReal, r.RealTimedOut),
			cell(r.WithInt, r.IntTimedOut),
			cell(r.Without, r.WithoutTimedOut))
	}
	return "Table 5: ILP solve time with vs without cycle constraints\n" + t.String()
}

// Table6Row compares vanilla and efficient cycle filtering by
// exploration time (paper Table 6).
type Table6Row struct {
	Model              string
	KMulti             int
	Vanilla, Efficient time.Duration
	// Timeout flags correspond to the paper's ">3600" cells.
	VanillaTimedOut, EfficientTimedOut bool
}

// Table6 regenerates Table 6 for k_multi in kmultis (paper: 1 and 2).
// Vanilla filtering is expected to blow up at k_multi = 2 — the
// experiment's point — so exploration is clamped (e-graph size 3000,
// 60 s timeout) and overruns are flagged, like the paper's ">3600".
func (c Config) Table6(kmultis ...int) ([]Table6Row, error) {
	if len(kmultis) == 0 {
		kmultis = []int{1, 2}
	}
	if c.NodeLimit > 3000 {
		c.NodeLimit = 3000
	}
	var rows []Table6Row
	for _, name := range Table4Models {
		m, err := models.ByName(name)
		if err != nil {
			return nil, err
		}
		g := m.Build(c.Scale)
		for _, k := range kmultis {
			run := func(f rewrite.FilterMode) (time.Duration, bool, error) {
				r := rewrite.NewRunner(rules.Default())
				r.Filter = f
				r.Limits = rewrite.Limits{
					MaxNodes: c.NodeLimit,
					MaxIters: c.IterLimit,
					KMulti:   k,
					Timeout:  time.Minute,
				}
				ex, err := r.Run(g)
				if err != nil {
					return 0, false, err
				}
				return ex.Stats.ExploreTime, ex.Stats.HitTimeout, nil
			}
			vt, vto, err := run(rewrite.FilterVanilla)
			if err != nil {
				return nil, fmt.Errorf("%s vanilla: %w", name, err)
			}
			et, eto, err := run(rewrite.FilterEfficient)
			if err != nil {
				return nil, fmt.Errorf("%s efficient: %w", name, err)
			}
			rows = append(rows, Table6Row{
				Model: name, KMulti: k,
				Vanilla: vt, VanillaTimedOut: vto,
				Efficient: et, EfficientTimedOut: eto,
			})
		}
	}
	return rows, nil
}

// FormatTable6 renders Table 6 rows.
func FormatTable6(rows []Table6Row) string {
	t := newTable("Model", "k_multi", "Vanilla", "Efficient")
	cell := func(d time.Duration, timedOut bool) string {
		if timedOut {
			return ">" + fmtDur(d)
		}
		return fmtDur(d)
	}
	for _, r := range rows {
		t.row(r.Model, fmt.Sprintf("%d", r.KMulti),
			cell(r.Vanilla, r.VanillaTimedOut), cell(r.Efficient, r.EfficientTimedOut))
	}
	return "Table 6: vanilla vs efficient cycle filtering, exploration time\n" + t.String()
}
