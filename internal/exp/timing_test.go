package exp

import (
	"os"
	"testing"
	"time"

	"tensat"
	"tensat/internal/cost"
	"tensat/internal/rules"
	"tensat/internal/taso"
)

func TestTimingBreakdown(t *testing.T) {
	if os.Getenv("TENSAT_DIAG") == "" {
		t.Skip("diagnostics; set TENSAT_DIAG=1 to run")
	}
	c := quick()
	g := mustModel(t, "NasRNN", c)

	t0 := time.Now()
	res, err := tensat.Optimize(g, c.tensatOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tensat: total=%v explore=%v extract=%v enodes=%d",
		time.Since(t0), res.ExploreTime, res.ExtractTime, res.ENodes)

	t1 := time.Now()
	tres, err := taso.Search(g, rules.Default(), cost.NewT4(), taso.Options{
		N: c.TasoN, Alpha: c.TasoAlpha, Timeout: time.Hour, MaxMatchesPerRule: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("taso: total=%v iters=%d candidates=%d", time.Since(t1), tres.Iterations, tres.Candidates)
}
