package exp

import (
	"fmt"
	"time"

	"tensat"
	"tensat/internal/cost"
	"tensat/internal/models"
	"tensat/internal/rules"
	"tensat/internal/taso"
)

// Figure4Row is one bar pair of Figure 4: mean speedup with standard
// error, per optimizer. Like the paper, Inception-v3 appears twice
// (k_multi = 1 and 2).
type Figure4Row struct {
	Model                    string
	TasoSpeedup, TasoErr     float64
	TensatSpeedup, TensatErr float64
}

// Figure4 regenerates the Figure 4 series.
func (c Config) Figure4() ([]Figure4Row, error) {
	runs, err := c.RunAll()
	if err != nil {
		return nil, err
	}
	var rows []Figure4Row
	for _, r := range runs {
		rows = append(rows, Figure4Row{
			Model:         r.Model,
			TasoSpeedup:   r.TasoSpeedup,
			TasoErr:       errPercent(r.OrigRuntime, r.TasoRuntime, r.TasoStderr),
			TensatSpeedup: r.TensatSpeedup,
			TensatErr:     errPercent(r.OrigRuntime, r.TensatRuntime, r.TensatStderr),
		})
	}
	k2, err := c.inceptionK2()
	if err != nil {
		return nil, err
	}
	rows = append(rows, *k2)
	return rows, nil
}

// inceptionK2 runs the paper's extra Inception-v3 k_multi=2 point.
func (c Config) inceptionK2() (*Figure4Row, error) {
	m, err := models.ByName("Inception-v3")
	if err != nil {
		return nil, err
	}
	g := m.Build(c.Scale)
	_, rt := c.deviceAndRuntime()
	res, err := tensat.Optimize(g, c.tensatOptions(2))
	if err != nil {
		return nil, err
	}
	orig, _ := c.measureRuntime(rt, g, 0)
	mean, stderr := c.measureRuntime(rt, res.Graph, 1)
	return &Figure4Row{
		Model:         "Incept. k=2",
		TensatSpeedup: cost.SpeedupPercent(orig, mean),
		TensatErr:     errPercent(orig, mean, stderr),
	}, nil
}

// errPercent propagates a runtime stderr into speedup-percent units.
func errPercent(orig, opt, stderr float64) float64 {
	if opt <= 0 {
		return 0
	}
	return orig / (opt * opt) * stderr * 100
}

// FormatFigure4 renders the Figure 4 series.
func FormatFigure4(rows []Figure4Row) string {
	t := newTable("Model", "TASO speedup", "TENSAT speedup")
	for _, r := range rows {
		taso := "-"
		if r.Model != "Incept. k=2" {
			taso = fmt.Sprintf("%.1f%% ± %.2f", r.TasoSpeedup, r.TasoErr)
		}
		t.row(r.Model, taso, fmt.Sprintf("%.1f%% ± %.2f", r.TensatSpeedup, r.TensatErr))
	}
	return "Figure 4: speedup percentage of optimized graphs (mean ± stderr)\n" + t.String()
}

// Figure5Row is one group of Figure 5: optimizer times (log scale in
// the paper) plus the TASO-total / TENSAT ratio annotation.
type Figure5Row struct {
	Model     string
	TasoTotal time.Duration
	TasoBest  time.Duration
	Tensat    time.Duration
	Ratio     float64 // TasoTotal / Tensat
}

// Figure5 regenerates the Figure 5 series.
func (c Config) Figure5() ([]Figure5Row, error) {
	runs, err := c.RunAll()
	if err != nil {
		return nil, err
	}
	var rows []Figure5Row
	for _, r := range runs {
		ratio := 0.0
		if r.TensatTime > 0 {
			ratio = float64(r.TasoTotal) / float64(r.TensatTime)
		}
		rows = append(rows, Figure5Row{
			Model:     r.Model,
			TasoTotal: r.TasoTotal,
			TasoBest:  r.TasoBest,
			Tensat:    r.TensatTime,
			Ratio:     ratio,
		})
	}
	return rows, nil
}

// FormatFigure5 renders the Figure 5 series.
func FormatFigure5(rows []Figure5Row) string {
	t := newTable("Model", "TASO total", "TASO best", "TENSAT", "speedup vs TASO total")
	for _, r := range rows {
		t.row(r.Model, fmtDur(r.TasoTotal), fmtDur(r.TasoBest), fmtDur(r.Tensat),
			fmt.Sprintf("%.1fx", r.Ratio))
	}
	return "Figure 5: optimization time (TASO total / TASO best / TENSAT)\n" + t.String()
}

// CurvePoint is one point of a speedup-over-optimizer-time curve.
type CurvePoint struct {
	At      time.Duration
	Speedup float64 // percent
}

// Figure6 regenerates the Figure 6 tradeoff curves on Inception-v3:
// best-so-far speedup against optimizer time for both systems. The
// TASO curve is its search trace; the TENSAT curve grows the search
// budget (iterations, then k_multi).
func (c Config) Figure6() (tensatCurve, tasoCurve []CurvePoint, err error) {
	m, err := models.ByName("Inception-v3")
	if err != nil {
		return nil, nil, err
	}
	g := m.Build(c.Scale)
	_, rt := c.deviceAndRuntime()
	orig, _ := c.measureRuntime(rt, g, 0)

	// TASO: replay the improvement trace.
	tres, err := taso.Search(g, rules.Default(), cost.NewT4(), taso.Options{
		N: c.TasoN, Alpha: c.TasoAlpha, Timeout: time.Minute,
	})
	if err != nil {
		return nil, nil, err
	}
	for _, p := range tres.Trace {
		// Re-measure the trace's cost in runtime units via ratio; the
		// trace stores optimizer-model cost, close enough for a curve,
		// but the end point is re-measured exactly below.
		tasoCurve = append(tasoCurve, CurvePoint{At: p.At, Speedup: cost.SpeedupPercent(tres.Trace[0].Cost, p.Cost)})
	}
	final, _ := c.measureRuntime(rt, tres.Graph, 2)
	tasoCurve = append(tasoCurve, CurvePoint{At: tres.TotalTime, Speedup: cost.SpeedupPercent(orig, final)})

	// TENSAT: increasing budgets.
	type budget struct {
		iters, kmulti int
	}
	budgets := []budget{{1, 0}, {2, 1}, {c.IterLimit, 1}, {c.IterLimit, 2}}
	elapsed := time.Duration(0)
	for _, bud := range budgets {
		opt := c.tensatOptions(bud.kmulti)
		opt.IterLimit = bud.iters
		res, err := tensat.Optimize(g, opt)
		if err != nil {
			return nil, nil, err
		}
		mean, _ := c.measureRuntime(rt, res.Graph, 3)
		elapsed += res.ExploreTime + res.ExtractTime
		tensatCurve = append(tensatCurve, CurvePoint{At: elapsed, Speedup: cost.SpeedupPercent(orig, mean)})
	}
	return tensatCurve, tasoCurve, nil
}

// FormatFigure6 renders both tradeoff curves.
func FormatFigure6(tensatCurve, tasoCurve []CurvePoint) string {
	t := newTable("System", "Optimizer time", "Speedup")
	for _, p := range tasoCurve {
		t.row("TASO", fmtDur(p.At), fmt.Sprintf("%.1f%%", p.Speedup))
	}
	for _, p := range tensatCurve {
		t.row("TENSAT", fmtDur(p.At), fmt.Sprintf("%.1f%%", p.Speedup))
	}
	return "Figure 6: speedup over optimization time, Inception-v3\n" + t.String()
}

// Figure7Row is one (model, k_multi) point of Figure 7: speedup,
// optimizer time and final e-graph size.
type Figure7Row struct {
	Model   string
	KMulti  int
	Speedup float64
	Time    time.Duration
	ENodes  int
	// TimedOut marks ILP timeout (the paper's k_multi = 3 cases).
	TimedOut bool
}

// Figure7 regenerates Figure 7 over k_multi = 0..maxK for all models.
// Large k_multi is where e-graphs grow doubly exponentially (§6.4), so
// runs are clamped (10k nodes, 60 s exploration) — the paper similarly
// reports ILP timeouts at k_multi = 3.
func (c Config) Figure7(maxK int) ([]Figure7Row, error) {
	if maxK <= 0 {
		maxK = 3
	}
	if c.NodeLimit > 10000 {
		c.NodeLimit = 10000
	}
	if c.ILPTimeout > 30*time.Second {
		c.ILPTimeout = 30 * time.Second
	}
	_, rt := c.deviceAndRuntime()
	var rows []Figure7Row
	for _, m := range models.Benchmarks() {
		g := m.Build(c.Scale)
		orig, _ := c.measureRuntime(rt, g, 0)
		for k := 0; k <= maxK; k++ {
			opt := c.tensatOptions(k)
			opt.ExploreTimeout = time.Minute
			res, err := tensat.Optimize(g, opt)
			row := Figure7Row{Model: m.Name, KMulti: k}
			if err != nil {
				// ILP timeout at large k_multi mirrors the paper.
				row.TimedOut = true
				rows = append(rows, row)
				continue
			}
			mean, _ := c.measureRuntime(rt, res.Graph, uint64(k))
			row.Speedup = cost.SpeedupPercent(orig, mean)
			row.Time = res.ExploreTime + res.ExtractTime
			row.ENodes = res.ENodes
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatFigure7 renders the Figure 7 series.
func FormatFigure7(rows []Figure7Row) string {
	t := newTable("Model", "k_multi", "Speedup", "Optimizer time", "#e-nodes")
	for _, r := range rows {
		if r.TimedOut {
			t.row(r.Model, fmt.Sprintf("%d", r.KMulti), "timeout", "timeout", "-")
			continue
		}
		t.row(r.Model, fmt.Sprintf("%d", r.KMulti),
			fmt.Sprintf("%.1f%%", r.Speedup), fmtDur(r.Time), fmt.Sprintf("%d", r.ENodes))
	}
	return "Figure 7: effect of k_multi on speedup, time, and e-graph size\n" + t.String()
}
