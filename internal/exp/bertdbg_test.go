package exp

import (
	"os"
	"testing"
	"time"

	"tensat/internal/cost"
	"tensat/internal/extract"
	"tensat/internal/ilp"
	"tensat/internal/rewrite"
	"tensat/internal/tensor"
)

func TestDebugBERT(t *testing.T) {
	if os.Getenv("TENSAT_DIAG") == "" {
		t.Skip("diagnostics")
	}
	c := quick()
	c.NodeLimit = 20000
	g := mustModel(t, "BERT", c)
	model := cost.NewT4()
	_, rt := c.deviceAndRuntime()
	ex, err := c.explore(g, 1, rewrite.FilterEfficient)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("explored: %+v", ex.Stats)
	gr, _ := extract.Greedy(ex, model)
	ir, err := extract.ILP(ex, model, extract.ILPOptions{Timeout: 30 * time.Second, TopoMode: ilp.TopoReal})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("orig:   dev=%.1f rt=%.1f %v", cost.GraphCost(model, g), cost.GraphCost(rt, g), tensor.HistogramString(g.OpHistogram()))
	t.Logf("greedy: dev=%.1f rt=%.1f %v", cost.GraphCost(model, gr.Graph), cost.GraphCost(rt, gr.Graph), tensor.HistogramString(gr.Graph.OpHistogram()))
	s2 := "x"
	_ = s2
	t.Logf("ilp:    dev=%.1f rt=%.1f solverCost=%.1f seed=%.1f commits=%d optimal=%v %v",
		cost.GraphCost(model, ir.Graph), cost.GraphCost(rt, ir.Graph), ir.ILP.Cost, ir.ILP.SeedCost, ir.ILP.ImproveCommits, ir.ILP.Optimal, tensor.HistogramString(ir.Graph.OpHistogram()))
}
