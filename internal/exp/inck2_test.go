package exp

import "testing"

func TestInceptionK2Extraction(t *testing.T) {
	c := benchLikeConfig()
	if _, err := c.inceptionK2(); err != nil {
		t.Fatal(err)
	}
}

func benchLikeConfig() Config {
	c := Default()
	c.NodeLimit = 10000
	c.IterLimit = 10
	c.TasoN = 15
	return c
}
