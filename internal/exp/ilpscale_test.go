package exp

import (
	"os"
	"testing"
	"time"

	"tensat/internal/cost"
	"tensat/internal/extract"
	"tensat/internal/ilp"
	"tensat/internal/rewrite"
)

func TestILPScaling(t *testing.T) {
	if os.Getenv("TENSAT_DIAG") == "" {
		t.Skip("diagnostics; set TENSAT_DIAG=1 to run")
	}
	c := quick()
	g := mustModel(t, "NasRNN", c)
	for _, limit := range []int{500, 1000, 2000, 4000} {
		c.NodeLimit = limit
		ex, err := c.explore(g, 1, rewrite.FilterEfficient)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		res, err := extract.ILP(ex, cost.NewT4(), extract.ILPOptions{Timeout: 20 * time.Second, TopoMode: ilp.TopoReal})
		if err != nil {
			t.Logf("limit=%d enodes=%d classes=%d: ERR %v after %v", limit, ex.Stats.ENodes, ex.Stats.EClasses, err, time.Since(start))
			continue
		}
		t.Logf("limit=%d enodes=%d classes=%d: cost=%.1f explored=%d optimal=%v in %v",
			limit, ex.Stats.ENodes, ex.Stats.EClasses, res.Cost, res.ILP.Explored, res.ILP.Optimal, res.ILP.Time)
	}
}
