package exp

import (
	"strings"
	"testing"
	"time"

	"tensat/internal/models"
	"tensat/internal/tensor"
)

// quick returns a configuration small enough for unit tests.
func quick() Config {
	c := Default()
	c.TasoN = 8
	c.NodeLimit = 6000
	c.IterLimit = 6
	c.ILPTimeout = 30 * time.Second
	return c
}

func TestRunModelNasRNN(t *testing.T) {
	r, err := quick().RunModel("NasRNN")
	if err != nil {
		t.Fatal(err)
	}
	if r.TensatSpeedup <= 0 {
		t.Fatalf("TENSAT found no speedup on NasRNN: %+v", r)
	}
	// The paper's headline: TENSAT at least matches TASO's speedup on
	// NasRNN while searching much faster.
	if r.TensatSpeedup < r.TasoSpeedup-1e-9 {
		t.Fatalf("TENSAT (%.1f%%) below TASO (%.1f%%) on NasRNN", r.TensatSpeedup, r.TasoSpeedup)
	}
}

func TestTable4GreedyVsILPShape(t *testing.T) {
	rows, err := quick().Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// ILP never loses to greedy under the optimizer's cost model;
		// on the measurement model a small (<1%) regression can appear
		// from cost-model/runtime discrepancy (§6.4), no more.
		if r.ILP > r.Greedy*1.01 {
			t.Errorf("%s: ILP %v worse than greedy %v", r.Model, r.ILP, r.Greedy)
		}
		if r.ILP > r.Original*1.02 {
			t.Errorf("%s: ILP %v worse than original %v", r.Model, r.ILP, r.Original)
		}
	}
}

func TestTable6EfficientNotSlower(t *testing.T) {
	c := quick()
	c.IterLimit = 3
	rows, err := c.Table6(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// At k_multi=1 both are fast; at larger e-graphs vanilla blows
		// up. Just sanity-check both completed and produced timings.
		if r.Vanilla <= 0 || r.Efficient <= 0 {
			t.Errorf("%s: missing timings %+v", r.Model, r)
		}
	}
}

func TestFormatters(t *testing.T) {
	s := FormatTable1([]Table1Row{{Model: "X", TasoTime: time.Second, TensatTime: time.Millisecond,
		TasoSpeedup: 5, TensatSpeedup: 10}})
	if !strings.Contains(s, "Table 1") || !strings.Contains(s, "X") {
		t.Fatalf("bad table 1 output:\n%s", s)
	}
	s = FormatTable5([]Table5Row{{Model: "X", KMulti: 2, WithReal: time.Second, RealTimedOut: true}})
	if !strings.Contains(s, ">1.000s") {
		t.Fatalf("timeout marker missing:\n%s", s)
	}
	s = FormatFigure7([]Figure7Row{{Model: "X", KMulti: 3, TimedOut: true}})
	if !strings.Contains(s, "timeout") {
		t.Fatalf("figure 7 timeout marker missing:\n%s", s)
	}
}

func TestJitterDeterministicBounded(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		for run := uint64(0); run < 5; run++ {
			a, b := jitter(seed, run), jitter(seed, run)
			if a != b {
				t.Fatal("jitter nondeterministic")
			}
			if a < -1 || a > 1 {
				t.Fatalf("jitter out of range: %v", a)
			}
		}
	}
}

func TestMeasureRuntimeStats(t *testing.T) {
	c := quick()
	g := mustModel(t, "VGG-19", c)
	_, rt := c.deviceAndRuntime()
	mean, stderr := c.measureRuntime(rt, g, 0)
	if mean <= 0 {
		t.Fatalf("mean %v", mean)
	}
	if stderr < 0 || stderr > mean*0.02 {
		t.Fatalf("stderr %v implausible for mean %v", stderr, mean)
	}
}

func mustModel(t *testing.T, name string, c Config) *tensor.Graph {
	t.Helper()
	m, err := models.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return m.Build(c.Scale)
}
