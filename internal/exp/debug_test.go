package exp

import (
	"os"
	"testing"
	"time"

	"tensat/internal/cost"
	"tensat/internal/extract"
	"tensat/internal/ilp"
	"tensat/internal/pattern"
	"tensat/internal/rewrite"
	"tensat/internal/tensor"
)

func TestDebugNasRNNExtraction(t *testing.T) {
	if os.Getenv("TENSAT_DIAG") == "" {
		t.Skip("diagnostics; set TENSAT_DIAG=1 to run")
	}
	c := quick()
	c.NodeLimit = 20000
	g := mustModel(t, "NasRNN", c)
	model := cost.NewT4()
	t.Logf("orig: cost=%.1f ops=%v", cost.GraphCost(model, g), tensor.HistogramString(g.OpHistogram()))

	ex, err := c.explore(g, 1, rewrite.FilterEfficient)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("explored: %+v", ex.Stats)
	merged := pattern.Search(ex.G, pattern.MustParse("(split0 (split 1 (matmul ?a ?x (concat2 1 ?y ?z))))"))
	t.Logf("merged-matmul split patterns in e-graph: %d", len(merged))

	gr, err := extract.Greedy(ex, model)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("greedy: cost=%.1f ops=%v", gr.Cost, tensor.HistogramString(gr.Graph.OpHistogram()))

	ilp.DebugHook = t.Logf
	defer func() { ilp.DebugHook = nil }()
	ir, err := extract.ILP(ex, model, extract.ILPOptions{Timeout: 30 * time.Second, TopoMode: ilp.TopoReal})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("ilp: cost=%.1f seed=%.1f commits=%d optimal=%v stalled=%v ops=%v",
		ir.Cost, ir.ILP.SeedCost, ir.ILP.ImproveCommits, ir.ILP.Optimal, ir.ILP.Stalled, tensor.HistogramString(ir.Graph.OpHistogram()))
}
