// Package exp is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (§6) over the model zoo, the
// TENSAT pipeline (root package) and the TASO baseline. Absolute
// numbers differ from the paper (the substrate is a simulated device,
// not a T4), but each experiment preserves the published comparison's
// shape; EXPERIMENTS.md records paper-vs-measured for each.
package exp

import (
	"fmt"
	"math"
	"strings"
	"time"

	"tensat"
	"tensat/internal/cost"
	"tensat/internal/extract"
	"tensat/internal/ilp"
	"tensat/internal/models"
	"tensat/internal/rewrite"
	"tensat/internal/rules"
	"tensat/internal/taso"
	"tensat/internal/tensor"
)

// Config sizes the experiments. Defaults run the whole suite on CPU in
// well under a minute; Full() approximates the paper's settings.
type Config struct {
	Scale      models.Scale
	NodeLimit  int           // e-graph size limit (paper: 50000)
	IterLimit  int           // exploration iterations (paper: 15)
	TasoN      int           // TASO search iterations (paper: 100)
	TasoAlpha  float64       // TASO backtracking threshold (paper: 1.0/1.05)
	ILPTimeout time.Duration // ILP solver timeout (paper: 1 hour)
	Runs       int           // measurement repetitions for error bars
}

// Default returns the fast CPU-friendly configuration.
func Default() Config {
	return Config{
		Scale:      models.ScaleTest,
		NodeLimit:  20000,
		IterLimit:  15,
		TasoN:      30,
		TasoAlpha:  1.05,
		ILPTimeout: 2 * time.Minute,
		Runs:       5,
	}
}

// Full approximates the paper's settings (much slower).
func Full() Config {
	c := Default()
	c.Scale = models.ScaleFull
	c.NodeLimit = 50000
	c.TasoN = 100
	c.ILPTimeout = time.Hour
	return c
}

// device is the optimizer-facing cost model; runtime is the
// measurement model used to report "graph runtime" speedups.
func (c Config) deviceAndRuntime() (cost.Model, cost.Model) {
	d := cost.NewT4()
	return d, cost.NewRuntime(d)
}

// measureRuntime returns the mean and standard error of the simulated
// graph runtime over cfg.Runs measurements. The per-run jitter is a
// deterministic ±1% hash-derived perturbation standing in for real
// measurement noise (the paper plots mean ± stderr over five runs).
func (c Config) measureRuntime(rt cost.Model, g *tensor.Graph, salt uint64) (mean, stderr float64) {
	base := cost.GraphCost(rt, g)
	runs := c.Runs
	if runs < 1 {
		runs = 1
	}
	var sum, sumsq float64
	for i := 0; i < runs; i++ {
		x := base * (1 + jitter(g.Hash()^salt, uint64(i))*0.01)
		sum += x
		sumsq += x * x
	}
	mean = sum / float64(runs)
	if runs > 1 {
		variance := (sumsq - sum*sum/float64(runs)) / float64(runs-1)
		if variance < 0 {
			variance = 0
		}
		stderr = math.Sqrt(variance / float64(runs))
	}
	return mean, stderr
}

// jitter returns a deterministic pseudo-random value in [-1, 1].
func jitter(seed, run uint64) float64 {
	x := seed ^ (run+1)*0x9e3779b97f4a7c15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return float64(x%2001)/1000 - 1
}

// tensatOptions builds root-API options for a given k_multi.
func (c Config) tensatOptions(kmulti int) tensat.Options {
	return tensat.Options{
		NodeLimit:  c.NodeLimit,
		IterLimit:  c.IterLimit,
		KMulti:     kmulti,
		ILPTimeout: c.ILPTimeout,
	}
}

// kmultiFor returns the paper's per-model k_multi (§6.2: 1 everywhere,
// with Inception-v3 also reported at 2).
func kmultiFor(model string) int { return 1 }

// ModelRun is one optimizer-vs-baseline comparison on one model.
type ModelRun struct {
	Model string

	OrigRuntime float64

	TensatRuntime float64
	TensatStderr  float64
	TensatSpeedup float64 // percent, on simulated runtime
	TensatTime    time.Duration
	TensatExplore time.Duration
	TensatExtract time.Duration
	TensatENodes  int

	TasoRuntime float64
	TasoStderr  float64
	TasoSpeedup float64
	TasoTotal   time.Duration
	TasoBest    time.Duration
}

// RunModel optimizes one benchmark with both TENSAT and TASO.
func (c Config) RunModel(name string) (*ModelRun, error) {
	m, err := models.ByName(name)
	if err != nil {
		return nil, err
	}
	g := m.Build(c.Scale)
	_, rt := c.deviceAndRuntime()

	res, err := tensat.Optimize(g, c.tensatOptions(kmultiFor(name)))
	if err != nil {
		return nil, fmt.Errorf("%s: tensat: %w", name, err)
	}
	tres, err := taso.Search(g, rules.Default(), cost.NewT4(), taso.Options{
		N: c.TasoN, Alpha: c.TasoAlpha, Timeout: time.Hour, MaxMatchesPerRule: 2000,
	})
	if err != nil {
		return nil, fmt.Errorf("%s: taso: %w", name, err)
	}

	orig, _ := c.measureRuntime(rt, g, 0)
	tnMean, tnErr := c.measureRuntime(rt, res.Graph, 1)
	tsMean, tsErr := c.measureRuntime(rt, tres.Graph, 2)

	return &ModelRun{
		Model:         name,
		OrigRuntime:   orig,
		TensatRuntime: tnMean,
		TensatStderr:  tnErr,
		TensatSpeedup: cost.SpeedupPercent(orig, tnMean),
		TensatTime:    res.ExploreTime + res.ExtractTime,
		TensatExplore: res.ExploreTime,
		TensatExtract: res.ExtractTime,
		TensatENodes:  res.ENodes,
		TasoRuntime:   tsMean,
		TasoStderr:    tsErr,
		TasoSpeedup:   cost.SpeedupPercent(orig, tsMean),
		TasoTotal:     tres.TotalTime,
		TasoBest:      tres.BestTime,
	}, nil
}

// RunAll runs RunModel over every benchmark.
func (c Config) RunAll() ([]*ModelRun, error) {
	var out []*ModelRun
	for _, m := range models.Benchmarks() {
		r, err := c.RunModel(m.Name)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// explore runs only the exploration phase with the given settings.
func (c Config) explore(g *tensor.Graph, kmulti int, filter rewrite.FilterMode) (*rewrite.Explored, error) {
	r := rewrite.NewRunner(rules.Default())
	r.Filter = filter
	r.Limits = rewrite.Limits{
		MaxNodes: c.NodeLimit,
		MaxIters: c.IterLimit,
		KMulti:   kmulti,
		Timeout:  time.Hour,
	}
	return r.Run(g)
}

// ilpExtract runs ILP extraction with explicit cycle handling.
func (c Config) ilpExtract(ex *rewrite.Explored, cycles bool, topo ilp.TopoMode) (*extract.Result, error) {
	return extract.ILP(ex, cost.NewT4(), extract.ILPOptions{
		CycleConstraints: cycles,
		TopoMode:         topo,
		Timeout:          c.ILPTimeout,
	})
}

// fmtDur renders a duration compactly for tables.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}

// tableWriter accumulates aligned columns.
type tableWriter struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *tableWriter { return &tableWriter{header: header} }

func (t *tableWriter) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *tableWriter) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range width {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
