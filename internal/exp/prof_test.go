package exp

import (
	"os"
	"testing"
	"time"

	"tensat"
)

func TestProfileNasRNN50k(t *testing.T) {
	if os.Getenv("TENSAT_DIAG") == "" {
		t.Skip("diagnostics")
	}
	g := mustModel(t, "NasRNN", Default())
	opt := tensat.DefaultOptions()
	opt.ILPTimeout = 5 * time.Minute
	res, err := tensat.Optimize(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("explore=%v extract=%v enodes=%d classes=%d cost=%.1f",
		res.ExploreTime, res.ExtractTime, res.ENodes, res.EClasses, res.OptCost)
}
