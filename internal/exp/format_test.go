package exp

import (
	"strings"
	"testing"
	"time"
)

func TestFormatTable3(t *testing.T) {
	s := FormatTable3([]Table3Row{{Model: "M", Exploration: time.Second, Extraction: 2 * time.Second}})
	if !strings.Contains(s, "Table 3") || !strings.Contains(s, "1.000s") || !strings.Contains(s, "2.000s") {
		t.Fatalf("bad output:\n%s", s)
	}
}

func TestFormatTable4(t *testing.T) {
	s := FormatTable4([]Table4Row{{Model: "M", Original: 10, Greedy: 12, ILP: 8}})
	for _, want := range []string{"Table 4", "10.0us", "12.0us", "8.0us"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
}

func TestFormatTable6(t *testing.T) {
	s := FormatTable6([]Table6Row{{
		Model: "M", KMulti: 2,
		Vanilla: time.Minute, VanillaTimedOut: true,
		Efficient: time.Second,
	}})
	if !strings.Contains(s, ">60.000s") || !strings.Contains(s, "1.000s") {
		t.Fatalf("timeout marker wrong:\n%s", s)
	}
}

func TestFormatFigure4IncludesK2Row(t *testing.T) {
	s := FormatFigure4([]Figure4Row{
		{Model: "NasRNN", TasoSpeedup: 10, TensatSpeedup: 20},
		{Model: "Incept. k=2", TensatSpeedup: 24},
	})
	if !strings.Contains(s, "Incept. k=2") {
		t.Fatalf("k=2 row missing:\n%s", s)
	}
	// The TASO column is dashed for the k=2 row.
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "Incept. k=2") && !strings.Contains(line, "-") {
			t.Fatalf("k=2 row should dash the TASO column: %q", line)
		}
	}
}

func TestFormatFigure5(t *testing.T) {
	s := FormatFigure5([]Figure5Row{{
		Model: "M", TasoTotal: 10 * time.Second, TasoBest: 5 * time.Second,
		Tensat: time.Second, Ratio: 10,
	}})
	if !strings.Contains(s, "10.0x") {
		t.Fatalf("ratio missing:\n%s", s)
	}
}

func TestFormatFigure6(t *testing.T) {
	s := FormatFigure6(
		[]CurvePoint{{At: time.Second, Speedup: 5}},
		[]CurvePoint{{At: time.Millisecond, Speedup: 2}})
	if !strings.Contains(s, "TENSAT") || !strings.Contains(s, "TASO") {
		t.Fatalf("systems missing:\n%s", s)
	}
}

func TestErrPercentPropagation(t *testing.T) {
	// speedup = orig/opt - 1; d(speedup)/d(opt) = -orig/opt^2, so the
	// stderr in percent is orig/opt^2 * stderr * 100.
	if got := errPercent(200, 100, 1); got != 2 {
		t.Fatalf("errPercent = %v, want 2", got)
	}
	if got := errPercent(200, 0, 1); got != 0 {
		t.Fatalf("errPercent with zero opt = %v", got)
	}
}

func TestConfigClamps(t *testing.T) {
	c := Default()
	if c.NodeLimit <= 0 || c.TasoN <= 0 || c.Runs <= 0 {
		t.Fatalf("bad defaults: %+v", c)
	}
	f := Full()
	if f.NodeLimit < c.NodeLimit || f.TasoN < c.TasoN {
		t.Fatalf("Full() not larger than Default(): %+v vs %+v", f, c)
	}
}
