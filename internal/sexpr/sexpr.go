// Package sexpr implements a minimal S-expression reader/printer used
// for TENSAT's textual rewrite-rule patterns (§3.2 of the paper).
package sexpr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Expr is either an atom (List == nil, Atom set) or a list.
type Expr struct {
	Atom string
	List []*Expr
}

// IsAtom reports whether e is an atom.
func (e *Expr) IsAtom() bool { return e.List == nil }

// String renders e back to S-expression syntax.
func (e *Expr) String() string {
	if e.IsAtom() {
		if needsQuote(e.Atom) {
			return strconv.Quote(e.Atom)
		}
		return e.Atom
	}
	parts := make([]string, len(e.List))
	for i, c := range e.List {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, " ") + ")"
}

func needsQuote(s string) bool {
	if s == "" {
		return true
	}
	for _, r := range s {
		if unicode.IsSpace(r) || r == '(' || r == ')' || r == '"' {
			return true
		}
	}
	return false
}

// Parse reads a single S-expression from src. Atoms are bare tokens;
// double-quoted strings become atoms with the quotes stripped (useful
// for permutation/shape payloads containing spaces).
func Parse(src string) (*Expr, error) {
	p := &parser{src: src}
	p.skipSpace()
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("sexpr: trailing input at offset %d: %q", p.pos, p.src[p.pos:])
	}
	return e, nil
}

// ParseMany reads a sequence of S-expressions (used for multi-pattern
// rules, whose sources/targets are lists of expressions).
func ParseMany(src string) ([]*Expr, error) {
	p := &parser{src: src}
	var out []*Expr
	for {
		p.skipSpace()
		if p.pos == len(p.src) {
			return out, nil
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ';' { // comment to end of line
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
			continue
		}
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			return
		}
		p.pos++
	}
}

func (p *parser) expr() (*Expr, error) {
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("sexpr: unexpected end of input")
	}
	switch c := p.src[p.pos]; {
	case c == '(':
		p.pos++
		list := []*Expr{}
		for {
			p.skipSpace()
			if p.pos >= len(p.src) {
				return nil, fmt.Errorf("sexpr: unclosed list")
			}
			if p.src[p.pos] == ')' {
				p.pos++
				return &Expr{List: list}, nil
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
		}
	case c == ')':
		return nil, fmt.Errorf("sexpr: unexpected ')' at offset %d", p.pos)
	case c == '"':
		end := p.pos + 1
		for end < len(p.src) && p.src[end] != '"' {
			if p.src[end] == '\\' {
				end++
			}
			end++
		}
		if end >= len(p.src) {
			return nil, fmt.Errorf("sexpr: unterminated string at offset %d", p.pos)
		}
		raw := p.src[p.pos : end+1]
		p.pos = end + 1
		s, err := strconv.Unquote(raw)
		if err != nil {
			return nil, fmt.Errorf("sexpr: bad string %s: %w", raw, err)
		}
		return &Expr{Atom: s}, nil
	default:
		start := p.pos
		for p.pos < len(p.src) {
			c := p.src[p.pos]
			if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '(' || c == ')' {
				break
			}
			p.pos++
		}
		return &Expr{Atom: p.src[start:p.pos]}, nil
	}
}
