package sexpr

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseAtom(t *testing.T) {
	e, err := Parse("matmul")
	if err != nil {
		t.Fatal(err)
	}
	if !e.IsAtom() || e.Atom != "matmul" {
		t.Fatalf("got %v", e)
	}
}

func TestParseNested(t *testing.T) {
	e, err := Parse("(matmul ?act ?x (concat2 1 ?y ?z))")
	if err != nil {
		t.Fatal(err)
	}
	if e.IsAtom() || len(e.List) != 4 {
		t.Fatalf("got %v", e)
	}
	inner := e.List[3]
	if inner.IsAtom() || len(inner.List) != 4 || inner.List[0].Atom != "concat2" {
		t.Fatalf("inner = %v", inner)
	}
	if inner.List[1].Atom != "1" {
		t.Fatalf("axis atom = %q", inner.List[1].Atom)
	}
}

func TestParseQuotedString(t *testing.T) {
	e, err := Parse(`(transpose ?x "0 2 1 3")`)
	if err != nil {
		t.Fatal(err)
	}
	if e.List[2].Atom != "0 2 1 3" {
		t.Fatalf("quoted atom = %q", e.List[2].Atom)
	}
}

func TestParseComments(t *testing.T) {
	e, err := Parse("(ewadd ; commutes\n ?x ?y)")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.List) != 3 {
		t.Fatalf("got %v", e)
	}
}

func TestParseMany(t *testing.T) {
	es, err := ParseMany("(matmul ?a ?x ?y) (matmul ?a ?x ?z)")
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 2 {
		t.Fatalf("got %d exprs", len(es))
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{"", "(", ")", "(a b", `(a "unterminated)`, "a b"} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestEmptyList(t *testing.T) {
	e, err := Parse("()")
	if err != nil {
		t.Fatal(err)
	}
	if e.IsAtom() || len(e.List) != 0 {
		t.Fatalf("got %v", e)
	}
}

func TestRoundTrip(t *testing.T) {
	for _, src := range []string{
		"(matmul ?act ?x ?y)",
		"(split0 (split 1 (conv 1 1 0 0 ?x (concat2 0 ?w1 ?w2))))",
		`(transpose ?x "0 2 1 3")`,
	} {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		e2, err := Parse(e.String())
		if err != nil {
			t.Fatalf("reparse of %q: %v", e.String(), err)
		}
		if e.String() != e2.String() {
			t.Fatalf("round trip changed: %q -> %q", e.String(), e2.String())
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: printing then parsing is the identity on parseable input.
	letters := "abcxyz?012 "
	f := func(seed []uint8) bool {
		// Build a random but well-formed S-expression from the seed.
		var b strings.Builder
		depth := 0
		b.WriteByte('(')
		depth++
		for _, s := range seed {
			switch s % 4 {
			case 0:
				b.WriteByte('(')
				depth++
			case 1:
				if depth > 1 {
					b.WriteString(") ")
					depth--
				}
			default:
				b.WriteByte(letters[int(s)%7])
				b.WriteByte(' ')
			}
		}
		for ; depth > 0; depth-- {
			b.WriteByte(')')
		}
		e, err := Parse(b.String())
		if err != nil {
			return true // malformed seeds are fine; only round-trip parseable ones
		}
		e2, err := Parse(e.String())
		return err == nil && e.String() == e2.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
