// Package extract implements TENSAT's extraction phase (§5): choosing
// one e-node per (needed) e-class so the induced graph is a valid,
// minimum-cost tensor DAG. It provides the greedy strategy and the ILP
// formulation (with or without cycle constraints), and reconstructs a
// tensor.Graph from the selection.
package extract

import (
	"context"
	"fmt"
	"math"
	"time"

	"tensat/internal/cost"
	"tensat/internal/egraph"
	"tensat/internal/ilp"
	"tensat/internal/ilp/backend"
	"tensat/internal/ilp/presolve"
	"tensat/internal/obs"
	"tensat/internal/rewrite"
	"tensat/internal/tensor"
)

// Result is an extracted graph and how it was obtained.
type Result struct {
	Graph *tensor.Graph
	// Cost is the extracted graph's cost under the extraction model
	// (sum over distinct nodes — sharing counted once).
	Cost float64
	// Time is the wall-clock extraction time.
	Time time.Duration
	// ILP carries solver details for ILP extraction (nil for greedy).
	ILP *ilp.Solution
	// Solver names the ILP backend that produced the solution
	// ("builtin", "builtin-seq", "cbc", "highs"; empty for greedy).
	Solver string
	// Reduction reports what the presolve pass removed from the ILP
	// model before solving (nil for greedy).
	Reduction *presolve.Reduction
}

// nodeCost prices one e-node using the analysis metas of its children.
func nodeCost(g *egraph.EGraph, m cost.Model, n egraph.Node) float64 {
	args := make([]*tensor.Meta, len(n.Children))
	for i, c := range n.Children {
		args[i] = rewrite.ClassMeta(g, c)
		if args[i] == nil {
			return math.Inf(1)
		}
	}
	return m.NodeCost(tensor.Op(n.Op), n.Int, n.Str, args)
}

// Greedy performs the greedy extraction of §5.1: per class, pick the
// e-node minimizing the cost of the subtree rooted at it. As the paper
// notes, this ignores subgraph sharing and can miss (or mis-rank)
// graphs whose benefit comes from reuse — see Table 4.
func Greedy(ex *rewrite.Explored, model cost.Model) (*Result, error) {
	return GreedyContext(context.Background(), ex, model)
}

// GreedyContext is Greedy with cancellation: the fixpoint checks ctx
// between sweeps and aborts with ctx.Err() when the request is dead.
func GreedyContext(ctx context.Context, ex *rewrite.Explored, model cost.Model) (*Result, error) {
	start := time.Now()
	g := ex.G
	picks, err := greedySelectCtx(ctx, ex, model)
	if err != nil {
		return nil, err
	}

	root := g.Find(ex.Root)
	if picks[root] < 0 {
		return nil, fmt.Errorf("extract: greedy found no finite-cost derivation for the root")
	}
	sel := func(id egraph.ClassID) (egraph.Node, bool) {
		cls := g.Class(id)
		k := picks[cls.ID]
		if k < 0 {
			return egraph.Node{}, false
		}
		return cls.Nodes[k], true
	}
	graph, err := buildGraph(g, root, sel)
	if err != nil {
		return nil, fmt.Errorf("extract: greedy: %w", err)
	}
	return &Result{
		Graph: graph,
		Cost:  cost.GraphCost(model, graph),
		Time:  time.Since(start),
	}, nil
}

// greedySelect runs the greedy tree-cost fixpoint (§5.1) and returns,
// per canonical class, the index of the chosen node within
// Class.Nodes (-1 when the class has no finite derivation). Shared by
// Greedy and by ILP's warm start.
func greedySelect(ex *rewrite.Explored, model cost.Model) map[egraph.ClassID]int {
	picks, _ := greedySelectCtx(context.Background(), ex, model)
	return picks
}

// greedySelectCtx is greedySelect with a cancellation check between
// fixpoint sweeps (each sweep is a single pass over the e-graph, so
// cancellation latency is one sweep).
func greedySelectCtx(ctx context.Context, ex *rewrite.Explored, model cost.Model) (map[egraph.ClassID]int, error) {
	g := ex.G
	picks := make(map[egraph.ClassID]int)
	classCost := make(map[egraph.ClassID]float64)
	var classes []*egraph.Class
	g.Classes(func(c *egraph.Class) {
		classes = append(classes, c)
		classCost[c.ID] = math.Inf(1)
		picks[c.ID] = -1
	})

	// Per-node operator costs never change across sweeps (only the
	// class costs below do), so price every e-node exactly once up
	// front instead of on every Bellman sweep. Filtered nodes get an
	// infinite cost, which also removes the per-sweep filter lookup.
	nodeCosts := make([][]float64, len(classes))
	for ci, cls := range classes {
		cc := make([]float64, len(cls.Nodes))
		for i, n := range cls.Nodes {
			if ex.Filtered.Has(cls.Stamps[i]) {
				cc[i] = math.Inf(1)
				continue
			}
			cc[i] = nodeCost(g, model, n)
		}
		nodeCosts[ci] = cc
	}

	// Fixpoint over tree costs (Bellman-style; terminates because costs
	// only decrease and every finite value stems from an acyclic
	// derivation, of which there are finitely many).
	for changed := true; changed; {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		changed = false
		for ci, cls := range classes {
			for i, n := range cls.Nodes {
				t := nodeCosts[ci][i]
				if math.IsInf(t, 1) {
					continue
				}
				for _, ch := range n.Children {
					t += classCost[g.Find(ch)]
				}
				if t < classCost[cls.ID] {
					classCost[cls.ID] = t
					picks[cls.ID] = i
					changed = true
				}
			}
		}
	}
	return picks, nil
}

// originalSelect recovers the input graph as a selection: per class,
// the earliest-inserted node if it predates exploration (ingest-time
// stamps are preserved minimally through rebuild deduplication).
// Returns nil when the Explored carries no ingest stamp.
func originalSelect(ex *rewrite.Explored) map[egraph.ClassID]int {
	if ex.IngestStamp == 0 {
		return nil
	}
	picks := make(map[egraph.ClassID]int)
	ex.G.Classes(func(cls *egraph.Class) {
		best, idx := int64(1<<62), -1
		for i, st := range cls.Stamps {
			if st <= ex.IngestStamp && st < best && !ex.Filtered.Has(st) {
				best, idx = st, i
			}
		}
		picks[cls.ID] = idx
	})
	return picks
}

// ILPOptions configure ILP extraction.
type ILPOptions struct {
	// CycleConstraints includes the topological-order constraints of
	// §5.1 — required when the e-graph was explored with FilterNone.
	CycleConstraints bool
	// TopoMode selects real vs integer topological variables (Table 5).
	TopoMode ilp.TopoMode
	// Timeout bounds the solver (paper: 1 hour).
	Timeout time.Duration
	// StallLimit stops branch-and-bound after this many expansions
	// without improvement (0 uses DefaultStallLimit; negative disables).
	StallLimit int64
	// Solver selects the ILP backend by name: "" or "builtin" for the
	// parallel in-process branch-and-bound, "builtin-seq" for the
	// sequential one, "cbc"/"highs" for an external MPS solver on PATH.
	Solver string
	// Workers bounds the parallel builtin solver's goroutines
	// (0 = automatic; ignored by other backends).
	Workers int
	// NoPresolve skips the model-reduction pass (diagnostics only).
	NoPresolve bool
	// OnIncumbent, when non-nil, receives every improvement of the
	// solver's incumbent — the cost of the best extraction found so
	// far — from the solving goroutine. Long ILP runs use it to report
	// live anytime progress.
	OnIncumbent func(cost float64)
	// Trace, when non-nil, receives phase spans: an "ilp" span with
	// "model" (problem build + warm starts) and "solve" children, the
	// latter carrying an "incumbent" event per improvement.
	Trace *obs.Trace
}

// DefaultStallLimit is the default incumbent-stall cutoff. It plays
// the role of a MIP gap tolerance: on heavily merged e-graphs the
// branch-and-bound's combinatorial bound cannot close the gap the way
// SCIP's LP relaxation does, so extraction returns the best incumbent
// after this many fruitless expansions.
const DefaultStallLimit = 2_000_000

// ILP performs ILP extraction. When the exploration used cycle
// filtering the cycle constraints can be dropped, which is the paper's
// key scalability lever (Table 5); filtered nodes become x_i = 0.
func ILP(ex *rewrite.Explored, model cost.Model, opts ILPOptions) (*Result, error) {
	return ILPContext(context.Background(), ex, model, opts)
}

// ProblemIndex ties an exported ilp.Problem back to the e-graph it
// was built from: problem class ci is ClassIDs[ci], and problem node
// (variable) vi is the e-node Node(vi).
type ProblemIndex struct {
	ClassIDs []egraph.ClassID
	classIdx map[egraph.ClassID]int
	nodes    []egraph.Node
}

// ClassIndex returns the problem's class index for an e-class.
func (ix *ProblemIndex) ClassIndex(g *egraph.EGraph, id egraph.ClassID) int {
	return ix.classIdx[g.Find(id)]
}

// Node returns the e-node behind problem variable vi.
func (ix *ProblemIndex) Node(vi int) egraph.Node { return ix.nodes[vi] }

// BuildProblem formulates the extraction ILP of §5.1 for an explored
// e-graph — costs from the model, one binary per e-node, filtered
// nodes forbidden, warm starts from the greedy extraction and the
// original input graph — without solving it. Exposed so callers can
// dump the model (lpfile), benchmark solvers against real instances,
// or hand it to an external process.
//
//lint:ctxflow-exempt bounded passes over the in-memory e-graph; no solving, no I/O
func BuildProblem(ex *rewrite.Explored, model cost.Model, opts ILPOptions) (*ilp.Problem, *ProblemIndex, error) {
	g := ex.G
	if !opts.CycleConstraints && !rewrite.IsAcyclic(g, ex.Filtered) {
		return nil, nil, fmt.Errorf("extract: e-graph has cycles; ILP without cycle constraints requires cycle filtering")
	}

	// Index classes and nodes.
	ix := &ProblemIndex{classIdx: make(map[egraph.ClassID]int)}
	g.Classes(func(c *egraph.Class) {
		ix.classIdx[c.ID] = len(ix.ClassIDs)
		ix.ClassIDs = append(ix.ClassIDs, c.ID)
	})
	stall := opts.StallLimit
	if stall == 0 {
		stall = DefaultStallLimit
	} else if stall < 0 {
		stall = 0
	}
	p := &ilp.Problem{
		Root:             ix.classIdx[g.Find(ex.Root)],
		Classes:          make([][]int, len(ix.ClassIDs)),
		CycleConstraints: opts.CycleConstraints,
		TopoMode:         opts.TopoMode,
		Timeout:          opts.Timeout,
		StallLimit:       stall,
	}
	for ci, id := range ix.ClassIDs {
		cls := g.Class(id)
		for i, n := range cls.Nodes {
			vi := len(ix.nodes)
			ix.nodes = append(ix.nodes, n)
			p.Costs = append(p.Costs, nodeCost(g, model, n))
			p.ClassOf = append(p.ClassOf, ci)
			children := make([]int, len(n.Children))
			for k, ch := range n.Children {
				children[k] = ix.classIdx[g.Find(ch)]
			}
			p.Children = append(p.Children, children)
			p.Classes[ci] = append(p.Classes[ci], vi)
			if ex.Filtered.Has(cls.Stamps[i]) {
				if p.Forbidden == nil {
					p.Forbidden = make([]bool, 0, 64)
				}
				for len(p.Forbidden) < vi {
					p.Forbidden = append(p.Forbidden, false)
				}
				p.Forbidden = append(p.Forbidden, true)
			}
		}
	}
	if p.Forbidden != nil {
		for len(p.Forbidden) < len(p.Costs) {
			p.Forbidden = append(p.Forbidden, false)
		}
	}

	// Warm-start with (a) the greedy extraction and (b) the original
	// input graph (nodes whose insertion stamps predate exploration),
	// so the ILP result is never worse than either, however early the
	// search is cut off.
	offset := make([]int, len(ix.ClassIDs))
	vi := 0
	for ci, id := range ix.ClassIDs {
		offset[ci] = vi
		vi += len(g.Class(id).Nodes)
	}
	toWarm := func(picks map[egraph.ClassID]int) []int {
		ws := make([]int, len(ix.ClassIDs))
		for ci, id := range ix.ClassIDs {
			//lint:canonical ClassIDs enumerates the canonical class table (built from g.Classes above)
			k := picks[id]
			if k < 0 {
				ws[ci] = -1
				continue
			}
			ws[ci] = offset[ci] + k
		}
		return ws
	}
	p.WarmStarts = append(p.WarmStarts, toWarm(greedySelect(ex, model)))
	if orig := originalSelect(ex); orig != nil {
		p.WarmStarts = append(p.WarmStarts, toWarm(orig))
	}
	return p, ix, nil
}

// ILPContext is ILP with cancellation: the branch-and-bound treats a
// done context like an expired deadline (best incumbent with
// Optimal=false); a cancellation that lands before any incumbent
// exists surfaces as the context's own error.
func ILPContext(ctx context.Context, ex *rewrite.Explored, model cost.Model, opts ILPOptions) (*Result, error) {
	start := time.Now()
	g := ex.G
	tr := opts.Trace
	tr.Begin("ilp")
	defer tr.End()

	tr.Begin("model")
	p, ix, err := BuildProblem(ex, model, opts)
	if err != nil {
		tr.End()
		return nil, err
	}
	if opts.OnIncumbent != nil || tr != nil {
		p.OnIncumbent = func(cost float64, _ int64) {
			tr.Event("incumbent", cost)
			if opts.OnIncumbent != nil {
				opts.OnIncumbent(cost)
			}
		}
	}
	tr.Attr("classes", int64(len(ix.ClassIDs)))
	tr.Attr("variables", int64(len(p.Costs)))
	tr.End() // model

	var red *presolve.Reduction
	if !opts.NoPresolve {
		tr.Begin("presolve")
		q, r, perr := presolve.Run(ctx, p)
		if perr != nil {
			tr.End()
			return nil, fmt.Errorf("extract: ilp: presolve: %w", perr)
		}
		tr.Attr("vars_fixed", int64(r.VarsFixed))
		tr.Attr("nodes_dropped", int64(r.NodesDropped))
		tr.Attr("constraints_removed", int64(r.ConstraintsRemoved))
		tr.End() // presolve
		p, red = q, &r
	}

	solver, err := backend.Select(opts.Solver, opts.Workers)
	if err != nil {
		return nil, fmt.Errorf("extract: ilp: %w", err)
	}
	tr.Begin("solve")
	sol, err := solver.Solve(ctx, p)
	if err != nil {
		tr.End()
		return nil, fmt.Errorf("extract: ilp: %w", err)
	}
	tr.Attr("explored", sol.Explored)
	tr.Attr("incumbents", int64(sol.Incumbents))
	tr.Attr("workers", int64(sol.Workers))
	if sol.Optimal {
		tr.Attr("optimal", 1)
	} else {
		tr.Attr("optimal", 0)
	}
	tr.End() // solve
	sel := func(id egraph.ClassID) (egraph.Node, bool) {
		vi, ok := sol.NodeOf[ix.classIdx[g.Find(id)]]
		if !ok {
			return egraph.Node{}, false
		}
		return ix.nodes[vi], true
	}
	graph, err := buildGraph(g, g.Find(ex.Root), sel)
	if err != nil {
		return nil, fmt.Errorf("extract: ilp: %w", err)
	}
	return &Result{
		Graph:     graph,
		Cost:      cost.GraphCost(model, graph),
		Time:      time.Since(start),
		ILP:       sol,
		Solver:    solver.Name(),
		Reduction: red,
	}, nil
}

// buildGraph materializes the selection into a tensor.Graph, verifying
// acyclicity of the chosen derivation as it goes.
func buildGraph(g *egraph.EGraph, root egraph.ClassID,
	sel func(egraph.ClassID) (egraph.Node, bool)) (*tensor.Graph, error) {

	built := make(map[egraph.ClassID]*tensor.Node)
	onPath := make(map[egraph.ClassID]bool)
	var build func(id egraph.ClassID) (*tensor.Node, error)
	build = func(id egraph.ClassID) (*tensor.Node, error) {
		id = g.Find(id)
		if n, ok := built[id]; ok {
			return n, nil
		}
		if onPath[id] {
			return nil, fmt.Errorf("selection contains a cycle through class %d", id)
		}
		onPath[id] = true
		defer delete(onPath, id)
		en, ok := sel(id)
		if !ok {
			return nil, fmt.Errorf("no node selected for class %d", id)
		}
		tn := &tensor.Node{Op: tensor.Op(en.Op), Int: en.Int, Str: en.Str}
		args := make([]*tensor.Meta, len(en.Children))
		for i, ch := range en.Children {
			child, err := build(ch)
			if err != nil {
				return nil, err
			}
			tn.Inputs = append(tn.Inputs, child)
			args[i] = child.Meta
			// split reads its boundary from the e-class analysis (§3.1),
			// not from whichever member node extraction picked: a class
			// can mix marker-carrying and marker-less derivations of the
			// same tensor, so graft the class marker onto the child meta.
			if cm := rewrite.ClassMeta(g, ch); cm != nil && cm.HasSplit && args[i] != nil && !args[i].HasSplit {
				grafted := args[i].Clone()
				grafted.HasSplit, grafted.SplitAxis, grafted.SplitAt = true, cm.SplitAxis, cm.SplitAt
				args[i] = grafted
				child.Meta = grafted
			}
		}
		meta, err := tensor.Infer(tn.Op, tn.Int, tn.Str, args)
		if err != nil {
			return nil, fmt.Errorf("extracted node %v fails shape inference: %w", tn.Op, err)
		}
		tn.Meta = meta
		built[id] = tn
		return tn, nil
	}
	rootNode, err := build(root)
	if err != nil {
		return nil, err
	}
	graph := &tensor.Graph{Root: rootNode, Outputs: collectOutputs(rootNode)}
	if err := graph.Validate(); err != nil {
		return nil, err
	}
	return graph, nil
}

// collectOutputs unwinds the noop chain that made the graph
// single-rooted, recovering the real output nodes.
func collectOutputs(root *tensor.Node) []*tensor.Node {
	if root.Op != tensor.OpNoop {
		return []*tensor.Node{root}
	}
	var outs []*tensor.Node
	outs = append(outs, collectOutputs(root.Inputs[0])...)
	outs = append(outs, collectOutputs(root.Inputs[1])...)
	return outs
}
