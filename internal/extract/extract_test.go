package extract

import (
	"testing"
	"time"

	"tensat/internal/cost"
	"tensat/internal/ilp"
	"tensat/internal/rewrite"
	"tensat/internal/tensor"
)

// figure2Setup builds the two-matmuls-shared-input graph and the
// Figure 2 multi-pattern rule, explores, and returns everything needed
// for extraction tests. Sizes chosen so the merged matmul is cheaper
// than two separate ones but dearer than one (the Table 4 regime where
// greedy fails and ILP wins).
func figure2Setup(t *testing.T, filter rewrite.FilterMode) (*rewrite.Explored, *tensor.Graph, cost.Model) {
	t.Helper()
	b := tensor.NewBuilder()
	x := b.Input("x", 64, 256)
	w1 := b.Weight("w1", 256, 256)
	w2 := b.Weight("w2", 256, 256)
	g := b.MustFinish(b.Matmul(tensor.ActNone, x, w1), b.Matmul(tensor.ActNone, x, w2))
	rule, err := rewrite.NewMultiRule("matmul-merge",
		"(matmul ?a ?x ?y) (matmul ?a ?x ?z)",
		"(split0 (split 1 (matmul ?a ?x (concat2 1 ?y ?z)))) (split1 (split 1 (matmul ?a ?x (concat2 1 ?y ?z))))")
	if err != nil {
		t.Fatal(err)
	}
	r := rewrite.NewRunner([]*rewrite.Rule{rule})
	r.Filter = filter
	r.Limits.KMulti = 1
	r.Limits.MaxIters = 2
	ex, err := r.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	return ex, g, cost.NewT4()
}

func TestGreedyExtractsOriginalWhenNoSharingAwareness(t *testing.T) {
	ex, g, model := figure2Setup(t, rewrite.FilterEfficient)
	res, err := Greedy(ex, model)
	if err != nil {
		t.Fatal(err)
	}
	orig := cost.GraphCost(model, g)
	// Greedy never picks the split nodes (paper §6.5): its result costs
	// the same as the original graph.
	if res.Cost < orig-1e-6 {
		t.Fatalf("greedy cost %v below original %v — unexpectedly exploited sharing", res.Cost, orig)
	}
	if h := res.Graph.OpHistogram(); h[tensor.OpSplit0] != 0 {
		t.Fatalf("greedy picked split nodes: %v", tensor.HistogramString(h))
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestILPExploitsSharing(t *testing.T) {
	ex, g, model := figure2Setup(t, rewrite.FilterEfficient)
	res, err := ILP(ex, model, ILPOptions{Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	orig := cost.GraphCost(model, g)
	if res.Cost >= orig {
		t.Fatalf("ILP cost %v did not improve on original %v", res.Cost, orig)
	}
	h := res.Graph.OpHistogram()
	if h[tensor.OpSplit0] != 1 || h[tensor.OpSplit1] != 1 || h[tensor.OpMatmul] != 1 {
		t.Fatalf("ILP graph shape unexpected: %v", tensor.HistogramString(h))
	}
	if !res.ILP.Optimal {
		t.Fatal("solver did not prove optimality")
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	// ILP beats greedy (Table 4's point).
	gres, err := Greedy(ex, model)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost >= gres.Cost {
		t.Fatalf("ILP %v not better than greedy %v", res.Cost, gres.Cost)
	}
}

func TestILPWithCycleConstraintsOnUnfilteredEGraph(t *testing.T) {
	ex, g, model := figure2Setup(t, rewrite.FilterNone)
	// Without cycle filtering, cycle-free extraction must be requested
	// via the constrained formulation.
	if _, err := ILP(ex, model, ILPOptions{}); err == nil && !rewrite.IsAcyclic(ex.G, ex.Filtered) {
		t.Fatal("unconstrained ILP accepted a cyclic e-graph")
	}
	for _, mode := range []ilp.TopoMode{ilp.TopoReal, ilp.TopoInt} {
		res, err := ILP(ex, model, ILPOptions{CycleConstraints: true, TopoMode: mode, Timeout: time.Minute})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if err := res.Graph.Validate(); err != nil {
			t.Fatalf("%v: extracted graph invalid: %v", mode, err)
		}
		orig := cost.GraphCost(model, g)
		if res.Cost >= orig {
			t.Fatalf("%v: constrained ILP cost %v did not improve on %v", mode, res.Cost, orig)
		}
	}
}

func TestCycleFilteredAndConstrainedAgree(t *testing.T) {
	// The two routes to acyclic extraction must find the same optimum.
	exF, _, model := figure2Setup(t, rewrite.FilterEfficient)
	exN, _, _ := figure2Setup(t, rewrite.FilterNone)
	a, err := ILP(exF, model, ILPOptions{Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ILP(exN, model, ILPOptions{CycleConstraints: true, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if diff := a.Cost - b.Cost; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("optima differ: filtered=%v constrained=%v", a.Cost, b.Cost)
	}
}

func TestExtractionOnTrivialGraph(t *testing.T) {
	b := tensor.NewBuilder()
	x := b.Input("x", 8, 8)
	g := b.MustFinish(b.Relu(x))
	r := rewrite.NewRunner(nil)
	ex, err := r.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	model := cost.NewT4()
	gr, err := Greedy(ex, model)
	if err != nil {
		t.Fatal(err)
	}
	ir, err := ILP(ex, model, ILPOptions{Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	orig := cost.GraphCost(model, g)
	if gr.Cost != orig || ir.Cost != orig {
		t.Fatalf("trivial extraction changed cost: greedy=%v ilp=%v orig=%v", gr.Cost, ir.Cost, orig)
	}
	if gr.Graph.Hash() != g.Hash() || ir.Graph.Hash() != g.Hash() {
		t.Fatal("trivial extraction changed the graph")
	}
}

func TestExtractedGraphPreservesOutputs(t *testing.T) {
	ex, g, model := figure2Setup(t, rewrite.FilterEfficient)
	res, err := ILP(ex, model, ILPOptions{Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Graph.Outputs) != len(g.Outputs) {
		t.Fatalf("output count changed: %d -> %d", len(g.Outputs), len(res.Graph.Outputs))
	}
	for i, out := range res.Graph.Outputs {
		if !out.Meta.Shape.Equal(g.Outputs[i].Meta.Shape) {
			t.Fatalf("output %d shape changed: %v -> %v", i, g.Outputs[i].Meta.Shape, out.Meta.Shape)
		}
	}
}
