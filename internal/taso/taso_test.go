package taso

import (
	"testing"
	"time"

	"tensat/internal/cost"
	"tensat/internal/rewrite"
	"tensat/internal/rules"
	"tensat/internal/tensor"
)

func TestFindMatchesSinglePattern(t *testing.T) {
	b := tensor.NewBuilder()
	x := b.Input("x", 1, 8, 8, 8)
	w := b.Weight("w", 8, 8, 3, 3)
	g := b.MustFinish(b.Relu(b.Conv(1, 1, tensor.PadSame, tensor.ActNone, x, w)))
	rule := rewrite.MustRule("conv-fuse-relu",
		"(relu (conv ?sh ?sw ?p 0 ?x ?w))", "(conv ?sh ?sw ?p 2 ?x ?w)")
	ms := FindMatches(g, rule, 0)
	if len(ms) != 1 {
		t.Fatalf("got %d matches, want 1", len(ms))
	}
	if ms[0].Bind["?x"].Op != tensor.OpInput {
		t.Fatalf("binding ?x = %v", ms[0].Bind["?x"].Op)
	}
}

func TestFindMatchesMultiPattern(t *testing.T) {
	b := tensor.NewBuilder()
	x := b.Input("x", 8, 32)
	w1 := b.Weight("w1", 32, 16)
	w2 := b.Weight("w2", 32, 16)
	g := b.MustFinish(b.Matmul(tensor.ActNone, x, w1), b.Matmul(tensor.ActNone, x, w2))
	rule := rewrite.MustMultiRule("merge",
		"(matmul ?a ?x ?y) (matmul ?a ?x ?z)",
		"(split0 (split 1 (matmul ?a ?x (concat2 1 ?y ?z)))) (split1 (split 1 (matmul ?a ?x (concat2 1 ?y ?z))))")
	ms := FindMatches(g, rule, 0)
	// Pairs: (m1,m1),(m1,m2),(m2,m1),(m2,m2) all share ?x.
	if len(ms) != 4 {
		t.Fatalf("got %d joint matches, want 4", len(ms))
	}
}

func TestFindMatchesRespectsSharedVariables(t *testing.T) {
	b := tensor.NewBuilder()
	x1 := b.Input("x1", 8, 32)
	x2 := b.Input("x2", 8, 32)
	w := b.Weight("w", 32, 16)
	g := b.MustFinish(b.Matmul(tensor.ActNone, x1, w), b.Matmul(tensor.ActNone, x2, w))
	rule := rewrite.MustMultiRule("merge",
		"(matmul ?a ?x ?y) (matmul ?a ?x ?z)",
		"(split0 (split 1 (matmul ?a ?x (concat2 1 ?y ?z)))) (split1 (split 1 (matmul ?a ?x (concat2 1 ?y ?z))))")
	ms := FindMatches(g, rule, 0)
	// Only the diagonal pairs share ?x.
	if len(ms) != 2 {
		t.Fatalf("got %d joint matches, want 2 (diagonal only)", len(ms))
	}
}

func TestApplyFusesRelu(t *testing.T) {
	b := tensor.NewBuilder()
	x := b.Input("x", 1, 8, 8, 8)
	w := b.Weight("w", 8, 8, 3, 3)
	g := b.MustFinish(b.Relu(b.Conv(1, 1, tensor.PadSame, tensor.ActNone, x, w)))
	rule := rewrite.MustRule("conv-fuse-relu",
		"(relu (conv ?sh ?sw ?p 0 ?x ?w))", "(conv ?sh ?sw ?p 2 ?x ?w)")
	ms := FindMatches(g, rule, 0)
	ng, err := Apply(g, ms[0])
	if err != nil {
		t.Fatal(err)
	}
	h := ng.OpHistogram()
	if h[tensor.OpRelu] != 0 || h[tensor.OpConv] != 1 {
		t.Fatalf("fusion result: %v", tensor.HistogramString(h))
	}
	if err := ng.Validate(); err != nil {
		t.Fatal(err)
	}
	// Original untouched (immutability).
	if g.OpHistogram()[tensor.OpRelu] != 1 {
		t.Fatal("apply mutated the source graph")
	}
}

func TestApplyRebuildsAncestors(t *testing.T) {
	// The rewritten node sits below another op; ancestors must be rebuilt.
	b := tensor.NewBuilder()
	x := b.Input("x", 4, 4)
	y := b.Input("y", 4, 4)
	inner := b.Ewadd(x, y)
	g := b.MustFinish(b.Relu(inner))
	rule := rewrite.MustRule("comm", "(ewadd ?x ?y)", "(ewadd ?y ?x)")
	ms := FindMatches(g, rule, 0)
	if len(ms) != 1 {
		t.Fatalf("matches = %d", len(ms))
	}
	ng, err := Apply(g, ms[0])
	if err != nil {
		t.Fatal(err)
	}
	if ng.Hash() == g.Hash() {
		t.Fatal("apply produced an identical graph")
	}
	if ng.Root.Op != tensor.OpRelu {
		t.Fatalf("root op changed to %v", ng.Root.Op)
	}
}

func TestSearchImprovesFusibleGraph(t *testing.T) {
	b := tensor.NewBuilder()
	x := b.Input("x", 1, 32, 14, 14)
	w1 := b.Weight("w1", 32, 32, 3, 3)
	w2 := b.Weight("w2", 32, 32, 3, 3)
	h := b.Relu(b.Conv(1, 1, tensor.PadSame, tensor.ActNone, x, w1))
	g := b.MustFinish(b.Relu(b.Conv(1, 1, tensor.PadSame, tensor.ActNone, h, w2)))
	model := cost.NewT4()
	res, err := Search(g, rules.Default(), model, Options{N: 20, Alpha: 1.05, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	orig := cost.GraphCost(model, g)
	if res.Cost >= orig {
		t.Fatalf("search found nothing: %v >= %v", res.Cost, orig)
	}
	if res.Graph.OpHistogram()[tensor.OpRelu] != 0 {
		t.Fatalf("relus not fused: %v", tensor.HistogramString(res.Graph.OpHistogram()))
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.BestTime > res.TotalTime {
		t.Fatalf("BestTime %v after TotalTime %v", res.BestTime, res.TotalTime)
	}
}

func TestSearchRespectsIterationBudget(t *testing.T) {
	b := tensor.NewBuilder()
	x := b.Input("x", 8, 32)
	w1 := b.Weight("w1", 32, 16)
	w2 := b.Weight("w2", 32, 16)
	g := b.MustFinish(b.Matmul(tensor.ActNone, x, w1), b.Matmul(tensor.ActNone, x, w2))
	res, err := Search(g, rules.Default(), cost.NewT4(), Options{N: 3, Alpha: 1.05, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 3 {
		t.Fatalf("iterations %d > budget 3", res.Iterations)
	}
}

func TestSearchPreservesSemanticsShapes(t *testing.T) {
	b := tensor.NewBuilder()
	x := b.Input("x", 8, 32)
	w1 := b.Weight("w1", 32, 16)
	w2 := b.Weight("w2", 32, 16)
	g := b.MustFinish(b.Matmul(tensor.ActNone, x, w1), b.Matmul(tensor.ActNone, x, w2))
	res, err := Search(g, rules.Default(), cost.NewT4(), Options{N: 30, Alpha: 1.05, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Graph.Outputs) != 2 {
		t.Fatalf("output count %d", len(res.Graph.Outputs))
	}
	for i, out := range res.Graph.Outputs {
		if !out.Meta.Shape.Equal(g.Outputs[i].Meta.Shape) {
			t.Fatalf("output %d: %v -> %v", i, g.Outputs[i].Meta.Shape, out.Meta.Shape)
		}
	}
}
