package taso

import (
	"container/heap"
	"time"

	"tensat/internal/cost"
	"tensat/internal/rewrite"
	"tensat/internal/tensor"
)

// Options configure the backtracking search; defaults follow the
// paper's §6.1 (n = 100 iterations, alpha = 1.0, with alpha = 1.05
// also evaluated).
type Options struct {
	// N is the number of search iterations (queue pops).
	N int
	// Alpha admits candidates whose cost is below Alpha * bestCost.
	Alpha float64
	// MaxMatchesPerRule bounds match enumeration per rule per graph.
	MaxMatchesPerRule int
	// Timeout bounds the whole search.
	Timeout time.Duration
}

// DefaultOptions mirrors TASO's artifact settings.
func DefaultOptions() Options {
	return Options{N: 100, Alpha: 1.0, MaxMatchesPerRule: 2000, Timeout: time.Hour}
}

// Result reports the search outcome.
type Result struct {
	Graph *tensor.Graph
	Cost  float64
	// TotalTime is the full search duration (the paper's "TASO total").
	TotalTime time.Duration
	// BestTime is when the best graph was first reached ("TASO best").
	BestTime time.Duration
	// Iterations is the number of queue pops performed.
	Iterations int
	// Candidates is the number of rewritten graphs generated.
	Candidates int
	// Trace records every improvement of the best cost, for
	// speedup-over-time curves (Figure 6).
	Trace []TracePoint
}

// TracePoint is one best-cost improvement during the search.
type TracePoint struct {
	At   time.Duration
	Cost float64
}

// queueItem is a candidate graph in the priority queue.
type queueItem struct {
	g *tensor.Graph
	c float64
}

type priorityQueue []queueItem

func (q priorityQueue) Len() int           { return len(q) }
func (q priorityQueue) Less(i, j int) bool { return q[i].c < q[j].c }
func (q priorityQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *priorityQueue) Push(x any)        { *q = append(*q, x.(queueItem)) }
func (q *priorityQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Search runs TASO's cost-ordered backtracking search over graph
// substitutions (Algorithm 2 of Jia et al. 2019a).
func Search(g *tensor.Graph, ruleset []*rewrite.Rule, model cost.Model, opts Options) (*Result, error) {
	start := time.Now()
	if opts.N == 0 {
		opts = DefaultOptions()
	}
	if opts.Alpha == 0 {
		opts.Alpha = 1.0
	}
	if opts.Timeout == 0 {
		opts.Timeout = time.Hour
	}
	deadline := start.Add(opts.Timeout)

	best := g
	bestCost := cost.GraphCost(model, g)
	bestAt := time.Duration(0)

	pq := &priorityQueue{{g: g, c: bestCost}}
	heap.Init(pq)
	seen := map[uint64]bool{g.Hash(): true}

	res := &Result{Trace: []TracePoint{{At: 0, Cost: bestCost}}}
	improve := func(ng *tensor.Graph, nc float64) {
		best, bestCost = ng, nc
		bestAt = time.Since(start)
		res.Trace = append(res.Trace, TracePoint{At: bestAt, Cost: nc})
	}
	for pq.Len() > 0 && res.Iterations < opts.N && time.Now().Before(deadline) {
		item := heap.Pop(pq).(queueItem)
		res.Iterations++
		if item.c < bestCost {
			improve(item.g, item.c)
		}
		for _, rule := range ruleset {
			for _, m := range FindMatches(item.g, rule, opts.MaxMatchesPerRule) {
				ng, err := Apply(item.g, m)
				if err != nil || ng == nil {
					continue
				}
				res.Candidates++
				h := ng.Hash()
				if seen[h] {
					continue
				}
				seen[h] = true
				nc := cost.GraphCost(model, ng)
				if nc < bestCost {
					improve(ng, nc)
				}
				if nc < opts.Alpha*bestCost {
					heap.Push(pq, queueItem{g: ng, c: nc})
				}
			}
			if time.Now().After(deadline) {
				break
			}
		}
	}
	res.Graph = best
	res.Cost = bestCost
	res.TotalTime = time.Since(start)
	res.BestTime = bestAt
	return res, nil
}
