package taso

import (
	"testing"
	"time"

	"tensat/internal/cost"
	"tensat/internal/rewrite"
	"tensat/internal/rules"
	"tensat/internal/tensor"
)

func TestApplyShapeIncompatibleMatchFails(t *testing.T) {
	// A rule whose target is ill-shaped for the matched tensors must
	// return an error rather than produce an invalid graph.
	b := tensor.NewBuilder()
	x := b.Input("x", 4, 8)
	w := b.Weight("w", 8, 16)
	g := b.MustFinish(b.Matmul(tensor.ActNone, x, w))
	rule := rewrite.MustRule("bogus", "(matmul ?a ?x ?y)", "(matmul ?a ?y ?x)")
	ms := FindMatches(g, rule, 0)
	if len(ms) != 1 {
		t.Fatalf("matches = %d", len(ms))
	}
	if ng, err := Apply(g, ms[0]); err == nil {
		t.Fatalf("ill-shaped substitution accepted: %v", ng)
	}
}

func TestFindMatchesCap(t *testing.T) {
	b := tensor.NewBuilder()
	x := b.Input("x", 8, 32)
	var outs []*tensor.Node
	for i := 0; i < 6; i++ {
		w := b.Weight(string(rune('a'+i)), 32, 16)
		outs = append(outs, b.Matmul(tensor.ActNone, x, w))
	}
	g := b.MustFinish(outs...)
	rule := rewrite.MustRule("id", "(matmul ?a ?x ?y)", "(matmul ?a ?x ?y)")
	if ms := FindMatches(g, rule, 3); len(ms) > 3 {
		t.Fatalf("cap ignored: %d matches", len(ms))
	}
}

func TestSearchDeduplicatesGraphs(t *testing.T) {
	// Commutativity generates each graph twice; hashing must dedupe so
	// candidates stay bounded.
	b := tensor.NewBuilder()
	x := b.Input("x", 4, 4)
	y := b.Input("y", 4, 4)
	g := b.MustFinish(b.Ewadd(x, y))
	res, err := Search(g, []*rewrite.Rule{rewrite.MustRule("comm", "(ewadd ?x ?y)", "(ewadd ?y ?x)")},
		cost.NewT4(), Options{N: 10, Alpha: 2.0, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	// Only two distinct graphs exist; the search must terminate early.
	if res.Iterations > 3 {
		t.Fatalf("dedup failed: %d iterations", res.Iterations)
	}
}

func TestSearchTraceMonotone(t *testing.T) {
	b := tensor.NewBuilder()
	x := b.Input("x", 1, 16, 14, 14)
	w := b.Weight("w", 16, 16, 3, 3)
	h := b.Relu(b.Conv(1, 1, tensor.PadSame, tensor.ActNone, x, w))
	g := b.MustFinish(h)
	res, err := Search(g, rules.Default(), cost.NewT4(), Options{N: 10, Alpha: 1.05, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("empty trace")
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Cost >= res.Trace[i-1].Cost {
			t.Fatalf("trace not strictly improving at %d: %v", i, res.Trace)
		}
		if res.Trace[i].At < res.Trace[i-1].At {
			t.Fatalf("trace time went backwards at %d", i)
		}
	}
	if res.Trace[len(res.Trace)-1].Cost != res.Cost {
		t.Fatalf("trace end %v != final cost %v", res.Trace[len(res.Trace)-1].Cost, res.Cost)
	}
}

func TestSearchOnAlreadyOptimalGraph(t *testing.T) {
	b := tensor.NewBuilder()
	x := b.Input("x", 1, 8, 8, 8)
	w := b.Weight("w", 8, 8, 3, 3)
	g := b.MustFinish(b.Conv(1, 1, tensor.PadSame, tensor.ActRelu, x, w))
	res, err := Search(g, rules.Default(), cost.NewT4(), Options{N: 10, Alpha: 1.05, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	orig := cost.GraphCost(cost.NewT4(), g)
	if res.Cost > orig {
		t.Fatalf("search regressed: %v > %v", res.Cost, orig)
	}
}
