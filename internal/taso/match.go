// Package taso implements the baseline TENSAT compares against: the
// sequential backtracking search of TASO (Jia et al. 2019a). Rewrite
// rules are applied destructively one at a time on tensor graphs; a
// cost-ordered queue explores candidate graphs, keeping any whose cost
// stays below alpha times the best seen, for n iterations. Unlike the
// e-graph approach this forgets the original term at each step, which
// is exactly the phase-ordering weakness the paper addresses.
package taso

import (
	"fmt"
	"strconv"
	"strings"

	"tensat/internal/pattern"
	"tensat/internal/rewrite"
	"tensat/internal/tensor"
)

// Binding maps pattern variables to concrete graph nodes.
type Binding map[string]*tensor.Node

// GraphMatch is one joint occurrence of a rule's source patterns.
type GraphMatch struct {
	Rule    *rewrite.Rule
	Outputs []*tensor.Node // matched output node per source pattern
	Bind    Binding
}

// matchPattern matches p against node n, extending bind; returns false
// (without guaranteeing bind rollback) when the match fails, so callers
// pass a copy when they need to backtrack.
func matchPattern(p *pattern.Pat, n *tensor.Node, bind Binding) bool {
	if p.IsVar() {
		if prev, ok := bind[p.Var]; ok {
			return prev == n
		}
		bind[p.Var] = n
		return true
	}
	if n.Op != p.Op || n.Int != p.Int || n.Str != p.Str {
		return false
	}
	if len(n.Inputs) != len(p.Children) {
		return false
	}
	for i, c := range p.Children {
		if !matchPattern(c, n.Inputs[i], bind) {
			return false
		}
	}
	return true
}

// FindMatches enumerates all matches of rule in g, combining source
// patterns with shared-variable consistency (the graph-level analogue
// of Algorithm 1's COMPATIBLE check). maxMatches bounds the output.
func FindMatches(g *tensor.Graph, rule *rewrite.Rule, maxMatches int) []GraphMatch {
	nodes := g.Nodes()
	perSource := make([][]GraphMatch, len(rule.Sources))
	for i, src := range rule.Sources {
		for _, n := range nodes {
			bind := Binding{}
			if matchPattern(src, n, bind) {
				perSource[i] = append(perSource[i], GraphMatch{Outputs: []*tensor.Node{n}, Bind: bind})
			}
		}
		if len(perSource[i]) == 0 {
			return nil
		}
	}
	var out []GraphMatch
	var rec func(i int, acc GraphMatch)
	rec = func(i int, acc GraphMatch) {
		if maxMatches > 0 && len(out) >= maxMatches {
			return
		}
		if i == len(perSource) {
			m := GraphMatch{Rule: rule, Outputs: append([]*tensor.Node(nil), acc.Outputs...), Bind: acc.Bind}
			out = append(out, m)
			return
		}
		for _, cand := range perSource[i] {
			merged := make(Binding, len(acc.Bind)+len(cand.Bind))
			for k, v := range acc.Bind {
				merged[k] = v
			}
			ok := true
			for k, v := range cand.Bind {
				if prev, bound := merged[k]; bound && prev != v {
					ok = false
					break
				}
				merged[k] = v
			}
			if !ok {
				continue
			}
			rec(i+1, GraphMatch{Outputs: append(acc.Outputs, cand.Outputs[0]), Bind: merged})
		}
	}
	rec(0, GraphMatch{})
	return out
}

// consBuilder hash-conses freshly constructed nodes so rewritten graphs
// keep maximal sharing (matching the builder's invariant).
type consBuilder struct {
	memo map[string]*tensor.Node
}

func newConsBuilder() *consBuilder { return &consBuilder{memo: make(map[string]*tensor.Node)} }

func (cb *consBuilder) mk(op tensor.Op, ival int64, sval string, inputs []*tensor.Node) (*tensor.Node, error) {
	var key strings.Builder
	key.WriteString(strconv.Itoa(int(op)))
	key.WriteByte('|')
	key.WriteString(strconv.FormatInt(ival, 10))
	key.WriteByte('|')
	key.WriteString(sval)
	for _, in := range inputs {
		fmt.Fprintf(&key, "|%p", in)
	}
	if n, ok := cb.memo[key.String()]; ok {
		return n, nil
	}
	args := make([]*tensor.Meta, len(inputs))
	for i, in := range inputs {
		args[i] = in.Meta
	}
	meta, err := tensor.Infer(op, ival, sval, args)
	if err != nil {
		return nil, err
	}
	n := &tensor.Node{Op: op, Int: ival, Str: sval, Inputs: inputs, Meta: meta}
	cb.memo[key.String()] = n
	return n, nil
}

// instantiate builds the target pattern as graph nodes.
func (cb *consBuilder) instantiate(p *pattern.Pat, bind Binding) (*tensor.Node, error) {
	if p.IsVar() {
		n, ok := bind[p.Var]
		if !ok {
			return nil, fmt.Errorf("taso: unbound variable %s", p.Var)
		}
		return n, nil
	}
	inputs := make([]*tensor.Node, 0, len(p.Children))
	for _, c := range p.Children {
		in, err := cb.instantiate(c, bind)
		if err != nil {
			return nil, err
		}
		inputs = append(inputs, in)
	}
	return cb.mk(p.Op, p.Int, p.Str, inputs)
}

// Apply produces a new graph with the match's output nodes replaced by
// the rule targets (destructive substitution on an immutable DAG: all
// ancestors are rebuilt). Returns nil if the target is ill-shaped or
// the substitution would create a cycle (a target node reaching a
// replaced output through an argument path).
func Apply(g *tensor.Graph, m GraphMatch) (*tensor.Graph, error) {
	cb := newConsBuilder()
	replace := make(map[*tensor.Node]*tensor.Node, len(m.Outputs))
	for i, out := range m.Outputs {
		tn, err := cb.instantiate(m.Rule.Targets[i], m.Bind)
		if err != nil {
			return nil, err
		}
		replace[out] = tn
	}
	// Rebuild the DAG from the root, substituting matched outputs.
	memo := make(map[*tensor.Node]*tensor.Node)
	var rebuild func(n *tensor.Node) (*tensor.Node, error)
	rebuild = func(n *tensor.Node) (*tensor.Node, error) {
		if r, ok := memo[n]; ok {
			return r, nil
		}
		if r, ok := replace[n]; ok {
			memo[n] = r
			return r, nil
		}
		changed := false
		inputs := make([]*tensor.Node, len(n.Inputs))
		for i, in := range n.Inputs {
			r, err := rebuild(in)
			if err != nil {
				return nil, err
			}
			inputs[i] = r
			if r != in {
				changed = true
			}
		}
		if !changed {
			memo[n] = n
			return n, nil
		}
		r, err := cb.mk(n.Op, n.Int, n.Str, inputs)
		if err != nil {
			return nil, err
		}
		memo[n] = r
		return r, nil
	}
	root, err := rebuild(g.Root)
	if err != nil {
		return nil, err
	}
	outs := make([]*tensor.Node, len(g.Outputs))
	for i, o := range g.Outputs {
		r, err := rebuild(o)
		if err != nil {
			return nil, err
		}
		outs[i] = r
	}
	ng := &tensor.Graph{Root: root, Outputs: outs}
	if err := ng.Validate(); err != nil {
		return nil, err
	}
	return ng, nil
}
