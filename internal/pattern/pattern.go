// Package pattern implements TENSAT's rewrite-rule patterns (§3.2):
// S-expressions over the tensor operator set with ?variables, compiled
// to matchers over e-graphs, plus the variable canonicalization used
// by the multi-pattern algorithm (Algorithm 1).
package pattern

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"tensat/internal/egraph"
	"tensat/internal/sexpr"
	"tensat/internal/tensor"
)

// Pat is a pattern node: either a variable (Var != "") or an operator
// applied to child patterns. Integer and string atoms become OpInt and
// OpStr literal patterns.
type Pat struct {
	Var      string // "?x" including the question mark
	Op       tensor.Op
	Int      int64
	Str      string
	Children []*Pat
}

// IsVar reports whether p is a variable.
func (p *Pat) IsVar() bool { return p.Var != "" }

// Parse compiles an S-expression pattern like
//
//	(matmul ?act ?x (concat2 1 ?y ?z))
//
// Atoms starting with '?' are variables; bare integers are OpInt
// literals; quoted strings are OpStr literals; (input "name@shape")
// and (weight "name@shape") are identifier literals.
func Parse(src string) (*Pat, error) {
	e, err := sexpr.Parse(src)
	if err != nil {
		return nil, err
	}
	return fromExpr(e)
}

// MustParse is Parse that panics; for rule tables with known-good text.
func MustParse(src string) *Pat {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// ParseMulti parses a whitespace-separated sequence of patterns (the
// source or target list of a multi-pattern rule).
func ParseMulti(src string) ([]*Pat, error) {
	es, err := sexpr.ParseMany(src)
	if err != nil {
		return nil, err
	}
	out := make([]*Pat, len(es))
	for i, e := range es {
		p, err := fromExpr(e)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

func fromExpr(e *sexpr.Expr) (*Pat, error) {
	if e.IsAtom() {
		a := e.Atom
		if strings.HasPrefix(a, "?") {
			if len(a) == 1 {
				return nil, fmt.Errorf("pattern: bare '?' is not a variable name")
			}
			return &Pat{Var: a}, nil
		}
		if v, err := strconv.ParseInt(a, 10, 64); err == nil {
			return &Pat{Op: tensor.OpInt, Int: v}, nil
		}
		// Any other atom is a string literal (permutations, shapes).
		return &Pat{Op: tensor.OpStr, Str: a}, nil
	}
	if len(e.List) == 0 {
		return nil, fmt.Errorf("pattern: empty list")
	}
	head := e.List[0]
	if !head.IsAtom() {
		return nil, fmt.Errorf("pattern: list head must be an operator name, got %v", head)
	}
	op, ok := tensor.OpByName[head.Atom]
	if !ok {
		return nil, fmt.Errorf("pattern: unknown operator %q", head.Atom)
	}
	p := &Pat{Op: op}
	if op == tensor.OpInput || op == tensor.OpWeight {
		if len(e.List) != 2 || !e.List[1].IsAtom() {
			return nil, fmt.Errorf("pattern: %s wants a single identifier atom", head.Atom)
		}
		p.Str = e.List[1].Atom
		return p, nil
	}
	for _, c := range e.List[1:] {
		child, err := fromExpr(c)
		if err != nil {
			return nil, err
		}
		p.Children = append(p.Children, child)
	}
	if want := op.Arity(); want >= 0 && len(p.Children) != want {
		return nil, fmt.Errorf("pattern: %s expects %d children, got %d", head.Atom, want, len(p.Children))
	}
	return p, nil
}

// String renders the pattern back to S-expression syntax.
func (p *Pat) String() string {
	if p.IsVar() {
		return p.Var
	}
	switch p.Op {
	case tensor.OpInt:
		return strconv.FormatInt(p.Int, 10)
	case tensor.OpStr:
		return strconv.Quote(p.Str)
	case tensor.OpInput, tensor.OpWeight:
		return fmt.Sprintf("(%v %q)", p.Op, p.Str)
	}
	if len(p.Children) == 0 {
		return p.Op.String()
	}
	parts := make([]string, 0, len(p.Children)+1)
	parts = append(parts, p.Op.String())
	for _, c := range p.Children {
		parts = append(parts, c.String())
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// Vars returns the pattern's variables in first-occurrence order.
func (p *Pat) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	var walk func(*Pat)
	walk = func(q *Pat) {
		if q.IsVar() {
			if !seen[q.Var] {
				seen[q.Var] = true
				out = append(out, q.Var)
			}
			return
		}
		for _, c := range q.Children {
			walk(c)
		}
	}
	walk(p)
	return out
}

// Canonical renames the pattern's variables to ?0, ?1, ... in
// first-occurrence order, returning the renamed pattern and the map
// from canonical name back to the original (the "rename map" of
// Algorithm 1). Patterns that differ only by variable naming share a
// canonical form, so the single-pattern search runs once per form.
func (p *Pat) Canonical() (*Pat, map[string]string) {
	rename := make(map[string]string) // original -> canonical
	back := make(map[string]string)   // canonical -> original
	var walk func(*Pat) *Pat
	walk = func(q *Pat) *Pat {
		if q.IsVar() {
			c, ok := rename[q.Var]
			if !ok {
				c = "?" + strconv.Itoa(len(rename))
				rename[q.Var] = c
				back[c] = q.Var
			}
			return &Pat{Var: c}
		}
		out := &Pat{Op: q.Op, Int: q.Int, Str: q.Str}
		for _, ch := range q.Children {
			out.Children = append(out.Children, walk(ch))
		}
		return out
	}
	return walk(p), back
}

// Subst maps variable names to e-classes.
type Subst map[string]egraph.ClassID

// Clone copies a substitution.
func (s Subst) Clone() Subst {
	c := make(Subst, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// Rename relabels s's keys through a canonical->original map, i.e. the
// DECANONICAL step of Algorithm 1.
func (s Subst) Rename(back map[string]string) Subst {
	out := make(Subst, len(s))
	for k, v := range s {
		name, ok := back[k]
		if !ok {
			name = k
		}
		out[name] = v
	}
	return out
}

// String renders the substitution deterministically for tests/logs.
func (s Subst) String() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=e%d", k, s[k])
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Match is one occurrence of a pattern: the e-class whose node matched
// the pattern root, plus the variable bindings.
type Match struct {
	Class egraph.ClassID
	Subst Subst
}

// Source is the read-only e-graph access the matcher needs. Both
// *egraph.EGraph and *egraph.View implement it; matching against a
// frozen View is safe from many goroutines at once (EGraph.Find path
// compression makes the mutable e-graph single-threaded even for
// logically read-only queries).
type Source interface {
	Find(egraph.ClassID) egraph.ClassID
	Class(egraph.ClassID) *egraph.Class
}

// Search finds all matches of p anywhere in g. Bindings are
// canonicalized class ids. The e-graph must be clean (rebuilt).
// Like every entry point below it runs the compiled engine
// (compile.go); callers matching the same pattern repeatedly should
// Compile once and use Program.AppendMatches directly.
func Search(g *egraph.EGraph, p *Pat) []Match {
	var classes []*egraph.Class
	g.Classes(func(cls *egraph.Class) { classes = append(classes, cls) })
	return SearchClasses(g, p, classes)
}

// SearchView finds all matches of p in a frozen e-graph view. The scan
// order (ascending class ID) and the resulting match order are
// identical to Search on the source e-graph.
func SearchView(v *egraph.View, p *Pat) []Match {
	return SearchClasses(v, p, v.Classes())
}

// SearchClasses finds matches of p rooted at each class of classes, in
// order. Shards of View.Classes can be searched concurrently — one
// SearchClasses call per goroutine — and concatenated in shard order
// to reproduce the sequential result exactly.
func SearchClasses(src Source, p *Pat, classes []*egraph.Class) []Match {
	prog := Compile(p)
	cms := prog.AppendMatches(nil, src, classes)
	if len(cms) == 0 {
		return nil
	}
	out := make([]Match, len(cms))
	for i, cm := range cms {
		out[i] = Match{Class: cm.Class, Subst: prog.Subst(cm)}
	}
	return out
}

// SearchClass finds matches of p rooted at a specific e-class.
func SearchClass(g *egraph.EGraph, p *Pat, class egraph.ClassID) []Match {
	return SearchClasses(g, p, []*egraph.Class{g.Class(class)})
}

// Instantiate adds the pattern (with variables substituted) to the
// e-graph and returns the root class. Variables must all be bound.
func Instantiate(g *egraph.EGraph, p *Pat, subst Subst) (egraph.ClassID, error) {
	if p.IsVar() {
		id, ok := subst[p.Var]
		if !ok {
			return 0, fmt.Errorf("pattern: unbound variable %s", p.Var)
		}
		return g.Find(id), nil
	}
	n := egraph.Node{Op: egraph.Op(p.Op), Int: p.Int, Str: p.Str}
	for _, c := range p.Children {
		id, err := Instantiate(g, c, subst)
		if err != nil {
			return 0, err
		}
		n.Children = append(n.Children, id)
	}
	return g.Add(n), nil
}
