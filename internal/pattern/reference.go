package pattern

import "tensat/internal/egraph"

// This file preserves the original tree-walking match interpreter as a
// reference implementation. It is NOT used by any production code path
// — Search, SearchView, SearchClasses and SearchClass all run the
// compiled engine (compile.go) — and exists solely as the oracle for
// the differential tests and the interpreter-vs-compiled benchmark
// that demonstrate the compiled engine produces identical match lists,
// faster. Do not call it from non-test code.

// ReferenceSearchClasses finds matches of p rooted at each class of
// classes, in order, using the reference interpreter. The match list
// (order included) is the contract the compiled engine must reproduce.
func ReferenceSearchClasses(src Source, p *Pat, classes []*egraph.Class) []Match {
	var out []Match
	for _, cls := range classes {
		for _, s := range referenceMatchClass(src, p, cls.ID, Subst{}) {
			out = append(out, Match{Class: cls.ID, Subst: s})
		}
	}
	return out
}

// referenceMatchClass returns all extensions of subst that match p
// against the e-class id (the old matchClass interpreter, verbatim).
func referenceMatchClass(g Source, p *Pat, id egraph.ClassID, subst Subst) []Subst {
	id = g.Find(id)
	if p.IsVar() {
		if bound, ok := subst[p.Var]; ok {
			if g.Find(bound) != id {
				return nil
			}
			return []Subst{subst}
		}
		next := subst.Clone()
		next[p.Var] = id
		return []Subst{next}
	}
	var results []Subst
	cls := g.Class(id)
	for _, n := range cls.Nodes {
		if n.Op != egraph.Op(p.Op) || n.Int != p.Int || n.Str != p.Str {
			continue
		}
		if len(n.Children) != len(p.Children) {
			continue
		}
		partial := []Subst{subst}
		for i, cp := range p.Children {
			var next []Subst
			for _, s := range partial {
				next = append(next, referenceMatchClass(g, cp, n.Children[i], s)...)
			}
			partial = next
			if len(partial) == 0 {
				break
			}
		}
		results = append(results, partial...)
	}
	return results
}
