package pattern

import (
	"testing"

	"tensat/internal/egraph"
	"tensat/internal/tensor"
)

func TestParsePatterns(t *testing.T) {
	p, err := Parse("(matmul ?act ?x (concat2 1 ?y ?z))")
	if err != nil {
		t.Fatal(err)
	}
	if p.Op != tensor.OpMatmul || len(p.Children) != 3 {
		t.Fatalf("parsed %v", p)
	}
	cat := p.Children[2]
	if cat.Op != tensor.OpConcat2 || cat.Children[0].Op != tensor.OpInt || cat.Children[0].Int != 1 {
		t.Fatalf("concat child %v", cat)
	}
	if got := p.Vars(); len(got) != 4 || got[0] != "?act" || got[3] != "?z" {
		t.Fatalf("Vars = %v", got)
	}
}

func TestParseRejectsBadPatterns(t *testing.T) {
	for _, src := range []string{
		"(nosuchop ?x)",
		"(ewadd ?x)",       // arity
		"(ewadd ?x ?y ?z)", // arity
		"?",                // bare question mark
		"((ewadd) ?x ?y)",  // non-atom head
		"()",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseInputWeightLiterals(t *testing.T) {
	p, err := Parse(`(weight "w@4 4")`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Op != tensor.OpWeight || p.Str != "w@4 4" {
		t.Fatalf("parsed %v", p)
	}
}

func TestCanonical(t *testing.T) {
	a := MustParse("(ewadd ?x (ewmul ?y ?x))")
	b := MustParse("(ewadd ?p (ewmul ?q ?p))")
	ca, backA := a.Canonical()
	cb, _ := b.Canonical()
	if ca.String() != cb.String() {
		t.Fatalf("alpha-equivalent patterns canonicalize differently: %s vs %s", ca, cb)
	}
	if backA["?0"] != "?x" || backA["?1"] != "?y" {
		t.Fatalf("rename map %v", backA)
	}
	// Different structure stays different.
	c := MustParse("(ewadd (ewmul ?y ?x) ?x)")
	cc, _ := c.Canonical()
	if cc.String() == ca.String() {
		t.Fatal("structurally different patterns collided")
	}
}

func TestSubstRename(t *testing.T) {
	s := Subst{"?0": 3, "?1": 5}
	out := s.Rename(map[string]string{"?0": "?x", "?1": "?y"})
	if out["?x"] != 3 || out["?y"] != 5 {
		t.Fatalf("renamed %v", out)
	}
}

// buildMatmulEGraph ingests matmul(act=0, x, w) into an e-graph by hand.
func buildMatmulEGraph(t *testing.T) (*egraph.EGraph, egraph.ClassID, egraph.ClassID, egraph.ClassID) {
	t.Helper()
	g := egraph.New(nil)
	act := g.Add(egraph.IntNode(egraph.Op(tensor.OpInt), 0))
	x := g.Add(egraph.StrNode(egraph.Op(tensor.OpInput), "x@8 32"))
	w := g.Add(egraph.StrNode(egraph.Op(tensor.OpWeight), "w@32 16"))
	mm := g.Add(egraph.NewNode(egraph.Op(tensor.OpMatmul), act, x, w))
	return g, mm, x, w
}

func TestSearchFindsMatch(t *testing.T) {
	g, mm, x, w := buildMatmulEGraph(t)
	p := MustParse("(matmul ?a ?x ?y)")
	ms := Search(g, p)
	if len(ms) != 1 {
		t.Fatalf("got %d matches, want 1", len(ms))
	}
	m := ms[0]
	if g.Find(m.Class) != g.Find(mm) {
		t.Fatalf("match class %d, want %d", m.Class, mm)
	}
	if g.Find(m.Subst["?x"]) != g.Find(x) || g.Find(m.Subst["?y"]) != g.Find(w) {
		t.Fatalf("bindings %v", m.Subst)
	}
}

func TestSearchLiteralPayloadMustMatch(t *testing.T) {
	g, _, _, _ := buildMatmulEGraph(t)
	if ms := Search(g, MustParse("(matmul 0 ?x ?y)")); len(ms) != 1 {
		t.Fatalf("literal-activation pattern: %d matches, want 1", len(ms))
	}
	if ms := Search(g, MustParse("(matmul 2 ?x ?y)")); len(ms) != 0 {
		t.Fatalf("wrong activation literal matched: %d", len(ms))
	}
}

func TestSearchNonLinearPattern(t *testing.T) {
	// (ewadd ?x ?x) must only match when both children are the same class.
	g := egraph.New(nil)
	x := g.Add(egraph.StrNode(egraph.Op(tensor.OpInput), "x@4"))
	y := g.Add(egraph.StrNode(egraph.Op(tensor.OpInput), "y@4"))
	xx := g.Add(egraph.NewNode(egraph.Op(tensor.OpEwadd), x, x))
	g.Add(egraph.NewNode(egraph.Op(tensor.OpEwadd), x, y))
	ms := Search(g, MustParse("(ewadd ?x ?x)"))
	if len(ms) != 1 || g.Find(ms[0].Class) != g.Find(xx) {
		t.Fatalf("non-linear match = %v", ms)
	}
	// After x = y both ewadds become self-additions of the merged class.
	g.Union(x, y)
	g.Rebuild()
	ms = Search(g, MustParse("(ewadd ?x ?x)"))
	if len(ms) != 1 { // the two nodes are congruent post-merge
		t.Fatalf("after union: %d matches", len(ms))
	}
}

func TestSearchMatchesAllClassNodes(t *testing.T) {
	// A class holding two different ops yields matches for both patterns.
	g := egraph.New(nil)
	x := g.Add(egraph.StrNode(egraph.Op(tensor.OpInput), "x@4"))
	r := g.Add(egraph.NewNode(egraph.Op(tensor.OpRelu), x))
	th := g.Add(egraph.NewNode(egraph.Op(tensor.OpTanh), x))
	g.Union(r, th)
	g.Rebuild()
	if len(Search(g, MustParse("(relu ?x)"))) != 1 {
		t.Fatal("relu not found in merged class")
	}
	if len(Search(g, MustParse("(tanh ?x)"))) != 1 {
		t.Fatal("tanh not found in merged class")
	}
}

func TestInstantiate(t *testing.T) {
	g, mm, x, w := buildMatmulEGraph(t)
	subst := Subst{"?x": x, "?w": w}
	id, err := Instantiate(g, MustParse("(matmul 0 ?x ?w)"), subst)
	if err != nil {
		t.Fatal(err)
	}
	if g.Find(id) != g.Find(mm) {
		t.Fatal("instantiating an existing expression should hash-cons to its class")
	}
	id2, err := Instantiate(g, MustParse("(relu (matmul 0 ?x ?w))"), subst)
	if err != nil {
		t.Fatal(err)
	}
	cls := g.Class(id2)
	if cls.Nodes[0].Op != egraph.Op(tensor.OpRelu) {
		t.Fatalf("instantiated class root %v", cls.Nodes[0])
	}
	if _, err := Instantiate(g, MustParse("(relu ?unbound)"), subst); err == nil {
		t.Fatal("unbound variable accepted")
	}
}

func TestSearchClass(t *testing.T) {
	g, mm, _, _ := buildMatmulEGraph(t)
	if ms := SearchClass(g, MustParse("(matmul ?a ?x ?y)"), mm); len(ms) != 1 {
		t.Fatalf("SearchClass at root: %d matches", len(ms))
	}
	p := MustParse("(relu ?x)")
	if ms := SearchClass(g, p, mm); len(ms) != 0 {
		t.Fatalf("SearchClass wrong op: %d matches", len(ms))
	}
}

func TestInferMetaShapeChecksTarget(t *testing.T) {
	xm := tensor.TensorMeta(tensor.Shape{8, 32})
	ym := tensor.TensorMeta(tensor.Shape{32, 16})
	lookup := func(v string) (*tensor.Meta, bool) {
		switch v {
		case "?x":
			return xm, true
		case "?y":
			return ym, true
		}
		return nil, false
	}
	m, err := InferMeta(MustParse("(matmul 0 ?x ?y)"), lookup)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Shape.Equal(tensor.Shape{8, 16}) {
		t.Fatalf("inferred %v", m.Shape)
	}
	// Incompatible target is rejected: y x instead of x y.
	if _, err := InferMeta(MustParse("(matmul 0 ?y ?x)"), lookup); err == nil {
		t.Fatal("shape check passed for incompatible matmul")
	}
	// Split without marker rejected.
	if _, err := InferMeta(MustParse("(split0 (split 1 ?x))"), lookup); err == nil {
		t.Fatal("split without concat marker accepted")
	}
}

func TestPatternStringRoundTrip(t *testing.T) {
	for _, src := range []string{
		"(matmul ?act ?x ?y)",
		"(split0 (split 1 (matmul ?a ?x (concat2 1 ?y ?z))))",
		"(conv 1 1 0 0 ?x ?w)",
	} {
		p := MustParse(src)
		q := MustParse(p.String())
		if p.String() != q.String() {
			t.Fatalf("round trip %q -> %q", p.String(), q.String())
		}
	}
}
