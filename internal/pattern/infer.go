package pattern

import (
	"fmt"

	"tensat/internal/tensor"
)

// InferMeta symbolically evaluates the shapes of a pattern given metas
// for its variables. The rewrite engine uses it to shape-check a
// target pattern before applying a rewrite (§4): if any operator in
// the target is ill-typed for the matched tensors, the rewrite is
// skipped.
func InferMeta(p *Pat, varMeta func(string) (*tensor.Meta, bool)) (*tensor.Meta, error) {
	if p.IsVar() {
		m, ok := varMeta(p.Var)
		if !ok || m == nil {
			return nil, fmt.Errorf("pattern: no meta for variable %s", p.Var)
		}
		return m, nil
	}
	args := make([]*tensor.Meta, len(p.Children))
	for i, c := range p.Children {
		m, err := InferMeta(c, varMeta)
		if err != nil {
			return nil, err
		}
		args[i] = m
	}
	return tensor.Infer(p.Op, p.Int, p.Str, args)
}
