package pattern

import (
	"sync"

	"tensat/internal/egraph"
)

// This file implements the compiled e-matching engine. A Pat is
// compiled once (Compile) into a Program: a flat instruction sequence
// over an integer register file, in the style of egg's e-matching
// virtual machine. Register 0 holds the candidate root e-class; a bind
// instruction enumerates the nodes of a class that carry the pattern's
// operator and payloads, writing the canonical children classes into
// fresh registers; a compare instruction enforces non-linear variables
// (a variable occurring twice must bind the same e-class). Variables
// are register slots, so a match's substitution is a flat []ClassID
// instead of a string-keyed map, and the per-binding map clone of the
// old tree-walking interpreter disappears from the hot loop entirely.
//
// The enumeration order is exactly the interpreter's: for every class
// in the given scan order, nodes in class order, child choices nested
// left-to-right depth-first. ReferenceSearchClasses (reference.go)
// preserves the old interpreter as the oracle the differential tests
// compare against.

type instKind uint8

const (
	// instBind enumerates the nodes of class regs[a] with the
	// instruction's op/payloads/arity, writing canonical children into
	// regs[out:out+arity] and running the rest of the program for each.
	instBind instKind = iota
	// instCompare requires regs[a] == regs[b] (both canonical): the
	// consistency check for a repeated variable.
	instCompare
)

type inst struct {
	kind  instKind
	a, b  int
	op    egraph.Op
	i64   int64
	str   string
	arity int
	out   int
}

// Program is a compiled pattern. Compile once, match many times; a
// Program is immutable after compilation and safe for concurrent use
// from any number of goroutines (each match run draws a private
// register machine from an internal pool).
type Program struct {
	src     *Pat
	insts   []inst
	nregs   int
	varRegs []int    // register holding each variable, first-occurrence order
	vars    []string // variable names, parallel to varRegs
	rootOp  egraph.Op
	rootVar bool // the pattern is a bare variable: matches every class

	pool sync.Pool // *machine
}

// machine is the mutable register file of one match run.
type machine struct {
	regs []egraph.ClassID
}

// Compile translates p into its instruction program.
func Compile(p *Pat) *Program {
	pr := &Program{src: p}
	varReg := make(map[string]int)
	next := 1 // register 0 is the root class
	var walk func(q *Pat, reg int)
	walk = func(q *Pat, reg int) {
		if q.IsVar() {
			if prev, ok := varReg[q.Var]; ok {
				pr.insts = append(pr.insts, inst{kind: instCompare, a: reg, b: prev})
				return
			}
			varReg[q.Var] = reg
			pr.varRegs = append(pr.varRegs, reg)
			pr.vars = append(pr.vars, q.Var)
			return
		}
		in := inst{
			kind:  instBind,
			a:     reg,
			op:    egraph.Op(q.Op),
			i64:   q.Int,
			str:   q.Str,
			arity: len(q.Children),
			out:   next,
		}
		next += len(q.Children)
		pr.insts = append(pr.insts, in)
		for i, c := range q.Children {
			walk(c, in.out+i)
		}
	}
	walk(p, 0)
	pr.nregs = next
	if p.IsVar() {
		pr.rootVar = true
	} else {
		pr.rootOp = egraph.Op(p.Op)
	}
	return pr
}

// Pat returns the pattern the program was compiled from.
func (pr *Program) Pat() *Pat { return pr.src }

// Vars returns the pattern's variables in first-occurrence order — the
// slot order of Compact.Bind. Callers must not modify the slice.
func (pr *Program) Vars() []string { return pr.vars }

// RootOp returns the operator at the pattern root and true, or ok=false
// when the pattern is a bare variable and every class is a candidate.
func (pr *Program) RootOp() (op egraph.Op, ok bool) {
	return pr.rootOp, !pr.rootVar
}

// Compact is one match produced by a compiled program: the root
// e-class plus the variable bindings as a flat array in Vars order.
// Bind aliases a shared arena; treat it as read-only.
type Compact struct {
	Class egraph.ClassID
	Bind  []egraph.ClassID
}

// Subst expands a compact match into the map form of the classic API.
func (pr *Program) Subst(m Compact) Subst {
	s := make(Subst, len(pr.vars))
	for i, v := range pr.vars {
		s[v] = m.Bind[i]
	}
	return s
}

func (pr *Program) newMachine() *machine {
	if m, ok := pr.pool.Get().(*machine); ok {
		return m
	}
	return &machine{regs: make([]egraph.ClassID, pr.nregs)}
}

// bindArenaMin sizes the chunks the binding arena grows by, amortizing
// one allocation over many matches.
const bindArenaMin = 512

// AppendMatches scans classes in order, appending every match rooted
// at each class to dst. The scan order and per-class enumeration order
// reproduce the reference interpreter exactly, so sharded scans
// concatenated in shard order equal one whole scan. The register
// machine is pooled and match bindings are carved from a shared arena,
// so a scan performs O(matches/chunk) allocations rather than
// O(bindings).
func (pr *Program) AppendMatches(dst []Compact, src Source, classes []*egraph.Class) []Compact {
	m := pr.newMachine()
	defer pr.pool.Put(m)
	nv := len(pr.varRegs)
	var arena []egraph.ClassID
	var root egraph.ClassID
	var exec func(pc int)
	exec = func(pc int) {
		for pc < len(pr.insts) {
			in := &pr.insts[pc]
			if in.kind == instCompare {
				if m.regs[in.a] != m.regs[in.b] {
					return
				}
				pc++
				continue
			}
			cls := src.Class(m.regs[in.a])
			for ni := range cls.Nodes {
				n := &cls.Nodes[ni]
				if n.Op != in.op || n.Int != in.i64 || n.Str != in.str || len(n.Children) != in.arity {
					continue
				}
				for k, ch := range n.Children {
					m.regs[in.out+k] = src.Find(ch)
				}
				exec(pc + 1)
			}
			return
		}
		// All instructions satisfied: record the match.
		if cap(arena)-len(arena) < nv {
			size := bindArenaMin
			if size < nv {
				size = nv
			}
			arena = make([]egraph.ClassID, 0, size)
		}
		start := len(arena)
		for _, r := range pr.varRegs {
			arena = append(arena, m.regs[r])
		}
		dst = append(dst, Compact{Class: root, Bind: arena[start:len(arena):len(arena)]})
	}
	for _, cls := range classes {
		root = src.Find(cls.ID)
		m.regs[0] = root
		exec(0)
	}
	return dst
}
