package pattern

import (
	"fmt"
	"math/rand"
	"testing"

	"tensat/internal/egraph"
	"tensat/internal/tensor"
)

// This file is the transition oracle of the compiled e-matching
// engine: on random e-graphs and random patterns, the compiled VM
// must produce the exact match list — same multiset, same order, same
// bindings — as the reference tree-walking interpreter it replaced.

// fuzzOps is the operator vocabulary of the random graphs/patterns:
// string leaves, a unary op, and two binary ops.
var fuzzOps = struct {
	leaf, un, bin1, bin2 egraph.Op
}{egraph.Op(tensor.OpInput), egraph.Op(tensor.OpRelu), egraph.Op(tensor.OpEwadd), egraph.Op(tensor.OpEwmul)}

// randomEGraph builds a random e-graph: a pool of leaves, ~size random
// operator nodes over existing classes, then a handful of unions (so
// classes hold several nodes and congruence merges fire) and a rebuild.
func randomEGraph(rng *rand.Rand, size int) *egraph.EGraph {
	g := egraph.New(nil)
	var ids []egraph.ClassID
	for i := 0; i < 4; i++ {
		ids = append(ids, g.Add(egraph.StrNode(fuzzOps.leaf, fmt.Sprintf("x%d", i))))
	}
	pick := func() egraph.ClassID { return ids[rng.Intn(len(ids))] }
	for i := 0; i < size; i++ {
		var n egraph.Node
		switch rng.Intn(3) {
		case 0:
			n = egraph.NewNode(fuzzOps.un, pick())
		case 1:
			n = egraph.NewNode(fuzzOps.bin1, pick(), pick())
		default:
			n = egraph.NewNode(fuzzOps.bin2, pick(), pick())
		}
		ids = append(ids, g.Add(n))
	}
	for i := 0; i < 1+size/8; i++ {
		g.Union(pick(), pick())
	}
	g.Rebuild()
	return g
}

// randomPat builds a random pattern of bounded depth over the fuzz
// vocabulary. Variables draw from a pool of three names, so repeated
// variables (non-linear patterns) occur regularly.
func randomPat(rng *rand.Rand, depth int) *Pat {
	vars := []string{"?a", "?b", "?c"}
	if depth == 0 || rng.Intn(3) == 0 {
		if rng.Intn(4) == 0 {
			return &Pat{Op: tensor.Op(fuzzOps.leaf), Str: fmt.Sprintf("x%d", rng.Intn(4))}
		}
		return &Pat{Var: vars[rng.Intn(len(vars))]}
	}
	switch rng.Intn(3) {
	case 0:
		return &Pat{Op: tensor.Op(fuzzOps.un), Children: []*Pat{randomPat(rng, depth-1)}}
	case 1:
		return &Pat{Op: tensor.Op(fuzzOps.bin1), Children: []*Pat{randomPat(rng, depth-1), randomPat(rng, depth-1)}}
	default:
		return &Pat{Op: tensor.Op(fuzzOps.bin2), Children: []*Pat{randomPat(rng, depth-1), randomPat(rng, depth-1)}}
	}
}

// assertSameMatches compares two match lists exactly: length, order,
// root classes and full substitutions.
func assertSameMatches(t *testing.T, label string, want, got []Match) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d matches, reference found %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].Class != got[i].Class {
			t.Fatalf("%s: match %d rooted at e%d, reference at e%d", label, i, got[i].Class, want[i].Class)
		}
		if len(want[i].Subst) != len(got[i].Subst) {
			t.Fatalf("%s: match %d binds %d vars, reference %d", label, i, len(got[i].Subst), len(want[i].Subst))
		}
		for v, id := range want[i].Subst {
			if got[i].Subst[v] != id {
				t.Fatalf("%s: match %d binds %s=e%d, reference e%d", label, i, v, got[i].Subst[v], id)
			}
		}
	}
}

// TestDifferentialCompiledVsInterpreter runs the compiled engine and
// the reference interpreter over random graphs and patterns, asserting
// identical match lists (order included, which is stronger than the
// multiset equality the runner needs).
func TestDifferentialCompiledVsInterpreter(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomEGraph(rng, 24+rng.Intn(40))
		v := g.Freeze()
		classes := v.Classes()
		for pi := 0; pi < 8; pi++ {
			p := randomPat(rng, 1+rng.Intn(3))
			label := fmt.Sprintf("seed %d pattern %s", seed, p)
			want := ReferenceSearchClasses(v, p, classes)
			assertSameMatches(t, label, want, SearchClasses(v, p, classes))

			// Sharded compiled scans concatenated in shard order must
			// equal the whole scan.
			prog := Compile(p)
			var sharded []Compact
			for lo := 0; lo < len(classes); {
				hi := lo + 1 + rng.Intn(7)
				if hi > len(classes) {
					hi = len(classes)
				}
				sharded = prog.AppendMatches(sharded, v, classes[lo:hi])
				lo = hi
			}
			whole := prog.AppendMatches(nil, v, classes)
			if len(sharded) != len(whole) {
				t.Fatalf("%s: sharded scan found %d, whole %d", label, len(sharded), len(whole))
			}
			for i := range whole {
				if whole[i].Class != sharded[i].Class {
					t.Fatalf("%s: sharded match %d differs", label, i)
				}
				for k := range whole[i].Bind {
					if whole[i].Bind[k] != sharded[i].Bind[k] {
						t.Fatalf("%s: sharded binding %d/%d differs", label, i, k)
					}
				}
			}

			// Op-index pruning must not change the match list: scanning
			// only the root op's candidate classes equals the full scan.
			if op, ok := prog.RootOp(); ok {
				assertSameMatches(t, label+" (pruned)", want, SearchClasses(v, p, v.ByOp(op)))
			}
		}
	}
}

// TestCompiledMatchesMutableEGraph checks the mutable-EGraph entry
// points (Search/SearchClass) agree with the reference interpreter —
// the library-user path that never touches View shares the engine.
func TestCompiledMatchesMutableEGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomEGraph(rng, 48)
	var classes []*egraph.Class
	g.Classes(func(cls *egraph.Class) { classes = append(classes, cls) })
	for pi := 0; pi < 12; pi++ {
		p := randomPat(rng, 1+rng.Intn(3))
		label := fmt.Sprintf("pattern %s", p)
		want := ReferenceSearchClasses(g, p, classes)
		assertSameMatches(t, label, want, Search(g, p))
		for _, cls := range classes {
			cwant := ReferenceSearchClasses(g, p, []*egraph.Class{cls})
			assertSameMatches(t, label+" (class)", cwant, SearchClass(g, p, cls.ID))
		}
	}
}
