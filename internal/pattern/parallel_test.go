package pattern

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"tensat/internal/egraph"
	"tensat/internal/tensor"
)

// buildSaturatedEGraph makes an e-graph with enough merged classes that
// path compression would fire on almost every Find: a chain of ewadds
// over many inputs, with the inputs pairwise unioned.
func buildSaturatedEGraph(t testing.TB) *egraph.EGraph {
	t.Helper()
	g := egraph.New(nil)
	var inputs []egraph.ClassID
	for i := 0; i < 24; i++ {
		inputs = append(inputs, g.Add(egraph.StrNode(egraph.Op(tensor.OpInput), fmt.Sprintf("x%d@4", i))))
	}
	prev := inputs[0]
	for _, in := range inputs[1:] {
		prev = g.Add(egraph.NewNode(egraph.Op(tensor.OpEwadd), prev, in))
		g.Add(egraph.NewNode(egraph.Op(tensor.OpEwmul), in, prev))
		g.Add(egraph.NewNode(egraph.Op(tensor.OpRelu), in))
	}
	// Merge input pairs so many ewadd/ewmul nodes become congruent and
	// the union-find develops real chains.
	for i := 0; i+1 < len(inputs); i += 2 {
		g.Union(inputs[i], inputs[i+1])
	}
	g.Rebuild()
	return g
}

// matchKey renders a match canonically (through src) for multiset
// comparison.
func matchKey(src Source, m Match) string {
	keys := make([]string, 0, len(m.Subst))
	for k, v := range m.Subst {
		keys = append(keys, fmt.Sprintf("%s=e%d", k, src.Find(v)))
	}
	sort.Strings(keys)
	return fmt.Sprintf("e%d|%v", src.Find(m.Class), keys)
}

func sortedKeys(src Source, ms []Match) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = matchKey(src, m)
	}
	sort.Strings(out)
	return out
}

// TestParallelSearchMatchesSequential runs many goroutines over one
// frozen view (whole-view searches plus sharded scans) and checks every
// one reproduces the sequential Search result exactly. Run under -race
// this also proves the view is read-only in practice.
func TestParallelSearchMatchesSequential(t *testing.T) {
	g := buildSaturatedEGraph(t)
	pats := []*Pat{
		MustParse("(ewadd ?a ?b)"),
		MustParse("(ewmul ?a (ewadd ?b ?c))"),
		MustParse("(relu ?x)"),
		MustParse("(ewadd (ewadd ?a ?b) ?c)"),
	}
	seq := make([][]string, len(pats))
	for i, p := range pats {
		seq[i] = sortedKeys(g, Search(g, p))
		if len(seq[i]) == 0 && i != 1 {
			t.Fatalf("pattern %d found nothing; workload too weak", i)
		}
	}

	view := g.Freeze()
	classes := view.Classes()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, p := range pats {
				var got []Match
				if w%2 == 0 {
					got = SearchView(view, p)
				} else {
					// Sharded scan: quarters concatenated in order.
					for lo := 0; lo < len(classes); lo += (len(classes) + 3) / 4 {
						hi := lo + (len(classes)+3)/4
						if hi > len(classes) {
							hi = len(classes)
						}
						got = append(got, SearchClasses(view, p, classes[lo:hi])...)
					}
				}
				if keys := sortedKeys(view, got); !equalStrings(keys, seq[i]) {
					t.Errorf("worker %d pattern %d: parallel found %d matches, sequential %d",
						w, i, len(keys), len(seq[i]))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if view.Stale() {
		t.Fatal("searching marked the view stale: something mutated the e-graph")
	}
}

// TestSearchViewOrderIdentical checks the stronger property the runner
// relies on for deterministic exploration: not just the same multiset,
// but the same order of matches.
func TestSearchViewOrderIdentical(t *testing.T) {
	g := buildSaturatedEGraph(t)
	p := MustParse("(ewadd ?a ?b)")
	seq := Search(g, p)
	view := g.Freeze()
	par := SearchView(view, p)
	if len(seq) != len(par) {
		t.Fatalf("lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Class != par[i].Class || matchKey(g, seq[i]) != matchKey(view, par[i]) {
			t.Fatalf("match %d differs: %v vs %v", i, seq[i], par[i])
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
