package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRingAgreementAcrossMembers(t *testing.T) {
	// Every member builds its own ring from the (differently ordered)
	// peer list; all must assign every key identically.
	a := NewRing([]string{"n1:80", "n2:80", "n3:80"}, 0)
	b := NewRing([]string{"n3:80", "n1:80", "n2:80", "n2:80"}, 0)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("rings disagree on %q: %s vs %s", key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingBalanceAndStability(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	r := NewRing(nodes, 0)
	counts := map[string]int{}
	rng := rand.New(rand.NewSource(1))
	const n = 20000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("fp-%d", rng.Int63()))]++
	}
	for _, node := range nodes {
		share := float64(counts[node]) / n
		if share < 0.10 || share > 0.45 {
			t.Fatalf("node %s owns %.1f%% of keys — ring badly balanced: %v", node, share*100, counts)
		}
	}
	// Removing one node must only move the removed node's keys.
	smaller := NewRing([]string{"a", "b", "c"}, 0)
	moved := 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("fp-%d", i)
		before, after := r.Owner(key), smaller.Owner(key)
		if before != "d" && before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys moved between surviving nodes on member removal", moved)
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if got := NewRing(nil, 0).Owner("k"); got != "" {
		t.Fatalf("empty ring owner = %q", got)
	}
	if got := NewRing([]string{"solo"}, 0).Owner("k"); got != "solo" {
		t.Fatalf("single ring owner = %q", got)
	}
}

// testSecret is the shared peer-auth secret the client tests run with.
const testSecret = "cluster-test-secret-0123456789"

func TestClientValidation(t *testing.T) {
	if _, err := New(Config{Peers: []string{"a"}, Secret: testSecret}); err == nil {
		t.Fatal("missing Self accepted")
	}
	if _, err := New(Config{Self: "a", Peers: []string{"a"}, Secret: testSecret}); err == nil {
		t.Fatal("single-node cluster accepted")
	}
	if _, err := New(Config{Self: "a", Peers: []string{"b"}}); err == nil {
		t.Fatal("missing cluster secret accepted")
	}
	if _, err := New(Config{Self: "a", Peers: []string{"b"}, Secret: "short"}); err == nil {
		t.Fatal("undersized cluster secret accepted")
	}
	c, err := New(Config{Self: "a", Peers: []string{"b"}, Secret: testSecret}) // self added implicitly
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Nodes(); len(got) != 2 {
		t.Fatalf("nodes = %v", got)
	}
	if c.Authorize("") || c.Authorize("short") || !c.Authorize(testSecret) {
		t.Fatal("Authorize does not match the configured secret exactly")
	}
}

// testPeer fakes the owner side of the peer surface.
func testPeer(t *testing.T, self string, records map[string][]byte) (*httptest.Server, *sync.Map) {
	t.Helper()
	var puts sync.Map
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, PeerPath) {
			http.NotFound(w, r)
			return
		}
		// The fake owner enforces what the real peer surface does:
		// every node-to-node request must carry the shared secret.
		if r.Header.Get(AuthHeader) != testSecret {
			w.WriteHeader(http.StatusUnauthorized)
			return
		}
		if r.Header.Get(OriginHeader) == self {
			w.WriteHeader(http.StatusLoopDetected)
			return
		}
		key := strings.TrimPrefix(r.URL.Path, PeerPath)
		switch r.Method {
		case http.MethodGet:
			if rec, ok := records[key]; ok {
				w.Write(rec)
				return
			}
			w.WriteHeader(http.StatusNotFound)
		case http.MethodPut:
			body := make([]byte, r.ContentLength)
			r.Body.Read(body)
			puts.Store(key, body)
			w.WriteHeader(http.StatusNoContent)
		}
	}))
	t.Cleanup(srv.Close)
	return srv, &puts
}

// twoNodeClient builds a client whose single peer is the given test
// server, with the ring rigged so every key is owned by the peer.
func twoNodeClient(t *testing.T, peerURL string, timeout time.Duration) *Client {
	t.Helper()
	c, err := New(Config{
		Self:    "self",
		Peers:   []string{"self", "peer"},
		Timeout: timeout,
		BaseURL: func(node string) string { return peerURL },
		Secret:  testSecret,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// remoteKey finds a key owned by "peer" on the self/peer ring.
func remoteKey(t *testing.T, c *Client) string {
	t.Helper()
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if owner, local := c.Owner(key); !local && owner == "peer" {
			return key
		}
	}
	t.Fatal("no peer-owned key found")
	return ""
}

func TestClientFetchAndPush(t *testing.T) {
	c := twoNodeClient(t, "", 0)
	key := remoteKey(t, c)
	srv, puts := testPeer(t, "peer", map[string][]byte{key: []byte("record-bytes")})
	// Rebuild with the live URL now that the server exists.
	c = twoNodeClient(t, srv.URL, 0)

	got, err := c.Fetch(context.Background(), key)
	if err != nil || string(got) != "record-bytes" {
		t.Fatalf("Fetch = %q, %v", got, err)
	}
	if _, err := c.Fetch(context.Background(), key+"-missing-from-peer"); !errors.Is(err, ErrNotFound) {
		// Any other peer-owned key misses cleanly.
		if owner, local := c.Owner(key + "-missing-from-peer"); !local && owner == "peer" {
			t.Fatalf("miss: err = %v, want ErrNotFound", err)
		}
	}
	if err := c.Push(context.Background(), key, []byte("pushed")); err != nil {
		t.Fatalf("Push: %v", err)
	}
	if v, ok := puts.Load(key); !ok || string(v.([]byte)) != "pushed" {
		t.Fatalf("push not received: %v %v", v, ok)
	}
}

func TestClientLocalKeysShortCircuit(t *testing.T) {
	c := twoNodeClient(t, "http://invalid.invalid", 0)
	var local string
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if _, isLocal := c.Owner(key); isLocal {
			local = key
			break
		}
	}
	if local == "" {
		t.Fatal("no self-owned key found")
	}
	// No server exists; a locally-owned key must never hit the network.
	if _, err := c.Fetch(context.Background(), local); !errors.Is(err, ErrNotFound) {
		t.Fatalf("local fetch: %v, want ErrNotFound", err)
	}
	if err := c.Push(context.Background(), local, []byte("x")); err != nil {
		t.Fatalf("local push: %v, want nil no-op", err)
	}
}

func TestClientLoopDetection(t *testing.T) {
	// The peer answers 508 when the origin header names itself — the
	// self-peering misconfiguration.
	c := twoNodeClient(t, "", 0)
	key := remoteKey(t, c)
	srv, _ := testPeer(t, "self", nil) // peer treats "self" as its own name
	c = twoNodeClient(t, srv.URL, 0)
	if _, err := c.Fetch(context.Background(), key); !errors.Is(err, ErrLoop) {
		t.Fatalf("looped fetch: %v, want ErrLoop", err)
	}
}

func TestClientTimeoutIsAMiss(t *testing.T) {
	stall := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-stall
	}))
	// LIFO: unblock the stalled handler before Close waits on it.
	defer srv.Close()
	defer close(stall)
	c := twoNodeClient(t, srv.URL, 50*time.Millisecond)
	key := remoteKey(t, c)
	start := time.Now()
	_, err := c.Fetch(context.Background(), key)
	if err == nil || errors.Is(err, ErrNotFound) {
		t.Fatalf("stalled peer: err = %v, want transport error", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("timeout not enforced: fetch took %v", elapsed)
	}
}
