package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"time"

	"tensat/internal/fault"
)

// Headers on the internal peer surface. Every peer request carries
// AuthHeader with the fleet's shared secret — the peer endpoints share
// the client listener, so without a credential any network client
// could read cached results (bypassing tenant auth) or poison the
// fleet's warm set with crafted records; receivers verify it in
// constant time and answer 401 otherwise. Every request also carries
// OriginHeader naming the sending node; a receiving node that finds
// its own name there (a peer list pointing a node at itself, or a
// proxy bouncing the request back) answers 508 instead of serving.
// The peer cache endpoints additionally never fan out — they answer
// strictly from local tiers — so routing loops are impossible by
// construction; the header catches the misconfiguration early and
// loudly.
const (
	// AuthHeader carries the fleet's shared cluster secret.
	AuthHeader = "X-Tensat-Peer-Auth"
	// OriginHeader names the node a peer request originated from.
	OriginHeader = "X-Tensat-Peer-Origin"
	// PeerPath is the internal cache surface prefix; the cache key is
	// the final path element.
	PeerPath = "/v1/peer/cache/"
)

// MinSecretLen is the shortest accepted cluster secret. The secret is
// the only thing between the open network and the fleet's cache
// surface, so a trivially guessable one is a configuration error.
const MinSecretLen = 16

// ErrLoop reports a peer request that arrived back at its origin.
var ErrLoop = errors.New("cluster: peer request looped back to origin")

// ErrNotFound reports a clean peer-side cache miss (HTTP 404).
var ErrNotFound = errors.New("cluster: peer cache miss")

// ErrPeerDown reports that no live peer was available for the key:
// every candidate's circuit breaker refused the request. Callers treat
// it exactly like a miss — compute locally.
var ErrPeerDown = errors.New("cluster: no live peer for key")

// DefaultTimeout bounds one peer cache round trip. Peer hits must be
// much cheaper than recomputing; a slow peer is treated as a miss.
const DefaultTimeout = 2 * time.Second

// Resilience defaults. The breaker trips after DefaultBreakerThreshold
// consecutive transport failures and shuns the peer for
// DefaultBreakerCooldown before admitting a half-open probe; an
// idempotent fetch retries DefaultRetryAttempts times with jittered
// exponential backoff starting at DefaultRetryBaseDelay.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 5 * time.Second
	DefaultRetryAttempts    = 2
	DefaultRetryBaseDelay   = 50 * time.Millisecond
	DefaultPushQueueLen     = 256
	DefaultPushWorkers      = 2
)

// FalloverDepth is how far down a key's successor list health-gated
// routing will go: the primary owner plus one fallback. Receivers
// accept pushed records from any sender that routed within this depth,
// so the ownership check stays meaningful while an owner is down.
const FalloverDepth = 2

// Config assembles a Client.
type Config struct {
	// Self is this node's own name in the peer list (e.g. its
	// advertised host:port). Keys owned by Self are local.
	Self string
	// Peers is the full static fleet membership, Self included (it is
	// added if absent). Order does not matter.
	Peers []string
	// Secret authenticates node-to-node traffic: every peer request
	// carries it in AuthHeader, and every node rejects peer requests
	// that do not present it. Required (at least MinSecretLen bytes) —
	// the peer surface shares the client listener, so an unsecured
	// fleet would let any network client read or poison the cache.
	Secret string
	// VirtualNodes tunes the ring (0 = DefaultVirtualNodes).
	VirtualNodes int
	// Timeout bounds each peer request (0 = DefaultTimeout).
	Timeout time.Duration
	// BaseURL maps a node name to the base URL its HTTP surface is
	// reachable at; nil means "http://" + node.
	BaseURL func(node string) string
	// Transport overrides the HTTP transport (tests); nil means
	// http.DefaultTransport.
	Transport http.RoundTripper

	// BreakerThreshold is how many consecutive failures trip a peer's
	// circuit breaker (0 = DefaultBreakerThreshold).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker shuns its peer
	// before admitting a half-open probe (0 = DefaultBreakerCooldown).
	BreakerCooldown time.Duration
	// RetryAttempts is how many times an idempotent fetch retries after
	// a transport failure (<0 disables retry, 0 = DefaultRetryAttempts).
	RetryAttempts int
	// RetryBaseDelay seeds the jittered exponential backoff between
	// retries (0 = DefaultRetryBaseDelay).
	RetryBaseDelay time.Duration
	// PushQueueLen bounds the async push queue; enqueues beyond it are
	// dropped and counted (0 = DefaultPushQueueLen).
	PushQueueLen int
	// PushWorkers is how many goroutines drain the push queue
	// (0 = DefaultPushWorkers).
	PushWorkers int
}

// Observer receives the client's resilience events so the serving
// layer can feed its metrics without this package depending on it.
// Any field may be nil. Callbacks must be safe for concurrent use and
// must not block.
type Observer struct {
	// BreakerChange fires on every breaker transition with the new
	// state (the `tensat_peer_breaker_state{peer}` gauge value).
	BreakerChange func(peer string, state BreakerState)
	// PushDone fires when an async push finishes (err nil on success).
	PushDone func(err error)
	// FetchRetry fires before each fetch retry attempt.
	FetchRetry func(peer string)
}

// Client fetches and pushes encoded cache records across the fleet.
// All methods are safe for concurrent use. Close releases the async
// push workers; after Close, EnqueuePush reports false.
type Client struct {
	self       string
	ring       *Ring
	baseURL    func(node string) string
	http       *http.Client
	secret     string
	secretHash [sha256.Size]byte

	breakers      map[string]*breaker
	retryAttempts int
	retryBase     time.Duration

	obsMu sync.RWMutex
	obs   Observer

	pushMu     sync.RWMutex
	pushClosed bool
	pushCh     chan pushItem
	pushWG     sync.WaitGroup
}

type pushItem struct {
	key     string
	payload []byte
}

// New validates cfg and builds a Client. It fails when Self is empty,
// when the shared Secret is missing or too short, or when the fleet
// has no members besides the implicit Self — a single-node "cluster"
// should simply not configure one.
//
//lint:ctxflow-exempt constructor: bounded passes over the static fleet membership at config time
func New(cfg Config) (*Client, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Self must name this node")
	}
	if len(cfg.Secret) < MinSecretLen {
		return nil, fmt.Errorf("cluster: Secret must be at least %d bytes (got %d) — the shared fleet secret is what keeps the peer cache surface off-limits to clients", MinSecretLen, len(cfg.Secret))
	}
	nodes := append([]string(nil), cfg.Peers...)
	found := false
	for _, n := range nodes {
		if n == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		nodes = append(nodes, cfg.Self)
	}
	ring := NewRing(nodes, cfg.VirtualNodes)
	if len(ring.Nodes()) < 2 {
		return nil, fmt.Errorf("cluster: need at least one peer besides self, got %v", ring.Nodes())
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	base := cfg.BaseURL
	if base == nil {
		base = func(node string) string { return "http://" + node }
	}
	threshold := cfg.BreakerThreshold
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	cooldown := cfg.BreakerCooldown
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	retries := cfg.RetryAttempts
	if retries == 0 {
		retries = DefaultRetryAttempts
	} else if retries < 0 {
		retries = 0
	}
	retryBase := cfg.RetryBaseDelay
	if retryBase <= 0 {
		retryBase = DefaultRetryBaseDelay
	}
	queueLen := cfg.PushQueueLen
	if queueLen <= 0 {
		queueLen = DefaultPushQueueLen
	}
	workers := cfg.PushWorkers
	if workers <= 0 {
		workers = DefaultPushWorkers
	}
	c := &Client{
		self:          cfg.Self,
		ring:          ring,
		baseURL:       base,
		secret:        cfg.Secret,
		secretHash:    sha256.Sum256([]byte(cfg.Secret)),
		retryAttempts: retries,
		retryBase:     retryBase,
		breakers:      make(map[string]*breaker),
		pushCh:        make(chan pushItem, queueLen),
		http: &http.Client{
			Timeout:   timeout,
			Transport: cfg.Transport,
		},
	}
	for _, n := range ring.Nodes() {
		if n == cfg.Self {
			continue
		}
		peer := n
		c.breakers[peer] = newBreaker(threshold, cooldown, func(st BreakerState) {
			c.notifyBreaker(peer, st)
		})
	}
	c.pushWG.Add(workers)
	for i := 0; i < workers; i++ {
		go c.pushWorker()
	}
	return c, nil
}

// SetObserver installs the resilience-event callbacks. Call it once,
// before serving traffic.
func (c *Client) SetObserver(o Observer) {
	c.obsMu.Lock()
	c.obs = o
	c.obsMu.Unlock()
}

func (c *Client) observer() Observer {
	c.obsMu.RLock()
	defer c.obsMu.RUnlock()
	return c.obs
}

func (c *Client) notifyBreaker(peer string, st BreakerState) {
	if f := c.observer().BreakerChange; f != nil {
		f(peer, st)
	}
}

// Close stops the async push workers after draining whatever the queue
// already holds. Subsequent EnqueuePush calls report false.
func (c *Client) Close() {
	c.pushMu.Lock()
	if !c.pushClosed {
		c.pushClosed = true
		close(c.pushCh)
	}
	c.pushMu.Unlock()
	c.pushWG.Wait() //lint:ctxflow-exempt shutdown path: bounded by the queue length times the per-push HTTP timeout
}

// Self returns this node's name.
func (c *Client) Self() string { return c.self }

// Authorize reports whether a presented AuthHeader value matches the
// fleet secret. The comparison runs over fixed-size digests in
// constant time, so neither the secret's length nor its contents leak
// through response timing.
func (c *Client) Authorize(presented string) bool {
	h := sha256.Sum256([]byte(presented))
	return subtle.ConstantTimeCompare(h[:], c.secretHash[:]) == 1
}

// Nodes returns the fleet membership, sorted.
func (c *Client) Nodes() []string { return c.ring.Nodes() }

// Owner returns the node owning key and whether that is this node.
// Ownership here is the ring's primary assignment, ignoring health —
// use it for reporting; routing goes through the health-gated path.
func (c *Client) Owner(key string) (node string, local bool) {
	node = c.ring.Owner(key)
	return node, node == c.self
}

// MayOwn reports whether this node is an acceptable home for key: the
// primary owner, or close enough in the successor list (within
// FalloverDepth) that a peer whose view has the primary down would
// route the key here. Receivers use it to validate pushed records.
func (c *Client) MayOwn(key string) bool {
	for _, n := range c.ring.Successors(key, FalloverDepth) {
		if n == c.self {
			return true
		}
	}
	return false
}

// BreakerStates reports every peer's current breaker state, keyed by
// peer name. For readiness reporting.
//
//lint:ctxflow-exempt bounded snapshot of the static per-peer breaker map; no I/O
func (c *Client) BreakerStates() map[string]BreakerState {
	out := make(map[string]BreakerState, len(c.breakers))
	for peer, b := range c.breakers {
		out[peer] = b.current()
	}
	return out
}

// route picks the node a request for key should go to, walking the
// key's successor list and skipping peers whose breaker refuses the
// request. local=true means the walk reached this node first — serve
// its local tiers. A nil breaker with ok=true never happens: every
// granted remote route has acquired its peer's breaker and the caller
// must settle it with success or failure.
func (c *Client) route(key string) (node string, local bool, br *breaker, ok bool) {
	for _, n := range c.ring.Successors(key, FalloverDepth) {
		if n == c.self {
			return "", true, nil, false
		}
		b := c.breakers[n]
		if b != nil && b.tryAcquire() {
			return n, false, b, true
		}
	}
	return "", false, nil, false
}

func (c *Client) keyURL(node, key string) string {
	return c.baseURL(node) + PeerPath + url.PathEscape(key)
}

// backoff sleeps the jittered exponential delay for the given retry
// attempt (0-based), honoring ctx cancellation.
func (c *Client) backoff(ctx context.Context, attempt int) error {
	d := c.retryBase << uint(attempt)
	// Full jitter over [d/2, d): concurrent retries against a
	// recovering peer spread out instead of stampeding.
	half := int64(d / 2)
	if half < 1 {
		half = 1
	}
	d = time.Duration(half + rand.Int63n(half))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Fetch asks key's owner (or, when the owner's breaker is open, its
// live successor) for its cached record. It returns ErrNotFound on a
// clean miss, ErrPeerDown when no live peer exists, and other errors
// on transport failures — all of which callers treat as "compute
// locally". Transport failures are retried with jittered exponential
// backoff (fetches are idempotent); every failure feeds the peer's
// circuit breaker. Fetch on a locally-owned key returns ErrNotFound
// immediately (the local tiers were already consulted).
func (c *Client) Fetch(ctx context.Context, key string) ([]byte, error) {
	node, local, br, ok := c.route(key)
	if local {
		return nil, ErrNotFound
	}
	if !ok {
		return nil, ErrPeerDown
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		payload, retriable, err := c.doFetch(ctx, node, key)
		if err == nil {
			br.success()
			return payload, nil
		}
		if !retriable {
			// The peer answered (miss, loop, rejection): it is alive,
			// whatever it said.
			br.success()
			return nil, err
		}
		br.failure()
		lastErr = err
		if attempt >= c.retryAttempts {
			return nil, lastErr
		}
		if err := c.backoff(ctx, attempt); err != nil {
			return nil, lastErr
		}
		if !br.tryAcquire() {
			// Breaker tripped during the backoff: stop hammering.
			return nil, lastErr
		}
		if f := c.observer().FetchRetry; f != nil {
			f(node)
		}
	}
}

// doFetch runs one fetch attempt. retriable=true marks transport-level
// failures worth retrying and counting against the breaker.
func (c *Client) doFetch(ctx context.Context, node, key string) (payload []byte, retriable bool, err error) {
	if err := fault.Check("peer.fetch"); err != nil {
		return nil, true, fmt.Errorf("cluster: fetching %q from %s: %w", key, node, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.keyURL(node, key), nil)
	if err != nil {
		return nil, false, fmt.Errorf("cluster: %w", err)
	}
	req.Header.Set(AuthHeader, c.secret)
	req.Header.Set(OriginHeader, c.self)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, true, fmt.Errorf("cluster: fetching %q from %s: %w", key, node, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		// Bound the read: a record larger than the store's frame limit
		// is corrupt by definition.
		payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<30))
		if err != nil {
			return nil, true, fmt.Errorf("cluster: reading record from %s: %w", node, err)
		}
		return payload, false, nil
	case http.StatusNotFound:
		return nil, false, ErrNotFound
	case http.StatusLoopDetected:
		return nil, false, fmt.Errorf("%w (peer %s)", ErrLoop, node)
	default:
		if resp.StatusCode >= 500 {
			return nil, true, fmt.Errorf("cluster: peer %s answered %s", node, resp.Status)
		}
		return nil, false, fmt.Errorf("cluster: peer %s answered %s", node, resp.Status)
	}
}

// Push synchronously sends an encoded record toward key's owner (or
// its live successor) so the fleet's warm set converges on the
// responsible node. Pushing a locally-owned key is a no-op (the caller
// already stored it). Push is best-effort and single-attempt: errors
// are for counters and logs, never for failing the client request.
// Prefer EnqueuePush, which bounds concurrency and retries.
func (c *Client) Push(ctx context.Context, key string, payload []byte) error {
	node, local, br, ok := c.route(key)
	if local {
		return nil
	}
	if !ok {
		return ErrPeerDown
	}
	err := c.doPush(ctx, node, key, payload)
	if err != nil {
		br.failure()
	} else {
		br.success()
	}
	return err
}

func (c *Client) doPush(ctx context.Context, node, key string, payload []byte) error {
	if err := fault.Check("peer.push"); err != nil {
		return fmt.Errorf("cluster: pushing %q to %s: %w", key, node, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.keyURL(node, key), bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	req.Header.Set(AuthHeader, c.secret)
	req.Header.Set(OriginHeader, c.self)
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: pushing %q to %s: %w", key, node, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: peer %s rejected push: %s", node, resp.Status)
	}
	return nil
}

// EnqueuePush hands a record to the bounded async push queue. It never
// blocks: when the queue is full (pushes arriving faster than peers
// absorb them) or the client is closed, the record is dropped and
// EnqueuePush reports false so the caller can count it.
//
//lint:ctxflow-exempt non-blocking by construction: the select has a default arm that drops
func (c *Client) EnqueuePush(key string, payload []byte) bool {
	c.pushMu.RLock()
	defer c.pushMu.RUnlock()
	if c.pushClosed {
		return false
	}
	select {
	case c.pushCh <- pushItem{key: key, payload: payload}:
		return true
	default:
		return false
	}
}

// PushQueueLen reports how many pushes are waiting in the queue.
func (c *Client) PushQueueLen() int { return len(c.pushCh) }

// pushWorker drains the push queue, retrying transient failures with
// backoff. The queue channel closing (Close) ends the worker once the
// backlog is drained.
func (c *Client) pushWorker() {
	defer c.pushWG.Done()
	for item := range c.pushCh {
		c.pushOne(item)
	}
}

func (c *Client) pushOne(item pushItem) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		node, local, br, ok := c.route(item.key)
		if local {
			lastErr = nil
			break
		}
		if !ok {
			lastErr = ErrPeerDown
			break
		}
		err := c.doPush(context.Background(), node, item.key, item.payload)
		if err == nil {
			br.success()
			lastErr = nil
			break
		}
		br.failure()
		lastErr = err
		if attempt >= c.retryAttempts {
			break
		}
		if err := c.backoff(context.Background(), attempt); err != nil {
			break
		}
	}
	if f := c.observer().PushDone; f != nil {
		f(lastErr)
	}
}
