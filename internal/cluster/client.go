package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"
)

// Headers on the internal peer surface. Every peer request carries
// AuthHeader with the fleet's shared secret — the peer endpoints share
// the client listener, so without a credential any network client
// could read cached results (bypassing tenant auth) or poison the
// fleet's warm set with crafted records; receivers verify it in
// constant time and answer 401 otherwise. Every request also carries
// OriginHeader naming the sending node; a receiving node that finds
// its own name there (a peer list pointing a node at itself, or a
// proxy bouncing the request back) answers 508 instead of serving.
// The peer cache endpoints additionally never fan out — they answer
// strictly from local tiers — so routing loops are impossible by
// construction; the header catches the misconfiguration early and
// loudly.
const (
	// AuthHeader carries the fleet's shared cluster secret.
	AuthHeader = "X-Tensat-Peer-Auth"
	// OriginHeader names the node a peer request originated from.
	OriginHeader = "X-Tensat-Peer-Origin"
	// PeerPath is the internal cache surface prefix; the cache key is
	// the final path element.
	PeerPath = "/v1/peer/cache/"
)

// MinSecretLen is the shortest accepted cluster secret. The secret is
// the only thing between the open network and the fleet's cache
// surface, so a trivially guessable one is a configuration error.
const MinSecretLen = 16

// ErrLoop reports a peer request that arrived back at its origin.
var ErrLoop = errors.New("cluster: peer request looped back to origin")

// ErrNotFound reports a clean peer-side cache miss (HTTP 404).
var ErrNotFound = errors.New("cluster: peer cache miss")

// DefaultTimeout bounds one peer cache round trip. Peer hits must be
// much cheaper than recomputing; a slow peer is treated as a miss.
const DefaultTimeout = 2 * time.Second

// Config assembles a Client.
type Config struct {
	// Self is this node's own name in the peer list (e.g. its
	// advertised host:port). Keys owned by Self are local.
	Self string
	// Peers is the full static fleet membership, Self included (it is
	// added if absent). Order does not matter.
	Peers []string
	// Secret authenticates node-to-node traffic: every peer request
	// carries it in AuthHeader, and every node rejects peer requests
	// that do not present it. Required (at least MinSecretLen bytes) —
	// the peer surface shares the client listener, so an unsecured
	// fleet would let any network client read or poison the cache.
	Secret string
	// VirtualNodes tunes the ring (0 = DefaultVirtualNodes).
	VirtualNodes int
	// Timeout bounds each peer request (0 = DefaultTimeout).
	Timeout time.Duration
	// BaseURL maps a node name to the base URL its HTTP surface is
	// reachable at; nil means "http://" + node.
	BaseURL func(node string) string
	// Transport overrides the HTTP transport (tests); nil means
	// http.DefaultTransport.
	Transport http.RoundTripper
}

// Client fetches and pushes encoded cache records across the fleet.
// All methods are safe for concurrent use.
type Client struct {
	self       string
	ring       *Ring
	baseURL    func(node string) string
	http       *http.Client
	secret     string
	secretHash [sha256.Size]byte
}

// New validates cfg and builds a Client. It fails when Self is empty,
// when the shared Secret is missing or too short, or when the fleet
// has no members besides the implicit Self — a single-node "cluster"
// should simply not configure one.
func New(cfg Config) (*Client, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Self must name this node")
	}
	if len(cfg.Secret) < MinSecretLen {
		return nil, fmt.Errorf("cluster: Secret must be at least %d bytes (got %d) — the shared fleet secret is what keeps the peer cache surface off-limits to clients", MinSecretLen, len(cfg.Secret))
	}
	nodes := append([]string(nil), cfg.Peers...)
	found := false
	for _, n := range nodes {
		if n == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		nodes = append(nodes, cfg.Self)
	}
	ring := NewRing(nodes, cfg.VirtualNodes)
	if len(ring.Nodes()) < 2 {
		return nil, fmt.Errorf("cluster: need at least one peer besides self, got %v", ring.Nodes())
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	base := cfg.BaseURL
	if base == nil {
		base = func(node string) string { return "http://" + node }
	}
	return &Client{
		self:       cfg.Self,
		ring:       ring,
		baseURL:    base,
		secret:     cfg.Secret,
		secretHash: sha256.Sum256([]byte(cfg.Secret)),
		http: &http.Client{
			Timeout:   timeout,
			Transport: cfg.Transport,
		},
	}, nil
}

// Self returns this node's name.
func (c *Client) Self() string { return c.self }

// Authorize reports whether a presented AuthHeader value matches the
// fleet secret. The comparison runs over fixed-size digests in
// constant time, so neither the secret's length nor its contents leak
// through response timing.
func (c *Client) Authorize(presented string) bool {
	h := sha256.Sum256([]byte(presented))
	return subtle.ConstantTimeCompare(h[:], c.secretHash[:]) == 1
}

// Nodes returns the fleet membership, sorted.
func (c *Client) Nodes() []string { return c.ring.Nodes() }

// Owner returns the node owning key and whether that is this node.
func (c *Client) Owner(key string) (node string, local bool) {
	node = c.ring.Owner(key)
	return node, node == c.self
}

func (c *Client) keyURL(node, key string) string {
	return c.baseURL(node) + PeerPath + url.PathEscape(key)
}

// Fetch asks key's owner for its cached record. It returns ErrNotFound
// on a clean miss and other errors on transport failures — both of
// which callers treat as "compute locally". Fetch on a locally-owned
// key returns ErrNotFound immediately (the local tiers were already
// consulted).
func (c *Client) Fetch(ctx context.Context, key string) ([]byte, error) {
	owner, local := c.Owner(key)
	if local {
		return nil, ErrNotFound
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.keyURL(owner, key), nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	req.Header.Set(AuthHeader, c.secret)
	req.Header.Set(OriginHeader, c.self)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetching %q from %s: %w", key, owner, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		// Bound the read: a record larger than the store's frame limit
		// is corrupt by definition.
		payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<30))
		if err != nil {
			return nil, fmt.Errorf("cluster: reading record from %s: %w", owner, err)
		}
		return payload, nil
	case http.StatusNotFound:
		return nil, ErrNotFound
	case http.StatusLoopDetected:
		return nil, fmt.Errorf("%w (peer %s)", ErrLoop, owner)
	default:
		return nil, fmt.Errorf("cluster: peer %s answered %s", owner, resp.Status)
	}
}

// Push sends an encoded record to key's owner so the fleet's warm set
// converges on the responsible node. Pushing a locally-owned key is a
// no-op (the caller already stored it). Push is best-effort: errors
// are for counters and logs, never for failing the client request.
func (c *Client) Push(ctx context.Context, key string, payload []byte) error {
	owner, local := c.Owner(key)
	if local {
		return nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.keyURL(owner, key), bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	req.Header.Set(AuthHeader, c.secret)
	req.Header.Set(OriginHeader, c.self)
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: pushing %q to %s: %w", key, owner, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: peer %s rejected push: %s", owner, resp.Status)
	}
	return nil
}
