// Package cluster turns a static list of tensatd nodes into a
// fleet-wide cache tier. Ownership of content-addressed cache keys is
// assigned by consistent hashing (a vnode ring), so every node agrees
// — with no coordination — on which peer is responsible for a key.
// A node that misses its local tiers asks the owner over the internal
// /v1/peer/cache surface with a strict timeout; a node that finishes a
// cold run pushes the encoded result to the owner. Peer failures are
// always soft: the caller degrades to local compute, never to request
// failure.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is how many ring points each node contributes.
// More points smooth the key distribution between nodes; 160 keeps
// per-node key shares within a few percent of fair for small fleets.
const DefaultVirtualNodes = 160

// Ring is an immutable consistent-hash ring over node names. Two rings
// built from the same node set (in any order) assign every key to the
// same owner, which is what lets each fleet member route independently.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // sorted, deduplicated
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring over nodes with vnodes points per node
// (DefaultVirtualNodes when vnodes <= 0). Node names are deduplicated;
// order does not matter. An empty node set yields a ring whose Owner
// returns "".
//
//lint:ctxflow-exempt one pass over the static membership list at config time
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	uniq := make(map[string]bool, len(nodes))
	r := &Ring{}
	for _, n := range nodes {
		if n == "" || uniq[n] {
			continue
		}
		uniq[n] = true
		r.nodes = append(r.nodes, n)
	}
	sort.Strings(r.nodes)
	r.points = make([]ringPoint, 0, len(r.nodes)*vnodes)
	for _, n := range r.nodes {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash: hash64(fmt.Sprintf("%s#%d", n, i)),
				node: n,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Identical vnode hashes across nodes are astronomically rare
		// but must still order deterministically on every member.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Owner returns the node responsible for key: the first ring point at
// or after the key's hash, wrapping around. "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Successors returns the first k distinct nodes encountered walking
// the ring from key's hash: the primary owner first, then the nodes a
// health-gated router falls over to, in order. k is clamped to the
// member count.
//
//lint:ctxflow-exempt walk bounded by the ring's point array (membership x vnodes); no I/O
func (r *Ring) Successors(key string, k int) []string {
	if len(r.points) == 0 || k <= 0 {
		return nil
	}
	if k > len(r.nodes) {
		k = len(r.nodes)
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, k)
	out := make([]string, 0, k)
	for j := 0; len(out) < k && j < len(r.points); j++ {
		p := r.points[(i+j)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// Nodes returns the ring's member names, sorted.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the murmur3 finalizer: FNV alone clusters badly on the
// short, similar strings ring points are built from ("node#0",
// "node#1", ...), and clustering turns directly into load skew.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
