package cluster

import (
	"sync"
	"time"
)

// BreakerState is a per-peer circuit breaker's position. The numeric
// values are the `tensat_peer_breaker_state{peer}` gauge encoding:
// 0 closed (healthy), 1 open (peer shunned), 2 half-open (one probe in
// flight deciding between the two).
type BreakerState int32

const (
	// BreakerClosed is the healthy state: requests flow normally.
	BreakerClosed BreakerState = 0
	// BreakerOpen means the peer accumulated Threshold consecutive
	// failures; requests are refused locally until Cooldown elapses.
	BreakerOpen BreakerState = 1
	// BreakerHalfOpen admits exactly one probe request after Cooldown;
	// its outcome re-closes or re-opens the breaker.
	BreakerHalfOpen BreakerState = 2
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breaker is one peer's circuit breaker. It trips open after
// threshold consecutive failures, refuses requests for cooldown, then
// admits a single half-open probe whose outcome decides between
// re-closing and re-opening. All methods are safe for concurrent use.
type breaker struct {
	mu        sync.Mutex
	state     BreakerState
	failures  int       // consecutive failures while closed
	openedAt  time.Time // when the breaker last tripped
	probing   bool      // a half-open probe is in flight
	threshold int
	cooldown  time.Duration
	now       func() time.Time
	onChange  func(BreakerState) // called outside mu on every transition
}

func newBreaker(threshold int, cooldown time.Duration, onChange func(BreakerState)) *breaker {
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		onChange:  onChange,
	}
}

// tryAcquire reports whether a request to this peer may proceed now.
// In the open state it flips to half-open once cooldown has elapsed
// and admits the caller as the probe; in half-open only the single
// probe slot is granted. Every granted acquire MUST be paired with a
// success or failure call.
func (b *breaker) tryAcquire() bool {
	b.mu.Lock()
	var changed BreakerState = -1
	ok := false
	switch b.state {
	case BreakerClosed:
		ok = true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			b.probing = true
			changed = BreakerHalfOpen
			ok = true
		}
	case BreakerHalfOpen:
		if !b.probing {
			b.probing = true
			ok = true
		}
	}
	b.mu.Unlock()
	if changed >= 0 && b.onChange != nil {
		b.onChange(changed)
	}
	return ok
}

// success records a request that the peer answered (any response at
// all — even a cache miss — proves liveness). It re-closes a
// half-open breaker and clears the failure streak.
func (b *breaker) success() {
	b.mu.Lock()
	var changed BreakerState = -1
	b.failures = 0
	b.probing = false
	if b.state != BreakerClosed {
		b.state = BreakerClosed
		changed = BreakerClosed
	}
	b.mu.Unlock()
	if changed >= 0 && b.onChange != nil {
		b.onChange(changed)
	}
}

// failure records a transport-level failure. A half-open probe failure
// re-opens immediately; in the closed state the breaker trips once the
// consecutive-failure streak reaches the threshold.
func (b *breaker) failure() {
	b.mu.Lock()
	var changed BreakerState = -1
	b.probing = false
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.now()
		changed = BreakerOpen
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = b.now()
			changed = BreakerOpen
		}
	case BreakerOpen:
		// A failure from a request admitted just before the trip:
		// refresh the cooldown clock.
		b.openedAt = b.now()
	}
	b.mu.Unlock()
	if changed >= 0 && b.onChange != nil {
		b.onChange(changed)
	}
}

// current returns the state for readiness reporting. An open breaker
// whose cooldown has elapsed still reads as open until a request
// actually probes it.
func (b *breaker) current() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
