package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// transitions records breaker state changes for assertions.
type transitions struct {
	mu     sync.Mutex
	states []BreakerState
}

func (tr *transitions) observer() Observer {
	return Observer{
		BreakerChange: func(peer string, st BreakerState) {
			tr.mu.Lock()
			tr.states = append(tr.states, st)
			tr.mu.Unlock()
		},
	}
}

func (tr *transitions) snapshot() []BreakerState {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]BreakerState(nil), tr.states...)
}

func TestRingSuccessors(t *testing.T) {
	r := NewRing([]string{"a", "b", "c", "d"}, 0)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		succ := r.Successors(key, 3)
		if len(succ) != 3 {
			t.Fatalf("Successors(%q, 3) = %v", key, succ)
		}
		if succ[0] != r.Owner(key) {
			t.Fatalf("Successors(%q)[0] = %s, Owner = %s", key, succ[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, n := range succ {
			if seen[n] {
				t.Fatalf("Successors(%q) repeats %s: %v", key, n, succ)
			}
			seen[n] = true
		}
	}
	// k beyond the member count clamps.
	if got := r.Successors("k", 10); len(got) != 4 {
		t.Fatalf("clamped successors = %v", got)
	}
	if got := NewRing(nil, 0).Successors("k", 2); got != nil {
		t.Fatalf("empty ring successors = %v", got)
	}
}

func TestBreakerTripHalfOpenRecover(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if failing.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte("record"))
	}))
	defer srv.Close()

	tr := &transitions{}
	c, err := New(Config{
		Self:             "self",
		Peers:            []string{"self", "peer"},
		Secret:           testSecret,
		BaseURL:          func(string) string { return srv.URL },
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
		RetryAttempts:    -1, // no retry: one breaker failure per Fetch
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetObserver(tr.observer())
	key := remoteKey(t, c)

	// Three consecutive failures trip the breaker.
	for i := 0; i < 3; i++ {
		if _, err := c.Fetch(context.Background(), key); err == nil || errors.Is(err, ErrNotFound) {
			t.Fatalf("fetch %d against failing peer: err = %v", i, err)
		}
	}
	if st := c.BreakerStates()["peer"]; st != BreakerOpen {
		t.Fatalf("breaker after 3 failures = %v, want open", st)
	}
	// While open, the key falls over to the next successor — self, on a
	// two-node ring — so Fetch reports a clean local miss without
	// touching the network.
	before := hits.Load()
	if _, err := c.Fetch(context.Background(), key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("fetch with open breaker: err = %v, want ErrNotFound fallover", err)
	}
	if hits.Load() != before {
		t.Fatal("open breaker still let a request through")
	}

	// After the cooldown, the next fetch is admitted as the half-open
	// probe; the peer is healthy again, so the breaker re-closes.
	failing.Store(false)
	time.Sleep(60 * time.Millisecond)
	got, err := c.Fetch(context.Background(), key)
	if err != nil || string(got) != "record" {
		t.Fatalf("probe fetch = %q, %v", got, err)
	}
	if st := c.BreakerStates()["peer"]; st != BreakerClosed {
		t.Fatalf("breaker after successful probe = %v, want closed", st)
	}
	want := []BreakerState{BreakerOpen, BreakerHalfOpen, BreakerClosed}
	if got := tr.snapshot(); len(got) != len(want) || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("breaker transitions = %v, want %v", got, want)
	}
}

func TestBreakerReopensOnFailedProbe(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()
	c, err := New(Config{
		Self:             "self",
		Peers:            []string{"self", "peer"},
		Secret:           testSecret,
		BaseURL:          func(string) string { return srv.URL },
		BreakerThreshold: 1,
		BreakerCooldown:  30 * time.Millisecond,
		RetryAttempts:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	key := remoteKey(t, c)
	if _, err := c.Fetch(context.Background(), key); err == nil {
		t.Fatal("fetch against failing peer succeeded")
	}
	if st := c.BreakerStates()["peer"]; st != BreakerOpen {
		t.Fatalf("breaker = %v, want open", st)
	}
	time.Sleep(40 * time.Millisecond)
	// The probe fails: straight back to open, no second chance.
	if _, err := c.Fetch(context.Background(), key); err == nil || errors.Is(err, ErrNotFound) {
		t.Fatalf("probe fetch: err = %v, want transport error", err)
	}
	if st := c.BreakerStates()["peer"]; st != BreakerOpen {
		t.Fatalf("breaker after failed probe = %v, want open", st)
	}
}

func TestFetchRetriesTransientFailure(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte("record"))
	}))
	defer srv.Close()
	var retries atomic.Int64
	c, err := New(Config{
		Self:             "self",
		Peers:            []string{"self", "peer"},
		Secret:           testSecret,
		BaseURL:          func(string) string { return srv.URL },
		BreakerThreshold: 10,
		RetryAttempts:    2,
		RetryBaseDelay:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetObserver(Observer{FetchRetry: func(string) { retries.Add(1) }})
	key := remoteKey(t, c)
	got, err := c.Fetch(context.Background(), key)
	if err != nil || string(got) != "record" {
		t.Fatalf("Fetch = %q, %v", got, err)
	}
	if calls.Load() != 3 {
		t.Fatalf("peer saw %d requests, want 3", calls.Load())
	}
	if retries.Load() != 2 {
		t.Fatalf("FetchRetry fired %d times, want 2", retries.Load())
	}
}

func TestFetchDoesNotRetryCleanMiss(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
	}))
	defer srv.Close()
	c, err := New(Config{
		Self:           "self",
		Peers:          []string{"self", "peer"},
		Secret:         testSecret,
		BaseURL:        func(string) string { return srv.URL },
		RetryAttempts:  3,
		RetryBaseDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	key := remoteKey(t, c)
	if _, err := c.Fetch(context.Background(), key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("miss: err = %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("clean miss was retried: %d requests", calls.Load())
	}
	if st := c.BreakerStates()["peer"]; st != BreakerClosed {
		t.Fatalf("clean miss moved the breaker to %v", st)
	}
}

// TestHealthGatedFallover drives a three-node view: the primary owner
// dies, the key falls over to the next successor, and once the primary
// recovers the key migrates back.
func TestHealthGatedFallover(t *testing.T) {
	var p1Failing atomic.Bool
	p1Failing.Store(true)
	p1 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if p1Failing.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte("from-p1"))
	}))
	defer p1.Close()
	p2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("from-p2"))
	}))
	defer p2.Close()

	urls := map[string]string{"p1": p1.URL, "p2": p2.URL}
	c, err := New(Config{
		Self:             "self",
		Peers:            []string{"self", "p1", "p2"},
		Secret:           testSecret,
		BaseURL:          func(node string) string { return urls[node] },
		BreakerThreshold: 1,
		BreakerCooldown:  40 * time.Millisecond,
		RetryAttempts:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A key whose successor walk starts [p1, p2]: fallover has
	// somewhere other than self to land.
	var key string
	for i := 0; i < 5000 && key == ""; i++ {
		k := fmt.Sprintf("key-%d", i)
		succ := c.ring.Successors(k, 2)
		if len(succ) == 2 && succ[0] == "p1" && succ[1] == "p2" {
			key = k
		}
	}
	if key == "" {
		t.Fatal("no key with successor list [p1, p2] found")
	}

	// First fetch hits the dead primary and trips its breaker.
	if _, err := c.Fetch(context.Background(), key); err == nil {
		t.Fatal("fetch against dead primary succeeded")
	}
	// Fallover: the very next fetch lands on p2.
	got, err := c.Fetch(context.Background(), key)
	if err != nil || string(got) != "from-p2" {
		t.Fatalf("fallover fetch = %q, %v, want from-p2", got, err)
	}
	// Pushes follow the same health-gated route.
	if err := c.Push(context.Background(), key, []byte("x")); err != nil {
		t.Fatalf("fallover push: %v", err)
	}

	// Primary recovers; after the cooldown the probe succeeds and the
	// key migrates back.
	p1Failing.Store(false)
	time.Sleep(50 * time.Millisecond)
	got, err = c.Fetch(context.Background(), key)
	if err != nil || string(got) != "from-p1" {
		t.Fatalf("post-recovery fetch = %q, %v, want from-p1", got, err)
	}
}

func TestMayOwn(t *testing.T) {
	c, err := New(Config{Self: "a", Peers: []string{"a", "b", "c", "d"}, Secret: testSecret})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	owned, mayOwn := 0, 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%d", i)
		_, local := c.Owner(key)
		if local {
			owned++
			if !c.MayOwn(key) {
				t.Fatalf("primary owner fails MayOwn for %q", key)
			}
		}
		if c.MayOwn(key) {
			mayOwn++
		}
	}
	// MayOwn admits the primary plus the first fallback, so it must be
	// a strict superset of ownership but nowhere near everything.
	if mayOwn <= owned || mayOwn >= 1800 {
		t.Fatalf("MayOwn count %d vs owned %d — fallover window wrong", mayOwn, owned)
	}
}

func TestPushQueueBoundedAndDrains(t *testing.T) {
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	var puts sync.Map
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		key := strings.TrimPrefix(r.URL.Path, PeerPath)
		puts.Store(key, true)
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()
	c, err := New(Config{
		Self:         "self",
		Peers:        []string{"self", "peer"},
		Secret:       testSecret,
		BaseURL:      func(string) string { return srv.URL },
		PushQueueLen: 2,
		PushWorkers:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var done atomic.Int64
	c.SetObserver(Observer{PushDone: func(err error) {
		if err == nil {
			done.Add(1)
		}
	}})
	// Each queued key must genuinely route to the peer, or pushOne
	// short-circuits locally and never reaches the stalling server.
	keys := remoteKeys(t, c, 4)

	// First push is grabbed by the single worker and stalls in-flight.
	if !c.EnqueuePush(keys[0], []byte("p")) {
		t.Fatal("enqueue 0 refused")
	}
	<-entered
	// Two more fill the queue; the fourth must be dropped.
	if !c.EnqueuePush(keys[1], []byte("p")) || !c.EnqueuePush(keys[2], []byte("p")) {
		t.Fatal("queue refused pushes below its bound")
	}
	if c.EnqueuePush(keys[3], []byte("p")) {
		t.Fatal("queue accepted a push beyond its bound")
	}

	close(release)
	c.Close() // drains the backlog
	for i := 0; i < 3; i++ {
		if _, ok := puts.Load(keys[i]); !ok {
			t.Fatalf("queued push %d (%s) never delivered", i, keys[i])
		}
	}
	if _, ok := puts.Load(keys[3]); ok {
		t.Fatal("dropped push was delivered")
	}
	if done.Load() != 3 {
		t.Fatalf("PushDone(nil) fired %d times, want 3", done.Load())
	}
	if c.EnqueuePush(keys[0], []byte("p")) {
		t.Fatal("EnqueuePush accepted work after Close")
	}
}

// remoteKeys finds n distinct keys all owned by "peer" on the
// self/peer ring.
func remoteKeys(t *testing.T, c *Client, n int) []string {
	t.Helper()
	var out []string
	for i := 0; len(out) < n && i < 10000; i++ {
		key := fmt.Sprintf("remote-key-%d", i)
		if owner, local := c.Owner(key); !local && owner == "peer" {
			out = append(out, key)
		}
	}
	if len(out) < n {
		t.Fatalf("found only %d peer-owned keys, want %d", len(out), n)
	}
	return out
}

func TestPushWorkerRetries(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()
	c, err := New(Config{
		Self:             "self",
		Peers:            []string{"self", "peer"},
		Secret:           testSecret,
		BaseURL:          func(string) string { return srv.URL },
		BreakerThreshold: 10,
		RetryAttempts:    2,
		RetryBaseDelay:   time.Millisecond,
		PushWorkers:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	result := make(chan error, 1)
	c.SetObserver(Observer{PushDone: func(err error) { result <- err }})
	key := remoteKey(t, c)
	if !c.EnqueuePush(key, []byte("p")) {
		t.Fatal("enqueue refused")
	}
	select {
	case err := <-result:
		if err != nil {
			t.Fatalf("push after retry: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("push never completed")
	}
	if calls.Load() != 2 {
		t.Fatalf("peer saw %d push attempts, want 2", calls.Load())
	}
	c.Close()
}
