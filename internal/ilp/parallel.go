package ilp

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// parallelShared is the incumbent state shared by every worker of a
// parallel solve: the best cost as atomic float64 bits (lock-free
// reads on the pruning hot path) and, under the mutex, the best
// selection with its originating unit index for deterministic
// tie-breaking, the incumbent diagnostics, and the OnIncumbent fanout.
type parallelShared struct {
	bestBits atomic.Uint64 // math.Float64bits of the best cost
	explored atomic.Int64  // global expansion count, for OnIncumbent

	mu             sync.Mutex
	bestPick       []int
	bestUnit       int
	incumbents     int
	firstIncumbent time.Duration
	start          time.Time
	onIncumbent    func(cost float64, explored int64)
}

// best returns the current shared incumbent cost (+Inf when none).
func (sh *parallelShared) best() float64 {
	return math.Float64frombits(sh.bestBits.Load())
}

// offer proposes a complete selection found while searching unit. It
// is accepted when strictly better than the incumbent, or when equal
// (within boundAdjust) but found in an earlier unit — the tie-break
// that makes the parallel result deterministic regardless of worker
// scheduling: among equal-cost optima, the one from the lowest unit
// index wins, which is the one the sequential search commits first.
func (sh *parallelShared) offer(cost float64, pick []int, unit int) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur := sh.best()
	improved := cost < cur-boundAdjust
	tie := !improved && math.Abs(cost-cur) <= boundAdjust && unit < sh.bestUnit
	if !improved && !tie {
		return false
	}
	sh.bestPick = append(sh.bestPick[:0:0], pick...)
	sh.bestUnit = unit
	sh.bestBits.Store(math.Float64bits(cost))
	if improved {
		sh.incumbents++
		if sh.incumbents == 1 {
			sh.firstIncumbent = time.Since(sh.start)
		}
		if sh.onIncumbent != nil {
			sh.onIncumbent(cost, sh.explored.Load())
		}
	}
	return true
}

// unit is one parcel of parallel work: a replayable prefix of branch
// decisions from the root. The subtree below the prefix is searched
// exhaustively by whichever worker claims the unit.
type unit struct {
	steps []step
}

// unitsPerWorker oversubscribes the unit pool so the atomic work queue
// load-balances uneven subtrees, and unitDepth caps how deep the
// collection pass expands before handing subtrees off.
const (
	unitsPerWorker = 8
	unitDepth      = 4
)

// collectUnits expands the top of the search tree breadth-limited and
// returns the frontier as replayable prefixes. It runs on the master
// solver (whose warm-start bound prunes hopeless prefixes) and leaves
// the search state exactly as it found it. Free and forced picks are
// recorded in the prefix but do not consume depth: they are the
// plateau-collapsing assignments, not real branching.
func (s *solver) collectUnits(target int) []unit {
	var units []unit
	var prefix []step
	var walk func(pending []int, bound float64, depth int)
	walk = func(pending []int, bound float64, depth int) {
		if s.acc+bound-boundAdjust >= s.best {
			return // a warm start already beats everything below
		}
		idx, forced := s.pickClass(pending)
		if idx < 0 {
			// Complete solution at collection depth; a unit with a full
			// prefix makes the claiming worker just evaluate the leaf.
			units = append(units, unit{steps: append([]step(nil), prefix...)})
			return
		}
		c := pending[idx]
		rest := removeAt(pending, idx)
		expand := func(node int, deeper int) {
			if s.p.CycleConstraints && s.createsCycle(c, node) {
				return
			}
			st := step{c, node}
			if deeper > unitDepth || (deeper == unitDepth && len(units) >= target) {
				units = append(units, unit{steps: append(append([]step(nil), prefix...), st)})
				return
			}
			next, nb := s.applyStep(st, rest, bound-s.minCost[c])
			prefix = append(prefix, st)
			walk(next, nb, deeper)
			prefix = prefix[:len(prefix)-1]
			s.undoStep(st)
		}
		if forced >= 0 {
			expand(forced, depth) // no branching happened: same depth
			return
		}
		cands := append([]int(nil), s.allowed[c]...)
		for k := range cands {
			for k2 := k + 1; k2 < len(cands); k2++ {
				if s.nodeHeuristic(cands[k2]) < s.nodeHeuristic(cands[k]) {
					cands[k], cands[k2] = cands[k2], cands[k]
				}
			}
		}
		for _, i := range cands {
			if len(units) >= target && depth > 0 {
				// Enough parallelism below this level: emit remaining
				// siblings as whole-subtree units without expanding.
				expand(i, unitDepth+1)
				continue
			}
			expand(i, depth+1)
		}
	}
	s.need[s.p.Root] = 1
	walk([]int{s.p.Root}, s.minCost[s.p.Root], 0)
	s.need[s.p.Root] = 0
	return units
}

// worker clones the master's read-only tables into a fresh search
// state bound to the shared incumbent.
func (s *solver) worker(sh *parallelShared) *solver {
	m := len(s.p.Classes)
	w := &solver{
		p:           s.p,
		deadline:    s.deadline,
		hasDeadline: s.hasDeadline,
		done:        s.done,
		allowed:     s.allowed,
		minCost:     s.minCost,
		greedy:      s.greedy,
		freePick:    s.freePick,
		chosen:      make([]int, m),
		need:        make([]int, m),
		best:        sh.best(),
		start:       s.start,
		shared:      sh,
	}
	for i := range w.chosen {
		w.chosen[i] = -1
	}
	if s.p.CycleConstraints && s.p.TopoMode == TopoInt {
		w.level = make([]int, m)
	}
	return w
}

// runUnit replays the unit's decision prefix and searches the subtree
// below it exhaustively (modulo pruning against the shared bound).
func (w *solver) runUnit(u unit, idx int) {
	w.unitIdx = idx
	pending := []int{w.p.Root}
	w.need[w.p.Root] = 1
	bound := w.minCost[w.p.Root]
	applied := make([]step, 0, len(u.steps))
	defer func() {
		// Reset the worker state for the next unit.
		for i := len(applied) - 1; i >= 0; i-- {
			w.undoStep(applied[i])
		}
		w.need[w.p.Root] = 0
	}()
	for _, st := range u.steps {
		at := -1
		for k, c := range pending {
			if c == st.class {
				at = k
				break
			}
		}
		if at < 0 {
			return // collection/replay mismatch; abandon defensively
		}
		pending = removeAt(pending, at)
		bound -= w.minCost[st.class]
		if w.p.CycleConstraints && w.createsCycle(st.class, st.node) {
			return
		}
		pending, bound = w.applyStep(st, pending, bound)
		applied = append(applied, st)
	}
	w.branch(pending, bound)
}

// DefaultWorkers is the worker count used when the caller passes 0:
// the machine's parallelism, capped to keep solve fan-out from
// starving the serving path on large hosts.
func DefaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 16 {
		n = 16
	}
	if n < 1 {
		n = 1
	}
	return n
}

// SolveParallel is SolveParallelContext without cancellation.
func SolveParallel(p *Problem, workers int) (*Solution, error) {
	return SolveParallelContext(context.Background(), p, workers)
}

// SolveParallelContext runs branch-and-bound with the top of the
// search tree fanned over a bounded worker pool. Workers search
// disjoint subtrees against a shared atomic incumbent bound, so every
// pruning improvement propagates across the pool; equal-cost optima
// are tie-broken by unit order, making the returned selection
// deterministic for a given problem regardless of scheduling.
// workers <= 0 selects DefaultWorkers(); workers == 1 is exactly
// SolveContext. OnIncumbent sees strictly decreasing costs, serialized
// under the incumbent lock.
func SolveParallelContext(ctx context.Context, p *Problem, workers int) (*Solution, error) {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers == 1 {
		return SolveContext(ctx, p)
	}
	start := time.Now()
	master, err := prepare(ctx, p, start)
	if err != nil {
		return nil, err
	}
	seedCost := master.seed()

	sh := &parallelShared{start: start, onIncumbent: p.OnIncumbent}
	sh.bestBits.Store(math.Float64bits(math.Inf(1)))
	if master.bestPick != nil {
		sh.bestPick = append([]int(nil), master.bestPick...)
		sh.bestUnit = -1 // the warm start precedes every unit
		sh.bestBits.Store(math.Float64bits(master.best))
		sh.incumbents = 1
		sh.firstIncumbent = time.Since(start)
		if p.OnIncumbent != nil {
			p.OnIncumbent(master.best, 0)
		}
	}

	units := master.collectUnits(workers * unitsPerWorker)
	if workers > len(units) {
		workers = len(units)
	}

	var (
		nextUnit atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		explored int64
		timedOut bool
		canceled bool
		stalled  bool
	)
	for wi := 0; wi < workers; wi++ {
		w := master.worker(sh)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(nextUnit.Add(1)) - 1
				if i >= len(units) || w.timedOut || w.stalled {
					break
				}
				w.runUnit(units[i], i)
				sh.explored.Add(w.explored)
				mu.Lock()
				explored += w.explored
				mu.Unlock()
				w.explored = 0
				if b := sh.best(); b < w.best {
					w.best = b
				}
			}
			mu.Lock()
			explored += w.explored
			timedOut = timedOut || w.timedOut
			canceled = canceled || w.canceled
			stalled = stalled || w.stalled
			mu.Unlock()
		}()
	}
	wg.Wait()

	sol := &Solution{
		Optimal:        !timedOut && !stalled,
		TimedOut:       timedOut,
		Canceled:       canceled,
		Stalled:        stalled,
		Explored:       explored,
		Time:           time.Since(start),
		SeedCost:       seedCost,
		ImproveCommits: master.improveCommits,
		Incumbents:     sh.incumbents,
		FirstIncumbent: sh.firstIncumbent,
		Workers:        workers,
	}
	if sh.bestPick == nil {
		switch {
		case canceled:
			return nil, ctx.Err()
		case timedOut || stalled:
			return nil, ErrTimeout
		default:
			return nil, ErrInfeasible
		}
	}
	sol.Cost = sh.best()
	sol.NodeOf = make(map[int]int)
	for c, n := range sh.bestPick {
		if n >= 0 {
			sol.NodeOf[c] = n
		}
	}
	return sol, nil
}
