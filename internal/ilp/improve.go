package ilp

import (
	"math"
	"sort"
)

// DebugHook, when non-nil, receives diagnostics from the incumbent
// improvement pass. Used by tests; not part of the stable API.
var DebugHook func(format string, args ...any)

func debugf(format string, args ...any) {
	if DebugHook != nil {
		DebugHook(format, args...)
	}
}

// improveScratch holds epoch-stamped per-class buffers so the local
// search allocates nothing proportional to the class count per trial.
type improveScratch struct {
	epoch int32
	mark  []int32 // closure/marginal membership, valid when == epoch
	state []int32 // DFS colors: epoch => on stack, epoch+1 => done
	pick  []int   // current working selection
	adds  []addEntry
}

type addEntry struct {
	class, node int
}

func (sc *improveScratch) next() {
	sc.epoch += 2
	if sc.epoch > 1<<30 {
		for i := range sc.mark {
			sc.mark[i] = 0
			sc.state[i] = 0
		}
		sc.epoch = 2
	}
}

// improveFrom strengthens a warm start with a sharing-aware local
// search before branch-and-bound begins. Greedy per-class choices
// cannot discover rewrites whose payoff is joint — e.g. the Figure 2
// merged matmul is only profitable when *both* outputs switch to its
// split projections (§6.5 of the paper). Two move generators run to a
// fixpoint:
//
//  1. single-class switches: replace one class's pick (greedily
//     completing any new requirements) if the re-validated total
//     improves — this also repairs warm starts that materialize
//     expensive duplicated structure;
//  2. hub moves: tentatively require a non-selected "hub" class, then
//     switch every selected class that gains from reusing it; commit
//     when the joint savings exceed the hub's marginal cost.
//
// Every commit is re-validated (closure complete, acyclic, cost
// recomputed), so this only seeds branch-and-bound with a better
// incumbent; exactness is unaffected.
func (s *solver) improveFrom(start []int) ([]int, float64) {
	m := len(s.p.Classes)
	if s.sc == nil {
		s.sc = &improveScratch{mark: make([]int32, m), state: make([]int32, m)}
	}
	pick := append([]int(nil), start...)

	for pass := 0; pass < 512; pass++ {
		required := s.closure(pick)
		if required == nil {
			return pick, math.Inf(1) // broken start; caller discards
		}
		if s.singleSwitchSweep(pick, required) {
			continue
		}
		// Classes worth switching for hub moves: selected, paying a
		// real cost, with at least one cheaper alternative node.
		var switchable []int
		for c := 0; c < m; c++ {
			if !required[c] || pick[c] < 0 {
				continue
			}
			cur := s.p.Costs[pick[c]]
			if cur <= boundAdjust {
				continue
			}
			for _, i := range s.allowed[c] {
				if s.p.Costs[i] < cur {
					switchable = append(switchable, c)
					break
				}
			}
		}
		debugf("pass %d: switchable=%d required-classes=%d", pass, len(switchable), countTrue(required))
		// Evaluate every candidate alternative once against the current
		// base, recording its marginal completion ("support"). A hub can
		// only improve an alternative whose support contains the hub's
		// completion classes, so an inverted index (class -> interested
		// alternatives) reduces the hub loop to relevant re-evaluations.
		type altInfo struct {
			class, node int
			cur, gain   float64 // gain against the plain base (may be <= 0)
			adds        []addEntry
		}
		var alts []altInfo
		interested := make(map[int][]int) // class -> indices into alts
		hubCandidate := make([]bool, m)
		for _, c := range switchable {
			cur := s.p.Costs[pick[c]]
			for _, i := range s.allowed[c] {
				if i == pick[c] || s.p.Costs[i] >= cur {
					continue
				}
				marginal := s.p.Costs[i]
				var adds []addEntry
				feasible := true
				for _, h := range s.p.Children[i] {
					if h == c {
						feasible = false
						break
					}
					if required[h] {
						continue
					}
					sub, subPick, okc := s.marginalClosureSeen(h, required, adds)
					if !okc {
						feasible = false
						break
					}
					marginal += sub
					adds = append(adds, subPick...)
				}
				if !feasible {
					continue
				}
				idx := len(alts)
				alts = append(alts, altInfo{class: c, node: i, cur: cur, gain: cur - marginal, adds: adds})
				for _, a := range adds {
					interested[a.class] = append(interested[a.class], idx)
					hubCandidate[a.class] = true
				}
			}
		}
		improved := false
		hubsTried, bestNet := 0, math.Inf(-1)
		base := make([]bool, m)
		for hub := 0; hub < m && !improved; hub++ {
			if required[hub] || !hubCandidate[hub] || len(s.allowed[hub]) == 0 {
				continue
			}
			hubsTried++
			addCost, addPick, ok := s.marginalClosure(hub, required)
			if !ok || math.IsInf(addCost, 1) || addCost <= boundAdjust {
				// Free or impossible hubs cannot change the economics.
				continue
			}
			copy(base, required)
			for _, a := range addPick {
				base[a.class] = true
			}
			// Re-evaluate only the alternatives whose support intersects
			// the hub's completion.
			candIdx := interested[hub]
			for _, a := range addPick {
				candIdx = append(candIdx, interested[a.class]...)
			}
			type switchMove struct {
				class, node int
				adds        []addEntry
			}
			bestByClass := make(map[int]switchMove)
			gainByClass := make(map[int]float64)
			seenAlt := make(map[int]bool)
			for _, idx := range candIdx {
				if seenAlt[idx] {
					continue
				}
				seenAlt[idx] = true
				ai := alts[idx]
				marginal := s.p.Costs[ai.node]
				var adds []addEntry
				feasible := true
				for _, h := range s.p.Children[ai.node] {
					if base[h] {
						continue
					}
					sub, subPick, okc := s.marginalClosureSeen(h, base, adds)
					if !okc {
						feasible = false
						break
					}
					marginal += sub
					adds = append(adds, subPick...)
				}
				if !feasible {
					continue
				}
				if gain := ai.cur - marginal; gain > gainByClass[ai.class]+boundAdjust {
					gainByClass[ai.class] = gain
					bestByClass[ai.class] = switchMove{class: ai.class, node: ai.node, adds: adds}
				}
			}
			var moves []switchMove
			savings := 0.0
			for c, mv := range bestByClass {
				savings += gainByClass[c]
				moves = append(moves, mv)
			}
			sort.Slice(moves, func(a, b int) bool { return moves[a].class < moves[b].class })
			if net := savings - addCost; net > bestNet {
				bestNet = net
			}
			if savings <= addCost+boundAdjust || len(moves) == 0 {
				continue
			}
			// Commit tentatively, with an undo log.
			curCost := s.incumbentCost(pick)
			var undo []addEntry
			set := func(c, n int) {
				undo = append(undo, addEntry{c, pick[c]})
				pick[c] = n
			}
			for _, a := range addPick {
				set(a.class, a.node)
			}
			for _, mv := range moves {
				set(mv.class, mv.node)
				for _, a := range mv.adds {
					if pick[a.class] < 0 || !required[a.class] {
						set(a.class, a.node)
					}
				}
			}
			s.fillFreeFrom(pick, undo)
			if cost, okc := s.selectionCost(pick); okc && cost < curCost-boundAdjust {
				improved = true
				s.improveCommits++
			} else {
				for k := len(undo) - 1; k >= 0; k-- {
					pick[undo[k].class] = undo[k].node
				}
			}
		}
		debugf("pass %d: hubsTried=%d bestNet=%.2f improved=%v", pass, hubsTried, bestNet, improved)
		if !improved {
			break
		}
	}

	return pick, s.incumbentCost(pick)
}

// singleSwitchSweep tries replacing one selected class's pick with
// each alternative (greedily completing new requirements) and commits
// the first full-validation improvement. Returns whether it improved.
func (s *solver) singleSwitchSweep(pick []int, required []bool) bool {
	cur := s.incumbentCost(pick)
	for c := range s.p.Classes {
		if !required[c] || len(s.allowed[c]) < 2 {
			continue
		}
		for _, i := range s.allowed[c] {
			if i == pick[c] {
				continue
			}
			var undo []addEntry
			set := func(cc, n int) {
				undo = append(undo, addEntry{cc, pick[cc]})
				pick[cc] = n
			}
			rollback := func() {
				for k := len(undo) - 1; k >= 0; k-- {
					pick[undo[k].class] = undo[k].node
				}
			}
			set(c, i)
			feasible := true
			for _, h := range s.p.Children[i] {
				if h == c {
					feasible = false
					break
				}
				if required[h] {
					continue
				}
				_, adds, ok := s.marginalClosure(h, required)
				if !ok {
					feasible = false
					break
				}
				for _, a := range adds {
					if pick[a.class] < 0 || !required[a.class] {
						set(a.class, a.node)
					}
				}
			}
			if !feasible {
				rollback()
				continue
			}
			s.fillFreeFrom(pick, undo)
			if cost, ok := s.selectionCost(pick); ok && cost < cur-boundAdjust {
				s.improveCommits++
				debugf("single-switch: class %d -> node %d, %.2f -> %.2f", c, i, cur, cost)
				return true
			}
			rollback()
		}
	}
	return false
}

func countTrue(b []bool) int {
	n := 0
	for _, v := range b {
		if v {
			n++
		}
	}
	return n
}

// closure returns the set of classes reachable from the root through
// the current picks, or nil if the selection is incomplete or cyclic.
func (s *solver) closure(pick []int) []bool {
	seen := make([]bool, len(s.p.Classes))
	state := make([]uint8, len(s.p.Classes))
	ok := true
	var visit func(c int)
	visit = func(c int) {
		if !ok || state[c] == 2 {
			return
		}
		if state[c] == 1 {
			ok = false
			return
		}
		state[c] = 1
		if pick[c] < 0 {
			ok = false
			return
		}
		seen[c] = true
		for _, h := range s.p.Children[pick[c]] {
			visit(h)
		}
		state[c] = 2
	}
	visit(s.p.Root)
	if !ok {
		return nil
	}
	return seen
}

// incumbentCost is the closure cost of a selection assumed valid.
func (s *solver) incumbentCost(pick []int) float64 {
	cost, ok := s.selectionCost(pick)
	if !ok {
		return math.Inf(1)
	}
	return cost
}

// selectionCost validates a selection (complete and acyclic from the
// root) and returns its DAG cost, allocating only scratch epochs.
func (s *solver) selectionCost(pick []int) (float64, bool) {
	if s.sc == nil {
		m := len(s.p.Classes)
		s.sc = &improveScratch{mark: make([]int32, m), state: make([]int32, m)}
	}
	sc := s.sc
	sc.next()
	onStack, done := sc.epoch, sc.epoch+1
	total := 0.0
	ok := true
	var visit func(c int)
	visit = func(c int) {
		if !ok || sc.state[c] == done {
			return
		}
		if sc.state[c] == onStack {
			ok = false
			return
		}
		sc.state[c] = onStack
		if pick[c] < 0 {
			ok = false
			return
		}
		total += s.p.Costs[pick[c]]
		for _, h := range s.p.Children[pick[c]] {
			visit(h)
		}
		sc.state[c] = done
	}
	visit(s.p.Root)
	if !ok {
		return 0, false
	}
	return total, true
}

// marginalClosure computes the cheapest completion of class c on top
// of the base set: the extra classes that must be selected and their
// total cost. Free classes complete through freePick at zero cost.
func (s *solver) marginalClosure(c int, base []bool) (float64, []addEntry, bool) {
	return s.marginalClosureSeen(c, base, nil)
}

// marginalClosureSeen is marginalClosure with extra already-completed
// entries (from sibling completions) treated as zero-cost base.
func (s *solver) marginalClosureSeen(c int, base []bool, already []addEntry) (float64, []addEntry, bool) {
	if s.sc == nil {
		m := len(s.p.Classes)
		s.sc = &improveScratch{mark: make([]int32, m), state: make([]int32, m)}
	}
	sc := s.sc
	sc.next()
	inSet, onStack := sc.epoch, sc.epoch+1
	for _, a := range already {
		sc.mark[a.class] = inSet
	}
	var adds []addEntry
	budget := 512 // completions larger than this are never profitable hubs
	var rec func(h int) (float64, bool)
	rec = func(h int) (float64, bool) {
		if base[h] || sc.mark[h] == inSet {
			return 0, true
		}
		if budget--; budget < 0 {
			return 0, false
		}
		if sc.state[h] == onStack {
			return 0, false // cycle
		}
		sc.state[h] = onStack
		defer func() { sc.state[h] = 0 }()
		if f := s.freePick[h]; f >= 0 {
			sc.mark[h] = inSet
			adds = append(adds, addEntry{h, f})
			for _, ch := range s.p.Children[f] {
				if _, ok := rec(ch); !ok {
					return 0, false
				}
			}
			return 0, true
		}
		// Choose the node with the least marginal cost by the static
		// tree heuristic, then recurse.
		bestNode, bestHeur := -1, math.Inf(1)
		for _, i := range s.allowed[h] {
			t := s.p.Costs[i]
			for _, ch := range s.p.Children[i] {
				if !base[ch] && sc.mark[ch] != inSet {
					t += s.greedy[ch]
				}
			}
			if t < bestHeur {
				bestHeur, bestNode = t, i
			}
		}
		if bestNode < 0 {
			return 0, false
		}
		sc.mark[h] = inSet
		adds = append(adds, addEntry{h, bestNode})
		total := s.p.Costs[bestNode]
		for _, ch := range s.p.Children[bestNode] {
			sub, ok := rec(ch)
			if !ok {
				return 0, false
			}
			total += sub
		}
		return total, true
	}
	cost, ok := rec(c)
	if !ok {
		return 0, nil, false
	}
	return cost, adds, true
}

// fillFreeFrom assigns freePick derivations for classes referenced by
// recently changed picks but still unpicked, recording assignments in
// the undo log via direct append (callers roll back through pick).
func (s *solver) fillFreeFrom(pick []int, changed []addEntry) {
	var ensure func(h int)
	ensure = func(h int) {
		if pick[h] >= 0 {
			return
		}
		if f := s.freePick[h]; f >= 0 {
			pick[h] = f
			for _, ch := range s.p.Children[f] {
				ensure(ch)
			}
		}
	}
	for _, e := range changed {
		if pick[e.class] < 0 {
			continue
		}
		for _, h := range s.p.Children[pick[e.class]] {
			ensure(h)
		}
	}
}
