package ilp

import (
	"math"
	"sort"
	"testing"
)

// figure2Problem models the merged-matmul economics:
//
//	class 0 root: one node needing classes 1 and 2 (the two outputs)
//	class 1: matmul a (cost 8.4) | split0 -> class 3 (cost 0)
//	class 2: matmul b (cost 8.4) | split1 -> class 3 (cost 0)
//	class 3: split tuple: one node (cost 0) -> class 4
//	class 4: merged matmul (cost 8.8), leaf
//
// Greedy picks the two matmuls (16.8); optimum shares class 4 (8.8).
func figure2Problem() *Problem {
	return &Problem{
		//        0    1     2    3     4    5     6
		Costs:    []float64{0, 8.4, 0, 8.4, 0, 0, 8.8},
		ClassOf:  []int{0, 1, 1, 2, 2, 3, 4},
		Children: [][]int{{1, 2}, nil, {3}, nil, {3}, {4}, nil},
		Classes:  [][]int{{0}, {1, 2}, {3, 4}, {5}, {6}},
		Root:     0,
	}
}

func newSolverForTest(p *Problem) *solver {
	s := &solver{p: p}
	m := len(p.Classes)
	s.allowed = make([][]int, m)
	s.minCost = make([]float64, m)
	for c, members := range p.Classes {
		s.allowed[c] = append(s.allowed[c], members...)
		sort.Slice(s.allowed[c], func(a, b int) bool {
			return p.Costs[s.allowed[c][a]] < p.Costs[s.allowed[c][b]]
		})
		s.minCost[c] = math.Inf(1)
		if len(s.allowed[c]) > 0 {
			s.minCost[c] = p.Costs[s.allowed[c][0]]
		}
	}
	s.pruneDominated()
	s.computeFree()
	s.computeGreedy()
	s.chosen = make([]int, m)
	for i := range s.chosen {
		s.chosen[i] = -1
	}
	s.need = make([]int, m)
	s.best = math.Inf(1)
	return s
}

func TestSeedIncumbentIsGreedy(t *testing.T) {
	s := newSolverForTest(figure2Problem())
	s.seedIncumbent()
	if s.bestPick == nil {
		t.Fatal("no incumbent")
	}
	if s.best != 16.8 {
		t.Fatalf("greedy seed cost %v, want 16.8", s.best)
	}
}

func TestImproveIncumbentFindsJointSwitch(t *testing.T) {
	s := newSolverForTest(figure2Problem())
	s.seedIncumbent()
	_, cost := s.improveFrom(s.bestPick)
	if math.Abs(cost-8.8) > 1e-9 {
		t.Fatalf("improved cost %v, want 8.8 (joint switch to shared merged matmul)", cost)
	}
}

func TestSolveFindsJointSwitch(t *testing.T) {
	sol, err := Solve(figure2Problem())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Cost-8.8) > 1e-9 {
		t.Fatalf("cost %v, want 8.8", sol.Cost)
	}
}
