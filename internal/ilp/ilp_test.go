package ilp

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

// chain builds a problem where class 0 needs class 1 needs class 2 ...
// and each class has two nodes with the given costs; node 0 of class c
// points at class c+1, node 1 is a leaf.
func chain(costs [][2]float64) *Problem {
	p := &Problem{Root: 0}
	for c := range costs {
		var members []int
		for k := 0; k < 2; k++ {
			i := len(p.Costs)
			p.Costs = append(p.Costs, costs[c][k])
			p.ClassOf = append(p.ClassOf, c)
			if k == 0 && c+1 < len(costs) {
				p.Children = append(p.Children, []int{c + 1})
			} else {
				p.Children = append(p.Children, nil)
			}
			members = append(members, i)
		}
		p.Classes = append(p.Classes, members)
	}
	return p
}

func TestSolveSingleClass(t *testing.T) {
	p := &Problem{
		Costs:    []float64{5, 3},
		ClassOf:  []int{0, 0},
		Children: [][]int{nil, nil},
		Classes:  [][]int{{0, 1}},
		Root:     0,
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 3 || sol.NodeOf[0] != 1 || !sol.Optimal {
		t.Fatalf("solution %+v", sol)
	}
}

func TestSolvePrefersCheapSubtree(t *testing.T) {
	// Root node A costs 1 but requires an expensive chain; node B costs
	// 4 and is a leaf. Total via A = 1+10 = 11 > 4.
	p := chain([][2]float64{{1, 4}, {10, 10}})
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 4 {
		t.Fatalf("cost %v, want 4", sol.Cost)
	}
}

func TestSolveExploitsSharing(t *testing.T) {
	// Diamond: root has one node needing classes A and B; both A and B
	// have a node needing shared class S (cost 100) and a private leaf
	// (cost 70). Greedy tree costs see A=110 vs 70, picking the leaves
	// (1+70+70=141); the DAG optimum picks S once: 1+10+10+100 = 121.
	p := &Problem{
		// node 0: root {A,B}; node 1: A->S cost 10; node 2: A leaf 70;
		// node 3: B->S cost 10; node 4: B leaf 70; node 5: S cost 100.
		Costs:    []float64{1, 10, 70, 10, 70, 100},
		ClassOf:  []int{0, 1, 1, 2, 2, 3},
		Children: [][]int{{1, 2}, {3}, nil, {3}, nil, nil},
		Classes:  [][]int{{0}, {1, 2}, {3, 4}, {5}},
		Root:     0,
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 121 {
		t.Fatalf("cost %v, want 121 (sharing-aware optimum)", sol.Cost)
	}
	if sol.NodeOf[1] != 1 || sol.NodeOf[2] != 3 {
		t.Fatalf("selection %+v did not share class 3", sol.NodeOf)
	}
}

func TestForbiddenNodesExcluded(t *testing.T) {
	p := &Problem{
		Costs:     []float64{1, 5},
		ClassOf:   []int{0, 0},
		Children:  [][]int{nil, nil},
		Classes:   [][]int{{0, 1}},
		Root:      0,
		Forbidden: []bool{true, false},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.NodeOf[0] != 1 || sol.Cost != 5 {
		t.Fatalf("forbidden node selected: %+v", sol)
	}
}

func TestInfeasibleAllForbidden(t *testing.T) {
	p := &Problem{
		Costs:     []float64{1},
		ClassOf:   []int{0},
		Children:  [][]int{nil},
		Classes:   [][]int{{0}},
		Root:      0,
		Forbidden: []bool{true},
	}
	if _, err := Solve(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

// cyclicProblem mirrors Figure 3: class 0 (root) has a single node
// needing classes A and B. A has nodes a1 (leaf, cost 10) and a2
// (cost 0, child B). B has nodes b1 (leaf, cost 10) and b2 (cost 0,
// child A). Choosing a2 and b2 is the cheapest assignment but cyclic.
func cyclicProblem() *Problem {
	return &Problem{
		// 0: root{A,B} cost 1; 1: a1 leaf 10; 2: a2 ->B 0;
		// 3: b1 leaf 10; 4: b2 ->A 0.
		Costs:            []float64{1, 10, 0, 10, 0},
		ClassOf:          []int{0, 1, 1, 2, 2},
		Children:         [][]int{{1, 2}, nil, {2}, nil, {1}},
		Classes:          [][]int{{0}, {1, 2}, {3, 4}},
		Root:             0,
		CycleConstraints: true,
	}
}

func TestCycleConstraintsBlockCyclicSelection(t *testing.T) {
	for _, mode := range []TopoMode{TopoReal, TopoInt} {
		p := cyclicProblem()
		p.TopoMode = mode
		sol, err := Solve(p)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		// Optimum is one leaf (10) plus one zero-cost reuse: 1+10+0 = 11.
		if sol.Cost != 11 {
			t.Fatalf("%v: cost %v, want 11", mode, sol.Cost)
		}
		// Verify acyclicity of the selection.
		if isCyclic(p, sol.NodeOf) {
			t.Fatalf("%v: cyclic selection %+v", mode, sol.NodeOf)
		}
	}
}

func TestWithoutCycleConstraintsCyclicGraphMaySelectCycle(t *testing.T) {
	p := cyclicProblem()
	p.CycleConstraints = false
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// Unconstrained optimum picks both zero-cost nodes: cost 1, cyclic.
	if sol.Cost != 1 {
		t.Fatalf("cost %v, want 1 for the unconstrained relaxation", sol.Cost)
	}
	if !isCyclic(p, sol.NodeOf) {
		t.Fatal("expected the relaxation to pick the cyclic selection")
	}
}

func isCyclic(p *Problem, sel map[int]int) bool {
	state := map[int]int{}
	var dfs func(c int) bool
	dfs = func(c int) bool {
		if state[c] == 1 {
			return true
		}
		if state[c] == 2 {
			return false
		}
		state[c] = 1
		if n, ok := sel[c]; ok {
			for _, h := range p.Children[n] {
				if dfs(h) {
					return true
				}
			}
		}
		state[c] = 2
		return false
	}
	return dfs(p.Root)
}

func TestTimeoutReturnsIncumbentOrError(t *testing.T) {
	// A problem big enough that a zero deadline trips immediately.
	costs := make([][2]float64, 18)
	for i := range costs {
		costs[i] = [2]float64{1, 2}
	}
	p := chain(costs)
	p.Timeout = time.Nanosecond
	sol, err := Solve(p)
	if err != nil {
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("unexpected error %v", err)
		}
		return
	}
	if sol.Optimal && sol.TimedOut {
		t.Fatalf("contradictory flags %+v", sol)
	}
}

func TestValidateRejectsBadProblems(t *testing.T) {
	bad := &Problem{Costs: []float64{1}, ClassOf: []int{0}, Children: [][]int{nil}, Classes: [][]int{{0}}, Root: 5}
	if _, err := Solve(bad); err == nil {
		t.Fatal("bad root accepted")
	}
	bad2 := &Problem{Costs: []float64{1}, ClassOf: []int{9}, Children: [][]int{nil}, Classes: [][]int{{0}}, Root: 0}
	if _, err := Solve(bad2); err == nil {
		t.Fatal("bad class accepted")
	}
	bad3 := &Problem{Costs: []float64{1}, ClassOf: []int{0}, Children: [][]int{{7}}, Classes: [][]int{{0}}, Root: 0}
	if _, err := Solve(bad3); err == nil {
		t.Fatal("bad child accepted")
	}
}

// TestRandomDAGOptimality cross-checks branch-and-bound against brute
// force on small random acyclic problems.
func TestRandomDAGOptimality(t *testing.T) {
	f := func(seed []uint8) bool {
		p := randomDAG(seed)
		sol, err := Solve(p)
		if err != nil {
			return errors.Is(err, ErrInfeasible)
		}
		want := bruteForce(p)
		return math.Abs(sol.Cost-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// randomDAG builds a 4-6 class problem whose node children always point
// at higher-numbered classes (guaranteeing acyclicity).
func randomDAG(seed []uint8) *Problem {
	get := func(i int) int {
		if len(seed) == 0 {
			return 1
		}
		return int(seed[i%len(seed)])
	}
	m := 4 + get(0)%3
	p := &Problem{Root: 0}
	idx := 0
	for c := 0; c < m; c++ {
		nNodes := 1 + get(c+1)%2
		var members []int
		for k := 0; k < nNodes; k++ {
			cost := float64(1 + get(idx+2)%20)
			var children []int
			if c+1 < m && get(idx+3)%3 > 0 {
				children = append(children, c+1+get(idx+4)%(m-c-1))
			}
			if c+2 < m && get(idx+5)%4 == 0 {
				children = append(children, c+2+get(idx+6)%(m-c-2))
			}
			p.Costs = append(p.Costs, cost)
			p.ClassOf = append(p.ClassOf, c)
			p.Children = append(p.Children, children)
			members = append(members, idx)
			idx++
		}
		p.Classes = append(p.Classes, members)
	}
	return p
}

// bruteForce enumerates every selection (one node per class) and
// returns the minimum cost over distinct classes reachable from root.
func bruteForce(p *Problem) float64 {
	m := len(p.Classes)
	choice := make([]int, m)
	best := math.Inf(1)
	var rec func(c int)
	rec = func(c int) {
		if c == m {
			// Compute the cost of classes reachable from root.
			seen := make(map[int]bool)
			total := 0.0
			var visit func(cls int)
			visit = func(cls int) {
				if seen[cls] {
					return
				}
				seen[cls] = true
				n := choice[cls]
				total += p.Costs[n]
				for _, h := range p.Children[n] {
					visit(h)
				}
			}
			visit(p.Root)
			if total < best {
				best = total
			}
			return
		}
		for _, n := range p.Classes[c] {
			choice[c] = n
			rec(c + 1)
		}
	}
	rec(0)
	return best
}
