package lpfile

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"tensat/internal/ilp"
)

func diamond() *ilp.Problem {
	return &ilp.Problem{
		Costs:    []float64{1, 10, 70, 10, 70, 100},
		ClassOf:  []int{0, 1, 1, 2, 2, 3},
		Children: [][]int{{1, 2}, {3}, nil, {3}, nil, nil},
		Classes:  [][]int{{0}, {1, 2}, {3, 4}, {5}},
		Root:     0,
	}
}

func cyclic() *ilp.Problem {
	return &ilp.Problem{
		Costs:            []float64{1, 10, 0, 10, 0},
		ClassOf:          []int{0, 1, 1, 2, 2},
		Children:         [][]int{{1, 2}, nil, {2}, nil, {1}},
		Classes:          [][]int{{0}, {1, 2}, {3, 4}},
		Root:             0,
		CycleConstraints: true,
	}
}

// roundTrip exports p to MPS, parses it back, and solves both; the
// objectives must match exactly.
func roundTrip(t *testing.T, p *ilp.Problem) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMPS(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadMPS(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadMPS: %v\n%s", err, buf.String())
	}
	want, err1 := ilp.Solve(p)
	got, err2 := ilp.Solve(q)
	if err1 != nil || err2 != nil {
		t.Fatalf("solve: original %v, round-tripped %v", err1, err2)
	}
	if math.Abs(want.Cost-got.Cost) > 1e-9 {
		t.Fatalf("objective changed through MPS: %v -> %v\n%s", want.Cost, got.Cost, buf.String())
	}
	if q.CycleConstraints != p.CycleConstraints || q.TopoMode != p.TopoMode || q.Root != p.Root {
		t.Fatalf("model shape changed: %+v", q)
	}
}

func TestMPSRoundTripDiamond(t *testing.T) { roundTrip(t, diamond()) }

func TestMPSRoundTripCyclic(t *testing.T) {
	for _, mode := range []ilp.TopoMode{ilp.TopoReal, ilp.TopoInt} {
		p := cyclic()
		p.TopoMode = mode
		roundTrip(t, p)
	}
}

func TestMPSRoundTripForbidden(t *testing.T) {
	p := diamond()
	p.Forbidden = []bool{false, true, false, false, false, false}
	roundTrip(t, p)
}

func TestMPSRoundTripRandom(t *testing.T) {
	f := func(seed []uint8) bool {
		p := randomDAG(seed)
		var buf bytes.Buffer
		if err := WriteMPS(&buf, p); err != nil {
			return false
		}
		q, err := ReadMPS(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		a, err1 := ilp.Solve(p)
		b, err2 := ilp.Solve(q)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		return math.Abs(a.Cost-b.Cost) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMPSDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteMPS(&a, diamond()); err != nil {
		t.Fatal(err)
	}
	if err := WriteMPS(&b, diamond()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("MPS export is not deterministic")
	}
}

func TestWriteLPContainsModel(t *testing.T) {
	var buf bytes.Buffer
	p := cyclic()
	if err := WriteLP(&buf, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Minimize", "ROOT:", "X_C1_N2", "T_C1", "Binary", "CY_N2_C2", "End"} {
		if !strings.Contains(out, want) {
			t.Fatalf("LP output missing %q:\n%s", want, out)
		}
	}
}

func TestParseSolutionCBC(t *testing.T) {
	in := `Optimal - objective value 121.00000000
      0 X_C0_N0                1                       1
      1 X_C1_N1                1                      10
      3 X_C2_N3                1                      10
      5 X_C3_N5                0.99999999             100
      2 X_C1_N2                0                      70
`
	sel, err := ParseSolution(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if sel.Status != "optimal" || !sel.HasObjective || sel.Objective != 121 {
		t.Fatalf("header parse: %+v", sel)
	}
	want := map[int]int{0: 0, 1: 1, 2: 3, 3: 5}
	for c, n := range want {
		if sel.NodeOf[c] != n {
			t.Fatalf("NodeOf = %v, want %v", sel.NodeOf, want)
		}
	}
	if _, ok := sel.NodeOf[9]; ok || len(sel.NodeOf) != 4 {
		t.Fatalf("spurious selections: %v", sel.NodeOf)
	}
	cost, err := SelectionCost(diamond(), sel.NodeOf)
	if err != nil || cost != 121 {
		t.Fatalf("SelectionCost = %v, %v", cost, err)
	}
}

func TestParseSolutionHiGHS(t *testing.T) {
	in := `Model status
Optimal

# Primal solution values
Feasible
Objective 121
# Columns 6
X_C0_N0 1
X_C1_N1 1
X_C1_N2 0
X_C2_N3 1
X_C2_N4 0
X_C3_N5 1
# Rows 5
ROOT 1
`
	sel, err := ParseSolution(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if sel.Status != "optimal" || !sel.HasObjective || sel.Objective != 121 {
		t.Fatalf("header parse: %+v", sel)
	}
	cost, err := SelectionCost(diamond(), sel.NodeOf)
	if err != nil || cost != 121 {
		t.Fatalf("SelectionCost = %v, %v (sel %v)", cost, err, sel.NodeOf)
	}
}

func TestParseSolutionInfeasible(t *testing.T) {
	sel, err := ParseSolution(strings.NewReader("Infeasible - objective value 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if sel.Status != "infeasible" {
		t.Fatalf("status %q", sel.Status)
	}
}

func TestSelectionCostRejectsBadSelections(t *testing.T) {
	p := diamond()
	if _, err := SelectionCost(p, map[int]int{0: 0}); err == nil {
		t.Fatal("incomplete selection accepted")
	}
	if _, err := SelectionCost(p, map[int]int{0: 0, 1: 3, 2: 3, 3: 5}); err == nil {
		t.Fatal("wrong-class node accepted")
	}
	c := cyclic()
	if _, err := SelectionCost(c, map[int]int{0: 0, 1: 2, 2: 4}); err == nil {
		t.Fatal("cyclic selection accepted under cycle constraints")
	}
}

// randomDAG mirrors the solver test generator.
func randomDAG(seed []uint8) *ilp.Problem {
	get := func(i int) int {
		if len(seed) == 0 {
			return 1
		}
		return int(seed[i%len(seed)])
	}
	m := 4 + get(0)%3
	p := &ilp.Problem{Root: 0}
	idx := 0
	for c := 0; c < m; c++ {
		nNodes := 1 + get(c+1)%2
		var members []int
		for k := 0; k < nNodes; k++ {
			cost := float64(1 + get(idx+2)%20)
			var children []int
			if c+1 < m && get(idx+3)%3 > 0 {
				children = append(children, c+1+get(idx+4)%(m-c-1))
			}
			if c+2 < m && get(idx+5)%4 == 0 {
				children = append(children, c+2+get(idx+6)%(m-c-2))
			}
			p.Costs = append(p.Costs, cost)
			p.ClassOf = append(p.ClassOf, c)
			p.Children = append(p.Children, children)
			members = append(members, idx)
			idx++
		}
		p.Classes = append(p.Classes, members)
	}
	return p
}
