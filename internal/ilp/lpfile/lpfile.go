// Package lpfile moves extraction ILP models across the process
// boundary: it exports any ilp.Problem to the standard MPS and CPLEX
// LP text formats, reads MPS models back, and parses the solution
// files CBC and HiGHS write. That makes the model debuggable with any
// off-the-shelf MIP tooling — dump the MPS, solve it by hand, diff the
// selection — and is the transport the external solver backend uses.
//
// Naming is deterministic and keyed to the problem's own indices, so
// a variable in the file is traceable to its e-node without any side
// table: node i of class c is X_C<c>_N<i>, the topological-order
// variable of class c is T_C<c>. Rows are ROOT (the root class picks
// exactly one node), CH_N<i>_C<m> (picking node i requires a pick in
// child class m), and CY_N<i>_C<m> (the big-M topological-order row
// for the same edge when cycle constraints are on).
//
// The children-implication rows are deduplicated per (node, child
// class) edge — a node using the same class twice yields one row, the
// constraint being identical — so a Problem round-tripped through MPS
// preserves objective and feasibility but not duplicate child entries.
package lpfile

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"tensat/internal/ilp"
)

// VarName is the MPS/LP column name of node i in class c.
func VarName(c, i int) string { return fmt.Sprintf("X_C%d_N%d", c, i) }

// OrderVarName is the column name of class c's topological-order
// variable (present only when the model has cycle constraints).
func OrderVarName(c int) string { return fmt.Sprintf("T_C%d", c) }

// childRow is the name of the implication row "picking node i requires
// child class m".
func childRow(i, m int) string { return fmt.Sprintf("CH_N%d_C%d", i, m) }

// cycleRow is the name of the topological-order row for edge (i, m).
func cycleRow(i, m int) string { return fmt.Sprintf("CY_N%d_C%d", i, m) }

// forbidden reports whether node i is excluded from the model (listed
// in the filter mask or priced infinite by the cost model); its
// variable is exported fixed to zero.
func forbidden(p *ilp.Problem, i int) bool {
	return (p.Forbidden != nil && p.Forbidden[i]) || math.IsInf(p.Costs[i], 1)
}

// dedupChildren returns node i's distinct child classes in first-seen
// order.
func dedupChildren(p *ilp.Problem, i int) []int {
	hs := p.Children[i]
	out := make([]int, 0, len(hs))
	for _, h := range hs {
		dup := false
		for _, o := range out {
			if o == h {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, h)
		}
	}
	return out
}

// bigM is the big-M constant of the topological-order rows: with order
// variables in [0, M-1], A = M makes the row vacuous whenever the node
// is unselected and binding (t_parent >= t_child + 1) when selected.
func bigM(p *ilp.Problem) float64 {
	m := len(p.Classes)
	if m < 2 {
		m = 2
	}
	return float64(m)
}

// WriteMPS writes the model in (free-form) MPS format, the lingua
// franca CBC, HiGHS, SCIP, CPLEX and Gurobi all read.
//
//lint:ctxflow-exempt single bounded pass over an in-memory model; I/O speed is the caller's writer
func WriteMPS(w io.Writer, p *ilp.Problem) error {
	if err := p.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "NAME          TENSAT_EXTRACTION")

	fmt.Fprintln(bw, "ROWS")
	fmt.Fprintln(bw, " N  OBJ")
	fmt.Fprintln(bw, " E  ROOT")
	for i := range p.Costs {
		for _, m := range dedupChildren(p, i) {
			fmt.Fprintf(bw, " G  %s\n", childRow(i, m))
		}
	}
	if p.CycleConstraints {
		for i := range p.Costs {
			for _, m := range dedupChildren(p, i) {
				fmt.Fprintf(bw, " G  %s\n", cycleRow(i, m))
			}
		}
	}

	// COLUMNS, column-major: every coefficient of a variable listed
	// contiguously. Node variables are integer (binary via BOUNDS).
	fmt.Fprintln(bw, "COLUMNS")
	fmt.Fprintln(bw, "    MARKER_INT_BEG  'MARKER'                 'INTORG'")
	A := bigM(p)
	for c, members := range p.Classes {
		for _, i := range members {
			name := VarName(c, i)
			coeffs := make(map[string]float64)
			order := []string{"OBJ"}
			if !math.IsInf(p.Costs[i], 1) {
				coeffs["OBJ"] = p.Costs[i]
			}
			if c == p.Root {
				order = append(order, "ROOT")
				coeffs["ROOT"] = 1
			}
			// +1 in every implication row whose child class is c (this
			// node can satisfy the requirement), -1 in the rows this
			// node owns (picking it imposes them). A self-class edge
			// nets to zero and is skipped at write time.
			add := func(r string, v float64) {
				if _, ok := coeffs[r]; !ok {
					order = append(order, r)
				}
				coeffs[r] += v
			}
			for k := range p.Costs {
				for _, m := range dedupChildren(p, k) {
					if m == c {
						add(childRow(k, m), 1)
					}
				}
			}
			for _, m := range dedupChildren(p, i) {
				add(childRow(i, m), -1)
			}
			if p.CycleConstraints {
				for _, m := range dedupChildren(p, i) {
					add(cycleRow(i, m), -A)
				}
			}
			for _, r := range order {
				if v, ok := coeffs[r]; ok && v != 0 || r == "OBJ" {
					fmt.Fprintf(bw, "    %-14s  %-14s  %.9g\n", name, r, coeffs[r])
				}
			}
		}
	}
	fmt.Fprintln(bw, "    MARKER_INT_END  'MARKER'                 'INTEND'")
	if p.CycleConstraints {
		if p.TopoMode == ilp.TopoInt {
			fmt.Fprintln(bw, "    MARKER_TOPO_BEG 'MARKER'                 'INTORG'")
		}
		for c := range p.Classes {
			name := OrderVarName(c)
			wrote := false
			for i := range p.Costs {
				gi := p.ClassOf[i]
				for _, m := range dedupChildren(p, i) {
					// Row: t_g(i) - t_m - A x_i >= 1 - A.
					v := 0.0
					if gi == c {
						v++
					}
					if m == c {
						v--
					}
					if v != 0 {
						fmt.Fprintf(bw, "    %-14s  %-14s  %.9g\n", name, cycleRow(i, m), v)
						wrote = true
					}
				}
			}
			if !wrote {
				// Keep every order variable present so BOUNDS below is
				// never dangling.
				fmt.Fprintf(bw, "    %-14s  %-14s  0\n", name, "OBJ")
			}
		}
		if p.TopoMode == ilp.TopoInt {
			fmt.Fprintln(bw, "    MARKER_TOPO_END 'MARKER'                 'INTEND'")
		}
	}

	fmt.Fprintln(bw, "RHS")
	fmt.Fprintln(bw, "    RHS             ROOT            1")
	if p.CycleConstraints {
		for i := range p.Costs {
			for _, m := range dedupChildren(p, i) {
				fmt.Fprintf(bw, "    RHS             %-14s  %.9g\n", cycleRow(i, m), 1-A)
			}
		}
	}

	fmt.Fprintln(bw, "BOUNDS")
	for c, members := range p.Classes {
		for _, i := range members {
			if forbidden(p, i) {
				fmt.Fprintf(bw, " FX BND             %-14s  0\n", VarName(c, i))
			} else {
				fmt.Fprintf(bw, " BV BND             %s\n", VarName(c, i))
			}
		}
	}
	if p.CycleConstraints {
		for c := range p.Classes {
			fmt.Fprintf(bw, " UP BND             %-14s  %.9g\n", OrderVarName(c), A-1)
		}
	}
	fmt.Fprintln(bw, "ENDATA")
	return bw.Flush()
}

// WriteLP writes the model in CPLEX LP format — the human-readable
// twin of WriteMPS, for eyeballing a model rather than solving it.
//
//lint:ctxflow-exempt single bounded pass over an in-memory model; I/O speed is the caller's writer
func WriteLP(w io.Writer, p *ilp.Problem) error {
	if err := p.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "\\ TENSAT extraction ILP (one binary per e-node; pick one node per required e-class)")
	fmt.Fprintln(bw, "Minimize")
	fmt.Fprint(bw, " obj:")
	first := true
	for c, members := range p.Classes {
		for _, i := range members {
			cost := p.Costs[i]
			if math.IsInf(cost, 1) {
				cost = 0
			}
			if first {
				fmt.Fprintf(bw, " %.9g %s", cost, VarName(c, i))
				first = false
			} else {
				fmt.Fprintf(bw, " + %.9g %s", cost, VarName(c, i))
			}
		}
	}
	fmt.Fprintln(bw)
	fmt.Fprintln(bw, "Subject To")
	fmt.Fprint(bw, " ROOT:")
	for k, i := range p.Classes[p.Root] {
		if k > 0 {
			fmt.Fprint(bw, " +")
		}
		fmt.Fprintf(bw, " %s", VarName(p.Root, i))
	}
	fmt.Fprintln(bw, " = 1")
	for i := range p.Costs {
		for _, m := range dedupChildren(p, i) {
			fmt.Fprintf(bw, " %s:", childRow(i, m))
			for _, j := range p.Classes[m] {
				fmt.Fprintf(bw, " + %s", VarName(m, j))
			}
			fmt.Fprintf(bw, " - %s >= 0\n", VarName(p.ClassOf[i], i))
		}
	}
	if p.CycleConstraints {
		A := bigM(p)
		for i := range p.Costs {
			gi := p.ClassOf[i]
			for _, m := range dedupChildren(p, i) {
				fmt.Fprintf(bw, " %s: %s - %s - %.9g %s >= %.9g\n",
					cycleRow(i, m), OrderVarName(gi), OrderVarName(m), A, VarName(gi, i), 1-A)
			}
		}
	}
	fmt.Fprintln(bw, "Bounds")
	for c, members := range p.Classes {
		for _, i := range members {
			if forbidden(p, i) {
				fmt.Fprintf(bw, " %s = 0\n", VarName(c, i))
			}
		}
	}
	if p.CycleConstraints {
		A := bigM(p)
		for c := range p.Classes {
			fmt.Fprintf(bw, " 0 <= %s <= %.9g\n", OrderVarName(c), A-1)
		}
	}
	fmt.Fprintln(bw, "Binary")
	for c, members := range p.Classes {
		for _, i := range members {
			fmt.Fprintf(bw, " %s\n", VarName(c, i))
		}
	}
	if p.CycleConstraints && p.TopoMode == ilp.TopoInt {
		fmt.Fprintln(bw, "Generals")
		for c := range p.Classes {
			fmt.Fprintf(bw, " %s\n", OrderVarName(c))
		}
	}
	fmt.Fprintln(bw, "End")
	return bw.Flush()
}

// parseVar decodes an X_C<c>_N<i> column name; ok is false for any
// other name (order variables, markers, foreign columns).
func parseVar(name string) (class, node int, ok bool) {
	if !strings.HasPrefix(name, "X_C") {
		return 0, 0, false
	}
	rest := name[len("X_C"):]
	sep := strings.Index(rest, "_N")
	if sep < 0 {
		return 0, 0, false
	}
	c, err1 := strconv.Atoi(rest[:sep])
	i, err2 := strconv.Atoi(rest[sep+len("_N"):])
	if err1 != nil || err2 != nil || c < 0 || i < 0 {
		return 0, 0, false
	}
	return c, i, true
}

// parseChildRow decodes a CH_N<i>_C<m> (or CY_N<i>_C<m>) row name.
func parseChildRow(name, prefix string) (node, class int, ok bool) {
	if !strings.HasPrefix(name, prefix+"_N") {
		return 0, 0, false
	}
	rest := name[len(prefix)+len("_N"):]
	sep := strings.Index(rest, "_C")
	if sep < 0 {
		return 0, 0, false
	}
	i, err1 := strconv.Atoi(rest[:sep])
	m, err2 := strconv.Atoi(rest[sep+len("_C"):])
	if err1 != nil || err2 != nil || i < 0 || m < 0 {
		return 0, 0, false
	}
	return i, m, true
}

// ReadMPS reconstructs a Problem from an MPS file using this package's
// naming scheme (it is the inverse of WriteMPS, not a general MPS
// reader). Duplicate child entries collapse to one, as documented.
//
//lint:ctxflow-exempt single bounded pass over an already-read text model
func ReadMPS(r io.Reader) (*ilp.Problem, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	section := ""
	maxNode, maxClass := -1, -1
	classOf := map[int]int{}
	costs := map[int]float64{}
	children := map[int][]int{}
	forbidden := map[int]bool{}
	rootClass := -1
	cycle := false
	topoInt := false
	inInt := false
	sawOrderVar := false

	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "*") {
			continue
		}
		if !strings.HasPrefix(line, " ") && !strings.HasPrefix(line, "\t") {
			f := strings.Fields(trimmed)
			section = f[0]
			continue
		}
		f := strings.Fields(trimmed)
		switch section {
		case "ROWS":
			if len(f) != 2 {
				return nil, fmt.Errorf("lpfile: malformed ROWS line %q", trimmed)
			}
			if i, m, ok := parseChildRow(f[1], "CH"); ok {
				children[i] = appendUnique(children[i], m)
				if i > maxNode {
					maxNode = i
				}
				if m > maxClass {
					maxClass = m
				}
			}
			if _, _, ok := parseChildRow(f[1], "CY"); ok {
				cycle = true
			}
		case "COLUMNS":
			if len(f) >= 3 && f[1] == "'MARKER'" {
				switch f[2] {
				case "'INTORG'":
					inInt = true
				case "'INTEND'":
					inInt = false
				}
				continue
			}
			if len(f) < 3 {
				return nil, fmt.Errorf("lpfile: malformed COLUMNS line %q", trimmed)
			}
			if c, i, ok := parseVar(f[0]); ok {
				classOf[i] = c
				if i > maxNode {
					maxNode = i
				}
				if c > maxClass {
					maxClass = c
				}
				for k := 1; k+1 < len(f); k += 2 {
					v, err := strconv.ParseFloat(f[k+1], 64)
					if err != nil {
						return nil, fmt.Errorf("lpfile: bad coefficient in %q: %v", trimmed, err)
					}
					switch {
					case f[k] == "OBJ":
						costs[i] = v
					case f[k] == "ROOT":
						rootClass = c
					}
				}
			} else if strings.HasPrefix(f[0], "T_C") {
				sawOrderVar = true
				if inInt {
					topoInt = true
				}
			}
		case "BOUNDS":
			// " FX BND X_C0_N1 0" fixes a variable; BV marks binaries.
			if len(f) >= 3 && f[0] == "FX" {
				if _, i, ok := parseVar(f[2]); ok {
					forbidden[i] = true
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if maxNode < 0 || rootClass < 0 {
		return nil, fmt.Errorf("lpfile: no node variables or no ROOT membership found")
	}
	_ = sawOrderVar

	p := &ilp.Problem{Root: rootClass, CycleConstraints: cycle}
	if topoInt {
		p.TopoMode = ilp.TopoInt
	}
	n := maxNode + 1
	m := maxClass + 1
	p.Costs = make([]float64, n)
	p.ClassOf = make([]int, n)
	p.Children = make([][]int, n)
	p.Classes = make([][]int, m)
	anyForbidden := false
	fb := make([]bool, n)
	for i := 0; i < n; i++ {
		c, ok := classOf[i]
		if !ok {
			return nil, fmt.Errorf("lpfile: node %d has no column", i)
		}
		p.ClassOf[i] = c
		p.Costs[i] = costs[i]
		p.Children[i] = children[i]
		p.Classes[c] = append(p.Classes[c], i)
		if forbidden[i] {
			fb[i] = true
			anyForbidden = true
		}
	}
	if anyForbidden {
		p.Forbidden = fb
	}
	for c := range p.Classes {
		sort.Ints(p.Classes[c])
	}
	return p, p.Validate()
}

func appendUnique(s []int, v int) []int {
	for _, o := range s {
		if o == v {
			return s
		}
	}
	return append(s, v)
}

// Selection is a solution file mapped back onto the model.
type Selection struct {
	// NodeOf is the chosen node per class, decoded from the variables
	// at value one.
	NodeOf map[int]int
	// Objective is the solver-reported objective, when present.
	Objective    float64
	HasObjective bool
	// Status classifies the solver's verdict: "optimal", "infeasible",
	// "stopped" (budget hit with a feasible answer), or "unknown".
	Status string
}

// ParseSolution reads a CBC or HiGHS solution file and decodes the
// selected nodes. Both formats are line-oriented with a status
// header and one "name value" (CBC: "index name value reducedcost")
// line per nonzero or per column; the parser keys on this package's
// variable names and a > 0.5 threshold, so it tolerates either layout
// and solver-specific noise lines.
//
//lint:ctxflow-exempt single bounded pass over an already-written solution file
func ParseSolution(r io.Reader) (*Selection, error) {
	sel := &Selection{NodeOf: map[int]int{}, Status: "unknown"}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		lower := strings.ToLower(line)
		switch {
		case strings.HasPrefix(lower, "optimal"):
			sel.Status = "optimal"
		case strings.Contains(lower, "infeasible"):
			sel.Status = "infeasible"
		case strings.HasPrefix(lower, "stopped"):
			sel.Status = "stopped"
		}
		// CBC: "Optimal - objective value 121.0000000"; HiGHS: "Objective 121".
		if k := strings.Index(lower, "objective value"); k >= 0 {
			if v, err := strconv.ParseFloat(strings.TrimSpace(line[k+len("objective value"):]), 64); err == nil {
				sel.Objective, sel.HasObjective = v, true
			}
		} else if strings.HasPrefix(lower, "objective") {
			if f := strings.Fields(line); len(f) == 2 {
				if v, err := strconv.ParseFloat(f[1], 64); err == nil {
					sel.Objective, sel.HasObjective = v, true
				}
			}
		}
		f := strings.Fields(line)
		for k, tok := range f {
			c, i, ok := parseVar(tok)
			if !ok || k+1 >= len(f) {
				continue
			}
			v, err := strconv.ParseFloat(f[k+1], 64)
			if err != nil {
				continue
			}
			if v > 0.5 {
				sel.NodeOf[c] = i
			}
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return sel, nil
}

// SelectionCost evaluates a decoded selection against the problem: the
// DAG cost of the root closure. It errors if the selection is missing
// a required class or (under cycle constraints) cyclic — the checks a
// solution from an external process must pass before being trusted.
func SelectionCost(p *ilp.Problem, nodeOf map[int]int) (float64, error) {
	state := make(map[int]uint8)
	total := 0.0
	var visit func(c int) error
	visit = func(c int) error {
		switch state[c] {
		case 2:
			return nil
		case 1:
			if p.CycleConstraints {
				return fmt.Errorf("lpfile: selection is cyclic at class %d", c)
			}
			return nil
		}
		state[c] = 1
		i, ok := nodeOf[c]
		if !ok {
			return fmt.Errorf("lpfile: selection missing required class %d", c)
		}
		if p.ClassOf[i] != c {
			return fmt.Errorf("lpfile: node %d does not belong to class %d", i, c)
		}
		if forbidden(p, i) {
			return fmt.Errorf("lpfile: selection uses forbidden node %d", i)
		}
		total += p.Costs[i]
		for _, h := range p.Children[i] {
			if err := visit(h); err != nil {
				return err
			}
		}
		state[c] = 2
		return nil
	}
	if err := visit(p.Root); err != nil {
		return 0, err
	}
	return total, nil
}
