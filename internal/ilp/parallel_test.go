package ilp

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// sharingProblem builds the k-way generalization of the sharing
// diamond: the root node (cost 1) needs classes D_1..D_k; each D_i
// chooses between u_i (cost 2, child S) and a private leaf (cost 3);
// S is a single leaf of cost 4. Greedy tree costs see u_i as 6 > 3 and
// pick every leaf (1+3k); the DAG optimum picks every u_i and pays S
// once (1+2k+4). The bound ignores the sharing, so branch-and-bound
// genuinely explores — a good stand-in for a hard merged e-graph.
func sharingProblem(k int) *Problem {
	p := &Problem{Root: 0}
	// class 0: root, single node with children 1..k.
	rootKids := make([]int, k)
	for i := range rootKids {
		rootKids[i] = i + 1
	}
	p.Costs = append(p.Costs, 1)
	p.ClassOf = append(p.ClassOf, 0)
	p.Children = append(p.Children, rootKids)
	p.Classes = append(p.Classes, []int{0})
	sClass := k + 1
	for i := 1; i <= k; i++ {
		u := len(p.Costs)
		p.Costs = append(p.Costs, 2, 3)
		p.ClassOf = append(p.ClassOf, i, i)
		p.Children = append(p.Children, []int{sClass}, nil)
		p.Classes = append(p.Classes, []int{u, u + 1})
	}
	s := len(p.Costs)
	p.Costs = append(p.Costs, 4)
	p.ClassOf = append(p.ClassOf, sClass)
	p.Children = append(p.Children, nil)
	p.Classes = append(p.Classes, []int{s})
	return p
}

// ringProblem is infeasible under cycle constraints and exponentially
// slow to refute: the root needs class C_0 of an m-class ring where
// every class offers a "+1 hop" and a "+2 hop" node (distinct children,
// so domination cannot collapse them). Every complete selection is a
// functional graph that must revisit a class, so no feasible solution
// exists, but the solver only discovers each contradiction at the
// assignment that closes the lap — 2^Ω(m) dead ends. No warm start
// exists (every greedy tree cost is infinite), so the search runs
// incumbent-free until canceled.
func ringProblem(m int) *Problem {
	p := &Problem{Root: 0, CycleConstraints: true}
	p.Costs = append(p.Costs, 1)
	p.ClassOf = append(p.ClassOf, 0)
	p.Children = append(p.Children, []int{1})
	p.Classes = append(p.Classes, []int{0})
	for i := 0; i < m; i++ {
		hop1 := 1 + (i+1)%m
		hop2 := 1 + (i+2)%m
		a := len(p.Costs)
		p.Costs = append(p.Costs, 1, 1)
		p.ClassOf = append(p.ClassOf, 1+i, 1+i)
		p.Children = append(p.Children, []int{hop1}, []int{hop2})
		p.Classes = append(p.Classes, []int{a, a + 1})
	}
	return p
}

// escapeRing is ringProblem plus one expensive leaf in C_0: the only
// feasible solutions take the leaf (cost 1+100), so the warm start is
// already optimal, but proving optimality means refuting the entire
// ring — an anytime search that runs essentially forever with a good
// incumbent in hand. Ideal for timeout/cancellation contracts.
func escapeRing(m int) *Problem {
	p := ringProblem(m)
	leaf := len(p.Costs)
	p.Costs = append(p.Costs, 100)
	p.ClassOf = append(p.ClassOf, 1)
	p.Children = append(p.Children, nil)
	p.Classes[1] = append(p.Classes[1], leaf)
	return p
}

func TestSharingProblemOptimum(t *testing.T) {
	const k = 14
	sol, err := Solve(sharingProblem(k))
	if err != nil {
		t.Fatal(err)
	}
	want := float64(1 + 2*k + 4)
	if sol.Cost != want || !sol.Optimal {
		t.Fatalf("cost %v optimal %v, want %v true", sol.Cost, sol.Optimal, want)
	}
}

func TestParallelMatchesSequentialRandom(t *testing.T) {
	f := func(seed []uint8) bool {
		p := randomDAG(seed)
		seq, serr := Solve(p)
		par, perr := SolveParallel(p, 4)
		if serr != nil || perr != nil {
			return errors.Is(serr, ErrInfeasible) && errors.Is(perr, ErrInfeasible)
		}
		return math.Abs(seq.Cost-par.Cost) < 1e-6 && par.Optimal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelMatchesSequentialCyclic(t *testing.T) {
	for _, mode := range []TopoMode{TopoReal, TopoInt} {
		p := cyclicProblem()
		p.TopoMode = mode
		sol, err := SolveParallel(p, 4)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if sol.Cost != 11 || isCyclic(p, sol.NodeOf) {
			t.Fatalf("%v: cost %v selection %+v", mode, sol.Cost, sol.NodeOf)
		}
	}
}

func TestParallelSharingOptimum(t *testing.T) {
	const k = 14
	sol, err := SolveParallel(sharingProblem(k), 4)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(1 + 2*k + 4)
	if sol.Cost != want || !sol.Optimal {
		t.Fatalf("cost %v optimal %v, want %v true", sol.Cost, sol.Optimal, want)
	}
	if sol.Workers < 2 {
		t.Fatalf("expected a parallel solve, got %d workers", sol.Workers)
	}
}

// TestParallelDeterministicCost reruns the same parallel solve and
// requires identical costs: the shared-incumbent tie-break must make
// the answer independent of worker scheduling.
func TestParallelDeterministicCost(t *testing.T) {
	p := sharingProblem(12)
	first := -1.0
	for run := 0; run < 6; run++ {
		sol, err := SolveParallel(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		if first < 0 {
			first = sol.Cost
		} else if sol.Cost != first {
			t.Fatalf("run %d cost %v != first run %v", run, sol.Cost, first)
		}
	}
}

// TestOfferTieBreak checks the deterministic tie-break directly: an
// equal-cost solution from an earlier unit replaces the incumbent,
// one from a later unit does not, and only strict improvements count
// as incumbents.
func TestOfferTieBreak(t *testing.T) {
	sh := &parallelShared{start: time.Now(), bestUnit: -1}
	sh.bestBits.Store(math.Float64bits(math.Inf(1)))
	if !sh.offer(10, []int{1, 2}, 5) {
		t.Fatal("first solution rejected")
	}
	if sh.offer(10, []int{3, 4}, 7) {
		t.Fatal("equal cost from a later unit accepted")
	}
	if !sh.offer(10, []int{5, 6}, 2) {
		t.Fatal("equal cost from an earlier unit rejected")
	}
	if sh.bestUnit != 2 || sh.bestPick[0] != 5 {
		t.Fatalf("tie-break kept unit %d pick %v", sh.bestUnit, sh.bestPick)
	}
	if sh.incumbents != 1 {
		t.Fatalf("ties counted as incumbents: %d", sh.incumbents)
	}
	if !sh.offer(9, []int{7, 8}, 9) || sh.incumbents != 2 {
		t.Fatal("strict improvement mishandled")
	}
}

// TestOnIncumbentMonotonic asserts the OnIncumbent contract for both
// solve modes: costs strictly decrease, starting from the warm seed.
func TestOnIncumbentMonotonic(t *testing.T) {
	for _, par := range []bool{false, true} {
		var mu sync.Mutex
		var costs []float64
		p := sharingProblem(12)
		p.OnIncumbent = func(cost float64, _ int64) {
			mu.Lock()
			costs = append(costs, cost)
			mu.Unlock()
		}
		var sol *Solution
		var err error
		if par {
			sol, err = SolveParallel(p, 4)
		} else {
			sol, err = Solve(p)
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(costs) == 0 {
			t.Fatalf("parallel=%v: no incumbent callbacks", par)
		}
		for i := 1; i < len(costs); i++ {
			if costs[i] >= costs[i-1] {
				t.Fatalf("parallel=%v: incumbent costs not strictly decreasing: %v", par, costs)
			}
		}
		if costs[len(costs)-1] != sol.Cost {
			t.Fatalf("parallel=%v: last incumbent %v != solution cost %v", par, costs[len(costs)-1], sol.Cost)
		}
		if len(costs) != sol.Incumbents {
			t.Fatalf("parallel=%v: %d callbacks, Incumbents=%d", par, len(costs), sol.Incumbents)
		}
	}
}

// TestParallelCancelMidBranch cancels from inside the first incumbent
// callback of a search far too large to finish (2^40 assignments):
// the solve must return the incumbent with Canceled set rather than
// hang or error. Run under -race in CI, this also exercises the
// shared-incumbent synchronization.
func TestParallelCancelMidBranch(t *testing.T) {
	p := escapeRing(34)
	p.Timeout = 30 * time.Second // safety net if cancellation breaks
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p.OnIncumbent = func(float64, int64) { cancel() }
	sol, err := SolveParallelContext(ctx, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sol.NodeOf == nil || sol.Cost <= 0 {
		t.Fatalf("no incumbent returned: %+v", sol)
	}
	if !sol.Canceled || sol.Optimal {
		t.Fatalf("cancellation not reported: canceled=%v optimal=%v", sol.Canceled, sol.Optimal)
	}
}

// TestCanceledWithoutIncumbentReturnsContextError is the regression
// test for the unified cancellation path: a context that dies
// mid-search before any feasible solution exists must surface the
// context's own error, not ErrTimeout (which callers used to have to
// reverse-map onto a dead context).
func TestCanceledWithoutIncumbentReturnsContextError(t *testing.T) {
	for _, par := range []bool{false, true} {
		p := ringProblem(40)
		p.Timeout = 30 * time.Second // safety net if cancellation breaks
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		var err error
		if par {
			_, err = SolveParallelContext(ctx, p, 4)
		} else {
			_, err = SolveContext(ctx, p)
		}
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("parallel=%v: err = %v, want the context error", par, err)
		}
		if errors.Is(err, ErrTimeout) {
			t.Fatalf("parallel=%v: cancellation still reported as ErrTimeout", par)
		}
	}
}

// TestTimeoutReturnsIncumbentNotError pins the anytime contract: with
// a warm-start incumbent present, an expired solver deadline returns
// the incumbent with Optimal=false and TimedOut=true, not an error.
func TestTimeoutReturnsIncumbentNotError(t *testing.T) {
	for _, par := range []bool{false, true} {
		p := escapeRing(26)
		p.Timeout = time.Nanosecond
		var sol *Solution
		var err error
		if par {
			sol, err = SolveParallel(p, 4)
		} else {
			sol, err = Solve(p)
		}
		if err != nil {
			t.Fatalf("parallel=%v: %v", par, err)
		}
		if !sol.TimedOut || sol.Optimal || sol.NodeOf == nil {
			t.Fatalf("parallel=%v: want incumbent with TimedOut: %+v", par, sol)
		}
	}
}

func TestParallelWorkersOneIsSequential(t *testing.T) {
	sol, err := SolveParallel(sharingProblem(10), 1)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Workers != 1 || !sol.Optimal {
		t.Fatalf("workers=%d optimal=%v", sol.Workers, sol.Optimal)
	}
}
