package presolve

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"tensat/internal/ilp"
)

// diamond is the sharing problem from the solver tests: root needs A
// and B, both can reuse shared class S or take private leaves.
func diamond() *ilp.Problem {
	return &ilp.Problem{
		Costs:    []float64{1, 10, 70, 10, 70, 100},
		ClassOf:  []int{0, 1, 1, 2, 2, 3},
		Children: [][]int{{1, 2}, {3}, nil, {3}, nil, nil},
		Classes:  [][]int{{0}, {1, 2}, {3, 4}, {5}},
		Root:     0,
	}
}

func TestUnreachableClassDropped(t *testing.T) {
	p := diamond()
	// Add a class nothing points at, with two nodes.
	p.Costs = append(p.Costs, 5, 6)
	p.ClassOf = append(p.ClassOf, 4, 4)
	p.Children = append(p.Children, nil, nil)
	p.Classes = append(p.Classes, []int{6, 7})

	q, red, err := Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Forbidden[6] || !q.Forbidden[7] {
		t.Fatalf("unreachable nodes survived: %v", q.Forbidden)
	}
	if red.NodesDropped < 2 {
		t.Fatalf("reduction %+v did not count the unreachable nodes", red)
	}
	if p.Forbidden != nil {
		t.Fatal("input problem mutated")
	}
}

func TestCostDominationBeatsSubsetRule(t *testing.T) {
	// Class 1: node a (cost 10, leaf) vs node b (cost 2, child class 2
	// whose only node costs 3). b's children are not a subset of a's,
	// but 2 + 3 < 10, so cost domination drops a.
	p := &ilp.Problem{
		Costs:    []float64{1, 10, 2, 3},
		ClassOf:  []int{0, 1, 1, 2},
		Children: [][]int{{1}, nil, {2}, nil},
		Classes:  [][]int{{0}, {1, 2}, {3}},
		Root:     0,
	}
	q, red, err := Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Forbidden[1] {
		t.Fatal("cost-dominated node survived")
	}
	// Every class now has one candidate and all are required.
	if red.VarsFixed != 3 {
		t.Fatalf("VarsFixed = %d, want 3 (%+v)", red.VarsFixed, red)
	}
	sol, err := ilp.Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 6 {
		t.Fatalf("reduced model cost %v, want 6", sol.Cost)
	}
}

func TestCostDominationDisabledUnderCycleConstraints(t *testing.T) {
	p := &ilp.Problem{
		Costs:            []float64{1, 10, 2, 3},
		ClassOf:          []int{0, 1, 1, 2},
		Children:         [][]int{{1}, nil, {2}, nil},
		Classes:          [][]int{{0}, {1, 2}, {3}},
		Root:             0,
		CycleConstraints: true,
	}
	q, red, err := Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if q.Forbidden[1] {
		t.Fatal("cost domination must not add edges under cycle constraints")
	}
	// The possible-edge graph is acyclic, so the constraints are vacuous.
	if !red.CycleCleared || q.CycleConstraints {
		t.Fatalf("acyclic model kept its cycle constraints: %+v", red)
	}
}

func TestCycleConstraintsKeptWhenCyclePossible(t *testing.T) {
	p := &ilp.Problem{
		// Figure 3 shape: a2 and b2 can form a 2-cycle.
		Costs:            []float64{1, 10, 0, 10, 0},
		ClassOf:          []int{0, 1, 1, 2, 2},
		Children:         [][]int{{1, 2}, nil, {2}, nil, {1}},
		Classes:          [][]int{{0}, {1, 2}, {3, 4}},
		Root:             0,
		CycleConstraints: true,
	}
	q, red, err := Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !q.CycleConstraints || red.CycleCleared {
		t.Fatal("cycle constraints dropped although a cycle is possible")
	}
	// The leaf edges (root->A, root->B) still cross SCCs and are counted.
	if red.ConstraintsRemoved == 0 {
		t.Fatalf("no vacuous rows found: %+v", red)
	}
	sol, err := ilp.Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 11 {
		t.Fatalf("reduced cyclic model cost %v, want 11", sol.Cost)
	}
}

func TestEmptyChildClassPropagates(t *testing.T) {
	// Class 2's only node is forbidden, so class 1's node b (child 2)
	// dies too, fixing class 1 to node a.
	p := &ilp.Problem{
		Costs:     []float64{1, 10, 2, 3},
		ClassOf:   []int{0, 1, 1, 2},
		Children:  [][]int{{1}, nil, {2}, nil},
		Classes:   [][]int{{0}, {1, 2}, {3}},
		Root:      0,
		Forbidden: []bool{false, false, false, true},
	}
	q, red, err := Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Forbidden[2] {
		t.Fatal("node with an empty child class survived")
	}
	if red.Iterations < 2 {
		t.Fatalf("propagation needs a second round, got %+v", red)
	}
	sol, err := ilp.Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 11 {
		t.Fatalf("cost %v, want 11", sol.Cost)
	}
}

func TestReductionRatio(t *testing.T) {
	var r Reduction
	if r.Ratio() != 0 {
		t.Fatal("empty reduction ratio")
	}
	r = Reduction{NodesBefore: 8, NodesDropped: 2}
	if r.Ratio() != 0.25 {
		t.Fatalf("ratio %v", r.Ratio())
	}
}

func TestCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := Run(ctx, diamond()); err == nil {
		t.Fatal("canceled context accepted")
	}
}

// TestPresolvePreservesOptimum is the exactness guarantee: on random
// DAGs the reduced model must have the same optimal cost as the
// original, and never forbid every optimal solution.
func TestPresolvePreservesOptimum(t *testing.T) {
	f := func(seed []uint8) bool {
		p := randomDAG(seed)
		orig, err := ilp.Solve(p)
		if err != nil {
			return true // infeasible inputs are out of scope here
		}
		q, red, err := Run(context.Background(), p)
		if err != nil {
			return false
		}
		reduced, err := ilp.Solve(q)
		if err != nil {
			return false
		}
		if red.NodesAfter+red.NodesDropped != red.NodesBefore {
			return false
		}
		return math.Abs(orig.Cost-reduced.Cost) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// randomDAG mirrors the solver test generator: children always point
// at higher-numbered classes.
func randomDAG(seed []uint8) *ilp.Problem {
	get := func(i int) int {
		if len(seed) == 0 {
			return 1
		}
		return int(seed[i%len(seed)])
	}
	m := 4 + get(0)%3
	p := &ilp.Problem{Root: 0}
	idx := 0
	for c := 0; c < m; c++ {
		nNodes := 1 + get(c+1)%3
		var members []int
		for k := 0; k < nNodes; k++ {
			cost := float64(1 + get(idx+2)%20)
			var children []int
			if c+1 < m && get(idx+3)%3 > 0 {
				children = append(children, c+1+get(idx+4)%(m-c-1))
			}
			if c+2 < m && get(idx+5)%4 == 0 {
				children = append(children, c+2+get(idx+6)%(m-c-2))
			}
			p.Costs = append(p.Costs, cost)
			p.ClassOf = append(p.ClassOf, c)
			p.Children = append(p.Children, children)
			members = append(members, idx)
			idx++
		}
		p.Classes = append(p.Classes, members)
	}
	return p
}
