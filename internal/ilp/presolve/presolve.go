// Package presolve reduces extraction ILP models before any solve.
//
// Real MIP solvers spend a large fraction of their win in presolve —
// fixing variables the constraints already decide, deleting dominated
// columns, and discarding constraints that cannot bind. The extraction
// ILP has enough structure (one-node-per-required-class semantics, a
// root closure, monotone costs) that the same ideas apply with exact,
// purely combinatorial rules:
//
//   - unreachable elimination: a node in a class the root can never
//     require is fixed to zero;
//   - infeasibility propagation: a node with a child class that has no
//     surviving candidates can never satisfy its implication row;
//   - iterated domination: within a class, a node whose cost is no
//     lower and whose children are a superset of a sibling's is never
//     needed (the one-shot rule the solver had, run to fixpoint so each
//     deletion can enable the next);
//   - cost domination: without cycle constraints, sibling j beats i
//     outright when cost_j plus a tree-cost upper bound on j's extra
//     children is below cost_i — dependency-aware reasoning the
//     subset rule cannot see;
//   - forced fixing: a required class with one surviving node has its
//     variable fixed to one, which recursively requires its children;
//   - cycle-constraint vacuity: topological-order rows whose edge can
//     never lie on a cycle of the possible-edge graph (SCC analysis)
//     are dropped; when none survive the whole acyclicity side of the
//     model is removed.
//
// All reductions are expressed through the Forbidden mask of a cloned
// Problem, so node and class indexing — and therefore solution mapping,
// warm starts, and LP-file naming — are unchanged.
package presolve

import (
	"context"
	"math"

	"tensat/internal/ilp"
)

// Reduction reports what presolve removed, for traces and /metrics.
type Reduction struct {
	// Iterations is how many fixpoint rounds ran (at least 1).
	Iterations int `json:"iterations"`
	// VarsFixed counts variables decided outright: nodes of required
	// classes with a single surviving candidate (fixed to 1).
	VarsFixed int `json:"vars_fixed"`
	// NodesDropped counts node variables fixed to 0 (unreachable,
	// infeasible, or dominated).
	NodesDropped int `json:"nodes_dropped"`
	// ConstraintsRemoved counts dropped rows: the children-implication
	// rows of dropped nodes plus vacuous topological-order rows.
	ConstraintsRemoved int `json:"constraints_removed"`
	// CycleCleared is true when every acyclicity constraint proved
	// vacuous and the reduced model solves cycle-free.
	CycleCleared bool `json:"cycle_cleared,omitempty"`
	// NodesBefore/NodesAfter are the candidate-variable counts around
	// the pass (excluding anything the input already forbade).
	NodesBefore int `json:"nodes_before"`
	NodesAfter  int `json:"nodes_after"`
}

// Ratio is the fraction of candidate variables presolve eliminated.
func (r Reduction) Ratio() float64 {
	if r.NodesBefore == 0 {
		return 0
	}
	return float64(r.NodesDropped) / float64(r.NodesBefore)
}

// maxIterations caps the fixpoint defensively; each round must drop at
// least one node to continue, so the bound is never reached in practice.
const maxIterations = 64

// Run reduces p and returns a cloned, equivalent problem: any optimal
// solution of the reduction is optimal for p (over the root closure).
// The input is never mutated. Run is exact — it never cuts all optimal
// solutions — and respects ctx between fixpoint rounds.
func Run(ctx context.Context, p *ilp.Problem) (*ilp.Problem, Reduction, error) {
	var red Reduction
	if err := p.Validate(); err != nil {
		return nil, red, err
	}
	n := len(p.Costs)
	m := len(p.Classes)

	alive := make([]bool, n)
	for i := 0; i < n; i++ {
		alive[i] = (p.Forbidden == nil || !p.Forbidden[i]) && !isInf(p.Costs[i])
		if alive[i] {
			red.NodesBefore++
		}
	}
	aliveCount := func(class int) int {
		k := 0
		for _, i := range p.Classes[class] {
			if alive[i] {
				k++
			}
		}
		return k
	}

	kill := func(i int) {
		alive[i] = false
		red.NodesDropped++
		red.ConstraintsRemoved += len(p.Children[i])
	}

	reachable := make([]bool, m)
	upper := make([]float64, m)
	for round := 0; ; round++ {
		if err := ctx.Err(); err != nil {
			return nil, red, err
		}
		red.Iterations = round + 1
		changed := false

		// Reachability from the root through surviving nodes: a class no
		// surviving selection can require contributes no variables.
		for c := range reachable {
			reachable[c] = false
		}
		stack := []int{p.Root}
		reachable[p.Root] = true
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, i := range p.Classes[c] {
				if !alive[i] {
					continue
				}
				for _, h := range p.Children[i] {
					if !reachable[h] {
						reachable[h] = true
						stack = append(stack, h)
					}
				}
			}
		}
		for c := 0; c < m; c++ {
			if reachable[c] {
				continue
			}
			for _, i := range p.Classes[c] {
				if alive[i] {
					kill(i)
					changed = true
				}
			}
		}

		// Infeasibility propagation: a node needing an empty class can
		// never satisfy its implication constraints.
		for i := 0; i < n; i++ {
			if !alive[i] || !reachable[p.ClassOf[i]] {
				continue
			}
			for _, h := range p.Children[i] {
				if aliveCount(h) == 0 {
					kill(i)
					changed = true
					break
				}
			}
		}

		// Tree-cost upper bounds for the dependency-aware domination:
		// upper[c] bounds the cost of adding class c's closure to any
		// solution (fixpoint over surviving nodes).
		treeUpper(p, alive, upper)

		// Iterated domination inside each reachable class.
		for c := 0; c < m; c++ {
			if !reachable[c] || aliveCount(c) < 2 {
				continue
			}
			if dominate(p, alive, upper, c, kill) {
				changed = true
			}
		}

		if !changed || round+1 >= maxIterations {
			break
		}
	}

	// Forced fixing: walk the required closure — the root plus,
	// recursively, every child of a required class's only surviving
	// node. Each single-candidate class on that walk is a variable
	// fixed to one.
	required := make([]bool, m)
	stack := []int{p.Root}
	required[p.Root] = true
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		only := -1
		for _, i := range p.Classes[c] {
			if alive[i] {
				if only >= 0 {
					only = -1
					break
				}
				only = i
			}
		}
		if only < 0 {
			continue
		}
		red.VarsFixed++
		for _, h := range p.Children[only] {
			if !required[h] {
				required[h] = true
				stack = append(stack, h)
			}
		}
	}

	q := p.Clone()
	forbidden := make([]bool, n)
	for i := 0; i < n; i++ {
		forbidden[i] = !alive[i]
	}
	q.Forbidden = forbidden

	if p.CycleConstraints {
		removed, total := vacuousCycleRows(p, alive)
		red.ConstraintsRemoved += removed
		if removed == total {
			q.CycleConstraints = false
			red.CycleCleared = true
		}
	}

	for i := 0; i < n; i++ {
		if alive[i] {
			red.NodesAfter++
		}
	}
	return q, red, nil
}

// treeUpper computes, per class, the minimum tree cost over surviving
// nodes — an upper bound on the DAG cost of adding that class's
// closure to any partial solution. Infinite when the class has no
// finite acyclic derivation.
func treeUpper(p *ilp.Problem, alive []bool, upper []float64) {
	for c := range upper {
		upper[c] = inf
	}
	for changed := true; changed; {
		changed = false
		for i, cost := range p.Costs {
			if !alive[i] {
				continue
			}
			t := cost
			for _, h := range p.Children[i] {
				t += upper[h]
			}
			if c := p.ClassOf[i]; t < upper[c] {
				upper[c] = t
				changed = true
			}
		}
	}
}

// dominate applies both domination rules within class c and reports
// whether anything was dropped. Ties are broken by member position so
// equal nodes cannot eliminate each other.
func dominate(p *ilp.Problem, alive []bool, upper []float64, c int, kill func(int)) bool {
	members := p.Classes[c]
	dropped := false
	for ki, i := range members {
		if !alive[i] {
			continue
		}
		for kj, j := range members {
			if ki == kj || !alive[j] {
				continue
			}
			if dominates(p, upper, j, i, kj < ki) {
				kill(i)
				dropped = true
				break
			}
		}
	}
	return dropped
}

// dominates reports whether picking j instead of i never costs more:
// either j's children are a subset of i's at no higher cost (always
// safe, even with cycle constraints — a subset of edges cannot close a
// cycle the superset avoids), or, when cycle constraints are off, j's
// cost plus tree-cost upper bounds for its extra children undercuts i
// outright. jFirst breaks exact ties.
func dominates(p *ilp.Problem, upper []float64, j, i int, jFirst bool) bool {
	ci, cj := p.Costs[i], p.Costs[j]
	extra := 0.0
	subset := true
	for _, h := range p.Children[j] {
		found := false
		for _, h2 := range p.Children[i] {
			if h2 == h {
				found = true
				break
			}
		}
		if !found {
			subset = false
			extra += upper[h]
		}
	}
	if subset {
		if cj < ci {
			return true
		}
		return cj == ci && jFirst
	}
	if p.CycleConstraints {
		return false // extra edges could close a cycle i avoids
	}
	// Strict inequality: with equality both directions could hold and
	// eliminate each other.
	return cj+extra < ci
}

// vacuousCycleRows counts the topological-order rows of the surviving
// model and how many can never bind: a row for edge (node i, child h)
// binds only if the edge can lie on a cycle, i.e. g(i) and h are in
// the same strongly connected component of the possible-edge graph.
func vacuousCycleRows(p *ilp.Problem, alive []bool) (removed, total int) {
	m := len(p.Classes)
	adj := make([][]int, m)
	for i, hs := range p.Children {
		if !alive[i] {
			continue
		}
		adj[p.ClassOf[i]] = append(adj[p.ClassOf[i]], hs...)
	}
	comp := scc(m, adj)
	for i, hs := range p.Children {
		if !alive[i] {
			continue
		}
		for _, h := range hs {
			total++
			if comp[p.ClassOf[i]] != comp[h] {
				removed++
			}
		}
	}
	return removed, total
}

// scc labels each vertex with its strongly connected component using
// Tarjan's algorithm (iterative, so deep models cannot overflow the
// stack).
func scc(n int, adj [][]int) []int {
	comp := make([]int, n)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for v := range index {
		index[v] = -1
		comp[v] = -1
	}
	var stack []int
	next := 0
	comps := 0

	type frame struct{ v, ei int }
	var frames []frame
	for root := 0; root < n; root++ {
		if index[root] >= 0 {
			continue
		}
		frames = append(frames[:0], frame{root, 0})
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				if index[w] < 0 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if pv := frames[len(frames)-1].v; low[v] < low[pv] {
					low[pv] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = comps
					if w == v {
						break
					}
				}
				comps++
			}
		}
	}
	return comp
}

var inf = math.Inf(1)

func isInf(f float64) bool { return math.IsInf(f, 1) }
