// Package ilp solves the 0-1 integer linear program of TENSAT's
// extraction phase (§5.1). The paper uses SCIP behind Google OR-tools;
// neither exists in Go's standard-library ecosystem, so this package
// implements an exact branch-and-bound solver specialized to the
// extraction program's constraint shapes:
//
//	minimize    sum_i c_i x_i
//	subject to  x_i in {0,1}
//	            sum_{i in e_0} x_i = 1                    (root class)
//	            x_i <= sum_{j in e_m} x_j   for m in h_i  (children)
//	            x_i = 0                     for filtered i
//	            optional topological-order constraints
//	            t_{g(i)} - t_m - eps + A(1 - x_i) >= 0    (acyclicity)
//
// Branch-and-bound explores "which e-node is picked for each required
// e-class", with an admissible lower bound (each required-but-
// undecided class contributes at least its cheapest allowed node).
// With CycleConstraints enabled the solver additionally maintains the
// acyclicity of the chosen selection — via incremental DFS when
// TopoReal (the continuous t_m encoding) or explicit integer level
// labels when TopoInt — which is exactly what makes the constrained
// program much slower to solve, reproducing Table 5.
//
// Two solving modes share that machinery: SolveContext runs the
// classic sequential search, and SolveParallelContext (parallel.go)
// fans disjoint branch subtrees over a bounded worker pool with a
// shared atomic incumbent bound. Model reduction before any solve
// lives in the presolve subpackage, standard-format export in lpfile,
// and external-solver adapters in backend.
package ilp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// TopoMode selects how the acyclicity constraints are enforced,
// mirroring the paper's real-valued vs integer-valued t_m variables.
type TopoMode int

const (
	// TopoReal models the continuous topological-order variables:
	// feasibility of an assignment is decided by cycle detection.
	TopoReal TopoMode = iota
	// TopoInt models integer topological levels in [0, M-1], maintained
	// explicitly by longest-path relaxation.
	TopoInt
)

// String names the mode.
func (m TopoMode) String() string {
	if m == TopoInt {
		return "int"
	}
	return "real"
}

// Problem is an extraction ILP instance. Nodes are indexed 0..N-1 and
// classes 0..M-1.
type Problem struct {
	Costs     []float64 // c_i, one per node
	ClassOf   []int     // g(i): owning class of node i
	Children  [][]int   // h_i: children classes of node i
	Classes   [][]int   // e_m: members of class m
	Root      int       // root class index
	Forbidden []bool    // x_i = 0 (cycle filter list); nil means none

	// CycleConstraints includes the topological-order constraints; the
	// caller must set this when the e-graph may contain cycles.
	CycleConstraints bool
	TopoMode         TopoMode
	Timeout          time.Duration
	// StallLimit stops the search after this many node expansions
	// without an incumbent improvement and returns the incumbent
	// (Optimal=false, Stalled=true) — the practical analogue of a MIP
	// gap tolerance. Zero means no stall limit. Exhaustive search on
	// heavily merged e-graphs needs LP-strength bounds (what SCIP has
	// and this branch-and-bound does not); see DESIGN.md.
	StallLimit int64
	// WarmStarts provides initial selections (node per class, -1 for
	// unselected classes). Each valid one (complete and acyclic from
	// the root) is refined by the local-search improver; the best
	// becomes the starting incumbent, so the solution is never worse
	// than any warm start.
	WarmStarts [][]int
	// OnIncumbent, when non-nil, is called each time the incumbent
	// improves: once after warm-start seeding and again on every
	// improvement branch-and-bound finds. It receives the incumbent
	// cost and the expansions done so far, and must return quickly (it
	// runs on the search's hot path). Sequential solves call it from
	// the solving goroutine; the parallel solver serializes calls under
	// its incumbent lock, with strictly decreasing costs either way.
	OnIncumbent func(cost float64, explored int64)
}

// Clone returns a shallow-sharing copy of the problem: the slice
// headers are fresh (so Forbidden and the option fields can be
// replaced) but the per-node arrays are shared. Presolve uses it to
// return a reduced model without mutating the caller's.
func (p *Problem) Clone() *Problem {
	q := *p
	return &q
}

// Solution is the solver's answer.
type Solution struct {
	// NodeOf maps each selected class to its chosen node; classes not
	// needed by the root derivation are absent.
	NodeOf map[int]int
	Cost   float64
	// Optimal is true when the search space was exhausted; false on
	// timeout or stall, in which case the incumbent (if any) is returned.
	Optimal  bool
	TimedOut bool
	// Canceled is true when the caller's context ended the search; the
	// incumbent (if any) is still returned, like a timeout.
	Canceled bool
	// Stalled is true when StallLimit ended the search.
	Stalled bool
	// Explored counts branch-and-bound node expansions (summed over
	// workers for parallel solves).
	Explored int64
	Time     time.Duration
	// SeedCost is the greedy warm-start cost; ImproveCommits counts
	// hub moves the sharing-aware local search applied before
	// branch-and-bound (diagnostics).
	SeedCost       float64
	ImproveCommits int
	// Incumbents counts incumbent improvements (the warm-start seed
	// included); FirstIncumbent is how long the solve ran before the
	// first one landed.
	Incumbents     int
	FirstIncumbent time.Duration
	// Workers is how many goroutines searched (1 for sequential).
	Workers int
}

// ErrInfeasible is returned when no acyclic selection exists.
var ErrInfeasible = errors.New("ilp: infeasible extraction problem")

// ErrTimeout is returned when the deadline or stall limit passed
// before any feasible solution was found. Caller cancellation without
// an incumbent surfaces as the context's own error instead, so callers
// never have to reverse-map ErrTimeout onto a dead context.
var ErrTimeout = errors.New("ilp: timeout before first feasible solution")

// Validate checks index consistency.
//
//lint:ctxflow-exempt single bounded pass over in-memory index arrays; the only calls are error formatting
func (p *Problem) Validate() error {
	n, m := len(p.Costs), len(p.Classes)
	if len(p.ClassOf) != n || len(p.Children) != n {
		return fmt.Errorf("ilp: inconsistent node arrays")
	}
	if p.Root < 0 || p.Root >= m {
		return fmt.Errorf("ilp: root class %d out of range", p.Root)
	}
	if p.Forbidden != nil && len(p.Forbidden) != n {
		return fmt.Errorf("ilp: forbidden mask has %d entries for %d nodes", len(p.Forbidden), n)
	}
	for i, c := range p.ClassOf {
		if c < 0 || c >= m {
			return fmt.Errorf("ilp: node %d in bad class %d", i, c)
		}
	}
	for i, hs := range p.Children {
		for _, h := range hs {
			if h < 0 || h >= m {
				return fmt.Errorf("ilp: node %d has bad child class %d", i, h)
			}
		}
	}
	return nil
}

type solver struct {
	p           *Problem
	deadline    time.Time
	hasDeadline bool
	done        <-chan struct{} // caller cancellation; nil means none
	canceled    bool

	allowed  [][]int   // per class: allowed (unforbidden) nodes, cheap first
	minCost  []float64 // per class: cheapest allowed node cost
	greedy   []float64 // per class: tree-cost heuristic for branch ordering
	freePick []int     // per class: node with a zero-cost acyclic derivation, or -1

	chosen         []int // per class: chosen node or -1
	need           []int // per class: how many chosen nodes require it
	acc            float64
	best           float64
	bestPick       []int
	explored       int64
	lastImprove    int64
	timedOut       bool
	stalled        bool
	improveCommits int

	start          time.Time
	incumbents     int
	firstIncumbent time.Duration

	// shared, when non-nil, makes this solver one worker of a parallel
	// solve: incumbents are offered to (and the pruning bound refreshed
	// from) the shared state instead of the local best/bestPick pair.
	shared  *parallelShared
	unitIdx int

	// levels for TopoInt acyclicity maintenance
	level []int

	// sc holds the local search's epoch-stamped scratch buffers.
	sc *improveScratch
}

// recordIncumbent notes one incumbent improvement for the Solution's
// Incumbents / FirstIncumbent diagnostics.
func (s *solver) recordIncumbent() {
	s.incumbents++
	if s.incumbents == 1 {
		s.firstIncumbent = time.Since(s.start)
	}
}

// Solve runs branch-and-bound and returns the best selection.
func Solve(p *Problem) (*Solution, error) {
	return SolveContext(context.Background(), p)
}

// prepare validates the problem and builds a solver with every
// precomputed read-only table (allowed nodes, class minima, greedy
// ordering costs, free picks) plus empty search state. Shared by the
// sequential and parallel entry points.
func prepare(ctx context.Context, p *Problem, start time.Time) (*solver, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &solver{p: p, done: ctx.Done(), start: start}
	if p.Timeout > 0 {
		s.deadline = start.Add(p.Timeout)
		s.hasDeadline = true
	}
	m := len(p.Classes)
	s.allowed = make([][]int, m)
	s.minCost = make([]float64, m)
	for c, members := range p.Classes {
		for _, i := range members {
			if p.Forbidden != nil && p.Forbidden[i] {
				continue
			}
			// Infinite-cost nodes (ill-typed under the cost model) can
			// never appear in a finite solution; admitting them would
			// also poison the bound arithmetic (Inf - Inf = NaN).
			if math.IsInf(p.Costs[i], 1) {
				continue
			}
			s.allowed[c] = append(s.allowed[c], i)
		}
		sort.Slice(s.allowed[c], func(a, b int) bool {
			return p.Costs[s.allowed[c][a]] < p.Costs[s.allowed[c][b]]
		})
		s.minCost[c] = math.Inf(1)
		if len(s.allowed[c]) > 0 {
			s.minCost[c] = p.Costs[s.allowed[c][0]]
		}
	}
	s.pruneDominated()
	s.computeFree()
	s.computeGreedy()
	s.chosen = make([]int, m)
	for i := range s.chosen {
		s.chosen[i] = -1
	}
	s.need = make([]int, m)
	s.best = math.Inf(1)
	if p.CycleConstraints && p.TopoMode == TopoInt {
		s.level = make([]int, m)
	}
	return s, nil
}

// seed installs the best of the internal greedy and the caller warm
// starts (each refined by the sharing-aware local search) as the
// initial incumbent, and returns the best unrefined warm-start cost.
// It does NOT invoke OnIncumbent — the entry points do, after wiring
// their incumbent plumbing.
func (s *solver) seed() (seedCost float64) {
	p := s.p
	s.seedIncumbent()
	starts := [][]int{}
	if s.bestPick != nil {
		starts = append(starts, s.bestPick)
	}
	m := len(p.Classes)
	for _, ws := range p.WarmStarts {
		if len(ws) == m {
			starts = append(starts, append([]int(nil), ws...))
		}
	}
	seedCost = math.Inf(1)
	s.best, s.bestPick = math.Inf(1), nil
	for _, st := range starts {
		cost, ok := s.selectionCost(st)
		if !ok {
			continue
		}
		if cost < seedCost {
			seedCost = cost
		}
		imp, impCost := s.improveFrom(st)
		if impCost < s.best {
			s.best, s.bestPick = impCost, imp
		}
	}
	return seedCost
}

// SolveContext is Solve with cancellation: when ctx is done the search
// stops at the next check point and the incumbent (if any) is returned
// with Canceled set, exactly like a timeout; with no incumbent it
// returns ctx.Err() so callers see the cancellation directly.
func SolveContext(ctx context.Context, p *Problem) (*Solution, error) {
	start := time.Now()
	s, err := prepare(ctx, p, start)
	if err != nil {
		return nil, err
	}
	seedCost := s.seed()
	if s.bestPick != nil {
		s.recordIncumbent()
		if p.OnIncumbent != nil {
			p.OnIncumbent(s.best, 0)
		}
	}

	s.need[p.Root] = 1
	s.branch([]int{p.Root}, s.minCost[p.Root])

	sol := &Solution{
		Optimal:        !s.timedOut && !s.stalled,
		TimedOut:       s.timedOut,
		Canceled:       s.canceled,
		Stalled:        s.stalled,
		Explored:       s.explored,
		Time:           time.Since(start),
		SeedCost:       seedCost,
		ImproveCommits: s.improveCommits,
		Incumbents:     s.incumbents,
		FirstIncumbent: s.firstIncumbent,
		Workers:        1,
	}
	if s.bestPick == nil {
		switch {
		case s.canceled:
			return nil, ctx.Err()
		case s.timedOut || s.stalled:
			return nil, ErrTimeout
		default:
			return nil, ErrInfeasible
		}
	}
	sol.Cost = s.best
	sol.NodeOf = make(map[int]int)
	for c, n := range s.bestPick {
		if n >= 0 {
			sol.NodeOf[c] = n
		}
	}
	return sol, nil
}

// pruneDominated removes, within each class, any node that is
// dominated by a cheaper (or equal-cost) node whose children classes
// are a subset of its own: picking the dominated node can always be
// replaced by the dominating one without increasing cost or adding
// requirements. This preserves at least one optimal solution. Cycle
// constraints do not change that: the dominating node's edges are a
// subset, so it can never introduce a cycle the dominated one avoids.
func (s *solver) pruneDominated() {
	for c, members := range s.allowed {
		if len(members) < 2 {
			continue
		}
		childSet := make([]map[int]bool, len(members))
		for k, i := range members {
			set := make(map[int]bool, len(s.p.Children[i]))
			for _, h := range s.p.Children[i] {
				set[h] = true
			}
			childSet[k] = set
		}
		keep := members[:0]
		for k, i := range members {
			dominated := false
			for k2, j := range members {
				if k == k2 || s.p.Costs[j] > s.p.Costs[i] {
					continue
				}
				if s.p.Costs[j] == s.p.Costs[i] && k2 > k {
					continue // tie-break by position to avoid mutual elimination
				}
				subset := true
				for h := range childSet[k2] {
					if !childSet[k][h] {
						subset = false
						break
					}
				}
				if subset {
					dominated = true
					break
				}
			}
			if !dominated {
				keep = append(keep, i)
			}
		}
		s.allowed[c] = keep
	}
}

// seedIncumbent installs the greedy extraction as the initial
// incumbent, guaranteeing the ILP result is never worse than greedy
// even when the search stalls or times out, and sharpening pruning
// from the first branch.
func (s *solver) seedIncumbent() {
	pick := make([]int, len(s.p.Classes))
	for c := range pick {
		pick[c] = -1
		best := math.Inf(1)
		for _, i := range s.allowed[c] {
			t := s.p.Costs[i]
			for _, h := range s.p.Children[i] {
				t += s.greedy[h]
			}
			if t < best {
				best = t
				pick[c] = i
			}
		}
	}
	// Collect the root closure and its DAG cost, rejecting cycles.
	state := make(map[int]uint8)
	total := 0.0
	ok := true
	var visit func(c int)
	visit = func(c int) {
		if !ok || state[c] == 2 {
			return
		}
		if state[c] == 1 {
			ok = false // cyclic greedy selection: no warm start
			return
		}
		state[c] = 1
		i := pick[c]
		if i < 0 || math.IsInf(s.p.Costs[i], 1) {
			ok = false
			return
		}
		total += s.p.Costs[i]
		for _, h := range s.p.Children[i] {
			visit(h)
		}
		state[c] = 2
	}
	visit(s.p.Root)
	if !ok {
		return
	}
	s.best = total
	s.bestPick = make([]int, len(pick))
	for c := range pick {
		if state[c] == 2 {
			s.bestPick[c] = pick[c]
		} else {
			s.bestPick[c] = -1
		}
	}
}

// computeFree finds, per class, a node with an entirely zero-cost
// derivation (weight-foldable expressions, literals, views). Choosing
// it dominates every alternative — it adds zero cost and only
// zero-cost requirements — so such classes are never branched on.
// This collapses the exponential plateau of interchangeable foldable
// weight expressions that otherwise drowns the search. The fixpoint
// witness order guarantees the recorded derivation is well-founded
// (acyclic), so the rule is also safe under cycle constraints.
func (s *solver) computeFree() {
	m := len(s.p.Classes)
	s.freePick = make([]int, m)
	for c := range s.freePick {
		s.freePick[c] = -1
	}
	for changed := true; changed; {
		changed = false
		for c := 0; c < m; c++ {
			if s.freePick[c] >= 0 {
				continue
			}
			for _, i := range s.allowed[c] {
				if s.p.Costs[i] > boundAdjust {
					continue
				}
				ok := true
				for _, h := range s.p.Children[i] {
					if s.freePick[h] < 0 {
						ok = false
						break
					}
				}
				if ok {
					s.freePick[c] = i
					changed = true
					break
				}
			}
		}
	}
}

// computeGreedy runs the greedy tree-cost fixpoint used only to order
// branches (first descent then lands on the greedy extraction).
func (s *solver) computeGreedy() {
	m := len(s.p.Classes)
	s.greedy = make([]float64, m)
	for c := range s.greedy {
		s.greedy[c] = math.Inf(1)
	}
	for changed := true; changed; {
		changed = false
		for c := 0; c < m; c++ {
			for _, i := range s.allowed[c] {
				t := s.p.Costs[i]
				for _, h := range s.p.Children[i] {
					t += s.greedy[h]
				}
				if t < s.greedy[c] {
					s.greedy[c] = t
					changed = true
				}
			}
		}
	}
}

// hasIncumbent reports whether any feasible solution is known — the
// local one for sequential solves, the shared one for parallel workers.
func (s *solver) hasIncumbent() bool {
	if s.shared != nil {
		return !math.IsInf(s.shared.best(), 1)
	}
	return s.bestPick != nil
}

// pickClass selects the next undecided class from pending following
// the branching policy: a class with a free pick or a forced choice is
// returned with its node (assign it directly, no branching); otherwise
// the undecided class with the fewest candidates (fail-first) is
// returned with node -1. idx is -1 when every pending class is
// decided (feasible leaf).
func (s *solver) pickClass(pending []int) (idx, node int) {
	idx, node = -1, -1
	fewest := int(^uint(0) >> 1)
	for i := len(pending) - 1; i >= 0; i-- {
		c := pending[i]
		if s.chosen[c] >= 0 {
			continue
		}
		if f := s.freePick[c]; f >= 0 {
			return i, f
		}
		if !s.p.CycleConstraints {
			if f := s.forcedChoice(c); f >= 0 {
				return i, f
			}
		}
		if n := len(s.allowed[c]); n < fewest {
			fewest, idx = n, i
		}
	}
	return idx, -1
}

// branch decides the next undecided required class. pending holds the
// required-but-undecided classes; bound is acc + sum of their minCosts.
func (s *solver) branch(pending []int, bound float64) {
	s.explored++
	if s.timedOut || s.stalled {
		return
	}
	if s.explored%512 == 0 {
		if s.hasDeadline && time.Now().After(s.deadline) {
			s.timedOut = true
			return
		}
		select {
		case <-s.done:
			s.timedOut = true
			s.canceled = true
			return
		default:
		}
		// Parallel workers refresh the pruning bound from the shared
		// incumbent at the same cadence as the clock checks, so a
		// sibling's improvement tightens this subtree within 512
		// expansions without an atomic load on every branch.
		if s.shared != nil {
			if b := s.shared.best(); b < s.best {
				s.best = b
			}
		}
	}
	// The stall limit applies even before a first incumbent exists
	// (with a grace factor), so a search that cannot find any feasible
	// solution still terminates.
	if s.p.StallLimit > 0 && s.explored-s.lastImprove > s.p.StallLimit {
		if s.hasIncumbent() || s.explored-s.lastImprove > 8*s.p.StallLimit {
			s.stalled = true
			return
		}
	}
	if s.acc+bound-boundAdjust >= s.best {
		return
	}
	// Select an undecided required class. A class with a *forced
	// choice* — a node at the class minimum whose children are all
	// already required or decided (so picking it adds no cost slack
	// and no new requirements, dominating every alternative) — is
	// assigned immediately without branching. This collapses the
	// zero-cost plateaus that split0/split1 alternatives create.
	// Otherwise branch on the class with the fewest candidates
	// (fail-first). Forced choices are disabled under cycle
	// constraints, where an alternative might be the only acyclic one.
	idx, forced := s.pickClass(pending)
	if idx < 0 {
		// All required classes decided: feasible solution.
		s.foundSolution()
		return
	}
	c := pending[idx]
	rest := removeAt(pending, idx)
	if forced >= 0 {
		s.assign(c, forced, rest, bound-s.minCost[c])
		return
	}

	// Order candidates by the greedy heuristic.
	cands := append([]int(nil), s.allowed[c]...)
	sort.Slice(cands, func(a, b int) bool {
		return s.nodeHeuristic(cands[a]) < s.nodeHeuristic(cands[b])
	})

	for _, i := range cands {
		s.assign(c, i, rest, bound-s.minCost[c])
		if s.timedOut {
			return
		}
	}
}

// foundSolution records the current complete assignment as an
// incumbent if it improves (or, under the parallel tie-break, matches)
// the best known one.
func (s *solver) foundSolution() {
	if s.shared != nil {
		if s.acc < s.best {
			if s.shared.offer(s.acc, s.chosen, s.unitIdx) {
				s.lastImprove = s.explored
			}
			if b := s.shared.best(); b < s.best {
				s.best = b
			}
		}
		return
	}
	if s.acc < s.best {
		s.best = s.acc
		s.bestPick = append([]int(nil), s.chosen...)
		s.lastImprove = s.explored
		s.recordIncumbent()
		if s.p.OnIncumbent != nil {
			s.p.OnIncumbent(s.best, s.explored)
		}
	}
}

// removeAt returns pending without index i (fresh slice).
func removeAt(pending []int, i int) []int {
	rest := make([]int, 0, len(pending)-1)
	rest = append(rest, pending[:i]...)
	return append(rest, pending[i+1:]...)
}

// forcedChoice returns a node of class c that dominates all
// alternatives given the current partial assignment: its cost equals
// the class minimum and every child class is already required (will be
// paid regardless) or decided. Returns -1 if no such node exists.
func (s *solver) forcedChoice(c int) int {
	for _, i := range s.allowed[c] {
		if s.p.Costs[i] > s.minCost[c]+boundAdjust {
			continue
		}
		ok := true
		for _, h := range s.p.Children[i] {
			if s.chosen[h] < 0 && s.need[h] == 0 {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	return -1
}

// nodeHeuristic estimates the tree cost of picking node i.
func (s *solver) nodeHeuristic(i int) float64 {
	t := s.p.Costs[i]
	for _, h := range s.p.Children[i] {
		if s.chosen[h] < 0 {
			t += s.greedy[h]
		}
	}
	return t
}

// step is one branch decision: node chosen for class. A sequence of
// steps from the root is a replayable partial assignment — the unit of
// work the parallel solver distributes.
type step struct{ class, node int }

// applyStep mutates the search state for one decision — chosen, acc,
// child requirement counts — exactly as assign does, and returns the
// extended pending list and bound. The caller has already removed
// st.class from pending and subtracted its minCost from bound.
func (s *solver) applyStep(st step, pending []int, bound float64) ([]int, float64) {
	s.chosen[st.class] = st.node
	s.acc += s.p.Costs[st.node]
	for _, h := range s.p.Children[st.node] {
		s.need[h]++
		if s.need[h] == 1 && s.chosen[h] < 0 {
			pending = append(pending, h)
			bound += s.minCost[h]
		}
	}
	return pending, bound
}

// undoStep reverses applyStep (pending/bound are the caller's to drop).
func (s *solver) undoStep(st step) {
	for _, h := range s.p.Children[st.node] {
		s.need[h]--
	}
	s.acc -= s.p.Costs[st.node]
	s.chosen[st.class] = -1
}

// assign tries x_i = 1 for class c and recurses.
func (s *solver) assign(c, i int, pending []int, bound float64) {
	if s.p.CycleConstraints && s.createsCycle(c, i) {
		return
	}
	st := step{c, i}
	next, newBound := s.applyStep(st, pending, bound)
	s.branch(next, newBound)
	s.undoStep(st)
}

// boundAdjust guards against floating-point equality ties pruning the
// incumbent itself.
const boundAdjust = 1e-9

// createsCycle checks whether choosing node i for class c closes a
// cycle among currently chosen classes. TopoReal uses DFS reachability
// (the continuous t_m constraints are satisfiable iff the chosen
// subgraph is acyclic); TopoInt maintains integer levels by longest-
// path relaxation with the same feasibility condition but a different
// (slower on deep graphs) propagation style.
func (s *solver) createsCycle(c, i int) bool {
	switch s.p.TopoMode {
	case TopoInt:
		return s.createsCycleInt(c, i)
	default:
		return s.createsCycleReal(c, i)
	}
}

func (s *solver) createsCycleReal(c, i int) bool {
	// Can we reach c from any child of i through chosen edges?
	target := c
	seen := make(map[int]bool)
	var dfs func(cls int) bool
	dfs = func(cls int) bool {
		if cls == target {
			return true
		}
		if seen[cls] {
			return false
		}
		seen[cls] = true
		n := s.chosen[cls]
		if n < 0 {
			return false
		}
		for _, h := range s.p.Children[n] {
			if dfs(h) {
				return true
			}
		}
		return false
	}
	for _, h := range s.p.Children[i] {
		if dfs(h) {
			return true
		}
	}
	return false
}

func (s *solver) createsCycleInt(c, i int) bool {
	// Integer levels: require level[c] >= level[h] + 1 for every chosen
	// edge c -> h... levels grow downward; relax longest paths from c.
	// A cycle exists iff relaxation returns to c or exceeds M.
	m := len(s.p.Classes)
	// Temporary assignment for propagation.
	prev := s.chosen[c]
	s.chosen[c] = i
	defer func() { s.chosen[c] = prev }()

	depth := make(map[int]int)
	queue := []int{c}
	depth[c] = 0
	for len(queue) > 0 {
		cls := queue[0]
		queue = queue[1:]
		if depth[cls] >= m {
			return true // longest path longer than class count: cycle
		}
		n := s.chosen[cls]
		if n < 0 {
			continue
		}
		for _, h := range s.p.Children[n] {
			if h == c {
				return true
			}
			if d, ok := depth[h]; !ok || d < depth[cls]+1 {
				depth[h] = depth[cls] + 1
				queue = append(queue, h)
			}
		}
	}
	return false
}
