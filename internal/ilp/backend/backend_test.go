package backend

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"tensat/internal/ilp"
)

func diamond() *ilp.Problem {
	return &ilp.Problem{
		Costs:    []float64{1, 10, 70, 10, 70, 100},
		ClassOf:  []int{0, 1, 1, 2, 2, 3},
		Children: [][]int{{1, 2}, {3}, nil, {3}, nil, nil},
		Classes:  [][]int{{0}, {1, 2}, {3, 4}, {5}},
		Root:     0,
	}
}

func cyclic() *ilp.Problem {
	return &ilp.Problem{
		Costs:            []float64{1, 10, 0, 10, 0},
		ClassOf:          []int{0, 1, 1, 2, 2},
		Children:         [][]int{{1, 2}, nil, {2}, nil, {1}},
		Classes:          [][]int{{0}, {1, 2}, {3, 4}},
		Root:             0,
		CycleConstraints: true,
	}
}

// modelZoo is the fixture set every backend must agree on: the sharing
// diamond (DAG cost vs tree cost), the Figure 3 cyclic model under
// both topological encodings, and a deeper chain.
func modelZoo() map[string]*ilp.Problem {
	chain := &ilp.Problem{Root: 0}
	for c := 0; c < 10; c++ {
		a := len(chain.Costs)
		chain.Costs = append(chain.Costs, 1, 4)
		chain.ClassOf = append(chain.ClassOf, c, c)
		if c+1 < 10 {
			chain.Children = append(chain.Children, []int{c + 1}, nil)
		} else {
			chain.Children = append(chain.Children, nil, nil)
		}
		chain.Classes = append(chain.Classes, []int{a, a + 1})
	}
	topoInt := cyclic()
	topoInt.TopoMode = ilp.TopoInt
	return map[string]*ilp.Problem{
		"diamond":     diamond(),
		"cyclic-real": cyclic(),
		"cyclic-int":  topoInt,
		"chain":       chain,
	}
}

func TestSelect(t *testing.T) {
	for _, name := range append(Names(), "") {
		s, err := Select(name, 0)
		if err != nil {
			t.Fatalf("Select(%q): %v", name, err)
		}
		if name != "" && s.Name() != name {
			t.Fatalf("Select(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := Select("scip", 0); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown solver accepted: %v", err)
	}
	if Valid("scip") || !Valid("") || !Valid("cbc") || !Valid("builtin-seq") {
		t.Fatal("Valid misclassifies names")
	}
}

func TestBuiltinSolvesZoo(t *testing.T) {
	// chain: the cheapest derivation takes the class-0 leaf (cost 4)
	// over walking the whole 10-link chain (cost 10).
	want := map[string]float64{"diamond": 121, "cyclic-real": 11, "cyclic-int": 11, "chain": 4}
	for name, p := range modelZoo() {
		seq, err := (Builtin{Sequential: true}).Solve(context.Background(), p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		par, err := (Builtin{Workers: 4}).Solve(context.Background(), p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(seq.Cost-par.Cost) > 1e-9 {
			t.Fatalf("%s: sequential %v != parallel %v", name, seq.Cost, par.Cost)
		}
		if w, ok := want[name]; ok && seq.Cost != w {
			t.Fatalf("%s: cost %v, want %v", name, seq.Cost, w)
		}
	}
}

func TestExternalUnavailable(t *testing.T) {
	e := External{Binary: "definitely-not-a-solver-binary"}
	if e.Available() {
		t.Fatal("phantom binary reported available")
	}
	_, err := e.Solve(context.Background(), diamond())
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
}

// TestExternalFakeCBC exercises the whole subprocess pipeline — MPS
// write, command line, solution parse, validation, closure mapping —
// against a shell script that plays a CBC whose answer is the known
// diamond optimum.
func TestExternalFakeCBC(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("shell script fake")
	}
	dir := t.TempDir()
	script := `#!/bin/sh
# args: model.mps -seconds N solve -solution <out>
out=""
prev=""
for a in "$@"; do
  if [ "$prev" = "-solution" ]; then out="$a"; fi
  prev="$a"
done
[ -n "$out" ] || exit 2
grep -q "^NAME" "$1" || exit 3
cat > "$out" <<'EOF'
Optimal - objective value 121.00000000
      0 X_C0_N0                1                       1
      1 X_C1_N1                1                      10
      3 X_C2_N3                1                      10
      5 X_C3_N5                1                      100
EOF
`
	if err := os.WriteFile(filepath.Join(dir, "cbc"), []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	t.Setenv("PATH", dir+string(os.PathListSeparator)+os.Getenv("PATH"))

	e := External{Binary: "cbc"}
	if !e.Available() {
		t.Fatal("fake cbc not found")
	}
	sol, err := e.Solve(context.Background(), diamond())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 121 || !sol.Optimal {
		t.Fatalf("solution %+v", sol)
	}
	want := map[int]int{0: 0, 1: 1, 2: 3, 3: 5}
	for c, n := range want {
		if sol.NodeOf[c] != n {
			t.Fatalf("NodeOf = %v, want %v", sol.NodeOf, want)
		}
	}
}

// TestExternalDifferentialZoo proves every backend on this machine
// agrees with the builtin solver's cost on the model zoo. CI installs
// coinor-cbc; elsewhere the external legs skip.
func TestExternalDifferentialZoo(t *testing.T) {
	for _, binary := range []string{"cbc", "highs"} {
		e := External{Binary: binary}
		t.Run(binary, func(t *testing.T) {
			if !e.Available() {
				t.Skipf("%s not on PATH", binary)
			}
			for name, p := range modelZoo() {
				want, err := (Builtin{Sequential: true}).Solve(context.Background(), p)
				if err != nil {
					t.Fatalf("%s: builtin: %v", name, err)
				}
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
				got, err := e.Solve(ctx, p)
				cancel()
				if err != nil {
					t.Fatalf("%s: %s: %v", name, binary, err)
				}
				if math.Abs(want.Cost-got.Cost) > 1e-6 {
					t.Fatalf("%s: %s cost %v != builtin %v", name, binary, got.Cost, want.Cost)
				}
			}
		})
	}
}

// TestExternalRespectsContext: a canceled context aborts the
// subprocess solve with the context error.
func TestExternalRespectsContext(t *testing.T) {
	if _, err := os.Stat("/bin/sh"); err != nil {
		t.Skip("no shell")
	}
	dir := t.TempDir()
	script := "#!/bin/sh\nsleep 60\n"
	if err := os.WriteFile(filepath.Join(dir, "cbc"), []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	t.Setenv("PATH", dir+string(os.PathListSeparator)+os.Getenv("PATH"))
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	startAt := time.Now()
	_, err := External{Binary: "cbc"}.Solve(ctx, diamond())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(startAt) > 10*time.Second {
		t.Fatal("subprocess outlived its context")
	}
}

func TestTimeoutSeconds(t *testing.T) {
	p := diamond()
	if s := timeoutSeconds(context.Background(), p); s != 3600 {
		t.Fatalf("unbounded budget %v", s)
	}
	p.Timeout = 90 * time.Second
	if s := timeoutSeconds(context.Background(), p); s != 90 {
		t.Fatalf("problem timeout %v", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if s := timeoutSeconds(ctx, p); s > 10.1 || s < 5 {
		t.Fatalf("context deadline budget %v", s)
	}
	p.Timeout = time.Millisecond
	if s := timeoutSeconds(context.Background(), p); s != 1 {
		t.Fatalf("sub-second budget %v, want 1", s)
	}
}
