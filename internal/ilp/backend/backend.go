// Package backend makes the extraction ILP solver pluggable. The
// paper runs SCIP through OR-tools; this repo's builtin solver is a
// specialized branch-and-bound. Both worlds are reachable through one
// interface: the builtin (sequential or parallel) engine, and an
// external-subprocess adapter that shells out to any MPS-speaking MIP
// solver on PATH — CBC and HiGHS are wired up — writing the model with
// lpfile, parsing the solution file back, and validating the selection
// against the model before trusting it. External solvers are entirely
// optional: nothing links against them (zero new Go dependencies), and
// when the binary is absent the adapter reports ErrUnavailable so
// callers can fall back or fail loudly, their choice.
package backend

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"time"

	"tensat/internal/ilp"
	"tensat/internal/ilp/lpfile"
)

// Solver solves extraction ILP problems. Implementations must honor
// ctx cancellation and the problem's Timeout, and must return
// solutions whose NodeOf covers exactly the root closure.
type Solver interface {
	// Name is the stable identifier used in flags, request options,
	// cache keys, and metric labels.
	Name() string
	// Available reports whether this backend can run here (external
	// binaries present, etc.). Solving through an unavailable backend
	// returns ErrUnavailable.
	Available() bool
	// Solve runs the backend. The anytime contract matches the builtin
	// solver: on timeout the best incumbent comes back with
	// Optimal=false rather than an error, when one exists.
	Solve(ctx context.Context, p *ilp.Problem) (*ilp.Solution, error)
}

// ErrUnavailable reports a backend that cannot run in this environment
// (external solver binary not on PATH).
var ErrUnavailable = errors.New("backend: solver unavailable")

// ErrUnknown reports a solver name Select does not recognize.
var ErrUnknown = errors.New("backend: unknown solver name")

// Builtin runs the in-process branch-and-bound.
type Builtin struct {
	// Sequential forces the single-threaded search; otherwise the
	// parallel solver runs with Workers goroutines (0 = default).
	Sequential bool
	Workers    int
}

// Name implements Solver.
func (b Builtin) Name() string {
	if b.Sequential {
		return "builtin-seq"
	}
	return "builtin"
}

// Available implements Solver; the builtin always runs.
func (b Builtin) Available() bool { return true }

// Solve implements Solver.
func (b Builtin) Solve(ctx context.Context, p *ilp.Problem) (*ilp.Solution, error) {
	if b.Sequential {
		return ilp.SolveContext(ctx, p)
	}
	return ilp.SolveParallelContext(ctx, p, b.Workers)
}

// External shells out to an MPS-speaking MIP solver.
type External struct {
	// Binary is the executable looked up on PATH: "cbc" or "highs".
	Binary string
}

// Name implements Solver.
func (e External) Name() string { return e.Binary }

// Available implements Solver.
func (e External) Available() bool {
	_, err := exec.LookPath(e.Binary)
	return err == nil
}

// timeoutSeconds derives the subprocess time budget from the problem
// timeout and the context deadline, whichever binds first.
func timeoutSeconds(ctx context.Context, p *ilp.Problem) float64 {
	budget := time.Hour
	if p.Timeout > 0 && p.Timeout < budget {
		budget = p.Timeout
	}
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < budget {
			budget = rem
		}
	}
	s := budget.Seconds()
	if s < 1 {
		s = 1 // sub-second budgets round up: the subprocess needs startup time
	}
	return s
}

// Solve implements Solver: write MPS to a scratch directory, run the
// solver with a time budget, parse the solution file, validate the
// selection against the model, and map it back onto node indices.
func (e External) Solve(ctx context.Context, p *ilp.Problem) (*ilp.Solution, error) {
	start := time.Now()
	path, err := exec.LookPath(e.Binary)
	if err != nil {
		return nil, fmt.Errorf("%w: %q not on PATH", ErrUnavailable, e.Binary)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "tensat-ilp-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	mpsPath := filepath.Join(dir, "model.mps")
	solPath := filepath.Join(dir, "model.sol")
	mf, err := os.Create(mpsPath)
	if err != nil {
		return nil, err
	}
	if err := lpfile.WriteMPS(mf, p); err != nil {
		mf.Close()
		return nil, err
	}
	if err := mf.Close(); err != nil {
		return nil, err
	}

	secs := strconv.FormatFloat(timeoutSeconds(ctx, p), 'f', 0, 64)
	var args []string
	switch e.Binary {
	case "cbc":
		args = []string{mpsPath, "-seconds", secs, "solve", "-solution", solPath}
	case "highs":
		args = []string{"--time_limit", secs, "--solution_file", solPath, mpsPath}
	default:
		// Assume a cbc-compatible command line for unknown binaries.
		args = []string{mpsPath, "-seconds", secs, "solve", "-solution", solPath}
	}
	cmd := exec.CommandContext(ctx, path, args...)
	// Without a WaitDelay, a killed solver whose grandchildren inherit
	// the output pipe would block CombinedOutput past cancellation.
	cmd.WaitDelay = 5 * time.Second
	out, runErr := cmd.CombinedOutput()
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}

	sf, err := os.Open(solPath)
	if err != nil {
		if runErr != nil {
			return nil, fmt.Errorf("backend: %s failed: %v\n%s", e.Binary, runErr, truncate(out))
		}
		return nil, fmt.Errorf("backend: %s wrote no solution file: %v", e.Binary, err)
	}
	defer sf.Close()
	sel, err := lpfile.ParseSolution(sf)
	if err != nil {
		return nil, fmt.Errorf("backend: parsing %s solution: %w", e.Binary, err)
	}
	switch sel.Status {
	case "infeasible":
		return nil, ilp.ErrInfeasible
	case "optimal", "stopped":
	default:
		if len(sel.NodeOf) == 0 {
			return nil, fmt.Errorf("backend: %s returned status %q with no selection\n%s",
				e.Binary, sel.Status, truncate(out))
		}
	}
	cost, err := lpfile.SelectionCost(p, sel.NodeOf)
	if err != nil {
		return nil, fmt.Errorf("backend: %s solution rejected: %w", e.Binary, err)
	}
	return &ilp.Solution{
		NodeOf:     closure(p, sel.NodeOf),
		Cost:       cost,
		Optimal:    sel.Status == "optimal",
		TimedOut:   sel.Status == "stopped",
		Time:       time.Since(start),
		Incumbents: 1,
		Workers:    1,
	}, nil
}

// closure restricts a selection to the classes the root derivation
// actually uses, matching the builtin solver's NodeOf contract (MIP
// solvers may set don't-care variables in unreferenced classes).
func closure(p *ilp.Problem, nodeOf map[int]int) map[int]int {
	out := make(map[int]int)
	var visit func(c int)
	visit = func(c int) {
		if _, done := out[c]; done {
			return
		}
		i, ok := nodeOf[c]
		if !ok {
			return
		}
		out[c] = i
		for _, h := range p.Children[i] {
			visit(h)
		}
	}
	visit(p.Root)
	return out
}

func truncate(out []byte) []byte {
	const max = 2048
	if len(out) > max {
		return out[len(out)-max:]
	}
	return out
}

// Names lists the selectable solver names, for flag help and request
// validation ("" selects the default builtin).
func Names() []string {
	return []string{"builtin", "builtin-seq", "cbc", "highs"}
}

// Valid reports whether name selects a known backend ("" included).
func Valid(name string) bool {
	if name == "" {
		return true
	}
	for _, n := range Names() {
		if n == name {
			return true
		}
	}
	return false
}

// Select resolves a solver name to a backend. The empty name means the
// default: the parallel builtin solver. workers applies only to the
// builtin backends.
func Select(name string, workers int) (Solver, error) {
	switch name {
	case "", "builtin":
		return Builtin{Workers: workers}, nil
	case "builtin-seq":
		return Builtin{Sequential: true}, nil
	case "cbc", "highs":
		return External{Binary: name}, nil
	default:
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknown, name, Names())
	}
}
