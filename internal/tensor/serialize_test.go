package tensor

import (
	"strings"
	"testing"
)

func roundTrip(t *testing.T, g *Graph) *Graph {
	t.Helper()
	data, err := g.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := UnmarshalGraph(data)
	if err != nil {
		t.Fatalf("unmarshal: %v\ninput:\n%s", err, data)
	}
	return g2
}

func TestSerializeRoundTripSimple(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 4, 8)
	w := b.Weight("w", 8, 8)
	g := b.MustFinish(b.Relu(b.Matmul(ActNone, x, w)))
	g2 := roundTrip(t, g)
	if g.Hash() != g2.Hash() {
		t.Fatal("round trip changed the graph")
	}
}

func TestSerializeRoundTripSharing(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 4, 8)
	w := b.Weight("w", 8, 8)
	h := b.Matmul(tensorActNone(), x, w)
	g := b.MustFinish(b.Ewadd(h, h), b.Relu(h))
	data, err := g.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	// The shared matmul must be bound exactly once.
	if got := strings.Count(string(data), "(let "); got != 1 {
		t.Fatalf("expected 1 let binding, got %d:\n%s", got, data)
	}
	g2 := roundTrip(t, g)
	if g.Hash() != g2.Hash() {
		t.Fatal("round trip changed the graph")
	}
	if g2.NodeCount() != g.NodeCount() {
		t.Fatalf("sharing lost: %d nodes -> %d", g.NodeCount(), g2.NodeCount())
	}
}

func tensorActNone() int64 { return ActNone }

func TestSerializeRoundTripAllOps(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 1, 8, 8, 8)
	w := b.Weight("w", 8, 8, 3, 3)
	k1 := b.Weight("k1", 8, 8, 1, 1)
	conv := b.Conv(1, 1, PadSame, ActRelu, x, w)
	en := b.Conv(1, 1, PadSame, ActNone, x, b.Enlarge(k1, w))
	cat := b.Concat(1, conv, en)
	s0, s1 := b.Split(1, cat)
	pool := b.PoolMax(s0, 2, 2, 2, 2, PadValid, ActNone)
	g := b.MustFinish(pool, b.Tanh(s1), b.Sigmoid(b.Reshape(s1, 8, 64)))
	g2 := roundTrip(t, g)
	if g.Hash() != g2.Hash() {
		t.Fatal("round trip changed the graph")
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSerializeModelsRoundTrip(t *testing.T) {
	// The full transpose/merge path plus multi-output graphs.
	b := NewBuilder()
	x := b.Input("x", 1, 8, 6, 6)
	w := b.Weight("w", 8, 2, 3, 3)
	g := b.MustFinish(
		b.Conv(1, 1, PadSame, ActNone, x, b.Merge(w, 2)),
		b.Transpose(b.Reshape(x, 8, 36), 1, 0))
	g2 := roundTrip(t, g)
	if g.Hash() != g2.Hash() {
		t.Fatal("round trip changed the graph")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	for _, src := range []string{
		"",                                 // no outputs
		"(output (nosuchop ?x))",           // unknown op
		"(let t0)",                         // malformed let
		"(frobnicate 1 2)",                 // unknown form
		`(output (ewadd (input "x@2 2")))`, // arity
		`(output (ewadd (input "x@2 2") (input "y@3 3")))`, // shape error
	} {
		if _, err := UnmarshalGraph([]byte(src)); err == nil {
			t.Errorf("UnmarshalGraph(%q) succeeded, want error", src)
		}
	}
}

func TestRawRejectsLiterals(t *testing.T) {
	b := NewBuilder()
	b.Raw(OpInput)
	if b.Err() == nil {
		t.Fatal("Raw accepted a literal op")
	}
}

func TestDotOutput(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 4, 4)
	g := b.MustFinish(b.Relu(x))
	dot := g.Dot()
	for _, want := range []string{"digraph", "relu", "input", "->"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("dot output missing %q:\n%s", want, dot)
		}
	}
}
