package tensor

import (
	"strings"
	"testing"
)

func mustInfer(t *testing.T, op Op, ival int64, sval string, args ...*Meta) *Meta {
	t.Helper()
	m, err := Infer(op, ival, sval, args)
	if err != nil {
		t.Fatalf("Infer(%v): %v", op, err)
	}
	return m
}

func wantErr(t *testing.T, op Op, ival int64, sval string, args ...*Meta) {
	t.Helper()
	if m, err := Infer(op, ival, sval, args); err == nil {
		t.Fatalf("Infer(%v) = %v, want error", op, m)
	}
}

func TestInferLiterals(t *testing.T) {
	m := mustInfer(t, OpInt, 7, "")
	if m.Kind != KindInt || m.IVal != 7 {
		t.Fatalf("int literal meta = %v", m)
	}
	m = mustInfer(t, OpStr, 0, "0 2 1 3")
	if m.Kind != KindStr || m.SVal != "0 2 1 3" {
		t.Fatalf("str literal meta = %v", m)
	}
	m = mustInfer(t, OpInput, 0, "x@8 16")
	if !m.Shape.Equal(Shape{8, 16}) || m.Foldable {
		t.Fatalf("input meta = %v", m)
	}
	m = mustInfer(t, OpWeight, 0, "w@16 4")
	if !m.Foldable {
		t.Fatalf("weight not foldable: %v", m)
	}
	wantErr(t, OpInput, 0, "noshape")
	wantErr(t, OpInput, 0, "x@0 3")
}

func TestInferEwaddEwmul(t *testing.T) {
	a := TensorMeta(Shape{4, 8})
	b := TensorMeta(Shape{4, 8})
	m := mustInfer(t, OpEwadd, 0, "", a, b)
	if !m.Shape.Equal(Shape{4, 8}) {
		t.Fatalf("ewadd shape = %v", m.Shape)
	}
	wantErr(t, OpEwadd, 0, "", a, TensorMeta(Shape{4, 9}))
	wantErr(t, OpEwmul, 0, "", a, IntMeta(1))
	// Foldability requires both operands foldable.
	w1, w2 := TensorMeta(Shape{4, 8}), TensorMeta(Shape{4, 8})
	w1.Foldable, w2.Foldable = true, true
	if m := mustInfer(t, OpEwmul, 0, "", w1, w2); !m.Foldable {
		t.Fatal("ewmul of weights should be foldable")
	}
	if m := mustInfer(t, OpEwmul, 0, "", w1, b); m.Foldable {
		t.Fatal("ewmul with non-weight should not be foldable")
	}
}

func TestInferMatmul(t *testing.T) {
	a := TensorMeta(Shape{4, 8})
	b := TensorMeta(Shape{8, 16})
	m := mustInfer(t, OpMatmul, 0, "", IntMeta(ActNone), a, b)
	if !m.Shape.Equal(Shape{4, 16}) {
		t.Fatalf("matmul shape = %v", m.Shape)
	}
	// Batched.
	a3 := TensorMeta(Shape{2, 4, 8})
	b3 := TensorMeta(Shape{2, 8, 5})
	m = mustInfer(t, OpMatmul, 0, "", IntMeta(ActRelu), a3, b3)
	if !m.Shape.Equal(Shape{2, 4, 5}) {
		t.Fatalf("batched matmul shape = %v", m.Shape)
	}
	wantErr(t, OpMatmul, 0, "", IntMeta(ActNone), a, TensorMeta(Shape{9, 16}))
	wantErr(t, OpMatmul, 0, "", IntMeta(99), a, b)
	wantErr(t, OpMatmul, 0, "", IntMeta(ActNone), a3, TensorMeta(Shape{3, 8, 5}))
}

func TestInferConv(t *testing.T) {
	x := TensorMeta(Shape{1, 64, 28, 28})
	w := TensorMeta(Shape{128, 64, 3, 3})
	args := []*Meta{IntMeta(1), IntMeta(1), IntMeta(PadSame), IntMeta(ActNone), x, w}
	m := mustInfer(t, OpConv, 0, "", args...)
	if !m.Shape.Equal(Shape{1, 128, 28, 28}) {
		t.Fatalf("conv same shape = %v", m.Shape)
	}
	// Strided valid padding.
	args = []*Meta{IntMeta(2), IntMeta(2), IntMeta(PadValid), IntMeta(ActRelu), x, w}
	m = mustInfer(t, OpConv, 0, "", args...)
	if !m.Shape.Equal(Shape{1, 128, 13, 13}) {
		t.Fatalf("conv valid s2 shape = %v", m.Shape)
	}
	// Grouped: 64 channels, 32 groups of 2.
	gw := TensorMeta(Shape{64, 2, 3, 3})
	args = []*Meta{IntMeta(1), IntMeta(1), IntMeta(PadSame), IntMeta(ActNone), x, gw}
	m = mustInfer(t, OpConv, 0, "", args...)
	if !m.Shape.Equal(Shape{1, 64, 28, 28}) {
		t.Fatalf("grouped conv shape = %v", m.Shape)
	}
	// Bad group structure: cin per group doesn't divide channels.
	bad := TensorMeta(Shape{64, 5, 3, 3})
	wantErr(t, OpConv, 0, "", IntMeta(1), IntMeta(1), IntMeta(PadSame), IntMeta(ActNone), x, bad)
	// cout not divisible by groups.
	bad2 := TensorMeta(Shape{3, 2, 3, 3})
	wantErr(t, OpConv, 0, "", IntMeta(1), IntMeta(1), IntMeta(PadSame), IntMeta(ActNone), x, bad2)
	// Kernel larger than input under valid padding.
	tiny := TensorMeta(Shape{1, 64, 2, 2})
	wantErr(t, OpConv, 0, "", IntMeta(1), IntMeta(1), IntMeta(PadValid), IntMeta(ActNone), tiny, w)
}

func TestInferPool(t *testing.T) {
	x := TensorMeta(Shape{1, 32, 28, 28})
	m := mustInfer(t, OpPoolMax, 0, "", x,
		IntMeta(2), IntMeta(2), IntMeta(2), IntMeta(2), IntMeta(PadValid), IntMeta(ActNone))
	if !m.Shape.Equal(Shape{1, 32, 14, 14}) {
		t.Fatalf("pool shape = %v", m.Shape)
	}
	m = mustInfer(t, OpPoolAvg, 0, "", x,
		IntMeta(3), IntMeta(3), IntMeta(1), IntMeta(1), IntMeta(PadSame), IntMeta(ActNone))
	if !m.Shape.Equal(Shape{1, 32, 28, 28}) {
		t.Fatalf("same-pad pool shape = %v", m.Shape)
	}
	wantErr(t, OpPoolMax, 0, "", x,
		IntMeta(0), IntMeta(2), IntMeta(2), IntMeta(2), IntMeta(PadValid), IntMeta(ActNone))
}

func TestInferTranspose(t *testing.T) {
	x := TensorMeta(Shape{2, 3, 4})
	m := mustInfer(t, OpTranspose, 0, "", x, StrMeta("2 0 1"))
	if !m.Shape.Equal(Shape{4, 2, 3}) {
		t.Fatalf("transpose shape = %v", m.Shape)
	}
	wantErr(t, OpTranspose, 0, "", x, StrMeta("0 1"))
	wantErr(t, OpTranspose, 0, "", x, StrMeta("0 0 1"))
	// Split marker follows its axis through the permutation.
	c := TensorMeta(Shape{2, 6, 4})
	c.HasSplit, c.SplitAxis, c.SplitAt = true, 1, 2
	m = mustInfer(t, OpTranspose, 0, "", c, StrMeta("1 0 2"))
	if !m.HasSplit || m.SplitAxis != 0 || m.SplitAt != 2 {
		t.Fatalf("split marker after transpose = %v", m)
	}
}

func TestInferConcatSplitRoundTrip(t *testing.T) {
	a := TensorMeta(Shape{4, 8})
	bb := TensorMeta(Shape{4, 12})
	cat := mustInfer(t, OpConcat2, 0, "", IntMeta(1), a, bb)
	if !cat.Shape.Equal(Shape{4, 20}) {
		t.Fatalf("concat shape = %v", cat.Shape)
	}
	if !cat.HasSplit || cat.SplitAxis != 1 || cat.SplitAt != 8 {
		t.Fatalf("concat split marker = %v", cat)
	}
	tt := mustInfer(t, OpSplit, 0, "", IntMeta(1), cat)
	if tt.Kind != KindTuple || !tt.Shape.Equal(Shape{4, 8}) || !tt.Shape2.Equal(Shape{4, 12}) {
		t.Fatalf("split tuple = %v", tt)
	}
	s0 := mustInfer(t, OpSplit0, 0, "", tt)
	s1 := mustInfer(t, OpSplit1, 0, "", tt)
	if !s0.Shape.Equal(a.Shape) || !s1.Shape.Equal(bb.Shape) {
		t.Fatalf("split halves = %v / %v", s0.Shape, s1.Shape)
	}
	// Split without a marker, or on the wrong axis, is rejected.
	wantErr(t, OpSplit, 0, "", IntMeta(0), cat)
	wantErr(t, OpSplit, 0, "", IntMeta(1), a)
	// Mismatched non-axis dims are rejected.
	wantErr(t, OpConcat2, 0, "", IntMeta(1), a, TensorMeta(Shape{5, 12}))
	// Axis out of range.
	wantErr(t, OpConcat2, 0, "", IntMeta(2), a, bb)
}

func TestInferConcatWide(t *testing.T) {
	a := TensorMeta(Shape{2, 3})
	m := mustInfer(t, OpConcat3, 0, "", IntMeta(0), a, a, a)
	if !m.Shape.Equal(Shape{6, 3}) {
		t.Fatalf("concat3 shape = %v", m.Shape)
	}
	m = mustInfer(t, OpConcat5, 0, "", IntMeta(1), a, a, a, a, a)
	if !m.Shape.Equal(Shape{2, 15}) {
		t.Fatalf("concat5 shape = %v", m.Shape)
	}
}

func TestInferEnlargeMergeReshape(t *testing.T) {
	k := TensorMeta(Shape{64, 32, 1, 1})
	ref := TensorMeta(Shape{64, 32, 3, 3})
	m := mustInfer(t, OpEnlarge, 0, "", k, ref)
	if !m.Shape.Equal(Shape{64, 32, 3, 3}) {
		t.Fatalf("enlarge shape = %v", m.Shape)
	}
	wantErr(t, OpEnlarge, 0, "", ref, k) // kernel bigger than ref

	w := TensorMeta(Shape{64, 2, 3, 3})
	m = mustInfer(t, OpMerge, 0, "", w, IntMeta(2))
	if !m.Shape.Equal(Shape{64, 4, 3, 3}) {
		t.Fatalf("merge shape = %v", m.Shape)
	}
	wantErr(t, OpMerge, 0, "", w, IntMeta(1))
	wantErr(t, OpMerge, 0, "", w, IntMeta(7))

	x := TensorMeta(Shape{2, 3, 4})
	m = mustInfer(t, OpReshape, 0, "", x, StrMeta("6 4"))
	if !m.Shape.Equal(Shape{6, 4}) {
		t.Fatalf("reshape shape = %v", m.Shape)
	}
	wantErr(t, OpReshape, 0, "", x, StrMeta("5 4"))
}

func TestInferArityChecks(t *testing.T) {
	wantErr(t, OpEwadd, 0, "", TensorMeta(Shape{1}))
	wantErr(t, OpMatmul, 0, "", TensorMeta(Shape{1, 1}), TensorMeta(Shape{1, 1}))
	wantErr(t, OpConv, 0, "", IntMeta(1))
}

func TestParseHelpers(t *testing.T) {
	s, err := ParseShape("2 3 4")
	if err != nil || !s.Equal(Shape{2, 3, 4}) {
		t.Fatalf("ParseShape = %v, %v", s, err)
	}
	if _, err := ParseShape("2 x"); err == nil {
		t.Fatal("bad shape accepted")
	}
	p, err := ParsePerm("1 0 2")
	if err != nil || p[0] != 1 {
		t.Fatalf("ParsePerm = %v, %v", p, err)
	}
	if _, err := ParsePerm("0 0"); err == nil {
		t.Fatal("non-permutation accepted")
	}
	name, shape, err := ParseIdent("hidden@32 64")
	if err != nil || name != "hidden" || !shape.Equal(Shape{32, 64}) {
		t.Fatalf("ParseIdent = %q %v %v", name, shape, err)
	}
	if _, _, err := ParseIdent("noatsign"); err == nil {
		t.Fatal("bad identifier accepted")
	}
	if got := Ident("x", Shape{3, 4}); got != "x@3 4" {
		t.Fatalf("Ident = %q", got)
	}
}

func TestShapeVolumeAndString(t *testing.T) {
	s := Shape{2, 3, 4}
	if s.Volume() != 24 {
		t.Fatalf("Volume = %d", s.Volume())
	}
	if s.String() != "2 3 4" {
		t.Fatalf("String = %q", s.String())
	}
	c := s.Clone()
	c[0] = 9
	if s[0] != 2 {
		t.Fatal("Clone aliases")
	}
}

func TestMetaString(t *testing.T) {
	m := TensorMeta(Shape{2, 3})
	m.Foldable = true
	if !strings.Contains(m.String(), "/w") {
		t.Fatalf("meta string %q misses foldable marker", m.String())
	}
}
