package tensor

import (
	"math"
	"testing"
)

func evalGraph(t *testing.T, g *Graph) []*Tensor {
	t.Helper()
	outs, err := NewEvaluator().EvalOutputs(g)
	if err != nil {
		t.Fatal(err)
	}
	return outs
}

func TestEvalDeterministicLeaves(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 4, 4)
	g1 := b.MustFinish(b.Relu(x))
	b2 := NewBuilder()
	x2 := b2.Input("x", 4, 4)
	g2 := b2.MustFinish(b2.Relu(x2))
	o1, o2 := evalGraph(t, g1)[0], evalGraph(t, g2)[0]
	if o1.MaxAbsDiff(o2) != 0 {
		t.Fatal("same identifier produced different data")
	}
	// A different name produces different data.
	b3 := NewBuilder()
	x3 := b3.Input("y", 4, 4)
	g3 := b3.MustFinish(b3.Relu(x3))
	if o1.MaxAbsDiff(evalGraph(t, g3)[0]) == 0 {
		t.Fatal("different identifiers produced identical data")
	}
}

func TestEvalMatmulAgainstManual(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 2, 3)
	w := b.Weight("w", 3, 2)
	g := b.MustFinish(b.Matmul(ActNone, x, w))
	out := evalGraph(t, g)[0]

	xs, ws := NewTensor(Shape{2, 3}), NewTensor(Shape{3, 2})
	xs.FillPseudo(hashIdent("x@2 3"))
	ws.FillPseudo(hashIdent("w@3 2"))
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			sum := 0.0
			for k := 0; k < 3; k++ {
				sum += xs.At(i, k) * ws.At(k, j)
			}
			if math.Abs(out.At(i, j)-sum) > 1e-12 {
				t.Fatalf("matmul[%d][%d] = %v, want %v", i, j, out.At(i, j), sum)
			}
		}
	}
}

func TestEvalActivations(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 2, 2)
	g := b.MustFinish(b.Relu(x), b.Tanh(x), b.Sigmoid(x))
	outs := evalGraph(t, g)
	xs := NewTensor(Shape{2, 2})
	xs.FillPseudo(hashIdent("x@2 2"))
	for i, v := range xs.Data {
		if want := math.Max(0, v); outs[0].Data[i] != want {
			t.Fatalf("relu(%v) = %v", v, outs[0].Data[i])
		}
		if want := math.Tanh(v); outs[1].Data[i] != want {
			t.Fatalf("tanh(%v) = %v", v, outs[1].Data[i])
		}
		if want := 1 / (1 + math.Exp(-v)); outs[2].Data[i] != want {
			t.Fatalf("sigmoid(%v) = %v", v, outs[2].Data[i])
		}
	}
}

func TestEvalConcatSplitRoundTrip(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 3, 4)
	y := b.Input("y", 3, 6)
	cat := b.Concat(1, x, y)
	s0, s1 := b.Split(1, cat)
	g := b.MustFinish(s0, s1)
	outs := evalGraph(t, g)
	xs := NewTensor(Shape{3, 4})
	xs.FillPseudo(hashIdent("x@3 4"))
	ys := NewTensor(Shape{3, 6})
	ys.FillPseudo(hashIdent("y@3 6"))
	if outs[0].MaxAbsDiff(xs) != 0 {
		t.Fatal("split0(concat(x,y)) != x")
	}
	if outs[1].MaxAbsDiff(ys) != 0 {
		t.Fatal("split1(concat(x,y)) != y")
	}
}

func TestEvalTransposeInvolution(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 3, 5)
	g := b.MustFinish(b.Transpose(b.Transpose(x, 1, 0), 1, 0))
	out := evalGraph(t, g)[0]
	xs := NewTensor(Shape{3, 5})
	xs.FillPseudo(hashIdent("x@3 5"))
	if out.MaxAbsDiff(xs) != 0 {
		t.Fatal("double transpose is not the identity")
	}
}

// TestEvalMatmulConcatIdentity verifies the algebra behind Figure 2:
// matmul(x, concat(w1,w2)) computes [matmul(x,w1) | matmul(x,w2)].
func TestEvalMatmulConcatIdentity(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 4, 8)
	w1 := b.Weight("w1", 8, 3)
	w2 := b.Weight("w2", 8, 5)
	merged := b.Matmul(ActNone, x, b.Concat(1, w1, w2))
	s0, s1 := b.Split(1, merged)
	g1 := b.MustFinish(s0, s1)
	b2 := NewBuilder()
	x2 := b2.Input("x", 4, 8)
	w1b := b2.Weight("w1", 8, 3)
	w2b := b2.Weight("w2", 8, 5)
	g2 := b2.MustFinish(b2.Matmul(ActNone, x2, w1b), b2.Matmul(ActNone, x2, w2b))
	o1, o2 := evalGraph(t, g1), evalGraph(t, g2)
	for i := range o1 {
		if d := o1[i].MaxAbsDiff(o2[i]); d > 1e-9 {
			t.Fatalf("output %d differs by %v", i, d)
		}
	}
}

// TestEvalEnlargePreservesConv verifies the enlarge rule's semantics:
// under SAME padding and stride 1, conv with a zero-padded kernel is
// unchanged.
func TestEvalEnlargePreservesConv(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 1, 4, 8, 8)
	k1 := b.Weight("k1", 6, 4, 1, 1)
	ref := b.Weight("k3", 6, 4, 3, 3)
	direct := b.Conv(1, 1, PadSame, ActNone, x, k1)
	enlarged := b.Conv(1, 1, PadSame, ActNone, x, b.Enlarge(k1, ref))
	g := b.MustFinish(direct, enlarged)
	outs := evalGraph(t, g)
	if d := outs[0].MaxAbsDiff(outs[1]); d > 1e-9 {
		t.Fatalf("enlarge changed the convolution by %v", d)
	}
}

// TestEvalMergeGconvPreservesConv pins merge_gconv's semantics: a
// grouped conv over the merged (zero-padded) weight computes the same
// values, in the cout == C geometry inferMerge requires.
func TestEvalMergeGconvPreservesConv(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 1, 8, 5, 5)
	w := b.Weight("w", 8, 2, 3, 3) // 4 groups of 2
	direct := b.Conv(1, 1, PadSame, ActNone, x, w)
	merged := b.Conv(1, 1, PadSame, ActNone, x, b.Merge(w, 2))
	g := b.MustFinish(direct, merged)
	outs := evalGraph(t, g)
	if d := outs[0].MaxAbsDiff(outs[1]); d > 1e-9 {
		t.Fatalf("merge_gconv changed the convolution by %v", d)
	}
}

// TestEvalConvConcatChannels verifies the Figure 9 algebra: concat of
// conv outputs equals conv over out-channel-concatenated weights.
func TestEvalConvConcatChannels(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 1, 3, 6, 6)
	w1 := b.Weight("w1", 4, 3, 3, 3)
	w2 := b.Weight("w2", 5, 3, 3, 3)
	lhs := b.Concat(1,
		b.Conv(1, 1, PadSame, ActNone, x, w1),
		b.Conv(1, 1, PadSame, ActNone, x, w2))
	rhs := b.Conv(1, 1, PadSame, ActNone, x, b.Concat(0, w1, w2))
	g := b.MustFinish(lhs, rhs)
	outs := evalGraph(t, g)
	if d := outs[0].MaxAbsDiff(outs[1]); d > 1e-9 {
		t.Fatalf("figure 9 identity violated by %v", d)
	}
}

// TestEvalFigure10Identity verifies ewadd(conv(x,w1), conv(y,w2)) ==
// conv(concat_c(x,y), concat_c(w1,w2)).
func TestEvalFigure10Identity(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 1, 3, 6, 6)
	y := b.Input("y", 1, 2, 6, 6)
	w1 := b.Weight("w1", 4, 3, 3, 3)
	w2 := b.Weight("w2", 4, 2, 3, 3)
	lhs := b.Ewadd(
		b.Conv(1, 1, PadSame, ActNone, x, w1),
		b.Conv(1, 1, PadSame, ActNone, y, w2))
	rhs := b.Conv(1, 1, PadSame, ActNone, b.Concat(1, x, y), b.Concat(1, w1, w2))
	g := b.MustFinish(lhs, rhs)
	outs := evalGraph(t, g)
	if d := outs[0].MaxAbsDiff(outs[1]); d > 1e-9 {
		t.Fatalf("figure 10 identity violated by %v", d)
	}
}

func TestEvalPooling(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 1, 2, 4, 4)
	g := b.MustFinish(
		b.PoolMax(x, 2, 2, 2, 2, PadValid, ActNone),
		b.PoolAvg(x, 2, 2, 2, 2, PadValid, ActNone))
	outs := evalGraph(t, g)
	xs := NewTensor(Shape{1, 2, 4, 4})
	xs.FillPseudo(hashIdent("x@1 2 4 4"))
	for c := 0; c < 2; c++ {
		for y := 0; y < 2; y++ {
			for xx := 0; xx < 2; xx++ {
				maxV := math.Inf(-1)
				sum := 0.0
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						v := xs.At(0, c, 2*y+dy, 2*xx+dx)
						sum += v
						if v > maxV {
							maxV = v
						}
					}
				}
				if outs[0].At(0, c, y, xx) != maxV {
					t.Fatalf("poolmax mismatch at %d,%d,%d", c, y, xx)
				}
				if math.Abs(outs[1].At(0, c, y, xx)-sum/4) > 1e-12 {
					t.Fatalf("poolavg mismatch at %d,%d,%d", c, y, xx)
				}
			}
		}
	}
}

func TestEvalReshape(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 2, 6)
	g := b.MustFinish(b.Reshape(x, 3, 4))
	out := evalGraph(t, g)[0]
	xs := NewTensor(Shape{2, 6})
	xs.FillPseudo(hashIdent("x@2 6"))
	for i := range xs.Data {
		if out.Data[i] != xs.Data[i] {
			t.Fatal("reshape moved data")
		}
	}
}
