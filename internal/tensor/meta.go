package tensor

import "fmt"

// Kind classifies the value a graph node (or e-class) produces,
// matching the four node types of Table 2.
type Kind uint8

const (
	// KindTensor is a single tensor (T).
	KindTensor Kind = iota
	// KindTuple is a tensor tuple (TT), produced by split.
	KindTuple
	// KindInt is an integer parameter (N).
	KindInt
	// KindStr is a string parameter (S).
	KindStr
)

// String names the kind using the paper's type letters.
func (k Kind) String() string {
	switch k {
	case KindTensor:
		return "T"
	case KindTuple:
		return "TT"
	case KindInt:
		return "N"
	case KindStr:
		return "S"
	}
	return "?"
}

// Meta is the semantic summary of a node: its kind, shape(s), payload
// values, the most-recent-concat split position (§3.1 footnote e: "the
// position of the split is at the place of the most recent concat"),
// and whether the value is computable from weights alone (so it can be
// pre-computed at inference time, as exploited by the Figure 10
// rewrite). Meta doubles as TENSAT's e-class analysis data (§6).
type Meta struct {
	Kind   Kind
	Shape  Shape // tensor shape (KindTensor), or first tuple element
	Shape2 Shape // second tuple element (KindTuple only)

	IVal int64  // KindInt payload
	SVal string // KindStr payload

	// HasSplit marks that Shape's SplitAxis dimension was produced by
	// a concat whose first operand ended at SplitAt; split(axis, x)
	// is only valid when x carries a matching marker.
	HasSplit  bool
	SplitAxis int
	SplitAt   int

	// Foldable is true when the whole subtree consists of weights and
	// shape/arithmetic ops over weights: its value is constant at
	// inference time, so a cost model may price it at zero.
	Foldable bool
}

// TensorMeta builds a plain tensor Meta.
func TensorMeta(shape Shape) *Meta { return &Meta{Kind: KindTensor, Shape: shape} }

// IntMeta builds an integer-parameter Meta.
func IntMeta(v int64) *Meta { return &Meta{Kind: KindInt, IVal: v} }

// StrMeta builds a string-parameter Meta.
func StrMeta(s string) *Meta { return &Meta{Kind: KindStr, SVal: s} }

// Clone returns a deep copy of m.
func (m *Meta) Clone() *Meta {
	c := *m
	c.Shape = m.Shape.Clone()
	c.Shape2 = m.Shape2.Clone()
	return &c
}

// Equivalent reports whether two metas agree on kind, shapes and
// payloads (split markers and foldability may differ between members
// of an e-class and are joined, not compared).
func (m *Meta) Equivalent(o *Meta) bool {
	return m.Kind == o.Kind && m.Shape.Equal(o.Shape) && m.Shape2.Equal(o.Shape2) &&
		m.IVal == o.IVal && m.SVal == o.SVal
}

// String renders a compact description for error messages.
func (m *Meta) String() string {
	switch m.Kind {
	case KindInt:
		return fmt.Sprintf("N(%d)", m.IVal)
	case KindStr:
		return fmt.Sprintf("S(%q)", m.SVal)
	case KindTuple:
		return fmt.Sprintf("TT([%v],[%v])", m.Shape, m.Shape2)
	default:
		s := fmt.Sprintf("T[%v]", m.Shape)
		if m.HasSplit {
			s += fmt.Sprintf("/split(ax%d@%d)", m.SplitAxis, m.SplitAt)
		}
		if m.Foldable {
			s += "/w"
		}
		return s
	}
}
