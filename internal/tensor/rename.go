package tensor

import "fmt"

// RenameTensors returns a graph equal to g with input/weight names
// substituted per mapping (old name → new name). Unmapped identifiers
// keep their names. Structure, shapes and sharing are preserved:
// subtrees that contain no renamed tensor are shared with g unchanged,
// and Meta pointers are reused throughout (names are not part of
// Meta). The optimization service uses this to answer a cache hit in
// the requester's tensor vocabulary rather than the original
// submitter's.
func RenameTensors(g *Graph, mapping map[string]string) (*Graph, error) {
	if g == nil || g.Root == nil {
		return nil, fmt.Errorf("tensor: nil graph")
	}
	if len(mapping) == 0 {
		return g, nil
	}
	memo := make(map[*Node]*Node)
	var clone func(n *Node) (*Node, error)
	clone = func(n *Node) (*Node, error) {
		if c, ok := memo[n]; ok {
			return c, nil
		}
		out := n
		switch n.Op {
		case OpInput, OpWeight:
			name, shape, err := ParseIdent(n.Str)
			if err != nil {
				return nil, err
			}
			if to, ok := mapping[name]; ok && to != name {
				out = &Node{Op: n.Op, Str: Ident(to, shape), Meta: n.Meta}
			}
		default:
			changed := false
			inputs := make([]*Node, len(n.Inputs))
			for i, in := range n.Inputs {
				c, err := clone(in)
				if err != nil {
					return nil, err
				}
				inputs[i] = c
				changed = changed || c != in
			}
			if changed {
				out = &Node{Op: n.Op, Int: n.Int, Str: n.Str, Inputs: inputs, Meta: n.Meta}
			}
		}
		memo[n] = out
		return out, nil
	}
	root, err := clone(g.Root)
	if err != nil {
		return nil, err
	}
	if root == g.Root {
		return g, nil
	}
	outputs := make([]*Node, len(g.Outputs))
	for i, o := range g.Outputs {
		if outputs[i], err = clone(o); err != nil {
			return nil, err
		}
	}
	return &Graph{Root: root, Outputs: outputs}, nil
}
