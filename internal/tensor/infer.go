package tensor

import "fmt"

// Infer computes the Meta of an operator applied to argument metas.
// It is the single shape-inference engine shared by the graph builder,
// the e-class analysis, and the rewrite engine's shape checking (§4:
// "Before applying a rewrite at a found match, we perform a shape
// checking to verify if the tensor shapes in the target pattern are
// compatible."). ival/sval are the payloads of literal ops and are
// ignored for the rest.
func Infer(op Op, ival int64, sval string, args []*Meta) (*Meta, error) {
	if want := op.Arity(); want >= 0 && len(args) != want {
		return nil, fmt.Errorf("tensor: %v expects %d arguments, got %d", op, want, len(args))
	}
	for i, a := range args {
		if a == nil {
			return nil, fmt.Errorf("tensor: %v argument %d is nil", op, i)
		}
	}
	switch op {
	case OpInt:
		return IntMeta(ival), nil
	case OpStr:
		return StrMeta(sval), nil
	case OpInput, OpWeight:
		_, shape, err := ParseIdent(sval)
		if err != nil {
			return nil, err
		}
		m := TensorMeta(shape)
		m.Foldable = op == OpWeight
		return m, nil
	case OpEwadd, OpEwmul:
		a, err := tensorArg(op, args, 0)
		if err != nil {
			return nil, err
		}
		b, err := tensorArg(op, args, 1)
		if err != nil {
			return nil, err
		}
		if !a.Shape.Equal(b.Shape) {
			return nil, fmt.Errorf("tensor: %v shape mismatch %v vs %v", op, a.Shape, b.Shape)
		}
		m := TensorMeta(a.Shape.Clone())
		m.Foldable = a.Foldable && b.Foldable
		if a.HasSplit && b.HasSplit && a.SplitAxis == b.SplitAxis && a.SplitAt == b.SplitAt {
			m.HasSplit, m.SplitAxis, m.SplitAt = true, a.SplitAxis, a.SplitAt
		}
		return m, nil
	case OpMatmul:
		if err := intArgIn(op, args, 0, "activation", ActNone, ActTanh); err != nil {
			return nil, err
		}
		a, err := tensorArg(op, args, 1)
		if err != nil {
			return nil, err
		}
		b, err := tensorArg(op, args, 2)
		if err != nil {
			return nil, err
		}
		return inferMatmul(a, b)
	case OpConv:
		return inferConv(args)
	case OpRelu, OpTanh, OpSigmoid:
		a, err := tensorArg(op, args, 0)
		if err != nil {
			return nil, err
		}
		m := TensorMeta(a.Shape.Clone())
		m.Foldable = a.Foldable
		m.HasSplit, m.SplitAxis, m.SplitAt = a.HasSplit, a.SplitAxis, a.SplitAt
		return m, nil
	case OpPoolMax, OpPoolAvg:
		return inferPool(op, args)
	case OpTranspose:
		return inferTranspose(args)
	case OpEnlarge:
		return inferEnlarge(args)
	case OpConcat2, OpConcat3, OpConcat4, OpConcat5:
		return inferConcat(op, args)
	case OpSplit:
		return inferSplit(args)
	case OpSplit0, OpSplit1:
		a := args[0]
		if a.Kind != KindTuple {
			return nil, fmt.Errorf("tensor: %v wants a tensor tuple, got %v", op, a)
		}
		shape := a.Shape
		if op == OpSplit1 {
			shape = a.Shape2
		}
		m := TensorMeta(shape.Clone())
		m.Foldable = a.Foldable
		return m, nil
	case OpMerge:
		return inferMerge(args)
	case OpReshape:
		return inferReshape(args)
	case OpNoop:
		a, err := tensorArg(op, args, 0)
		if err != nil {
			return nil, err
		}
		b, err := tensorArg(op, args, 1)
		if err != nil {
			return nil, err
		}
		m := TensorMeta(nil)
		m.Foldable = a.Foldable && b.Foldable
		return m, nil
	default:
		return nil, fmt.Errorf("tensor: unknown operator %v", op)
	}
}

func tensorArg(op Op, args []*Meta, i int) (*Meta, error) {
	if args[i].Kind != KindTensor {
		return nil, fmt.Errorf("tensor: %v argument %d must be a tensor, got %v", op, i, args[i])
	}
	return args[i], nil
}

func intArg(op Op, args []*Meta, i int, what string) (int64, error) {
	if args[i].Kind != KindInt {
		return 0, fmt.Errorf("tensor: %v argument %d (%s) must be an integer, got %v", op, i, what, args[i])
	}
	return args[i].IVal, nil
}

func intArgIn(op Op, args []*Meta, i int, what string, lo, hi int64) error {
	v, err := intArg(op, args, i, what)
	if err != nil {
		return err
	}
	if v < lo || v > hi {
		return fmt.Errorf("tensor: %v %s = %d out of range [%d,%d]", op, what, v, lo, hi)
	}
	return nil
}

func inferMatmul(a, b *Meta) (*Meta, error) {
	if len(a.Shape) < 2 || len(b.Shape) < 2 || len(a.Shape) != len(b.Shape) {
		return nil, fmt.Errorf("tensor: matmul rank mismatch %v x %v", a.Shape, b.Shape)
	}
	n := len(a.Shape)
	for i := 0; i < n-2; i++ {
		if a.Shape[i] != b.Shape[i] {
			return nil, fmt.Errorf("tensor: matmul batch dims differ: %v x %v", a.Shape, b.Shape)
		}
	}
	if a.Shape[n-1] != b.Shape[n-2] {
		return nil, fmt.Errorf("tensor: matmul inner dims differ: %v x %v", a.Shape, b.Shape)
	}
	out := a.Shape.Clone()
	out[n-1] = b.Shape[n-1]
	m := TensorMeta(out)
	m.Foldable = a.Foldable && b.Foldable
	// A concat boundary on b's columns (or a's rows) survives matmul:
	// this is what lets split undo the Figure 2 merged matmul.
	if b.HasSplit && b.SplitAxis == n-1 {
		m.HasSplit, m.SplitAxis, m.SplitAt = true, n-1, b.SplitAt
	} else if a.HasSplit && a.SplitAxis == n-2 {
		m.HasSplit, m.SplitAxis, m.SplitAt = true, n-2, a.SplitAt
	}
	return m, nil
}

func inferConv(args []*Meta) (*Meta, error) {
	sh, err := intArg(OpConv, args, 0, "strideH")
	if err != nil {
		return nil, err
	}
	sw, err := intArg(OpConv, args, 1, "strideW")
	if err != nil {
		return nil, err
	}
	if sh < 1 || sw < 1 {
		return nil, fmt.Errorf("tensor: conv strides must be >= 1, got %d,%d", sh, sw)
	}
	pad, err := intArg(OpConv, args, 2, "padding")
	if err != nil {
		return nil, err
	}
	if pad != PadSame && pad != PadValid {
		return nil, fmt.Errorf("tensor: conv padding mode %d invalid", pad)
	}
	if err := intArgIn(OpConv, args, 3, "activation", ActNone, ActTanh); err != nil {
		return nil, err
	}
	x, err := tensorArg(OpConv, args, 4)
	if err != nil {
		return nil, err
	}
	w, err := tensorArg(OpConv, args, 5)
	if err != nil {
		return nil, err
	}
	if len(x.Shape) != 4 || len(w.Shape) != 4 {
		return nil, fmt.Errorf("tensor: conv wants NCHW input and OIHW weight, got %v, %v", x.Shape, w.Shape)
	}
	n, c, h, wid := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	cout, cinPG, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	if cinPG == 0 || c%cinPG != 0 {
		return nil, fmt.Errorf("tensor: conv channels %d not divisible by weight in-channels %d", c, cinPG)
	}
	groups := c / cinPG
	if cout%groups != 0 {
		return nil, fmt.Errorf("tensor: conv out-channels %d not divisible by groups %d", cout, groups)
	}
	oh, ow, err := spatialOut(h, wid, kh, kw, int(sh), int(sw), pad)
	if err != nil {
		return nil, err
	}
	m := TensorMeta(Shape{n, cout, oh, ow})
	m.Foldable = x.Foldable && w.Foldable
	// A concat boundary on the weight's output channels survives the
	// convolution as a boundary on the output channel axis (Figure 9).
	if w.HasSplit && w.SplitAxis == 0 {
		m.HasSplit, m.SplitAxis, m.SplitAt = true, 1, w.SplitAt
	}
	return m, nil
}

func spatialOut(h, w, kh, kw, sh, sw int, pad int64) (int, int, error) {
	if kh <= 0 || kw <= 0 {
		return 0, 0, fmt.Errorf("tensor: kernel %dx%d invalid", kh, kw)
	}
	if pad == PadSame {
		return (h + sh - 1) / sh, (w + sw - 1) / sw, nil
	}
	if h < kh || w < kw {
		return 0, 0, fmt.Errorf("tensor: valid padding with kernel %dx%d larger than input %dx%d", kh, kw, h, w)
	}
	return (h-kh)/sh + 1, (w-kw)/sw + 1, nil
}

func inferPool(op Op, args []*Meta) (*Meta, error) {
	x, err := tensorArg(op, args, 0)
	if err != nil {
		return nil, err
	}
	if len(x.Shape) != 4 {
		return nil, fmt.Errorf("tensor: %v wants NCHW input, got %v", op, x.Shape)
	}
	kh, err := intArg(op, args, 1, "kernelH")
	if err != nil {
		return nil, err
	}
	kw, err := intArg(op, args, 2, "kernelW")
	if err != nil {
		return nil, err
	}
	sh, err := intArg(op, args, 3, "strideH")
	if err != nil {
		return nil, err
	}
	sw, err := intArg(op, args, 4, "strideW")
	if err != nil {
		return nil, err
	}
	pad, err := intArg(op, args, 5, "padding")
	if err != nil {
		return nil, err
	}
	if pad != PadSame && pad != PadValid {
		return nil, fmt.Errorf("tensor: %v padding mode %d invalid", op, pad)
	}
	if err := intArgIn(op, args, 6, "activation", ActNone, ActTanh); err != nil {
		return nil, err
	}
	if kh < 1 || kw < 1 || sh < 1 || sw < 1 {
		return nil, fmt.Errorf("tensor: %v kernel/stride must be >= 1", op)
	}
	oh, ow, err := spatialOut(x.Shape[2], x.Shape[3], int(kh), int(kw), int(sh), int(sw), pad)
	if err != nil {
		return nil, err
	}
	m := TensorMeta(Shape{x.Shape[0], x.Shape[1], oh, ow})
	m.Foldable = x.Foldable
	return m, nil
}

func inferTranspose(args []*Meta) (*Meta, error) {
	x, err := tensorArg(OpTranspose, args, 0)
	if err != nil {
		return nil, err
	}
	if args[1].Kind != KindStr {
		return nil, fmt.Errorf("tensor: transpose permutation must be a string, got %v", args[1])
	}
	perm, err := ParsePerm(args[1].SVal)
	if err != nil {
		return nil, err
	}
	if len(perm) != len(x.Shape) {
		return nil, fmt.Errorf("tensor: transpose permutation rank %d != tensor rank %d", len(perm), len(x.Shape))
	}
	out := make(Shape, len(perm))
	for i, a := range perm {
		out[i] = x.Shape[a]
	}
	m := TensorMeta(out)
	m.Foldable = x.Foldable
	if x.HasSplit {
		for i, a := range perm {
			if a == x.SplitAxis {
				m.HasSplit, m.SplitAxis, m.SplitAt = true, i, x.SplitAt
			}
		}
	}
	return m, nil
}

func inferEnlarge(args []*Meta) (*Meta, error) {
	k, err := tensorArg(OpEnlarge, args, 0)
	if err != nil {
		return nil, err
	}
	ref, err := tensorArg(OpEnlarge, args, 1)
	if err != nil {
		return nil, err
	}
	if len(k.Shape) != 4 || len(ref.Shape) != 4 {
		return nil, fmt.Errorf("tensor: enlarge wants OIHW kernels, got %v, %v", k.Shape, ref.Shape)
	}
	if k.Shape[2] > ref.Shape[2] || k.Shape[3] > ref.Shape[3] {
		return nil, fmt.Errorf("tensor: enlarge kernel %v larger than reference %v", k.Shape, ref.Shape)
	}
	m := TensorMeta(Shape{k.Shape[0], k.Shape[1], ref.Shape[2], ref.Shape[3]})
	m.Foldable = k.Foldable
	return m, nil
}

func inferConcat(op Op, args []*Meta) (*Meta, error) {
	axis, err := intArg(op, args, 0, "axis")
	if err != nil {
		return nil, err
	}
	first, err := tensorArg(op, args, 1)
	if err != nil {
		return nil, err
	}
	rank := len(first.Shape)
	if axis < 0 || int(axis) >= rank {
		return nil, fmt.Errorf("tensor: concat axis %d out of range for rank %d", axis, rank)
	}
	out := first.Shape.Clone()
	foldable := first.Foldable
	for i := 2; i < len(args); i++ {
		t, err := tensorArg(op, args, i)
		if err != nil {
			return nil, err
		}
		if len(t.Shape) != rank {
			return nil, fmt.Errorf("tensor: concat rank mismatch %v vs %v", first.Shape, t.Shape)
		}
		for d := 0; d < rank; d++ {
			if d == int(axis) {
				continue
			}
			if t.Shape[d] != out[d] {
				return nil, fmt.Errorf("tensor: concat dim %d mismatch: %v vs %v", d, out, t.Shape)
			}
		}
		out[axis] += t.Shape[axis]
		foldable = foldable && t.Foldable
	}
	m := TensorMeta(out)
	m.Foldable = foldable
	// The split marker records the most recent concat boundary: the end
	// of the first operand. split(axis, .) undoes a concat2 exactly.
	m.HasSplit, m.SplitAxis, m.SplitAt = true, int(axis), first.Shape[axis]
	return m, nil
}

func inferSplit(args []*Meta) (*Meta, error) {
	axis, err := intArg(OpSplit, args, 0, "axis")
	if err != nil {
		return nil, err
	}
	x, err := tensorArg(OpSplit, args, 1)
	if err != nil {
		return nil, err
	}
	if !x.HasSplit || x.SplitAxis != int(axis) {
		return nil, fmt.Errorf("tensor: split axis %d without a matching concat marker on %v", axis, x)
	}
	if x.SplitAt <= 0 || x.SplitAt >= x.Shape[axis] {
		return nil, fmt.Errorf("tensor: split position %d out of range for dim %d", x.SplitAt, x.Shape[axis])
	}
	s1 := x.Shape.Clone()
	s1[axis] = x.SplitAt
	s2 := x.Shape.Clone()
	s2[axis] = x.Shape[axis] - x.SplitAt
	m := &Meta{Kind: KindTuple, Shape: s1, Shape2: s2, Foldable: x.Foldable}
	return m, nil
}

func inferMerge(args []*Meta) (*Meta, error) {
	w, err := tensorArg(OpMerge, args, 0)
	if err != nil {
		return nil, err
	}
	count, err := intArg(OpMerge, args, 1, "count")
	if err != nil {
		return nil, err
	}
	if len(w.Shape) != 4 {
		return nil, fmt.Errorf("tensor: merge wants an OIHW weight, got %v", w.Shape)
	}
	if count < 2 {
		return nil, fmt.Errorf("tensor: merge count %d must be >= 2", count)
	}
	// merge's zero-pad band layout is defined by the original group
	// structure, recoverable from the weight alone only when the conv
	// has as many output channels as input channels (cout == C, so
	// groups = cout/cinPG) — the ResNeXt/depthwise case TASO's
	// merge_gconv targets. The rewrite's condition enforces cout == C.
	cout, cinPG := w.Shape[0], w.Shape[1]
	if cout%cinPG != 0 {
		return nil, fmt.Errorf("tensor: merge needs cinPG %d dividing out-channels %d", cinPG, cout)
	}
	groups := cout / cinPG
	if groups%int(count) != 0 {
		return nil, fmt.Errorf("tensor: merge count %d does not divide groups %d", count, groups)
	}
	m := TensorMeta(Shape{w.Shape[0], w.Shape[1] * int(count), w.Shape[2], w.Shape[3]})
	m.Foldable = w.Foldable
	return m, nil
}

func inferReshape(args []*Meta) (*Meta, error) {
	x, err := tensorArg(OpReshape, args, 0)
	if err != nil {
		return nil, err
	}
	if args[1].Kind != KindStr {
		return nil, fmt.Errorf("tensor: reshape target must be a string, got %v", args[1])
	}
	shape, err := ParseShape(args[1].SVal)
	if err != nil {
		return nil, err
	}
	if shape.Volume() != x.Shape.Volume() {
		return nil, fmt.Errorf("tensor: reshape %v -> %v changes volume", x.Shape, shape)
	}
	m := TensorMeta(shape)
	m.Foldable = x.Foldable
	return m, nil
}
