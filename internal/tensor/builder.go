package tensor

import (
	"fmt"
	"strconv"
	"strings"
)

// Builder constructs tensor graphs with shape checking at every step.
// Nodes are hash-consed so identical subexpressions share structure
// (maximal sharing makes graph cost well defined and graph hashes
// sharing-insensitive). Errors are sticky: the first inference error
// is recorded and Finish reports it; intermediate methods keep
// returning placeholder nodes so call chains stay readable.
type Builder struct {
	err  error
	memo map[string]*Node
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{memo: make(map[string]*Node)}
}

// Err returns the first construction error, if any.
func (b *Builder) Err() error { return b.err }

func (b *Builder) fail(err error) *Node {
	if b.err == nil {
		b.err = err
	}
	return &Node{Op: OpInt, Meta: IntMeta(0)}
}

// mk hash-conses and shape-checks one node.
func (b *Builder) mk(op Op, ival int64, sval string, inputs ...*Node) *Node {
	if b.err != nil {
		return &Node{Op: OpInt, Meta: IntMeta(0)}
	}
	var key strings.Builder
	key.WriteString(strconv.Itoa(int(op)))
	key.WriteByte('|')
	key.WriteString(strconv.FormatInt(ival, 10))
	key.WriteByte('|')
	key.WriteString(sval)
	for _, in := range inputs {
		fmt.Fprintf(&key, "|%p", in)
	}
	if n, ok := b.memo[key.String()]; ok {
		return n
	}
	args := make([]*Meta, len(inputs))
	for i, in := range inputs {
		args[i] = in.Meta
	}
	meta, err := Infer(op, ival, sval, args)
	if err != nil {
		return b.fail(err)
	}
	n := &Node{Op: op, Int: ival, Str: sval, Inputs: inputs, Meta: meta}
	b.memo[key.String()] = n
	return n
}

// IntParam creates (or reuses) an integer parameter node.
func (b *Builder) IntParam(v int64) *Node { return b.mk(OpInt, v, "") }

// StrParam creates (or reuses) a string parameter node.
func (b *Builder) StrParam(s string) *Node { return b.mk(OpStr, 0, s) }

// Input declares an input tensor with the given shape.
func (b *Builder) Input(name string, dims ...int) *Node {
	return b.mk(OpInput, 0, Ident(name, Shape(dims)))
}

// Weight declares a weight tensor with the given shape.
func (b *Builder) Weight(name string, dims ...int) *Node {
	return b.mk(OpWeight, 0, Ident(name, Shape(dims)))
}

// Ewadd is element-wise addition.
func (b *Builder) Ewadd(x, y *Node) *Node { return b.mk(OpEwadd, 0, "", x, y) }

// Ewmul is element-wise multiplication.
func (b *Builder) Ewmul(x, y *Node) *Node { return b.mk(OpEwmul, 0, "", x, y) }

// Matmul multiplies x by y with a fused activation mode.
func (b *Builder) Matmul(act int64, x, y *Node) *Node {
	return b.mk(OpMatmul, 0, "", b.IntParam(act), x, y)
}

// Conv applies a (grouped) convolution.
func (b *Builder) Conv(strideH, strideW, pad, act int64, x, w *Node) *Node {
	return b.mk(OpConv, 0, "",
		b.IntParam(strideH), b.IntParam(strideW), b.IntParam(pad), b.IntParam(act), x, w)
}

// Relu applies a relu activation.
func (b *Builder) Relu(x *Node) *Node { return b.mk(OpRelu, 0, "", x) }

// Tanh applies a tanh activation.
func (b *Builder) Tanh(x *Node) *Node { return b.mk(OpTanh, 0, "", x) }

// Sigmoid applies a sigmoid activation.
func (b *Builder) Sigmoid(x *Node) *Node { return b.mk(OpSigmoid, 0, "", x) }

// PoolMax applies max pooling.
func (b *Builder) PoolMax(x *Node, kh, kw, sh, sw, pad, act int64) *Node {
	return b.mk(OpPoolMax, 0, "", x,
		b.IntParam(kh), b.IntParam(kw), b.IntParam(sh), b.IntParam(sw), b.IntParam(pad), b.IntParam(act))
}

// PoolAvg applies average pooling.
func (b *Builder) PoolAvg(x *Node, kh, kw, sh, sw, pad, act int64) *Node {
	return b.mk(OpPoolAvg, 0, "", x,
		b.IntParam(kh), b.IntParam(kw), b.IntParam(sh), b.IntParam(sw), b.IntParam(pad), b.IntParam(act))
}

// Transpose permutes axes.
func (b *Builder) Transpose(x *Node, perm ...int) *Node {
	return b.mk(OpTranspose, 0, "", x, b.StrParam(PermString(perm)))
}

// Enlarge zero-pads kernel k spatially to the size of ref.
func (b *Builder) Enlarge(k, ref *Node) *Node { return b.mk(OpEnlarge, 0, "", k, ref) }

// Concat concatenates 2..5 tensors along axis.
func (b *Builder) Concat(axis int64, xs ...*Node) *Node {
	op, err := ConcatOp(len(xs))
	if err != nil {
		return b.fail(err)
	}
	inputs := append([]*Node{b.IntParam(axis)}, xs...)
	return b.mk(op, 0, "", inputs...)
}

// Split splits x at the most recent concat boundary on axis and
// returns the two halves (split0 and split1 of the tuple).
func (b *Builder) Split(axis int64, x *Node) (*Node, *Node) {
	tt := b.mk(OpSplit, 0, "", b.IntParam(axis), x)
	return b.mk(OpSplit0, 0, "", tt), b.mk(OpSplit1, 0, "", tt)
}

// Merge rewrites a grouped-convolution weight to merge every count groups.
func (b *Builder) Merge(w *Node, count int64) *Node {
	return b.mk(OpMerge, 0, "", w, b.IntParam(count))
}

// Reshape reshapes x to the given dims.
func (b *Builder) Reshape(x *Node, dims ...int) *Node {
	return b.mk(OpReshape, 0, "", x, b.StrParam(Shape(dims).String()))
}

// Finish combines the outputs into a single-rooted Graph (§3.1: final
// outputs are folded together with noop nodes) and validates it.
func (b *Builder) Finish(outputs ...*Node) (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(outputs) == 0 {
		return nil, fmt.Errorf("tensor: Finish needs at least one output")
	}
	root := outputs[0]
	for _, out := range outputs[1:] {
		root = b.mk(OpNoop, 0, "", root, out)
	}
	if b.err != nil {
		return nil, b.err
	}
	g := &Graph{Root: root, Outputs: append([]*Node(nil), outputs...)}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustFinish is Finish for tests and model constructors with known-good
// shapes; it panics on error.
func (b *Builder) MustFinish(outputs ...*Node) *Graph {
	g, err := b.Finish(outputs...)
	if err != nil {
		panic(err)
	}
	return g
}
