package tensor

import (
	"strings"
	"testing"
)

func TestRenameTensors(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 8, 8)
	w := b.Weight("w", 8, 8)
	g, err := b.Finish(b.Relu(b.Matmul(ActNone, x, w)), b.Tanh(x))
	if err != nil {
		t.Fatal(err)
	}
	out, err := RenameTensors(g, map[string]string{"x": "act", "w": "kernel"})
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, `"act@8 8"`) || !strings.Contains(s, `"kernel@8 8"`) {
		t.Fatalf("names not substituted:\n%s", s)
	}
	if strings.Contains(s, `"x@`) || strings.Contains(s, `"w@`) {
		t.Fatalf("old names leak:\n%s", s)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("renamed graph invalid: %v", err)
	}
	// Sharing preserved: the single renamed x feeds both outputs.
	if out.OpCount() != g.OpCount() || out.NodeCount() != g.NodeCount() {
		t.Fatalf("structure changed: %d/%d nodes vs %d/%d",
			out.NodeCount(), out.OpCount(), g.NodeCount(), g.OpCount())
	}
	// Original untouched.
	if !strings.Contains(g.String(), `"x@8 8"`) {
		t.Fatal("original graph mutated")
	}
}

func TestRenameTensorsIdentity(t *testing.T) {
	b := NewBuilder()
	g, err := b.Finish(b.Relu(b.Input("x", 4, 4)))
	if err != nil {
		t.Fatal(err)
	}
	same, err := RenameTensors(g, map[string]string{"unrelated": "y"})
	if err != nil {
		t.Fatal(err)
	}
	if same != g {
		t.Fatal("no-op rename did not share the graph")
	}
	same, err = RenameTensors(g, nil)
	if err != nil || same != g {
		t.Fatalf("empty mapping: %v %v", same, err)
	}
}
