package tensor

import (
	"fmt"
	"strconv"
	"strings"

	"tensat/internal/sexpr"
)

// MarshalText renders the graph in a stable textual format: one
// S-expression per output line, with shared subgraphs written once and
// referenced through let-bindings:
//
//	(let t0 (conv 1 1 0 2 (input "x@1 3 32 32") (weight "w@8 3 3 3")))
//	(output (relu t0))
//	(output (poolmax t0 2 2 2 2 1 0))
//
// A node is bound when it is referenced more than once (so the DAG
// round-trips exactly, sharing included).
func (g *Graph) MarshalText() ([]byte, error) {
	refs := make(map[*Node]int)
	var count func(n *Node)
	count = func(n *Node) {
		refs[n]++
		if refs[n] > 1 {
			return
		}
		for _, in := range n.Inputs {
			count(in)
		}
	}
	for _, o := range g.Outputs {
		count(o)
	}

	names := make(map[*Node]string)
	var b strings.Builder
	var render func(n *Node) string
	render = func(n *Node) string {
		if name, ok := names[n]; ok {
			return name
		}
		var expr string
		switch n.Op {
		case OpInt:
			expr = strconv.FormatInt(n.Int, 10)
		case OpStr:
			expr = strconv.Quote(n.Str)
		case OpInput, OpWeight:
			expr = fmt.Sprintf("(%v %q)", n.Op, n.Str)
		default:
			parts := make([]string, 0, len(n.Inputs)+1)
			parts = append(parts, n.Op.String())
			for _, in := range n.Inputs {
				parts = append(parts, render(in))
			}
			expr = "(" + strings.Join(parts, " ") + ")"
		}
		// Bind shared non-leaf tensors to a name.
		if refs[n] > 1 && !n.IsParam() && n.Op != OpInput && n.Op != OpWeight {
			name := fmt.Sprintf("t%d", len(names))
			names[n] = name
			fmt.Fprintf(&b, "(let %s %s)\n", name, expr)
			return name
		}
		return expr
	}
	for _, o := range g.Outputs {
		fmt.Fprintf(&b, "(output %s)\n", render(o))
	}
	return []byte(b.String()), nil
}

// UnmarshalGraph parses the MarshalText format back into a Graph.
func UnmarshalGraph(data []byte) (*Graph, error) {
	exprs, err := sexpr.ParseMany(string(data))
	if err != nil {
		return nil, err
	}
	b := NewBuilder()
	bound := make(map[string]*Node)
	var outputs []*Node

	var build func(e *sexpr.Expr) (*Node, error)
	build = func(e *sexpr.Expr) (*Node, error) {
		if e.IsAtom() {
			if n, ok := bound[e.Atom]; ok {
				return n, nil
			}
			if v, err := strconv.ParseInt(e.Atom, 10, 64); err == nil {
				return b.IntParam(v), nil
			}
			return b.StrParam(e.Atom), nil
		}
		if len(e.List) == 0 {
			return nil, fmt.Errorf("tensor: empty expression")
		}
		head := e.List[0]
		if !head.IsAtom() {
			return nil, fmt.Errorf("tensor: expression head must be an atom")
		}
		op, ok := OpByName[head.Atom]
		if !ok {
			return nil, fmt.Errorf("tensor: unknown operator %q", head.Atom)
		}
		if op == OpInput || op == OpWeight {
			if len(e.List) != 2 || !e.List[1].IsAtom() {
				return nil, fmt.Errorf("tensor: %s wants one identifier", head.Atom)
			}
			name, shape, err := ParseIdent(e.List[1].Atom)
			if err != nil {
				return nil, err
			}
			if op == OpInput {
				return b.Input(name, shape...), nil
			}
			return b.Weight(name, shape...), nil
		}
		inputs := make([]*Node, 0, len(e.List)-1)
		for _, c := range e.List[1:] {
			in, err := build(c)
			if err != nil {
				return nil, err
			}
			inputs = append(inputs, in)
		}
		n := b.Raw(op, inputs...)
		if err := b.Err(); err != nil {
			return nil, err
		}
		return n, nil
	}

	for _, e := range exprs {
		if e.IsAtom() || len(e.List) < 2 || !e.List[0].IsAtom() {
			return nil, fmt.Errorf("tensor: top-level forms must be (let ...) or (output ...)")
		}
		switch e.List[0].Atom {
		case "let":
			if len(e.List) != 3 || !e.List[1].IsAtom() {
				return nil, fmt.Errorf("tensor: malformed let")
			}
			n, err := build(e.List[2])
			if err != nil {
				return nil, err
			}
			bound[e.List[1].Atom] = n
		case "output":
			if len(e.List) != 2 {
				return nil, fmt.Errorf("tensor: malformed output")
			}
			n, err := build(e.List[1])
			if err != nil {
				return nil, err
			}
			outputs = append(outputs, n)
		default:
			return nil, fmt.Errorf("tensor: unknown top-level form %q", e.List[0].Atom)
		}
	}
	if len(outputs) == 0 {
		return nil, fmt.Errorf("tensor: no (output ...) forms")
	}
	return b.Finish(outputs...)
}

// Raw builds a node for op over pre-built inputs (shape-checked); used
// by deserialization. Literal payload ops must go through IntParam,
// StrParam, Input or Weight instead.
func (b *Builder) Raw(op Op, inputs ...*Node) *Node {
	switch op {
	case OpInt, OpStr, OpInput, OpWeight:
		b.fail(fmt.Errorf("tensor: Raw cannot build literal op %v", op))
		return &Node{Op: OpInt, Meta: IntMeta(0)}
	}
	return b.mk(op, 0, "", inputs...)
}

// Dot renders the graph in Graphviz dot format for visualization.
func (g *Graph) Dot() string {
	var b strings.Builder
	b.WriteString("digraph tensorgraph {\n  rankdir=BT;\n  node [shape=box, fontsize=10];\n")
	ids := make(map[*Node]int)
	for i, n := range g.Nodes() {
		ids[n] = i
		label := n.Op.String()
		switch n.Op {
		case OpInt:
			label = strconv.FormatInt(n.Int, 10)
		case OpStr:
			label = strconv.Quote(n.Str)
		case OpInput, OpWeight:
			label = fmt.Sprintf("%v %s", n.Op, n.Str)
		default:
			if n.Meta != nil && n.Meta.Kind == KindTensor {
				label = fmt.Sprintf("%v\\n[%v]", n.Op, n.Meta.Shape)
			}
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\"];\n", i, label)
	}
	for _, n := range g.Nodes() {
		for _, in := range n.Inputs {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", ids[in], ids[n])
		}
	}
	b.WriteString("}\n")
	return b.String()
}
