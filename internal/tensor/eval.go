package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense float64 tensor used by the reference interpreter.
// The interpreter exists to validate rewrite soundness end to end: an
// optimized graph must compute the same values as the original (the
// guarantee §2.3 derives from sound rules), so tests evaluate both on
// deterministic pseudo-random inputs and compare.
type Tensor struct {
	Shape Shape
	Data  []float64
}

// NewTensor allocates a zero tensor.
func NewTensor(shape Shape) *Tensor {
	return &Tensor{Shape: shape.Clone(), Data: make([]float64, shape.Volume())}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.offset(idx)] }

// Set writes the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d vs shape rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	for i, d := range idx {
		if d < 0 || d >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + d
	}
	return off
}

// FillPseudo fills the tensor with deterministic pseudo-random values
// in [-1, 1) derived from the seed (splitmix64).
func (t *Tensor) FillPseudo(seed uint64) {
	x := seed
	for i := range t.Data {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		t.Data[i] = float64(z%2000000)/1000000 - 1
	}
}

// MaxAbsDiff returns the largest element-wise absolute difference.
func (t *Tensor) MaxAbsDiff(o *Tensor) float64 {
	if !t.Shape.Equal(o.Shape) {
		return math.Inf(1)
	}
	worst := 0.0
	for i := range t.Data {
		if d := math.Abs(t.Data[i] - o.Data[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// MaxRelDiff returns the largest element-wise relative difference,
// |a-b| / (1 + |a| + |b|). Rewrites legitimately reassociate long
// reductions, so equivalence checks must tolerate rounding drift
// proportional to magnitude.
func (t *Tensor) MaxRelDiff(o *Tensor) float64 {
	if !t.Shape.Equal(o.Shape) {
		return math.Inf(1)
	}
	worst := 0.0
	for i := range t.Data {
		a, b := t.Data[i], o.Data[i]
		if d := math.Abs(a-b) / (1 + math.Abs(a) + math.Abs(b)); d > worst {
			worst = d
		}
	}
	return worst
}

// tuple carries split results through evaluation.
type tuple struct{ a, b *Tensor }

// Evaluator executes tensor graphs numerically. Input and weight
// tensors are generated deterministically from their identifiers, so
// two graphs over the same leaves are directly comparable.
type Evaluator struct {
	memo map[*Node]any
}

// NewEvaluator returns an empty evaluator.
func NewEvaluator() *Evaluator { return &Evaluator{memo: make(map[*Node]any)} }

// EvalOutputs evaluates all outputs of g.
func (e *Evaluator) EvalOutputs(g *Graph) ([]*Tensor, error) {
	outs := make([]*Tensor, len(g.Outputs))
	for i, o := range g.Outputs {
		v, err := e.eval(o)
		if err != nil {
			return nil, err
		}
		t, ok := v.(*Tensor)
		if !ok {
			return nil, fmt.Errorf("tensor: output %d is not a tensor", i)
		}
		outs[i] = t
	}
	return outs, nil
}

func hashIdent(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func (e *Evaluator) eval(n *Node) (any, error) {
	if v, ok := e.memo[n]; ok {
		return v, nil
	}
	v, err := e.compute(n)
	if err != nil {
		return nil, fmt.Errorf("%v: %w", n.Op, err)
	}
	e.memo[n] = v
	return v, nil
}

func (e *Evaluator) evalT(n *Node) (*Tensor, error) {
	v, err := e.eval(n)
	if err != nil {
		return nil, err
	}
	t, ok := v.(*Tensor)
	if !ok {
		return nil, fmt.Errorf("tensor: expected tensor, got %T", v)
	}
	return t, nil
}

func activate(act int64, v float64) float64 {
	switch act {
	case ActRelu:
		if v < 0 {
			return 0
		}
		return v
	case ActSigmoid:
		return 1 / (1 + math.Exp(-v))
	case ActTanh:
		return math.Tanh(v)
	default:
		return v
	}
}

func (e *Evaluator) compute(n *Node) (any, error) {
	switch n.Op {
	case OpInt, OpStr:
		return n, nil // parameters are consumed through n.Inputs directly
	case OpInput, OpWeight:
		_, shape, err := ParseIdent(n.Str)
		if err != nil {
			return nil, err
		}
		t := NewTensor(shape)
		t.FillPseudo(hashIdent(n.Str))
		return t, nil
	case OpEwadd, OpEwmul:
		a, err := e.evalT(n.Inputs[0])
		if err != nil {
			return nil, err
		}
		b, err := e.evalT(n.Inputs[1])
		if err != nil {
			return nil, err
		}
		out := NewTensor(a.Shape)
		for i := range out.Data {
			if n.Op == OpEwadd {
				out.Data[i] = a.Data[i] + b.Data[i]
			} else {
				out.Data[i] = a.Data[i] * b.Data[i]
			}
		}
		return out, nil
	case OpRelu, OpTanh, OpSigmoid:
		a, err := e.evalT(n.Inputs[0])
		if err != nil {
			return nil, err
		}
		mode := map[Op]int64{OpRelu: ActRelu, OpTanh: ActTanh, OpSigmoid: ActSigmoid}[n.Op]
		out := NewTensor(a.Shape)
		for i, v := range a.Data {
			out.Data[i] = activate(mode, v)
		}
		return out, nil
	case OpMatmul:
		act := n.Inputs[0].Int
		a, err := e.evalT(n.Inputs[1])
		if err != nil {
			return nil, err
		}
		b, err := e.evalT(n.Inputs[2])
		if err != nil {
			return nil, err
		}
		return matmulEval(act, a, b)
	case OpConv:
		return e.convEval(n)
	case OpPoolMax, OpPoolAvg:
		return e.poolEval(n)
	case OpTranspose:
		a, err := e.evalT(n.Inputs[0])
		if err != nil {
			return nil, err
		}
		perm, err := ParsePerm(n.Inputs[1].Str)
		if err != nil {
			return nil, err
		}
		return transposeEval(a, perm)
	case OpEnlarge:
		k, err := e.evalT(n.Inputs[0])
		if err != nil {
			return nil, err
		}
		ref, err := e.evalT(n.Inputs[1])
		if err != nil {
			return nil, err
		}
		return enlargeEval(k, ref.Shape)
	case OpConcat2, OpConcat3, OpConcat4, OpConcat5:
		axis := int(n.Inputs[0].Int)
		parts := make([]*Tensor, 0, len(n.Inputs)-1)
		for _, in := range n.Inputs[1:] {
			t, err := e.evalT(in)
			if err != nil {
				return nil, err
			}
			parts = append(parts, t)
		}
		return concatEval(axis, parts)
	case OpSplit:
		axis := int(n.Inputs[0].Int)
		x, err := e.evalT(n.Inputs[1])
		if err != nil {
			return nil, err
		}
		meta := n.Inputs[1].Meta
		if meta == nil || !meta.HasSplit || meta.SplitAxis != axis {
			return nil, fmt.Errorf("split without a concat marker")
		}
		a, b, err := splitEval(axis, meta.SplitAt, x)
		if err != nil {
			return nil, err
		}
		return tuple{a: a, b: b}, nil
	case OpSplit0, OpSplit1:
		v, err := e.eval(n.Inputs[0])
		if err != nil {
			return nil, err
		}
		tt, ok := v.(tuple)
		if !ok {
			return nil, fmt.Errorf("split0/1 over non-tuple %T", v)
		}
		if n.Op == OpSplit0 {
			return tt.a, nil
		}
		return tt.b, nil
	case OpMerge:
		w, err := e.evalT(n.Inputs[0])
		if err != nil {
			return nil, err
		}
		return mergeEval(w, int(n.Inputs[1].Int))
	case OpReshape:
		a, err := e.evalT(n.Inputs[0])
		if err != nil {
			return nil, err
		}
		shape, err := ParseShape(n.Inputs[1].Str)
		if err != nil {
			return nil, err
		}
		out := NewTensor(shape)
		copy(out.Data, a.Data)
		return out, nil
	case OpNoop:
		// Evaluate both sides; the noop itself carries no value.
		if _, err := e.evalT(n.Inputs[0]); err != nil {
			return nil, err
		}
		if _, err := e.evalT(n.Inputs[1]); err != nil {
			return nil, err
		}
		return NewTensor(nil), nil
	default:
		return nil, fmt.Errorf("no interpreter for %v", n.Op)
	}
}

func matmulEval(act int64, a, b *Tensor) (*Tensor, error) {
	n := len(a.Shape)
	if n < 2 || len(b.Shape) != n || a.Shape[n-1] != b.Shape[n-2] {
		return nil, fmt.Errorf("matmul shapes %v x %v", a.Shape, b.Shape)
	}
	batch := 1
	for i := 0; i < n-2; i++ {
		batch *= a.Shape[i]
	}
	m, k, p := a.Shape[n-2], a.Shape[n-1], b.Shape[n-1]
	outShape := a.Shape.Clone()
	outShape[n-1] = p
	out := NewTensor(outShape)
	for bi := 0; bi < batch; bi++ {
		ao, bo, oo := bi*m*k, bi*k*p, bi*m*p
		for i := 0; i < m; i++ {
			for j := 0; j < p; j++ {
				sum := 0.0
				for l := 0; l < k; l++ {
					sum += a.Data[ao+i*k+l] * b.Data[bo+l*p+j]
				}
				out.Data[oo+i*p+j] = activate(act, sum)
			}
		}
	}
	return out, nil
}

// convEval implements grouped convolution in NCHW/OIHW layout with the
// framework-standard SAME/VALID padding.
func (e *Evaluator) convEval(n *Node) (*Tensor, error) {
	sh, sw := int(n.Inputs[0].Int), int(n.Inputs[1].Int)
	pad, act := n.Inputs[2].Int, n.Inputs[3].Int
	x, err := e.evalT(n.Inputs[4])
	if err != nil {
		return nil, err
	}
	w, err := e.evalT(n.Inputs[5])
	if err != nil {
		return nil, err
	}
	nb, c, h, wid := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	cout, cinPG, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	groups := c / cinPG
	coutPG := cout / groups
	oh, ow, err := spatialOut(h, wid, kh, kw, sh, sw, pad)
	if err != nil {
		return nil, err
	}
	padTop, padLeft := 0, 0
	if pad == PadSame {
		padTop = ((oh-1)*sh + kh - h) / 2
		padLeft = ((ow-1)*sw + kw - wid) / 2
		if padTop < 0 {
			padTop = 0
		}
		if padLeft < 0 {
			padLeft = 0
		}
	}
	out := NewTensor(Shape{nb, cout, oh, ow})
	for b := 0; b < nb; b++ {
		for o := 0; o < cout; o++ {
			g := o / coutPG
			for y := 0; y < oh; y++ {
				for xx := 0; xx < ow; xx++ {
					sum := 0.0
					for ci := 0; ci < cinPG; ci++ {
						ic := g*cinPG + ci
						for dy := 0; dy < kh; dy++ {
							iy := y*sh + dy - padTop
							if iy < 0 || iy >= h {
								continue
							}
							for dx := 0; dx < kw; dx++ {
								ix := xx*sw + dx - padLeft
								if ix < 0 || ix >= wid {
									continue
								}
								sum += x.At(b, ic, iy, ix) * w.At(o, ci, dy, dx)
							}
						}
					}
					out.Set(activate(act, sum), b, o, y, xx)
				}
			}
		}
	}
	return out, nil
}

func (e *Evaluator) poolEval(n *Node) (*Tensor, error) {
	x, err := e.evalT(n.Inputs[0])
	if err != nil {
		return nil, err
	}
	kh, kw := int(n.Inputs[1].Int), int(n.Inputs[2].Int)
	sh, sw := int(n.Inputs[3].Int), int(n.Inputs[4].Int)
	pad, act := n.Inputs[5].Int, n.Inputs[6].Int
	nb, c, h, wid := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow, err := spatialOut(h, wid, kh, kw, sh, sw, pad)
	if err != nil {
		return nil, err
	}
	padTop, padLeft := 0, 0
	if pad == PadSame {
		padTop = ((oh-1)*sh + kh - h) / 2
		padLeft = ((ow-1)*sw + kw - wid) / 2
		if padTop < 0 {
			padTop = 0
		}
		if padLeft < 0 {
			padLeft = 0
		}
	}
	out := NewTensor(Shape{nb, c, oh, ow})
	for b := 0; b < nb; b++ {
		for ci := 0; ci < c; ci++ {
			for y := 0; y < oh; y++ {
				for xx := 0; xx < ow; xx++ {
					best := math.Inf(-1)
					sum, count := 0.0, 0
					for dy := 0; dy < kh; dy++ {
						iy := y*sh + dy - padTop
						if iy < 0 || iy >= h {
							continue
						}
						for dx := 0; dx < kw; dx++ {
							ix := xx*sw + dx - padLeft
							if ix < 0 || ix >= wid {
								continue
							}
							v := x.At(b, ci, iy, ix)
							sum += v
							count++
							if v > best {
								best = v
							}
						}
					}
					v := best
					if n.Op == OpPoolAvg {
						if count == 0 {
							v = 0
						} else {
							v = sum / float64(count)
						}
					}
					out.Set(activate(act, v), b, ci, y, xx)
				}
			}
		}
	}
	return out, nil
}

func transposeEval(a *Tensor, perm []int) (*Tensor, error) {
	if len(perm) != len(a.Shape) {
		return nil, fmt.Errorf("transpose rank mismatch")
	}
	outShape := make(Shape, len(perm))
	for i, p := range perm {
		outShape[i] = a.Shape[p]
	}
	out := NewTensor(outShape)
	idx := make([]int, len(perm))
	src := make([]int, len(perm))
	var rec func(d int)
	rec = func(d int) {
		if d == len(perm) {
			for i, p := range perm {
				src[p] = idx[i]
			}
			out.Set(a.At(src...), idx...)
			return
		}
		for idx[d] = 0; idx[d] < outShape[d]; idx[d]++ {
			rec(d + 1)
		}
		idx[d] = 0
	}
	rec(0)
	return out, nil
}

// enlargeEval zero-pads a kernel spatially, centered, so that under
// SAME padding and stride 1 the convolution is unchanged.
func enlargeEval(k *Tensor, ref Shape) (*Tensor, error) {
	kh, kw := k.Shape[2], k.Shape[3]
	rh, rw := ref[2], ref[3]
	offH, offW := (rh-kh)/2, (rw-kw)/2
	out := NewTensor(Shape{k.Shape[0], k.Shape[1], rh, rw})
	for o := 0; o < k.Shape[0]; o++ {
		for i := 0; i < k.Shape[1]; i++ {
			for y := 0; y < kh; y++ {
				for x := 0; x < kw; x++ {
					out.Set(k.At(o, i, y, x), o, i, y+offH, x+offW)
				}
			}
		}
	}
	return out, nil
}

func concatEval(axis int, parts []*Tensor) (*Tensor, error) {
	first := parts[0]
	outShape := first.Shape.Clone()
	for _, p := range parts[1:] {
		outShape[axis] += p.Shape[axis]
	}
	out := NewTensor(outShape)
	// Copy slabs: outer = product of dims before axis, inner = after.
	outer := 1
	for i := 0; i < axis; i++ {
		outer *= outShape[i]
	}
	inner := 1
	for i := axis + 1; i < len(outShape); i++ {
		inner *= outShape[i]
	}
	dstAxis := 0
	for _, p := range parts {
		pa := p.Shape[axis]
		for o := 0; o < outer; o++ {
			srcOff := o * pa * inner
			dstOff := (o*outShape[axis] + dstAxis) * inner
			copy(out.Data[dstOff:dstOff+pa*inner], p.Data[srcOff:srcOff+pa*inner])
		}
		dstAxis += pa
	}
	return out, nil
}

func splitEval(axis, at int, x *Tensor) (*Tensor, *Tensor, error) {
	if at <= 0 || at >= x.Shape[axis] {
		return nil, nil, fmt.Errorf("split position %d out of range", at)
	}
	s1 := x.Shape.Clone()
	s1[axis] = at
	s2 := x.Shape.Clone()
	s2[axis] = x.Shape[axis] - at
	a, b := NewTensor(s1), NewTensor(s2)
	outer := 1
	for i := 0; i < axis; i++ {
		outer *= x.Shape[i]
	}
	inner := 1
	for i := axis + 1; i < len(x.Shape); i++ {
		inner *= x.Shape[i]
	}
	for o := 0; o < outer; o++ {
		srcOff := o * x.Shape[axis] * inner
		copy(a.Data[o*at*inner:(o+1)*at*inner], x.Data[srcOff:srcOff+at*inner])
		rest := x.Shape[axis] - at
		copy(b.Data[o*rest*inner:(o+1)*rest*inner], x.Data[srcOff+at*inner:srcOff+x.Shape[axis]*inner])
	}
	return a, b, nil
}

// mergeEval implements TASO's merge_gconv: every `count` groups of a
// grouped convolution's weight merge into one, zero-padding each
// output channel's band of the widened input block so the convolution
// is unchanged. The group geometry follows the cout == C convention
// pinned by inferMerge: original groups = cout/cinPG, so output
// channel o sat in group o/cinPG and its weights land in band
// (o/cinPG) mod count of the merged block.
func mergeEval(w *Tensor, count int) (*Tensor, error) {
	cout, cinPG, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	if cout%cinPG != 0 || (cout/cinPG)%count != 0 {
		return nil, fmt.Errorf("merge: invalid geometry (%d, %d, count %d)", cout, cinPG, count)
	}
	out := NewTensor(Shape{cout, cinPG * count, kh, kw})
	for o := 0; o < cout; o++ {
		band := (o / cinPG) % count
		for ci := 0; ci < cinPG; ci++ {
			for y := 0; y < kh; y++ {
				for x := 0; x < kw; x++ {
					out.Set(w.At(o, ci, y, x), o, band*cinPG+ci, y, x)
				}
			}
		}
	}
	return out, nil
}
