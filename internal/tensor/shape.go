package tensor

import (
	"fmt"
	"strconv"
	"strings"
)

// Shape is a tensor shape, outermost dimension first. Convolutional
// tensors use NCHW layout; convolution weights use (Cout, CinPerGroup,
// KH, KW); matmul operands use (..., M, K) x (..., K, N).
type Shape []int

// Volume returns the number of elements.
func (s Shape) Volume() int {
	v := 1
	for _, d := range s {
		v *= d
	}
	return v
}

// Clone returns a copy of s.
func (s Shape) Clone() Shape { return append(Shape(nil), s...) }

// Equal reports element-wise equality.
func (s Shape) Equal(t Shape) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// String renders the shape in the Table 2 footnote format: "d1 d2 ...".
func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = strconv.Itoa(d)
	}
	return strings.Join(parts, " ")
}

// ParseShape parses "d1 d2 ..." (the format used in reshape payloads
// and input/weight identifiers).
func ParseShape(s string) (Shape, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return nil, fmt.Errorf("tensor: empty shape string")
	}
	out := make(Shape, len(fields))
	for i, f := range fields {
		d, err := strconv.Atoi(f)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("tensor: bad dimension %q in shape %q", f, s)
		}
		out[i] = d
	}
	return out, nil
}

// ParsePerm parses an axis permutation "a1 a2 ..." and validates it is
// a permutation of 0..n-1.
func ParsePerm(s string) ([]int, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return nil, fmt.Errorf("tensor: empty permutation string")
	}
	perm := make([]int, len(fields))
	seen := make([]bool, len(fields))
	for i, f := range fields {
		a, err := strconv.Atoi(f)
		if err != nil || a < 0 || a >= len(fields) || seen[a] {
			return nil, fmt.Errorf("tensor: bad permutation %q", s)
		}
		perm[i] = a
		seen[a] = true
	}
	return perm, nil
}

// PermString renders a permutation in the payload format.
func PermString(perm []int) string {
	parts := make([]string, len(perm))
	for i, a := range perm {
		parts[i] = strconv.Itoa(a)
	}
	return strings.Join(parts, " ")
}

// ParseIdent parses an input/weight identifier "name@d1 d2 ..." into
// its name and shape.
func ParseIdent(s string) (name string, shape Shape, err error) {
	at := strings.IndexByte(s, '@')
	if at <= 0 {
		return "", nil, fmt.Errorf("tensor: identifier %q missing name@shape separator", s)
	}
	shape, err = ParseShape(s[at+1:])
	if err != nil {
		return "", nil, err
	}
	return s[:at], shape, nil
}

// Ident builds an identifier payload from a name and shape.
func Ident(name string, shape Shape) string {
	return name + "@" + shape.String()
}
