// Package tensor defines TENSAT's tensor computation graph
// representation (§3.1 of the paper): the operator set of Table 2,
// tensor shapes, a shape-inference engine, and single-rooted DAGs with
// a builder API. It mirrors TASO's representation with the paper's
// modifications (single root via noop, explicit split0/split1).
package tensor

import "fmt"

// Op enumerates the operators of Table 2 plus the two literal node
// kinds (integer and string parameters are themselves graph nodes,
// matching the paper's typing: N = integer type, S = string type).
type Op uint16

const (
	// OpInt is an integer literal node (N type): strides, axes,
	// padding and activation modes.
	OpInt Op = iota
	// OpStr is a string literal node (S type): axis permutations and
	// shapes, in the Table 2 footnote formats.
	OpStr
	// OpInput is an input tensor identifier: "name@d1 d2 ...".
	OpInput
	// OpWeight is a weight tensor identifier: "name@d1 d2 ...".
	OpWeight
	// OpEwadd is element-wise addition: (T, T) -> T.
	OpEwadd
	// OpEwmul is element-wise multiplication: (T, T) -> T.
	OpEwmul
	// OpMatmul is matrix multiplication with fused activation:
	// (N activation, T, T) -> T.
	OpMatmul
	// OpConv is grouped convolution:
	// (N strideH, N strideW, N padding, N activation, T input, T weight) -> T.
	OpConv
	// OpRelu, OpTanh, OpSigmoid are activations: T -> T.
	OpRelu
	OpTanh
	OpSigmoid
	// OpPoolMax is max pooling:
	// (T input, N kernelH, N kernelW, N strideH, N strideW, N padding, N activation) -> T.
	OpPoolMax
	// OpPoolAvg is average pooling, same signature as OpPoolMax.
	OpPoolAvg
	// OpTranspose permutes axes: (T, S perm) -> T.
	OpTranspose
	// OpEnlarge zero-pads a convolution kernel spatially to match a
	// reference kernel: (T kernel, T refKernel) -> T.
	OpEnlarge
	// OpConcat2..OpConcat5 concatenate along an axis:
	// (N axis, T, ...) -> T. One op per arity as in the paper.
	OpConcat2
	OpConcat3
	OpConcat4
	OpConcat5
	// OpSplit splits a tensor in two at the most recent concat
	// boundary: (N axis, T) -> TT.
	OpSplit
	// OpSplit0 and OpSplit1 project a tensor tuple: TT -> T.
	OpSplit0
	OpSplit1
	// OpMerge updates a grouped-convolution weight to merge every
	// `count` groups: (T weight, N count) -> T.
	OpMerge
	// OpReshape reshapes a tensor: (T, S shape) -> T.
	OpReshape
	// OpNoop combines two outputs to make the graph single-rooted:
	// (T, T) -> T. Never rewritten; zero cost.
	OpNoop

	// NumOps is the number of ops; keep last.
	NumOps
)

// Activation modes (N-typed parameters), following TASO.
const (
	ActNone    int64 = 0
	ActSigmoid int64 = 1
	ActRelu    int64 = 2
	ActTanh    int64 = 3
)

// Padding modes (N-typed parameters), following TASO.
const (
	PadSame  int64 = 0
	PadValid int64 = 1
)

var opNames = [NumOps]string{
	OpInt:       "int",
	OpStr:       "str",
	OpInput:     "input",
	OpWeight:    "weight",
	OpEwadd:     "ewadd",
	OpEwmul:     "ewmul",
	OpMatmul:    "matmul",
	OpConv:      "conv",
	OpRelu:      "relu",
	OpTanh:      "tanh",
	OpSigmoid:   "sigmoid",
	OpPoolMax:   "poolmax",
	OpPoolAvg:   "poolavg",
	OpTranspose: "transpose",
	OpEnlarge:   "enlarge",
	OpConcat2:   "concat2",
	OpConcat3:   "concat3",
	OpConcat4:   "concat4",
	OpConcat5:   "concat5",
	OpSplit:     "split",
	OpSplit0:    "split0",
	OpSplit1:    "split1",
	OpMerge:     "merge",
	OpReshape:   "reshape",
	OpNoop:      "noop",
}

// String returns the operator's name as used in rule S-expressions.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", uint16(o))
}

// OpNames returns the full name table, indexed by Op. The slice is
// shared; callers must not modify it.
func OpNames() []string { return opNames[:] }

// OpByName maps rule-text operator names back to Ops.
var OpByName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op, name := range opNames {
		m[name] = Op(op)
	}
	return m
}()

// Arity returns the number of children each operator takes, or -1 for
// the literal leaves (OpInt, OpStr, OpInput, OpWeight) which take none
// but carry payloads.
func (o Op) Arity() int {
	switch o {
	case OpInt, OpStr, OpInput, OpWeight:
		return 0
	case OpRelu, OpTanh, OpSigmoid, OpSplit0, OpSplit1:
		return 1
	case OpEwadd, OpEwmul, OpTranspose, OpEnlarge, OpSplit, OpMerge, OpReshape, OpNoop:
		return 2
	case OpMatmul, OpConcat2:
		return 3
	case OpConcat3:
		return 4
	case OpConcat4:
		return 5
	case OpConcat5:
		return 6
	case OpPoolMax, OpPoolAvg:
		return 7
	case OpConv:
		return 6
	default:
		return -1
	}
}

// ConcatOp returns the concat operator for n inputs (2 <= n <= 5).
func ConcatOp(n int) (Op, error) {
	switch n {
	case 2:
		return OpConcat2, nil
	case 3:
		return OpConcat3, nil
	case 4:
		return OpConcat4, nil
	case 5:
		return OpConcat5, nil
	default:
		return 0, fmt.Errorf("tensor: no concat operator for %d inputs", n)
	}
}

// ConcatArity returns how many tensors a concat op joins, or 0.
func ConcatArity(o Op) int {
	switch o {
	case OpConcat2:
		return 2
	case OpConcat3:
		return 3
	case OpConcat4:
		return 4
	case OpConcat5:
		return 5
	default:
		return 0
	}
}
