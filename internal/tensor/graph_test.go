package tensor

import (
	"testing"
	"testing/quick"
)

func smallGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	x := b.Input("x", 8, 32)
	w1 := b.Weight("w1", 32, 16)
	w2 := b.Weight("w2", 32, 16)
	h1 := b.Matmul(ActNone, x, w1)
	h2 := b.Matmul(ActNone, x, w2)
	out := b.Ewadd(h1, h2)
	g, err := b.Finish(out)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuilderBuildsValidGraph(t *testing.T) {
	g := smallGraph(t)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Outputs) != 1 || g.Root != g.Outputs[0] {
		t.Fatal("single-output graph should not get a noop root")
	}
	if !g.Outputs[0].Meta.Shape.Equal(Shape{8, 16}) {
		t.Fatalf("output shape = %v", g.Outputs[0].Meta.Shape)
	}
}

func TestBuilderHashConsing(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 4, 4)
	a1 := b.Relu(x)
	a2 := b.Relu(x)
	if a1 != a2 {
		t.Fatal("identical nodes not shared")
	}
	if b.Input("x", 4, 4) != x {
		t.Fatal("identical inputs not shared")
	}
}

func TestBuilderStickyError(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 4, 4)
	y := b.Input("y", 5, 5)
	bad := b.Ewadd(x, y) // shape mismatch
	_ = b.Relu(bad)      // chains keep working
	if _, err := b.Finish(bad); err == nil {
		t.Fatal("Finish did not report the builder error")
	}
	if b.Err() == nil {
		t.Fatal("Err() lost the error")
	}
}

func TestMultiOutputNoopRoot(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 4, 8)
	w := b.Weight("w", 8, 8)
	o1 := b.Matmul(ActNone, x, w)
	o2 := b.Relu(o1)
	o3 := b.Tanh(o1)
	g, err := b.Finish(o1, o2, o3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Root.Op != OpNoop {
		t.Fatalf("root op = %v, want noop", g.Root.Op)
	}
	// Two noops chain three outputs.
	if h := g.OpHistogram(); h[OpNoop] != 2 {
		t.Fatalf("noop count = %d, want 2", h[OpNoop])
	}
}

func TestGraphNodesTopological(t *testing.T) {
	g := smallGraph(t)
	pos := make(map[*Node]int)
	for i, n := range g.Nodes() {
		pos[n] = i
	}
	for _, n := range g.Nodes() {
		for _, in := range n.Inputs {
			if pos[in] >= pos[n] {
				t.Fatalf("input %v after user %v", in.Op, n.Op)
			}
		}
	}
}

func TestGraphHashInsensitiveToBuildOrder(t *testing.T) {
	build := func(swap bool) *Graph {
		b := NewBuilder()
		x := b.Input("x", 8, 32)
		w1 := b.Weight("w1", 32, 16)
		w2 := b.Weight("w2", 32, 16)
		var h1, h2 *Node
		if swap {
			h2 = b.Matmul(ActNone, x, w2)
			h1 = b.Matmul(ActNone, x, w1)
		} else {
			h1 = b.Matmul(ActNone, x, w1)
			h2 = b.Matmul(ActNone, x, w2)
		}
		return b.MustFinish(b.Ewadd(h1, h2))
	}
	if build(false).Hash() != build(true).Hash() {
		t.Fatal("hash depends on construction order")
	}
}

func TestGraphHashDistinguishesGraphs(t *testing.T) {
	g1 := smallGraph(t)
	b := NewBuilder()
	x := b.Input("x", 8, 32)
	w1 := b.Weight("w1", 32, 16)
	w2 := b.Weight("w2", 32, 16)
	h := b.Matmul(ActNone, x, b.Concat(1, w1, w2))
	s0, s1 := b.Split(1, h)
	g2 := b.MustFinish(b.Ewadd(s0, s1))
	if g1.Hash() == g2.Hash() {
		t.Fatal("distinct graphs share a hash")
	}
}

func TestSplitBuilder(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 8, 32)
	w1 := b.Weight("w1", 32, 16)
	w2 := b.Weight("w2", 32, 24)
	cat := b.Concat(1, w1, w2)
	h := b.Matmul(ActNone, x, cat)
	s0, s1 := b.Split(1, h)
	g := b.MustFinish(s0, s1)
	if !g.Outputs[0].Meta.Shape.Equal(Shape{8, 16}) || !g.Outputs[1].Meta.Shape.Equal(Shape{8, 24}) {
		t.Fatalf("split outputs: %v / %v", g.Outputs[0].Meta.Shape, g.Outputs[1].Meta.Shape)
	}
}

func TestValidateCatchesMetaDrift(t *testing.T) {
	g := smallGraph(t)
	// Corrupt a meta and ensure Validate notices.
	for _, n := range g.Nodes() {
		if n.Op == OpEwadd {
			n.Meta = TensorMeta(Shape{1, 1})
		}
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted corrupted meta")
	}
}

func TestOpHelpers(t *testing.T) {
	if OpMatmul.String() != "matmul" {
		t.Fatalf("op name = %q", OpMatmul)
	}
	if OpByName["conv"] != OpConv {
		t.Fatal("OpByName broken")
	}
	if op, err := ConcatOp(3); err != nil || op != OpConcat3 {
		t.Fatalf("ConcatOp(3) = %v, %v", op, err)
	}
	if _, err := ConcatOp(6); err == nil {
		t.Fatal("ConcatOp(6) accepted")
	}
	if ConcatArity(OpConcat4) != 4 || ConcatArity(OpMatmul) != 0 {
		t.Fatal("ConcatArity broken")
	}
	for op := Op(0); op < NumOps; op++ {
		if op.Arity() < 0 {
			t.Fatalf("op %v has no arity", op)
		}
	}
}

func TestPermRoundTripProperty(t *testing.T) {
	f := func(seed []uint8) bool {
		n := len(seed)%5 + 1
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		for i, s := range seed {
			j, k := i%n, int(s)%n
			perm[j], perm[k] = perm[k], perm[j]
		}
		got, err := ParsePerm(PermString(perm))
		if err != nil || len(got) != n {
			return false
		}
		for i := range perm {
			if got[i] != perm[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestInferTransposeVolumePreserved(t *testing.T) {
	// Property: transpose preserves volume for random shapes/perms.
	f := func(dims []uint8, rot uint8) bool {
		n := len(dims)%4 + 1
		shape := make(Shape, n)
		for i := range shape {
			d := 1
			if len(dims) > 0 {
				d = int(dims[i%len(dims)])%7 + 1
			}
			shape[i] = d
		}
		perm := make([]int, n)
		for i := range perm {
			perm[i] = (i + int(rot)) % n
		}
		m, err := Infer(OpTranspose, 0, "", []*Meta{TensorMeta(shape), StrMeta(PermString(perm))})
		return err == nil && m.Shape.Volume() == shape.Volume()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
