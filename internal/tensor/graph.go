package tensor

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Node is a node of a tensor computation graph. Following §3.1, a node
// represents the output tensor of its operator, and its children are
// the operator's inputs (including N- and S-typed parameter nodes).
// Nodes are immutable once built; graphs share subgraphs by pointer.
type Node struct {
	Op     Op
	Int    int64  // payload when Op == OpInt
	Str    string // payload when Op is OpStr/OpInput/OpWeight
	Inputs []*Node
	Meta   *Meta
}

// IsParam reports whether the node is an N- or S-typed parameter.
func (n *Node) IsParam() bool { return n.Op == OpInt || n.Op == OpStr }

// treeHash computes a structural hash, memoized per node pointer.
func (n *Node) treeHash(memo map[*Node]uint64) uint64 {
	if h, ok := memo[n]; ok {
		return h
	}
	f := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		f.Write(buf[:])
	}
	put(uint64(n.Op))
	put(uint64(n.Int))
	f.Write([]byte(n.Str))
	put(uint64(len(n.Inputs)))
	for _, in := range n.Inputs {
		put(in.treeHash(memo))
	}
	h := f.Sum64()
	memo[n] = h
	return h
}

// String renders the node as an S-expression (inputs recursively).
func (n *Node) String() string {
	var b strings.Builder
	n.write(&b)
	return b.String()
}

func (n *Node) write(b *strings.Builder) {
	switch n.Op {
	case OpInt:
		fmt.Fprintf(b, "%d", n.Int)
		return
	case OpStr:
		fmt.Fprintf(b, "%q", n.Str)
		return
	case OpInput, OpWeight:
		fmt.Fprintf(b, "(%v %q)", n.Op, n.Str)
		return
	}
	b.WriteByte('(')
	b.WriteString(n.Op.String())
	for _, in := range n.Inputs {
		b.WriteByte(' ')
		in.write(b)
	}
	b.WriteByte(')')
}

// Graph is a single-rooted tensor computation DAG. Outputs holds the
// real output nodes; Root combines them with noop nodes per §3.1.
type Graph struct {
	Root    *Node
	Outputs []*Node
}

// Hash returns a structural hash of the graph, used to deduplicate
// equivalent candidates in the sequential backtracking search.
func (g *Graph) Hash() uint64 {
	return g.Root.treeHash(make(map[*Node]uint64))
}

// Nodes returns all distinct nodes reachable from the root in
// topological order (inputs before users).
func (g *Graph) Nodes() []*Node {
	var order []*Node
	seen := make(map[*Node]bool)
	var visit func(n *Node)
	visit = func(n *Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, in := range n.Inputs {
			visit(in)
		}
		order = append(order, n)
	}
	visit(g.Root)
	return order
}

// NodeCount returns the number of distinct nodes (including parameter
// nodes) reachable from the root.
func (g *Graph) NodeCount() int { return len(g.Nodes()) }

// OpCount returns the number of distinct non-parameter operator nodes.
func (g *Graph) OpCount() int {
	n := 0
	for _, node := range g.Nodes() {
		if !node.IsParam() {
			n++
		}
	}
	return n
}

// Validate re-runs shape inference over the whole graph and checks
// that every node's recorded Meta matches, that the graph is acyclic
// (guaranteed by construction since nodes are immutable), and that the
// root combines all outputs.
func (g *Graph) Validate() error {
	metas := make(map[*Node]*Meta)
	var check func(n *Node) (*Meta, error)
	check = func(n *Node) (*Meta, error) {
		if m, ok := metas[n]; ok {
			return m, nil
		}
		args := make([]*Meta, len(n.Inputs))
		for i, in := range n.Inputs {
			m, err := check(in)
			if err != nil {
				return nil, err
			}
			// Split boundaries may come from e-class analysis rather
			// than the node's own derivation (see extract.buildGraph);
			// honor a recorded marker the fresh inference cannot see.
			if rm := in.Meta; rm != nil && rm.HasSplit && !m.HasSplit && rm.Shape.Equal(m.Shape) {
				m = m.Clone()
				m.HasSplit, m.SplitAxis, m.SplitAt = true, rm.SplitAxis, rm.SplitAt
			}
			args[i] = m
		}
		m, err := Infer(n.Op, n.Int, n.Str, args)
		if err != nil {
			return nil, err
		}
		if n.Meta != nil && !n.Meta.Equivalent(m) {
			return nil, fmt.Errorf("tensor: node %v meta drift: recorded %v, inferred %v", n.Op, n.Meta, m)
		}
		metas[n] = m
		return m, nil
	}
	if _, err := check(g.Root); err != nil {
		return err
	}
	for i, out := range g.Outputs {
		if _, ok := metas[out]; !ok {
			return fmt.Errorf("tensor: output %d not reachable from root", i)
		}
	}
	return nil
}

// String renders each output as an S-expression.
func (g *Graph) String() string {
	parts := make([]string, len(g.Outputs))
	for i, o := range g.Outputs {
		parts[i] = o.String()
	}
	return strings.Join(parts, "\n")
}

// OpHistogram counts operator occurrences (excluding parameters),
// useful in tests and reports.
func (g *Graph) OpHistogram() map[Op]int {
	h := make(map[Op]int)
	for _, n := range g.Nodes() {
		if !n.IsParam() {
			h[n.Op]++
		}
	}
	return h
}

// HistogramString renders an op histogram deterministically.
func HistogramString(h map[Op]int) string {
	type kv struct {
		op Op
		n  int
	}
	var items []kv
	for op, n := range h {
		items = append(items, kv{op, n})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].op < items[j].op })
	parts := make([]string, len(items))
	for i, it := range items {
		parts[i] = fmt.Sprintf("%v:%d", it.op, it.n)
	}
	return strings.Join(parts, " ")
}
