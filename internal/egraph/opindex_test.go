package egraph

import (
	"testing"
)

// recomputeByOp builds the op index the slow way, straight from the
// view's class list — the oracle Freeze's index must match.
func recomputeByOp(v *View) map[Op][]ClassID {
	out := make(map[Op][]ClassID)
	for _, cls := range v.Classes() {
		seen := make(map[Op]bool)
		for _, n := range cls.Nodes {
			if !seen[n.Op] {
				seen[n.Op] = true
				out[n.Op] = append(out[n.Op], cls.ID)
			}
		}
	}
	return out
}

// assertOpIndex checks v's ByOp lists against the recomputed oracle:
// same classes per op, ascending ID order, no duplicates.
func assertOpIndex(t *testing.T, v *View) {
	t.Helper()
	want := recomputeByOp(v)
	ops := make(map[Op]bool)
	for _, cls := range v.Classes() {
		for _, n := range cls.Nodes {
			ops[n.Op] = true
		}
	}
	for op := range ops {
		got := v.ByOp(op)
		if len(got) != len(want[op]) {
			t.Fatalf("ByOp(%d): %d classes, want %d", op, len(got), len(want[op]))
		}
		prev := ClassID(-1)
		for i, cls := range got {
			if cls.ID != want[op][i] {
				t.Fatalf("ByOp(%d)[%d] = e%d, want e%d", op, i, cls.ID, want[op][i])
			}
			if cls.ID <= prev {
				t.Fatalf("ByOp(%d) not strictly ascending: e%d after e%d", op, cls.ID, prev)
			}
			prev = cls.ID
		}
	}
	// Ops absent from the e-graph index to nothing.
	if l := v.ByOp(Op(999)); len(l) != 0 {
		t.Fatalf("ByOp(unknown) returned %d classes", len(l))
	}
}

// TestOpIndexFresh checks the index on a just-built e-graph.
func TestOpIndexFresh(t *testing.T) {
	g, _, _ := buildViewGraph(t)
	assertOpIndex(t, g.Freeze())
}

// TestOpIndexUnderUnionRebuild is the invalidation/refresh contract:
// after Union+Rebuild merge classes holding different ops, a fresh
// Freeze must index the merged class under every op it now contains,
// and the stale view's index must not be consulted (Stale reports it).
func TestOpIndexUnderUnionRebuild(t *testing.T) {
	g := New(nil)
	a := g.Add(Node{Op: 1, Str: "a"})
	b := g.Add(Node{Op: 2, Str: "b"}) // different op, soon same class
	fa := g.Add(NewNode(3, a))
	fb := g.Add(NewNode(3, b))
	g.Add(NewNode(4, fa))
	g.Add(NewNode(5, fb))
	v1 := g.Freeze()
	assertOpIndex(t, v1)
	if len(v1.ByOp(1)) != 1 || len(v1.ByOp(2)) != 1 {
		t.Fatal("expected distinct leaf classes before union")
	}

	g.Union(a, b)
	g.Rebuild() // merges f(a) ~ f(b) by congruence
	if !v1.Stale() {
		t.Fatal("union did not invalidate the old view")
	}
	v2 := g.Freeze()
	assertOpIndex(t, v2)

	// The merged leaf class now carries op 1 and op 2 nodes: both op
	// lists must point at the same single class.
	l1, l2 := v2.ByOp(1), v2.ByOp(2)
	if len(l1) != 1 || len(l2) != 1 || l1[0] != l2[0] {
		t.Fatalf("merged class not indexed under both ops: %v vs %v", l1, l2)
	}
	if got := v2.Find(a); l1[0].ID != got {
		t.Fatalf("op index points at e%d, canonical leaf is e%d", l1[0].ID, got)
	}
	// f(a) ~ f(b) merged: op 3 has one class; its parents (ops 4 and 5)
	// remain distinct classes.
	if len(v2.ByOp(3)) != 1 {
		t.Fatalf("congruent f-classes not merged in index: %d entries", len(v2.ByOp(3)))
	}
	if len(v2.ByOp(4)) != 1 || len(v2.ByOp(5)) != 1 {
		t.Fatal("parent classes missing from index")
	}
}

// TestDirtySinceUpwardClosure is the incremental-search soundness
// property: a union of two leaves must dirty not only the merged class
// but every ancestor reachable through parent edges — the classes
// where a match can newly appear although they were never directly
// touched.
func TestDirtySinceUpwardClosure(t *testing.T) {
	g := New(nil)
	a := g.Add(Node{Op: 1, Str: "a"})
	b := g.Add(Node{Op: 1, Str: "b"})
	c := g.Add(Node{Op: 1, Str: "c"})
	add := g.Add(NewNode(2, a, b)) // add(a,b)
	mul := g.Add(NewNode(3, c, a)) // mul(c,a): parent of c — dirty once c ~ add
	top := g.Add(NewNode(4, mul))  // relu(mul): grandparent, distance 2
	side := g.Add(NewNode(4, add)) // relu(add): parent of add — also dirty
	other := g.Add(Node{Op: 1, Str: "z"})
	lone := g.Add(NewNode(5, other)) // unrelated: must stay clean

	v1 := g.Freeze()
	base := v1.Version()

	// Merge c with add(a,b): the pattern (mul (add ?x ?y) ?z) now
	// matches at mul's class even though mul was never touched.
	g.Union(c, add)
	g.Rebuild()
	v2 := g.Freeze()
	dirty := v2.DirtySince(base)

	for name, id := range map[string]ClassID{"merged": c, "mul": mul, "top": top, "side": side} {
		if !dirty[v2.Find(id)] {
			t.Errorf("%s class e%d missing from dirty set", name, v2.Find(id))
		}
	}
	for name, id := range map[string]ClassID{"a": a, "b": b, "other": other, "lone": lone} {
		if dirty[v2.Find(id)] {
			t.Errorf("%s class e%d dirty but unchanged", name, v2.Find(id))
		}
	}

	// No mutations between freezes: nothing is dirty.
	v3 := g.Freeze()
	if d := v3.DirtySince(v2.Version()); len(d) != 0 {
		t.Fatalf("no-op window produced %d dirty classes", len(d))
	}

	// A fresh Add dirties only the new class (nothing references it yet).
	neu := g.Add(NewNode(6, top))
	v4 := g.Freeze()
	d := v4.DirtySince(v3.Version())
	if !d[v4.Find(neu)] {
		t.Fatal("new class not dirty")
	}
	if len(d) != 1 {
		t.Fatalf("Add dirtied %d classes, want 1", len(d))
	}
}
