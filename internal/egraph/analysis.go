package egraph

// Analysis attaches semantic data to every e-class, in the style of
// egg's e-class analyses (Willsey et al. 2020). TENSAT uses an analysis
// to carry tensor shapes, split positions and layout information for the
// shape checking described in §4 and §6 of the paper.
//
// The invariant maintained by the e-graph is
//
//	class.Data == Merge over nodes n in class of Make(g, n)
//
// Make is called when a node is first added; Merge joins the data of two
// classes being unioned (and again whenever a node's recomputed data
// must be folded into its class during rebuilding).
type Analysis interface {
	// Make computes the analysis data for a single (canonical) node.
	Make(g *EGraph, n Node) any
	// Merge joins two data values. It returns the joined value and
	// whether it differs from a (the receiving class's current data);
	// a "true" answer re-enqueues the class's parents for repair so
	// the analysis reaches a fixpoint.
	Merge(a, b any) (merged any, changed bool)
}

// nopAnalysis is used when the client passes a nil Analysis.
type nopAnalysis struct{}

func (nopAnalysis) Make(*EGraph, Node) any     { return nil }
func (nopAnalysis) Merge(a, _ any) (any, bool) { return a, false }
