package egraph

// unionFind is a disjoint-set forest over ClassIDs with path compression
// and union by rank. It is the canonicalization backbone of the e-graph.
type unionFind struct {
	parent []ClassID
	rank   []uint8
}

// makeSet creates a fresh singleton set and returns its id.
func (u *unionFind) makeSet() ClassID {
	id := ClassID(len(u.parent))
	u.parent = append(u.parent, id)
	u.rank = append(u.rank, 0)
	return id
}

// find returns the canonical representative of x, compressing paths.
func (u *unionFind) find(x ClassID) ClassID {
	root := x
	for u.parent[root] != root {
		root = u.parent[root]
	}
	for u.parent[x] != root {
		u.parent[x], x = root, u.parent[x]
	}
	return root
}

// union merges the sets containing a and b and returns the surviving
// root. If the two are already in the same set it returns that root.
func (u *unionFind) union(a, b ClassID) ClassID {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return ra
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	return ra
}

// size reports how many ids have been allocated (not the number of sets).
func (u *unionFind) size() int { return len(u.parent) }
