package egraph

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// ClassID identifies an e-class. IDs are only meaningful within the
// e-graph that issued them, and must be canonicalized through Find
// after unions.
type ClassID int32

// Op identifies an operator of the client language. The e-graph itself
// is language-agnostic: clients register a name table via SetOpNames for
// readable dumps, but equality and hashing use only the numeric value.
type Op uint16

// Node is an e-node: an operator applied to children e-classes, plus
// optional integer/string payloads for literal leaves (the tensor
// language of Table 2 uses Int for stride/axis/activation parameters and
// Str for permutations, shapes, and tensor identifiers).
type Node struct {
	Op       Op
	Int      int64
	Str      string
	Children []ClassID
}

// Leaf constructs a childless node.
func Leaf(op Op) Node { return Node{Op: op} }

// IntNode constructs an integer-literal node.
func IntNode(op Op, v int64) Node { return Node{Op: op, Int: v} }

// StrNode constructs a string-literal node.
func StrNode(op Op, s string) Node { return Node{Op: op, Str: s} }

// NewNode constructs an operator node with the given children.
func NewNode(op Op, children ...ClassID) Node {
	return Node{Op: op, Children: children}
}

// clone returns a deep copy of n (children slice included).
func (n Node) clone() Node {
	c := n
	c.Children = append([]ClassID(nil), n.Children...)
	return c
}

// key returns the hash-consing key of a *canonical* node. The encoding
// is injective: op, payloads and children are length-delimited.
func (n Node) key() string {
	var b strings.Builder
	var buf [binary.MaxVarintLen64]byte
	w := binary.PutUvarint(buf[:], uint64(n.Op))
	b.Write(buf[:w])
	w = binary.PutVarint(buf[:], n.Int)
	b.Write(buf[:w])
	w = binary.PutUvarint(buf[:], uint64(len(n.Str)))
	b.Write(buf[:w])
	b.WriteString(n.Str)
	w = binary.PutUvarint(buf[:], uint64(len(n.Children)))
	b.Write(buf[:w])
	for _, c := range n.Children {
		w = binary.PutUvarint(buf[:], uint64(c))
		b.Write(buf[:w])
	}
	return b.String()
}

// Equal reports structural equality of two nodes (assuming both are
// canonical with respect to the same e-graph).
func (n Node) Equal(m Node) bool {
	if n.Op != m.Op || n.Int != m.Int || n.Str != m.Str || len(n.Children) != len(m.Children) {
		return false
	}
	for i := range n.Children {
		if n.Children[i] != m.Children[i] {
			return false
		}
	}
	return true
}

// String renders the node using the e-graph-independent default
// formatting (numeric op). EGraph.NodeString gives named output.
func (n Node) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "op%d", n.Op)
	if n.Int != 0 {
		fmt.Fprintf(&b, "#%d", n.Int)
	}
	if n.Str != "" {
		fmt.Fprintf(&b, "%q", n.Str)
	}
	if len(n.Children) > 0 {
		b.WriteByte('(')
		for i, c := range n.Children {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "e%d", c)
		}
		b.WriteByte(')')
	}
	return b.String()
}
