package egraph

// Bitset is a fixed-capacity bitset keyed by ClassID. The exploration
// phase uses one per e-class as the descendants map of Algorithm 2;
// extraction uses them for reachability.
type Bitset struct {
	words []uint64
}

// NewBitset returns a bitset able to hold ids in [0, n).
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64)}
}

// Set marks id.
func (b *Bitset) Set(id ClassID) {
	w := int(id) >> 6
	if w >= len(b.words) {
		grown := make([]uint64, w+1)
		copy(grown, b.words)
		b.words = grown
	}
	b.words[w] |= 1 << (uint(id) & 63)
}

// Has reports whether id is marked.
func (b *Bitset) Has(id ClassID) bool {
	w := int(id) >> 6
	return w < len(b.words) && b.words[w]&(1<<(uint(id)&63)) != 0
}

// Or folds other into b (set union).
func (b *Bitset) Or(other *Bitset) {
	if other == nil {
		return
	}
	if len(other.words) > len(b.words) {
		grown := make([]uint64, len(other.words))
		copy(grown, b.words)
		b.words = grown
	}
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// Count returns the number of marked ids.
func (b *Bitset) Count() int {
	n := 0
	for _, w := range b.words {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Clone returns a copy of b.
func (b *Bitset) Clone() *Bitset {
	return &Bitset{words: append([]uint64(nil), b.words...)}
}
