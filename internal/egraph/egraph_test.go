package egraph

import (
	"testing"
	"testing/quick"
)

// A tiny arithmetic language for tests.
const (
	opNum Op = iota // Int payload
	opVarX
	opVarY
	opAdd
	opMul
	opShl
	opDiv
)

func TestAddHashConsing(t *testing.T) {
	g := New(nil)
	x1 := g.Add(Leaf(opVarX))
	x2 := g.Add(Leaf(opVarX))
	if x1 != x2 {
		t.Fatalf("same leaf added twice got distinct classes %d, %d", x1, x2)
	}
	a := g.Add(NewNode(opAdd, x1, x2))
	b := g.Add(NewNode(opAdd, x1, x2))
	if a != b {
		t.Fatalf("identical nodes not hash-consed: %d vs %d", a, b)
	}
	if g.NodeCount() != 2 {
		t.Fatalf("NodeCount = %d, want 2", g.NodeCount())
	}
	if g.ClassCount() != 2 {
		t.Fatalf("ClassCount = %d, want 2", g.ClassCount())
	}
}

func TestIntAndStrPayloadsDistinguishNodes(t *testing.T) {
	g := New(nil)
	one := g.Add(IntNode(opNum, 1))
	two := g.Add(IntNode(opNum, 2))
	if one == two {
		t.Fatal("distinct int literals merged")
	}
	s1 := g.Add(StrNode(opNum, "a b"))
	s2 := g.Add(StrNode(opNum, "ab"))
	if s1 == s2 {
		t.Fatal("distinct string literals merged")
	}
}

func TestUnionFindBasics(t *testing.T) {
	var u unionFind
	ids := make([]ClassID, 10)
	for i := range ids {
		ids[i] = u.makeSet()
	}
	u.union(ids[0], ids[1])
	u.union(ids[1], ids[2])
	if u.find(ids[0]) != u.find(ids[2]) {
		t.Fatal("transitive union broken")
	}
	if u.find(ids[3]) == u.find(ids[0]) {
		t.Fatal("unrelated sets merged")
	}
}

func TestUnionMergesClasses(t *testing.T) {
	g := New(nil)
	x := g.Add(Leaf(opVarX))
	y := g.Add(Leaf(opVarY))
	root, changed := g.Union(x, y)
	if !changed {
		t.Fatal("union of distinct classes reported no change")
	}
	g.Rebuild()
	if g.Find(x) != g.Find(y) || g.Find(x) != root {
		t.Fatal("union did not merge classes")
	}
	if len(g.Class(x).Nodes) != 2 {
		t.Fatalf("merged class has %d nodes, want 2", len(g.Class(x).Nodes))
	}
	if _, again := g.Union(x, y); again {
		t.Fatal("re-union reported a change")
	}
}

func TestCongruenceClosure(t *testing.T) {
	// f(x) and f(y) must merge once x = y.
	g := New(nil)
	x := g.Add(Leaf(opVarX))
	y := g.Add(Leaf(opVarY))
	fx := g.Add(NewNode(opShl, x))
	fy := g.Add(NewNode(opShl, y))
	if g.Find(fx) == g.Find(fy) {
		t.Fatal("f(x) = f(y) before union")
	}
	g.Union(x, y)
	g.Rebuild()
	if g.Find(fx) != g.Find(fy) {
		t.Fatal("congruence not restored: f(x) != f(y) after x = y")
	}
}

func TestCongruenceClosureCascades(t *testing.T) {
	// g(f(x)) and g(f(y)) must merge transitively.
	g := New(nil)
	x := g.Add(Leaf(opVarX))
	y := g.Add(Leaf(opVarY))
	fx := g.Add(NewNode(opShl, x))
	fy := g.Add(NewNode(opShl, y))
	gfx := g.Add(NewNode(opDiv, fx))
	gfy := g.Add(NewNode(opDiv, fy))
	g.Union(x, y)
	g.Rebuild()
	if g.Find(gfx) != g.Find(gfy) {
		t.Fatal("two-level congruence not restored")
	}
}

func TestRebuildDeduplicatesNodes(t *testing.T) {
	g := New(nil)
	x := g.Add(Leaf(opVarX))
	y := g.Add(Leaf(opVarY))
	ax := g.Add(NewNode(opAdd, x, x))
	ay := g.Add(NewNode(opAdd, y, y))
	g.Union(ax, ay) // same class now holds add(x,x) and add(y,y)
	g.Union(x, y)
	g.Rebuild()
	cls := g.Class(ax)
	if len(cls.Nodes) != 1 {
		t.Fatalf("class holds %d nodes after dedupe, want 1: %v", len(cls.Nodes), cls.Nodes)
	}
}

func TestPaperExample(t *testing.T) {
	// Section 2: f(a,b) -> c and a -> b starting from f(b,a) proves
	// f(b,a) = c. Here f = opAdd, constants via opNum payloads.
	g := New(nil)
	a := g.Add(IntNode(opNum, 'a'))
	b := g.Add(IntNode(opNum, 'b'))
	fba := g.Add(NewNode(opAdd, b, a))
	// a -> b
	g.Union(a, b)
	g.Rebuild()
	// Now f(a,b) is represented in fba's class.
	fab := g.Add(NewNode(opAdd, a, b))
	if g.Find(fab) != g.Find(fba) {
		t.Fatal("f(a,b) and f(b,a) not merged after a = b")
	}
	c := g.Add(IntNode(opNum, 'c'))
	g.Union(fab, c)
	g.Rebuild()
	if g.Find(fba) != g.Find(c) {
		t.Fatal("f(b,a) != c after applying both rewrites")
	}
}

func TestAddExprTree(t *testing.T) {
	g := New(nil)
	e := &Expr{Node: NewNode(opMul), Children: []*Expr{
		{Node: Leaf(opVarX)},
		{Node: IntNode(opNum, 2)},
	}}
	id := g.AddExprTree(e)
	cls := g.Class(id)
	if len(cls.Nodes) != 1 || cls.Nodes[0].Op != opMul {
		t.Fatalf("unexpected root class %v", cls.Nodes)
	}
}

type countAnalysis struct{}

// Make counts the minimal term size; Merge takes the min.
func (countAnalysis) Make(g *EGraph, n Node) any {
	size := 1
	for _, c := range n.Children {
		size += g.Class(c).Data.(int)
	}
	return size
}

func (countAnalysis) Merge(a, b any) (any, bool) {
	ai, bi := a.(int), b.(int)
	if bi < ai {
		return bi, true
	}
	return ai, false
}

func TestAnalysisMakeAndMerge(t *testing.T) {
	g := New(countAnalysis{})
	x := g.Add(Leaf(opVarX))
	two := g.Add(IntNode(opNum, 2))
	mul := g.Add(NewNode(opMul, x, two))
	if got := g.Class(mul).Data.(int); got != 3 {
		t.Fatalf("size(mul) = %d, want 3", got)
	}
	// x*2 = x<<1 : same size; then union with plain x => size 1 propagates.
	shl := g.Add(NewNode(opShl, x, g.Add(IntNode(opNum, 1))))
	g.Union(mul, shl)
	g.Rebuild()
	if got := g.Class(mul).Data.(int); got != 3 {
		t.Fatalf("size after equal-size union = %d, want 3", got)
	}
	g.Union(mul, x)
	g.Rebuild()
	if got := g.Class(mul).Data.(int); got != 1 {
		t.Fatalf("size after union with leaf = %d, want 1", got)
	}
}

func TestAnalysisPropagatesUpward(t *testing.T) {
	g := New(countAnalysis{})
	x := g.Add(Leaf(opVarX))
	y := g.Add(Leaf(opVarY))
	inner := g.Add(NewNode(opAdd, x, y))  // size 3
	outer := g.Add(NewNode(opShl, inner)) // size 4
	g.Union(inner, x)                     // inner size becomes 1
	g.Rebuild()
	if got := g.Class(outer).Data.(int); got != 2 {
		t.Fatalf("outer size = %d, want 2 after child shrank", got)
	}
}

func TestLookup(t *testing.T) {
	g := New(nil)
	x := g.Add(Leaf(opVarX))
	n := NewNode(opShl, x)
	if _, ok := g.Lookup(n); ok {
		t.Fatal("Lookup found node before Add")
	}
	id := g.Add(n)
	got, ok := g.Lookup(n)
	if !ok || got != id {
		t.Fatalf("Lookup = (%d,%v), want (%d,true)", got, ok, id)
	}
}

func TestStampsMonotone(t *testing.T) {
	g := New(nil)
	x := g.Add(Leaf(opVarX))
	y := g.Add(Leaf(opVarY))
	a := g.Add(NewNode(opAdd, x, y))
	cls := g.Class(a)
	if cls.Stamps[0] != 3 {
		t.Fatalf("third insertion stamp = %d, want 3", cls.Stamps[0])
	}
	if g.Stamp() != 3 {
		t.Fatalf("Stamp() = %d, want 3", g.Stamp())
	}
}

func TestNodeKeyInjective(t *testing.T) {
	// Property: distinct (op,int,str,children) tuples yield distinct keys.
	f := func(op1, op2 uint16, i1, i2 int64, s1, s2 string, c1, c2 []int32) bool {
		mk := func(op uint16, i int64, s string, cs []int32) Node {
			n := Node{Op: Op(op), Int: i, Str: s}
			for _, c := range cs {
				if c < 0 {
					c = -c
				}
				n.Children = append(n.Children, ClassID(c))
			}
			return n
		}
		a, b := mk(op1, i1, s1, c1), mk(op2, i2, s2, c2)
		if a.Equal(b) {
			return a.key() == b.key()
		}
		return a.key() != b.key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionFindIdempotentProperty(t *testing.T) {
	// Property: find is idempotent and union is commutative in effect.
	f := func(pairs []uint8) bool {
		var u1, u2 unionFind
		const n = 16
		for i := 0; i < n; i++ {
			u1.makeSet()
			u2.makeSet()
		}
		for _, p := range pairs {
			a, b := ClassID(p%n), ClassID((p/n)%n)
			u1.union(a, b)
			u2.union(b, a)
		}
		for i := ClassID(0); i < n; i++ {
			if u1.find(u1.find(i)) != u1.find(i) {
				return false
			}
			for j := ClassID(0); j < n; j++ {
				if (u1.find(i) == u1.find(j)) != (u2.find(i) == u2.find(j)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBitset(t *testing.T) {
	b := NewBitset(10)
	if b.Has(3) {
		t.Fatal("fresh bitset has bit set")
	}
	b.Set(3)
	b.Set(200) // forces growth
	if !b.Has(3) || !b.Has(200) || b.Has(4) {
		t.Fatal("Set/Has broken")
	}
	if b.Count() != 2 {
		t.Fatalf("Count = %d, want 2", b.Count())
	}
	c := NewBitset(4)
	c.Set(1)
	c.Or(b)
	if !c.Has(1) || !c.Has(200) {
		t.Fatal("Or broken")
	}
	d := c.Clone()
	d.Set(5)
	if c.Has(5) {
		t.Fatal("Clone aliases storage")
	}
}

func TestBitsetOrProperty(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a, b := NewBitset(1), NewBitset(1)
		for _, x := range xs {
			a.Set(ClassID(x % 4096))
		}
		for _, y := range ys {
			b.Set(ClassID(y % 4096))
		}
		u := a.Clone()
		u.Or(b)
		for _, x := range xs {
			if !u.Has(ClassID(x % 4096)) {
				return false
			}
		}
		for _, y := range ys {
			if !u.Has(ClassID(y % 4096)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
