// Package egraph implements e-graphs: a data structure that compactly
// represents an equivalence relation over many terms, following egg
// (Willsey et al. 2020). It provides hash-consed e-node insertion,
// union with deferred congruence-closure rebuilding, and e-class
// analyses. This is the substrate TENSAT's exploration phase runs on.
package egraph

import (
	"fmt"
	"sort"
	"strings"
)

// parentRef records that node Node (as it was when added, canonical at
// that time) lives in class Class and references some child class.
type parentRef struct {
	node  Node
	class ClassID
}

// Class is an e-class: a set of equivalent e-nodes plus analysis data.
type Class struct {
	ID     ClassID
	Nodes  []Node
	Stamps []int64 // per-node global insertion stamps, parallel to Nodes
	Data   any     // analysis data

	parents []parentRef
	// touched is the e-graph mutation version at which this class last
	// changed shape: when it was created, or when a union merged nodes
	// into it. View.DirtySince uses it (with an upward closure through
	// parents) to find the classes whose match sets may have changed
	// since an earlier freeze.
	touched uint64
}

// EGraph is a mutable e-graph. The zero value is not usable; call New.
type EGraph struct {
	uf              unionFind
	memo            map[string]ClassID
	classes         map[ClassID]*Class
	analysis        Analysis
	pending         []ClassID // classes whose parents need congruence repair
	analysisPending []ClassID

	nodeCount int    // live e-node count (deduplicated)
	stamp     int64  // global insertion counter
	version   uint64 // mutation counter; Views freeze against it

	opNames []string
}

// New creates an empty e-graph. analysis may be nil.
func New(analysis Analysis) *EGraph {
	if analysis == nil {
		analysis = nopAnalysis{}
	}
	return &EGraph{
		memo:     make(map[string]ClassID),
		classes:  make(map[ClassID]*Class),
		analysis: analysis,
	}
}

// SetOpNames registers a name table indexed by Op, used only for dumps.
func (g *EGraph) SetOpNames(names []string) { g.opNames = names }

// OpName returns the registered name for op, or "op<N>".
func (g *EGraph) OpName(op Op) string {
	if int(op) < len(g.opNames) {
		return g.opNames[op]
	}
	return fmt.Sprintf("op%d", op)
}

// Find returns the canonical representative of id.
func (g *EGraph) Find(id ClassID) ClassID { return g.uf.find(id) }

// Canonicalize returns a copy of n with canonical children.
func (g *EGraph) Canonicalize(n Node) Node {
	c := n.clone()
	for i, ch := range c.Children {
		c.Children[i] = g.uf.find(ch)
	}
	return c
}

// Lookup reports the class containing node n, if n is present.
func (g *EGraph) Lookup(n Node) (ClassID, bool) {
	id, ok := g.memo[g.Canonicalize(n).key()]
	if !ok {
		return 0, false
	}
	return g.uf.find(id), true
}

// Add inserts node n (hash-consed) and returns its e-class. Adding an
// existing node is cheap and returns the existing class.
func (g *EGraph) Add(n Node) ClassID {
	cn := g.Canonicalize(n)
	key := cn.key()
	if id, ok := g.memo[key]; ok {
		return g.uf.find(id)
	}
	id := g.uf.makeSet()
	g.stamp++
	g.version++
	cls := &Class{ID: id, Nodes: []Node{cn}, Stamps: []int64{g.stamp}, touched: g.version}
	cls.Data = g.analysis.Make(g, cn)
	g.classes[id] = cls
	for _, ch := range cn.Children {
		chc := g.classes[g.uf.find(ch)]
		chc.parents = append(chc.parents, parentRef{node: cn, class: id})
	}
	g.memo[key] = id
	g.nodeCount++
	return id
}

// AddExpr inserts a whole expression tree bottom-up. children of each
// Expr node must already be ClassIDs; this helper exists for tests.
type Expr struct {
	Node     Node
	Children []*Expr
}

// AddExprTree recursively adds the expression and returns its root class.
func (g *EGraph) AddExprTree(e *Expr) ClassID {
	n := e.Node.clone()
	n.Children = n.Children[:0]
	for _, c := range e.Children {
		n.Children = append(n.Children, g.AddExprTree(c))
	}
	return g.Add(n)
}

// Union merges the e-classes of a and b, returning the canonical id of
// the merged class and whether anything changed. Congruence repair is
// deferred until Rebuild.
func (g *EGraph) Union(a, b ClassID) (ClassID, bool) {
	ra, rb := g.uf.find(a), g.uf.find(b)
	if ra == rb {
		return ra, false
	}
	g.version++
	root := g.uf.union(ra, rb)
	other := ra
	if other == root {
		other = rb
	}
	keep, lose := g.classes[root], g.classes[other]
	keep.Nodes = append(keep.Nodes, lose.Nodes...)
	keep.Stamps = append(keep.Stamps, lose.Stamps...)
	keep.parents = append(keep.parents, lose.parents...)
	keep.touched = g.version
	merged, changed := g.analysis.Merge(keep.Data, lose.Data)
	keep.Data = merged
	delete(g.classes, other)
	g.pending = append(g.pending, root)
	if changed {
		g.analysisPending = append(g.analysisPending, root)
	}
	return root, true
}

// Rebuild restores the congruence and hash-consing invariants after a
// batch of unions, in the deferred style of egg. It must be called
// before searching the e-graph again.
func (g *EGraph) Rebuild() {
	if len(g.pending) == 0 && len(g.analysisPending) == 0 {
		return // nothing to repair; keep no-op rebuilds write-free
	}
	for len(g.pending) > 0 || len(g.analysisPending) > 0 {
		todo := g.pending
		g.pending = nil
		seen := make(map[ClassID]bool, len(todo))
		for _, id := range todo {
			id = g.uf.find(id)
			if !seen[id] {
				seen[id] = true
				g.repair(id)
			}
		}
		atodo := g.analysisPending
		g.analysisPending = nil
		aseen := make(map[ClassID]bool, len(atodo))
		for _, id := range atodo {
			id = g.uf.find(id)
			if !aseen[id] {
				aseen[id] = true
				g.repairAnalysis(id)
			}
		}
	}
	g.dedupeAll()
}

// repair re-canonicalizes the parents of a merged class, unioning any
// parent nodes that have become congruent. Rebuild passes id through
// uf.find before every call.
//
//lint:canonical id
func (g *EGraph) repair(id ClassID) {
	cls, ok := g.classes[id]
	if !ok {
		return
	}
	parents := cls.parents
	cls.parents = nil
	fresh := make(map[string]parentRef, len(parents))
	for _, p := range parents {
		cn := g.Canonicalize(p.node)
		key := cn.key()
		pclass := g.uf.find(p.class)
		if prev, ok := g.memo[key]; ok && g.uf.find(prev) != pclass {
			merged, _ := g.Union(prev, pclass)
			pclass = merged
		}
		g.memo[key] = pclass
		if prev, dup := fresh[key]; dup {
			if g.uf.find(prev.class) != pclass {
				merged, _ := g.Union(prev.class, pclass)
				pclass = merged
			}
		}
		fresh[key] = parentRef{node: cn, class: pclass}
	}
	cls = g.classes[g.uf.find(id)]
	for _, p := range fresh {
		cls.parents = append(cls.parents, p)
	}
}

// repairAnalysis propagates analysis data changes upward: every parent's
// data is remade and merged into its class.
func (g *EGraph) repairAnalysis(id ClassID) {
	cls, ok := g.classes[g.uf.find(id)]
	if !ok {
		return
	}
	for _, p := range cls.parents {
		pid := g.uf.find(p.class)
		pcls := g.classes[pid]
		data := g.analysis.Make(g, g.Canonicalize(p.node))
		merged, changed := g.analysis.Merge(pcls.Data, data)
		pcls.Data = merged
		if changed {
			g.analysisPending = append(g.analysisPending, pid)
		}
	}
}

// dedupeAll removes duplicate nodes inside every class (duplicates
// appear when child merges make two nodes of a class congruent).
func (g *EGraph) dedupeAll() {
	total := 0
	for _, cls := range g.classes {
		seen := make(map[string]int, len(cls.Nodes))
		out := cls.Nodes[:0]
		stamps := cls.Stamps[:0]
		for i, n := range cls.Nodes {
			cn := g.Canonicalize(n)
			key := cn.key()
			if j, dup := seen[key]; dup {
				// Keep the earliest stamp so "last added" queries used by
				// cycle resolution stay stable across rebuilds.
				if cls.Stamps[i] < stamps[j] {
					stamps[j] = cls.Stamps[i]
				}
				continue
			}
			seen[key] = len(out)
			out = append(out, cn)
			stamps = append(stamps, cls.Stamps[i])
		}
		cls.Nodes = out
		cls.Stamps = stamps
		total += len(out)
	}
	g.nodeCount = total
}

// Class returns the e-class for id (canonicalized). It panics if the
// id was never issued by this e-graph.
func (g *EGraph) Class(id ClassID) *Class {
	cls, ok := g.classes[g.uf.find(id)]
	if !ok {
		panic(fmt.Sprintf("egraph: unknown class %d", id))
	}
	return cls
}

// Classes calls f for every canonical class. Mutating the e-graph
// during iteration is not allowed.
func (g *EGraph) Classes(f func(*Class)) {
	ids := make([]ClassID, 0, len(g.classes))
	for id := range g.classes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		//lint:canonical ids holds the keys of g.classes collected just above; class-table keys are canonical by construction
		f(g.classes[id])
	}
}

// ClassCount returns the number of e-classes.
func (g *EGraph) ClassCount() int { return len(g.classes) }

// NodeCount returns the number of distinct e-nodes.
func (g *EGraph) NodeCount() int { return g.nodeCount }

// Stamp returns the current value of the global insertion counter.
func (g *EGraph) Stamp() int64 { return g.stamp }

// NodeString renders a node with registered op names.
func (g *EGraph) NodeString(n Node) string {
	var b strings.Builder
	b.WriteString(g.OpName(n.Op))
	if n.Int != 0 {
		fmt.Fprintf(&b, "#%d", n.Int)
	}
	if n.Str != "" {
		fmt.Fprintf(&b, "%q", n.Str)
	}
	if len(n.Children) > 0 {
		b.WriteByte('(')
		for i, c := range n.Children {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "e%d", g.uf.find(c))
		}
		b.WriteByte(')')
	}
	return b.String()
}

// Dump renders the whole e-graph, one class per line, for debugging.
func (g *EGraph) Dump() string {
	var b strings.Builder
	g.Classes(func(cls *Class) {
		fmt.Fprintf(&b, "e%d:", cls.ID)
		for _, n := range cls.Nodes {
			b.WriteString(" ")
			b.WriteString(g.NodeString(n))
		}
		b.WriteByte('\n')
	})
	return b.String()
}
