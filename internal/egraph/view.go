package egraph

import "sort"

// View is a frozen, read-only canonical snapshot of an e-graph, built
// by Freeze. It exists so the search phase of equality saturation can
// run on many goroutines at once: EGraph.Find performs path compression
// and therefore mutates the union-find even on logically read-only
// queries, while View.Find is a pure array lookup into a canonical
// table computed once at freeze time. A View holds no locks and
// performs no writes, so any number of goroutines may call its methods
// concurrently.
//
// Contract: the view reflects the e-graph at the moment of the Freeze
// call and is invalidated by any subsequent mutation (Add, Union,
// Rebuild). Using a stale view is a logic error; Stale reports whether
// the underlying e-graph has changed since the freeze.
type View struct {
	g       *EGraph
	version uint64
	find    []ClassID          // id -> canonical representative
	byID    map[ClassID]*Class // canonical id -> class
	classes []*Class           // canonical classes, sorted by ID
}

// Freeze captures a read-only canonical view of g. The e-graph must be
// clean; if unions are pending, Freeze rebuilds first (searching an
// un-rebuilt e-graph is never meaningful). The returned view is safe
// for concurrent use until the next mutation of g.
func (g *EGraph) Freeze() *View {
	if len(g.pending) > 0 || len(g.analysisPending) > 0 {
		g.Rebuild()
	}
	v := &View{
		g:       g,
		version: g.version,
		find:    make([]ClassID, g.uf.size()),
		byID:    make(map[ClassID]*Class, len(g.classes)),
		classes: make([]*Class, 0, len(g.classes)),
	}
	for i := range v.find {
		v.find[i] = g.uf.find(ClassID(i))
	}
	for id, cls := range g.classes {
		v.byID[id] = cls
		v.classes = append(v.classes, cls)
	}
	sort.Slice(v.classes, func(i, j int) bool { return v.classes[i].ID < v.classes[j].ID })
	return v
}

// Find returns the canonical representative of id, without mutating
// anything.
func (v *View) Find(id ClassID) ClassID { return v.find[id] }

// Class returns the e-class for id (canonicalized through the frozen
// table). It panics if the id was never issued by the source e-graph.
func (v *View) Class(id ClassID) *Class {
	cls, ok := v.byID[v.find[id]]
	if !ok {
		panic("egraph: unknown class in frozen view")
	}
	return cls
}

// Classes returns every canonical class in ascending ID order — the
// same order EGraph.Classes iterates in. Callers may slice the result
// to shard a scan across goroutines; they must not modify it.
func (v *View) Classes() []*Class { return v.classes }

// ClassCount returns the number of e-classes in the snapshot.
func (v *View) ClassCount() int { return len(v.classes) }

// Stale reports whether the source e-graph has been mutated (Add,
// Union, or a Rebuild that had work to do) since the view was frozen.
func (v *View) Stale() bool { return v.version != v.g.version }
