package egraph

import "sort"

// View is a frozen, read-only canonical snapshot of an e-graph, built
// by Freeze. It exists so the search phase of equality saturation can
// run on many goroutines at once: EGraph.Find performs path compression
// and therefore mutates the union-find even on logically read-only
// queries, while View.Find is a pure array lookup into a canonical
// table computed once at freeze time. A View holds no locks and
// performs no writes, so any number of goroutines may call its methods
// concurrently.
//
// Beyond the canonical tables, a view carries two search accelerators:
// an operator index (ByOp: root Op -> the sorted classes containing a
// node with that op, so a pattern rooted at matmul only visits
// matmul-bearing classes) and the dirty-class query DirtySince, which
// reports the classes whose match sets may have changed since an
// earlier freeze (the basis of incremental re-search).
//
// Contract: the view reflects the e-graph at the moment of the Freeze
// call and is invalidated by any subsequent mutation (Add, Union,
// Rebuild). Using a stale view is a logic error; Stale reports whether
// the underlying e-graph has changed since the freeze.
//
// The //lint:frozen annotation makes tensatlint's frozenview analyzer
// reject any View method that writes view-owned state or reaches a
// mutating EGraph method (g.Find included — path compression writes).
//
//lint:frozen
type View struct {
	g       *EGraph
	version uint64
	find    []ClassID          // id -> canonical representative
	byID    map[ClassID]*Class // canonical id -> class
	classes []*Class           // canonical classes, sorted by ID
	byOp    map[Op][]*Class    // op -> classes with a node of that op, sorted by ID
}

// Freeze captures a read-only canonical view of g. The e-graph must be
// clean; if unions are pending, Freeze rebuilds first (searching an
// un-rebuilt e-graph is never meaningful). The returned view is safe
// for concurrent use until the next mutation of g.
func (g *EGraph) Freeze() *View {
	if len(g.pending) > 0 || len(g.analysisPending) > 0 {
		g.Rebuild()
	}
	v := &View{
		g:       g,
		version: g.version,
		find:    make([]ClassID, g.uf.size()),
		byID:    make(map[ClassID]*Class, len(g.classes)),
		classes: make([]*Class, 0, len(g.classes)),
		byOp:    make(map[Op][]*Class),
	}
	for i := range v.find {
		v.find[i] = g.uf.find(ClassID(i))
	}
	for id, cls := range g.classes {
		v.byID[id] = cls
		v.classes = append(v.classes, cls)
	}
	sort.Slice(v.classes, func(i, j int) bool { return v.classes[i].ID < v.classes[j].ID })
	// The op index inherits ascending-ID order from the class walk, so a
	// per-op candidate scan visits classes in exactly the order a full
	// scan would — pruning never reorders matches. The last-element check
	// dedupes a class holding several nodes of one op.
	for _, cls := range v.classes {
		for _, n := range cls.Nodes {
			if l := v.byOp[n.Op]; len(l) == 0 || l[len(l)-1] != cls {
				v.byOp[n.Op] = append(v.byOp[n.Op], cls)
			}
		}
	}
	return v
}

// Find returns the canonical representative of id, without mutating
// anything.
func (v *View) Find(id ClassID) ClassID { return v.find[id] }

// Class returns the e-class for id (canonicalized through the frozen
// table). It panics if the id was never issued by the source e-graph.
func (v *View) Class(id ClassID) *Class {
	cls, ok := v.byID[v.find[id]]
	if !ok {
		panic("egraph: unknown class in frozen view")
	}
	return cls
}

// Classes returns every canonical class in ascending ID order — the
// same order EGraph.Classes iterates in. Callers may slice the result
// to shard a scan across goroutines; they must not modify it.
func (v *View) Classes() []*Class { return v.classes }

// ByOp returns the canonical classes containing at least one node with
// the given op, in ascending ID order — the candidate list for a
// pattern rooted at op. Scanning only these classes yields exactly the
// matches a full Classes scan would, in the same order, because a class
// without the root op can root no match. Callers must not modify the
// returned slice.
func (v *View) ByOp(op Op) []*Class { return v.byOp[op] }

// ClassCount returns the number of e-classes in the snapshot.
func (v *View) ClassCount() int { return len(v.classes) }

// Version returns the e-graph mutation version this view was frozen
// at. Feed it to a later view's DirtySince to enumerate the classes
// touched in between.
func (v *View) Version() uint64 { return v.version }

// DirtySince reports the canonical classes whose match sets may have
// changed since the freeze at version since: every class created or
// merged into after that version, closed upward through parent edges.
// The upward closure is what makes incremental re-search sound — a
// pattern rooted at an untouched class C can still gain or lose
// matches when a descendant class (reached through C's nodes) gains
// nodes, and every such C is an ancestor of a touched class.
//
// Conversely, a class not in the returned set has its entire downward
// reachable region unchanged, so matches rooted at it are exactly what
// they were at version since (with all bound class ids still
// canonical). The view must be fresh (not Stale).
func (v *View) DirtySince(since uint64) map[ClassID]bool {
	dirty := make(map[ClassID]bool)
	var queue []*Class
	for _, cls := range v.classes {
		if cls.touched > since {
			dirty[cls.ID] = true
			queue = append(queue, cls)
		}
	}
	for len(queue) > 0 {
		cls := queue[0]
		queue = queue[1:]
		for _, p := range cls.parents {
			pid := v.find[p.class]
			if !dirty[pid] {
				dirty[pid] = true
				queue = append(queue, v.byID[pid])
			}
		}
	}
	return dirty
}

// Stale reports whether the source e-graph has been mutated (Add,
// Union, or a Rebuild that had work to do) since the view was frozen.
func (v *View) Stale() bool { return v.version != v.g.version }
