package egraph

import (
	"sync"
	"testing"
)

// buildViewGraph makes a small e-graph with a few unions so that path
// compression has something to do: f(a), f(b), g(a,b) with a ~ b.
func buildViewGraph(t *testing.T) (*EGraph, ClassID, ClassID) {
	t.Helper()
	g := New(nil)
	a := g.Add(Node{Op: 1, Str: "a"})
	b := g.Add(Node{Op: 1, Str: "b"})
	fa := g.Add(NewNode(2, a))
	fb := g.Add(NewNode(2, b))
	g.Add(NewNode(3, a, b))
	g.Union(a, b)
	g.Rebuild()
	return g, fa, fb
}

func TestFreezeMatchesFind(t *testing.T) {
	g, fa, fb := buildViewGraph(t)
	v := g.Freeze()
	// Congruence: f(a) and f(b) merged after a ~ b.
	if v.Find(fa) != v.Find(fb) {
		t.Fatalf("view missed congruent merge: %d vs %d", v.Find(fa), v.Find(fb))
	}
	for i := 0; i < g.uf.size(); i++ {
		id := ClassID(i)
		if got, want := v.Find(id), g.Find(id); got != want {
			t.Fatalf("view.Find(%d) = %d, egraph.Find = %d", id, got, want)
		}
	}
	if v.ClassCount() != g.ClassCount() {
		t.Fatalf("view has %d classes, egraph %d", v.ClassCount(), g.ClassCount())
	}
	// Classes are sorted ascending, mirroring EGraph.Classes order.
	prev := ClassID(-1)
	for _, cls := range v.Classes() {
		if cls.ID <= prev {
			t.Fatalf("view classes not sorted: %d after %d", cls.ID, prev)
		}
		prev = cls.ID
	}
}

func TestFreezeRebuildsDirtyGraph(t *testing.T) {
	g := New(nil)
	a := g.Add(Node{Op: 1, Str: "a"})
	b := g.Add(Node{Op: 1, Str: "b"})
	fa := g.Add(NewNode(2, a))
	fb := g.Add(NewNode(2, b))
	g.Union(a, b) // no Rebuild: freeze must repair congruence itself
	v := g.Freeze()
	if v.Find(fa) != v.Find(fb) {
		t.Fatal("Freeze did not rebuild a dirty e-graph")
	}
}

func TestViewStaleness(t *testing.T) {
	g, fa, fb := buildViewGraph(t)
	v := g.Freeze()
	if v.Stale() {
		t.Fatal("fresh view reports stale")
	}
	g.Rebuild() // no-op rebuild must not invalidate the view
	if v.Stale() {
		t.Fatal("no-op rebuild invalidated the view")
	}
	g.Add(Node{Op: 9, Str: "new"})
	if !v.Stale() {
		t.Fatal("Add did not invalidate the view")
	}
	v2 := g.Freeze()
	if v2.Stale() {
		t.Fatal("refrozen view reports stale")
	}
	g.Union(fa, fb) // already equal: no change, still fresh
	if v2.Stale() {
		t.Fatal("no-op union invalidated the view")
	}
}

func TestViewConcurrentReads(t *testing.T) {
	g, _, _ := buildViewGraph(t)
	v := g.Freeze()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 100; rep++ {
				for _, cls := range v.Classes() {
					if v.Find(cls.ID) != cls.ID {
						t.Error("canonical class not self-canonical")
						return
					}
					for _, n := range cls.Nodes {
						for _, ch := range n.Children {
							v.Class(ch)
						}
					}
				}
			}
		}()
	}
	wg.Wait()
}
