// Package tenant gives tensatd multi-tenant admission control: API
// keys loaded from a JSON file, a per-tenant token bucket (sustained
// request rate + burst), a per-tenant concurrency quota, and a
// priority that feeds serve's priority job queue.
//
// Admission is three-valued. A request from a tenant with quota
// headroom is admitted at full quality. A request from a tenant whose
// quota is saturated is *degraded* — serve runs it greedy-only,
// tags the result, and never caches it — as long as the tenant's shed
// headroom (one degraded slot per concurrency-quota slot, minimum one)
// is free. Only when even that is exhausted is the request rejected,
// with a Retry-After computed from the bucket's refill rate. Load thus
// sheds quality before it sheds availability: a saturated tenant keeps
// getting fast greedy answers instead of 429s.
package tenant

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"time"
)

// Tenant is one API-key principal as declared in the tenants file.
type Tenant struct {
	// Name identifies the tenant in stats, logs and metric labels.
	Name string `json:"name"`
	// Key is the API key presented as "Authorization: Bearer <key>" or
	// "X-API-Key: <key>". Keys must be unique across the file.
	Key string `json:"key"`
	// Priority orders the fleet's job queue: higher runs first. It also
	// selects shedding behavior — tenants below the service's no-shed
	// threshold degrade to greedy-only under pressure, tenants at or
	// above it are never degraded (they get explicit 429s instead).
	Priority int `json:"priority"`
	// RateRPS is the sustained full-quality request rate (token-bucket
	// refill). 0 disables rate limiting for this tenant.
	RateRPS float64 `json:"rate_rps"`
	// Burst is the bucket depth (0 = max(1, ceil(RateRPS))).
	Burst int `json:"burst"`
	// MaxConcurrent caps this tenant's simultaneously running
	// full-quality jobs. 0 = unlimited.
	MaxConcurrent int `json:"max_concurrent"`
}

// shedSlots is the tenant's degraded-run headroom: how many degraded
// jobs may run at once while the full-quality quota is saturated.
func (t *Tenant) shedSlots() int {
	if t.MaxConcurrent <= 0 {
		return 1
	}
	return t.MaxConcurrent
}

func (t *Tenant) burst() float64 {
	if t.Burst > 0 {
		return float64(t.Burst)
	}
	if t.RateRPS <= 0 {
		return 1
	}
	return math.Max(1, math.Ceil(t.RateRPS))
}

// file is the tenants-file schema: {"tenants": [ ... ]}.
type file struct {
	Tenants []Tenant `json:"tenants"`
}

// Decision is the outcome of admission control for one request.
type Decision int

const (
	// Admit runs the request at full quality.
	Admit Decision = iota
	// Degrade runs the request greedy-only with a degraded tag: the
	// tenant is over quota but has shed headroom.
	Degrade
	// Reject answers 429; RetryAfter says when a token will exist.
	Reject
)

func (d Decision) String() string {
	switch d {
	case Admit:
		return "admit"
	case Degrade:
		return "degrade"
	default:
		return "reject"
	}
}

// state is one tenant's live accounting.
type state struct {
	t       Tenant
	tokens  float64
	last    time.Time
	running int // full-quality jobs in flight
	shed    int // degraded jobs in flight
}

// Registry holds the tenant set and its admission state. All methods
// are safe for concurrent use.
//
// API keys are indexed by their SHA-256 digest, not the plaintext:
// resolving a presented credential hashes it first, so the lookup's
// equality comparisons run over fixed-size digests and leak no timing
// signal about the keys' contents to unauthenticated callers probing
// the Authorization header.
type Registry struct {
	mu     sync.Mutex
	byKey  map[[sha256.Size]byte]*state
	byName map[string]*state
	now    func() time.Time // injectable clock for tests
}

// hashKey digests an API key for the registry index.
func hashKey(key string) [sha256.Size]byte {
	return sha256.Sum256([]byte(key))
}

// Load reads and validates a tenants file.
func Load(path string) (*Registry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: %w", err)
	}
	r, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("tenant: %s: %w", path, err)
	}
	return r, nil
}

// Parse builds a Registry from tenants-file JSON. Unknown fields,
// duplicate names or keys, and nonsensical quotas are errors: a typo
// in an access-control file must fail loudly at boot, not silently
// grant the wrong limits.
func Parse(data []byte) (*Registry, error) {
	var f file
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("parsing tenants file: %w", err)
	}
	if len(f.Tenants) == 0 {
		return nil, fmt.Errorf("tenants file declares no tenants")
	}
	r := &Registry{
		byKey:  make(map[[sha256.Size]byte]*state, len(f.Tenants)),
		byName: make(map[string]*state, len(f.Tenants)),
		now:    time.Now,
	}
	for i, t := range f.Tenants {
		switch {
		case t.Name == "":
			return nil, fmt.Errorf("tenant %d: missing name", i)
		case t.Key == "":
			return nil, fmt.Errorf("tenant %q: missing key", t.Name)
		case len(t.Key) < 8:
			return nil, fmt.Errorf("tenant %q: key shorter than 8 characters", t.Name)
		case t.RateRPS < 0:
			return nil, fmt.Errorf("tenant %q: negative rate_rps", t.Name)
		case t.Burst < 0:
			return nil, fmt.Errorf("tenant %q: negative burst", t.Name)
		case t.MaxConcurrent < 0:
			return nil, fmt.Errorf("tenant %q: negative max_concurrent", t.Name)
		case t.Priority < 0:
			return nil, fmt.Errorf("tenant %q: negative priority", t.Name)
		}
		if _, dup := r.byName[t.Name]; dup {
			return nil, fmt.Errorf("duplicate tenant name %q", t.Name)
		}
		if _, dup := r.byKey[hashKey(t.Key)]; dup {
			return nil, fmt.Errorf("tenant %q: key already used by another tenant", t.Name)
		}
		st := &state{t: t, tokens: t.burst(), last: time.Time{}}
		r.byName[t.Name] = st
		r.byKey[hashKey(t.Key)] = st
	}
	return r, nil
}

// SetClock injects a clock (tests only).
func (r *Registry) SetClock(now func() time.Time) {
	r.mu.Lock()
	r.now = now
	r.mu.Unlock()
}

// Lookup resolves an API key to its tenant (a copy; quotas live in the
// registry). The presented key is hashed before the index lookup; see
// the Registry doc comment for why.
func (r *Registry) Lookup(key string) (Tenant, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.byKey[hashKey(key)]
	if !ok {
		return Tenant{}, false
	}
	return st.t, true
}

// Names lists the declared tenants, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Acquire runs admission control for one request from the tenant
// named name, accounting the request (a token and a concurrency or
// shed slot) when the decision is Admit or Degrade. Every Admit or
// Degrade must be paired with exactly one Release. RetryAfter is
// meaningful only for Reject.
func (r *Registry) Acquire(name string) (d Decision, retryAfter time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.byName[name]
	if !ok {
		// Unknown tenants are the transport layer's problem (401 before
		// admission); rejecting here keeps the accounting sound anyway.
		return Reject, time.Second
	}
	r.refillLocked(st)
	hasToken := st.t.RateRPS <= 0 || st.tokens >= 1
	hasSlot := st.t.MaxConcurrent <= 0 || st.running < st.t.MaxConcurrent
	if hasToken && hasSlot {
		if st.t.RateRPS > 0 {
			st.tokens--
		}
		st.running++
		return Admit, 0
	}
	if st.shed < st.t.shedSlots() {
		st.shed++
		return Degrade, 0
	}
	return Reject, r.retryAfterLocked(st)
}

// Release returns the slot taken by an Acquire that answered Admit
// (degraded=false) or Degrade (degraded=true).
func (r *Registry) Release(name string, degraded bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.byName[name]
	if !ok {
		return
	}
	if degraded {
		if st.shed > 0 {
			st.shed--
		}
	} else if st.running > 0 {
		st.running--
	}
}

// Running reports a tenant's in-flight jobs (full-quality, degraded).
func (r *Registry) Running(name string) (running, shed int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st, ok := r.byName[name]; ok {
		return st.running, st.shed
	}
	return 0, 0
}

// refillLocked advances the token bucket to now.
func (r *Registry) refillLocked(st *state) {
	now := r.now()
	if st.last.IsZero() {
		st.last = now
		return
	}
	if st.t.RateRPS > 0 {
		st.tokens = math.Min(st.t.burst(), st.tokens+now.Sub(st.last).Seconds()*st.t.RateRPS)
	}
	st.last = now
}

// retryAfterLocked estimates when the tenant will next hold a full
// token: the Retry-After a 429 carries. At least one second — clients
// that retry sub-second defeat the point.
func (r *Registry) retryAfterLocked(st *state) time.Duration {
	if st.t.RateRPS <= 0 {
		// Purely concurrency-limited: no refill schedule to promise.
		return time.Second
	}
	missing := 1 - st.tokens
	if missing <= 0 {
		return time.Second
	}
	d := time.Duration(missing / st.t.RateRPS * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	return d
}
