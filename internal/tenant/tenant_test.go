package tenant

import (
	"strings"
	"testing"
	"time"
)

const validFile = `{
  "tenants": [
    {"name": "research", "key": "research-key-1", "priority": 10,
     "rate_rps": 2, "burst": 2, "max_concurrent": 1},
    {"name": "batch", "key": "batch-key-001", "priority": 0,
     "rate_rps": 0.5, "max_concurrent": 2},
    {"name": "unlimited", "key": "unlimited-key"}
  ]
}`

func mustParse(t *testing.T, data string) *Registry {
	t.Helper()
	r, err := Parse([]byte(data))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// fakeClock lets tests move time deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock(r *Registry) *fakeClock {
	c := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	r.SetClock(c.now)
	return c
}

func TestParseValidation(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string // substring of the error
	}{
		{"empty", `{"tenants": []}`, "no tenants"},
		{"missing name", `{"tenants":[{"key":"abcdefgh"}]}`, "missing name"},
		{"missing key", `{"tenants":[{"name":"a"}]}`, "missing key"},
		{"short key", `{"tenants":[{"name":"a","key":"short"}]}`, "shorter than 8"},
		{"dup name", `{"tenants":[{"name":"a","key":"aaaaaaaa"},{"name":"a","key":"bbbbbbbb"}]}`, "duplicate tenant name"},
		{"dup key", `{"tenants":[{"name":"a","key":"aaaaaaaa"},{"name":"b","key":"aaaaaaaa"}]}`, "already used"},
		{"negative rate", `{"tenants":[{"name":"a","key":"aaaaaaaa","rate_rps":-1}]}`, "negative rate_rps"},
		{"negative priority", `{"tenants":[{"name":"a","key":"aaaaaaaa","priority":-3}]}`, "negative priority"},
		{"unknown field", `{"tenants":[{"name":"a","key":"aaaaaaaa","rps":5}]}`, "unknown field"},
		{"garbage", `{nope}`, "parsing"},
	}
	for _, c := range cases {
		_, err := Parse([]byte(c.data))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
	r := mustParse(t, validFile)
	if got := r.Names(); len(got) != 3 || got[0] != "batch" {
		t.Fatalf("Names = %v", got)
	}
}

func TestLookup(t *testing.T) {
	r := mustParse(t, validFile)
	tn, ok := r.Lookup("research-key-1")
	if !ok || tn.Name != "research" || tn.Priority != 10 {
		t.Fatalf("Lookup = %+v, %v", tn, ok)
	}
	if _, ok := r.Lookup("wrong-key"); ok {
		t.Fatal("unknown key resolved")
	}
}

func TestAcquireTokenBucket(t *testing.T) {
	r := mustParse(t, validFile)
	clk := newFakeClock(r)

	// research: rate 2/s, burst 2, max_concurrent 1.
	d, _ := r.Acquire("research")
	if d != Admit {
		t.Fatalf("first acquire = %v", d)
	}
	r.Release("research", false)

	// Second token still in the bucket.
	if d, _ := r.Acquire("research"); d != Admit {
		t.Fatalf("second acquire = %v", d)
	}
	r.Release("research", false)

	// Bucket empty: degrade, not reject.
	if d, _ := r.Acquire("research"); d != Degrade {
		t.Fatalf("over-rate acquire = %v, want Degrade", d)
	}
	// Shed slot (one, from max_concurrent 1) now full: reject with a
	// sensible Retry-After.
	d, retry := r.Acquire("research")
	if d != Reject {
		t.Fatalf("saturated acquire = %v, want Reject", d)
	}
	if retry < time.Second || retry > 5*time.Second {
		t.Fatalf("retryAfter = %v", retry)
	}
	r.Release("research", true)

	// Refill: at 2 rps, 600ms restores a full token.
	clk.advance(600 * time.Millisecond)
	if d, _ := r.Acquire("research"); d != Admit {
		t.Fatalf("post-refill acquire = %v, want Admit", d)
	}
}

func TestAcquireConcurrencyQuota(t *testing.T) {
	r := mustParse(t, validFile)
	newFakeClock(r)

	// batch: rate 0.5/s (burst defaults to 1), max_concurrent 2. Burn
	// the only token, then hold a slot: further requests degrade even
	// though a concurrency slot is free, because the bucket is empty.
	if d, _ := r.Acquire("batch"); d != Admit {
		t.Fatal("first batch acquire")
	}
	if d, _ := r.Acquire("batch"); d != Degrade {
		t.Fatal("tokenless acquire should degrade")
	}
	// Two shed slots (max_concurrent 2): one more degrade, then reject.
	if d, _ := r.Acquire("batch"); d != Degrade {
		t.Fatal("second shed slot should be free")
	}
	if d, _ := r.Acquire("batch"); d != Reject {
		t.Fatal("exhausted shed slots should reject")
	}
	if run, shed := r.Running("batch"); run != 1 || shed != 2 {
		t.Fatalf("Running = %d, %d", run, shed)
	}
	r.Release("batch", true)
	if d, _ := r.Acquire("batch"); d != Degrade {
		t.Fatal("released shed slot not reusable")
	}
}

func TestUnlimitedTenant(t *testing.T) {
	r := mustParse(t, validFile)
	newFakeClock(r)
	for i := 0; i < 50; i++ {
		if d, _ := r.Acquire("unlimited"); d != Admit {
			t.Fatalf("acquire %d = %v", i, d)
		}
	}
	if run, _ := r.Running("unlimited"); run != 50 {
		t.Fatalf("running = %d", run)
	}
}

func TestUnknownTenantRejects(t *testing.T) {
	r := mustParse(t, validFile)
	if d, _ := r.Acquire("nobody"); d != Reject {
		t.Fatalf("unknown tenant = %v", d)
	}
	r.Release("nobody", false) // must not panic
}

func TestReleaseNeverGoesNegative(t *testing.T) {
	r := mustParse(t, validFile)
	r.Release("research", false)
	r.Release("research", true)
	if run, shed := r.Running("research"); run != 0 || shed != 0 {
		t.Fatalf("Running after spurious release = %d, %d", run, shed)
	}
}

func TestDecisionString(t *testing.T) {
	if Admit.String() != "admit" || Degrade.String() != "degrade" || Reject.String() != "reject" {
		t.Fatal("Decision.String")
	}
}
