// Package models builds the seven benchmark inference graphs of the
// paper's evaluation (§6.1): BERT, ResNeXt-50, NasNet-A, NasRNN,
// Inception-v3, VGG-19 and SqueezeNet. The paper loads ONNX models;
// here each network is reconstructed from its published architecture
// with the tensor builder. Every constructor takes a Scale: ScaleTest
// shrinks channel counts and repeat counts so the full experiment
// suite runs on CPU in seconds, ScaleFull approximates the real
// layer dimensions. Both preserve the structural features the
// rewrites exploit (shared inputs, parallel branches, grouped
// convolutions, weight sharing across time steps).
package models

import (
	"fmt"

	"tensat/internal/tensor"
)

// Scale selects model sizing.
type Scale int

const (
	// ScaleTest is the reduced sizing used by tests and the default
	// experiment harness.
	ScaleTest Scale = iota
	// ScaleFull approximates the paper's model sizes.
	ScaleFull
)

// Model names a benchmark and how to build it.
type Model struct {
	Name  string
	Build func(Scale) *tensor.Graph
}

// Benchmarks returns the paper's seven models in Table 1 order.
func Benchmarks() []Model {
	return []Model{
		{Name: "NasRNN", Build: NasRNN},
		{Name: "BERT", Build: BERT},
		{Name: "ResNeXt-50", Build: ResNeXt50},
		{Name: "NasNet-A", Build: NasNetA},
		{Name: "SqueezeNet", Build: SqueezeNet},
		{Name: "VGG-19", Build: VGG19},
		{Name: "Inception-v3", Build: InceptionV3},
	}
}

// Extras returns additional models outside the paper's Table 1 set:
// ResNet-50 reproduces the paper's negative result (§6.1: "the rewrite
// rules from TASO cannot provide any speedup" on a T4).
func Extras() []Model {
	return []Model{{Name: "ResNet-50", Build: ResNet50}}
}

// ByName returns the named model (benchmarks plus extras).
func ByName(name string) (Model, error) {
	for _, m := range append(Benchmarks(), Extras()...) {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("models: unknown model %q", name)
}

// pick returns t for ScaleTest and f for ScaleFull.
func pick(s Scale, t, f int) int {
	if s == ScaleFull {
		return f
	}
	return t
}

// ResNet50 builds a reduced ResNet-50: bottleneck blocks with dense
// (ungrouped) convolutions and fused activations already in place.
// The paper notes (§6.1) that TASO's rules provide no speedup for
// ResNet-50 on a T4; it is included to reproduce that negative result
// (the graph is already near-optimal under the rule set: no shared-
// input branches to merge, activations already fusible by everyone).
func ResNet50(s Scale) *tensor.Graph {
	c := pick(s, 64, 256)
	mid := pick(s, 16, 64)
	blocks := pick(s, 2, 4)
	hw := pick(s, 14, 56)
	b := tensor.NewBuilder()
	x := b.Input("x", 1, c, hw, hw)
	for i := 0; i < blocks; i++ {
		name := fmt.Sprintf("b%d", i)
		w1 := b.Weight(name+".w1", mid, c, 1, 1)
		w2 := b.Weight(name+".w2", mid, mid, 3, 3)
		w3 := b.Weight(name+".w3", c, mid, 1, 1)
		y := b.Conv(1, 1, tensor.PadSame, tensor.ActRelu, x, w1)
		y = b.Conv(1, 1, tensor.PadSame, tensor.ActRelu, y, w2)
		y = b.Conv(1, 1, tensor.PadSame, tensor.ActNone, y, w3)
		x = b.Relu(b.Ewadd(x, y))
	}
	return b.MustFinish(x)
}

// NasRNN is the RNN cell found by neural architecture search (Zoph &
// Le 2017), unrolled over several steps with weights shared across
// steps. Its many matmuls sharing the step input are what the
// Figure 11 merge exploits, giving the paper's largest speedups.
func NasRNN(s Scale) *tensor.Graph {
	hidden := pick(s, 128, 512)
	steps := pick(s, 2, 4)
	batch := 1
	b := tensor.NewBuilder()

	// Shared weights: 8 input projections and 8 hidden projections.
	const combos = 8
	var wx, wh [combos]*tensor.Node
	for i := 0; i < combos; i++ {
		wx[i] = b.Weight(fmt.Sprintf("wx%d", i), hidden, hidden)
		wh[i] = b.Weight(fmt.Sprintf("wh%d", i), hidden, hidden)
	}
	h := b.Input("h0", batch, hidden)
	for step := 0; step < steps; step++ {
		x := b.Input(fmt.Sprintf("x%d", step), batch, hidden)
		// Each combination: activation(x Wx_i) * activation(h Wh_i).
		var units [combos]*tensor.Node
		for i := 0; i < combos; i++ {
			xi := b.Matmul(tensor.ActNone, x, wx[i])
			hi := b.Matmul(tensor.ActNone, h, wh[i])
			var a, c *tensor.Node
			switch i % 4 {
			case 0:
				a, c = b.Tanh(xi), b.Sigmoid(hi)
			case 1:
				a, c = b.Sigmoid(xi), b.Tanh(hi)
			case 2:
				a, c = b.Relu(xi), b.Sigmoid(hi)
			default:
				a, c = b.Tanh(xi), b.Tanh(hi)
			}
			units[i] = b.Ewmul(a, c)
		}
		// Combine pairwise with adds into the next hidden state.
		l1 := [4]*tensor.Node{}
		for i := 0; i < 4; i++ {
			l1[i] = b.Ewadd(units[2*i], units[2*i+1])
		}
		l2a := b.Ewadd(l1[0], l1[1])
		l2b := b.Ewadd(l1[2], l1[3])
		h = b.Tanh(b.Ewadd(l2a, l2b))
	}
	return b.MustFinish(h)
}

// BERT is a transformer encoder stack (Devlin et al. 2019): per layer,
// Q/K/V projections from a shared input (merged by Figure 8), scaled
// dot-product attention, the output projection, and a two-matmul
// feed-forward block with fused activations available.
func BERT(s Scale) *tensor.Graph {
	seq := pick(s, 64, 128)
	hid := pick(s, 256, 1024)
	ffn := hid * pick(s, 2, 4)
	layers := pick(s, 2, 4)
	b := tensor.NewBuilder()

	x := b.Input("x", seq, hid)
	for l := 0; l < layers; l++ {
		wq := b.Weight(fmt.Sprintf("l%d.wq", l), hid, hid)
		wk := b.Weight(fmt.Sprintf("l%d.wk", l), hid, hid)
		wv := b.Weight(fmt.Sprintf("l%d.wv", l), hid, hid)
		wo := b.Weight(fmt.Sprintf("l%d.wo", l), hid, hid)
		q := b.Matmul(tensor.ActNone, x, wq)
		k := b.Matmul(tensor.ActNone, x, wk)
		v := b.Matmul(tensor.ActNone, x, wv)
		scores := b.Matmul(tensor.ActNone, q, b.Transpose(k, 1, 0))
		attn := b.Matmul(tensor.ActNone, scores, v)
		proj := b.Matmul(tensor.ActNone, attn, wo)
		x = b.Ewadd(x, proj) // residual

		w1 := b.Weight(fmt.Sprintf("l%d.ffn1", l), hid, ffn)
		w2 := b.Weight(fmt.Sprintf("l%d.ffn2", l), ffn, hid)
		f := b.Relu(b.Matmul(tensor.ActNone, x, w1))
		f = b.Matmul(tensor.ActNone, f, w2)
		x = b.Ewadd(x, f)
	}
	return b.MustFinish(x)
}

// resNeXtBlock is the aggregated-transformation bottleneck (Xie et al.
// 2017): 1x1 reduce, 3x3 grouped conv (32 groups), 1x1 expand, with a
// residual add. The grouped convolution is what merge_gconv targets.
func resNeXtBlock(b *tensor.Builder, x *tensor.Node, name string, cIn, cMid, groups int) *tensor.Node {
	w1 := b.Weight(name+".w1", cMid, cIn, 1, 1)
	wg := b.Weight(name+".wg", cMid, cMid/groups, 3, 3)
	w2 := b.Weight(name+".w2", cIn, cMid, 1, 1)
	y := b.Conv(1, 1, tensor.PadSame, tensor.ActRelu, x, w1)
	y = b.Conv(1, 1, tensor.PadSame, tensor.ActRelu, y, wg)
	y = b.Conv(1, 1, tensor.PadSame, tensor.ActNone, y, w2)
	return b.Relu(b.Ewadd(x, y))
}

// ResNeXt50 builds a reduced ResNeXt-50 inference graph.
func ResNeXt50(s Scale) *tensor.Graph {
	c := pick(s, 64, 256)
	mid := pick(s, 32, 128)
	groups := 32
	blocks := pick(s, 2, 4)
	hw := pick(s, 14, 56)
	b := tensor.NewBuilder()
	x := b.Input("x", 1, c, hw, hw)
	for i := 0; i < blocks; i++ {
		x = resNeXtBlock(b, x, fmt.Sprintf("b%d", i), c, mid, groups)
	}
	return b.MustFinish(x)
}

// nasnetCell approximates a NasNet-A normal cell (Zoph et al. 2018):
// five branch pairs combining separable-style convolutions and
// poolings of two inputs, summed pairwise and concatenated. The
// ewadd-of-convs branches are Figure 10 targets.
func nasnetCell(b *tensor.Builder, prev, cur *tensor.Node, name string, ch int) *tensor.Node {
	sep := func(tag string, x *tensor.Node, k int) *tensor.Node {
		w := b.Weight(name+tag, ch, ch, k, k)
		return b.Conv(1, 1, tensor.PadSame, tensor.ActNone, x, w)
	}
	// Branch pairs, each summed.
	p1 := b.Ewadd(sep(".s3a", cur, 3), sep(".s3b", prev, 3))
	p2 := b.Ewadd(sep(".s5a", prev, 3), sep(".s3c", cur, 3))
	p3 := b.Ewadd(b.PoolAvg(cur, 3, 3, 1, 1, tensor.PadSame, tensor.ActNone), prev)
	p4 := b.Ewadd(b.PoolAvg(prev, 3, 3, 1, 1, tensor.PadSame, tensor.ActNone),
		b.PoolMax(prev, 3, 3, 1, 1, tensor.PadSame, tensor.ActNone))
	p5 := b.Ewadd(sep(".s5b", prev, 3), sep(".s3d", cur, 3))
	c1 := b.Concat(1, p1, p2)
	c2 := b.Concat(1, p3, p4)
	out := b.Concat(1, c1, c2)
	return b.Concat(1, out, p5)
}

// NasNetA builds a reduced NasNet-A inference graph.
func NasNetA(s Scale) *tensor.Graph {
	ch := pick(s, 32, 128)
	cells := pick(s, 1, 3)
	hw := pick(s, 14, 28)
	b := tensor.NewBuilder()
	prev := b.Input("prev", 1, ch, hw, hw)
	cur := b.Input("cur", 1, ch, hw, hw)
	var out *tensor.Node
	for i := 0; i < cells; i++ {
		out = nasnetCell(b, prev, cur, fmt.Sprintf("c%d", i), ch)
		// Project the 5*ch concat back to ch channels for the next cell.
		wp := b.Weight(fmt.Sprintf("proj%d", i), ch, 5*ch, 1, 1)
		prev, cur = cur, b.Conv(1, 1, tensor.PadSame, tensor.ActRelu, out, wp)
	}
	return b.MustFinish(cur)
}

// fireModule is SqueezeNet's building block (Iandola et al. 2017): a
// 1x1 squeeze followed by parallel 1x1 and 3x3 expands over the shared
// squeezed activation (enlarge + Figure 9 territory), concatenated.
func fireModule(b *tensor.Builder, x *tensor.Node, name string, sq, ex int) *tensor.Node {
	ws := b.Weight(name+".squeeze", sq, x.Meta.Shape[1], 1, 1)
	s := b.Conv(1, 1, tensor.PadSame, tensor.ActRelu, x, ws)
	w1 := b.Weight(name+".e1", ex, sq, 1, 1)
	w3 := b.Weight(name+".e3", ex, sq, 3, 3)
	e1 := b.Conv(1, 1, tensor.PadSame, tensor.ActRelu, s, w1)
	e3 := b.Conv(1, 1, tensor.PadSame, tensor.ActRelu, s, w3)
	return b.Concat(1, e1, e3)
}

// SqueezeNet builds a reduced SqueezeNet v1.1 inference graph.
func SqueezeNet(s Scale) *tensor.Graph {
	hw := pick(s, 28, 56)
	fires := pick(s, 2, 4)
	b := tensor.NewBuilder()
	x := b.Input("x", 1, 3, hw*2, hw*2)
	wc := b.Weight("conv1", 64, 3, 3, 3)
	y := b.Conv(2, 2, tensor.PadSame, tensor.ActRelu, x, wc)
	y = b.PoolMax(y, 3, 3, 2, 2, tensor.PadValid, tensor.ActNone)
	sq, ex := 16, 64
	for i := 0; i < fires; i++ {
		y = fireModule(b, y, fmt.Sprintf("fire%d", i+2), sq, ex)
		if i%2 == 1 {
			y = b.PoolMax(y, 3, 3, 2, 2, tensor.PadValid, tensor.ActNone)
			sq, ex = sq*2, ex*2
		}
	}
	return b.MustFinish(y)
}

// VGG19 builds a reduced VGG-19 inference graph (Liu & Deng 2015):
// straight 3x3 conv stacks with pooling; the optimizer's gains here
// come from activation fusion only, which is why VGG's speedup is
// identical for TASO and TENSAT in Table 1.
func VGG19(s Scale) *tensor.Graph {
	hw := pick(s, 32, 224)
	stages := pick(s, 3, 5)
	convsPerStage := pick(s, 2, 4)
	b := tensor.NewBuilder()
	x := b.Input("x", 1, 3, hw, hw)
	ch := 3
	outCh := pick(s, 32, 64)
	for st := 0; st < stages; st++ {
		for c := 0; c < convsPerStage; c++ {
			w := b.Weight(fmt.Sprintf("s%dc%d", st, c), outCh, ch, 3, 3)
			conv := b.Conv(1, 1, tensor.PadSame, tensor.ActNone, x, w)
			x = b.Relu(conv)
			ch = outCh
		}
		x = b.PoolMax(x, 2, 2, 2, 2, tensor.PadValid, tensor.ActNone)
		if st < 3 {
			outCh *= 2
		}
	}
	return b.MustFinish(x)
}

// inceptionModule approximates Inception-v3's module A (Szegedy et al.
// 2016): four parallel branches over a shared input — 1x1; 1x1->3x3;
// 1x1->3x3->3x3; pool->1x1 — concatenated on channels. The shared-input
// 1x1 convolutions are Figure 9 merge targets.
func inceptionModule(b *tensor.Builder, x *tensor.Node, name string, ch int) *tensor.Node {
	conv := func(tag string, in *tensor.Node, cout, k int, act int64) *tensor.Node {
		w := b.Weight(name+tag, cout, in.Meta.Shape[1], k, k)
		return b.Conv(1, 1, tensor.PadSame, act, in, w)
	}
	b1 := conv(".b1", x, ch, 1, tensor.ActRelu)
	b2 := conv(".b2b", conv(".b2a", x, ch, 1, tensor.ActRelu), ch, 3, tensor.ActRelu)
	b3 := conv(".b3c", conv(".b3b", conv(".b3a", x, ch, 1, tensor.ActRelu), ch, 3, tensor.ActRelu), ch, 3, tensor.ActRelu)
	pool := b.PoolAvg(x, 3, 3, 1, 1, tensor.PadSame, tensor.ActNone)
	b4 := conv(".b4", pool, ch, 1, tensor.ActRelu)
	return b.Concat(1, b.Concat(1, b1, b2), b.Concat(1, b3, b4))
}

// InceptionV3 builds a reduced Inception-v3 inference graph.
func InceptionV3(s Scale) *tensor.Graph {
	hw := pick(s, 14, 35)
	chIn := pick(s, 32, 192)
	ch := pick(s, 16, 64)
	modules := pick(s, 2, 3)
	b := tensor.NewBuilder()
	x := b.Input("x", 1, chIn, hw, hw)
	for i := 0; i < modules; i++ {
		x = inceptionModule(b, x, fmt.Sprintf("m%d", i), ch)
	}
	return b.MustFinish(x)
}
