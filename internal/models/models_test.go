package models

import (
	"testing"

	"tensat/internal/cost"
	"tensat/internal/tensor"
)

func TestAllBenchmarksBuildAndValidate(t *testing.T) {
	for _, m := range Benchmarks() {
		for _, s := range []Scale{ScaleTest, ScaleFull} {
			g := m.Build(s)
			if err := g.Validate(); err != nil {
				t.Errorf("%s scale %d: %v", m.Name, s, err)
			}
			if g.OpCount() < 5 {
				t.Errorf("%s scale %d: only %d op nodes", m.Name, s, g.OpCount())
			}
		}
	}
}

func TestBenchmarksAreDeterministic(t *testing.T) {
	for _, m := range Benchmarks() {
		if m.Build(ScaleTest).Hash() != m.Build(ScaleTest).Hash() {
			t.Errorf("%s: nondeterministic build", m.Name)
		}
	}
}

func TestFullScaleIsLarger(t *testing.T) {
	for _, m := range Benchmarks() {
		small := cost.GraphCost(cost.NewT4(), m.Build(ScaleTest))
		full := cost.GraphCost(cost.NewT4(), m.Build(ScaleFull))
		if full <= small {
			t.Errorf("%s: full-scale cost %v not above test-scale %v", m.Name, full, small)
		}
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("BERT")
	if err != nil || m.Name != "BERT" {
		t.Fatalf("ByName(BERT) = %v, %v", m, err)
	}
	if _, err := ByName("NoSuchNet"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestStructuralFeatures(t *testing.T) {
	// NasRNN: many matmuls (the Figure 11 merge fuel).
	if h := NasRNN(ScaleTest).OpHistogram(); h[tensor.OpMatmul] < 16 {
		t.Errorf("NasRNN has only %d matmuls", h[tensor.OpMatmul])
	}
	// BERT: matmuls and transposes.
	if h := BERT(ScaleTest).OpHistogram(); h[tensor.OpMatmul] < 10 || h[tensor.OpTranspose] == 0 {
		t.Errorf("BERT histogram unexpected: %v", tensor.HistogramString(h))
	}
	// ResNeXt: grouped convolution present (weight cin < channels).
	found := false
	for _, n := range ResNeXt50(ScaleTest).Nodes() {
		if n.Op == tensor.OpConv {
			x, w := n.Inputs[4].Meta.Shape, n.Inputs[5].Meta.Shape
			if w[1] < x[1] {
				found = true
			}
		}
	}
	if !found {
		t.Error("ResNeXt-50 has no grouped convolution")
	}
	// SqueezeNet / Inception: concats of parallel conv branches.
	if h := SqueezeNet(ScaleTest).OpHistogram(); h[tensor.OpConcat2] == 0 {
		t.Error("SqueezeNet has no concat")
	}
	if h := InceptionV3(ScaleTest).OpHistogram(); h[tensor.OpConcat2] < 3 {
		t.Error("Inception-v3 lacks branch concats")
	}
	// NasNet: ewadds of parallel branches (Figure 10 fuel).
	if h := NasNetA(ScaleTest).OpHistogram(); h[tensor.OpEwadd] < 4 {
		t.Error("NasNet-A lacks branch adds")
	}
	// VGG: plain conv/relu chain.
	h := VGG19(ScaleTest).OpHistogram()
	if h[tensor.OpRelu] == 0 || h[tensor.OpConv] == 0 {
		t.Error("VGG-19 lacks conv+relu pairs")
	}
}

func TestSingleOutputGraphs(t *testing.T) {
	for _, m := range Benchmarks() {
		g := m.Build(ScaleTest)
		if len(g.Outputs) != 1 {
			t.Errorf("%s: %d outputs", m.Name, len(g.Outputs))
		}
	}
}

func TestResNet50BuildsAndIsNearOptimal(t *testing.T) {
	g := ResNet50(ScaleTest)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper found no speedup for ResNet-50 under TASO's rules
	// (§6.1); structurally there is nothing for the merges to grab.
	h := g.OpHistogram()
	if h[tensor.OpConv] < 6 {
		t.Fatalf("too few convs: %v", tensor.HistogramString(h))
	}
}
