package fault

import (
	"errors"
	"syscall"
	"testing"
	"time"
)

func TestInertFastPath(t *testing.T) {
	Reset()
	if err := Check("store.put"); err != nil {
		t.Fatalf("unarmed Check returned %v", err)
	}
	if Active() {
		t.Fatal("Active() true with nothing armed")
	}
	if Hits("store.put") != 0 {
		t.Fatal("unarmed point recorded hits")
	}
}

func TestArmErrorAndDisarm(t *testing.T) {
	Reset()
	defer Reset()
	Arm("store.put", Action{Mode: ModeError})
	if !Active() {
		t.Fatal("Active() false after Arm")
	}
	if err := Check("store.put"); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	// Other points stay inert.
	if err := Check("store.get"); err != nil {
		t.Fatalf("unarmed sibling point returned %v", err)
	}
	Disarm("store.put")
	if Active() {
		t.Fatal("Active() true after Disarm")
	}
	if err := Check("store.put"); err != nil {
		t.Fatalf("disarmed Check returned %v", err)
	}
}

func TestCustomError(t *testing.T) {
	Reset()
	defer Reset()
	sentinel := errors.New("boom")
	Arm("peer.fetch", Action{Mode: ModeError, Err: sentinel})
	if err := Check("peer.fetch"); !errors.Is(err, sentinel) {
		t.Fatalf("want wrapped sentinel, got %v", err)
	}
}

func TestENOSPC(t *testing.T) {
	Reset()
	defer Reset()
	Arm("store.put", Action{Mode: ModeENOSPC})
	if err := Check("store.put"); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
}

func TestCountedTrigger(t *testing.T) {
	Reset()
	defer Reset()
	Arm("peer.fetch", Action{Mode: ModeError, Count: 2})
	if err := Check("peer.fetch"); err == nil {
		t.Fatal("first check should fire")
	}
	if err := Check("peer.fetch"); err == nil {
		t.Fatal("second check should fire")
	}
	if err := Check("peer.fetch"); err != nil {
		t.Fatalf("third check should pass, got %v", err)
	}
	if got := Hits("peer.fetch"); got != 3 {
		t.Fatalf("Hits = %d, want 3", got)
	}
}

func TestPanicMode(t *testing.T) {
	Reset()
	defer Reset()
	Arm("rewrite.apply", Action{Mode: ModePanic, Count: 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("armed panic point did not panic")
			}
		}()
		Check("rewrite.apply")
	}()
	if err := Check("rewrite.apply"); err != nil {
		t.Fatalf("counted panic fired twice: %v", err)
	}
}

func TestSleepMode(t *testing.T) {
	Reset()
	defer Reset()
	Arm("peer.fetch", Action{Mode: ModeSleep, Sleep: 20 * time.Millisecond})
	start := time.Now()
	if err := Check("peer.fetch"); err != nil {
		t.Fatalf("sleep mode returned error %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("sleep mode returned after %v, want >= 20ms", d)
	}
}

func TestArmUnknownPointPanics(t *testing.T) {
	Reset()
	defer Reset()
	defer func() {
		if recover() == nil {
			t.Error("Arm of unknown point did not panic")
		}
	}()
	Arm("no.such.point", Action{Mode: ModeError})
}

func TestParseSpec(t *testing.T) {
	Reset()
	defer Reset()
	spec := "peer.fetch:error:3, store.put:enospc, rewrite.apply:panic:1, peer.push:sleep=5ms"
	if err := ParseSpec(spec); err != nil {
		t.Fatalf("ParseSpec(%q) = %v", spec, err)
	}
	if !Active() {
		t.Fatal("spec armed nothing")
	}
	if err := Check("store.put"); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("store.put: want ENOSPC, got %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := Check("peer.fetch"); err == nil {
			t.Fatalf("peer.fetch check %d should fire", i+1)
		}
	}
	if err := Check("peer.fetch"); err != nil {
		t.Fatalf("peer.fetch count exhausted but still fired: %v", err)
	}
}

func TestParseSpecEmpty(t *testing.T) {
	Reset()
	defer Reset()
	if err := ParseSpec("  "); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	if Active() {
		t.Fatal("empty spec armed something")
	}
}

func TestParseSpecErrors(t *testing.T) {
	Reset()
	defer Reset()
	bad := []string{
		"nosuch.point:error",
		"store.put",
		"store.put:explode",
		"store.put:error:0",
		"store.put:error:-1",
		"store.put:error:x",
		"store.put:sleep=banana",
		"store.put:error:1:extra",
	}
	for _, spec := range bad {
		if err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted a bad spec", spec)
		}
		if Active() {
			t.Fatalf("ParseSpec(%q) armed something despite erroring", spec)
		}
	}
}

func TestConcurrentChecks(t *testing.T) {
	Reset()
	defer Reset()
	Arm("peer.fetch", Action{Mode: ModeError, Count: 50})
	done := make(chan int)
	for g := 0; g < 4; g++ {
		go func() {
			n := 0
			for i := 0; i < 100; i++ {
				if Check("peer.fetch") != nil {
					n++
				}
			}
			done <- n
		}()
	}
	total := 0
	for g := 0; g < 4; g++ {
		total += <-done
	}
	if total != 50 {
		t.Fatalf("counted fault fired %d times across goroutines, want exactly 50", total)
	}
}
