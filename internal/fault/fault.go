// Package fault is tensat's deterministic fault-injection framework.
// Call sites on the I/O and compute hot paths name an injection point
// (a short dotted string like "store.put" or "peer.fetch") and consult
// it with Check before doing the real work. The framework is compiled
// in always — there is no build tag — but costs a single atomic load
// when no fault is armed, so production binaries pay nothing for it.
//
// Faults are armed programmatically from tests (Arm/Disarm/Reset) or
// at daemon start from the dev-only `tensatd -fault-spec` flag, whose
// grammar ParseSpec implements. A fault fires deterministically: an
// armed point triggers on every Check, or on exactly the first Count
// checks when a count is given, which is how a chaos test expresses
// "fail the first three peer fetches, then recover" and observe a
// circuit breaker trip and re-close.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Mode selects what an armed point does when a Check reaches it.
type Mode int

const (
	// ModeError makes Check return the configured error (ErrInjected
	// unless the arming supplied one).
	ModeError Mode = iota
	// ModeENOSPC makes Check return an error wrapping syscall.ENOSPC,
	// simulating a full disk.
	ModeENOSPC
	// ModePanic makes Check panic, simulating a buggy rule or cost
	// model. The panic value wraps the point name.
	ModePanic
	// ModeSleep makes Check sleep for the configured duration and then
	// return nil, simulating a slow dependency (the caller's own
	// timeout machinery decides whether that is fatal).
	ModeSleep
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModeENOSPC:
		return "enospc"
	case ModePanic:
		return "panic"
	case ModeSleep:
		return "sleep"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ErrInjected is the default error returned by a point armed in
// ModeError. Call sites and tests match it with errors.Is.
var ErrInjected = errors.New("fault: injected error")

// Action describes how an armed point misbehaves.
type Action struct {
	// Mode selects the behavior; see the Mode constants.
	Mode Mode
	// Count limits how many Checks trigger: the first Count checks
	// fire, later ones pass through. 0 means every check fires until
	// the point is disarmed.
	Count int
	// Err overrides the error returned in ModeError. Ignored by the
	// other modes.
	Err error
	// Sleep is the ModeSleep duration.
	Sleep time.Duration
}

// Points is the registry of injection-point names compiled into the
// binary, mapping each to a short description. ParseSpec rejects names
// outside this set so a typo in -fault-spec fails loudly at boot
// instead of arming nothing.
var Points = map[string]string{
	"store.put":            "cachestore record append (before the frame write)",
	"store.fsync":          "cachestore fsync after a record append",
	"store.get":            "cachestore record read",
	"store.compact.rename": "cachestore compaction temp-file rename",
	"peer.fetch":           "cluster peer cache GET",
	"peer.push":            "cluster peer cache PUT",
	"rewrite.apply":        "rewrite rule application",
}

// armed is the fast-path gate: zero means no point anywhere is armed
// and Check returns nil after one atomic load.
var armed atomic.Int32

var (
	mu     sync.Mutex
	points map[string]*point
)

type point struct {
	action Action
	fired  int
	hits   int
}

// Arm configures a fault at the named point, replacing any previous
// action there. It panics on a name outside Points: arming a point
// that no call site consults is always a bug in the test or spec.
func Arm(name string, a Action) {
	if _, ok := Points[name]; !ok {
		panic(fmt.Sprintf("fault: unknown injection point %q", name))
	}
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string]*point)
	}
	if _, ok := points[name]; !ok {
		armed.Add(1)
	}
	points[name] = &point{action: a}
}

// Disarm removes the fault at the named point, if any. Hit counts for
// the point are discarded.
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
}

// Reset disarms every point and clears all hit counts, returning the
// framework to its inert state. Tests that arm faults must defer a
// Reset so state cannot leak across tests.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = nil
	armed.Store(0)
}

// Active reports whether any point is currently armed. tensatd uses it
// to log a loud warning at boot when -fault-spec armed something.
func Active() bool {
	return armed.Load() != 0
}

// Hits reports how many Checks have reached the named point since it
// was armed, whether or not they triggered. Zero for unarmed points.
func Hits(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.hits
	}
	return 0
}

// Check consults the named injection point. When the point is not
// armed (the overwhelmingly common case) it returns nil after a single
// atomic load. When armed, the point's Action decides: an error is
// returned, a panic is raised, or a sleep is served and nil returned.
// A counted action stops triggering after its first Count checks.
func Check(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	p, ok := points[name]
	if !ok {
		mu.Unlock()
		return nil
	}
	p.hits++
	if p.action.Count > 0 && p.fired >= p.action.Count {
		mu.Unlock()
		return nil
	}
	p.fired++
	a := p.action
	mu.Unlock()

	switch a.Mode {
	case ModeError:
		if a.Err != nil {
			return fmt.Errorf("fault %s: %w", name, a.Err)
		}
		return fmt.Errorf("fault %s: %w", name, ErrInjected)
	case ModeENOSPC:
		return fmt.Errorf("fault %s: %w", name, syscall.ENOSPC)
	case ModePanic:
		panic(fmt.Sprintf("fault %s: injected panic", name))
	case ModeSleep:
		time.Sleep(a.Sleep)
		return nil
	default:
		return fmt.Errorf("fault %s: %w", name, ErrInjected)
	}
}

// ParseSpec parses the -fault-spec grammar and arms every fault it
// names. A spec is a comma-separated list of clauses:
//
//	point:mode[:count]
//
// where mode is one of "error", "enospc", "panic", or "sleep=<dur>"
// (Go duration syntax), and the optional count limits the fault to the
// first count checks. Examples:
//
//	peer.fetch:error:3          fail the first three peer fetches
//	store.put:enospc            every store append sees a full disk
//	rewrite.apply:panic:1       panic exactly once in rule application
//	peer.fetch:sleep=500ms      every peer fetch takes an extra 500ms
//
// An empty spec arms nothing and returns nil. Unknown points, modes,
// or malformed clauses return an error without arming anything.
//
//lint:ctxflow-exempt one pass over the flag-sized spec string at startup
func ParseSpec(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	type armReq struct {
		name   string
		action Action
	}
	var reqs []armReq
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		parts := strings.Split(clause, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return fmt.Errorf("fault: bad clause %q (want point:mode[:count])", clause)
		}
		name := strings.TrimSpace(parts[0])
		if _, ok := Points[name]; !ok {
			return fmt.Errorf("fault: unknown injection point %q (known: %s)", name, strings.Join(Names(), ", "))
		}
		var a Action
		modeStr := strings.TrimSpace(parts[1])
		switch {
		case modeStr == "error":
			a.Mode = ModeError
		case modeStr == "enospc":
			a.Mode = ModeENOSPC
		case modeStr == "panic":
			a.Mode = ModePanic
		case strings.HasPrefix(modeStr, "sleep="):
			d, err := time.ParseDuration(strings.TrimPrefix(modeStr, "sleep="))
			if err != nil || d < 0 {
				return fmt.Errorf("fault: bad sleep duration in %q", clause)
			}
			a.Mode = ModeSleep
			a.Sleep = d
		default:
			return fmt.Errorf("fault: unknown mode %q in %q (want error, enospc, panic, or sleep=<dur>)", modeStr, clause)
		}
		if len(parts) == 3 {
			n, err := strconv.Atoi(strings.TrimSpace(parts[2]))
			if err != nil || n <= 0 {
				return fmt.Errorf("fault: bad count in %q (want a positive integer)", clause)
			}
			a.Count = n
		}
		reqs = append(reqs, armReq{name: name, action: a})
	}
	for _, r := range reqs {
		Arm(r.name, r.action)
	}
	return nil
}

// Names returns the registered injection-point names, sorted.
//
//lint:ctxflow-exempt bounded pass over the compile-time point table
func Names() []string {
	out := make([]string, 0, len(Points))
	for n := range Points {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
