package rules

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strings"

	"tensat/internal/rewrite"
)

// This file implements the textual .rules format: user-supplied rewrite
// rule sets loaded at runtime (tensatd -rules-dir, tensat.Registry).
// One rule per line,
//
//	name: (lhs-pattern) => (rhs-pattern)     — one direction
//	name: (lhs-pattern) <=> (rhs-pattern)    — both directions
//	                                           (name and name-rev)
//
// with '#' and ';' starting comments. Patterns are the same
// S-expressions the built-in rule tables use (internal/pattern), so a
// loaded rule passes through exactly the rewrite.NewRule machinery —
// parse, variable-binding validation — that compiles the built-ins,
// and is shape-checked by the engine at match time like any other
// rule. Multi-pattern rules are not expressible in files; they need
// Go-side coordination (rules.Multi).

// ParseRuleSet compiles the .rules text format. source names the input
// (a file path) for error messages; errors carry source:line positions.
// It returns an error — never a partial set — when any line is
// malformed, a pattern fails to parse, a target variable is unbound, a
// rule name repeats, or the file defines no rules at all.
func ParseRuleSet(source string, data []byte) ([]*rewrite.Rule, error) {
	var rs []*rewrite.Rule
	seen := make(map[string]int)
	add := func(lineno int, r *rewrite.Rule) error {
		if prev, dup := seen[r.Name]; dup {
			return fmt.Errorf("%s:%d: duplicate rule name %q (first defined on line %d)", source, lineno, r.Name, prev)
		}
		seen[r.Name] = lineno
		rs = append(rs, r)
		return nil
	}
	for i, line := range strings.Split(string(data), "\n") {
		lineno := i + 1
		if cut := strings.IndexAny(line, "#;"); cut >= 0 {
			line = line[:cut]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		name, rest, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("%s:%d: missing \"name:\" prefix", source, lineno)
		}
		name = strings.TrimSpace(name)
		if err := checkRuleName(name); err != nil {
			return nil, fmt.Errorf("%s:%d: %v", source, lineno, err)
		}
		// "<=>" contains "=>", so test for the bidirectional arrow first.
		lhs, rhs, bidi := strings.Cut(rest, "<=>")
		if !bidi {
			lhs, rhs, ok = strings.Cut(rest, "=>")
			if !ok {
				return nil, fmt.Errorf("%s:%d: missing \"=>\" or \"<=>\" arrow", source, lineno)
			}
		}
		lhs, rhs = strings.TrimSpace(lhs), strings.TrimSpace(rhs)
		r, err := rewrite.NewRule(name, lhs, rhs)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", source, lineno, err)
		}
		if err := add(lineno, r); err != nil {
			return nil, err
		}
		if bidi {
			rev, err := rewrite.NewRule(name+"-rev", rhs, lhs)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", source, lineno, err)
			}
			if err := add(lineno, rev); err != nil {
				return nil, err
			}
		}
	}
	if len(rs) == 0 {
		return nil, fmt.Errorf("%s: no rules defined", source)
	}
	return rs, nil
}

// CheckName restricts rule and profile names to a conservative
// identifier alphabet (letters, digits, '-', '_', '.') so they survive
// logs, URLs, the "<ruleset>/<costmodel>" stats labels, and the hash
// encoding unescaped.
func CheckName(name string) error {
	if name == "" {
		return fmt.Errorf("empty name")
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("name %q: invalid character %q", name, c)
		}
	}
	return nil
}

func checkRuleName(name string) error {
	if err := CheckName(name); err != nil {
		return fmt.Errorf("rule %v", err)
	}
	return nil
}

// Hash computes the content hash of a rule set: a SHA-256 over the rule
// names and the canonical S-expression renderings of every source and
// target pattern, in rule order. Two rule sets hash alike exactly when
// they apply the same named patterns in the same order, whatever file
// or code they were loaded from — the property the serving cache key
// relies on so cache entries survive a registry reload only when the
// rules are unchanged. A Go-side applicability condition (Rule.Cond)
// is opaque to hashing and contributes only a presence marker.
func Hash(rs []*rewrite.Rule) string {
	h := sha256.New()
	io.WriteString(h, "tensat-ruleset-v1")
	put := func(s string) { fmt.Fprintf(h, "%d:%s", len(s), s) }
	for _, r := range rs {
		put(r.Name)
		for _, p := range r.Sources {
			put(p.String())
		}
		for _, p := range r.Targets {
			put(p.String())
		}
		if r.Cond != nil {
			put("cond")
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
