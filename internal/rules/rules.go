// Package rules provides the rewrite-rule set used by TENSAT's
// experiments. The paper reuses TASO's automatically generated and
// verified rules (§6.1: "We use the same set of rewrite rules as TASO
// for our experiments"); TASO's generator is not available here, so
// this is a hand-written, shape-checked set covering the same rule
// families, including every pattern the paper's appendix shows in use
// (Figures 2 and 8-11). All rules are validated by the engine's shape
// checking before application, so rules that need preconditions beyond
// syntax (split markers, divisibility of channels, matching spatial
// dims) are stated in full generality here and pruned at match time.
package rules

import (
	"tensat/internal/egraph"
	"tensat/internal/pattern"
	"tensat/internal/rewrite"
	"tensat/internal/tensor"
)

// Default returns the full rule set: all single-pattern rules plus the
// multi-pattern merges.
func Default() []*rewrite.Rule {
	return append(Single(), Multi()...)
}

// Single returns the single-pattern rules.
func Single() []*rewrite.Rule {
	var rs []*rewrite.Rule
	bi := func(name, a, b string) { rs = append(rs, rewrite.Bidirectional(name, a, b)...) }
	one := func(name, a, b string) { rs = append(rs, rewrite.MustRule(name, a, b)) }

	// --- element-wise algebra ---
	one("ewadd-comm", "(ewadd ?x ?y)", "(ewadd ?y ?x)")
	bi("ewadd-assoc", "(ewadd ?x (ewadd ?y ?z))", "(ewadd (ewadd ?x ?y) ?z)")
	one("ewmul-comm", "(ewmul ?x ?y)", "(ewmul ?y ?x)")
	bi("ewmul-assoc", "(ewmul ?x (ewmul ?y ?z))", "(ewmul (ewmul ?x ?y) ?z)")
	bi("distribute-mul-over-add", "(ewmul (ewadd ?x ?y) ?z)", "(ewadd (ewmul ?x ?z) (ewmul ?y ?z))")

	// --- matmul algebra (activation-free forms only) ---
	bi("matmul-assoc", "(matmul 0 ?x (matmul 0 ?y ?z))", "(matmul 0 (matmul 0 ?x ?y) ?z)")
	bi("matmul-linear-rhs", "(matmul 0 ?x (ewadd ?y ?z))", "(ewadd (matmul 0 ?x ?y) (matmul 0 ?x ?z))")
	bi("matmul-linear-lhs", "(matmul 0 (ewadd ?x ?y) ?z)", "(ewadd (matmul 0 ?x ?z) (matmul 0 ?y ?z))")

	// --- activation fusion ---
	bi("matmul-fuse-sigmoid", "(sigmoid (matmul 0 ?x ?y))", "(matmul 1 ?x ?y)")
	bi("matmul-fuse-relu", "(relu (matmul 0 ?x ?y))", "(matmul 2 ?x ?y)")
	bi("matmul-fuse-tanh", "(tanh (matmul 0 ?x ?y))", "(matmul 3 ?x ?y)")
	bi("conv-fuse-relu", "(relu (conv ?sh ?sw ?p 0 ?x ?w))", "(conv ?sh ?sw ?p 2 ?x ?w)")

	// --- transpose geometry ---
	bi("relu-transpose", "(relu (transpose ?x ?perm))", "(transpose (relu ?x) ?perm)")
	bi("ewadd-transpose", "(ewadd (transpose ?x ?perm) (transpose ?y ?perm))", "(transpose (ewadd ?x ?y) ?perm)")
	bi("ewmul-transpose", "(ewmul (transpose ?x ?perm) (transpose ?y ?perm))", "(transpose (ewmul ?x ?y) ?perm)")
	bi("matmul-transpose-2d",
		`(transpose (matmul 0 ?x ?y) "1 0")`,
		`(matmul 0 (transpose ?y "1 0") (transpose ?x "1 0"))`)
	rs = append(rs, transposeInverse())

	// --- concat / split structure ---
	// split reads the boundary from its input's e-class analysis (the
	// "most recent concat" of §3.1), so undoing a concat is only sound
	// when the class marker still sits at this concat's boundary —
	// merging can move it (e.g. via concat-assoc). The condition
	// enforces that.
	rs = append(rs, splitOfConcat("split0-of-concat", "(split0 (split ?a (concat2 ?a ?x ?y)))", "?x"))
	rs = append(rs, splitOfConcat("split1-of-concat", "(split1 (split ?a (concat2 ?a ?x ?y)))", "?y"))
	one("concat-of-splits", "(concat2 ?a (split0 (split ?a ?t)) (split1 (split ?a ?t)))", "?t")
	bi("concat-assoc", "(concat2 ?a ?x (concat2 ?a ?y ?z))", "(concat2 ?a (concat2 ?a ?x ?y) ?z)")
	bi("concat-ewadd", "(ewadd (concat2 ?a ?x ?y) (concat2 ?a ?z ?w))", "(concat2 ?a (ewadd ?x ?z) (ewadd ?y ?w))")
	bi("concat-ewmul", "(ewmul (concat2 ?a ?x ?y) (concat2 ?a ?z ?w))", "(concat2 ?a (ewmul ?x ?z) (ewmul ?y ?w))")
	bi("concat-relu", "(concat2 ?a (relu ?x) (relu ?y))", "(relu (concat2 ?a ?x ?y))")
	bi("concat-tanh", "(concat2 ?a (tanh ?x) (tanh ?y))", "(tanh (concat2 ?a ?x ?y))")
	bi("concat-sigmoid", "(concat2 ?a (sigmoid ?x) (sigmoid ?y))", "(sigmoid (concat2 ?a ?x ?y))")

	// --- operator merging through concat (Figures 8, 9, 11 as
	//     single-pattern rules rooted at the combining op) ---
	bi("matmul-concat-cols", "(concat2 1 (matmul ?act ?x ?y) (matmul ?act ?x ?z))", "(matmul ?act ?x (concat2 1 ?y ?z))")
	bi("matmul-concat-rows", "(concat2 0 (matmul ?act ?x ?w) (matmul ?act ?y ?w))", "(matmul ?act (concat2 0 ?x ?y) ?w)")
	bi("conv-concat-outchannels",
		"(concat2 1 (conv ?sh ?sw ?p ?act ?x ?w1) (conv ?sh ?sw ?p ?act ?x ?w2))",
		"(conv ?sh ?sw ?p ?act ?x (concat2 0 ?w1 ?w2))")
	bi("conv-concat-batch",
		"(concat2 0 (conv ?sh ?sw ?p ?act ?x ?w) (conv ?sh ?sw ?p ?act ?y ?w))",
		"(conv ?sh ?sw ?p ?act (concat2 0 ?x ?y) ?w)")
	// Figure 10: two convolutions summed = one convolution over
	// channel-concatenated inputs and weights (weights fold offline).
	bi("conv-add-to-concat-inchannels",
		"(ewadd (conv ?sh ?sw ?p 0 ?x ?w1) (conv ?sh ?sw ?p 0 ?y ?w2))",
		"(conv ?sh ?sw ?p 0 (concat2 1 ?x ?y) (concat2 1 ?w1 ?w2))")
	bi("pool-concat-channels",
		"(concat2 1 (poolmax ?x ?kh ?kw ?sh ?sw ?p ?act) (poolmax ?y ?kh ?kw ?sh ?sw ?p ?act))",
		"(poolmax (concat2 1 ?x ?y) ?kh ?kw ?sh ?sw ?p ?act)")
	bi("poolavg-concat-channels",
		"(concat2 1 (poolavg ?x ?kh ?kw ?sh ?sw ?p ?act) (poolavg ?y ?kh ?kw ?sh ?sw ?p ?act))",
		"(poolavg (concat2 1 ?x ?y) ?kh ?kw ?sh ?sw ?p ?act)")

	// --- grouped convolution merging (TASO's merge_gconv; shape
	//     checking rejects it when count does not divide the groups,
	//     and the condition pins the cout == C geometry merge's
	//     zero-pad layout is defined for) ---
	rs = append(rs, mergeGconv())

	return rs
}

// splitOfConcat builds a guarded split-elimination rule: it fires only
// when the e-class holding (concat2 ?a ?x ?y) carries a split marker
// exactly at ?x's boundary, so split(?a, ·) provably undoes this
// concat and not some other member of the class.
func splitOfConcat(name, src, dst string) *rewrite.Rule {
	r := rewrite.MustRule(name, src, dst)
	r.Cond = func(g *egraph.EGraph, s pattern.Subst) bool {
		am := rewrite.ClassMeta(g, s["?a"])
		xm := rewrite.ClassMeta(g, s["?x"])
		ym := rewrite.ClassMeta(g, s["?y"])
		if am == nil || xm == nil || ym == nil || am.Kind != tensor.KindInt {
			return false
		}
		axis := int(am.IVal)
		if axis < 0 || axis >= len(xm.Shape) {
			return false
		}
		// Locate the concat node's class and check its marker.
		node := egraph.Node{
			Op:       egraph.Op(concatOpFor(2)),
			Children: []egraph.ClassID{s["?a"], s["?x"], s["?y"]},
		}
		id, ok := g.Lookup(node)
		if !ok {
			return false
		}
		cm := rewrite.ClassMeta(g, id)
		return cm != nil && cm.HasSplit && cm.SplitAxis == axis && cm.SplitAt == xm.Shape[axis]
	}
	return r
}

func concatOpFor(n int) tensor.Op {
	op, err := tensor.ConcatOp(n)
	if err != nil {
		panic(err)
	}
	return op
}

// mergeGconv builds the conditional merge_gconv rule.
func mergeGconv() *rewrite.Rule {
	r := rewrite.MustRule("merge-gconv",
		"(conv ?sh ?sw 0 ?act ?x ?w)", "(conv ?sh ?sw 0 ?act ?x (merge ?w 2))")
	r.Cond = func(g *egraph.EGraph, s pattern.Subst) bool {
		xm := rewrite.ClassMeta(g, s["?x"])
		wm := rewrite.ClassMeta(g, s["?w"])
		if xm == nil || wm == nil || len(xm.Shape) != 4 || len(wm.Shape) != 4 {
			return false
		}
		// cout == C, and actually grouped (cinPG < C).
		return wm.Shape[0] == xm.Shape[1] && wm.Shape[1] < xm.Shape[1]
	}
	return r
}

// Multi returns the multi-pattern rules (§4), applied via Algorithm 1.
func Multi() []*rewrite.Rule {
	var rs []*rewrite.Rule
	multi := func(name, src, dst string) { rs = append(rs, rewrite.MustMultiRule(name, src, dst)) }

	// Figure 2 / Figure 8: two matmuls sharing the left input.
	multi("merge-matmuls-shared-input",
		"(matmul ?act ?x ?y) (matmul ?act ?x ?z)",
		"(split0 (split 1 (matmul ?act ?x (concat2 1 ?y ?z)))) "+
			"(split1 (split 1 (matmul ?act ?x (concat2 1 ?y ?z))))")

	// Figure 11 dual: two matmuls sharing the weight.
	multi("merge-matmuls-shared-weight",
		"(matmul ?act ?x ?w) (matmul ?act ?y ?w)",
		"(split0 (split 0 (matmul ?act (concat2 0 ?x ?y) ?w))) "+
			"(split1 (split 0 (matmul ?act (concat2 0 ?x ?y) ?w)))")

	// Figure 9: two convolutions sharing the input; weights concatenate
	// on output channels, result splits on the channel axis.
	multi("merge-convs-shared-input",
		"(conv ?sh ?sw ?p ?act ?x ?w1) (conv ?sh ?sw ?p ?act ?x ?w2)",
		"(split0 (split 1 (conv ?sh ?sw ?p ?act ?x (concat2 0 ?w1 ?w2)))) "+
			"(split1 (split 1 (conv ?sh ?sw ?p ?act ?x (concat2 0 ?w1 ?w2))))")

	// Parallel element-wise operators batch into one kernel over
	// concatenated operands (with the halves recovered by split) — the
	// element-wise analogue of the Figure 2 merge, which is what turns
	// NasRNN's many small activation/multiply kernels into a few wide
	// ones (appendix Figure 11's surroundings).
	ewPair := func(name, op string) {
		multi("merge-"+name+"-pair",
			"("+op+" ?x) ("+op+" ?y)",
			"(split0 (split 1 ("+op+" (concat2 1 ?x ?y)))) "+
				"(split1 (split 1 ("+op+" (concat2 1 ?x ?y))))")
	}
	ewPair("tanh", "tanh")
	ewPair("sigmoid", "sigmoid")
	ewPair("relu", "relu")
	multi("merge-ewmul-pair",
		"(ewmul ?a ?b) (ewmul ?c ?d)",
		"(split0 (split 1 (ewmul (concat2 1 ?a ?c) (concat2 1 ?b ?d)))) "+
			"(split1 (split 1 (ewmul (concat2 1 ?a ?c) (concat2 1 ?b ?d))))")
	multi("merge-ewadd-pair",
		"(ewadd ?a ?b) (ewadd ?c ?d)",
		"(split0 (split 1 (ewadd (concat2 1 ?a ?c) (concat2 1 ?b ?d)))) "+
			"(split1 (split 1 (ewadd (concat2 1 ?a ?c) (concat2 1 ?b ?d))))")

	// Kernel enlargement (TASO): under SAME padding and stride 1, a
	// kernel zero-padded to another conv's spatial size computes the
	// same function, enabling the Figure 9 merge across kernel sizes.
	multi("enlarge-conv-kernel",
		"(conv 1 1 0 ?act ?x ?w1) (conv 1 1 0 ?act ?x ?w2)",
		"(conv 1 1 0 ?act ?x (enlarge ?w1 ?w2)) (conv 1 1 0 ?act ?x ?w2)")

	return rs
}

// transposeInverse builds the conditional rule
//
//	(transpose (transpose ?x ?p) ?q) => ?x   when q ∘ p = id
//
// The composition check needs the actual permutation strings, which
// live in the e-class analysis, so this is a conditional rewrite.
func transposeInverse() *rewrite.Rule {
	r := rewrite.MustRule("transpose-inverse", "(transpose (transpose ?x ?p) ?q)", "?x")
	r.Cond = func(g *egraph.EGraph, s pattern.Subst) bool {
		pm := rewrite.ClassMeta(g, s["?p"])
		qm := rewrite.ClassMeta(g, s["?q"])
		if pm == nil || qm == nil || pm.Kind != tensor.KindStr || qm.Kind != tensor.KindStr {
			return false
		}
		p, err1 := tensor.ParsePerm(pm.SVal)
		q, err2 := tensor.ParsePerm(qm.SVal)
		if err1 != nil || err2 != nil || len(p) != len(q) {
			return false
		}
		for i := range q {
			// applying p then q: out[i] = in[p[q[i]]]; identity iff p[q[i]] == i.
			if p[q[i]] != i {
				return false
			}
		}
		return true
	}
	return r
}

// Names lists rule names, for reports.
func Names(rs []*rewrite.Rule) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Name
	}
	return out
}
