package rules

import (
	"strings"
	"testing"
)

func TestParseRuleSet(t *testing.T) {
	text := `
# a comment line
ewadd-comm: (ewadd ?x ?y) => (ewadd ?y ?x)   ; trailing comment
ewadd-assoc: (ewadd ?x (ewadd ?y ?z)) <=> (ewadd (ewadd ?x ?y) ?z)

fuse-relu: (relu (matmul 0 ?x ?y)) => (matmul 2 ?x ?y)
`
	rs, err := ParseRuleSet("test.rules", []byte(text))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, r := range rs {
		names = append(names, r.Name)
	}
	want := []string{"ewadd-comm", "ewadd-assoc", "ewadd-assoc-rev", "fuse-relu"}
	if got := strings.Join(names, ","); got != strings.Join(want, ",") {
		t.Fatalf("rule names = %v, want %v", names, want)
	}
	for _, r := range rs {
		if r.IsMulti() {
			t.Errorf("file rule %s unexpectedly multi-pattern", r.Name)
		}
	}
	// The bidirectional pair must be each other's reverse.
	if rs[1].Sources[0].String() != rs[2].Targets[0].String() ||
		rs[1].Targets[0].String() != rs[2].Sources[0].String() {
		t.Errorf("bidirectional pair not mirrored: %v vs %v", rs[1], rs[2])
	}
}

func TestParseRuleSetErrors(t *testing.T) {
	cases := []struct {
		name, text, wantErr string
	}{
		{"missing-colon", "(ewadd ?x ?y) => (ewadd ?y ?x)", "missing \"name:\""},
		{"missing-arrow", "r: (ewadd ?x ?y) (ewadd ?y ?x)", "missing \"=>\""},
		{"bad-pattern", "r: (ewadd ?x => (ewadd ?x ?x)", "source"},
		{"unbound-var", "r: (relu ?x) => (ewadd ?x ?y)", "not bound"},
		{"unbound-var-rev", "r: (ewadd ?x ?y) <=> (relu ?x)", "not bound"},
		{"dup-name", "r: (relu ?x) => (tanh ?x)\nr: (tanh ?x) => (relu ?x)", "duplicate"},
		{"bad-name", "my rule: (relu ?x) => (tanh ?x)", "invalid character"},
		{"empty", "# nothing here\n", "no rules"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseRuleSet(c.name+".rules", []byte(c.text))
			if err == nil {
				t.Fatalf("ParseRuleSet(%q) succeeded, want error containing %q", c.text, c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not contain %q", err, c.wantErr)
			}
		})
	}
}

func TestRuleSetHash(t *testing.T) {
	parse := func(text string) string {
		t.Helper()
		rs, err := ParseRuleSet("h.rules", []byte(text))
		if err != nil {
			t.Fatal(err)
		}
		return Hash(rs)
	}
	a := parse("r: (ewadd ?x ?y) => (ewadd ?y ?x)")
	b := parse("r: (ewadd ?x ?y) => (ewadd ?y ?x)   # same content, new parse")
	if a != b {
		t.Errorf("identical rule sets hash differently: %s vs %s", a, b)
	}
	if c := parse("s: (ewadd ?x ?y) => (ewadd ?y ?x)"); c == a {
		t.Error("renamed rule shares the hash")
	}
	if c := parse("r: (ewmul ?x ?y) => (ewmul ?y ?x)"); c == a {
		t.Error("different pattern shares the hash")
	}
	two := parse("r: (ewadd ?x ?y) => (ewadd ?y ?x)\ns: (relu (matmul 0 ?x ?y)) => (matmul 2 ?x ?y)")
	flipped := parse("s: (relu (matmul 0 ?x ?y)) => (matmul 2 ?x ?y)\nr: (ewadd ?x ?y) => (ewadd ?y ?x)")
	if two == flipped {
		t.Error("rule order does not affect the hash")
	}
	// The built-in sets hash deterministically (the restart-stability
	// property the serving cache key relies on) and distinctly.
	if Hash(Default()) != Hash(Default()) {
		t.Error("Default() hash unstable across compilations")
	}
	if Hash(Default()) == Hash(Single()) {
		t.Error("Default and Single share a hash")
	}
}
