package rules

import (
	"testing"
	"time"

	"tensat/internal/cost"
	"tensat/internal/extract"
	"tensat/internal/rewrite"
	"tensat/internal/tensor"
)

func optimize(t *testing.T, g *tensor.Graph, kmulti, iters int) *extract.Result {
	t.Helper()
	r := rewrite.NewRunner(Default())
	r.Limits.KMulti = kmulti
	r.Limits.MaxIters = iters
	r.Limits.MaxNodes = 20000
	ex, err := r.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := extract.ILP(ex, cost.NewT4(), extract.ILPOptions{Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatalf("extracted graph invalid: %v", err)
	}
	return res
}

func TestRuleSetParses(t *testing.T) {
	rs := Default()
	if len(rs) < 40 {
		t.Fatalf("rule set has only %d rules", len(rs))
	}
	multi := 0
	for _, r := range rs {
		if r.IsMulti() {
			multi++
		}
	}
	if multi < 4 {
		t.Fatalf("only %d multi-pattern rules", multi)
	}
	names := Names(rs)
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate rule name %s", n)
		}
		seen[n] = true
	}
}

func TestFusionFindsFusedConvRelu(t *testing.T) {
	b := tensor.NewBuilder()
	x := b.Input("x", 1, 64, 14, 14)
	w := b.Weight("w", 64, 64, 3, 3)
	g := b.MustFinish(b.Relu(b.Conv(1, 1, tensor.PadSame, tensor.ActNone, x, w)))
	res := optimize(t, g, 0, 5)
	h := res.Graph.OpHistogram()
	if h[tensor.OpRelu] != 0 {
		t.Fatalf("relu not fused: %v", tensor.HistogramString(h))
	}
	orig := cost.GraphCost(cost.NewT4(), g)
	if res.Cost >= orig {
		t.Fatalf("fusion did not reduce cost: %v >= %v", res.Cost, orig)
	}
}

func TestMatmulFusionAndAssociativity(t *testing.T) {
	// tanh(x W1 W2): fusing tanh and reassociating (W1 W2 foldable!)
	// should collapse to a single fused matmul with a precomputed weight.
	b := tensor.NewBuilder()
	x := b.Input("x", 32, 256)
	w1 := b.Weight("w1", 256, 256)
	w2 := b.Weight("w2", 256, 256)
	g := b.MustFinish(b.Tanh(b.Matmul(tensor.ActNone, b.Matmul(tensor.ActNone, x, w1), w2)))
	res := optimize(t, g, 0, 6)
	h := res.Graph.OpHistogram()
	if h[tensor.OpTanh] != 0 {
		t.Fatalf("tanh not fused: %v", tensor.HistogramString(h))
	}
	if h[tensor.OpMatmul] != 2 {
		// matmul(x, matmul(w1,w2)): the inner matmul is weight-only and
		// therefore free; two matmul nodes remain but one costs zero.
		t.Fatalf("expected reassociated weight matmul: %v", tensor.HistogramString(h))
	}
	orig := cost.GraphCost(cost.NewT4(), g)
	if res.Cost >= orig/1.5 {
		t.Fatalf("reassociation gain too small: %v vs %v", res.Cost, orig)
	}
}

func TestTransposeInverseCancellation(t *testing.T) {
	b := tensor.NewBuilder()
	x := b.Input("x", 8, 16)
	g := b.MustFinish(b.Relu(b.Transpose(b.Transpose(x, 1, 0), 1, 0)))
	res := optimize(t, g, 0, 5)
	h := res.Graph.OpHistogram()
	if h[tensor.OpTranspose] != 0 {
		t.Fatalf("double transpose not cancelled: %v", tensor.HistogramString(h))
	}
}

func TestTransposeNonInverseKept(t *testing.T) {
	// transpose by (1 2 0) twice is NOT the identity on rank 3.
	b := tensor.NewBuilder()
	x := b.Input("x", 2, 3, 4)
	g := b.MustFinish(b.Relu(b.Transpose(b.Transpose(x, 1, 2, 0), 1, 2, 0)))
	res := optimize(t, g, 0, 4)
	h := res.Graph.OpHistogram()
	if h[tensor.OpTranspose] == 0 {
		t.Fatalf("non-inverse transposes wrongly cancelled: %v", tensor.HistogramString(h))
	}
}

func TestMultiPatternMatmulMergeWins(t *testing.T) {
	// Figure 8: several matmuls sharing an input merge into one.
	b := tensor.NewBuilder()
	x := b.Input("x", 64, 256)
	w1 := b.Weight("w1", 256, 256)
	w2 := b.Weight("w2", 256, 256)
	h1 := b.Matmul(tensor.ActNone, x, w1)
	h2 := b.Matmul(tensor.ActNone, x, w2)
	g := b.MustFinish(h1, h2)
	res := optimize(t, g, 1, 4)
	orig := cost.GraphCost(cost.NewT4(), g)
	if res.Cost >= orig {
		t.Fatalf("matmul merge found no gain: %v >= %v", res.Cost, orig)
	}
	h := res.Graph.OpHistogram()
	if h[tensor.OpMatmul] != 1 {
		t.Fatalf("expected a single merged matmul: %v", tensor.HistogramString(h))
	}
}

func TestFigure10ConvAddPattern(t *testing.T) {
	// ewadd(conv(x,w1), conv(y,w2)) => conv(concat(x,y), concat(w1,w2)).
	// The weight concat folds; one conv replaces two convs and an add.
	b := tensor.NewBuilder()
	x := b.Input("x", 1, 32, 14, 14)
	y := b.Input("y", 1, 32, 14, 14)
	w1 := b.Weight("w1", 64, 32, 3, 3)
	w2 := b.Weight("w2", 64, 32, 3, 3)
	g := b.MustFinish(b.Ewadd(
		b.Conv(1, 1, tensor.PadSame, tensor.ActNone, x, w1),
		b.Conv(1, 1, tensor.PadSame, tensor.ActNone, y, w2)))
	res := optimize(t, g, 0, 5)
	h := res.Graph.OpHistogram()
	if h[tensor.OpConv] != 1 || h[tensor.OpEwadd] != 0 {
		t.Fatalf("figure 10 rewrite not extracted: %v", tensor.HistogramString(h))
	}
	orig := cost.GraphCost(cost.NewT4(), g)
	if res.Cost >= orig {
		t.Fatalf("no gain: %v >= %v", res.Cost, orig)
	}
}

func TestEnlargeEnablesMixedKernelMerge(t *testing.T) {
	// A 1x1 conv and a 3x3 conv on the same input (inception-style
	// branches) merge after kernel enlargement.
	b := tensor.NewBuilder()
	x := b.Input("x", 1, 32, 14, 14)
	w1 := b.Weight("w1", 32, 32, 1, 1)
	w3 := b.Weight("w3", 32, 32, 3, 3)
	c1 := b.Conv(1, 1, tensor.PadSame, tensor.ActNone, x, w1)
	c3 := b.Conv(1, 1, tensor.PadSame, tensor.ActNone, x, w3)
	g := b.MustFinish(b.Concat(1, c1, c3))
	res := optimize(t, g, 1, 4)
	orig := cost.GraphCost(cost.NewT4(), g)
	if res.Cost >= orig {
		t.Fatalf("mixed-kernel merge found no gain: %v >= %v", res.Cost, orig)
	}
	if h := res.Graph.OpHistogram(); h[tensor.OpConv] != 1 {
		t.Fatalf("expected a single merged conv: %v", tensor.HistogramString(h))
	}
}

func TestConcatSplitRoundTripSound(t *testing.T) {
	// Optimization must preserve output shapes on a graph that already
	// contains concat/split structure.
	b := tensor.NewBuilder()
	x := b.Input("x", 8, 32)
	w1 := b.Weight("w1", 32, 16)
	w2 := b.Weight("w2", 32, 24)
	mm := b.Matmul(tensor.ActNone, x, b.Concat(1, w1, w2))
	s0, s1 := b.Split(1, mm)
	g := b.MustFinish(b.Relu(s0), b.Tanh(s1))
	res := optimize(t, g, 1, 4)
	for i, out := range res.Graph.Outputs {
		if !out.Meta.Shape.Equal(g.Outputs[i].Meta.Shape) {
			t.Fatalf("output %d shape changed: %v -> %v", i, g.Outputs[i].Meta.Shape, out.Meta.Shape)
		}
	}
}

func TestGroupedConvMerge(t *testing.T) {
	// A 32-group conv can be rewritten to 16 groups via merge; with the
	// group penalty this is cheaper for small per-group work.
	b := tensor.NewBuilder()
	x := b.Input("x", 1, 64, 14, 14)
	w := b.Weight("w", 64, 2, 3, 3) // 32 groups
	g := b.MustFinish(b.Conv(1, 1, tensor.PadSame, tensor.ActNone, x, w))
	res := optimize(t, g, 0, 4)
	orig := cost.GraphCost(cost.NewT4(), g)
	if res.Cost > orig {
		t.Fatalf("grouped conv optimization made things worse: %v > %v", res.Cost, orig)
	}
	if h := res.Graph.OpHistogram(); h[tensor.OpMerge] == 0 && res.Cost < orig {
		t.Fatalf("gain without merge is suspicious: %v", tensor.HistogramString(h))
	}
}

func TestOptimizationIsIdempotentOnOptimal(t *testing.T) {
	// Optimizing an already-optimal single conv changes nothing.
	b := tensor.NewBuilder()
	x := b.Input("x", 1, 8, 8, 8)
	w := b.Weight("w", 8, 8, 3, 3)
	g := b.MustFinish(b.Conv(1, 1, tensor.PadSame, tensor.ActRelu, x, w))
	res := optimize(t, g, 1, 4)
	orig := cost.GraphCost(cost.NewT4(), g)
	if res.Cost > orig+1e-9 {
		t.Fatalf("optimizer regressed an optimal graph: %v > %v", res.Cost, orig)
	}
}
