package rules

import (
	"os"
	"path/filepath"
	"testing"

	"tensat/internal/cost"
	"tensat/internal/extract"
	"tensat/internal/models"
	"tensat/internal/rewrite"
)

// shippedRuleFiles locates the .rules profiles shipped in-repo
// (profiles/rules), which tensatd serves via -rules-dir and CI boots
// against.
func shippedRuleFiles(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "profiles", "rules", "*.rules"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no shipped .rules files found under profiles/rules")
	}
	return paths
}

// TestShippedRuleFilesAreSound runs the same end-to-end soundness
// property the built-in rule set must satisfy — the optimized graph
// computes numerically identical outputs — for every .rules file
// shipped in the repository, loaded through the real file parser.
// Models are chosen so each shipped family actually fires: NasRNN
// exercises the element-wise/matmul algebra and matmul-activation
// fusion; SqueezeNet exercises conv fusion.
func TestShippedRuleFilesAreSound(t *testing.T) {
	for _, path := range shippedRuleFiles(t) {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			rs, err := ParseRuleSet(path, data)
			if err != nil {
				t.Fatalf("shipped rule file does not load: %v", err)
			}
			for _, name := range []string{"NasRNN", "SqueezeNet"} {
				m, err := models.ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				g := m.Build(models.ScaleTest)
				r := rewrite.NewRunner(rs)
				r.Limits.MaxIters = 6
				r.Limits.MaxNodes = 5000
				ex, err := r.Run(g)
				if err != nil {
					t.Fatal(err)
				}
				res, err := extract.Greedy(ex, cost.NewT4())
				if err != nil {
					t.Fatal(err)
				}
				compareOutputs(t, g, res.Graph)
			}
		})
	}
}
