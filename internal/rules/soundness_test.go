package rules

import (
	"testing"
	"time"

	"tensat/internal/cost"
	"tensat/internal/extract"
	"tensat/internal/models"
	"tensat/internal/rewrite"
	"tensat/internal/tensor"
)

// TestOptimizedGraphsComputeSameValues is the end-to-end soundness
// property behind §2.3's guarantee ("the extracted term is guaranteed
// (if the rewrites themselves are sound) to be equivalent to the input
// term"): for every benchmark model, the extracted graph must compute
// numerically identical outputs to the original on deterministic
// pseudo-random inputs. This exercises every rewrite rule family, the
// multi-pattern algorithm, cycle filtering, extraction, and the
// reference interpreter together.
func TestOptimizedGraphsComputeSameValues(t *testing.T) {
	for _, m := range models.Benchmarks() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			g := m.Build(models.ScaleTest)
			r := rewrite.NewRunner(Default())
			r.Limits.KMulti = 1
			r.Limits.MaxIters = 8
			r.Limits.MaxNodes = 8000
			ex, err := r.Run(g)
			if err != nil {
				t.Fatal(err)
			}
			res, err := extract.ILP(ex, cost.NewT4(), extract.ILPOptions{Timeout: time.Minute})
			if err != nil {
				t.Fatal(err)
			}
			compareOutputs(t, g, res.Graph)
		})
	}
}

// TestGreedyExtractionIsSound runs the same property through the
// greedy extractor.
func TestGreedyExtractionIsSound(t *testing.T) {
	for _, name := range []string{"NasRNN", "SqueezeNet"} {
		m, err := models.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g := m.Build(models.ScaleTest)
		r := rewrite.NewRunner(Default())
		r.Limits.KMulti = 1
		r.Limits.MaxIters = 6
		r.Limits.MaxNodes = 6000
		ex, err := r.Run(g)
		if err != nil {
			t.Fatal(err)
		}
		res, err := extract.Greedy(ex, cost.NewT4())
		if err != nil {
			t.Fatal(err)
		}
		compareOutputs(t, g, res.Graph)
	}
}

// TestCycleConstrainedExtractionIsSound runs the property through the
// unfiltered exploration + cycle-constrained ILP path.
func TestCycleConstrainedExtractionIsSound(t *testing.T) {
	m, err := models.ByName("BERT")
	if err != nil {
		t.Fatal(err)
	}
	g := m.Build(models.ScaleTest)
	r := rewrite.NewRunner(Default())
	r.Filter = rewrite.FilterNone
	r.Limits.KMulti = 1
	r.Limits.MaxIters = 4
	r.Limits.MaxNodes = 2000
	ex, err := r.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := extract.ILP(ex, cost.NewT4(), extract.ILPOptions{
		CycleConstraints: true, Timeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	compareOutputs(t, g, res.Graph)
}

func compareOutputs(t *testing.T, orig, opt *tensor.Graph) {
	t.Helper()
	if len(orig.Outputs) != len(opt.Outputs) {
		t.Fatalf("output count changed: %d -> %d", len(orig.Outputs), len(opt.Outputs))
	}
	a, err := tensor.NewEvaluator().EvalOutputs(orig)
	if err != nil {
		t.Fatalf("evaluating original: %v", err)
	}
	b, err := tensor.NewEvaluator().EvalOutputs(opt)
	if err != nil {
		t.Fatalf("evaluating optimized: %v", err)
	}
	for i := range a {
		// Relative tolerance: rewrites reassociate long reductions, and
		// magnitudes grow through matmul chains, so rounding drift is
		// proportional to value size.
		if d := a[i].MaxRelDiff(b[i]); d > 1e-8 {
			t.Errorf("output %d differs by relative %v (shapes %v vs %v)",
				i, d, a[i].Shape, b[i].Shape)
		}
	}
}
