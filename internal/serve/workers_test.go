package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"tensat"
)

// TestWorkersKnobFlowsIntoOptions checks the POST /optimize "workers"
// knob reaches tensat.Options, participates in the cache key (under a
// timeout the worker count changes how far a run explores), and is
// validated.
func TestWorkersKnobFlowsIntoOptions(t *testing.T) {
	base := tensat.DefaultOptions()

	got, err := RequestOptions{Workers: 3}.apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workers != 3 {
		t.Fatalf("Workers = %d, want 3", got.Workers)
	}

	inherit, err := RequestOptions{}.apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if inherit.Workers != base.Workers {
		t.Fatalf("zero Workers did not inherit: %d", inherit.Workers)
	}
	// Without an exploration budget, results are byte-identical for any
	// worker count, so differing workers must share one cache entry.
	if optionsKey(got) != optionsKey(inherit) {
		t.Fatal("worker counts fragment the cache despite identical results")
	}
	// Under a budget the worker count changes how far a run explores,
	// so it becomes part of the key.
	budget, other := got, inherit
	budget.ExploreTimeout, other.ExploreTimeout = time.Second, time.Second
	if optionsKey(budget) == optionsKey(other) {
		t.Fatal("worker counts share an options key under an exploration budget")
	}

	if _, err := (RequestOptions{Workers: -1}).apply(base); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("negative workers: err = %v, want ErrBadOptions", err)
	}
}

// TestCanceledResultIsNeverCached: even if the optimizer returns a
// partial result marked Canceled instead of an error, the service must
// not serve it to later requests as the answer for that key.
func TestCanceledResultIsNeverCached(t *testing.T) {
	s := New(Config{Workers: 1})
	partial := stubResult(t)
	partial.Canceled = true
	partial.Truncated = true
	calls := 0
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		calls++
		if calls == 1 {
			return partial, nil
		}
		return stubResult(t), nil
	}
	g := testGraph(t, 7)
	first, err := s.Optimize(context.Background(), g, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first response claims cached")
	}
	second, err := s.Optimize(context.Background(), g, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if second.Cached {
		t.Fatal("canceled partial result was cached and served")
	}
	if calls != 2 {
		t.Fatalf("optimizer ran %d times, want 2", calls)
	}
}

// TestImplicitTimeoutTruncationIsNotCached: a run truncated with no
// explicit explore budget hit the runner's one-hour safety net; how
// far it got depends on the worker count, which budget-free cache keys
// deliberately omit, so the result must not be cached. With an
// explicit budget (which keys both the budget and the workers) the
// truncated result is a legitimate cache entry.
func TestImplicitTimeoutTruncationIsNotCached(t *testing.T) {
	s := New(Config{Workers: 1})
	truncated := stubResult(t)
	truncated.Truncated = true
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		return truncated, nil
	}

	g := testGraph(t, 9)
	if _, err := s.Optimize(context.Background(), g, RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	again, err := s.Optimize(context.Background(), g, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if again.Cached {
		t.Fatal("safety-net-truncated result was cached under a budget-free key")
	}

	budgeted := RequestOptions{ExploreTimeoutMS: 1000}
	if _, err := s.Optimize(context.Background(), g, budgeted); err != nil {
		t.Fatal(err)
	}
	hit, err := s.Optimize(context.Background(), g, budgeted)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached {
		t.Fatal("budgeted truncated result was not cached")
	}
}
