package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"tensat"
)

// waitStatus polls until the job reaches the wanted terminal status.
func waitStatus(t *testing.T, j *Job, want JobStatus) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job did not finish (want %s)", want)
	}
	if st, _ := j.Status(); st != want {
		t.Fatalf("status = %s, want %s", st, want)
	}
}

func TestProgressLogReplayAndNotify(t *testing.T) {
	var l progressLog
	l.init()
	l.publish(tensat.Progress{Phase: tensat.PhaseQueued})
	l.publish(tensat.Progress{Phase: tensat.PhaseExplore, Iteration: 1})

	entries, next, notify := l.since(0)
	if len(entries) != 2 || next != 2 {
		t.Fatalf("replay returned %d entries (next %d), want 2 (next 2)", len(entries), next)
	}
	select {
	case <-notify:
		t.Fatal("notify fired without an append")
	default:
	}
	l.publish(tensat.Progress{Phase: tensat.PhaseExplore, Iteration: 2})
	select {
	case <-notify:
	case <-time.After(time.Second):
		t.Fatal("append did not signal the watcher")
	}
	entries, next, _ = l.since(next)
	if len(entries) != 1 || entries[0].Iteration != 2 || next != 3 {
		t.Fatalf("incremental read = %+v (next %d), want the iteration-2 entry", entries, next)
	}
	if got := l.latest(); got.Iteration != 2 {
		t.Fatalf("latest = %+v", got)
	}
}

// TestProgressLogRingKeepsDeliveringPastCap: a reader that keeps up
// receives every entry published after the ring wraps, and a reader
// replaying from 0 gets the newest cap-sized window in order.
func TestProgressLogRingKeepsDeliveringPastCap(t *testing.T) {
	var l progressLog
	l.init()
	for i := 0; i < progressLogCap; i++ {
		l.publish(tensat.Progress{Iteration: i})
	}
	_, next, _ := l.since(0)
	if next != progressLogCap {
		t.Fatalf("next = %d, want %d", next, progressLogCap)
	}
	// Publishes past the cap must still reach an up-to-date reader.
	for i := 0; i < 10; i++ {
		l.publish(tensat.Progress{Iteration: progressLogCap + i})
		entries, n, _ := l.since(next)
		if len(entries) != 1 || entries[0].Iteration != progressLogCap+i {
			t.Fatalf("publish %d past cap: read %+v", i, entries)
		}
		next = n
	}
	// A from-zero replay is clamped to the retained window, oldest
	// first, ending at the newest entry.
	entries, _, _ := l.since(0)
	if len(entries) != progressLogCap {
		t.Fatalf("replay length %d, want %d", len(entries), progressLogCap)
	}
	if entries[0].Iteration != 10 || entries[len(entries)-1].Iteration != progressLogCap+9 {
		t.Fatalf("replay window [%d, %d], want [10, %d]",
			entries[0].Iteration, entries[len(entries)-1].Iteration, progressLogCap+9)
	}
	if got := l.latest(); got.Iteration != progressLogCap+9 {
		t.Fatalf("latest = %+v", got)
	}
}

// TestJobLifecycleWithProgress drives a job against a controllable
// optimization and checks the full observable lifecycle: queued
// snapshot, live progress pumped from the run, done status with the
// result, and counters.
func TestJobLifecycleWithProgress(t *testing.T) {
	s := New(Config{Workers: 1})
	step := make(chan struct{})
	release := make(chan struct{})
	res := stubResult(t)
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		o.Progress(tensat.Progress{Phase: tensat.PhaseExplore, Iteration: 1, ENodes: 10})
		select {
		case <-step:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		o.Progress(tensat.Progress{Phase: tensat.PhaseExplore, Iteration: 2, ENodes: 20})
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return res, nil
	}

	job, err := s.SubmitJob(testGraph(t, 1), RequestOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st, p := job.Status(); st != JobRunning || p.Phase != tensat.PhaseQueued {
		t.Fatalf("initial status = %s/%s, want running/queued", st, p.Phase)
	}

	// The run's first snapshot must surface through the job's log.
	waitFor(t, func() bool { _, p := job.Status(); return p.Iteration == 1 })
	close(step)
	waitFor(t, func() bool { _, p := job.Status(); return p.Iteration == 2 })
	close(release)
	waitStatus(t, job, JobDone)

	resp, jerr := job.Outcome()
	if jerr != nil {
		t.Fatal(jerr)
	}
	if resp.Result != res {
		t.Fatal("job returned a different result object")
	}
	if resp.Cached || resp.Deduped {
		t.Fatalf("cold job reports cached=%v deduped=%v", resp.Cached, resp.Deduped)
	}
	// Replay: queued, the two explore snapshots, then a terminal done.
	entries, _, _ := job.ProgressSince(0)
	if len(entries) < 4 {
		t.Fatalf("log has %d entries, want >= 4: %+v", len(entries), entries)
	}
	if entries[0].Phase != tensat.PhaseQueued {
		t.Fatalf("first entry phase = %s, want queued", entries[0].Phase)
	}
	if last := entries[len(entries)-1]; last.Phase != tensat.PhaseDone {
		t.Fatalf("last entry phase = %s, want done", last.Phase)
	}
	c := s.JobCounters()
	if c.Submitted != 1 || c.Done != 1 || c.Running != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestJobCancelMidRunFreesSlotAndNeverCaches is the cancel-race
// contract: canceling a job mid-exploration marks it canceled, frees
// its worker slot for the next job, and never caches the canceled
// partial result.
func TestJobCancelMidRunFreesSlotAndNeverCaches(t *testing.T) {
	s := New(Config{Workers: 1}) // one slot: job B can only run if A freed it
	var calls atomic.Int64
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		n := calls.Add(1)
		o.Progress(tensat.Progress{Phase: tensat.PhaseExplore, Iteration: int(n)})
		if n == 1 {
			// First run: a partial result interrupted by cancellation.
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return stubResult(t), nil
	}

	jobA, err := s.SubmitJob(testGraph(t, 1), RequestOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Cancel strictly mid-exploration (after the run started).
	waitFor(t, func() bool { _, p := jobA.Status(); return p.Phase == tensat.PhaseExplore })
	jobA.Cancel()
	waitStatus(t, jobA, JobCanceled)
	if _, jerr := jobA.Outcome(); !errors.Is(jerr, context.Canceled) {
		t.Fatalf("outcome err = %v, want context.Canceled", jerr)
	}

	// Same graph again: must re-run (nothing cached), and must get the
	// worker slot the canceled job released.
	jobB, err := s.SubmitJob(testGraph(t, 1), RequestOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, jobB, JobDone)
	resp, jerr := jobB.Outcome()
	if jerr != nil {
		t.Fatal(jerr)
	}
	if resp.Cached {
		t.Fatal("canceled partial result was served from the cache")
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("optimize ran %d times, want 2 (canceled run must not satisfy job B)", n)
	}
	c := s.JobCounters()
	if c.Canceled != 1 || c.Done != 1 {
		t.Fatalf("counters = %+v, want 1 canceled / 1 done", c)
	}
}

// TestJobCancelDoesNotStrandedSiblings: canceling one of two deduped
// jobs leaves the shared run alive for the survivor.
func TestJobCancelKeepsDedupedSiblingAlive(t *testing.T) {
	s := New(Config{Workers: 2})
	release := make(chan struct{})
	var calls atomic.Int64
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		calls.Add(1)
		o.Progress(tensat.Progress{Phase: tensat.PhaseExplore, Iteration: 1})
		select {
		case <-release:
			return stubResult(t), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	jobA, err := s.SubmitJob(testGraph(t, 1), RequestOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { _, p := jobA.Status(); return p.Phase == tensat.PhaseExplore })
	jobB, err := s.SubmitJob(testGraph(t, 1), RequestOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.Stats().Deduped == 1 })

	jobA.Cancel()
	waitStatus(t, jobA, JobCanceled)
	close(release)
	waitStatus(t, jobB, JobDone)
	resp, jerr := jobB.Outcome()
	if jerr != nil {
		t.Fatal(jerr)
	}
	if !resp.Deduped {
		t.Fatal("job B should have joined job A's run")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("optimize ran %d times, want 1 (shared run survives A's cancel)", n)
	}
	// B's log must carry the run's progress even though A started it.
	entries, _, _ := jobB.ProgressSince(0)
	sawExplore := false
	for _, p := range entries {
		if p.Phase == tensat.PhaseExplore {
			sawExplore = true
		}
	}
	if !sawExplore {
		t.Fatalf("deduped job saw no explore progress: %+v", entries)
	}
}

// TestJobCacheHit: a job for an already-cached answer finishes
// immediately with Cached=true and a terminal snapshot.
func TestJobCacheHit(t *testing.T) {
	s := New(Config{Workers: 1})
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		return stubResult(t), nil
	}
	if _, err := s.Optimize(context.Background(), testGraph(t, 1), RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	job, err := s.SubmitJob(testGraph(t, 1), RequestOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, job, JobDone)
	resp, jerr := job.Outcome()
	if jerr != nil {
		t.Fatal(jerr)
	}
	if !resp.Cached {
		t.Fatal("job missed the warm cache")
	}
	if _, p := job.Status(); p.Phase != tensat.PhaseDone {
		t.Fatalf("terminal phase = %s, want done", p.Phase)
	}
}

// TestJobStoreCapacityAndTTL: the store evicts expired and finished
// jobs under pressure but refuses new jobs when every slot is running.
func TestJobStoreCapacityAndTTL(t *testing.T) {
	s := New(Config{Workers: 2, MaxJobs: 2, JobTTL: 50 * time.Millisecond})
	release := make(chan struct{})
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		select {
		case <-release:
			return stubResult(t), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	a, err := s.SubmitJob(testGraph(t, 1), RequestOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitJob(testGraph(t, 2), RequestOptions{}, 0); err != nil {
		t.Fatal(err)
	}
	// Store full of running jobs: the third submit must be refused.
	if _, err := s.SubmitJob(testGraph(t, 3), RequestOptions{}, 0); !errors.Is(err, ErrJobStoreFull) {
		t.Fatalf("err = %v, want ErrJobStoreFull", err)
	}
	close(release)
	waitStatus(t, a, JobDone)

	// With a finished job present, a new submit evicts it.
	c, err := s.SubmitJob(testGraph(t, 3), RequestOptions{}, 0)
	if err != nil {
		t.Fatalf("submit after completion: %v", err)
	}
	waitStatus(t, c, JobDone)

	// TTL: finished jobs disappear from lookup after expiry.
	id := c.ID()
	waitFor(t, func() bool { _, ok := s.Job(id); return !ok })
}
