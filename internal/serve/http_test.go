package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"tensat"
	"tensat/internal/tensor"
)

// figure2Wire is the figure-2 graph in the wire format, with names and
// let-binding structure deliberately different from what MarshalText
// would emit — the service must key on structure, not spelling.
const figure2Wire = `
(let shared (input "activations@64 256"))
(output (matmul 0 shared (weight "wa@256 256")))
(output (matmul 0 shared (weight "wb@256 256")))
`

func newTestServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	s := New(Config{Workers: 2, Base: fastOptions()})
	ts := httptest.NewServer(NewHandler(s))
	t.Cleanup(ts.Close)
	return s, ts
}

func postOptimize(t *testing.T, url string, req OptimizeRequest) (int, OptimizeReply, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var reply OptimizeReply
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &reply); err != nil {
			t.Fatalf("bad reply %q: %v", buf.String(), err)
		}
	}
	return resp.StatusCode, reply, buf.String()
}

// TestHTTPOptimizeEndToEnd drives the full daemon surface: a cold
// optimize, then an identical request (spelled differently) that must
// be a cache hit, then /stats reflecting both.
func TestHTTPOptimizeEndToEnd(t *testing.T) {
	_, ts := newTestServer(t)

	status, cold, raw := postOptimize(t, ts.URL, OptimizeRequest{Graph: figure2Wire})
	if status != http.StatusOK {
		t.Fatalf("cold status %d: %s", status, raw)
	}
	if cold.Cached {
		t.Fatal("cold request reported cached")
	}
	if cold.OptCost >= cold.OrigCost {
		t.Fatalf("no improvement: %v -> %v", cold.OrigCost, cold.OptCost)
	}
	if len(cold.Fingerprint) != 64 {
		t.Fatalf("bad fingerprint %q", cold.Fingerprint)
	}
	// The reply graph must round-trip through the wire format.
	if _, err := tensor.UnmarshalGraph([]byte(cold.Graph)); err != nil {
		t.Fatalf("reply graph does not parse: %v\n%s", err, cold.Graph)
	}

	// Same structure, different names and spelling: cache hit.
	warmWire := `(output (matmul 0 (input "x@64 256") (weight "w1@256 256")))` + "\n" +
		`(output (matmul 0 (input "x@64 256") (weight "w2@256 256")))`
	status, warm, raw := postOptimize(t, ts.URL, OptimizeRequest{Graph: warmWire})
	if status != http.StatusOK {
		t.Fatalf("warm status %d: %s", status, raw)
	}
	if !warm.Cached {
		t.Fatal("second identical request was not a cache hit")
	}
	if warm.Fingerprint != cold.Fingerprint {
		t.Fatalf("fingerprints differ: %s vs %s", cold.Fingerprint, warm.Fingerprint)
	}
	if warm.OptCost != cold.OptCost {
		t.Fatalf("cached cost drifted: %v vs %v", cold.OptCost, warm.OptCost)
	}
	// The cached answer must be spelled in THIS requester's tensor
	// names, not the original submitter's.
	for _, want := range []string{`"x@64 256"`, `"w1@256 256"`, `"w2@256 256"`} {
		if !strings.Contains(warm.Graph, want) {
			t.Fatalf("cached reply not in requester vocabulary (missing %s):\n%s", want, warm.Graph)
		}
	}
	if strings.Contains(warm.Graph, "activations") || strings.Contains(warm.Graph, `"wa@`) {
		t.Fatalf("cached reply leaks the original submitter's names:\n%s", warm.Graph)
	}
	// And the cold reply keeps the first submitter's names.
	if !strings.Contains(cold.Graph, "activations@64 256") {
		t.Fatalf("cold reply lost its own names:\n%s", cold.Graph)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsReply
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Hits != 1 || st.Misses != 1 || st.Completed != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 completed", st)
	}
	if st.CacheEntries != 1 || st.P50MS <= 0 {
		t.Fatalf("stats = %+v, want 1 cache entry and positive p50", st)
	}
}

// TestHTTPConcurrentDistinctRequests exercises the pool through the
// HTTP layer: distinct graphs in flight at once, all 200.
func TestHTTPConcurrentDistinctRequests(t *testing.T) {
	_, ts := newTestServer(t)
	graphs := []string{
		`(output (relu (input "x@8 8")))`,
		`(output (tanh (input "x@8 8")))`,
		`(output (sigmoid (input "x@8 8")))`,
		`(output (relu (input "x@8 16")))`,
	}
	var wg sync.WaitGroup
	codes := make([]int, len(graphs))
	for i, g := range graphs {
		wg.Add(1)
		go func(i int, g string) {
			defer wg.Done()
			codes[i], _, _ = postOptimize(t, ts.URL, OptimizeRequest{
				Graph:   g,
				Options: RequestOptions{Extractor: "greedy"},
			})
		}(i, g)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	if st := s0(t, ts); st.Completed != uint64(len(graphs)) {
		t.Fatalf("completed = %d, want %d", st.Completed, len(graphs))
	}
}

func s0(t *testing.T, ts *httptest.Server) StatsReply {
	t.Helper()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsReply
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestHTTPBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	for name, req := range map[string]OptimizeRequest{
		"empty graph":   {},
		"syntax error":  {Graph: "(output (relu"},
		"unknown op":    {Graph: `(output (frobnicate (input "x@8 8")))`},
		"bad extractor": {Graph: `(output (relu (input "x@8 8")))`, Options: RequestOptions{Extractor: "magic"}},
	} {
		status, _, raw := postOptimize(t, ts.URL, req)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, status, raw)
		}
	}
	// Shape-inconsistent graphs are rejected at parse time (the wire
	// decoder shape-checks), also 400.
	status, _, raw := postOptimize(t, ts.URL, OptimizeRequest{
		Graph: `(output (matmul 0 (input "x@64 256") (weight "w@128 128")))`,
	})
	if status != http.StatusBadRequest {
		t.Errorf("shape mismatch: status %d, want 400 (%s)", status, raw)
	}
	// Malformed JSON body.
	resp, err := http.Post(ts.URL+"/optimize", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", resp.StatusCode)
	}
	// Wrong method.
	resp, err = http.Get(ts.URL + "/optimize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("GET /optimize accepted")
	}
}

func TestHTTPHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

// TestHTTPRequestTimeout verifies timeout_ms maps to 504 when the
// optimization cannot finish in time.
func TestHTTPRequestTimeout(t *testing.T) {
	s := New(Config{Workers: 1})
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()
	status, _, raw := postOptimize(t, ts.URL, OptimizeRequest{
		Graph:     `(output (relu (input "x@8 8")))`,
		TimeoutMS: 50,
	})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", status, raw)
	}
}
