package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"tensat"
	"tensat/internal/models"
)

// ---------------------------------------------------------------------------
// A small Prometheus text-exposition parser. Deliberately strict: the
// tests use it to prove /metrics emits format-valid output without
// depending on an external client library.

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	sampleRe     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})? (\S+)$`)
	labelPairRe  = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"`)
)

// expoFamily is one metric family parsed out of the exposition.
type expoFamily struct {
	typ     string
	help    string
	samples map[string]float64 // "name{labels}" -> value, in order of appearance
	order   []string
}

// parseExposition parses and validates Prometheus text format 0.0.4,
// failing the test on any malformed line, duplicate TYPE, sample
// preceding its TYPE, or illegal metric/label name.
func parseExposition(t testing.TB, body string) map[string]*expoFamily {
	t.Helper()
	fams := map[string]*expoFamily{}
	pendingHelp := map[string]string{} // HELP precedes TYPE in the exposition
	family := func(name string) *expoFamily {
		// Histogram samples carry suffixes; fold them into the base family.
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name {
				if f, ok := fams[trimmed]; ok && f.typ == "histogram" {
					base = trimmed
				}
			}
		}
		f, ok := fams[base]
		if !ok {
			t.Fatalf("sample for %q before its # TYPE line", name)
		}
		return f
	}
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(fields) != 2 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			name, typ := fields[0], fields[1]
			if !metricNameRe.MatchString(name) {
				t.Fatalf("illegal metric name %q", name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("unknown metric type %q in %q", typ, line)
			}
			if _, dup := fams[name]; dup {
				t.Fatalf("duplicate # TYPE for %q", name)
			}
			fams[name] = &expoFamily{typ: typ, help: pendingHelp[name], samples: map[string]float64{}}
		case strings.HasPrefix(line, "# HELP "):
			fields := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(fields) < 1 || !metricNameRe.MatchString(fields[0]) {
				t.Fatalf("malformed HELP line %q", line)
			}
			if len(fields) == 2 {
				pendingHelp[fields[0]] = fields[1]
				if f, ok := fams[fields[0]]; ok {
					f.help = fields[1]
				}
			}
		case strings.HasPrefix(line, "#"):
			// Other comments are legal and ignored.
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("malformed sample line %q", line)
			}
			name, labels, value := m[1], m[3], m[4]
			if labels != "" {
				// Every byte of the label block must be consumed by
				// well-formed name="escaped value" pairs and separators —
				// leftovers mean broken quoting or an illegal label name.
				consumed := 0
				for _, loc := range labelPairRe.FindAllStringSubmatchIndex(labels, -1) {
					pair := labels[loc[0]:loc[1]]
					lname := labels[loc[2]:loc[3]]
					if !labelNameRe.MatchString(lname) || strings.HasPrefix(lname, "__") {
						t.Fatalf("illegal label name %q in %q", lname, line)
					}
					consumed += len(pair) + 1 // +1 for the comma separator
				}
				if consumed != len(labels)+1 {
					t.Fatalf("label block %q has malformed content in %q", labels, line)
				}
			}
			v, err := strconv.ParseFloat(value, 64)
			if err != nil {
				t.Fatalf("unparseable value %q in %q: %v", value, line, err)
			}
			f := family(name)
			key := m[1]
			if m[2] != "" {
				key += m[2]
			}
			if _, dup := f.samples[key]; dup {
				t.Fatalf("duplicate sample %q", key)
			}
			f.samples[key] = v
			f.order = append(f.order, key)
		}
	}
	return fams
}

// scrapeMetrics GETs /metrics, checks the content type, and parses.
func scrapeMetrics(t testing.TB, url string) map[string]*expoFamily {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics content-type %q lacks exposition version", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseExposition(t, string(body))
}

// checkHistogram asserts a family is a histogram with cumulative,
// non-decreasing buckets whose +Inf bucket equals _count.
func checkHistogram(t testing.TB, fams map[string]*expoFamily, name string) {
	t.Helper()
	f, ok := fams[name]
	if !ok {
		t.Fatalf("missing histogram family %s", name)
	}
	if f.typ != "histogram" {
		t.Fatalf("%s has type %s, want histogram", name, f.typ)
	}
	// Group buckets by label set minus le, tracking cumulativity.
	type series struct {
		last  float64
		inf   float64
		count float64
	}
	all := map[string]*series{}
	strip := regexp.MustCompile(`,?le="[^"]*"`)
	get := func(key string) *series {
		// Key series by label set only (minus le), so _bucket, _sum and
		// _count samples of one series land together.
		base := ""
		if i := strings.IndexByte(key, '{'); i >= 0 {
			base = strip.ReplaceAllString(key[i:], "")
		}
		base = strings.ReplaceAll(base, "{,", "{")
		if base == "{}" {
			base = ""
		}
		s, ok := all[base]
		if !ok {
			s = &series{}
			all[base] = s
		}
		return s
	}
	for _, key := range f.order {
		v := f.samples[key]
		switch {
		case strings.HasPrefix(key, name+"_bucket"):
			s := get(key)
			if v < s.last {
				t.Fatalf("%s buckets not cumulative at %q: %v < %v", name, key, v, s.last)
			}
			s.last = v
			if strings.Contains(key, `le="+Inf"`) {
				s.inf = v
			}
		case strings.HasPrefix(key, name+"_count"):
			get(key).count = v
		}
	}
	if len(all) == 0 {
		t.Fatalf("%s has no bucket samples", name)
	}
	for base, s := range all {
		if s.inf != s.count {
			t.Fatalf("%s %s: +Inf bucket %v != count %v", name, base, s.inf, s.count)
		}
	}
}

// TestMetricsExpositionValid boots a service, runs one real job, and
// proves /metrics serves valid exposition carrying every core series.
func TestMetricsExpositionValid(t *testing.T) {
	s, ts := newTestServer(t)

	// A cold run, a cache hit, and a profiled request feed the counters.
	g := testGraph(t, 1)
	if _, err := s.Optimize(context.Background(), g, RequestOptions{Extractor: "greedy"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Optimize(context.Background(), testGraph(t, 1), RequestOptions{Extractor: "greedy"}); err != nil {
		t.Fatal(err)
	}

	fams := scrapeMetrics(t, ts.URL)
	for _, want := range []struct{ name, typ string }{
		{"tensat_cache_hits_total", "counter"},
		{"tensat_cache_misses_total", "counter"},
		{"tensat_cache_dedup_total", "counter"},
		{"tensat_cache_entries", "gauge"},
		{"tensat_requests_total", "counter"},
		{"tensat_runs_completed_total", "counter"},
		{"tensat_optimizations_inflight", "gauge"},
		{"tensat_jobs_submitted_total", "counter"},
		{"tensat_jobs_running", "gauge"},
		{"tensat_phase_seconds", "histogram"},
		{"tensat_run_seconds", "histogram"},
		{"tensat_egraph_enodes", "gauge"},
		{"tensat_egraph_eclasses", "gauge"},
		{"tensat_search_classes_scanned_total", "counter"},
		{"tensat_search_matches_total", "counter"},
		{"tensat_ilp_presolve_fixed_total", "counter"},
		{"tensat_ilp_presolve_dropped_total", "counter"},
		{"tensat_ilp_presolve_constraints_removed_total", "counter"},
		{"tensat_ilp_incumbents_total", "counter"},
		{"tensat_ilp_solves_total", "counter"},
		{"tensat_workers", "gauge"},
		{"tensat_build_info", "counter"},
	} {
		f, ok := fams[want.name]
		if !ok {
			t.Errorf("missing family %s", want.name)
			continue
		}
		if f.typ != want.typ {
			t.Errorf("%s type %s, want %s", want.name, f.typ, want.typ)
		}
		if f.help == "" {
			t.Errorf("%s has no HELP text", want.name)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	checkHistogram(t, fams, "tensat_phase_seconds")
	checkHistogram(t, fams, "tensat_run_seconds")

	if v := fams["tensat_cache_hits_total"].samples["tensat_cache_hits_total"]; v != 1 {
		t.Errorf("cache hits = %v, want 1", v)
	}
	if v := fams["tensat_cache_misses_total"].samples["tensat_cache_misses_total"]; v != 1 {
		t.Errorf("cache misses = %v, want 1", v)
	}
	if v := fams["tensat_runs_completed_total"].samples["tensat_runs_completed_total"]; v != 1 {
		t.Errorf("completed = %v, want 1", v)
	}
	// The cold run's per-phase observations: explore, search, apply,
	// rebuild and the greedy extractor each recorded one latency.
	for _, phase := range []string{"explore", "search", "apply", "rebuild", "extract_greedy"} {
		key := fmt.Sprintf(`tensat_phase_seconds_count{phase="%s"}`, phase)
		if v := fams["tensat_phase_seconds"].samples[key]; v != 1 {
			t.Errorf("%s = %v, want 1", key, v)
		}
	}
}

// TestMetricsProfileLabels checks label hygiene on the per-profile
// request counter: the resolved ruleset/cost_model pair appears as a
// properly quoted label set.
func TestMetricsProfileLabels(t *testing.T) {
	s := New(Config{Workers: 1})
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		return stubResult(t), nil
	}
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	if _, err := s.Optimize(context.Background(), testGraph(t, 1),
		RequestOptions{RuleSet: "taso-single", CostModel: "cpu"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Optimize(context.Background(), testGraph(t, 2), RequestOptions{}); err != nil {
		t.Fatal(err)
	}

	fams := scrapeMetrics(t, ts.URL)
	f := fams["tensat_requests_total"]
	if f == nil {
		t.Fatal("missing tensat_requests_total")
	}
	if v := f.samples[`tensat_requests_total{ruleset="taso-single",cost_model="cpu"}`]; v != 1 {
		t.Fatalf("profiled sample = %v, want 1; have %v", v, f.order)
	}
	if v := f.samples[`tensat_requests_total{ruleset="taso-default",cost_model="t4"}`]; v != 1 {
		t.Fatalf("default-profile sample = %v, want 1; have %v", v, f.order)
	}
}

// TestMetricsCounterMonotonic scrapes before and after work and checks
// every counter sample is non-decreasing across runs.
func TestMetricsCounterMonotonic(t *testing.T) {
	s := New(Config{Workers: 2})
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		return stubResult(t), nil
	}
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	if _, err := s.Optimize(context.Background(), testGraph(t, 1), RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	before := scrapeMetrics(t, ts.URL)
	for i := 2; i < 6; i++ {
		if _, err := s.Optimize(context.Background(), testGraph(t, i), RequestOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	// And a cache hit, which bumps a different counter family.
	if _, err := s.Optimize(context.Background(), testGraph(t, 1), RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	after := scrapeMetrics(t, ts.URL)

	for name, f := range before {
		if f.typ != "counter" && f.typ != "histogram" {
			continue // gauges may go either way
		}
		g, ok := after[name]
		if !ok {
			t.Errorf("family %s disappeared between scrapes", name)
			continue
		}
		for key, v := range f.samples {
			if g.samples[key] < v {
				t.Errorf("%s went backwards: %v -> %v", key, v, g.samples[key])
			}
		}
	}
}

// TestMetricsConcurrentScrape hammers /metrics while optimizations are
// in flight; run under -race this proves the scrape path is race-clean.
func TestMetricsConcurrentScrape(t *testing.T) {
	s := New(Config{Workers: 4})
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		o.Progress(tensat.Progress{Phase: tensat.PhaseExplore, Iteration: 1, ENodes: 10})
		return stubResult(t), nil
	}
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				s.Optimize(context.Background(), testGraph(t, seed*100+i), RequestOptions{})
			}
		}(w)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	// A final scrape must still be well-formed after the storm.
	fams := scrapeMetrics(t, ts.URL)
	total := fams["tensat_cache_misses_total"].samples["tensat_cache_misses_total"]
	if total != 40 {
		t.Fatalf("cache misses = %v, want 40", total)
	}
}

// TestV1JobTraceEndToEnd runs a real NasRNN job through the HTTP stack
// and verifies the acceptance contract for /v1/jobs/{id}/trace: a span
// tree whose per-phase durations nest consistently and sum to within
// the job's recorded wall time, plus a Chrome-format export.
func TestV1JobTraceEndToEnd(t *testing.T) {
	m, err := models.ByName("NasRNN")
	if err != nil {
		t.Fatal(err)
	}
	wire, err := m.Build(models.ScaleTest).MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t)

	status, job, raw := postJob(t, ts.URL, OptimizeRequest{
		Graph:   string(wire),
		Options: RequestOptions{Extractor: "greedy", NodeLimit: 2000, IterLimit: 3},
	})
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", status, raw)
	}
	waitFor(t, func() bool {
		_, r := getJob(t, ts.URL, job.ID)
		return r.Status != string(JobRunning)
	})
	if _, r := getJob(t, ts.URL, job.ID); r.Status != string(JobDone) {
		t.Fatalf("job finished as %s (%s)", r.Status, r.Error)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	var trace TraceReply
	if err := json.NewDecoder(resp.Body).Decode(&trace); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}

	root := trace.Trace
	if root.Name != "optimize" {
		t.Fatalf("root span %q, want optimize", root.Name)
	}
	if root.DurationMS <= 0 {
		t.Fatalf("root span has no duration: %+v", root)
	}
	// The trace covers the optimization only; the job wall time also
	// includes queueing, so root <= wall (with scheduling slack).
	if trace.WallMS <= 0 || root.DurationMS > trace.WallMS*1.05+5 {
		t.Fatalf("root %.2fms exceeds job wall %.2fms", root.DurationMS, trace.WallMS)
	}

	// Nesting invariant, recursively: children are sequential phases of
	// their parent, so their durations sum to at most the parent's.
	var checkNesting func(s TraceSpanReply)
	checkNesting = func(s TraceSpanReply) {
		var sum float64
		for _, c := range s.Children {
			sum += c.DurationMS
			checkNesting(c)
		}
		if sum > s.DurationMS*1.01+1 {
			t.Fatalf("span %q: children sum %.2fms > own %.2fms", s.Name, sum, s.DurationMS)
		}
	}
	checkNesting(root)

	phases := map[string]TraceSpanReply{}
	for _, c := range root.Children {
		phases[c.Name] = c
	}
	explore, ok := phases["explore"]
	if !ok {
		t.Fatalf("no explore span; phases %v", root.Children)
	}
	if _, ok := phases["extract"]; !ok {
		t.Fatalf("no extract span; phases %v", root.Children)
	}
	if explore.Attrs["enodes"] <= 0 || explore.Attrs["iterations"] <= 0 {
		t.Fatalf("explore attrs = %v", explore.Attrs)
	}
	if len(explore.Children) == 0 {
		t.Fatal("explore span has no iteration children")
	}
	iter := explore.Children[0]
	if iter.Name != "iteration" {
		t.Fatalf("explore child %q, want iteration", iter.Name)
	}
	sub := map[string]bool{}
	for _, c := range iter.Children {
		sub[c.Name] = true
	}
	for _, want := range []string{"search", "apply", "rebuild"} {
		if !sub[want] {
			t.Fatalf("iteration missing %s span: have %v", want, iter.Children)
		}
	}

	// The Chrome-format export is a JSON array of trace events.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + job.ID + "/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(events) < 5 {
		t.Fatalf("chrome export has %d events, want a full tree", len(events))
	}
	for _, e := range events {
		if e["name"] == "" || e["ph"] == "" {
			t.Fatalf("malformed chrome event %v", e)
		}
	}

	// After a real run the per-phase histograms hold observations.
	fams := scrapeMetrics(t, ts.URL)
	checkHistogram(t, fams, "tensat_phase_seconds")
	if v := fams["tensat_phase_seconds"].samples[`tensat_phase_seconds_count{phase="explore"}`]; v < 1 {
		t.Fatalf("explore phase histogram empty after real job")
	}
}

// TestSSEKeepAlive proves the events stream emits keepalive comment
// lines during a quiet phase (no progress events), so idle connections
// survive proxies, and that /trace answers 409 while running and 404
// for results that carry no trace.
func TestSSEKeepAlive(t *testing.T) {
	s := New(Config{Workers: 1, SSEKeepAlive: 20 * time.Millisecond})
	release := make(chan struct{})
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		select {
		case <-release:
			return stubResult(t), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	status, job, raw := postJob(t, ts.URL, OptimizeRequest{Graph: `(output (relu (input "x@8 8")))`})
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", status, raw)
	}

	// While the job runs, its trace is not yet available: 409.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("running trace status %d, want 409", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// The optimization is gated, so nothing but keepalives can arrive.
	keepalives := 0
	sawDone := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, ":") {
			keepalives++
			if keepalives == 3 {
				close(release) // let the job finish; the stream must still end cleanly
			}
		}
		if strings.HasPrefix(line, "event: done") {
			sawDone = true
		}
	}
	if keepalives < 3 {
		t.Fatalf("saw %d keepalive comments, want >= 3", keepalives)
	}
	if !sawDone {
		t.Fatal("stream ended without a done event")
	}

	// Stubbed results carry no trace: 404 once done.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + job.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("traceless trace status %d, want 404", resp.StatusCode)
	}
}

// TestStatsPercentiles feeds a known latency sequence through the
// collector and checks the P50/P95/P99 ranks and the window size.
func TestStatsPercentiles(t *testing.T) {
	var c collector
	for i := 1; i <= 100; i++ {
		c.startWork()
		c.endWork(time.Duration(i)*time.Millisecond, nil)
	}
	st := c.snapshot()
	if st.LatencyWindow != latencyWindow {
		t.Fatalf("latency window = %d, want %d", st.LatencyWindow, latencyWindow)
	}
	// With samples 1..100ms sorted, rank n/2 is 51ms, (n*95)/100 is
	// 96ms, (n*99)/100 is 100ms.
	if st.P50 != 51*time.Millisecond {
		t.Errorf("P50 = %v, want 51ms", st.P50)
	}
	if st.P95 != 96*time.Millisecond {
		t.Errorf("P95 = %v, want 96ms", st.P95)
	}
	if st.P99 != 100*time.Millisecond {
		t.Errorf("P99 = %v, want 100ms", st.P99)
	}
	// The wire shape carries both fields too.
	s := New(Config{Workers: 1})
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		return stubResult(t), nil
	}
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()
	if _, err := s.Optimize(context.Background(), testGraph(t, 1), RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	var reply StatsReply
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if reply.LatencyWindow != latencyWindow {
		t.Fatalf("wire latency window = %d, want %d", reply.LatencyWindow, latencyWindow)
	}
	if reply.P99MS < reply.P50MS || reply.P50MS <= 0 {
		t.Fatalf("wire percentiles: p50=%v p99=%v", reply.P50MS, reply.P99MS)
	}
}
