package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"tensat"
	"tensat/internal/tenant"
)

// ErrJobStoreFull is returned by SubmitJob when the store holds
// MaxJobs unfinished jobs; transports classify it as backpressure
// (HTTP 429), not a server fault.
var ErrJobStoreFull = errors.New("serve: job store full")

// progressLogCap bounds one job's progress history: the log is a ring
// holding the newest progressLogCap snapshots. Readers that keep up
// see every entry; a reader that falls more than the cap behind (or a
// pathological job publishing tens of thousands of incumbents) skips
// the oldest overwritten entries but always continues receiving the
// live tail.
const progressLogCap = 4096

// progressLog is a bounded broadcast log of progress snapshots:
// writers publish, readers replay from a monotone index and get a
// channel that is closed on the next append (so watchers never miss or
// double-count a delivered entry).
type progressLog struct {
	mu     sync.Mutex
	buf    []tensat.Progress // ring once len == progressLogCap
	total  int               // entries ever published
	notify chan struct{}
}

func (l *progressLog) init() { l.notify = make(chan struct{}) }

func (l *progressLog) publish(p tensat.Progress) {
	l.mu.Lock()
	if len(l.buf) < progressLogCap {
		l.buf = append(l.buf, p)
	} else {
		l.buf[l.total%progressLogCap] = p
	}
	l.total++
	close(l.notify)
	l.notify = make(chan struct{})
	l.mu.Unlock()
}

// since returns the entries from monotone index from on (oldest first,
// clamped to what the ring still holds), the index to resume from, and
// the channel that will signal the next append.
func (l *progressLog) since(from int) ([]tensat.Progress, int, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	start := from
	if lo := l.total - len(l.buf); start < lo {
		start = lo
	}
	var out []tensat.Progress
	if start < l.total {
		out = make([]tensat.Progress, 0, l.total-start)
		for i := start; i < l.total; i++ {
			out = append(out, l.buf[i%progressLogCap])
		}
	}
	return out, l.total, l.notify
}

// latest returns the newest entry (zero Progress when empty).
func (l *progressLog) latest() tensat.Progress {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.total > 0 {
		return l.buf[(l.total-1)%progressLogCap]
	}
	return tensat.Progress{}
}

// JobStatus is the service-level lifecycle state of an asynchronous
// job. It is coarser than tensat.Phase: the fine-grained pipeline
// position (queued/explore/extract) lives in the progress snapshots.
type JobStatus string

const (
	JobRunning  JobStatus = "running"
	JobDone     JobStatus = "done"
	JobCanceled JobStatus = "canceled"
	JobFailed   JobStatus = "failed"
)

// Job is one asynchronous optimization tracked by the service: submit
// returns immediately, progress streams through a per-job log (shared
// with any deduplicated siblings), and the result stays queryable for
// the store's TTL after completion.
type Job struct {
	id      string
	created time.Time
	prof    profile
	cancel  context.CancelFunc
	done    chan struct{}
	log     progressLog
	// tenant is the admitting tenant's name ("" when untenanted);
	// degraded records the admission decision — which quota slot the
	// job holds and must release on finish.
	tenant   string
	degraded bool

	mu     sync.Mutex
	status JobStatus
	resp   *Response
	err    error
	doneAt time.Time
}

// ID is the store key, exposed over HTTP as /v1/jobs/{id}.
func (j *Job) ID() string { return j.id }

// Created reports submission time (the job-listing "age" anchor).
func (j *Job) Created() time.Time { return j.created }

// Profile reports the resolved profile names the job runs under.
func (j *Job) Profile() (ruleSet, costModel string) {
	return j.prof.RuleSet, j.prof.CostModel
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status returns the lifecycle state and the latest progress snapshot.
// While the job runs, Elapsed is recomputed from submission time so
// pollers see time advance between pipeline events.
func (j *Job) Status() (JobStatus, tensat.Progress) {
	j.mu.Lock()
	st := j.status
	j.mu.Unlock()
	p := j.log.latest()
	if st == JobRunning {
		p.Elapsed = time.Since(j.created)
	}
	return st, p
}

// Outcome returns the job's response and error; both are nil until
// Done is closed.
func (j *Job) Outcome() (*Response, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.resp, j.err
}

// Cancel aborts a running job; the exploration stops at its next
// check point, the worker slot is freed (unless other requests share
// the run), and the partial result is never cached. Canceling a
// finished job is a no-op.
func (j *Job) Cancel() { j.cancel() }

// ProgressSince replays the job's progress log from a monotone index,
// returning the entries, the index to resume from, and the channel
// signalling the next append — the primitive the SSE handler streams
// from.
func (j *Job) ProgressSince(from int) ([]tensat.Progress, int, <-chan struct{}) {
	return j.log.since(from)
}

// finish publishes the terminal state exactly once.
func (j *Job) finish(resp *Response, err error) JobStatus {
	status := JobDone
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		status = JobCanceled
	default:
		status = JobFailed
	}
	// Guarantee a terminal entry in the log: runs pumped from a flight
	// already carry one for done/failed, but canceled followers and
	// cache hits do not.
	last := j.log.latest()
	want := tensat.PhaseDone
	switch status {
	case JobCanceled:
		want = tensat.PhaseCanceled
	case JobFailed:
		want = tensat.PhaseFailed
	}
	if last.Phase != want {
		p := last
		p.Phase = want
		if resp != nil && resp.Result != nil {
			p.Iteration = resp.Result.Iterations
			p.ENodes, p.EClasses = resp.Result.ENodes, resp.Result.EClasses
			p.BestCost = resp.Result.OptCost
		}
		p.Elapsed = time.Since(j.created)
		j.log.publish(p)
	}
	j.mu.Lock()
	j.status = status
	j.resp, j.err = resp, err
	j.doneAt = time.Now()
	j.mu.Unlock()
	close(j.done)
	j.cancel() // release the job context's resources
	return status
}

// finished reports the completion time (zero while running).
func (j *Job) finishedAt() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.doneAt
}

// JobCounters snapshots the store's lifetime job counters.
type JobCounters struct {
	Submitted uint64
	Running   int
	Done      uint64
	Canceled  uint64
	Failed    uint64
}

// jobStore indexes asynchronous jobs by id. It is capacity-capped —
// submissions beyond MaxJobs evict the oldest finished job, or fail
// with ErrJobStoreFull when every held job is still running — and
// TTL-bounded: finished jobs expire ttl after completion.
type jobStore struct {
	mu   sync.Mutex
	jobs map[string]*Job
	ttl  time.Duration
	cap  int

	submitted, done, canceled, failed uint64
}

func newJobStore(capacity int, ttl time.Duration) *jobStore {
	return &jobStore{jobs: make(map[string]*Job), ttl: ttl, cap: capacity}
}

// add registers a new job, purging expired entries and evicting the
// oldest finished job if the store is at capacity.
func (st *jobStore) add(j *Job) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.purgeLocked(time.Now())
	if len(st.jobs) >= st.cap {
		var oldest *Job
		for _, held := range st.jobs {
			at := held.finishedAt()
			if at.IsZero() {
				continue
			}
			if oldest == nil || at.Before(oldest.finishedAt()) {
				oldest = held
			}
		}
		if oldest == nil {
			return ErrJobStoreFull
		}
		delete(st.jobs, oldest.id)
	}
	st.jobs[j.id] = j
	st.submitted++
	return nil
}

func (st *jobStore) get(id string) (*Job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.purgeLocked(time.Now())
	j, ok := st.jobs[id]
	return j, ok
}

// list snapshots the live (unexpired) jobs, oldest submission first,
// id as the tiebreak so the order is deterministic.
func (st *jobStore) list() []*Job {
	st.mu.Lock()
	st.purgeLocked(time.Now())
	out := make([]*Job, 0, len(st.jobs))
	for _, j := range st.jobs {
		out = append(out, j)
	}
	st.mu.Unlock()
	sort.Slice(out, func(i, k int) bool {
		if !out[i].created.Equal(out[k].created) {
			return out[i].created.Before(out[k].created)
		}
		return out[i].id < out[k].id
	})
	return out
}

// recordFinish bumps the terminal counters.
func (st *jobStore) recordFinish(status JobStatus) {
	st.mu.Lock()
	defer st.mu.Unlock()
	switch status {
	case JobCanceled:
		st.canceled++
	case JobFailed:
		st.failed++
	default:
		st.done++
	}
}

func (st *jobStore) purgeLocked(now time.Time) {
	for id, j := range st.jobs {
		if at := j.finishedAt(); !at.IsZero() && now.Sub(at) > st.ttl {
			delete(st.jobs, id)
		}
	}
}

func (st *jobStore) counters() JobCounters {
	st.mu.Lock()
	defer st.mu.Unlock()
	// The store has no background sweeper; expiry is enforced on every
	// touch point instead. Purging here too means a server whose only
	// traffic is monitoring (/stats) still releases finished jobs —
	// their result graphs and progress logs — once JobTTL elapses.
	st.purgeLocked(time.Now())
	running := 0
	for _, j := range st.jobs {
		if j.finishedAt().IsZero() {
			running++
		}
	}
	return JobCounters{
		Submitted: st.submitted,
		Running:   running,
		Done:      st.done,
		Canceled:  st.canceled,
		Failed:    st.failed,
	}
}

// newJobID returns a 16-hex-char random job id.
func newJobID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

// SubmitJob validates the request synchronously (bad options and
// malformed graphs fail here, before a job exists), registers a job,
// and starts it in the background. The job is bounded by timeout when
// positive, and by Job.Cancel; it is NOT tied to the submitting
// caller's lifetime — that is the point of the asynchronous surface.
func (s *Service) SubmitJob(g *tensat.Graph, ro RequestOptions, timeout time.Duration) (*Job, error) {
	return s.SubmitJobAs(g, ro, timeout, nil)
}

// SubmitJobAs is SubmitJob under a tenant's admission control: the
// decision (full quality, degraded, or *RateLimitError) is made at
// submission, the quota slot is held for the job's lifetime, and the
// tenant's priority orders the job in the worker queue. tn == nil
// bypasses admission entirely.
func (s *Service) SubmitJobAs(g *tensat.Graph, ro RequestOptions, timeout time.Duration, tn *tenant.Tenant) (*Job, error) {
	q, err := s.prepare(g, ro)
	if err != nil {
		return nil, err
	}
	id, err := newJobID()
	if err != nil {
		return nil, err
	}
	s.stats.profile(q.prof)
	prio, degraded, err := s.admit(tn)
	if err != nil {
		return nil, err
	}
	// Drain gate: track registers the job with the drain WaitGroup (so
	// Drain waits for it) and atomically refuses once draining has
	// begun — a job can never start after Drain has decided what it is
	// waiting for.
	if !s.drain.track() {
		if tn != nil && s.cfg.Tenants != nil {
			s.cfg.Tenants.Release(tn.Name, degraded)
		}
		return nil, ErrDraining
	}

	ctx := context.Background()
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	job := &Job{
		id:      id,
		created: time.Now(),
		prof:    q.prof,
		cancel:  cancel,
		done:    make(chan struct{}),
		status:  JobRunning,
	}
	if tn != nil && s.cfg.Tenants != nil {
		job.tenant, job.degraded = tn.Name, degraded
	}
	job.log.init()
	job.log.publish(tensat.Progress{Phase: tensat.PhaseQueued})
	if err := s.jobs.add(job); err != nil {
		cancel()
		s.drain.done()
		if job.tenant != "" {
			s.cfg.Tenants.Release(job.tenant, job.degraded)
		}
		return nil, err
	}
	s.metrics.jobsSubmitted.Inc()
	s.metrics.jobsRunning.Inc()
	attrs := []any{
		"job", job.id,
		"profile", q.prof.label(),
		"fingerprint", q.fp,
	}
	if job.tenant != "" {
		attrs = append(attrs, "tenant", job.tenant, "degraded", job.degraded)
	}
	s.log.Info("job submitted", attrs...)
	go func() {
		defer s.drain.done()
		s.runJob(ctx, job, q, g, prio, degraded)
	}()
	return job, nil
}

// Job looks up a tracked job by id.
func (s *Service) Job(id string) (*Job, bool) { return s.jobs.get(id) }

// Jobs lists every tracked job — running and finished-but-unexpired —
// oldest first. It is the observability hook behind GET /v1/jobs: the
// TTL and eviction behavior of the store shows up as jobs appearing
// and disappearing from this listing.
func (s *Service) Jobs() []*Job { return s.jobs.list() }

// JobCounters snapshots the job store counters.
func (s *Service) JobCounters() JobCounters { return s.jobs.counters() }

// finishJob records the terminal state in the job, the store, the
// Prometheus job-lifecycle counters, and the structured log, and
// releases the tenant quota slot the job has held since submission.
func (s *Service) finishJob(job *Job, resp *Response, err error) {
	status := job.finish(resp, err)
	s.jobs.recordFinish(status)
	if job.tenant != "" && s.cfg.Tenants != nil {
		s.cfg.Tenants.Release(job.tenant, job.degraded)
	}
	s.metrics.jobsRunning.Dec()
	attrs := []any{
		"job", job.id,
		"status", string(status),
		"profile", job.prof.label(),
		"duration", time.Since(job.created),
	}
	switch status {
	case JobCanceled:
		s.metrics.jobsCanceled.Inc()
	case JobFailed:
		s.metrics.jobsFailed.Inc()
		attrs = append(attrs, "error", err.Error())
	default:
		s.metrics.jobsDone.Inc()
		if resp != nil {
			attrs = append(attrs, "cached", resp.Cached, "deduped", resp.Deduped)
		}
	}
	s.log.Info("job finished", attrs...)
}

// runJob drives one asynchronous job through the same cache tiers →
// singleflight → worker-pool path as the synchronous Optimize,
// pumping the shared flight's progress stream into the job's own log
// so every deduplicated sibling (and the SSE watchers of each) sees
// identical live snapshots.
func (s *Service) runJob(ctx context.Context, job *Job, q request, g *tensat.Graph, prio int, degraded bool) {
	// Panic isolation for the job runner itself (the worker-pool run has
	// its own recover): the job must always reach a terminal state —
	// watchers block on job.Done() — and the daemon must survive.
	defer func() {
		if r := recover(); r != nil {
			perr := &tensat.PanicError{Value: r, Stack: debug.Stack()}
			s.stats.panicked("job")
			s.log.Error("panic in job runner", "job", job.id,
				"panic", fmt.Sprint(r), "stack", string(perr.Stack))
			select {
			case <-job.done:
				// Already terminal; nothing left to publish.
			default:
				s.finishJob(job, nil, perr)
			}
		}
	}()
	if entry, tier, ok := s.lookup(ctx, q.key); ok {
		res, err := entry.inVocabulary(q.names)
		if err != nil {
			s.finishJob(job, nil, err)
			return
		}
		s.finishJob(job, &Response{Result: res, Fingerprint: q.fp, Cached: true, Tier: tier}, nil)
		return
	}
	s.stats.miss()

	runKey, runOpts := q.key, q.opts
	if degraded {
		runKey += shedKeySuffix
		runOpts.Extractor = tensat.ExtractGreedy
		s.stats.shed()
		s.log.Info("load shedding job", "job", job.id, "tenant", job.tenant)
	}
	c, leader := s.flight.join(runKey)
	if leader {
		c.tensors = q.names // published to followers by close(c.done)
		go s.run(runKey, q.keyParts(), c, g, runOpts, prio, degraded)
	} else {
		s.stats.dedup()
	}

	idx := 0
	var notify <-chan struct{}
	pump := func() {
		var entries []tensat.Progress
		entries, idx, notify = c.progress.since(idx)
		for _, p := range entries {
			job.log.publish(p)
		}
	}
	pump()
	for {
		select {
		case <-c.done:
			pump() // drain entries published before the close
			if c.err != nil {
				s.finishJob(job, nil, c.err)
				return
			}
			// A sibling's graph may spell the tensors differently than
			// the leader's; answer in this job's vocabulary.
			res, err := (&cachedResult{res: c.res, tensors: c.tensors}).inVocabulary(q.names)
			if err != nil {
				s.finishJob(job, nil, err)
				return
			}
			s.finishJob(job, &Response{Result: res, Fingerprint: q.fp, Deduped: !leader, Degraded: degraded}, nil)
			return
		case <-ctx.Done():
			// Canceled (or timed out): drop our interest. The shared run
			// keeps going while any other request still wants it; if we
			// were the last, the flight cancels the work, the worker slot
			// frees up, and run() never caches the partial result.
			s.flight.leave(runKey, c)
			s.stats.cancel()
			s.finishJob(job, nil, ctx.Err())
			return
		case <-notify:
			pump()
		}
	}
}
