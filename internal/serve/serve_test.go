package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tensat"
)

// testGraph builds a distinct small graph per seed.
func testGraph(t testing.TB, seed int) *tensat.Graph {
	t.Helper()
	b := tensat.NewBuilder()
	x := b.Input("x", 8, 8+seed)
	g, err := b.Finish(b.Relu(x))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// stubResult fabricates a minimal result; the service treats results
// as opaque, so the graph content is irrelevant to these tests.
func stubResult(t testing.TB) *tensat.Result {
	t.Helper()
	return &tensat.Result{Graph: testGraph(t, 0), OrigCost: 2, OptCost: 1}
}

func TestCacheHitSkipsReoptimization(t *testing.T) {
	s := New(Config{Workers: 2})
	var calls atomic.Int64
	res := stubResult(t)
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		calls.Add(1)
		return res, nil
	}

	g := testGraph(t, 1)
	first, err := s.Optimize(context.Background(), g, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first request reported cached")
	}
	// Second identical request: must be served from the cache, not
	// re-optimized. Rebuild the graph to prove keying is structural.
	second, err := s.Optimize(context.Background(), testGraph(t, 1), RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second identical request missed the cache")
	}
	if second.Result != res {
		t.Fatal("cache returned a different result object")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("optimize ran %d times, want 1", n)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestDistinctOptionsAreDistinctEntries(t *testing.T) {
	s := New(Config{Workers: 2})
	var calls atomic.Int64
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		calls.Add(1)
		return stubResult(t), nil
	}
	g := testGraph(t, 1)
	if _, err := s.Optimize(context.Background(), g, RequestOptions{Extractor: "ilp"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Optimize(context.Background(), g, RequestOptions{Extractor: "greedy"}); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("optimize ran %d times, want 2 (different options)", n)
	}
}

func TestEquivalentOptionsShareCacheEntry(t *testing.T) {
	// Base extractor is ILP; spelling it out must key identically to
	// inheriting it.
	s := New(Config{Workers: 2})
	var calls atomic.Int64
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		calls.Add(1)
		return stubResult(t), nil
	}
	g := testGraph(t, 1)
	if _, err := s.Optimize(context.Background(), g, RequestOptions{Extractor: "ilp"}); err != nil {
		t.Fatal(err)
	}
	resp, err := s.Optimize(context.Background(), g, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Fatal("request resolving to the same effective options missed the cache")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("optimize ran %d times, want 1", n)
	}
}

func TestILPSolverRequestOption(t *testing.T) {
	s := New(Config{Workers: 2})
	g := testGraph(t, 1)
	if _, err := s.Optimize(context.Background(), g, RequestOptions{ILPSolver: "scip"}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("unknown ilp_solver: err = %v, want ErrBadOptions", err)
	}

	// Distinct backends are distinct cache keys: under a budget their
	// anytime answers differ, so they must not share entries.
	var calls atomic.Int64
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		calls.Add(1)
		return stubResult(t), nil
	}
	if _, err := s.Optimize(context.Background(), g, RequestOptions{ILPSolver: "builtin"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Optimize(context.Background(), g, RequestOptions{ILPSolver: "builtin-seq"}); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("optimize ran %d times, want 2 (different backends)", n)
	}
}

// TestILPStatsCounters runs a real ILP extraction through the service
// and checks the run's solver/presolve counters land in Stats.
func TestILPStatsCounters(t *testing.T) {
	s := New(Config{Workers: 2})
	if _, err := s.Optimize(context.Background(), testGraph(t, 1), RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.ILP.Solves["builtin/optimal"] != 1 {
		t.Fatalf("ILP solves = %v, want builtin/optimal: 1", st.ILP.Solves)
	}
	if st.ILP.Incumbents == 0 {
		t.Fatal("no incumbents counted for a completed ILP run")
	}
}

func TestSingleflightDeduplicatesConcurrentIdenticalRequests(t *testing.T) {
	s := New(Config{Workers: 4})
	var calls atomic.Int64
	release := make(chan struct{})
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		calls.Add(1)
		select {
		case <-release:
			return stubResult(t), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	deduped := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Optimize(context.Background(), testGraph(t, 1), RequestOptions{})
			errs[i] = err
			if resp != nil {
				deduped[i] = resp.Deduped
			}
		}(i)
	}
	// Wait for all n requests to be either the leader or joined
	// followers, then let the single run finish.
	waitFor(t, func() bool { return s.Stats().Deduped == n-1 })
	close(release)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("optimize ran %d times, want 1 (singleflight)", n)
	}
	nDeduped := 0
	for _, d := range deduped {
		if d {
			nDeduped++
		}
	}
	if nDeduped != n-1 {
		t.Fatalf("%d requests report deduped, want %d", nDeduped, n-1)
	}
}

func TestCanceledContextReturnsPromptlyWithoutPoisoningCache(t *testing.T) {
	s := New(Config{Workers: 1})
	started := make(chan struct{})
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		close(started)
		<-ctx.Done() // simulate an optimization that honors cancellation
		return nil, ctx.Err()
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Optimize(ctx, testGraph(t, 1), RequestOptions{})
		errc <- err
	}()
	<-started
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled request did not return promptly")
	}

	// The aborted run must not have been cached: the next identical
	// request re-optimizes (and succeeds this time).
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		return stubResult(t), nil
	}
	resp, err := s.Optimize(context.Background(), testGraph(t, 1), RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Fatal("canceled run poisoned the cache")
	}
	if st := s.Stats(); st.CacheEntries != 1 {
		t.Fatalf("cache entries = %d, want 1", st.CacheEntries)
	}
}

func TestAbandonedRunIsCanceledWhenLastWaiterLeaves(t *testing.T) {
	s := New(Config{Workers: 1})
	workCtxDone := make(chan struct{})
	started := make(chan struct{})
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		close(started)
		<-ctx.Done()
		close(workCtxDone)
		return nil, ctx.Err()
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Optimize(ctx, testGraph(t, 1), RequestOptions{})
		errc <- err
	}()
	<-started
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// With no waiters left, the shared work context must be canceled so
	// the run is not stranded.
	select {
	case <-workCtxDone:
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned run kept working after the last waiter left")
	}
}

func TestConcurrentDistinctRequestsRunInParallel(t *testing.T) {
	const n = 4
	s := New(Config{Workers: n})
	var running, peak atomic.Int64
	barrier := make(chan struct{})
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		cur := running.Add(1)
		defer running.Add(-1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		<-barrier // all n must be inside optimize at once to proceed
		return stubResult(t), nil
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Optimize(context.Background(), testGraph(t, i), RequestOptions{})
		}(i)
	}
	waitFor(t, func() bool { return running.Load() == n })
	close(barrier)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if p := peak.Load(); p != n {
		t.Fatalf("peak concurrency = %d, want %d", p, n)
	}
}

func TestWorkerPoolBoundsConcurrency(t *testing.T) {
	s := New(Config{Workers: 2})
	var running, peak atomic.Int64
	release := make(chan struct{})
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		cur := running.Add(1)
		defer running.Add(-1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		<-release
		return stubResult(t), nil
	}

	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Optimize(context.Background(), testGraph(t, i), RequestOptions{}); err != nil {
				t.Errorf("request %d: %v", i, err)
			}
		}(i)
	}
	waitFor(t, func() bool { return running.Load() == 2 })
	close(release)
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak concurrency = %d, want <= 2", p)
	}
	if st := s.Stats(); st.Completed != n {
		t.Fatalf("completed = %d, want %d", st.Completed, n)
	}
}

func TestFailedRunIsNotCached(t *testing.T) {
	s := New(Config{Workers: 1})
	fail := errors.New("solver exploded")
	var calls atomic.Int64
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		if calls.Add(1) == 1 {
			return nil, fail
		}
		return stubResult(t), nil
	}
	if _, err := s.Optimize(context.Background(), testGraph(t, 1), RequestOptions{}); !errors.Is(err, fail) {
		t.Fatalf("err = %v, want %v", err, fail)
	}
	resp, err := s.Optimize(context.Background(), testGraph(t, 1), RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Fatal("failed run was cached")
	}
	if st := s.Stats(); st.Errors != 1 || st.Completed != 1 {
		t.Fatalf("stats = %+v, want 1 error / 1 completed", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRUCache(2, 0)
	r1, r2, r3 := &cachedResult{}, &cachedResult{}, &cachedResult{}
	c.add("a", r1, 1)
	c.add("b", r2, 1)
	if _, ok := c.get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.add("c", r3, 1)
	if _, ok := c.get("b"); ok {
		t.Fatal("b not evicted")
	}
	if got, ok := c.get("a"); !ok || got != r1 {
		t.Fatal("a evicted or wrong")
	}
	if got, ok := c.get("c"); !ok || got != r3 {
		t.Fatal("c missing")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestRequestOptionsValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	if _, err := s.Optimize(context.Background(), testGraph(t, 1), RequestOptions{Extractor: "quantum"}); err == nil {
		t.Fatal("unknown extractor accepted")
	}
	if _, err := s.Optimize(context.Background(), testGraph(t, 1), RequestOptions{CycleFilter: "perhaps"}); err == nil {
		t.Fatal("unknown cycle filter accepted")
	}
}

// TestEndToEndRealOptimize exercises the real pipeline (no stub): the
// figure-2 graph through greedy extraction, twice, expecting one cold
// run and one cache hit with identical results.
func TestEndToEndRealOptimize(t *testing.T) {
	s := New(Config{Workers: 2, Base: fastOptions()})
	build := func() *tensat.Graph {
		b := tensat.NewBuilder()
		x := b.Input("x", 64, 256)
		w1 := b.Weight("w1", 256, 256)
		w2 := b.Weight("w2", 256, 256)
		g, err := b.Finish(b.Matmul(tensat.ActNone, x, w1), b.Matmul(tensat.ActNone, x, w2))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	cold, err := s.Optimize(context.Background(), build(), RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Result.OptCost >= cold.Result.OrigCost {
		t.Fatalf("no improvement: %v -> %v", cold.Result.OrigCost, cold.Result.OptCost)
	}
	warm, err := s.Optimize(context.Background(), build(), RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("second identical optimize was not a cache hit")
	}
	if warm.Result != cold.Result {
		t.Fatal("cache returned a different result")
	}
	if len(cold.Fingerprint) != 64 {
		t.Fatalf("fingerprint %q is not 64 hex chars", cold.Fingerprint)
	}
	st := s.Stats()
	if st.P50 <= 0 || st.P95 < st.P50 {
		t.Fatalf("latency percentiles not recorded: %+v", st)
	}
}

// fastOptions keeps real optimizations test-friendly.
func fastOptions() tensat.Options {
	o := tensat.DefaultOptions()
	o.NodeLimit = 2000
	o.IterLimit = 5
	o.ILPTimeout = 30 * time.Second
	return o
}

// waitFor polls cond until true or the test deadline looms.
func waitFor(t testing.TB, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
