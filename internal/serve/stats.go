package serve

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"tensat"
)

// Stats is a point-in-time snapshot of service counters.
type Stats struct {
	// Hits counts requests answered from the result cache; Misses
	// counts requests that had to consult the flight group (of which
	// Deduped joined an already-running identical optimization).
	Hits, Misses, Deduped uint64
	// Completed and Errors count finished optimization runs; Canceled
	// counts requests abandoned by their callers.
	Completed, Errors, Canceled uint64
	// InFlight is the number of optimizations currently holding a
	// worker slot; CacheEntries is the current LRU population and
	// CacheBytes its summed encoded size. QueueWaiting is how many runs
	// are queued for a worker slot.
	InFlight     int
	CacheEntries int
	CacheBytes   int64
	QueueWaiting int
	// Store counts the persistent result-store tier: disk hits and
	// misses after an LRU miss, unreadable/failed records, and
	// write-throughs. StoreEntries/StoreBytes snapshot the store's live
	// population (zero when no store is configured).
	Store        TierCounters
	StoreEntries int
	StoreBytes   int64
	// Peer counts the fleet cache tier: records served by the owning
	// peer, clean peer misses, transport failures (always soft), and
	// completed pushes of cold results to their owners.
	Peer TierCounters
	// PeerRetries counts fetch retry attempts against peers (transient
	// failures absorbed by backoff); PeerPushDropped counts async pushes
	// dropped because the bounded push queue was full.
	PeerRetries     uint64
	PeerPushDropped uint64
	// Shed counts requests degraded to greedy-only extraction because
	// their tenant was over quota; TenantRequests/TenantRejected count
	// per-tenant admission outcomes.
	Shed           uint64
	TenantRequests map[string]uint64
	TenantRejected map[string]uint64
	// Panics counts recovered panics by site ("optimizer", "worker",
	// "job"): each one was a request that answered 500 instead of
	// killing the daemon. Empty when none have occurred.
	Panics map[string]uint64
	// StoreDegraded reports whether the persistent store is currently
	// in degraded mode (I/O failures; the memory tier keeps serving).
	// Draining reports whether the service is shutting down gracefully.
	StoreDegraded bool
	Draining      bool
	// Jobs counts the asynchronous job lifecycle (submitted, running,
	// done, canceled, failed).
	Jobs JobCounters
	// Profiles counts requests per optimization profile, keyed
	// "<ruleset>/<costmodel>" (e.g. "taso-default/t4") — both the
	// synchronous and the job surface contribute.
	Profiles map[string]uint64
	// Search aggregates the e-matching search-phase counters over every
	// cold (uncached) optimization this server completed, so the
	// op-index pruning and incremental re-search wins are observable in
	// the serving layer.
	Search SearchCounters
	// ILP aggregates the ILP-extraction counters (presolve reduction,
	// incumbents, solve outcomes by backend) over the same runs.
	ILP ILPCounters
	// P50, P95 and P99 are percentiles over the most recent cold
	// (uncached) optimization latencies; zero until the first run
	// completes. LatencyWindow is how many recent latencies the
	// percentiles are computed over (the ring capacity, not the current
	// population).
	P50, P95, P99 time.Duration
	LatencyWindow int
}

// TierCounters are the hit/miss/error/put counters of one secondary
// cache tier (the persistent store or the peer fleet).
type TierCounters struct {
	Hits   uint64
	Misses uint64
	Errors uint64
	Puts   uint64
}

// SearchCounters sums tensat.SearchStats over completed runs: classes
// scanned by the pattern programs vs. pruned by the operator index,
// dirty candidates re-searched vs. clean candidates answered from the
// per-iteration match memo, and total matches found.
type SearchCounters struct {
	ClassesScanned uint64
	ClassesPruned  uint64
	DirtySearched  uint64
	CleanReused    uint64
	Matches        uint64
}

// ILPCounters sums tensat.ILPStats over completed ILP-extraction runs:
// what presolve removed before solving, how many incumbent improvements
// the searches produced, and how each backend's solves ended. Solves is
// keyed "<backend>/optimal" or "<backend>/feasible" (an anytime answer
// returned at a budget without an optimality proof).
type ILPCounters struct {
	PresolveFixed   uint64
	PresolveDropped uint64
	PresolveRemoved uint64
	Incumbents      uint64
	Solves          map[string]uint64
}

// latencyWindow is how many recent cold latencies feed the percentiles.
const latencyWindow = 512

// collector accumulates counters and a sliding latency window. When m
// is set (every Service sets it at construction), each bump also feeds
// the equivalent Prometheus instrument, so the JSON stats and the
// /metrics exposition share one set of call sites and cannot drift.
type collector struct {
	m *metrics

	mu              sync.Mutex
	hits            uint64
	misses          uint64
	deduped         uint64
	completed       uint64
	errors          uint64
	canceled        uint64
	inFlight        int
	profiles        map[string]uint64
	search          SearchCounters
	ilp             ILPCounters
	store           TierCounters
	peer            TierCounters
	peerRetries     uint64
	peerPushDropped uint64
	panics          map[string]uint64
	shedTotal       uint64
	tenantReq       map[string]uint64
	tenantRej       map[string]uint64
	ring            [latencyWindow]time.Duration
	ringN           int // total latencies ever recorded
}

func (c *collector) hit() {
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
	if c.m != nil {
		c.m.cacheHits.Inc()
	}
}

func (c *collector) miss() {
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	if c.m != nil {
		c.m.cacheMisses.Inc()
	}
}

func (c *collector) dedup() {
	c.mu.Lock()
	c.deduped++
	c.mu.Unlock()
	if c.m != nil {
		c.m.cacheDedup.Inc()
	}
}

func (c *collector) storeHit() {
	c.mu.Lock()
	c.store.Hits++
	c.mu.Unlock()
	if c.m != nil {
		c.m.storeHits.Inc()
	}
}

func (c *collector) storeMiss() {
	c.mu.Lock()
	c.store.Misses++
	c.mu.Unlock()
	if c.m != nil {
		c.m.storeMisses.Inc()
	}
}

func (c *collector) storeError() {
	c.mu.Lock()
	c.store.Errors++
	c.mu.Unlock()
	if c.m != nil {
		c.m.storeErrors.Inc()
	}
}

func (c *collector) storePut() {
	c.mu.Lock()
	c.store.Puts++
	c.mu.Unlock()
	if c.m != nil {
		c.m.storePuts.Inc()
	}
}

func (c *collector) peerHit() {
	c.mu.Lock()
	c.peer.Hits++
	c.mu.Unlock()
	if c.m != nil {
		c.m.peerHits.Inc()
	}
}

func (c *collector) peerMiss() {
	c.mu.Lock()
	c.peer.Misses++
	c.mu.Unlock()
	if c.m != nil {
		c.m.peerMisses.Inc()
	}
}

func (c *collector) peerError() {
	c.mu.Lock()
	c.peer.Errors++
	c.mu.Unlock()
	if c.m != nil {
		c.m.peerErrors.Inc()
	}
}

func (c *collector) peerPut() {
	c.mu.Lock()
	c.peer.Puts++
	c.mu.Unlock()
	if c.m != nil {
		c.m.peerPuts.Inc()
	}
}

// peerRetry counts one fetch retry attempt against a peer.
func (c *collector) peerRetry() {
	c.mu.Lock()
	c.peerRetries++
	c.mu.Unlock()
	if c.m != nil {
		c.m.peerRetries.Inc()
	}
}

// peerPushDrop counts one async push dropped on a full queue.
func (c *collector) peerPushDrop() {
	c.mu.Lock()
	c.peerPushDropped++
	c.mu.Unlock()
	if c.m != nil {
		c.m.peerPushDropped.Inc()
	}
}

// panicked counts one recovered panic at the named site. Every call
// means a request failed with internal_error but the daemon survived.
func (c *collector) panicked(site string) {
	c.mu.Lock()
	if c.panics == nil {
		c.panics = make(map[string]uint64)
	}
	c.panics[site]++
	c.mu.Unlock()
	if c.m != nil {
		c.m.panics.With(site).Inc()
	}
}

// shed counts one request degraded to greedy-only extraction under
// quota pressure (the per-tenant detail lives in the logs).
func (c *collector) shed() {
	c.mu.Lock()
	c.shedTotal++
	c.mu.Unlock()
	if c.m != nil {
		c.m.shed.Inc()
	}
}

func (c *collector) tenantRequest(name string) {
	c.mu.Lock()
	if c.tenantReq == nil {
		c.tenantReq = make(map[string]uint64)
	}
	c.tenantReq[name]++
	c.mu.Unlock()
	if c.m != nil {
		c.m.tenantRequests.With(name).Inc()
	}
}

func (c *collector) tenantReject(name string) {
	c.mu.Lock()
	if c.tenantRej == nil {
		c.tenantRej = make(map[string]uint64)
	}
	c.tenantRej[name]++
	c.mu.Unlock()
	if c.m != nil {
		c.m.tenantRejected.With(name).Inc()
	}
}

func (c *collector) cancel() {
	c.mu.Lock()
	c.canceled++
	c.mu.Unlock()
	if c.m != nil {
		c.m.canceled.Inc()
	}
}

func (c *collector) startWork() {
	c.mu.Lock()
	c.inFlight++
	c.mu.Unlock()
	if c.m != nil {
		c.m.inFlight.Inc()
	}
}

// profile counts one request against its resolved profile.
func (c *collector) profile(p profile) {
	c.mu.Lock()
	if c.profiles == nil {
		c.profiles = make(map[string]uint64)
	}
	c.profiles[p.label()]++
	c.mu.Unlock()
	if c.m != nil {
		c.m.requests.With(p.RuleSet, p.CostModel).Inc()
	}
}

// searchWork folds one completed run's search-phase stats into the
// service-wide counters.
func (c *collector) searchWork(s tensat.SearchStats) {
	c.mu.Lock()
	c.search.ClassesScanned += uint64(s.Scanned)
	c.search.ClassesPruned += uint64(s.Pruned)
	c.search.DirtySearched += uint64(s.Dirty)
	c.search.CleanReused += uint64(s.Clean)
	c.search.Matches += uint64(s.Matches)
	c.mu.Unlock()
	if c.m != nil {
		c.m.searchScanned.Add(uint64(s.Scanned))
		c.m.searchPruned.Add(uint64(s.Pruned))
		c.m.searchDirty.Add(uint64(s.Dirty))
		c.m.searchClean.Add(uint64(s.Clean))
		c.m.searchMatches.Add(uint64(s.Matches))
	}
}

// ilpWork folds one completed ILP-extraction run into the service-wide
// counters: presolve reduction, incumbents, and the solve outcome under
// its backend label. Like searchWork, it is the single call site behind
// both the JSON stats and the tensat_ilp_* Prometheus families.
func (c *collector) ilpWork(st tensat.ILPStats, optimal bool) {
	outcome := "feasible"
	if optimal {
		outcome = "optimal"
	}
	c.mu.Lock()
	c.ilp.PresolveFixed += uint64(st.PresolveFixed)
	c.ilp.PresolveDropped += uint64(st.PresolveDropped)
	c.ilp.PresolveRemoved += uint64(st.PresolveRemoved)
	c.ilp.Incumbents += uint64(st.Incumbents)
	if c.ilp.Solves == nil {
		c.ilp.Solves = make(map[string]uint64)
	}
	c.ilp.Solves[st.Solver+"/"+outcome]++
	c.mu.Unlock()
	if c.m != nil {
		c.m.ilpPresolveFixed.Add(uint64(st.PresolveFixed))
		c.m.ilpPresolveDropped.Add(uint64(st.PresolveDropped))
		c.m.ilpPresolveRemoved.Add(uint64(st.PresolveRemoved))
		c.m.ilpIncumbents.Add(uint64(st.Incumbents))
		c.m.ilpSolves.With(st.Solver, outcome).Inc()
	}
}

func (c *collector) endWork(d time.Duration, err error) {
	c.mu.Lock()
	c.inFlight--
	completed := false
	switch {
	case err == nil:
		c.completed++
		completed = true
		c.ring[c.ringN%latencyWindow] = d
		c.ringN++
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// A run abandoned by its waiters (or out of request budget) is
		// client churn, not a server failure; the per-request Canceled
		// counter already recorded each abandoning caller.
	default:
		c.errors++
	}
	c.mu.Unlock()
	if c.m != nil {
		c.m.inFlight.Dec()
		switch {
		case completed:
			c.m.completed.Inc()
			c.m.runSeconds.Observe(d.Seconds())
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		default:
			c.m.runErrors.Inc()
		}
	}
}

// snapshot computes the current Stats (percentiles over the window).
func (c *collector) snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Deduped:   c.deduped,
		Completed: c.completed,
		Errors:    c.errors,
		Canceled:  c.canceled,
		InFlight:  c.inFlight,
		Search:    c.search,
		ILP:       c.ilp,
		Store:     c.store,
		Peer:      c.peer,
		Shed:      c.shedTotal,

		PeerRetries:     c.peerRetries,
		PeerPushDropped: c.peerPushDropped,
	}
	if len(c.panics) > 0 {
		s.Panics = make(map[string]uint64, len(c.panics))
		for k, v := range c.panics {
			s.Panics[k] = v
		}
	}
	if len(c.tenantReq) > 0 {
		s.TenantRequests = make(map[string]uint64, len(c.tenantReq))
		for k, v := range c.tenantReq {
			s.TenantRequests[k] = v
		}
	}
	if len(c.tenantRej) > 0 {
		s.TenantRejected = make(map[string]uint64, len(c.tenantRej))
		for k, v := range c.tenantRej {
			s.TenantRejected[k] = v
		}
	}
	if len(c.ilp.Solves) > 0 {
		s.ILP.Solves = make(map[string]uint64, len(c.ilp.Solves))
		for k, v := range c.ilp.Solves {
			s.ILP.Solves[k] = v
		}
	}
	if len(c.profiles) > 0 {
		s.Profiles = make(map[string]uint64, len(c.profiles))
		for k, v := range c.profiles {
			s.Profiles[k] = v
		}
	}
	s.LatencyWindow = latencyWindow
	n := c.ringN
	if n > latencyWindow {
		n = latencyWindow
	}
	if n > 0 {
		window := make([]time.Duration, n)
		copy(window, c.ring[:n])
		sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
		s.P50 = window[n/2]
		s.P95 = window[(n*95)/100]
		s.P99 = window[(n*99)/100]
	}
	return s
}
