package serve

import (
	"container/heap"
	"context"
	"sync"
)

// workQueue is the priority-aware worker-pool gate that replaced the
// plain semaphore: up to cap optimizations run at once, and when every
// slot is busy, freed slots go to the highest-priority waiter (FIFO
// within a priority, so equal-priority work cannot starve). Tenant
// priorities flow in here — a priority-10 tenant's run starts before a
// priority-0 batch job that queued earlier.
type workQueue struct {
	mu      sync.Mutex
	cap     int
	running int
	waiters waiterHeap
	seq     uint64
}

type waiter struct {
	prio  int
	seq   uint64
	grant chan struct{}
	index int // heap bookkeeping
}

func newWorkQueue(capacity int) *workQueue {
	return &workQueue{cap: capacity}
}

// acquire blocks until a worker slot is granted or ctx ends. A nil
// return must be paired with exactly one release.
func (q *workQueue) acquire(ctx context.Context, prio int) error {
	q.mu.Lock()
	if q.running < q.cap {
		q.running++
		q.mu.Unlock()
		return nil
	}
	w := &waiter{prio: prio, seq: q.seq, grant: make(chan struct{})}
	q.seq++
	heap.Push(&q.waiters, w)
	q.mu.Unlock()

	select {
	case <-w.grant:
		return nil
	case <-ctx.Done():
		q.mu.Lock()
		select {
		case <-w.grant:
			// Granted in the race window; pass the slot on since this
			// caller will not run.
			q.mu.Unlock()
			q.release()
		default:
			heap.Remove(&q.waiters, w.index)
			q.mu.Unlock()
		}
		return ctx.Err()
	}
}

// release frees a slot: it transfers directly to the best waiter when
// one is queued, otherwise the running count drops.
func (q *workQueue) release() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.waiters.Len() > 0 {
		w := heap.Pop(&q.waiters).(*waiter)
		close(w.grant) // slot transfers; running stays constant
		return
	}
	q.running--
}

// waiting reports how many acquires are queued for a slot.
func (q *workQueue) waiting() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.waiters.Len()
}

// waiterHeap orders by priority descending, then submission order.
type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *waiterHeap) Push(x any) {
	w := x.(*waiter)
	w.index = len(*h)
	*h = append(*h, w)
}
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}
