package serve

// Fleet-mode tests: the persistent result store under restarts, the
// peer cache tier across a two-node in-process cluster, tenant
// admission control (auth, quotas, load shedding), the priority work
// queue, and the byte-bounded LRU.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tensat"
	"tensat/internal/cachestore"
	"tensat/internal/cluster"
	"tensat/internal/tenant"
)

// graphText canonicalizes a result graph for byte-identity checks.
func graphText(t testing.TB, g *tensat.Graph) string {
	t.Helper()
	text, err := g.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	return string(text)
}

// TestRestartSurvivesWarmSet proves the store tier's reason to exist:
// a daemon rebooted onto the same -store-dir answers its pre-restart
// warm set from disk without recomputing anything.
func TestRestartSurvivesWarmSet(t *testing.T) {
	dir := t.TempDir()
	st, err := cachestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 2, Store: st})
	res := stubResult(t)
	var calls atomic.Int64
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		calls.Add(1)
		return res, nil
	}
	cold, err := s.Optimize(context.Background(), testGraph(t, 1), RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Fatal("cold request reported cached")
	}
	if st.Len() != 1 {
		t.Fatalf("store entries = %d, want 1 (write-through)", st.Len())
	}
	if got := s.Stats(); got.Store.Puts != 1 || got.CacheBytes <= 0 {
		t.Fatalf("stats = %+v, want 1 store put and positive cache bytes", got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// "Reboot": a fresh Service over a fresh store handle on the same
	// directory. Its optimizer must never run.
	st2, err := cachestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2 := New(Config{Workers: 2, Store: st2})
	s2.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		t.Error("rebooted node recomputed a stored result")
		return nil, context.Canceled
	}
	warm, err := s2.Optimize(context.Background(), testGraph(t, 1), RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached || warm.Tier != TierDisk {
		t.Fatalf("cached=%v tier=%q, want disk hit", warm.Cached, warm.Tier)
	}
	if got, want := graphText(t, warm.Result.Graph), graphText(t, cold.Result.Graph); got != want {
		t.Fatalf("restored result differs:\n%s\nvs\n%s", got, want)
	}
	if warm.Result.OptCost != cold.Result.OptCost {
		t.Fatalf("restored cost %v, want %v", warm.Result.OptCost, cold.Result.OptCost)
	}
	// The disk hit was promoted: the next lookup is a memory hit.
	again, err := s2.Optimize(context.Background(), testGraph(t, 1), RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Tier != TierMemory {
		t.Fatalf("cached=%v tier=%q, want memory hit after promotion", again.Cached, again.Tier)
	}
	if got := s2.Stats(); got.Store.Hits != 1 {
		t.Fatalf("store hits = %d, want 1", got.Store.Hits)
	}
}

// TestRestartToleratesStaleSchemaAndCorruptTail: a reboot onto a
// store holding an undecodable (stale-schema) record and a torn tail
// must come up cleanly, serve the good records from disk, and treat
// the bad one as a miss that recomputation overwrites.
func TestRestartToleratesStaleSchemaAndCorruptTail(t *testing.T) {
	dir := t.TempDir()
	st, err := cachestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 2, Store: st})
	res := stubResult(t)
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		return res, nil
	}
	if _, err := s.Optimize(context.Background(), testGraph(t, 1), RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	// Plant a record under graph 2's key that the codec cannot read —
	// what a store written by a future schema would look like.
	q2, err := s.prepare(testGraph(t, 2), RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(q2.key, []byte("not a result payload")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: garbage at the log's tail.
	f, err := os.OpenFile(filepath.Join(dir, "results.log"), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("torn half-frame garbage")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := cachestore.Open(dir)
	if err != nil {
		t.Fatalf("Open over stale + torn store: %v", err)
	}
	defer st2.Close()
	s2 := New(Config{Workers: 2, Store: st2})
	var calls atomic.Int64
	s2.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		calls.Add(1)
		return res, nil
	}
	// The good record survives the torn tail.
	good, err := s2.Optimize(context.Background(), testGraph(t, 1), RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !good.Cached || good.Tier != TierDisk {
		t.Fatalf("cached=%v tier=%q, want disk hit for the good record", good.Cached, good.Tier)
	}
	// The stale-schema record is a miss, not a failure; recomputation
	// overwrites it with a readable one.
	bad, err := s2.Optimize(context.Background(), testGraph(t, 2), RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Cached {
		t.Fatal("stale-schema record served as a cache hit")
	}
	if calls.Load() != 1 {
		t.Fatalf("recompute calls = %d, want 1 (graph 2 only)", calls.Load())
	}
	if got := s2.Stats(); got.Store.Errors < 1 {
		t.Fatalf("store errors = %d, want >= 1 (unreadable record)", got.Store.Errors)
	}
	if payload, ok, err := st2.Get(q2.key); err != nil || !ok {
		t.Fatalf("recomputed record not rewritten: ok=%v err=%v", ok, err)
	} else if _, _, _, derr := cachestore.Decode(payload); derr != nil {
		t.Fatalf("rewritten record still unreadable: %v", derr)
	}
}

// testClusterSecret is the shared peer-auth secret every in-process
// fleet member presents (and requires) in these tests.
const testClusterSecret = "fleet-test-secret-0123456789"

// clusterClient builds a fleet member over the fixed {"a", "b"}
// membership, resolving node names through a BaseURL map the test
// fills in after its httptest servers exist.
func clusterClient(t testing.TB, self string, baseURL map[string]string) *cluster.Client {
	t.Helper()
	cl, err := cluster.New(cluster.Config{
		Self:    self,
		Peers:   []string{"a", "b"},
		Timeout: 5 * time.Second,
		BaseURL: func(node string) string { return baseURL[node] },
		Secret:  testClusterSecret,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// TestTwoNodeClusterServesPeerWarmSet runs the acceptance scenario:
// two in-process nodes, node A computes a result whose key node B
// owns, the push lands on B, and a fresh stateless "a" replica then
// serves it from B byte-identically — including after B is killed and
// rebooted onto its store directory.
func TestTwoNodeClusterServesPeerWarmSet(t *testing.T) {
	baseURL := map[string]string{}
	dirB := t.TempDir()
	stB, err := cachestore.Open(dirB)
	if err != nil {
		t.Fatal(err)
	}

	res := stubResult(t)
	var callsA atomic.Int64
	sA := New(Config{Workers: 2, Cluster: clusterClient(t, "a", baseURL)})
	sA.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		callsA.Add(1)
		return res, nil
	}
	sB := New(Config{Workers: 2, Store: stB, Cluster: clusterClient(t, "b", baseURL)})
	sB.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		t.Error("node B recomputed a pushed result")
		return nil, context.Canceled
	}
	tsA := httptest.NewServer(NewHandler(sA))
	defer tsA.Close()
	tsB := httptest.NewServer(NewHandler(sB))
	baseURL["a"], baseURL["b"] = tsA.URL, tsB.URL

	// Pick a graph whose cache key node B owns, so A's cold run must
	// push across and later replicas must fetch across.
	var g *tensat.Graph
	for seed := 1; g == nil; seed++ {
		cand := testGraph(t, seed)
		q, err := sA.prepare(cand, RequestOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if owner, local := sA.cfg.Cluster.Owner(q.key); !local && owner == "b" {
			g = cand
		}
		if seed > 64 {
			t.Fatal("no seed hashed to node b — ring is degenerate")
		}
	}

	cold, err := sA.Optimize(context.Background(), g, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Fatal("cold run reported cached")
	}
	// The push to the owner is asynchronous; wait for it to land in
	// B's store (the PUT handler writes through).
	waitFor(t, func() bool { return stB.Len() == 1 })
	waitFor(t, func() bool { return sA.Stats().Peer.Puts == 1 })

	// A fresh stateless "a" replica — no memory, no disk — must serve
	// the result from peer B over the GET path, byte-identically.
	sA2 := New(Config{Workers: 2, Cluster: clusterClient(t, "a", baseURL)})
	sA2.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		t.Error("stateless replica recomputed a peer-owned result")
		return nil, context.Canceled
	}
	peerHit, err := sA2.Optimize(context.Background(), g, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !peerHit.Cached || peerHit.Tier != TierPeer {
		t.Fatalf("cached=%v tier=%q, want peer hit", peerHit.Cached, peerHit.Tier)
	}
	if got, want := graphText(t, peerHit.Result.Graph), graphText(t, cold.Result.Graph); got != want {
		t.Fatalf("peer-served result differs:\n%s\nvs\n%s", got, want)
	}
	if got := sA2.Stats(); got.Peer.Hits != 1 {
		t.Fatalf("peer hits = %d, want 1", got.Peer.Hits)
	}

	// Kill node B and reboot it onto the same store directory: the
	// pre-restart warm set must still be servable to peers.
	tsB.Close()
	if err := stB.Close(); err != nil {
		t.Fatal(err)
	}
	stB2, err := cachestore.Open(dirB)
	if err != nil {
		t.Fatal(err)
	}
	defer stB2.Close()
	sB2 := New(Config{Workers: 2, Store: stB2, Cluster: clusterClient(t, "b", baseURL)})
	sB2.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		t.Error("rebooted node B recomputed a stored result")
		return nil, context.Canceled
	}
	tsB2 := httptest.NewServer(NewHandler(sB2))
	defer tsB2.Close()
	baseURL["b"] = tsB2.URL

	sA3 := New(Config{Workers: 2, Cluster: clusterClient(t, "a", baseURL)})
	sA3.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		t.Error("replica recomputed after B's reboot")
		return nil, context.Canceled
	}
	rebooted, err := sA3.Optimize(context.Background(), g, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rebooted.Cached || rebooted.Tier != TierPeer {
		t.Fatalf("cached=%v tier=%q, want peer hit from rebooted B", rebooted.Cached, rebooted.Tier)
	}
	if got, want := graphText(t, rebooted.Result.Graph), graphText(t, cold.Result.Graph); got != want {
		t.Fatal("result changed across B's reboot")
	}
	if n := callsA.Load(); n != 1 {
		t.Fatalf("optimize ran %d times across the fleet, want 1", n)
	}

	// Loop prevention: an authenticated peer request claiming to
	// originate from B itself must be refused with 508, not served.
	req, err := http.NewRequest(http.MethodGet, tsB2.URL+cluster.PeerPath+"anykey", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(cluster.AuthHeader, testClusterSecret)
	req.Header.Set(cluster.OriginHeader, "b")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusLoopDetected {
		t.Fatalf("looped peer request answered %d, want 508", resp.StatusCode)
	}
}

// TestPeerSurfaceRequiresClusterSecret: the peer surface shares the
// client listener, so without the fleet's shared secret it must refuse
// both reads (cache disclosure) and writes (cache poisoning) — even
// for callers holding a valid *tenant* API key.
func TestPeerSurfaceRequiresClusterSecret(t *testing.T) {
	reg, err := tenant.Parse([]byte(shedTenants))
	if err != nil {
		t.Fatal(err)
	}
	baseURL := map[string]string{}
	s := New(Config{Workers: 2, Cluster: clusterClient(t, "a", baseURL), Tenants: reg})
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		return stubResult(t), nil
	}
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()
	baseURL["a"] = ts.URL

	do := func(method string, hdr map[string]string) (int, string) {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+cluster.PeerPath+"somekey", nil)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	for _, method := range []string{http.MethodGet, http.MethodPut} {
		for _, hdr := range []map[string]string{
			nil,
			{cluster.AuthHeader: "wrong-secret-with-enough-bytes"},
			{"Authorization": "Bearer batch-key-1"}, // tenant key is not a cluster secret
		} {
			status, body := do(method, hdr)
			if status != http.StatusUnauthorized {
				t.Fatalf("%s with %v: status %d, want 401", method, hdr, status)
			}
			var er errorReply
			if err := json.Unmarshal([]byte(body), &er); err != nil || er.Code != "peer_unauthorized" {
				t.Fatalf("%s with %v: body %q, want code peer_unauthorized", method, hdr, body)
			}
		}
	}
	// The real secret gets through to the handler (a miss, not a 401).
	if status, _ := do(http.MethodGet, map[string]string{cluster.AuthHeader: testClusterSecret}); status != http.StatusNotFound {
		t.Fatalf("authenticated peer GET of unknown key: status %d, want 404", status)
	}
}

// TestPeerPutValidatesOwnershipAndKey: an authenticated PUT is still
// refused when this node does not own the key (421) or when the
// record's embedded identity does not derive the key it was pushed
// under (400 key_mismatch) — a peer cannot park records under foreign
// or fabricated keys.
func TestPeerPutValidatesOwnershipAndKey(t *testing.T) {
	// Three nodes: with health-gated fallover a receiver accepts any key
	// it is among the first cluster.FalloverDepth successors for, so a
	// genuinely foreign key requires a ring bigger than the fallover
	// depth.
	baseURL := map[string]string{}
	cl, err := cluster.New(cluster.Config{
		Self:    "a",
		Peers:   []string{"a", "b", "c"},
		Timeout: 5 * time.Second,
		BaseURL: func(node string) string { return baseURL[node] },
		Secret:  testClusterSecret,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 2, Cluster: cl})
	res := stubResult(t)
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		return res, nil
	}
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()
	baseURL["a"] = ts.URL

	// Derive one key node "a" may own (primary or fallover successor)
	// and one it may not.
	var ownedQ, foreignQ request
	var haveOwned, haveForeign bool
	for seed := 1; !(haveOwned && haveForeign); seed++ {
		q, err := s.prepare(testGraph(t, seed), RequestOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if s.cfg.Cluster.MayOwn(q.key) {
			ownedQ, haveOwned = q, true
		} else {
			foreignQ, haveForeign = q, true
		}
		if seed > 256 {
			t.Fatal("ring degenerate: node a may own every key")
		}
	}
	payloadFor := func(q request) []byte {
		t.Helper()
		p, err := cachestore.Encode(res, q.names, q.keyParts())
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	put := func(key string, payload []byte) (int, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPut, ts.URL+cluster.PeerPath+key, bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(cluster.AuthHeader, testClusterSecret)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// A key another node owns is misdirected, whatever the payload.
	if status, body := put(foreignQ.key, payloadFor(foreignQ)); status != http.StatusMisdirectedRequest {
		t.Fatalf("PUT of foreign key: status %d (%s), want 421", status, body)
	}
	// A record whose embedded identity derives a different key is
	// refused even under a key this node owns.
	status, body := put(ownedQ.key, payloadFor(foreignQ))
	if status != http.StatusBadRequest {
		t.Fatalf("mis-keyed PUT: status %d (%s), want 400", status, body)
	}
	var er errorReply
	if err := json.Unmarshal([]byte(body), &er); err != nil || er.Code != "key_mismatch" {
		t.Fatalf("mis-keyed PUT body %q, want code key_mismatch", body)
	}
	if _, ok := s.cache.get(ownedQ.key); ok {
		t.Fatal("rejected record reached the cache")
	}
	// The well-formed record for the owned key is accepted.
	if status, body := put(ownedQ.key, payloadFor(ownedQ)); status != http.StatusNoContent {
		t.Fatalf("valid PUT: status %d (%s), want 204", status, body)
	}
	if _, ok := s.cache.get(ownedQ.key); !ok {
		t.Fatal("accepted record did not reach the cache")
	}
}

// TestPeerFailureDegradesToLocalCompute: a dead owner is a miss, never
// a request failure.
func TestPeerFailureDegradesToLocalCompute(t *testing.T) {
	baseURL := map[string]string{"a": "", "b": "http://127.0.0.1:1"} // nothing listens
	s := New(Config{Workers: 2, Cluster: clusterClient(t, "a", baseURL)})
	var calls atomic.Int64
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		calls.Add(1)
		return stubResult(t), nil
	}
	var g *tensat.Graph
	for seed := 1; g == nil; seed++ {
		cand := testGraph(t, seed)
		q, err := s.prepare(cand, RequestOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if owner, _ := s.cfg.Cluster.Owner(q.key); owner == "b" {
			g = cand
		}
	}
	resp, err := s.Optimize(context.Background(), g, RequestOptions{})
	if err != nil {
		t.Fatalf("peer failure surfaced to the caller: %v", err)
	}
	if resp.Cached || calls.Load() != 1 {
		t.Fatalf("cached=%v calls=%d, want local cold compute", resp.Cached, calls.Load())
	}
	waitFor(t, func() bool { return s.Stats().Peer.Errors >= 1 })
}

const shedTenants = `{"tenants": [
	{"name": "batch", "key": "batch-key-1", "priority": 1,
	 "rate_rps": 1000, "burst": 1000, "max_concurrent": 1},
	{"name": "prod", "key": "prod-key-1", "priority": 100,
	 "rate_rps": 1000, "burst": 1000, "max_concurrent": 1}
]}`

// TestLoadSheddingDegradesBeforeRejecting proves the admission
// ladder: a saturated low-priority tenant gets a degraded greedy
// answer (tagged, never cached as the key's optimal) before any 429,
// and only exhausting the shed headroom too yields a RateLimitError.
func TestLoadSheddingDegradesBeforeRejecting(t *testing.T) {
	reg, err := tenant.Parse([]byte(shedTenants))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 4, Tenants: reg})
	tn, ok := reg.Lookup("batch-key-1")
	if !ok {
		t.Fatal("tenant lookup failed")
	}

	release := make(chan struct{})
	var calls atomic.Int64
	var mu sync.Mutex
	extractors := map[tensat.Extractor]int{}
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		mu.Lock()
		extractors[o.Extractor]++
		mu.Unlock()
		calls.Add(1)
		select {
		case <-release:
			return stubResult(t), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	type outcome struct {
		resp *Response
		err  error
	}
	results := make(chan outcome, 2)
	// First request: within quota, admitted at full quality. It keeps
	// its concurrency slot until release.
	go func() {
		resp, err := s.OptimizeAs(context.Background(), testGraph(t, 1), RequestOptions{}, &tn)
		results <- outcome{resp, err}
	}()
	waitFor(t, func() bool { return calls.Load() == 1 })

	// Second request: quota full (max_concurrent 1) — degraded to
	// greedy, not rejected.
	go func() {
		resp, err := s.OptimizeAs(context.Background(), testGraph(t, 2), RequestOptions{}, &tn)
		results <- outcome{resp, err}
	}()
	waitFor(t, func() bool { return calls.Load() == 2 })
	if got := s.Stats(); got.Shed != 1 {
		t.Fatalf("shed = %d, want 1", got.Shed)
	}

	// Third request: quota and shed headroom both exhausted — only now
	// a rejection, carrying a usable retry delay.
	_, err = s.OptimizeAs(context.Background(), testGraph(t, 3), RequestOptions{}, &tn)
	var rle *RateLimitError
	if !errors.As(err, &rle) {
		t.Fatalf("err = %v, want *RateLimitError", err)
	}
	if rle.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s", rle.RetryAfter)
	}
	if got := s.Stats(); got.TenantRejected["batch"] != 1 {
		t.Fatalf("rejected[batch] = %d, want 1", got.TenantRejected["batch"])
	}

	close(release)
	var sawDegraded bool
	for i := 0; i < 2; i++ {
		out := <-results
		if out.err != nil {
			t.Fatal(out.err)
		}
		if out.resp.Degraded {
			sawDegraded = true
		}
	}
	if !sawDegraded {
		t.Fatal("no response carried the Degraded mark")
	}
	mu.Lock()
	greedy := extractors[tensat.ExtractGreedy]
	mu.Unlock()
	if greedy != 1 {
		t.Fatalf("greedy-extraction runs = %d, want 1 (the shed run)", greedy)
	}

	// The degraded answer must not have been cached as the key's
	// optimal: re-requesting graph 2 without a tenant recomputes.
	before := calls.Load()
	resp, err := s.Optimize(context.Background(), testGraph(t, 2), RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Fatal("degraded result was cached as the key's answer")
	}
	if calls.Load() != before+1 {
		t.Fatal("re-request of the shed graph did not recompute")
	}
	// Graph 1 (the admitted full-quality run) IS cached.
	resp, err = s.Optimize(context.Background(), testGraph(t, 1), RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Fatal("admitted full-quality result was not cached")
	}
}

// TestHighPriorityNeverDegraded: a saturated tenant at or above
// NoShedPriority gets an explicit 429, never a silently weaker answer.
func TestHighPriorityNeverDegraded(t *testing.T) {
	reg, err := tenant.Parse([]byte(shedTenants))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 4, Tenants: reg})
	tn, _ := reg.Lookup("prod-key-1")
	release := make(chan struct{})
	defer close(release)
	var calls atomic.Int64
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		calls.Add(1)
		select {
		case <-release:
			return stubResult(t), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	go s.OptimizeAs(context.Background(), testGraph(t, 1), RequestOptions{}, &tn)
	waitFor(t, func() bool { return calls.Load() == 1 })
	_, err = s.OptimizeAs(context.Background(), testGraph(t, 2), RequestOptions{}, &tn)
	var rle *RateLimitError
	if !errors.As(err, &rle) {
		t.Fatalf("err = %v, want *RateLimitError (no degradation for priority >= %d)",
			err, s.cfg.NoShedPriority)
	}
	if got := s.Stats(); got.Shed != 0 {
		t.Fatalf("shed = %d, want 0 for a high-priority tenant", got.Shed)
	}
}

// TestHTTPTenantAuth: with a tenant registry, every client surface
// requires a key; probes, metrics and the peer surface stay open.
func TestHTTPTenantAuth(t *testing.T) {
	reg, err := tenant.Parse([]byte(shedTenants))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 2, Tenants: reg})
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		return stubResult(t), nil
	}
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	get := func(path string, hdr map[string]string) (int, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// No key, wrong scheme, unknown key: all 401 with the stable code.
	for _, hdr := range []map[string]string{
		nil,
		{"Authorization": "Basic abc"},
		{"Authorization": "Bearer wrong-key-0"},
		{"X-API-Key": "wrong-key-0"},
	} {
		status, body := get("/v1/stats", hdr)
		if status != http.StatusUnauthorized {
			t.Fatalf("hdr %v: status %d, want 401", hdr, status)
		}
		var er errorReply
		if err := json.Unmarshal([]byte(body), &er); err != nil || er.Code != "unauthorized" {
			t.Fatalf("hdr %v: body %q, want code unauthorized", hdr, body)
		}
	}
	// Valid key via either header form.
	for _, hdr := range []map[string]string{
		{"Authorization": "Bearer batch-key-1"},
		{"X-API-Key": "batch-key-1"},
	} {
		if status, body := get("/v1/stats", hdr); status != http.StatusOK {
			t.Fatalf("hdr %v: status %d (%s), want 200", hdr, status, body)
		}
	}
	// Probes and scrapers stay keyless.
	for _, path := range []string{"/v1/healthz", "/healthz", "/metrics", "/v1/version", "/v1/rulesets", "/v1/costmodels"} {
		if status, body := get(path, nil); status != http.StatusOK {
			t.Fatalf("exempt %s: status %d (%s), want 200", path, status, body)
		}
	}
	// The peer surface is exempt from tenant auth (it has its own
	// loop-prevention discipline); with no cluster configured it
	// answers 404, not 401.
	if status, _ := get(cluster.PeerPath+"k", nil); status != http.StatusNotFound {
		t.Fatalf("peer surface without cluster: status %d, want 404", status)
	}
}

// TestHTTP429CarriesRetryAfter drives the shed ladder over HTTP: the
// over-quota request degrades (200, degraded:true) and the rejection
// beyond it is a 429 with Retry-After and a machine-readable code.
func TestHTTP429CarriesRetryAfter(t *testing.T) {
	reg, err := tenant.Parse([]byte(shedTenants))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 4, Tenants: reg})
	release := make(chan struct{})
	var calls atomic.Int64
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		calls.Add(1)
		select {
		case <-release:
			return stubResult(t), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	post := func(seed int) *http.Response {
		t.Helper()
		g := testGraph(t, seed)
		text, err := g.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		body, err := json.Marshal(OptimizeRequest{Graph: string(text)})
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/optimize", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Authorization", "Bearer batch-key-1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	type reply struct {
		status int
		body   OptimizeReply
	}
	replies := make(chan reply, 2)
	submit := func(seed int) {
		resp := post(seed)
		defer resp.Body.Close()
		var or OptimizeReply
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&or); err != nil {
				t.Error(err)
			}
		}
		replies <- reply{resp.StatusCode, or}
	}
	go submit(1)
	waitFor(t, func() bool { return calls.Load() == 1 })
	go submit(2)
	waitFor(t, func() bool { return calls.Load() == 2 })

	// Both the tenant's slot and its shed headroom are now held: the
	// next request is the explicit rejection.
	resp := post(3)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want a positive delay in seconds", ra)
	}
	var er errorReply
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Code != "rate_limited" {
		t.Fatalf("429 body code = %q (%v), want rate_limited", er.Code, err)
	}

	close(release)
	var sawDegraded bool
	for i := 0; i < 2; i++ {
		r := <-replies
		if r.status != http.StatusOK {
			t.Fatalf("held request answered %d, want 200", r.status)
		}
		if r.body.Degraded {
			sawDegraded = true
			if r.body.Cached {
				t.Fatal("degraded reply claims cached")
			}
		}
	}
	if !sawDegraded {
		t.Fatal("no HTTP reply carried degraded:true")
	}
}

// TestHTTPJobsListFilters covers GET /v1/jobs ?status= and ?limit=,
// including the strict 400s on junk.
func TestHTTPJobsListFilters(t *testing.T) {
	s := New(Config{Workers: 4})
	release := make(chan struct{})
	defer close(release)
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		select {
		case <-release:
			return stubResult(t), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	for seed := 1; seed <= 3; seed++ {
		g := testGraph(t, seed)
		text, err := g.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		body, _ := json.Marshal(OptimizeRequest{Graph: string(text)})
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d, want 202", seed, resp.StatusCode)
		}
	}

	list := func(query string) (int, JobListReply, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		var jl JobListReply
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(raw, &jl); err != nil {
				t.Fatalf("bad list reply %q: %v", raw, err)
			}
		}
		return resp.StatusCode, jl, string(raw)
	}

	if status, jl, raw := list("?status=running"); status != http.StatusOK || jl.Count != 3 {
		t.Fatalf("status=running: %d %s, want 200 with 3 jobs", status, raw)
	}
	if status, jl, raw := list("?status=done"); status != http.StatusOK || jl.Count != 0 {
		t.Fatalf("status=done: %d %s, want 200 with 0 jobs", status, raw)
	}
	if status, jl, raw := list("?limit=2"); status != http.StatusOK || jl.Count != 2 {
		t.Fatalf("limit=2: %d %s, want 200 with 2 jobs", status, raw)
	}
	if status, jl, raw := list("?status=running&limit=1"); status != http.StatusOK || jl.Count != 1 {
		t.Fatalf("combined: %d %s, want 200 with 1 job", status, raw)
	}
	for _, bad := range []string{"?status=bogus", "?limit=0", "?limit=-1", "?limit=abc", "?foo=1"} {
		status, _, raw := list(bad)
		if status != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", bad, status)
		}
		var er errorReply
		if err := json.Unmarshal([]byte(raw), &er); err != nil || er.Code != "bad_query" {
			t.Fatalf("%s: body %q, want code bad_query", bad, raw)
		}
	}
}

// TestWorkQueuePriority: with the pool full, a freed slot goes to the
// highest-priority waiter, not the earliest.
func TestWorkQueuePriority(t *testing.T) {
	q := newWorkQueue(1)
	if err := q.acquire(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	order := make(chan int, 2)
	enqueue := func(prio int) {
		go func() {
			if err := q.acquire(context.Background(), prio); err != nil {
				t.Error(err)
				return
			}
			order <- prio
			q.release()
		}()
	}
	enqueue(1)
	waitFor(t, func() bool { return q.waiting() == 1 })
	enqueue(5)
	waitFor(t, func() bool { return q.waiting() == 2 })
	q.release()
	if first := <-order; first != 5 {
		t.Fatalf("first grant went to priority %d, want 5", first)
	}
	if second := <-order; second != 1 {
		t.Fatalf("second grant went to priority %d, want 1", second)
	}

	// A canceled waiter leaves the queue without leaking its slot.
	if err := q.acquire(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- q.acquire(ctx, 0) }()
	waitFor(t, func() bool { return q.waiting() == 1 })
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("canceled acquire returned nil")
	}
	if q.waiting() != 0 {
		t.Fatalf("waiting = %d after cancellation, want 0", q.waiting())
	}
	q.release()
	if err := q.acquire(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	q.release()
}

// TestLRUByteBound: the byte bound evicts oldest-first, refuses
// entries larger than the whole budget, and tracks replacements.
func TestLRUByteBound(t *testing.T) {
	c := newLRUCache(100, 10)
	r := &cachedResult{}
	c.add("a", r, 6)
	c.add("b", r, 6) // 12 > 10: "a" evicted
	if _, ok := c.get("a"); ok {
		t.Fatal("a survived the byte bound")
	}
	if _, ok := c.get("b"); !ok {
		t.Fatal("b missing")
	}
	if c.bytesUsed() != 6 {
		t.Fatalf("bytes = %d, want 6", c.bytesUsed())
	}
	// An entry larger than the whole budget is refused outright.
	c.add("huge", r, 11)
	if _, ok := c.get("huge"); ok {
		t.Fatal("oversized entry admitted")
	}
	// Replacement adjusts the byte account.
	c.add("b", r, 3)
	if c.bytesUsed() != 3 {
		t.Fatalf("bytes after replace = %d, want 3", c.bytesUsed())
	}
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
	// Unbounded bytes (0) still bounds entries.
	u := newLRUCache(2, 0)
	u.add("a", r, 1<<40)
	u.add("b", r, 1<<40)
	if u.len() != 2 {
		t.Fatalf("unbounded cache evicted by bytes: len = %d", u.len())
	}
}
