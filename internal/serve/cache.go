package serve

import (
	"container/list"
	"sync"
)

// lruCache is a capacity- and byte-bounded LRU over optimization
// results, keyed by fingerprint+options. Cached values are immutable
// once published, so one *cachedResult may be handed to any number of
// concurrent readers. Entry sizes are the encoded (cachestore codec)
// lengths when known and zero otherwise, so the byte bound tracks what
// an entry occupies at rest rather than a Go-heap estimate.
type lruCache struct {
	mu       sync.Mutex
	cap      int
	maxBytes int64 // 0 = unbounded
	bytes    int64
	order    *list.List // front = most recently used
	items    map[string]*list.Element
}

type cacheEntry struct {
	key  string
	res  *cachedResult
	size int64
}

func newLRUCache(capacity int, maxBytes int64) *lruCache {
	return &lruCache{
		cap:      capacity,
		maxBytes: maxBytes,
		order:    list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

func (c *lruCache) get(key string) (*cachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// add inserts or replaces an entry, then evicts from the cold end
// while the cache exceeds its entry or byte bound. An entry that alone
// exceeds the byte bound is refused outright — caching it would evict
// the whole warm set for one result.
func (c *lruCache) add(key string, res *cachedResult, size int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxBytes > 0 && size > c.maxBytes {
		return
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += size - e.size
		e.res, e.size = res, size
		c.order.MoveToFront(el)
	} else {
		c.items[key] = c.order.PushFront(&cacheEntry{key: key, res: res, size: size})
		c.bytes += size
	}
	// The Len() > 1 guard keeps the just-touched entry: the byte bound
	// evicts colder entries to make room, never the result it is making
	// room for.
	for c.order.Len() > c.cap || (c.maxBytes > 0 && c.bytes > c.maxBytes && c.order.Len() > 1) {
		oldest := c.order.Back()
		e := oldest.Value.(*cacheEntry)
		c.order.Remove(oldest)
		delete(c.items, e.key)
		c.bytes -= e.size
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// bytesUsed reports the summed encoded size of the cached entries.
func (c *lruCache) bytesUsed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
