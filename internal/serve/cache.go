package serve

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity LRU over optimization results, keyed by
// fingerprint+options. Cached values are immutable once published, so
// one *cachedResult may be handed to any number of concurrent readers.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *cachedResult
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

func (c *lruCache) get(key string) (*cachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

func (c *lruCache) add(key string, res *cachedResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
