package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tensat"
)

// postJob submits a job over HTTP and returns the status code and
// decoded reply.
func postJob(t *testing.T, url string, req OptimizeRequest) (int, JobReply, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var reply JobReply
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(buf.Bytes(), &reply); err != nil {
			t.Fatalf("bad job reply %q: %v", buf.String(), err)
		}
	}
	return resp.StatusCode, reply, buf.String()
}

func getJob(t *testing.T, url, id string) (int, JobReply) {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reply JobReply
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, reply
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	event string
	data  string
}

// readSSE consumes a /v1/jobs/{id}/events stream until the done event
// (or EOF) and returns every event.
func readSSE(t *testing.T, url, id string) []sseEvent {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.event != "" {
				events = append(events, cur)
				if cur.event == "done" {
					return events
				}
				cur = sseEvent{}
			}
		}
	}
	return events
}

// distinctProgress counts distinct (phase, iteration, enodes) states.
func distinctProgress(snaps []ProgressReply) int {
	seen := map[string]bool{}
	for _, p := range snaps {
		seen[fmt.Sprintf("%s|%d|%d", p.Phase, p.Iteration, p.ENodes)] = true
	}
	return len(seen)
}

// TestV1JobLifecycleHTTP drives the whole asynchronous surface against
// a gated optimization, so every observation is deterministic: submit
// (202), polling sees two distinct progress snapshots, SSE replays
// them, the result endpoint answers 409 until done and 200 after, and
// /stats reflects the job counters.
func TestV1JobLifecycleHTTP(t *testing.T) {
	s := New(Config{Workers: 2})
	step := make(chan struct{})
	release := make(chan struct{})
	res := stubResult(t)
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		o.Progress(tensat.Progress{Phase: tensat.PhaseExplore, Iteration: 1, ENodes: 10, EClasses: 5})
		select {
		case <-step:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		o.Progress(tensat.Progress{Phase: tensat.PhaseExplore, Iteration: 2, ENodes: 20, EClasses: 9})
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return res, nil
	}
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	status, job, raw := postJob(t, ts.URL, OptimizeRequest{Graph: `(output (relu (input "x@8 8")))`})
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", status, raw)
	}
	if job.ID == "" || job.Status != string(JobRunning) {
		t.Fatalf("bad submit reply: %+v", job)
	}
	if job.StatusURL != "/v1/jobs/"+job.ID {
		t.Fatalf("status url %q", job.StatusURL)
	}

	// Result before completion: 409.
	resp, err := http.Get(ts.URL + job.ResultURL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("early result status %d, want 409", resp.StatusCode)
	}

	// Polling observes the first snapshot, then (after the gate) the
	// second — two distinct progress states seen via GET.
	var polled []ProgressReply
	waitFor(t, func() bool {
		_, r := getJob(t, ts.URL, job.ID)
		polled = append(polled, r.Progress)
		return r.Progress.Iteration == 1
	})
	close(step)
	waitFor(t, func() bool {
		_, r := getJob(t, ts.URL, job.ID)
		polled = append(polled, r.Progress)
		return r.Progress.Iteration == 2
	})
	if n := distinctProgress(polled); n < 2 {
		t.Fatalf("polling observed %d distinct snapshots, want >= 2: %+v", n, polled)
	}

	close(release)

	// SSE (subscribed after the fact) replays the full history.
	events := readSSE(t, ts.URL, job.ID)
	var stream []ProgressReply
	var done *JobReply
	for _, e := range events {
		switch e.event {
		case "progress":
			var p ProgressReply
			if err := json.Unmarshal([]byte(e.data), &p); err != nil {
				t.Fatalf("bad progress event %q: %v", e.data, err)
			}
			stream = append(stream, p)
		case "done":
			var d JobReply
			if err := json.Unmarshal([]byte(e.data), &d); err != nil {
				t.Fatalf("bad done event %q: %v", e.data, err)
			}
			done = &d
		}
	}
	if n := distinctProgress(stream); n < 2 {
		t.Fatalf("SSE observed %d distinct snapshots, want >= 2: %+v", n, stream)
	}
	if done == nil || done.Status != string(JobDone) {
		t.Fatalf("SSE done event = %+v", done)
	}

	// Result after completion: 200 with the optimization reply.
	resp, err = http.Get(ts.URL + job.ResultURL)
	if err != nil {
		t.Fatal(err)
	}
	var opt OptimizeReply
	if err := json.NewDecoder(resp.Body).Decode(&opt); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d", resp.StatusCode)
	}
	if opt.OptCost != res.OptCost {
		t.Fatalf("result cost %v, want %v", opt.OptCost, res.OptCost)
	}

	var st StatsReply
	r2, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if st.JobsSubmitted != 1 || st.JobsDone != 1 || st.JobsRunning != 0 {
		t.Fatalf("job stats = %+v", st)
	}
}

// TestV1JobCancelHTTP cancels a running job via DELETE and checks the
// canceled status propagates to every read surface.
func TestV1JobCancelHTTP(t *testing.T) {
	s := New(Config{Workers: 1})
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		o.Progress(tensat.Progress{Phase: tensat.PhaseExplore, Iteration: 1})
		<-ctx.Done()
		return nil, ctx.Err()
	}
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	status, job, raw := postJob(t, ts.URL, OptimizeRequest{Graph: `(output (relu (input "x@8 8")))`})
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", status, raw)
	}
	waitFor(t, func() bool { _, r := getJob(t, ts.URL, job.ID); return r.Progress.Iteration == 1 })

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}

	waitFor(t, func() bool { _, r := getJob(t, ts.URL, job.ID); return r.Status == string(JobCanceled) })
	_, r := getJob(t, ts.URL, job.ID)
	if r.Error == "" || r.Progress.Phase != string(tensat.PhaseCanceled) {
		t.Fatalf("canceled job reply = %+v", r)
	}

	// No result to fetch.
	resp, err = http.Get(ts.URL + job.ResultURL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("canceled result status %d, want 409", resp.StatusCode)
	}
	// SSE on a canceled job terminates with a canceled done event.
	events := readSSE(t, ts.URL, job.ID)
	last := events[len(events)-1]
	if last.event != "done" || !strings.Contains(last.data, string(JobCanceled)) {
		t.Fatalf("SSE final event = %+v", last)
	}
	if st := s.Stats(); st.Jobs.Canceled != 1 {
		t.Fatalf("jobs canceled = %d, want 1", st.Jobs.Canceled)
	}
}

// TestV1JobEndToEndRealPipeline runs the figure-2 graph through the
// full asynchronous stack — no stubs — and verifies the acceptance
// contract: live snapshots observed while the job runs (polled and
// streamed), and a result byte-identical to the synchronous
// POST /optimize answer for the same graph on a fresh service.
func TestV1JobEndToEndRealPipeline(t *testing.T) {
	_, ts := newTestServer(t)

	status, job, raw := postJob(t, ts.URL, OptimizeRequest{Graph: figure2Wire})
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", status, raw)
	}

	// Poll while streaming: collect states until the job terminates.
	var polled []ProgressReply
	var final JobReply
	waitFor(t, func() bool {
		_, r := getJob(t, ts.URL, job.ID)
		polled = append(polled, r.Progress)
		final = r
		return r.Status != string(JobRunning)
	})
	if final.Status != string(JobDone) {
		t.Fatalf("job finished as %s (%s)", final.Status, final.Error)
	}
	if n := distinctProgress(polled); n < 2 {
		t.Logf("polling observed %d distinct snapshots (timing-dependent): %+v", n, polled)
	}

	// SSE after completion replays the full history: queued, explore
	// iterations, extract, done — at least two distinct states always.
	events := readSSE(t, ts.URL, job.ID)
	var stream []ProgressReply
	sawDone := false
	for _, e := range events {
		if e.event == "progress" {
			var p ProgressReply
			if err := json.Unmarshal([]byte(e.data), &p); err != nil {
				t.Fatal(err)
			}
			stream = append(stream, p)
		} else if e.event == "done" {
			sawDone = true
		}
	}
	if !sawDone {
		t.Fatal("SSE stream ended without a done event")
	}
	if n := distinctProgress(stream); n < 2 {
		t.Fatalf("SSE replay has %d distinct snapshots, want >= 2: %+v", n, stream)
	}

	// Harvest the job's result.
	resp, err := http.Get(ts.URL + job.ResultURL)
	if err != nil {
		t.Fatal(err)
	}
	var async OptimizeReply
	if err := json.NewDecoder(resp.Body).Decode(&async); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d", resp.StatusCode)
	}
	if async.OptCost >= async.OrigCost {
		t.Fatalf("no improvement: %v -> %v", async.OrigCost, async.OptCost)
	}

	// The deprecated synchronous endpoint on a FRESH service (cold
	// run, no shared cache) must produce the identical answer.
	_, ts2 := newTestServer(t)
	code, sync, raw := postOptimize(t, ts2.URL, OptimizeRequest{Graph: figure2Wire})
	if code != http.StatusOK {
		t.Fatalf("sync status %d: %s", code, raw)
	}
	if async.Graph != sync.Graph {
		t.Fatalf("async result differs from sync result:\n%s\nvs\n%s", async.Graph, sync.Graph)
	}
	if async.OptCost != sync.OptCost || async.Fingerprint != sync.Fingerprint {
		t.Fatalf("async (%v, %s) != sync (%v, %s)",
			async.OptCost, async.Fingerprint, sync.OptCost, sync.Fingerprint)
	}

	// And on the SAME service the sync shim hits the cache the job
	// populated — the two surfaces share one result store.
	code, warm, raw := postOptimize(t, ts.URL, OptimizeRequest{Graph: figure2Wire})
	if code != http.StatusOK {
		t.Fatalf("warm sync status %d: %s", code, raw)
	}
	if !warm.Cached {
		t.Fatal("sync request after the job missed the shared cache")
	}
	if warm.Graph != async.Graph {
		t.Fatal("cached sync graph differs from the job's graph")
	}

	// The real run's search-phase counters surfaced in /v1/stats: the
	// compiled engine scanned and op-index-pruned classes and found
	// matches. The cached warm request must not have added to them.
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsReply
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.SearchClassesScanned == 0 || st.SearchClassesPruned == 0 || st.SearchMatches == 0 {
		t.Fatalf("search counters missing from stats: %+v", st)
	}
	if st.Completed != 1 {
		t.Fatalf("completed = %d, want 1 (cache hits must not rerun the search)", st.Completed)
	}
}

// TestV1UnknownFieldsRejected: a typo in the request body errors
// instead of silently running with defaults, on both surfaces.
func TestV1UnknownFieldsRejected(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"graph": "(output (relu (input \"x@8 8\")))", "options": {"worker": 4}}`
	for _, path := range []string{"/optimize", "/v1/jobs"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw := new(bytes.Buffer)
		raw.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", path, resp.StatusCode, raw.String())
		}
		if !strings.Contains(raw.String(), "worker") {
			t.Errorf("%s: error does not name the bad field: %s", path, raw.String())
		}
	}
	// Top-level typos too.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"graf": "(output (relu (input \"x@8 8\")))"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("top-level typo: status %d, want 400", resp.StatusCode)
	}
}

// TestV1JobNotFound: unknown ids are 404 on every job endpoint.
func TestV1JobNotFound(t *testing.T) {
	_, ts := newTestServer(t)
	for _, ep := range []string{"/v1/jobs/deadbeef", "/v1/jobs/deadbeef/result", "/v1/jobs/deadbeef/events"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", ep, resp.StatusCode)
		}
	}
}

// TestV1Version reports the build and runtime identification.
func TestV1Version(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v VersionReply
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.Module == "" || v.Version == "" || !strings.HasPrefix(v.GoVersion, "go") || v.GOMAXPROCS < 1 {
		t.Fatalf("version reply = %+v", v)
	}
	// The revision is the VCS commit when stamped, "unknown" otherwise
	// (test binaries are built without VCS stamping) — never empty.
	if v.Revision == "" {
		t.Fatalf("version reply has empty revision: %+v", v)
	}
}

// TestOptimizeDeprecationHeaders: the legacy endpoint advertises its
// successor.
func TestOptimizeDeprecationHeaders(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/optimize", "application/json",
		strings.NewReader(`{"graph": "(output (relu (input \"x@8 8\")))", "options": {"extractor": "greedy"}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != "true" {
		t.Fatal("missing Deprecation header on /optimize")
	}
	if !strings.Contains(resp.Header.Get("Link"), "/v1/jobs") {
		t.Fatalf("Link header %q does not point at /v1/jobs", resp.Header.Get("Link"))
	}
}

// TestV1JobStoreBackpressure: a full store of running jobs answers 429.
func TestV1JobStoreBackpressure(t *testing.T) {
	s := New(Config{Workers: 1, MaxJobs: 1})
	release := make(chan struct{})
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		select {
		case <-release:
			return stubResult(t), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()
	t.Cleanup(func() { close(release) })

	status, job, raw := postJob(t, ts.URL, OptimizeRequest{Graph: `(output (relu (input "x@8 8")))`})
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", status, raw)
	}
	status, _, raw = postJob(t, ts.URL, OptimizeRequest{Graph: `(output (tanh (input "x@8 8")))`})
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit status %d, want 429: %s", status, raw)
	}
	if _, r := getJob(t, ts.URL, job.ID); r.Status != string(JobRunning) {
		t.Fatalf("first job status %s, want still running", r.Status)
	}
}
