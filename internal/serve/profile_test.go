package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tensat"
	"tensat/internal/tensor"
)

// submitJobHTTP posts one job request and decodes the reply.
func submitJobHTTP(t *testing.T, url string, req OptimizeRequest) (int, JobReply, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var reply JobReply
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(buf.Bytes(), &reply); err != nil {
			t.Fatalf("bad job reply %q: %v", buf.String(), err)
		}
	}
	return resp.StatusCode, reply, buf.String()
}

// waitJobResult polls a job's result endpoint until it answers 200.
func waitJobResult(t *testing.T, url, id string) OptimizeReply {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(url + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			var reply OptimizeReply
			if err := json.Unmarshal(buf.Bytes(), &reply); err != nil {
				t.Fatalf("bad result %q: %v", buf.String(), err)
			}
			return reply
		case http.StatusConflict:
			if time.Now().After(deadline) {
				t.Fatalf("job %s did not finish: %s", id, buf.String())
			}
			time.Sleep(10 * time.Millisecond)
		default:
			t.Fatalf("result status %d: %s", resp.StatusCode, buf.String())
		}
	}
}

// TestCrossProfileCacheIsolation is the acceptance-criteria walk: the
// same graph optimized under the t4 and a100 profiles must produce
// distinct, never-shared cache entries (no cross-profile hits), while
// resubmitting a profile is a hit within that profile.
func TestCrossProfileCacheIsolation(t *testing.T) {
	s, ts := newTestServer(t)
	req := func(device string) OptimizeRequest {
		return OptimizeRequest{
			Graph: figure2Wire,
			Options: RequestOptions{
				CostModel: device,
				Extractor: "greedy",
				IterLimit: 3,
				NodeLimit: 1000,
			},
		}
	}

	status, t4job, raw := submitJobHTTP(t, ts.URL, req("t4"))
	if status != http.StatusAccepted {
		t.Fatalf("t4 submit status %d: %s", status, raw)
	}
	if t4job.CostModel != "t4" || t4job.RuleSet != tensat.DefaultRuleSetName {
		t.Fatalf("job profile = %s/%s, want %s/t4", t4job.RuleSet, t4job.CostModel, tensat.DefaultRuleSetName)
	}
	t4res := waitJobResult(t, ts.URL, t4job.ID)

	status, a100job, raw := submitJobHTTP(t, ts.URL, req("a100"))
	if status != http.StatusAccepted {
		t.Fatalf("a100 submit status %d: %s", status, raw)
	}
	a100res := waitJobResult(t, ts.URL, a100job.ID)

	if a100res.Cached || a100res.Deduped {
		t.Fatalf("a100 run answered from the t4 profile (cached=%v deduped=%v)", a100res.Cached, a100res.Deduped)
	}
	if a100res.Fingerprint != t4res.Fingerprint {
		t.Errorf("graph fingerprint changed across profiles: %s vs %s", t4res.Fingerprint, a100res.Fingerprint)
	}
	if a100res.OrigCost == t4res.OrigCost {
		t.Errorf("a100 priced the graph identically to t4 (%v)", t4res.OrigCost)
	}
	if got := s.Stats().CacheEntries; got != 2 {
		t.Errorf("cache entries = %d, want 2 (one per profile)", got)
	}

	// Within a profile the cache works as before.
	status, again, raw := submitJobHTTP(t, ts.URL, req("a100"))
	if status != http.StatusAccepted {
		t.Fatalf("a100 resubmit status %d: %s", status, raw)
	}
	againRes := waitJobResult(t, ts.URL, again.ID)
	if !againRes.Cached {
		t.Error("identical profile resubmission was not a cache hit")
	}
	if againRes.OptCost != a100res.OptCost {
		t.Errorf("cached a100 result drifted: %v vs %v", againRes.OptCost, a100res.OptCost)
	}

	// A different rule set is a third profile: distinct from both
	// device-only variants, never answered from their entries.
	rsReq := req("a100")
	rsReq.Options.RuleSet = tensat.SingleRuleSetName
	status, rsJob, raw := submitJobHTTP(t, ts.URL, rsReq)
	if status != http.StatusAccepted {
		t.Fatalf("taso-single submit status %d: %s", status, raw)
	}
	if rsJob.RuleSet != tensat.SingleRuleSetName || rsJob.CostModel != "a100" {
		t.Fatalf("job profile = %s/%s, want %s/a100", rsJob.RuleSet, rsJob.CostModel, tensat.SingleRuleSetName)
	}
	rsRes := waitJobResult(t, ts.URL, rsJob.ID)
	if rsRes.Cached || rsRes.Deduped {
		t.Fatalf("taso-single/a100 run answered from another profile (cached=%v deduped=%v)", rsRes.Cached, rsRes.Deduped)
	}
	if got := s.Stats().CacheEntries; got != 3 {
		t.Errorf("cache entries = %d, want 3 (one per profile)", got)
	}

	// The explicit default profile shares the implicit default's entry.
	status, dflt, raw := postOptimize(t, ts.URL, OptimizeRequest{
		Graph: figure2Wire,
		Options: RequestOptions{
			RuleSet:   tensat.DefaultRuleSetName,
			CostModel: "t4",
			Extractor: "greedy",
			IterLimit: 3,
			NodeLimit: 1000,
		},
	})
	if status != http.StatusOK {
		t.Fatalf("explicit default status %d: %s", status, raw)
	}
	if !dflt.Cached {
		t.Error("spelling out the default profile missed the implicit default's cache entry")
	}

	// Per-profile stats counted every request.
	st := s.Stats()
	label := tensat.DefaultRuleSetName + "/"
	if st.Profiles[label+"t4"] != 2 || st.Profiles[label+"a100"] != 2 {
		t.Errorf("profile counters = %v, want 2 t4 and 2 a100", st.Profiles)
	}
}

// TestUnknownProfileNamesAre400s checks both surfaces reject unknown
// profile names with a client error listing what exists.
func TestUnknownProfileNamesAre400s(t *testing.T) {
	_, ts := newTestServer(t)
	for _, c := range []struct {
		opts     RequestOptions
		wantName string
	}{
		{RequestOptions{RuleSet: "warp-drive"}, "taso-default"},
		{RequestOptions{CostModel: "warp-drive"}, "t4"},
	} {
		opts := c.opts
		status, _, raw := submitJobHTTP(t, ts.URL, OptimizeRequest{Graph: figure2Wire, Options: opts})
		if status != http.StatusBadRequest {
			t.Fatalf("job submit with %+v: status %d, want 400: %s", opts, status, raw)
		}
		if !bytes.Contains([]byte(raw), []byte("known:")) || !bytes.Contains([]byte(raw), []byte(c.wantName)) {
			t.Errorf("error %q does not list the known names (want %q)", raw, c.wantName)
		}
		status, _, raw = postOptimize(t, ts.URL, OptimizeRequest{Graph: figure2Wire, Options: opts})
		if status != http.StatusBadRequest {
			t.Fatalf("sync optimize with %+v: status %d, want 400: %s", opts, status, raw)
		}
	}
}

// TestNegativeWorkersRejected: a negative workers knob is a 400, not a
// silent coercion.
func TestNegativeWorkersRejected(t *testing.T) {
	_, ts := newTestServer(t)
	status, _, raw := submitJobHTTP(t, ts.URL, OptimizeRequest{
		Graph:   figure2Wire,
		Options: RequestOptions{Workers: -2},
	})
	if status != http.StatusBadRequest {
		t.Fatalf("negative workers: status %d, want 400: %s", status, raw)
	}
}

// TestDiscoveryEndpoints lists rule sets and cost models — built-ins
// plus a file-loaded profile — over HTTP.
func TestDiscoveryEndpoints(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "mini.rules"),
		[]byte("fuse: (relu (matmul 0 ?x ?y)) => (matmul 2 ?x ?y)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "lab.json"),
		[]byte(`{"name":"lab","peak_gflops":100,"mem_bw_gbps":10,"op_scale":{"tanh":3}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := tensat.NewRegistry()
	if _, err := reg.LoadRulesDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.LoadDevicesDir(dir); err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, Base: fastOptions(), Registry: reg})
	hts := httptest.NewServer(NewHandler(s))
	t.Cleanup(hts.Close)
	ts := hts.URL

	var rsets RuleSetsReply
	getJSON(t, ts+"/v1/rulesets", &rsets)
	found := map[string]RuleSetReply{}
	for _, r := range rsets.RuleSets {
		found[r.Name] = r
	}
	for _, name := range []string{tensat.DefaultRuleSetName, tensat.SingleRuleSetName, "mini"} {
		r, ok := found[name]
		if !ok {
			t.Fatalf("/v1/rulesets missing %q: %+v", name, rsets)
		}
		if len(r.Hash) != 64 || r.Rules == 0 {
			t.Errorf("ruleset %q incomplete: %+v", name, r)
		}
	}
	if found["mini"].Rules != 1 || found["mini"].Source == "builtin" {
		t.Errorf("loaded ruleset row wrong: %+v", found["mini"])
	}

	var cms CostModelsReply
	getJSON(t, ts+"/v1/costmodels", &cms)
	foundCM := map[string]CostModelReply{}
	for _, c := range cms.CostModels {
		foundCM[c.Name] = c
	}
	for _, name := range []string{"t4", "a100", "cpu", "lab"} {
		c, ok := foundCM[name]
		if !ok {
			t.Fatalf("/v1/costmodels missing %q: %+v", name, cms)
		}
		if len(c.Hash) != 64 || c.Params == 0 {
			t.Errorf("costmodel %q incomplete: %+v", name, c)
		}
	}
	if foundCM["lab"].Params != 6 {
		t.Errorf("lab params = %d, want 6", foundCM["lab"].Params)
	}
}

// TestJobListing covers GET /v1/jobs: ids, statuses, ages and profile
// labels for everything the store holds, running and finished.
func TestJobListing(t *testing.T) {
	s, ts := newTestServer(t)
	block := make(chan struct{})
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		select {
		case <-block:
			return &tensat.Result{Graph: g}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	g, err := tensor.UnmarshalGraph([]byte(figure2Wire))
	if err != nil {
		t.Fatal(err)
	}
	j1, err := s.SubmitJob(g, RequestOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.SubmitJob(g, RequestOptions{CostModel: "cpu", RuleSet: tensat.SingleRuleSetName}, 0)
	if err != nil {
		t.Fatal(err)
	}

	var listing JobListReply
	getJSON(t, ts.URL+"/v1/jobs", &listing)
	if listing.Count != 2 || len(listing.Jobs) != 2 {
		t.Fatalf("listing = %+v, want 2 jobs", listing)
	}
	rows := map[string]JobSummaryReply{}
	for _, row := range listing.Jobs {
		rows[row.ID] = row
		if row.Status != string(JobRunning) {
			t.Errorf("job %s status %q, want running", row.ID, row.Status)
		}
		if row.AgeMS < 0 {
			t.Errorf("job %s age %v negative", row.ID, row.AgeMS)
		}
		if row.StatusURL != "/v1/jobs/"+row.ID {
			t.Errorf("job %s status_url %q", row.ID, row.StatusURL)
		}
	}
	if r := rows[j1.ID()]; r.RuleSet != tensat.DefaultRuleSetName || r.CostModel != "t4" {
		t.Errorf("default job profile = %s/%s", r.RuleSet, r.CostModel)
	}
	if r := rows[j2.ID()]; r.RuleSet != tensat.SingleRuleSetName || r.CostModel != "cpu" {
		t.Errorf("profile job = %s/%s, want %s/cpu", r.RuleSet, r.CostModel, tensat.SingleRuleSetName)
	}

	close(block)
	<-j1.Done()
	<-j2.Done()
	getJSON(t, ts.URL+"/v1/jobs", &listing)
	if listing.Count != 2 {
		t.Fatalf("finished jobs fell out of the listing early: %+v", listing)
	}
	for _, row := range listing.Jobs {
		if row.Status != string(JobDone) {
			t.Errorf("job %s status %q, want done", row.ID, row.Status)
		}
	}
}

// TestOperationalPathShims: /v1/stats and /v1/healthz are canonical;
// the bare spellings still answer but carry the same Deprecation/Link
// headers the /optimize shim uses.
func TestOperationalPathShims(t *testing.T) {
	_, ts := newTestServer(t)
	for _, c := range []struct{ path, successor string }{
		{"/stats", "/v1/stats"},
		{"/healthz", "/v1/healthz"},
	} {
		resp, err := http.Get(ts.URL + c.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", c.path, resp.StatusCode)
		}
		if resp.Header.Get("Deprecation") != "true" {
			t.Errorf("GET %s: missing Deprecation header", c.path)
		}
		if want := "<" + c.successor + `>; rel="successor-version"`; resp.Header.Get("Link") != want {
			t.Errorf("GET %s: Link = %q, want %q", c.path, resp.Header.Get("Link"), want)
		}

		resp, err = http.Get(ts.URL + c.successor)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", c.successor, resp.StatusCode)
		}
		if resp.Header.Get("Deprecation") != "" {
			t.Errorf("GET %s: canonical path carries a Deprecation header", c.successor)
		}
	}
	var st StatsReply
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Workers != 2 {
		t.Errorf("/v1/stats workers = %d, want 2", st.Workers)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
