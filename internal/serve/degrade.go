package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"tensat/internal/cachestore"
)

// ErrDraining is returned by the submission surfaces once BeginDrain
// has been called: the daemon is shutting down, finishing the work it
// holds but accepting no more. Transports answer 503 with Retry-After
// so load balancers move on to a healthy node.
var ErrDraining = errors.New("serve: draining for shutdown")

// errStoreDegraded marks a store operation skipped because the guard
// holds the store in degraded mode. It never leaves the package: the
// lookup and write-through paths treat it as a quiet miss (the memory
// tier keeps serving), distinct from a real I/O failure, which counts
// toward store_errors and re-arms degraded mode.
var errStoreDegraded = errors.New("serve: result store degraded")

// defaultStoreReprobe is how often a degraded store lets one operation
// through to test whether the fault (a full disk, a flaky volume) has
// cleared.
const defaultStoreReprobe = 5 * time.Second

// storeGuard wraps the persistent result store with failure hysteresis:
// the first I/O error flips the guard into degraded mode, where every
// store operation is skipped — the daemon keeps serving from memory —
// except one probe per reprobe interval. A probe that succeeds flips
// the guard healthy again; one that fails keeps it degraded. This turns
// "the disk filled up" from a per-request error storm into one mode
// transition, observable on the tensat_store_degraded gauge.
type storeGuard struct {
	st      cachestore.Store
	reprobe time.Duration
	// onChange fires on every healthy<->degraded transition with the
	// new degraded state; wired to the gauge and the log at
	// construction. Called outside the guard's lock.
	onChange func(degraded bool)

	mu        sync.Mutex
	degraded  bool
	lastProbe time.Time
}

func newStoreGuard(st cachestore.Store, reprobe time.Duration, onChange func(bool)) *storeGuard {
	if reprobe <= 0 {
		reprobe = defaultStoreReprobe
	}
	return &storeGuard{st: st, reprobe: reprobe, onChange: onChange}
}

// admit reports whether the next store operation may proceed. In
// degraded mode only one operation per reprobe interval is admitted;
// that operation's outcome decides whether the guard recovers.
func (g *storeGuard) admit() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.degraded {
		return true
	}
	if now := time.Now(); now.Sub(g.lastProbe) >= g.reprobe {
		g.lastProbe = now
		return true
	}
	return false
}

// observe folds one admitted operation's outcome into the guard state,
// firing onChange on transitions.
func (g *storeGuard) observe(err error) {
	g.mu.Lock()
	was := g.degraded
	if err != nil {
		g.degraded = true
		g.lastProbe = time.Now()
	} else {
		g.degraded = false
	}
	changed := g.degraded != was
	now := g.degraded
	g.mu.Unlock()
	if changed && g.onChange != nil {
		g.onChange(now)
	}
}

// isDegraded reports the current mode (the gauge and /readyz source).
func (g *storeGuard) isDegraded() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.degraded
}

// get wraps Store.Get; in degraded mode it returns errStoreDegraded
// without touching the disk (except for the periodic probe).
func (g *storeGuard) get(key string) ([]byte, bool, error) {
	if !g.admit() {
		return nil, false, errStoreDegraded
	}
	payload, ok, err := g.st.Get(key)
	g.observe(err)
	return payload, ok, err
}

// put wraps Store.Put under the same admission rule as get.
func (g *storeGuard) put(key string, payload []byte) error {
	if !g.admit() {
		return errStoreDegraded
	}
	err := g.st.Put(key, payload)
	g.observe(err)
	return err
}

// drainState coordinates graceful shutdown: begin flips the service
// into draining mode (new submissions fail with ErrDraining, /readyz
// answers 503, SSE streams terminate), and wait blocks until every
// tracked asynchronous job has finished or the caller's context
// expires. track/done bracket each job goroutine; track is refused
// once draining, and both it and begin hold the same lock, so the
// WaitGroup can never be incremented after wait has started.
type drainState struct {
	mu       sync.Mutex
	draining bool
	ch       chan struct{} // closed by begin
	wg       sync.WaitGroup
}

func newDrainState() *drainState {
	return &drainState{ch: make(chan struct{})}
}

// begin flips into draining mode; idempotent.
func (d *drainState) begin() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining {
		return
	}
	d.draining = true
	close(d.ch)
}

// active reports whether drain has begun.
func (d *drainState) active() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.draining
}

// channel returns the channel closed when drain begins, for select
// loops (the SSE handler) that must react mid-stream.
func (d *drainState) channel() <-chan struct{} { return d.ch }

// track registers one unit of in-flight work; it reports false (and
// registers nothing) once draining has begun.
func (d *drainState) track() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining {
		return false
	}
	d.wg.Add(1)
	return true
}

// done releases one tracked unit.
func (d *drainState) done() { d.wg.Done() }

// wait blocks until every tracked unit finishes or ctx expires.
func (d *drainState) wait(ctx context.Context) error {
	finished := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// BeginDrain flips the service into draining mode: running work
// continues, but new synchronous requests and job submissions fail
// with ErrDraining, /readyz answers 503, and every open SSE stream
// receives a terminal "draining" event. Idempotent.
func (s *Service) BeginDrain() {
	s.drain.begin()
}

// Draining reports whether BeginDrain has been called.
func (s *Service) Draining() bool { return s.drain.active() }

// Drain begins draining (if not already begun) and blocks until every
// tracked asynchronous job has finished or ctx expires. The caller —
// the daemon's SIGTERM path — bounds it with its -drain-timeout.
func (s *Service) Drain(ctx context.Context) error {
	s.drain.begin()
	return s.drain.wait(ctx)
}
