// Package serve wraps the TENSAT optimization pipeline in a concurrent
// service suitable for a daemon (cmd/tensatd): structurally identical
// graphs are recognized by canonical content hashing
// (internal/fingerprint), finished results are held in an LRU cache
// keyed by fingerprint+options, identical in-flight requests are
// deduplicated onto one optimization run (reference-counted
// singleflight), and runs execute on a bounded worker pool with
// per-request context propagation down into exploration and
// extraction. Stats exposes hit/miss/dedup counters, in-flight load,
// job counters, and p50/p95 cold latencies.
//
// Two request surfaces share that machinery. Optimize is synchronous:
// it blocks the caller until the run (or its cached/deduplicated
// stand-in) finishes. SubmitJob is asynchronous: it registers a Job in
// a TTL-bounded, capacity-capped store and returns immediately; the
// job's live progress (exploration iterations, ILP incumbents)
// streams through a per-job broadcast log that HTTP exposes by polling
// and as server-sent events. Deduplicated jobs share one progress
// stream, and a canceled job frees its worker slot (when it was the
// last interested party) without ever caching the partial result.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"tensat"
	"tensat/internal/cachestore"
	"tensat/internal/cluster"
	"tensat/internal/fingerprint"
	"tensat/internal/ilp/backend"
	"tensat/internal/obs"
	"tensat/internal/tenant"
	"tensat/internal/tensor"
)

// Config sizes a Service.
type Config struct {
	// Workers bounds concurrently running optimizations; 0 means
	// GOMAXPROCS. Requests beyond the bound queue for a slot.
	Workers int
	// CacheSize is the LRU capacity in results; 0 means 256.
	CacheSize int
	// MaxJobs caps the asynchronous job store; 0 means 1024. When the
	// store is full of unfinished jobs, SubmitJob fails with
	// ErrJobStoreFull.
	MaxJobs int
	// JobTTL bounds how long a finished job (its result and progress
	// log) stays queryable; 0 means 15 minutes.
	JobTTL time.Duration
	// Base is the option template requests refine. Its zero value
	// means tensat.DefaultOptions. A programmatic Rules/CostModel here
	// is service-wide ("custom" in stats and job listings); requests
	// override it by naming a registered profile.
	Base tensat.Options
	// Registry resolves the "ruleset" and "cost_model" names requests
	// select; nil means tensat.DefaultRegistry() (the built-ins plus
	// whatever the daemon loaded from -rules-dir/-device-dir).
	Registry *tensat.Registry
	// Logger receives structured job/request lifecycle records (job id,
	// profile, cache outcome, duration). nil discards them — tests and
	// embedders that don't care pay nothing.
	Logger *slog.Logger
	// SSEKeepAlive is how often an idle /v1/jobs/{id}/events stream
	// emits a ": keepalive" comment line so proxies and load balancers
	// don't reap quiet connections; 0 means 15 seconds, negative
	// disables keepalives.
	SSEKeepAlive time.Duration
	// CacheMaxBytes additionally bounds the in-memory LRU by the summed
	// encoded size of its entries; 0 means unbounded (entry count only).
	CacheMaxBytes int64
	// Store, when non-nil, is the persistent second cache tier: results
	// are written through on completion and consulted on LRU misses, so
	// a restarted daemon keeps its warm set.
	Store cachestore.Store
	// StoreReprobe is how often a degraded store (one that returned an
	// I/O error) lets one operation through to test whether the fault
	// has cleared; 0 means 5 seconds. While degraded, the memory tier
	// keeps serving and store operations are skipped, not failed.
	StoreReprobe time.Duration
	// Cluster, when non-nil, is the peer cache tier: keys whose
	// consistent-hash owner is another node are fetched from (and cold
	// results pushed to) that owner. Peer failures degrade to local
	// compute, never to request failure.
	Cluster *cluster.Client
	// Tenants, when non-nil, turns on API-key authentication and
	// per-tenant admission control (rate limits, concurrency quotas,
	// priorities, load shedding) for the HTTP surface.
	Tenants *tenant.Registry
	// NoShedPriority is the tenant priority at or above which requests
	// are never quality-degraded: a saturated high-priority tenant gets
	// an explicit 429 instead of a silently weaker answer. 0 means 100.
	NoShedPriority int
}

// Service is a concurrent graph-optimization service.
type Service struct {
	cfg     Config
	queue   *workQueue
	cache   *lruCache
	flight  *flightGroup
	jobs    *jobStore
	stats   collector
	metrics *metrics
	log     *slog.Logger

	// store guards cfg.Store with degraded-mode hysteresis (nil when no
	// store is configured); drain coordinates graceful shutdown.
	store *storeGuard
	drain *drainState

	// opt is the shared optimizer: the rule set and cost model are
	// compiled once at construction and reused by every run.
	opt *tensat.Optimizer

	// optimize runs one optimization, injectable by tests to model
	// slow, blocking, or failing optimizations deterministically. The
	// default submits to the shared Optimizer; opts.Progress (set by
	// run for every flight) must be honored by replacements that want
	// observable progress.
	optimize func(context.Context, *tensat.Graph, tensat.Options) (*tensat.Result, error)
}

// New builds a Service from cfg.
//
//lint:ctxflow-exempt constructor: bounded passes over config and fleet membership; no I/O
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 256
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 1024
	}
	if cfg.JobTTL <= 0 {
		cfg.JobTTL = 15 * time.Minute
	}
	if isZeroOptions(cfg.Base) {
		cfg.Base = tensat.DefaultOptions()
	}
	if cfg.Registry == nil {
		cfg.Registry = tensat.DefaultRegistry()
	}
	if cfg.SSEKeepAlive == 0 {
		cfg.SSEKeepAlive = 15 * time.Second
	}
	if cfg.NoShedPriority <= 0 {
		cfg.NoShedPriority = 100
	}
	s := &Service{
		cfg:    cfg,
		queue:  newWorkQueue(cfg.Workers),
		cache:  newLRUCache(cfg.CacheSize, cfg.CacheMaxBytes),
		flight: newFlightGroup(),
		jobs:   newJobStore(cfg.MaxJobs, cfg.JobTTL),
		opt: tensat.NewOptimizer(
			tensat.WithRules(cfg.Base.Rules),
			tensat.WithCostModel(cfg.Base.CostModel),
			tensat.WithRegistry(cfg.Registry),
		),
	}
	s.log = cfg.Logger
	if s.log == nil {
		// go1.22 has no slog.DiscardHandler; a Text handler on
		// io.Discard is the same thing.
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s.drain = newDrainState()
	if cfg.Store != nil {
		s.store = newStoreGuard(cfg.Store, cfg.StoreReprobe, func(degraded bool) {
			if degraded {
				s.log.Error("result store degraded — serving from memory, reprobing",
					"reprobe", s.store.reprobe)
			} else {
				s.log.Info("result store recovered")
			}
		})
	}
	s.metrics = newMetrics(s)
	s.stats.m = s.metrics
	if cl := cfg.Cluster; cl != nil {
		// Pre-touch every peer's breaker gauge so dashboards see the
		// closed (0) state before the first transition.
		self := cl.Self()
		for _, peer := range cl.Nodes() {
			if peer != self {
				s.metrics.peerBreaker.With(peer).Set(float64(cluster.BreakerClosed))
			}
		}
		cl.SetObserver(cluster.Observer{
			BreakerChange: func(peer string, state cluster.BreakerState) {
				s.metrics.peerBreaker.With(peer).Set(float64(state))
				s.log.Warn("peer breaker transition", "peer", peer, "state", state.String())
			},
			PushDone: func(err error) {
				if err != nil {
					s.stats.peerError()
					s.log.Warn("peer push failed", "error", err)
				} else {
					s.stats.peerPut()
				}
			},
			FetchRetry: func(peer string) {
				s.stats.peerRetry()
			},
		})
	}
	s.optimize = func(ctx context.Context, g *tensat.Graph, opts tensat.Options) (*tensat.Result, error) {
		job, err := s.opt.Submit(ctx, g, opts)
		if err != nil {
			return nil, err
		}
		return job.Result()
	}
	return s
}

// Metrics returns the service's Prometheus registry (the GET /metrics
// exposition source). Embedders may mount it on their own mux.
func (s *Service) Metrics() *obs.Registry { return s.metrics.reg }

func isZeroOptions(o tensat.Options) bool {
	return o.Rules == nil && o.CostModel == nil &&
		o.RuleSet == "" && o.CostModelName == "" && o.NodeLimit == 0 &&
		o.IterLimit == 0 && o.KMulti == 0 && o.ExploreTimeout == 0 &&
		o.ILPTimeout == 0 && o.Extractor == tensat.ExtractILP &&
		o.CycleFilter == tensat.FilterEfficient && !o.TopoInt &&
		o.Workers == 0 && o.ILPSolver == "" && o.Progress == nil && !o.Trace
}

// RequestOptions are the per-request optimization knobs. The zero
// value inherits every setting from the service's Config.Base. Field
// names double as the HTTP JSON schema of POST /optimize.
//
// Every exported field must be folded into the effective
// tensat.Options by apply — that is how request knobs reach the cache
// key — or carry a //lint:cachekey-exempt justification. tensatlint's
// cachekey analyzer enforces this; see cmd/tensatlint.
//
//lint:cachekey keyfunc=tensat/internal/serve.RequestOptions.apply
type RequestOptions struct {
	// RuleSet names the rewrite rule set to optimize with (e.g.
	// "taso-default", "taso-single", or a profile loaded from a .rules
	// file). "" inherits the service default; an unknown name is a 400
	// carrying the list of known names.
	RuleSet string `json:"ruleset,omitempty"`
	// CostModel names the device cost model (e.g. "t4", "a100", "cpu",
	// or a loaded device spec). "" inherits; unknown names are 400s.
	CostModel string `json:"cost_model,omitempty"`
	NodeLimit int    `json:"node_limit,omitempty"`
	IterLimit int    `json:"iter_limit,omitempty"`
	KMulti    int    `json:"k_multi,omitempty"`
	// Extractor is "ilp" or "greedy" ("" inherits).
	Extractor string `json:"extractor,omitempty"`
	// CycleFilter is "efficient", "vanilla" or "none" ("" inherits).
	CycleFilter string `json:"cycle_filter,omitempty"`
	TopoInt     bool   `json:"topo_int,omitempty"`
	// ExploreTimeoutMS soft-bounds exploration; ILPTimeoutMS bounds the
	// ILP solver. Zero inherits.
	ExploreTimeoutMS int64 `json:"explore_timeout_ms,omitempty"`
	ILPTimeoutMS     int64 `json:"ilp_timeout_ms,omitempty"`
	// Workers bounds the parallel e-matching goroutines used inside
	// this request's exploration phase (0 inherits the server base,
	// which itself defaults to GOMAXPROCS; 1 forces sequential search).
	// With unlimited time budgets the result does not depend on it,
	// but under an ExploreTimeout more workers explore further.
	Workers int `json:"workers,omitempty"`
	// ILPSolver selects the ILP extraction backend: "builtin" (parallel
	// branch-and-bound), "builtin-seq", or an external MIP solver on the
	// server's PATH ("cbc", "highs"). "" inherits; unknown names are
	// 400s. Distinct backends are distinct cache entries: under a time
	// budget their anytime answers legitimately differ.
	ILPSolver string `json:"ilp_solver,omitempty"`
}

// ErrBadOptions marks RequestOptions validation failures, so transport
// layers can classify them as client errors.
var ErrBadOptions = errors.New("serve: bad request options")

// apply refines base with the request's non-zero knobs. Profile names
// are carried over verbatim; resolveProfile validates them against the
// registry and computes the content hashes the cache key needs.
func (ro RequestOptions) apply(base tensat.Options) (tensat.Options, error) {
	o := base
	if ro.RuleSet != "" {
		// A named profile replaces the service-wide rule set entirely —
		// including a programmatic Config.Base.Rules override.
		o.RuleSet = ro.RuleSet
		o.Rules = nil
	}
	if ro.CostModel != "" {
		o.CostModelName = ro.CostModel
		o.CostModel = nil
	}
	if ro.NodeLimit > 0 {
		o.NodeLimit = ro.NodeLimit
	}
	if ro.IterLimit > 0 {
		o.IterLimit = ro.IterLimit
	}
	if ro.KMulti > 0 {
		o.KMulti = ro.KMulti
	}
	switch ro.Extractor {
	case "":
	case "ilp":
		o.Extractor = tensat.ExtractILP
	case "greedy":
		o.Extractor = tensat.ExtractGreedy
	default:
		return o, fmt.Errorf("%w: unknown extractor %q", ErrBadOptions, ro.Extractor)
	}
	switch ro.CycleFilter {
	case "":
	case "efficient":
		o.CycleFilter = tensat.FilterEfficient
	case "vanilla":
		o.CycleFilter = tensat.FilterVanilla
	case "none":
		o.CycleFilter = tensat.FilterNone
	default:
		return o, fmt.Errorf("%w: unknown cycle filter %q", ErrBadOptions, ro.CycleFilter)
	}
	if ro.TopoInt {
		o.TopoInt = true
	}
	if ro.ExploreTimeoutMS > 0 {
		o.ExploreTimeout = time.Duration(ro.ExploreTimeoutMS) * time.Millisecond
	}
	if ro.ILPTimeoutMS > 0 {
		o.ILPTimeout = time.Duration(ro.ILPTimeoutMS) * time.Millisecond
	}
	if ro.Workers < 0 {
		return o, fmt.Errorf("%w: negative workers %d", ErrBadOptions, ro.Workers)
	}
	if ro.Workers > 0 {
		o.Workers = ro.Workers
	}
	if !backend.Valid(ro.ILPSolver) {
		return o, fmt.Errorf("%w: unknown ilp_solver %q (known: %s)",
			ErrBadOptions, ro.ILPSolver, strings.Join(backend.Names(), ", "))
	}
	if ro.ILPSolver != "" {
		o.ILPSolver = ro.ILPSolver
	}
	return o, nil
}

// profile is a resolved optimization profile: the effective display
// names and the content hashes that join the cache key. Two requests
// share cache entries exactly when their profiles hash alike —
// whatever the names say — so a reloaded-but-unchanged profile keeps
// its entries and renamed-identical devices share them.
type profile struct {
	RuleSet, CostModel         string
	ruleSetHash, costModelHash string
}

// label is the per-profile stats key and job-listing tag.
func (p profile) label() string { return p.RuleSet + "/" + p.CostModel }

// resolveProfile validates o's profile names against the registry and
// fills in defaults: an unnamed half falls back to the built-in
// profile, or to the opaque "custom" label when the service was
// configured with a programmatic Rules/CostModel object.
func (s *Service) resolveProfile(o *tensat.Options) (profile, error) {
	var p profile
	switch {
	case o.Rules != nil:
		p.RuleSet = "custom"
	case o.RuleSet == "":
		o.RuleSet = tensat.DefaultRuleSetName
		fallthrough
	default:
		info, ok := s.cfg.Registry.RuleSetInfo(o.RuleSet)
		if !ok {
			return p, fmt.Errorf("%w: unknown ruleset %q (known: %s)",
				ErrBadOptions, o.RuleSet, strings.Join(s.cfg.Registry.RuleSetNames(), ", "))
		}
		p.RuleSet, p.ruleSetHash = info.Name, info.Hash
	}
	switch {
	case o.CostModel != nil:
		p.CostModel = "custom"
	case o.CostModelName == "":
		o.CostModelName = tensat.DefaultCostModelName
		fallthrough
	default:
		info, ok := s.cfg.Registry.CostModelInfo(o.CostModelName)
		if !ok {
			return p, fmt.Errorf("%w: unknown cost_model %q (known: %s)",
				ErrBadOptions, o.CostModelName, strings.Join(s.cfg.Registry.CostModelNames(), ", "))
		}
		p.CostModel, p.costModelHash = info.Name, info.Hash
	}
	return p, nil
}

// keyFromParts derives the cache/singleflight key from its components
// — graph fingerprint, effective scalar knobs, and the profile content
// hashes — folded through fingerprint.Key so no component can collide
// into another. It is the single key derivation: requests key their
// own parts through it, and the peer PUT handler re-derives the key
// from a pushed record's embedded parts to verify the record actually
// answers the key it was pushed under.
func keyFromParts(p cachestore.KeyParts) string {
	return fingerprint.Key(p.Fingerprint, p.Options, p.RuleSetHash, p.CostModelHash)
}

// optionsKey canonically encodes the *effective* (post-apply) knobs
// that influence the result, so requests that resolve to the same
// configuration — e.g. one inheriting the server default and one
// spelling it out — share a cache entry and a singleflight run.
func optionsKey(o tensat.Options) string {
	var b strings.Builder
	// Workers joins the key only when an exploration time budget is
	// set: under a budget the worker count changes how much of the
	// search space a run covers, but with unlimited exploration time
	// results are byte-identical for any worker count, so requests
	// differing only in workers share one cache entry and one run.
	workersKey := 0
	if o.ExploreTimeout > 0 {
		workersKey = o.Workers
	}
	for _, v := range []int{o.NodeLimit, o.IterLimit, o.KMulti,
		int(o.Extractor), int(o.CycleFilter), workersKey} {
		b.WriteString(strconv.Itoa(v))
		b.WriteByte('|')
	}
	if o.TopoInt {
		b.WriteByte('1')
	} else {
		b.WriteByte('0')
	}
	// Timeouts influence how much optimization a result got, so two
	// requests differing only in budget are distinct cache entries.
	b.WriteByte('|')
	b.WriteString(strconv.FormatInt(int64(o.ExploreTimeout), 10))
	b.WriteByte('|')
	b.WriteString(strconv.FormatInt(int64(o.ILPTimeout), 10))
	// The ILP backend joins the key: all backends agree on the optimal
	// cost, but under a time budget their anytime incumbents (and the
	// particular optimum among cost ties) legitimately differ.
	b.WriteByte('|')
	b.WriteString(o.ILPSolver)
	return b.String()
}

// cachedResult is a finished optimization plus the tensor vocabulary
// of the graph that produced it (canonical first-occurrence order), so
// later structurally identical requests can receive the result spelled
// in their own input/weight names, plus the key components the record
// is encoded with so persisted and pushed copies stay self-describing.
type cachedResult struct {
	res     *tensat.Result
	tensors []string
	parts   cachestore.KeyParts
}

// inVocabulary translates the cached result into the requester's
// tensor names. Identical vocabularies share the original result.
func (cr *cachedResult) inVocabulary(names []string) (*tensat.Result, error) {
	if len(names) != len(cr.tensors) {
		// Equal fingerprints imply equal tensor counts; never expected.
		return cr.res, nil
	}
	mapping := make(map[string]string)
	for i, from := range cr.tensors {
		if from != names[i] {
			mapping[from] = names[i]
		}
	}
	if len(mapping) == 0 {
		return cr.res, nil
	}
	renamed, err := tensor.RenameTensors(cr.res.Graph, mapping)
	if err != nil {
		return nil, fmt.Errorf("serve: translating cached result: %w", err)
	}
	out := *cr.res
	out.Graph = renamed
	return &out, nil
}

// Cache tier names, reported in Response.Tier and the HTTP
// "cache_tier" field: where a cached answer came from.
const (
	TierMemory = "memory"
	TierDisk   = "disk"
	TierPeer   = "peer"
)

// shedKeySuffix separates a degraded (greedy-only) run's singleflight
// key from the full-quality key: a shed run must neither join nor be
// joined by a full-quality flight, and its key never reaches the cache
// or the peer surface.
const shedKeySuffix = "|shed"

// RateLimitError reports an admission-control rejection: the tenant's
// quota and shed headroom are both exhausted. Transports answer 429
// with RetryAfter in the Retry-After header.
type RateLimitError struct {
	Tenant     string
	RetryAfter time.Duration
}

func (e *RateLimitError) Error() string {
	return fmt.Sprintf("serve: tenant %q over quota (retry in %s)", e.Tenant, e.RetryAfter)
}

// Response is one answered optimization request.
type Response struct {
	// Result is the optimization outcome (shared, treat as read-only).
	Result *tensat.Result
	// Fingerprint is the canonical content hash of the request graph.
	Fingerprint string
	// Cached is true when the answer came from a cache tier; Tier then
	// names which one (TierMemory, TierDisk, TierPeer). Deduped is true
	// when this request joined an in-flight identical run instead of
	// starting its own.
	Cached  bool
	Deduped bool
	Tier    string
	// Degraded marks a load-shed answer: the tenant was over quota, so
	// the run used greedy-only extraction. Degraded results are never
	// cached as the key's answer.
	Degraded bool
}

// request is one prepared optimization request: effective options,
// resolved profile, graph identity, and the derived cache key.
type request struct {
	opts  tensat.Options
	prof  profile
	fp    string
	names []string
	key   string
}

// keyParts is the request's cache identity broken into the components
// keyFromParts folds together; encoded records embed them so any
// receiver can re-derive and verify the key.
func (q request) keyParts() cachestore.KeyParts {
	return cachestore.KeyParts{
		Fingerprint:   q.fp,
		Options:       optionsKey(q.opts),
		RuleSetHash:   q.prof.ruleSetHash,
		CostModelHash: q.prof.costModelHash,
	}
}

// prepare validates ro against the service configuration and computes
// the request's cache identity — the shared head of the synchronous
// and asynchronous submission paths.
func (s *Service) prepare(g *tensat.Graph, ro RequestOptions) (request, error) {
	var q request
	var err error
	if q.opts, err = ro.apply(s.cfg.Base); err != nil {
		return q, err
	}
	if q.prof, err = s.resolveProfile(&q.opts); err != nil {
		return q, err
	}
	if q.fp, err = fingerprint.GraphHex(g); err != nil {
		return q, err
	}
	if q.names, err = fingerprint.Tensors(g); err != nil {
		return q, err
	}
	q.key = keyFromParts(q.keyParts())
	return q, nil
}

// admit runs tenant admission control. It returns the run priority and
// whether the request must execute degraded; on Reject it returns a
// *RateLimitError. A nil error means one quota slot is held and must
// be released (Release(tn.Name, degraded)) when the request finishes.
func (s *Service) admit(tn *tenant.Tenant) (prio int, degraded bool, err error) {
	if tn == nil || s.cfg.Tenants == nil {
		return 0, false, nil
	}
	s.stats.tenantRequest(tn.Name)
	d, retry := s.cfg.Tenants.Acquire(tn.Name)
	switch d {
	case tenant.Admit:
		return tn.Priority, false, nil
	case tenant.Degrade:
		if tn.Priority >= s.cfg.NoShedPriority {
			// High-priority work is never silently weakened; surface the
			// saturation instead.
			s.cfg.Tenants.Release(tn.Name, true)
			s.stats.tenantReject(tn.Name)
			return 0, false, &RateLimitError{Tenant: tn.Name, RetryAfter: time.Second}
		}
		return tn.Priority, true, nil
	default:
		s.stats.tenantReject(tn.Name)
		return 0, false, &RateLimitError{Tenant: tn.Name, RetryAfter: retry}
	}
}

// lookup consults the cache tiers in cost order: the in-memory LRU,
// the persistent store (promoting hits to memory), then — when the
// key's consistent-hash owner is another fleet member — that peer.
// Store and peer failures are misses, never request errors.
func (s *Service) lookup(ctx context.Context, key string) (*cachedResult, string, bool) {
	if entry, ok := s.cache.get(key); ok {
		s.stats.hit()
		return entry, TierMemory, true
	}
	if st := s.store; st != nil {
		payload, ok, err := st.get(key)
		switch {
		case errors.Is(err, errStoreDegraded):
			// The store is in degraded mode and this request was not the
			// probe: a quiet miss, not an error — the gauge and the mode
			// transition log already tell the story once.
		case err != nil:
			s.stats.storeError()
			s.log.Warn("result store read failed", "key", key, "error", err)
		case ok:
			res, tensors, parts, derr := cachestore.Decode(payload)
			switch {
			case derr != nil:
				// A stale-schema or corrupt record is a miss — the run
				// recomputes and overwrites it — never a request failure.
				s.stats.storeError()
				s.log.Warn("result store record unreadable", "key", key, "error", derr)
			case keyFromParts(parts) != key:
				// A record whose embedded identity doesn't derive its key
				// answers some other request; treat it as corrupt.
				s.stats.storeError()
				s.log.Warn("result store record key mismatch", "key", key)
			default:
				entry := &cachedResult{res: res, tensors: tensors, parts: parts}
				s.cache.add(key, entry, int64(len(payload)))
				s.stats.storeHit()
				return entry, TierDisk, true
			}
		default:
			s.stats.storeMiss()
		}
	}
	if cl := s.cfg.Cluster; cl != nil {
		if owner, local := cl.Owner(key); !local {
			payload, err := cl.Fetch(ctx, key)
			switch {
			case err == nil:
				res, tensors, parts, derr := cachestore.Decode(payload)
				if derr == nil && keyFromParts(parts) == key {
					entry := &cachedResult{res: res, tensors: tensors, parts: parts}
					s.cache.add(key, entry, int64(len(payload)))
					s.stats.peerHit()
					return entry, TierPeer, true
				}
				// Unreadable or mis-keyed peer records (version skew, a
				// misconfigured ring) are peer faults, never hits.
				s.stats.peerError()
				s.log.Warn("peer record unreadable or mis-keyed", "key", key, "peer", owner, "error", derr)
			case errors.Is(err, cluster.ErrNotFound):
				s.stats.peerMiss()
			case errors.Is(err, cluster.ErrPeerDown):
				// Every candidate owner's breaker is open: the client
				// degraded to local compute without a network round trip.
				// The breaker gauge carries the signal; logging per
				// request would just be noise while the peer is down.
				s.log.Debug("peer tier skipped — no live owner", "key", key)
			case errors.Is(err, context.Canceled):
				// The requester went away; not a peer fault.
			default:
				s.stats.peerError()
				s.log.Warn("peer fetch failed", "key", key, "peer", owner, "error", err)
			}
		}
	}
	return nil, "", false
}

// cacheResult publishes a completed full-quality run to every tier:
// the in-memory LRU, the persistent store (synchronously — the result
// must survive a crash that immediately follows the reply), and, when
// another node owns the key, a best-effort asynchronous push to that
// peer so the fleet's warm set converges on the owner.
func (s *Service) cacheResult(key string, entry *cachedResult) {
	var payload []byte
	if s.cfg.Store != nil || s.cfg.Cluster != nil || s.cfg.CacheMaxBytes > 0 {
		var err error
		payload, err = cachestore.Encode(entry.res, entry.tensors, entry.parts)
		if err != nil {
			s.log.Warn("encoding result for persistence", "key", key, "error", err)
			payload = nil
		}
	}
	s.cache.add(key, entry, int64(len(payload)))
	if payload == nil {
		return
	}
	if st := s.store; st != nil {
		switch err := st.put(key, payload); {
		case errors.Is(err, errStoreDegraded):
			// Degraded mode: the write is skipped, not failed. The result
			// still lives in memory and the next probe may recover the
			// store; a recomputation after restart is the accepted cost.
		case err != nil:
			s.stats.storeError()
			s.log.Warn("result store write failed", "key", key, "error", err)
		default:
			s.stats.storePut()
		}
	}
	if cl := s.cfg.Cluster; cl != nil {
		if _, local := cl.Owner(key); !local {
			// Bounded async push: the queue's workers retry with backoff
			// and report outcomes through the observer (peer_puts /
			// peer_errors). A full queue drops the push — the owner just
			// stays cold for this key — rather than accumulating
			// goroutines during a peer outage.
			if !cl.EnqueuePush(key, payload) {
				s.stats.peerPushDrop()
				s.log.Warn("peer push dropped — queue full or closed", "key", key)
			}
		}
	}
}

// Optimize answers one request: cache lookup, then singleflight join
// or a fresh run on the worker pool. Canceling ctx returns promptly
// with ctx.Err() — the shared run keeps going while any other request
// still wants it, and an abandoned or failed run is never cached.
func (s *Service) Optimize(ctx context.Context, g *tensat.Graph, ro RequestOptions) (*Response, error) {
	return s.OptimizeAs(ctx, g, ro, nil)
}

// OptimizeAs is Optimize under a tenant's admission control: the
// tenant's quota decides whether the request runs at full quality,
// degrades to greedy-only extraction, or is rejected with a
// *RateLimitError. tn == nil bypasses admission entirely.
func (s *Service) OptimizeAs(ctx context.Context, g *tensat.Graph, ro RequestOptions, tn *tenant.Tenant) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.drain.active() {
		return nil, ErrDraining
	}
	q, err := s.prepare(g, ro)
	if err != nil {
		return nil, err
	}
	s.stats.profile(q.prof)
	prio, degraded, err := s.admit(tn)
	if err != nil {
		return nil, err
	}
	if tn != nil && s.cfg.Tenants != nil {
		defer s.cfg.Tenants.Release(tn.Name, degraded)
	}

	// A cached full-quality answer rescues even an over-quota request:
	// shedding only applies to work, and a cache hit is free.
	if entry, tier, ok := s.lookup(ctx, q.key); ok {
		res, err := entry.inVocabulary(q.names)
		if err != nil {
			return nil, err
		}
		return &Response{Result: res, Fingerprint: q.fp, Cached: true, Tier: tier}, nil
	}
	s.stats.miss()

	runKey, runOpts := q.key, q.opts
	if degraded {
		runKey += shedKeySuffix
		runOpts.Extractor = tensat.ExtractGreedy
		s.stats.shed()
		s.log.Info("load shedding request", "tenant", tn.Name, "fingerprint", q.fp)
	}
	c, leader := s.flight.join(runKey)
	if leader {
		c.tensors = q.names // published to followers by close(c.done)
		go s.run(runKey, q.keyParts(), c, g, runOpts, prio, degraded)
	} else {
		s.stats.dedup()
	}
	select {
	case <-c.done:
		if c.err != nil {
			return nil, c.err
		}
		// A follower's graph may spell the tensors differently than the
		// leader's; answer in the follower's vocabulary.
		res, err := (&cachedResult{res: c.res, tensors: c.tensors}).inVocabulary(q.names)
		if err != nil {
			return nil, err
		}
		return &Response{Result: res, Fingerprint: q.fp, Deduped: !leader, Degraded: degraded}, nil
	case <-ctx.Done():
		s.flight.leave(runKey, c)
		s.stats.cancel()
		return nil, ctx.Err()
	}
}

// run executes one deduplicated optimization on the worker pool under
// the flight call's reference-counted context. parts is the request's
// cache identity, embedded in the persisted/pushed record.
func (s *Service) run(key string, parts cachestore.KeyParts, c *flightCall, g *tensat.Graph, opts tensat.Options, prio int, degraded bool) {
	// Panic isolation, outer ring: the optimizer already recovers
	// pipeline panics into *tensat.PanicError, so anything reaching this
	// recover escaped from the serving code around the run (caching,
	// stats). Either way the flight must be finished — waiters would
	// hang forever otherwise — and the daemon must survive.
	finished := false
	defer func() {
		if r := recover(); r != nil && !finished {
			perr := &tensat.PanicError{Value: r, Stack: debug.Stack()}
			s.stats.panicked("worker")
			s.log.Error("panic in optimization worker", "key", key,
				"panic", fmt.Sprint(r), "stack", string(perr.Stack))
			s.flight.finish(key, c, nil, perr)
		}
	}()
	// Live progress flows into the flight's shared log, where every
	// waiter — async jobs in particular — can pump it out. Neither the
	// sink nor the trace switch is part of the cache key (see
	// optionsKey) so setting them here, after keying, is safe; the
	// recorded span tree rides the Result into the cache, where every
	// hit and deduplicated sibling shares the cold run's (immutable)
	// trace.
	opts.Progress = c.progress.publish
	opts.Trace = true
	// Acquire a worker slot by priority; bail out if every interested
	// request is gone before one frees up.
	if err := s.queue.acquire(c.ctx, prio); err != nil {
		finished = true
		s.flight.finish(key, c, nil, err)
		return
	}
	defer s.queue.release()

	s.stats.startWork()
	start := time.Now()
	res, err := s.optimize(c.ctx, g, opts)
	s.stats.endWork(time.Since(start), err)
	var perr *tensat.PanicError
	if errors.As(err, &perr) {
		// The pipeline panicked inside the optimizer; Submit's recover
		// converted it to an error, so the flight finishes normally and
		// every waiter gets internal_error instead of a dead daemon.
		s.stats.panicked("optimizer")
		s.log.Error("optimization pipeline panicked", "key", key,
			"panic", fmt.Sprint(perr.Value), "stack", string(perr.Stack))
	}
	if err == nil && res != nil {
		s.stats.searchWork(res.Search)
		if res.ILP.Solver != "" {
			s.stats.ilpWork(res.ILP, res.ILPOptimal)
		}
		s.metrics.observeRun(res, opts)
	}
	// A canceled run is not a complete result: OptimizeContext normally
	// surfaces cancellation as an error, but if a result does carry the
	// Canceled mark (exploration aborted mid-way), it must never be
	// cached as the answer for this key. A run truncated with no
	// explicit budget hit the runner's implicit safety-net timeout;
	// how far it got depends on the worker count, which this key
	// deliberately omits for budget-free requests — don't cache it.
	// A degraded (load-shed) run is never cached or pushed at all: its
	// greedy-only answer must not masquerade as the key's optimal.
	if err == nil && !degraded && !res.Canceled && !(res.Truncated && opts.ExploreTimeout == 0) {
		s.cacheResult(key, &cachedResult{res: res, tensors: c.tensors, parts: parts})
	}
	finished = true
	s.flight.finish(key, c, res, err)
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	st := s.stats.snapshot()
	st.CacheEntries = s.cache.len()
	st.CacheBytes = s.cache.bytesUsed()
	st.QueueWaiting = s.queue.waiting()
	if s.cfg.Store != nil {
		st.StoreEntries = s.cfg.Store.Len()
		st.StoreBytes = s.cfg.Store.Bytes()
	}
	if s.store != nil {
		st.StoreDegraded = s.store.isDegraded()
	}
	st.Draining = s.drain.active()
	st.Jobs = s.jobs.counters()
	return st
}

// Workers reports the configured worker-pool bound.
func (s *Service) Workers() int { return s.cfg.Workers }

// Registry returns the profile registry this service resolves request
// "ruleset"/"cost_model" names against (the discovery endpoints list
// its contents).
func (s *Service) Registry() *tensat.Registry { return s.cfg.Registry }
