package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"tensat/internal/tensor"
)

// OptimizeRequest is the body of POST /optimize: the graph in the
// textual wire format of tensor.Graph.MarshalText, the optimization
// knobs, and an optional whole-request deadline.
type OptimizeRequest struct {
	// Graph is the graph in the S-expression wire format, e.g.
	// "(output (matmul 0 (input \"x@64 256\") (weight \"w@256 256\")))".
	Graph string `json:"graph"`
	// Options refine the server's base configuration.
	Options RequestOptions `json:"options"`
	// TimeoutMS bounds the whole request (queueing + optimization);
	// zero means no per-request deadline beyond the server's.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// OptimizeReply is the body answering POST /optimize.
type OptimizeReply struct {
	Fingerprint    string  `json:"fingerprint"`
	Cached         bool    `json:"cached"`
	Deduped        bool    `json:"deduped"`
	Graph          string  `json:"graph"`
	OrigCost       float64 `json:"orig_cost"`
	OptCost        float64 `json:"opt_cost"`
	SpeedupPercent float64 `json:"speedup_percent"`
	ExploreMS      float64 `json:"explore_ms"`
	ExtractMS      float64 `json:"extract_ms"`
	ENodes         int     `json:"enodes"`
	EClasses       int     `json:"eclasses"`
	Iterations     int     `json:"iterations"`
	Saturated      bool    `json:"saturated"`
	// Truncated reports that exploration stopped on a time budget or
	// cancellation, so the result covers only part of the search space.
	Truncated  bool `json:"truncated"`
	ILPOptimal bool `json:"ilp_optimal"`
}

// StatsReply is the body answering GET /stats.
type StatsReply struct {
	Hits         uint64  `json:"hits"`
	Misses       uint64  `json:"misses"`
	Deduped      uint64  `json:"deduped"`
	Completed    uint64  `json:"completed"`
	Errors       uint64  `json:"errors"`
	Canceled     uint64  `json:"canceled"`
	InFlight     int     `json:"in_flight"`
	CacheEntries int     `json:"cache_entries"`
	Workers      int     `json:"workers"`
	P50MS        float64 `json:"p50_ms"`
	P95MS        float64 `json:"p95_ms"`
}

type errorReply struct {
	Error string `json:"error"`
}

// NewHandler exposes s over HTTP+JSON:
//
//	POST /optimize — optimize a graph (OptimizeRequest → OptimizeReply)
//	GET  /stats    — service counters (StatsReply)
//	GET  /healthz  — liveness probe
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /optimize", func(w http.ResponseWriter, r *http.Request) {
		handleOptimize(s, w, r)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		st := s.Stats()
		writeJSON(w, http.StatusOK, StatsReply{
			Hits:         st.Hits,
			Misses:       st.Misses,
			Deduped:      st.Deduped,
			Completed:    st.Completed,
			Errors:       st.Errors,
			Canceled:     st.Canceled,
			InFlight:     st.InFlight,
			CacheEntries: st.CacheEntries,
			Workers:      s.Workers(),
			P50MS:        float64(st.P50) / float64(time.Millisecond),
			P95MS:        float64(st.P95) / float64(time.Millisecond),
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func handleOptimize(s *Service, w http.ResponseWriter, r *http.Request) {
	var req OptimizeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorReply{Error: "bad request body: " + err.Error()})
		return
	}
	if req.Graph == "" {
		writeJSON(w, http.StatusBadRequest, errorReply{Error: "missing graph"})
		return
	}
	g, err := tensor.UnmarshalGraph([]byte(req.Graph))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorReply{Error: "bad graph: " + err.Error()})
		return
	}

	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	resp, err := s.Optimize(ctx, g, req.Options)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrBadOptions):
			status = http.StatusBadRequest
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
		case errors.Is(err, context.Canceled):
			// Client went away mid-request; the reply is best-effort.
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, errorReply{Error: err.Error()})
		return
	}
	text, err := resp.Result.Graph.MarshalText()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorReply{Error: err.Error()})
		return
	}
	res := resp.Result
	writeJSON(w, http.StatusOK, OptimizeReply{
		Fingerprint:    resp.Fingerprint,
		Cached:         resp.Cached,
		Deduped:        resp.Deduped,
		Graph:          string(text),
		OrigCost:       res.OrigCost,
		OptCost:        res.OptCost,
		SpeedupPercent: res.SpeedupPercent,
		ExploreMS:      float64(res.ExploreTime) / float64(time.Millisecond),
		ExtractMS:      float64(res.ExtractTime) / float64(time.Millisecond),
		ENodes:         res.ENodes,
		EClasses:       res.EClasses,
		Iterations:     res.Iterations,
		Saturated:      res.Saturated,
		Truncated:      res.Truncated,
		ILPOptimal:     res.ILPOptimal,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
