package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"tensat"
	"tensat/internal/cachestore"
	"tensat/internal/cluster"
	"tensat/internal/tenant"
	"tensat/internal/tensor"
)

// OptimizeRequest is the body of POST /optimize and POST /v1/jobs: the
// graph in the textual wire format of tensor.Graph.MarshalText, the
// optimization knobs — including the "ruleset"/"cost_model" profile
// selectors — and an optional deadline. Unknown fields are rejected,
// so a typo like "worker": 4 errors instead of silently running with
// defaults.
type OptimizeRequest struct {
	// Graph is the graph in the S-expression wire format, e.g.
	// "(output (matmul 0 (input \"x@64 256\") (weight \"w@256 256\")))".
	Graph string `json:"graph"`
	// Options refine the server's base configuration.
	Options RequestOptions `json:"options"`
	// TimeoutMS bounds the work. On /optimize it bounds the whole
	// request (queueing + optimization); on /v1/jobs it bounds the job
	// itself, which otherwise runs until done or canceled.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// OptimizeReply is the body answering POST /optimize and
// GET /v1/jobs/{id}/result.
type OptimizeReply struct {
	Fingerprint string `json:"fingerprint"`
	Cached      bool   `json:"cached"`
	Deduped     bool   `json:"deduped"`
	// CacheTier names where a cached answer came from ("memory",
	// "disk", "peer"); empty for cold runs.
	CacheTier string `json:"cache_tier,omitempty"`
	// Degraded marks a load-shed answer: the tenant was over quota and
	// the run used greedy-only extraction instead of ILP. Degraded
	// answers are never cached as the request's optimal.
	Degraded       bool    `json:"degraded,omitempty"`
	Graph          string  `json:"graph"`
	OrigCost       float64 `json:"orig_cost"`
	OptCost        float64 `json:"opt_cost"`
	SpeedupPercent float64 `json:"speedup_percent"`
	ExploreMS      float64 `json:"explore_ms"`
	ExtractMS      float64 `json:"extract_ms"`
	ENodes         int     `json:"enodes"`
	EClasses       int     `json:"eclasses"`
	Iterations     int     `json:"iterations"`
	Saturated      bool    `json:"saturated"`
	// Truncated reports that exploration stopped on a time budget or
	// cancellation, so the result covers only part of the search space.
	Truncated  bool `json:"truncated"`
	ILPOptimal bool `json:"ilp_optimal"`
}

// ProgressReply is one progress snapshot on the wire.
type ProgressReply struct {
	Phase     string  `json:"phase"`
	Iteration int     `json:"iteration"`
	ENodes    int     `json:"enodes"`
	EClasses  int     `json:"eclasses"`
	BestCost  float64 `json:"best_cost,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

func toProgressReply(p tensat.Progress) ProgressReply {
	return ProgressReply{
		Phase:     string(p.Phase),
		Iteration: p.Iteration,
		ENodes:    p.ENodes,
		EClasses:  p.EClasses,
		BestCost:  p.BestCost,
		ElapsedMS: float64(p.Elapsed) / float64(time.Millisecond),
	}
}

// JobReply describes a job's lifecycle state: the body of the 202
// answering POST /v1/jobs, of GET /v1/jobs/{id}, of DELETE
// /v1/jobs/{id}, and of the final SSE "done" event.
type JobReply struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	// RuleSet and CostModel are the job's resolved optimization
	// profile ("custom" when the service runs a programmatic override).
	RuleSet   string `json:"ruleset"`
	CostModel string `json:"cost_model"`
	// Progress is the latest snapshot (phase, iteration, e-graph
	// sizes, incumbent cost, elapsed time).
	Progress ProgressReply `json:"progress"`
	// Error carries the failure or cancellation cause once terminal.
	Error string `json:"error,omitempty"`
	// StatusURL/ResultURL/EventsURL locate the job's sub-resources.
	StatusURL string `json:"status_url"`
	ResultURL string `json:"result_url"`
	EventsURL string `json:"events_url"`
}

func toJobReply(j *Job) JobReply {
	status, prog := j.Status()
	rs, cm := j.Profile()
	r := JobReply{
		ID:        j.ID(),
		Status:    string(status),
		RuleSet:   rs,
		CostModel: cm,
		Progress:  toProgressReply(prog),
		StatusURL: "/v1/jobs/" + j.ID(),
		ResultURL: "/v1/jobs/" + j.ID() + "/result",
		EventsURL: "/v1/jobs/" + j.ID() + "/events",
	}
	if _, err := j.Outcome(); err != nil {
		r.Error = err.Error()
	}
	return r
}

// JobSummaryReply is one row of the GET /v1/jobs listing: enough to
// see what the store holds (and watch TTL expiry/eviction happen)
// without the full progress payload.
type JobSummaryReply struct {
	ID        string  `json:"id"`
	Status    string  `json:"status"`
	AgeMS     float64 `json:"age_ms"`
	RuleSet   string  `json:"ruleset"`
	CostModel string  `json:"cost_model"`
	StatusURL string  `json:"status_url"`
}

// JobListReply is the body answering GET /v1/jobs.
type JobListReply struct {
	Jobs  []JobSummaryReply `json:"jobs"`
	Count int               `json:"count"`
}

// RuleSetReply and CostModelReply are the discovery rows of
// GET /v1/rulesets and GET /v1/costmodels.
type RuleSetReply struct {
	Name string `json:"name"`
	// Hash is the content hash of the rule set (names + canonical
	// pattern s-expressions) — stable across restarts and reloads
	// while the rules are unchanged, and the component that keys the
	// result cache per profile.
	Hash       string `json:"hash"`
	Rules      int    `json:"rules"`
	MultiRules int    `json:"multi_rules"`
	Source     string `json:"source"`
}

type CostModelReply struct {
	Name   string `json:"name"`
	Hash   string `json:"hash"`
	Params int    `json:"params"`
	Source string `json:"source"`
}

// RuleSetsReply is the body answering GET /v1/rulesets.
type RuleSetsReply struct {
	RuleSets []RuleSetReply `json:"rulesets"`
	Count    int            `json:"count"`
}

// CostModelsReply is the body answering GET /v1/costmodels.
type CostModelsReply struct {
	CostModels []CostModelReply `json:"costmodels"`
	Count      int              `json:"count"`
}

// StatsReply is the body answering GET /v1/stats.
type StatsReply struct {
	Hits         uint64  `json:"hits"`
	Misses       uint64  `json:"misses"`
	Deduped      uint64  `json:"deduped"`
	Completed    uint64  `json:"completed"`
	Errors       uint64  `json:"errors"`
	Canceled     uint64  `json:"canceled"`
	InFlight     int     `json:"in_flight"`
	CacheEntries int     `json:"cache_entries"`
	CacheBytes   int64   `json:"cache_bytes"`
	QueueWaiting int     `json:"queue_waiting"`
	Workers      int     `json:"workers"`
	P50MS        float64 `json:"p50_ms"`
	P95MS        float64 `json:"p95_ms"`
	P99MS        float64 `json:"p99_ms"`
	// LatencyWindow is how many recent cold latencies the percentiles
	// are computed over (the ring capacity).
	LatencyWindow int `json:"latency_window"`
	// Asynchronous job counters (the /v1/jobs surface).
	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsRunning   int    `json:"jobs_running"`
	JobsDone      uint64 `json:"jobs_done"`
	JobsCanceled  uint64 `json:"jobs_canceled"`
	JobsFailed    uint64 `json:"jobs_failed"`
	// Profiles counts requests per "<ruleset>/<costmodel>" profile.
	Profiles map[string]uint64 `json:"profiles,omitempty"`
	// Search-phase counters summed over completed (uncached) runs:
	// classes the e-matching programs scanned vs. skipped by the
	// operator index, dirty candidates re-searched vs. clean candidates
	// answered from the per-iteration memo, and matches found.
	SearchClassesScanned uint64 `json:"search_classes_scanned"`
	SearchClassesPruned  uint64 `json:"search_classes_pruned"`
	SearchDirtySearched  uint64 `json:"search_dirty_searched"`
	SearchCleanReused    uint64 `json:"search_clean_reused"`
	SearchMatches        uint64 `json:"search_matches"`
	// ILP-extraction counters summed over the same runs: what presolve
	// removed before solving, incumbent improvements, and completed
	// solves keyed "<backend>/optimal" or "<backend>/feasible".
	ILPPresolveFixed   uint64            `json:"ilp_presolve_fixed"`
	ILPPresolveDropped uint64            `json:"ilp_presolve_dropped"`
	ILPPresolveRemoved uint64            `json:"ilp_presolve_removed"`
	ILPIncumbents      uint64            `json:"ilp_incumbents"`
	ILPSolves          map[string]uint64 `json:"ilp_solves,omitempty"`
	// Persistent result-store tier (zeros when no -store-dir).
	StoreHits    uint64 `json:"store_hits"`
	StoreMisses  uint64 `json:"store_misses"`
	StoreErrors  uint64 `json:"store_errors"`
	StorePuts    uint64 `json:"store_puts"`
	StoreEntries int    `json:"store_entries"`
	StoreBytes   int64  `json:"store_bytes"`
	// StoreDegraded reports the store's current degraded mode (I/O
	// failures; the memory tier keeps serving while it reprobes).
	StoreDegraded bool `json:"store_degraded"`
	// Peer cache tier (zeros when no -peers).
	PeerHits   uint64 `json:"peer_hits"`
	PeerMisses uint64 `json:"peer_misses"`
	PeerErrors uint64 `json:"peer_errors"`
	PeerPuts   uint64 `json:"peer_puts"`
	// Peer resilience: retry attempts absorbed by backoff, async pushes
	// dropped on a full queue, and each peer's breaker state.
	PeerRetries     uint64            `json:"peer_retries"`
	PeerPushDropped uint64            `json:"peer_push_dropped"`
	PeerBreakers    map[string]string `json:"peer_breakers,omitempty"`
	// Panics counts recovered panics by site ("optimizer", "worker",
	// "job"); Draining reports graceful-shutdown mode.
	Panics   map[string]uint64 `json:"panics,omitempty"`
	Draining bool              `json:"draining"`
	// Tenant admission control (zeros when no -tenants).
	ShedTotal      uint64            `json:"shed_total"`
	TenantRequests map[string]uint64 `json:"tenant_requests,omitempty"`
	TenantRejected map[string]uint64 `json:"tenant_rejected,omitempty"`
}

// VersionReply is the body answering GET /v1/version.
type VersionReply struct {
	Module     string `json:"module"`
	Version    string `json:"version"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Revision and BuildTime identify the exact build from the VCS
	// stamp Go embeds (vcs.revision / vcs.time); "unknown" when built
	// outside a checkout (e.g. go test binaries). Modified marks a
	// build from a dirty working tree.
	Revision  string `json:"revision"`
	BuildTime string `json:"build_time,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

type errorReply struct {
	Error string `json:"error"`
	// Code is a stable machine-readable error class ("rate_limited",
	// "job_store_full", "unauthorized", "bad_query") so clients can
	// branch without parsing the human-readable message.
	Code string `json:"code,omitempty"`
}

// writeError answers with a coded error body. retryAfter > 0
// additionally sets the Retry-After header (whole seconds, rounded
// up), the contract every 429 this server emits honors.
func writeError(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retryAfter.Seconds()))))
	}
	writeJSON(w, status, errorReply{Error: msg, Code: code})
}

// NewHandler exposes s over HTTP+JSON.
//
// The versioned surface is asynchronous and profile-aware:
//
//	POST   /v1/jobs             — submit a job (202 + JobReply)
//	GET    /v1/jobs             — list tracked jobs (JobListReply)
//	GET    /v1/jobs/{id}        — status + live progress (JobReply)
//	GET    /v1/jobs/{id}/result — the result once done (OptimizeReply)
//	DELETE /v1/jobs/{id}        — cancel the job
//	GET    /v1/jobs/{id}/events — progress as server-sent events
//	GET    /v1/jobs/{id}/trace  — the run's phase-span trace (TraceReply,
//	                              or Chrome trace-event JSON with ?format=chrome)
//	GET    /v1/rulesets         — named rule sets + content hashes
//	GET    /v1/costmodels       — named device cost models + hashes
//	GET    /v1/version          — build/runtime identification
//	GET    /v1/stats            — service counters (StatsReply)
//	GET    /v1/healthz          — liveness probe
//	GET    /v1/readyz           — readiness probe (503 while draining;
//	                              also at /readyz, both auth-exempt)
//	GET    /metrics             — Prometheus text exposition
//
// Deprecated surface, each answering with Deprecation/Link successor
// headers: POST /optimize (synchronous submit-and-wait, sharing the
// result cache and singleflight with the job surface), GET /stats and
// GET /healthz (pre-/v1 spellings of the operational endpoints).
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /optimize", func(w http.ResponseWriter, r *http.Request) {
		handleOptimize(s, w, r)
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		handleSubmitJob(s, w, r)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		handleListJobs(s, w, r)
	})
	mux.HandleFunc("GET /v1/rulesets", func(w http.ResponseWriter, r *http.Request) {
		handleRuleSets(s, w, r)
	})
	mux.HandleFunc("GET /v1/costmodels", func(w http.ResponseWriter, r *http.Request) {
		handleCostModels(s, w, r)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if job, ok := findJob(s, w, r); ok {
			writeJSON(w, http.StatusOK, toJobReply(job))
		}
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		handleJobResult(s, w, r)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if job, ok := findJob(s, w, r); ok {
			job.Cancel()
			// Cancellation is asynchronous (the run stops at its next
			// check point); report the state as of now.
			writeJSON(w, http.StatusOK, toJobReply(job))
		}
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		handleJobEvents(s, w, r)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		handleJobTrace(s, w, r)
	})
	mux.Handle("GET /metrics", s.Metrics())
	mux.HandleFunc("GET /v1/version", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, versionReply())
	})
	// Operational endpoints: /v1 spellings are canonical; the bare
	// pre-/v1 paths remain as shims carrying the same Deprecation/Link
	// headers the /optimize shim uses.
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		handleStats(s, w)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		handleHealthz(w)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		handleReadyz(s, w)
	})
	mux.HandleFunc("GET /v1/readyz", func(w http.ResponseWriter, r *http.Request) {
		handleReadyz(s, w)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		deprecated(w, "/v1/stats")
		handleStats(s, w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		deprecated(w, "/v1/healthz")
		handleHealthz(w)
	})
	// Internal fleet surface: peers fetch records they own and push cold
	// results to their owners. Exempt from tenant (client) auth but
	// guarded by the cluster's shared secret — peerPreamble rejects any
	// request without it, so clients on the same listener cannot read or
	// poison the cache. Never fanning out (loop prevention by
	// construction; the origin header catches misconfiguration).
	mux.HandleFunc("GET /v1/peer/cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		handlePeerGet(s, w, r)
	})
	mux.HandleFunc("PUT /v1/peer/cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		handlePeerPut(s, w, r)
	})
	if s.cfg.Tenants == nil {
		return mux
	}
	return requireTenant(s, mux)
}

// tenantCtxKey carries the authenticated *tenant.Tenant through the
// request context from the auth middleware to the handlers.
type tenantCtxKey struct{}

// tenantFrom extracts the authenticated tenant (nil when the service
// runs without tenant auth).
func tenantFrom(ctx context.Context) *tenant.Tenant {
	tn, _ := ctx.Value(tenantCtxKey{}).(*tenant.Tenant)
	return tn
}

// authExempt lists the paths that skip *tenant* auth: probes and
// scrapers (healthz, metrics), build identification, profile
// discovery, and the node-to-node peer surface — which carries its own
// cluster-secret authentication in peerPreamble instead.
func authExempt(path string) bool {
	switch path {
	case "/healthz", "/v1/healthz", "/readyz", "/v1/readyz", "/metrics",
		"/v1/version", "/v1/rulesets", "/v1/costmodels":
		return true
	}
	return strings.HasPrefix(path, cluster.PeerPath)
}

// apiKey extracts the presented credential: "Authorization: Bearer
// <key>" or the "X-API-Key" header.
func apiKey(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); auth != "" {
		if key, ok := strings.CutPrefix(auth, "Bearer "); ok {
			return key
		}
		return ""
	}
	return r.Header.Get("X-API-Key")
}

// requireTenant authenticates every non-exempt request against the
// tenant registry and stashes the resolved tenant in the context for
// the submission handlers' admission control.
func requireTenant(s *Service, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if authExempt(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		key := apiKey(r)
		if key == "" {
			writeError(w, http.StatusUnauthorized, "unauthorized",
				"missing API key (use Authorization: Bearer <key> or X-API-Key)", 0)
			return
		}
		tn, ok := s.cfg.Tenants.Lookup(key)
		if !ok {
			writeError(w, http.StatusUnauthorized, "unauthorized", "unknown API key", 0)
			return
		}
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), tenantCtxKey{}, &tn)))
	})
}

// maxPeerPayload bounds a pushed record; anything larger than the
// store's frame limit is corrupt by definition.
const maxPeerPayload = 1 << 30

// peerPreamble runs the shared peer-surface checks: the tier must be
// configured, the caller must present the cluster's shared secret
// (401 otherwise — the peer surface shares the client listener, and
// tenant auth exempts it, so this is its only gate), and a request
// whose origin header names this node is a routing loop (508), never
// served.
func peerPreamble(s *Service, w http.ResponseWriter, r *http.Request) bool {
	if s.cfg.Cluster == nil {
		writeError(w, http.StatusNotFound, "no_cluster", "this node is not part of a cluster", 0)
		return false
	}
	if !s.cfg.Cluster.Authorize(r.Header.Get(cluster.AuthHeader)) {
		writeError(w, http.StatusUnauthorized, "peer_unauthorized",
			"missing or invalid cluster secret ("+cluster.AuthHeader+" header)", 0)
		return false
	}
	if origin := r.Header.Get(cluster.OriginHeader); origin != "" && origin == s.cfg.Cluster.Self() {
		writeError(w, http.StatusLoopDetected, "peer_loop",
			"peer request originated from this node — check the -peers/-self configuration", 0)
		return false
	}
	return true
}

// handlePeerGet answers GET /v1/peer/cache/{key} strictly from this
// node's local tiers (store, then memory) — it never consults other
// peers, which is what makes routing loops structurally impossible.
func handlePeerGet(s *Service, w http.ResponseWriter, r *http.Request) {
	if !peerPreamble(s, w, r) {
		return
	}
	key := r.PathValue("key")
	var payload []byte
	if st := s.store; st != nil {
		// The guard's degraded mode reads as a miss here; the memory
		// check below may still answer.
		if p, ok, err := st.get(key); err == nil && ok {
			payload = p
		}
	}
	if payload == nil {
		if entry, ok := s.cache.get(key); ok {
			if p, err := cachestore.Encode(entry.res, entry.tensors, entry.parts); err == nil {
				payload = p
			}
		}
	}
	if payload == nil {
		writeError(w, http.StatusNotFound, "not_found", "no record for key", 0)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(payload)
}

// handlePeerPut accepts a pushed record for a key this node owns. The
// payload is decoded before acceptance, and the record's embedded key
// components must re-derive the key it was pushed under — a peer
// cannot poison the store with bytes this node could not serve back,
// nor park a valid record under the wrong key.
func handlePeerPut(s *Service, w http.ResponseWriter, r *http.Request) {
	if !peerPreamble(s, w, r) {
		return
	}
	key := r.PathValue("key")
	if !s.cfg.Cluster.MayOwn(key) {
		// A correctly configured peer only pushes keys this node may own
		// — the primary owner or a fallover successor during the owner's
		// outage. Accepting arbitrary keys would let ring disagreements
		// scatter records across the fleet.
		writeError(w, http.StatusMisdirectedRequest, "not_owner",
			"this node does not own the key — check the -peers/-self configuration", 0)
		return
	}
	payload, err := io.ReadAll(io.LimitReader(r.Body, maxPeerPayload+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_payload", "reading record: "+err.Error(), 0)
		return
	}
	if len(payload) > maxPeerPayload {
		writeError(w, http.StatusRequestEntityTooLarge, "bad_payload", "record exceeds frame limit", 0)
		return
	}
	res, tensors, parts, err := cachestore.Decode(payload)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_payload", "undecodable record: "+err.Error(), 0)
		return
	}
	if keyFromParts(parts) != key {
		writeError(w, http.StatusBadRequest, "key_mismatch",
			"record's embedded identity does not derive the pushed key", 0)
		return
	}
	s.cache.add(key, &cachedResult{res: res, tensors: tensors, parts: parts}, int64(len(payload)))
	if st := s.store; st != nil {
		switch err := st.put(key, payload); {
		case errors.Is(err, errStoreDegraded):
			// Kept in memory only; the pusher's record is safe with them.
		case err != nil:
			s.stats.storeError()
			s.log.Warn("storing pushed record failed", "key", key, "error", err)
		default:
			s.stats.storePut()
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// deprecated stamps the headers a pre-/v1 path answers with: the same
// Deprecation marker and successor Link that /optimize carries.
func deprecated(w http.ResponseWriter, successor string) {
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", "<"+successor+`>; rel="successor-version"`)
}

func handleStats(s *Service, w http.ResponseWriter) {
	st := s.Stats()
	var breakers map[string]string
	if cl := s.cfg.Cluster; cl != nil {
		states := cl.BreakerStates()
		breakers = make(map[string]string, len(states))
		for peer, bst := range states {
			breakers[peer] = bst.String()
		}
	}
	writeJSON(w, http.StatusOK, StatsReply{
		Hits:          st.Hits,
		Misses:        st.Misses,
		Deduped:       st.Deduped,
		Completed:     st.Completed,
		Errors:        st.Errors,
		Canceled:      st.Canceled,
		InFlight:      st.InFlight,
		CacheEntries:  st.CacheEntries,
		Workers:       s.Workers(),
		P50MS:         float64(st.P50) / float64(time.Millisecond),
		P95MS:         float64(st.P95) / float64(time.Millisecond),
		P99MS:         float64(st.P99) / float64(time.Millisecond),
		LatencyWindow: st.LatencyWindow,
		JobsSubmitted: st.Jobs.Submitted,
		JobsRunning:   st.Jobs.Running,
		JobsDone:      st.Jobs.Done,
		JobsCanceled:  st.Jobs.Canceled,
		JobsFailed:    st.Jobs.Failed,
		Profiles:      st.Profiles,

		SearchClassesScanned: st.Search.ClassesScanned,
		SearchClassesPruned:  st.Search.ClassesPruned,
		SearchDirtySearched:  st.Search.DirtySearched,
		SearchCleanReused:    st.Search.CleanReused,
		SearchMatches:        st.Search.Matches,

		ILPPresolveFixed:   st.ILP.PresolveFixed,
		ILPPresolveDropped: st.ILP.PresolveDropped,
		ILPPresolveRemoved: st.ILP.PresolveRemoved,
		ILPIncumbents:      st.ILP.Incumbents,
		ILPSolves:          st.ILP.Solves,

		CacheBytes:   st.CacheBytes,
		QueueWaiting: st.QueueWaiting,
		StoreHits:    st.Store.Hits,
		StoreMisses:  st.Store.Misses,
		StoreErrors:  st.Store.Errors,
		StorePuts:    st.Store.Puts,
		StoreEntries: st.StoreEntries,
		StoreBytes:   st.StoreBytes,
		PeerHits:     st.Peer.Hits,
		PeerMisses:   st.Peer.Misses,
		PeerErrors:   st.Peer.Errors,
		PeerPuts:     st.Peer.Puts,

		StoreDegraded:   st.StoreDegraded,
		PeerRetries:     st.PeerRetries,
		PeerPushDropped: st.PeerPushDropped,
		PeerBreakers:    breakers,
		Panics:          st.Panics,
		Draining:        st.Draining,

		ShedTotal:      st.Shed,
		TenantRequests: st.TenantRequests,
		TenantRejected: st.TenantRejected,
	})
}

func handleHealthz(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// ReadyzReply is the body answering GET /readyz: readiness for a load
// balancer, distinct from /healthz liveness. A draining node answers
// 503 so traffic shifts away while running jobs finish; a degraded
// store or an open breaker is reported but keeps the node ready — the
// memory tier and local compute still answer requests.
type ReadyzReply struct {
	Ready    bool `json:"ready"`
	Draining bool `json:"draining"`
	// StoreDegraded reports the persistent store's degraded mode (false
	// when no store is configured).
	StoreDegraded bool `json:"store_degraded"`
	// PeerBreakers maps each peer to its circuit-breaker state
	// ("closed", "open", "half-open"); omitted outside a cluster.
	PeerBreakers map[string]string `json:"peer_breakers,omitempty"`
}

// handleReadyz answers GET /readyz. Auth-exempt: load balancers and
// orchestrators probe it without credentials, and it leaks nothing a
// tenant could abuse.
func handleReadyz(s *Service, w http.ResponseWriter) {
	reply := ReadyzReply{Draining: s.Draining()}
	reply.Ready = !reply.Draining
	if s.store != nil {
		reply.StoreDegraded = s.store.isDegraded()
	}
	if cl := s.cfg.Cluster; cl != nil {
		states := cl.BreakerStates()
		reply.PeerBreakers = make(map[string]string, len(states))
		for peer, st := range states {
			reply.PeerBreakers[peer] = st.String()
		}
	}
	status := http.StatusOK
	if !reply.Ready {
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, reply)
}

// handleListJobs answers GET /v1/jobs with a summary of tracked jobs,
// oldest first. ?status= filters by lifecycle state and ?limit= caps
// the row count; junk values (and unknown parameters) are 400s instead
// of silently ignored filters.
func handleListJobs(s *Service, w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	for k := range q {
		if k != "status" && k != "limit" {
			writeError(w, http.StatusBadRequest, "bad_query",
				"unknown query parameter "+strconv.Quote(k)+" (known: status, limit)", 0)
			return
		}
	}
	var statusFilter JobStatus
	if v := q.Get("status"); v != "" {
		switch JobStatus(v) {
		case JobRunning, JobDone, JobCanceled, JobFailed:
			statusFilter = JobStatus(v)
		default:
			writeError(w, http.StatusBadRequest, "bad_query",
				"unknown status "+strconv.Quote(v)+" (known: running, done, canceled, failed)", 0)
			return
		}
	}
	limit := -1
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "bad_query",
				"limit must be a positive integer, got "+strconv.Quote(v), 0)
			return
		}
		limit = n
	}

	jobs := s.Jobs()
	reply := JobListReply{Jobs: make([]JobSummaryReply, 0, len(jobs))}
	now := time.Now()
	for _, j := range jobs {
		status, _ := j.Status()
		if statusFilter != "" && status != statusFilter {
			continue
		}
		if limit >= 0 && len(reply.Jobs) >= limit {
			break
		}
		rs, cm := j.Profile()
		reply.Jobs = append(reply.Jobs, JobSummaryReply{
			ID:        j.ID(),
			Status:    string(status),
			AgeMS:     float64(now.Sub(j.Created())) / float64(time.Millisecond),
			RuleSet:   rs,
			CostModel: cm,
			StatusURL: "/v1/jobs/" + j.ID(),
		})
	}
	reply.Count = len(reply.Jobs)
	writeJSON(w, http.StatusOK, reply)
}

// handleRuleSets answers GET /v1/rulesets from the service registry.
func handleRuleSets(s *Service, w http.ResponseWriter, _ *http.Request) {
	infos := s.Registry().RuleSets()
	reply := RuleSetsReply{RuleSets: make([]RuleSetReply, 0, len(infos)), Count: len(infos)}
	for _, info := range infos {
		reply.RuleSets = append(reply.RuleSets, RuleSetReply{
			Name:       info.Name,
			Hash:       info.Hash,
			Rules:      info.Rules,
			MultiRules: info.MultiRules,
			Source:     info.Source,
		})
	}
	writeJSON(w, http.StatusOK, reply)
}

// handleCostModels answers GET /v1/costmodels from the service
// registry.
func handleCostModels(s *Service, w http.ResponseWriter, _ *http.Request) {
	infos := s.Registry().CostModels()
	reply := CostModelsReply{CostModels: make([]CostModelReply, 0, len(infos)), Count: len(infos)}
	for _, info := range infos {
		reply.CostModels = append(reply.CostModels, CostModelReply{
			Name:   info.Name,
			Hash:   info.Hash,
			Params: info.Params,
			Source: info.Source,
		})
	}
	writeJSON(w, http.StatusOK, reply)
}

func versionReply() VersionReply {
	v := VersionReply{
		Module:     "tensat",
		Version:    "(devel)",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	v.Revision = "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Path != "" {
			v.Module = bi.Main.Path
		}
		if bi.Main.Version != "" {
			v.Version = bi.Main.Version
		}
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				v.Revision = kv.Value
			case "vcs.time":
				v.BuildTime = kv.Value
			case "vcs.modified":
				v.Modified = kv.Value == "true"
			}
		}
	}
	return v
}

// decodeRequest parses an OptimizeRequest strictly (unknown fields are
// errors) and decodes the wire graph. On failure it answers 400 and
// returns ok=false.
func decodeRequest(w http.ResponseWriter, r *http.Request) (OptimizeRequest, *tensat.Graph, bool) {
	var req OptimizeRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorReply{Error: "bad request body: " + err.Error()})
		return req, nil, false
	}
	if req.Graph == "" {
		writeJSON(w, http.StatusBadRequest, errorReply{Error: "missing graph"})
		return req, nil, false
	}
	g, err := tensor.UnmarshalGraph([]byte(req.Graph))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorReply{Error: "bad graph: " + err.Error()})
		return req, nil, false
	}
	return req, g, true
}

func findJob(s *Service, w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	job, ok := s.Job(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorReply{Error: "unknown job " + id})
		return nil, false
	}
	return job, true
}

func handleSubmitJob(s *Service, w http.ResponseWriter, r *http.Request) {
	req, g, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	job, err := s.SubmitJobAs(g, req.Options, time.Duration(req.TimeoutMS)*time.Millisecond, tenantFrom(r.Context()))
	if err != nil {
		var rle *RateLimitError
		switch {
		case errors.Is(err, ErrBadOptions):
			writeJSON(w, http.StatusBadRequest, errorReply{Error: err.Error()})
		case errors.Is(err, ErrDraining):
			// Shutting down: send the client to another node.
			writeError(w, http.StatusServiceUnavailable, "draining", err.Error(), time.Second)
		case errors.Is(err, ErrJobStoreFull):
			// Backpressure, not a fault: tell the client when to retry
			// and which condition it hit.
			writeError(w, http.StatusTooManyRequests, "job_store_full", err.Error(), time.Second)
		case errors.As(err, &rle):
			writeError(w, http.StatusTooManyRequests, "rate_limited", err.Error(), rle.RetryAfter)
		default:
			writeJSON(w, http.StatusInternalServerError, errorReply{Error: err.Error()})
		}
		return
	}
	writeJSON(w, http.StatusAccepted, toJobReply(job))
}

func handleJobResult(s *Service, w http.ResponseWriter, r *http.Request) {
	job, ok := findJob(s, w, r)
	if !ok {
		return
	}
	select {
	case <-job.Done():
	default:
		status, prog := job.Status()
		writeJSON(w, http.StatusConflict, errorReply{
			Error: fmt.Sprintf("job %s not finished (status %s, phase %s)", job.ID(), status, prog.Phase),
		})
		return
	}
	resp, err := job.Outcome()
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusConflict // canceled: there is no result to fetch
		}
		writeJSON(w, status, errorReply{Error: err.Error()})
		return
	}
	writeOptimizeReply(w, resp)
}

// handleJobEvents streams the job's progress log as server-sent
// events: one "progress" event per snapshot (full history replayed
// first, so late subscribers see everything), then a final "done"
// event with the terminal JobReply. During quiet phases (a long ILP
// solve between incumbents, say) the stream emits ": keepalive"
// comment lines every Config.SSEKeepAlive so intermediary proxies
// don't reap the idle connection; comment lines are invisible to
// EventSource clients by SSE semantics.
func handleJobEvents(s *Service, w http.ResponseWriter, r *http.Request) {
	job, ok := findJob(s, w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeJSON(w, http.StatusNotImplemented, errorReply{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	emit := func(event string, v any) {
		data, err := json.Marshal(v)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	}

	var keepalive <-chan time.Time
	if s.cfg.SSEKeepAlive > 0 {
		t := time.NewTicker(s.cfg.SSEKeepAlive)
		defer t.Stop()
		keepalive = t.C
	}

	idx := 0
	for {
		entries, next, notify := job.ProgressSince(idx)
		idx = next
		for _, p := range entries {
			emit("progress", toProgressReply(p))
		}
		if len(entries) > 0 {
			flusher.Flush()
		}
		select {
		case <-job.Done():
			// Drain snapshots published between the last pump and the
			// close, then finish with the terminal state.
			entries, _, _ := job.ProgressSince(idx)
			for _, p := range entries {
				emit("progress", toProgressReply(p))
			}
			emit("done", toJobReply(job))
			flusher.Flush()
			return
		case <-s.drain.channel():
			// Graceful drain: end the stream with an explicit terminal
			// event (the job itself keeps running to completion under the
			// drain timeout; the client can poll it from another node or
			// after restart).
			emit("draining", toJobReply(job))
			flusher.Flush()
			return
		case <-notify:
		case <-keepalive:
			fmt.Fprint(w, ": keepalive\n\n")
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// TraceSpanReply is one phase span of a job's trace on the wire; spans
// nest into the tree recorded by the pipeline (see tensat.TraceSpan).
type TraceSpanReply struct {
	Name       string            `json:"name"`
	StartMS    float64           `json:"start_ms"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]int64  `json:"attrs,omitempty"`
	Events     []TraceEventReply `json:"events,omitempty"`
	Children   []TraceSpanReply  `json:"children,omitempty"`
}

// TraceEventReply is a point-in-time event inside a span (e.g. an ILP
// incumbent improvement; Value is the new incumbent cost).
type TraceEventReply struct {
	Name  string  `json:"name"`
	AtMS  float64 `json:"at_ms"`
	Value float64 `json:"value"`
}

// TraceReply is the body answering GET /v1/jobs/{id}/trace: the span
// tree of the run that produced the job's result, plus the job's
// recorded wall time. For cached or deduplicated jobs the trace is the
// original cold run's, so its spans can predate the job itself.
type TraceReply struct {
	ID string `json:"id"`
	// Cached and Deduped mirror the job outcome: when either is set the
	// trace was recorded by the original cold run, not this job.
	Cached  bool `json:"cached"`
	Deduped bool `json:"deduped"`
	// WallMS is the job's own recorded wall time (terminal progress
	// Elapsed).
	WallMS float64        `json:"wall_ms"`
	Trace  TraceSpanReply `json:"trace"`
}

func toTraceSpanReply(s *tensat.TraceSpan) TraceSpanReply {
	r := TraceSpanReply{
		Name:       s.Name,
		StartMS:    float64(s.Start) / float64(time.Millisecond),
		DurationMS: float64(s.Duration) / float64(time.Millisecond),
	}
	if len(s.Attrs) > 0 {
		r.Attrs = make(map[string]int64, len(s.Attrs))
		for k, v := range s.Attrs {
			r.Attrs[k] = v
		}
	}
	for _, e := range s.Events {
		r.Events = append(r.Events, TraceEventReply{
			Name:  e.Name,
			AtMS:  float64(e.At) / float64(time.Millisecond),
			Value: e.Value,
		})
	}
	for _, c := range s.Children {
		r.Children = append(r.Children, toTraceSpanReply(c))
	}
	return r
}

// handleJobTrace answers GET /v1/jobs/{id}/trace: 409 while the job
// runs (mirroring /result), 404 when the job finished without a trace
// (canceled or failed runs have no result to trace). ?format=chrome
// answers in the Chrome trace-event JSON that Perfetto opens directly.
func handleJobTrace(s *Service, w http.ResponseWriter, r *http.Request) {
	job, ok := findJob(s, w, r)
	if !ok {
		return
	}
	select {
	case <-job.Done():
	default:
		status, prog := job.Status()
		writeJSON(w, http.StatusConflict, errorReply{
			Error: fmt.Sprintf("job %s not finished (status %s, phase %s)", job.ID(), status, prog.Phase),
		})
		return
	}
	resp, err := job.Outcome()
	if err != nil || resp == nil || resp.Result == nil || resp.Result.Trace == nil {
		writeJSON(w, http.StatusNotFound, errorReply{Error: "job " + job.ID() + " has no trace"})
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="`+job.ID()+`.trace.json"`)
		_ = tensat.WriteChromeTrace(w, resp.Result.Trace)
		return
	}
	_, prog := job.Status()
	writeJSON(w, http.StatusOK, TraceReply{
		ID:      job.ID(),
		Cached:  resp.Cached,
		Deduped: resp.Deduped,
		WallMS:  float64(prog.Elapsed) / float64(time.Millisecond),
		Trace:   toTraceSpanReply(resp.Result.Trace),
	})
}

// statusRecorder captures the response code for the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so SSE streaming keeps working
// behind the access log.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// AccessLog wraps next with structured per-request logging: method,
// path, status, duration and remote address, one record per request at
// Info level.
func AccessLog(log *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"duration", time.Since(start),
			"remote", r.RemoteAddr)
	})
}

func handleOptimize(s *Service, w http.ResponseWriter, r *http.Request) {
	// The synchronous endpoint predates the /v1 job surface and is
	// kept as a submit-and-wait shim (it still shares the result cache
	// and singleflight). Headers point clients at the successor.
	deprecated(w, "/v1/jobs")
	req, g, ok := decodeRequest(w, r)
	if !ok {
		return
	}

	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	resp, err := s.OptimizeAs(ctx, g, req.Options, tenantFrom(r.Context()))
	if err != nil {
		var rle *RateLimitError
		if errors.As(err, &rle) {
			writeError(w, http.StatusTooManyRequests, "rate_limited", err.Error(), rle.RetryAfter)
			return
		}
		if errors.Is(err, ErrDraining) {
			writeError(w, http.StatusServiceUnavailable, "draining", err.Error(), time.Second)
			return
		}
		var perr *tensat.PanicError
		if errors.As(err, &perr) {
			// A recovered pipeline panic: a server fault with a stable
			// code, never cached, and — by virtue of answering at all —
			// proof the daemon survived it.
			writeError(w, http.StatusInternalServerError, "internal_error", err.Error(), 0)
			return
		}
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrBadOptions):
			status = http.StatusBadRequest
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
		case errors.Is(err, context.Canceled):
			// Client went away mid-request; the reply is best-effort.
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, errorReply{Error: err.Error()})
		return
	}
	writeOptimizeReply(w, resp)
}

func writeOptimizeReply(w http.ResponseWriter, resp *Response) {
	text, err := resp.Result.Graph.MarshalText()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorReply{Error: err.Error()})
		return
	}
	res := resp.Result
	writeJSON(w, http.StatusOK, OptimizeReply{
		Fingerprint:    resp.Fingerprint,
		Cached:         resp.Cached,
		Deduped:        resp.Deduped,
		CacheTier:      resp.Tier,
		Degraded:       resp.Degraded,
		Graph:          string(text),
		OrigCost:       res.OrigCost,
		OptCost:        res.OptCost,
		SpeedupPercent: res.SpeedupPercent,
		ExploreMS:      float64(res.ExploreTime) / float64(time.Millisecond),
		ExtractMS:      float64(res.ExtractTime) / float64(time.Millisecond),
		ENodes:         res.ENodes,
		EClasses:       res.EClasses,
		Iterations:     res.Iterations,
		Saturated:      res.Saturated,
		Truncated:      res.Truncated,
		ILPOptimal:     res.ILPOptimal,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
