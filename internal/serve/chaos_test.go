package serve

// Chaos tests: the degradation ladder under injected faults — pipeline
// panics isolated to their request, store I/O failures flipping the
// store into degraded mode (and recovering on reprobe), peer outages
// degrading to local compute behind the circuit breaker, and SIGTERM
// graceful drain. Every scenario asserts the daemon keeps answering —
// byte-identically where full quality is possible, with explicit
// degradation markers where it is not — and that each rung of the
// ladder is observable in Stats.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tensat"
	"tensat/internal/cachestore"
	"tensat/internal/cluster"
	"tensat/internal/fault"
)

// rewriteGraph builds a graph the default rule set actually rewrites
// (the paper's figure-2 shape: two matmuls sharing an input), so the
// rewrite.apply injection point is reached by a real run.
func rewriteGraph(t testing.TB) *tensat.Graph {
	t.Helper()
	b := tensat.NewBuilder()
	x := b.Input("x", 8, 16)
	w1 := b.Weight("w1", 16, 16)
	w2 := b.Weight("w2", 16, 16)
	g, err := b.Finish(b.Matmul(tensat.ActNone, x, w1), b.Matmul(tensat.ActNone, x, w2))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPipelinePanicIsIsolated drives a real optimization into an
// injected panic inside rule application and asserts the full ladder:
// the request fails with *tensat.PanicError (never a dead process),
// the panic is counted at the "optimizer" site, nothing is cached, and
// once the fault clears the same service answers the same request
// byte-identically to an unfaulted control run.
func TestPipelinePanicIsIsolated(t *testing.T) {
	defer fault.Reset()
	s := New(Config{Workers: 2}) // real pipeline — no injected optimize
	g := rewriteGraph(t)

	fault.Arm("rewrite.apply", fault.Action{Mode: fault.ModePanic, Count: 1})
	_, err := s.Optimize(context.Background(), g, RequestOptions{})
	var perr *tensat.PanicError
	if !errors.As(err, &perr) {
		t.Fatalf("faulted run: err = %v, want *tensat.PanicError", err)
	}
	if len(perr.Stack) == 0 {
		t.Fatal("panic error carries no stack")
	}
	if got := s.Stats(); got.Panics["optimizer"] != 1 {
		t.Fatalf("panics = %v, want optimizer:1", got.Panics)
	}

	// The failed run must not have been cached; the retry recomputes.
	fault.Reset()
	retry, err := s.Optimize(context.Background(), g, RequestOptions{})
	if err != nil {
		t.Fatalf("post-fault run: %v", err)
	}
	if retry.Cached {
		t.Fatal("panicked run's result was served from cache")
	}

	control := New(Config{Workers: 2})
	want, err := control.Optimize(context.Background(), rewriteGraph(t), RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, wantText := graphText(t, retry.Result.Graph), graphText(t, want.Result.Graph); got != wantText {
		t.Fatalf("post-fault result differs from control:\n%s\nvs\n%s", got, wantText)
	}
}

// TestHTTPPanicAnswersInternalError: a panic escaping the injected
// optimize function (i.e. from serving code, not the pipeline) is
// recovered at the worker site, mapped to a 500 with the stable
// "internal_error" code, and the daemon keeps serving: the next
// request over the same connection pool succeeds.
func TestHTTPPanicAnswersInternalError(t *testing.T) {
	s := New(Config{Workers: 2})
	res := stubResult(t)
	var boom atomic.Bool
	boom.Store(true)
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		if boom.Swap(false) {
			panic("chaos: injected worker panic")
		}
		return res, nil
	}
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	post := func() (*http.Response, errorReply) {
		t.Helper()
		body, err := json.Marshal(OptimizeRequest{Graph: graphText(t, testGraph(t, 1))})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/optimize", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var er errorReply
		_ = json.NewDecoder(resp.Body).Decode(&er)
		return resp, er
	}

	resp, er := post()
	if resp.StatusCode != http.StatusInternalServerError || er.Code != "internal_error" {
		t.Fatalf("faulted request: status %d code %q, want 500 internal_error", resp.StatusCode, er.Code)
	}
	if got := s.Stats(); got.Panics["worker"] != 1 {
		t.Fatalf("panics = %v, want worker:1", got.Panics)
	}
	resp, _ = post()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic request: status %d, want 200 (daemon survived)", resp.StatusCode)
	}
}

// TestJobPanicReachesTerminalState: a panic during an asynchronous job
// is recovered at the job site and the job still reaches "failed" —
// watchers blocked on Done are released, never hung.
func TestJobPanicReachesTerminalState(t *testing.T) {
	s := New(Config{Workers: 2})
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		panic("chaos: injected job panic")
	}
	job, err := s.SubmitJob(testGraph(t, 1), RequestOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("job never reached a terminal state after a panic")
	}
	_, jerr := job.Outcome()
	var perr *tensat.PanicError
	if !errors.As(jerr, &perr) {
		t.Fatalf("job outcome err = %v, want *tensat.PanicError", jerr)
	}
	status, _ := job.Status()
	if status != JobFailed {
		t.Fatalf("job status = %s, want failed", status)
	}
	// The panic crossed the optimizer boundary via the flight, so it is
	// counted once at the worker site (the recover that caught it).
	if got := s.Stats(); got.Panics["worker"] != 1 {
		t.Fatalf("panics = %v, want worker:1", got.Panics)
	}
}

// TestStoreDegradedModeAndRecovery walks the store rung of the ladder:
// an injected ENOSPC on the write-through flips the store into
// degraded mode (one mode transition, not an error storm — subsequent
// requests skip the store quietly), the memory tier keeps serving, and
// after the reprobe interval one probe operation flips it back.
func TestStoreDegradedModeAndRecovery(t *testing.T) {
	defer fault.Reset()
	st, err := cachestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := New(Config{Workers: 2, Store: st, StoreReprobe: 50 * time.Millisecond})
	res := stubResult(t)
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		return res, nil
	}

	fault.Arm("store.put", fault.Action{Mode: fault.ModeENOSPC, Count: 1})
	if _, err := s.Optimize(context.Background(), testGraph(t, 1), RequestOptions{}); err != nil {
		t.Fatalf("request must survive a store write failure: %v", err)
	}
	got := s.Stats()
	if !got.StoreDegraded {
		t.Fatal("store not degraded after ENOSPC write-through")
	}
	if got.Store.Errors != 1 {
		t.Fatalf("store errors = %d, want 1", got.Store.Errors)
	}

	// Memory keeps serving the result whose write-through failed.
	warm, err := s.Optimize(context.Background(), testGraph(t, 1), RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached || warm.Tier != TierMemory {
		t.Fatalf("cached=%v tier=%q, want memory hit while degraded", warm.Cached, warm.Tier)
	}
	// A different request inside the reprobe window skips the store
	// quietly: no new store errors, no store misses — and no crash.
	if _, err := s.Optimize(context.Background(), testGraph(t, 2), RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats(); got.Store.Errors != 1 {
		t.Fatalf("store errors grew to %d while degraded, want steady 1", got.Store.Errors)
	}

	// After the reprobe interval (fault long cleared), the next store
	// operation probes, succeeds, and recovers the tier.
	time.Sleep(60 * time.Millisecond)
	if _, err := s.Optimize(context.Background(), testGraph(t, 3), RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats(); got.StoreDegraded {
		t.Fatal("store still degraded after successful reprobe")
	}
	// Writes flow again: the recovery request's write-through landed.
	if st.Len() == 0 {
		t.Fatal("no records on disk after recovery")
	}
}

// graphsOwnedBy returns n distinct graphs (advancing *seed past the
// ones it consumes) whose cache keys the named node primarily owns
// from s's perspective — callers reuse one seed cursor to keep every
// returned key cold.
func graphsOwnedBy(t testing.TB, s *Service, node string, seed *int, n int) []*tensat.Graph {
	t.Helper()
	var out []*tensat.Graph
	for limit := *seed + 512; len(out) < n; *seed++ {
		if *seed > limit {
			t.Fatalf("ring degenerate: no keys hash to node %s", node)
		}
		cand := testGraph(t, *seed)
		q, err := s.prepare(cand, RequestOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if owner, local := s.cfg.Cluster.Owner(q.key); !local && owner == node {
			out = append(out, cand)
		}
	}
	return out
}

// TestPeerOutageDegradesToLocalCompute: node B owns the key and dies;
// node A's requests keep succeeding byte-identically from local
// compute while B's breaker trips, and when B comes back the peer tier
// resumes. No request ever fails because a peer did.
func TestPeerOutageDegradesToLocalCompute(t *testing.T) {
	baseURL := map[string]string{}
	mkClient := func(self string) *cluster.Client {
		cl, err := cluster.New(cluster.Config{
			Self:             self,
			Peers:            []string{"a", "b"},
			Timeout:          2 * time.Second,
			BaseURL:          func(node string) string { return baseURL[node] },
			Secret:           testClusterSecret,
			BreakerThreshold: 2,
			BreakerCooldown:  100 * time.Millisecond,
			RetryAttempts:    -1, // retries off: the breaker math stays exact
		})
		if err != nil {
			t.Fatal(err)
		}
		return cl
	}
	res := stubResult(t)
	newNode := func(self string) (*Service, *httptest.Server) {
		s := New(Config{Workers: 2, Cluster: mkClient(self)})
		s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
			return res, nil
		}
		ts := httptest.NewServer(NewHandler(s))
		baseURL[self] = ts.URL
		return s, ts
	}
	sA, tsA := newNode("a")
	defer tsA.Close()
	defer sA.cfg.Cluster.Close()
	sB, tsB := newNode("b")
	defer sB.cfg.Cluster.Close()

	// A key owned by B, warmed on B through its own service so A's
	// first fetch hits.
	seed := 1
	warmG := graphsOwnedBy(t, sA, "b", &seed, 1)[0]
	if _, err := sB.Optimize(context.Background(), warmG, RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	hit, err := sA.Optimize(context.Background(), warmG, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || hit.Tier != TierPeer {
		t.Fatalf("cached=%v tier=%q, want peer hit while B is up", hit.Cached, hit.Tier)
	}
	control := graphText(t, hit.Result.Graph)

	// Kill B. A must keep answering the same key byte-identically from
	// its (now warm) memory; cold keys owned by B compute locally.
	tsB.Close()
	again, err := sA.Optimize(context.Background(), warmG, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := graphText(t, again.Result.Graph); got != control {
		t.Fatal("result changed after peer death")
	}
	// Two cold fetches against dead B trip the breaker (threshold 2);
	// requests still succeed via local compute.
	for _, cg := range graphsOwnedBy(t, sA, "b", &seed, 3) {
		resp, err := sA.Optimize(context.Background(), cg, RequestOptions{})
		if err != nil {
			t.Fatalf("request failed during peer outage: %v", err)
		}
		if got := graphText(t, resp.Result.Graph); got != graphText(t, res.Graph) {
			t.Fatal("local compute returned a different result during outage")
		}
	}
	if st := sA.cfg.Cluster.BreakerStates()["b"]; st != cluster.BreakerOpen {
		t.Fatalf("breaker for b = %v, want open after repeated failures", st)
	}

	// Restart B on a fresh listener; after the cooldown A's half-open
	// probe closes the breaker and the peer tier serves again.
	tsB2 := httptest.NewServer(NewHandler(sB))
	defer tsB2.Close()
	baseURL["b"] = tsB2.URL
	time.Sleep(120 * time.Millisecond)
	probe := graphsOwnedBy(t, sA, "b", &seed, 1)[0]
	if _, err := sB.Optimize(context.Background(), probe, RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	recovered, err := sA.Optimize(context.Background(), probe, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !recovered.Cached || recovered.Tier != TierPeer {
		t.Fatalf("cached=%v tier=%q, want peer hit after recovery", recovered.Cached, recovered.Tier)
	}
	if st := sA.cfg.Cluster.BreakerStates()["b"]; st != cluster.BreakerClosed {
		t.Fatalf("breaker for b = %v, want closed after recovery", st)
	}
}

// TestDrainLifecycle: BeginDrain refuses new work with ErrDraining,
// Drain waits for running jobs (honoring its context deadline), and a
// tracked job finishing releases the wait.
func TestDrainLifecycle(t *testing.T) {
	s := New(Config{Workers: 2})
	release := make(chan struct{})
	res := stubResult(t)
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		select {
		case <-release:
			return res, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	job, err := s.SubmitJob(testGraph(t, 1), RequestOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}

	s.BeginDrain()
	if !s.Draining() {
		t.Fatal("Draining() false after BeginDrain")
	}
	if _, err := s.SubmitJob(testGraph(t, 2), RequestOptions{}, 0); !errors.Is(err, ErrDraining) {
		t.Fatalf("SubmitJob while draining: %v, want ErrDraining", err)
	}
	if _, err := s.Optimize(context.Background(), testGraph(t, 2), RequestOptions{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Optimize while draining: %v, want ErrDraining", err)
	}

	// The job is still running: a short drain deadline expires.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	err = s.Drain(ctx)
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with running job = %v, want deadline exceeded", err)
	}

	// Release the job; Drain completes and the job finished properly.
	close(release)
	ctx, cancel = context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain after release: %v", err)
	}
	select {
	case <-job.Done():
	default:
		t.Fatal("Drain returned before the job reached a terminal state")
	}
	if status, _ := job.Status(); status != JobDone {
		t.Fatalf("job status = %s, want done (jobs finish during drain)", status)
	}
}

// TestDrainHTTP: the HTTP surface of a draining node — /readyz flips
// to 503, submissions answer 503 with the "draining" code and a
// Retry-After, and an open SSE stream receives a terminal "draining"
// event instead of hanging.
func TestDrainHTTP(t *testing.T) {
	s := New(Config{Workers: 2})
	release := make(chan struct{})
	res := stubResult(t)
	s.optimize = func(ctx context.Context, g *tensat.Graph, o tensat.Options) (*tensat.Result, error) {
		select {
		case <-release:
			return res, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()
	defer close(release)

	readyz := func() (int, ReadyzReply) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rr ReadyzReply
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, rr
	}
	if status, rr := readyz(); status != http.StatusOK || !rr.Ready {
		t.Fatalf("readyz before drain: status %d ready %v, want 200 ready", status, rr.Ready)
	}

	job, err := s.SubmitJob(testGraph(t, 1), RequestOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Open the SSE stream before draining.
	events, err := http.Get(ts.URL + "/v1/jobs/" + job.ID() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer events.Body.Close()

	s.BeginDrain()

	if status, rr := readyz(); status != http.StatusServiceUnavailable || !rr.Draining {
		t.Fatalf("readyz while draining: status %d draining %v, want 503 draining", status, rr.Draining)
	}
	body, err := json.Marshal(OptimizeRequest{Graph: graphText(t, testGraph(t, 2))})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var er errorReply
	_ = json.NewDecoder(resp.Body).Decode(&er)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || er.Code != "draining" {
		t.Fatalf("job submit while draining: status %d code %q, want 503 draining", resp.StatusCode, er.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 draining reply carries no Retry-After")
	}

	// The SSE stream must terminate with a "draining" event.
	sawDraining := make(chan bool, 1)
	go func() {
		scanner := bufio.NewScanner(events.Body)
		for scanner.Scan() {
			if strings.HasPrefix(scanner.Text(), "event: draining") {
				sawDraining <- true
				return
			}
		}
		sawDraining <- false
	}()
	select {
	case ok := <-sawDraining:
		if !ok {
			t.Fatal("SSE stream ended without a draining event")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SSE stream did not terminate on drain")
	}
}
