package serve

import (
	"context"
	"sync"

	"tensat"
)

// flightGroup deduplicates concurrent identical requests: all requests
// for one key share a single optimization run. Unlike the classic
// singleflight, the shared work runs under a reference-counted context:
// each interested request holds one reference, a request that is
// canceled drops its reference and returns immediately, and when the
// last reference is dropped the work itself is canceled. A run is thus
// never stranded doing work nobody wants, and a canceled waiter never
// blocks on its peers.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// flightCall is one in-flight optimization shared by its waiters.
type flightCall struct {
	ctx    context.Context // the work's context; canceled when waiters == 0
	cancel context.CancelFunc
	done   chan struct{} // closed once res/err are published
	res    *tensat.Result
	err    error
	// tensors is the leader's canonical tensor-name list, written by
	// the leader before the work starts and read by followers after
	// done closes (so followers can translate the shared result into
	// their own vocabulary).
	tensors []string
	// waiters is guarded by the owning group's mutex.
	waiters int
	// progress records the run's live snapshots; every waiter (sync
	// requests ignore it, async jobs pump it into their own logs)
	// shares one stream, so N deduplicated jobs see identical
	// progress.
	progress progressLog
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// join registers the caller as a waiter on key's call, creating the
// call if none is in flight. The second result is true for the creator
// (the leader), which must start the work and eventually call finish.
func (g *flightGroup) join(key string) (*flightCall, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		c.waiters++
		return c, false
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &flightCall{ctx: ctx, cancel: cancel, done: make(chan struct{}), waiters: 1}
	c.progress.init()
	g.calls[key] = c
	return c, true
}

// leave drops a waiter whose own request context ended. When the last
// waiter leaves, the shared work context is canceled and the key is
// freed so a subsequent identical request starts a fresh run instead of
// joining a dying one.
func (g *flightGroup) leave(key string, c *flightCall) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c.waiters--; c.waiters == 0 {
		c.cancel()
		if g.calls[key] == c {
			delete(g.calls, key)
		}
	}
}

// finish publishes the result to every waiter and frees the key. Only
// the leader's worker goroutine calls it, exactly once.
func (g *flightGroup) finish(key string, c *flightCall, res *tensat.Result, err error) {
	g.mu.Lock()
	if g.calls[key] == c {
		delete(g.calls, key)
	}
	g.mu.Unlock()
	c.res, c.err = res, err
	close(c.done)
	c.cancel()
}
