package serve

import (
	"runtime"
	"runtime/debug"
	"time"

	"tensat"
	"tensat/internal/obs"
)

// metrics is the service's Prometheus-exposed instrument bundle,
// registered on one obs.Registry that Service.Metrics exposes and
// NewHandler serves as GET /metrics. The collector bumps the counters
// alongside its JSON-stats counterparts (one set of call sites, two
// exposition formats), so the two surfaces can never drift.
type metrics struct {
	reg *obs.Registry

	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	cacheDedup  *obs.Counter

	requests  *obs.CounterVec // by ruleset, cost_model
	canceled  *obs.Counter
	completed *obs.Counter
	runErrors *obs.Counter
	inFlight  *obs.Gauge

	jobsSubmitted *obs.Counter
	jobsDone      *obs.Counter
	jobsCanceled  *obs.Counter
	jobsFailed    *obs.Counter
	jobsRunning   *obs.Gauge

	phaseSeconds *obs.HistogramVec // by phase
	runSeconds   *obs.Histogram

	enodes   *obs.Gauge
	eclasses *obs.Gauge

	searchScanned *obs.Counter
	searchPruned  *obs.Counter
	searchDirty   *obs.Counter
	searchClean   *obs.Counter
	searchMatches *obs.Counter

	ilpPresolveFixed   *obs.Counter
	ilpPresolveDropped *obs.Counter
	ilpPresolveRemoved *obs.Counter
	ilpIncumbents      *obs.Counter
	ilpSolves          *obs.CounterVec // by solver, outcome

	storeHits   *obs.Counter
	storeMisses *obs.Counter
	storeErrors *obs.Counter
	storePuts   *obs.Counter

	peerHits   *obs.Counter
	peerMisses *obs.Counter
	peerErrors *obs.Counter
	peerPuts   *obs.Counter

	peerRetries     *obs.Counter
	peerPushDropped *obs.Counter
	peerBreaker     *obs.GaugeVec   // by peer
	panics          *obs.CounterVec // by site

	shed           *obs.Counter
	tenantRequests *obs.CounterVec // by tenant
	tenantRejected *obs.CounterVec // by tenant
}

func newMetrics(s *Service) *metrics {
	r := obs.NewRegistry()
	m := &metrics{
		reg: r,

		cacheHits:   r.Counter("tensat_cache_hits_total", "Requests answered from the result cache."),
		cacheMisses: r.Counter("tensat_cache_misses_total", "Requests that had to consult the flight group."),
		cacheDedup:  r.Counter("tensat_cache_dedup_total", "Requests that joined an in-flight identical run."),

		requests:  r.CounterVec("tensat_requests_total", "Requests by resolved optimization profile.", "ruleset", "cost_model"),
		canceled:  r.Counter("tensat_requests_canceled_total", "Requests abandoned by their callers."),
		completed: r.Counter("tensat_runs_completed_total", "Cold optimization runs that finished successfully."),
		runErrors: r.Counter("tensat_run_errors_total", "Cold optimization runs that failed."),
		inFlight:  r.Gauge("tensat_optimizations_inflight", "Optimizations currently holding a worker slot."),

		jobsSubmitted: r.Counter("tensat_jobs_submitted_total", "Asynchronous jobs accepted by POST /v1/jobs."),
		jobsDone:      r.Counter("tensat_jobs_done_total", "Asynchronous jobs finished successfully."),
		jobsCanceled:  r.Counter("tensat_jobs_canceled_total", "Asynchronous jobs canceled or timed out."),
		jobsFailed:    r.Counter("tensat_jobs_failed_total", "Asynchronous jobs that failed."),
		jobsRunning:   r.Gauge("tensat_jobs_running", "Asynchronous jobs currently running."),

		phaseSeconds: r.HistogramVec("tensat_phase_seconds",
			"Pipeline phase latency by phase (explore, search, apply, rebuild, extract_greedy, extract_ilp).",
			obs.LatencyBuckets, "phase"),
		runSeconds: r.Histogram("tensat_run_seconds", "End-to-end cold optimization latency.", obs.LatencyBuckets),

		enodes:   r.Gauge("tensat_egraph_enodes", "Final e-node count of the most recently completed run."),
		eclasses: r.Gauge("tensat_egraph_eclasses", "Final e-class count of the most recently completed run."),

		searchScanned: r.Counter("tensat_search_classes_scanned_total", "E-classes visited by the e-matching pattern programs."),
		searchPruned:  r.Counter("tensat_search_classes_pruned_total", "E-classes skipped by the operator index."),
		searchDirty:   r.Counter("tensat_search_dirty_researched_total", "Dirty candidate classes re-searched incrementally."),
		searchClean:   r.Counter("tensat_search_clean_reused_total", "Clean candidate classes answered from the match memo."),
		searchMatches: r.Counter("tensat_search_matches_total", "Matches produced by the e-matching search phase."),

		ilpPresolveFixed:   r.Counter("tensat_ilp_presolve_fixed_total", "ILP variables fixed into the solution by presolve."),
		ilpPresolveDropped: r.Counter("tensat_ilp_presolve_dropped_total", "ILP candidate nodes eliminated by presolve."),
		ilpPresolveRemoved: r.Counter("tensat_ilp_presolve_constraints_removed_total", "Vacuous ILP cycle-constraint rows dropped by presolve."),
		ilpIncumbents:      r.Counter("tensat_ilp_incumbents_total", "ILP incumbent improvements across completed solves."),
		ilpSolves:          r.CounterVec("tensat_ilp_solves_total", "Completed ILP solves by backend and outcome (optimal vs. feasible).", "solver", "outcome"),

		storeHits:   r.Counter("tensat_store_hits_total", "LRU misses answered from the persistent result store."),
		storeMisses: r.Counter("tensat_store_misses_total", "Persistent-store lookups that found no record."),
		storeErrors: r.Counter("tensat_store_errors_total", "Persistent-store reads/writes that failed or found unreadable records."),
		storePuts:   r.Counter("tensat_store_puts_total", "Results written through to the persistent store."),

		peerHits:   r.Counter("tensat_peer_hits_total", "Results served by the owning peer's cache."),
		peerMisses: r.Counter("tensat_peer_misses_total", "Clean peer-cache misses (owner had no record)."),
		peerErrors: r.Counter("tensat_peer_errors_total", "Peer requests that failed (timeout, transport, unreadable record) — always degraded to local compute."),
		peerPuts:   r.Counter("tensat_peer_puts_total", "Cold results pushed to their owning peer."),

		peerRetries:     r.Counter("tensat_peer_retries_total", "Peer fetch retry attempts (transient failures absorbed by backoff)."),
		peerPushDropped: r.Counter("tensat_peer_push_dropped_total", "Async peer pushes dropped because the bounded push queue was full."),
		peerBreaker:     r.GaugeVec("tensat_peer_breaker_state", "Per-peer circuit breaker state (0=closed, 1=open, 2=half-open).", "peer"),
		panics:          r.CounterVec("tensat_panics_total", "Recovered panics by site — each one answered internal_error instead of killing the daemon.", "site"),

		shed:           r.Counter("tensat_shed_total", "Requests degraded to greedy-only extraction under tenant quota pressure."),
		tenantRequests: r.CounterVec("tensat_tenant_requests_total", "Requests entering admission control, by tenant.", "tenant"),
		tenantRejected: r.CounterVec("tensat_tenant_rejected_total", "Requests rejected (429) by admission control, by tenant.", "tenant"),
	}
	r.GaugeFunc("tensat_cache_entries", "Current result-cache population.", func() float64 {
		return float64(s.cache.len())
	})
	r.GaugeFunc("tensat_cache_bytes", "Summed encoded size of the in-memory result cache.", func() float64 {
		return float64(s.cache.bytesUsed())
	})
	r.GaugeFunc("tensat_store_entries", "Live records in the persistent result store.", func() float64 {
		if s.cfg.Store == nil {
			return 0
		}
		return float64(s.cfg.Store.Len())
	})
	r.GaugeFunc("tensat_store_bytes", "Live payload bytes in the persistent result store.", func() float64 {
		if s.cfg.Store == nil {
			return 0
		}
		return float64(s.cfg.Store.Bytes())
	})
	r.GaugeFunc("tensat_store_degraded", "1 while the persistent store is in degraded mode (I/O failures; memory tier keeps serving).", func() float64 {
		if s.store != nil && s.store.isDegraded() {
			return 1
		}
		return 0
	})
	r.GaugeFunc("tensat_draining", "1 while the daemon is draining for graceful shutdown.", func() float64 {
		if s.drain != nil && s.drain.active() {
			return 1
		}
		return 0
	})
	r.GaugeFunc("tensat_queue_waiting", "Optimization runs queued for a worker slot.", func() float64 {
		return float64(s.queue.waiting())
	})
	r.GaugeFunc("tensat_workers", "Configured worker-pool bound.", func() float64 {
		return float64(s.cfg.Workers)
	})

	// tensat_build_info follows the Prometheus convention for version
	// identification: constant 1 with the identity in the labels.
	info := r.CounterVec("tensat_build_info", "Build identity (constant 1).", "go_version", "revision")
	revision := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				revision = kv.Value
			}
		}
	}
	info.With(runtime.Version(), revision).Inc()
	return m
}

// observeRun folds one successful cold run into the phase histograms
// and e-graph gauges. The extractor phase label follows the effective
// option, so greedy and ILP latencies land in distinct series.
func (m *metrics) observeRun(res *tensat.Result, opts tensat.Options) {
	if m == nil || res == nil {
		return
	}
	sec := func(d time.Duration) float64 { return d.Seconds() }
	m.phaseSeconds.With("explore").Observe(sec(res.ExploreTime))
	m.phaseSeconds.With("search").Observe(sec(res.Search.Time))
	m.phaseSeconds.With("apply").Observe(sec(res.ApplyTime))
	m.phaseSeconds.With("rebuild").Observe(sec(res.RebuildTime))
	if opts.Extractor == tensat.ExtractGreedy {
		m.phaseSeconds.With("extract_greedy").Observe(sec(res.ExtractTime))
	} else {
		m.phaseSeconds.With("extract_ilp").Observe(sec(res.ExtractTime))
	}
	m.enodes.Set(float64(res.ENodes))
	m.eclasses.Set(float64(res.EClasses))
}
