package serve

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"tensat"
)

// The cold-vs-cached benchmark pair quantifies what the result cache
// buys: BenchmarkOptimizeCold re-optimizes the figure-2 graph from
// scratch every iteration (fresh service, empty cache), while
// BenchmarkOptimizeCached serves every iteration from the LRU. When
// both have run (go test -bench=Optimize ./internal/serve/), TestMain
// writes a BENCH_serve.json summary next to the package so CI can
// track the cached-vs-cold ratio over time.

var benchSummary = struct {
	Benchmark     string  `json:"benchmark"`
	ColdNsPerOp   float64 `json:"cold_ns_per_op"`
	CachedNsPerOp float64 `json:"cached_ns_per_op"`
	Speedup       float64 `json:"speedup"`
}{Benchmark: "serve-cold-vs-cached"}

func TestMain(m *testing.M) {
	code := m.Run()
	if benchSummary.ColdNsPerOp > 0 && benchSummary.CachedNsPerOp > 0 {
		benchSummary.Speedup = benchSummary.ColdNsPerOp / benchSummary.CachedNsPerOp
		if data, err := json.MarshalIndent(benchSummary, "", "  "); err == nil {
			_ = os.WriteFile("BENCH_serve.json", append(data, '\n'), 0o644)
		}
	}
	os.Exit(code)
}

func benchGraph(b *testing.B) *tensat.Graph {
	b.Helper()
	bld := tensat.NewBuilder()
	x := bld.Input("x", 64, 256)
	w1 := bld.Weight("w1", 256, 256)
	w2 := bld.Weight("w2", 256, 256)
	g, err := bld.Finish(bld.Matmul(tensat.ActNone, x, w1), bld.Matmul(tensat.ActNone, x, w2))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkOptimizeCold(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(Config{Workers: 1, Base: fastOptions()})
		if _, err := s.Optimize(context.Background(), g, RequestOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	benchSummary.ColdNsPerOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
}

func BenchmarkOptimizeCached(b *testing.B) {
	g := benchGraph(b)
	s := New(Config{Workers: 1, Base: fastOptions()})
	if _, err := s.Optimize(context.Background(), g, RequestOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := s.Optimize(context.Background(), g, RequestOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if !resp.Cached {
			b.Fatal("iteration missed the cache")
		}
	}
	b.StopTimer()
	benchSummary.CachedNsPerOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
}
