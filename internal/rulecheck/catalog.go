package rulecheck

import (
	"tensat/internal/pattern"
	"tensat/internal/rewrite"
	"tensat/internal/tensor"
)

// Argument kinds, per Table 2's type letters.
const (
	kindT = 'T' // tensor
	kindN = 'N' // integer parameter
	kindS = 'S' // string parameter
	kindP = 'P' // tensor tuple (TT)
)

// childKinds gives the expected kind of each child of an operator,
// mirroring the signatures tensor.Infer enforces. Leaf ops (int, str,
// input, weight) have no children and are absent.
var childKinds = map[tensor.Op]string{
	tensor.OpEwadd:     "TT",
	tensor.OpEwmul:     "TT",
	tensor.OpMatmul:    "NTT",
	tensor.OpConv:      "NNNNTT",
	tensor.OpRelu:      "T",
	tensor.OpTanh:      "T",
	tensor.OpSigmoid:   "T",
	tensor.OpPoolMax:   "TNNNNNN",
	tensor.OpPoolAvg:   "TNNNNNN",
	tensor.OpTranspose: "TS",
	tensor.OpEnlarge:   "TT",
	tensor.OpConcat2:   "NTT",
	tensor.OpConcat3:   "NTTT",
	tensor.OpConcat4:   "NTTTT",
	tensor.OpConcat5:   "NTTTTT",
	tensor.OpSplit:     "NT",
	tensor.OpSplit0:    "P",
	tensor.OpSplit1:    "P",
	tensor.OpMerge:     "TN",
	tensor.OpReshape:   "TS",
	tensor.OpNoop:      "TT",
}

// intRole captures what an integer slot means, so candidates stay in
// the range tensor.Infer accepts (a stride of 0 would make every
// witness ill-typed and drown real findings in no-witness noise).
var (
	actCands    = []int64{tensor.ActNone, tensor.ActSigmoid, tensor.ActRelu, tensor.ActTanh}
	strideCands = []int64{1, 2}
	padCands    = []int64{tensor.PadSame, tensor.PadValid}
	kernelCands = []int64{1, 3}
	axisCands   = []int64{0, 1}
	countCands  = []int64{2}
	anyIntCands = []int64{0, 1, 2, 3}
)

// intCands returns admissible integer values for child idx of op.
func intCands(op tensor.Op, idx int) []int64 {
	switch op {
	case tensor.OpMatmul:
		return actCands
	case tensor.OpConv:
		switch idx {
		case 0, 1:
			return strideCands
		case 2:
			return padCands
		default:
			return actCands
		}
	case tensor.OpPoolMax, tensor.OpPoolAvg:
		switch idx {
		case 1, 2:
			return kernelCands
		case 3, 4:
			return strideCands
		case 5:
			return padCands
		default:
			return actCands
		}
	case tensor.OpConcat2, tensor.OpConcat3, tensor.OpConcat4, tensor.OpConcat5, tensor.OpSplit:
		return axisCands
	case tensor.OpMerge:
		return countCands
	}
	return anyIntCands
}

// strCands returns admissible string values for child idx of op.
func strCands(op tensor.Op, idx int) []string {
	switch op {
	case tensor.OpTranspose:
		return []string{"1 0", "0 1"}
	case tensor.OpReshape:
		return []string{"6", "3 2", "9"}
	}
	return []string{"1 0", "6"}
}

// tensorCatalog is the fixed set of tensor witnesses. Dimensions are
// small primes (2, 3, 5, 7) so distinct shape computations rarely
// collide by accident, which is what gives a counterexample scan over
// a tiny catalog its discriminating power. Entries:
//
//   - rank-2 matrices covering matmul chains (2x3 · 3x5 · 5x7) and the
//     square/equal-shape cases element-wise ops need;
//   - two concat-marked tensors (split needs a marker to be typeable);
//   - one NCHW activation and OIHW weights covering plain, 1x1 and
//     grouped convolutions plus merge-compatible group structure.
//
// Every entry is deliberately non-Foldable: cost models price foldable
// outputs at zero before considering the operator, which would mask
// the uncosted-op check.
func tensorCatalog() []*tensor.Meta {
	marked := func(shape tensor.Shape, axis, at int) *tensor.Meta {
		m := tensor.TensorMeta(shape)
		m.HasSplit, m.SplitAxis, m.SplitAt = true, axis, at
		return m
	}
	return []*tensor.Meta{
		tensor.TensorMeta(tensor.Shape{2, 3}),
		tensor.TensorMeta(tensor.Shape{3, 2}),
		tensor.TensorMeta(tensor.Shape{3, 5}),
		tensor.TensorMeta(tensor.Shape{5, 7}),
		tensor.TensorMeta(tensor.Shape{3, 3}),
		tensor.TensorMeta(tensor.Shape{2, 2}),
		marked(tensor.Shape{2, 6}, 1, 3),
		marked(tensor.Shape{4, 3}, 0, 2),
		tensor.TensorMeta(tensor.Shape{1, 4, 6, 6}),
		tensor.TensorMeta(tensor.Shape{2, 4, 3, 3}),
		tensor.TensorMeta(tensor.Shape{3, 4, 3, 3}),
		tensor.TensorMeta(tensor.Shape{2, 4, 1, 1}),
		tensor.TensorMeta(tensor.Shape{4, 2, 3, 3}),
	}
}

// tupleCatalog covers variables consumed by split0/split1 directly.
func tupleCatalog() []*tensor.Meta {
	return []*tensor.Meta{
		{Kind: tensor.KindTuple, Shape: tensor.Shape{2, 3}, Shape2: tensor.Shape{2, 3}},
		{Kind: tensor.KindTuple, Shape: tensor.Shape{2, 3}, Shape2: tensor.Shape{2, 5}},
	}
}

// candidates determines, for every variable of r, the list of witness
// values to enumerate. Each occurrence of a variable (as child idx of
// an operator) contributes a candidate list from the catalogs; lists
// from multiple occurrences are intersected, so a variable used both
// as a tensor and as an axis ends up empty — reported by the caller as
// un-satisfiable. Variables whose only occurrence is a bare pattern
// root (no surrounding operator) default to the tensor catalog.
func candidates(r *rewrite.Rule) ([]string, [][]*tensor.Meta) {
	var vars []string
	byVar := map[string][]*tensor.Meta{}
	seen := map[string]bool{}

	merge := func(v string, cs []*tensor.Meta) {
		if !seen[v] {
			seen[v] = true
			vars = append(vars, v)
			byVar[v] = cs
			return
		}
		if cs == nil {
			return
		}
		prev := byVar[v]
		if prev == nil {
			byVar[v] = cs
			return
		}
		have := make(map[string]bool, len(cs))
		for _, m := range cs {
			have[m.String()] = true
		}
		var inter []*tensor.Meta
		for _, m := range prev {
			if have[m.String()] {
				inter = append(inter, m)
			}
		}
		byVar[v] = inter
	}

	var walk func(p *pattern.Pat)
	walk = func(p *pattern.Pat) {
		if p.IsVar() {
			merge(p.Var, nil) // unconstrained root occurrence
			return
		}
		kinds := childKinds[p.Op]
		for i, c := range p.Children {
			if c.IsVar() {
				merge(c.Var, kindCands(p.Op, i, kinds))
			} else {
				walk(c)
			}
		}
	}
	for _, s := range r.Sources {
		walk(s)
	}
	for _, t := range r.Targets {
		walk(t)
	}

	cands := make([][]*tensor.Meta, len(vars))
	for i, v := range vars {
		cs := byVar[v]
		if cs == nil {
			cs = tensorCatalog()
		}
		cands[i] = cs
	}
	return vars, cands
}

// kindCands returns the witness list for one occurrence: child idx of
// op, whose expected kind comes from childKinds.
func kindCands(op tensor.Op, idx int, kinds string) []*tensor.Meta {
	k := byte(kindT)
	if idx < len(kinds) {
		k = kinds[idx]
	}
	switch k {
	case kindN:
		vals := intCands(op, idx)
		out := make([]*tensor.Meta, len(vals))
		for i, v := range vals {
			out[i] = tensor.IntMeta(v)
		}
		return out
	case kindS:
		vals := strCands(op, idx)
		out := make([]*tensor.Meta, len(vals))
		for i, v := range vals {
			out[i] = tensor.StrMeta(v)
		}
		return out
	case kindP:
		return tupleCatalog()
	default:
		return tensorCatalog()
	}
}
