// Package rulecheck statically verifies rewrite-rule sets before the
// engine ever applies them. The engine shape-checks every candidate
// rewrite at match time (§4 of the paper), so an ill-typed target is
// "only" dead weight at runtime — but a rule whose target is
// well-typed with a DIFFERENT shape than its source rewrites a tensor
// into one of another shape, and nothing downstream catches that until
// extraction emits a wrong graph. This package catches both classes at
// load time, plus rules the cost model cannot price.
//
// The method is witness checking: each rule's variables are bound to
// every combination of values from small, deterministic catalogs —
// tensor metas with prime-ish dimensions (so distinct shapes never
// collide by accident), role-restricted integer parameters (strides,
// paddings, activations, axes), permutation and shape strings — and
// both sides are run through the real shape-inference engine
// (tensor.Infer via the pattern walker):
//
//   - shape-unsound (error): some witness makes every source AND every
//     target well-typed, but a target's meta differs from its source's.
//     Applying the rule on that witness would change the value's shape.
//   - no-witness (warning): no catalog assignment makes the sources
//     well-typed. The rule can never fire on shapes like the catalog's
//     — usually an arity or argument-kind mistake (the catalogs cover
//     every operator's admissible argument kinds).
//   - dead-target (warning): sources match, but no witness makes the
//     target well-typed; the rule is dead weight.
//   - uncosted-op (warning): a target operator prices at +Inf on every
//     witness — it has no cost-model entry, so extraction can never
//     choose the rewritten form (the silent-degradation bug this check
//     exists for).
//
// Rules with a Go-side applicability condition (Rule.Cond, builtin
// only) are exempt from the shape-equivalence check — the condition
// encodes exactly when the rewrite is sound, and it cannot be
// evaluated without an e-graph — but still get the witness-existence
// and cost checks.
//
// Variable escape (a target variable unbound by any source) is
// rejected earlier, by rewrite.Rule validation at parse time; it
// surfaces here as a load-error finding.
package rulecheck

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tensat/internal/cost"
	"tensat/internal/pattern"
	"tensat/internal/rewrite"
	"tensat/internal/rules"
	"tensat/internal/tensor"
)

// Severity levels.
const (
	SevError   = "error"
	SevWarning = "warning"
)

// Finding classes (machine-readable).
const (
	ClassLoadError    = "load-error"
	ClassShapeUnsound = "shape-unsound"
	ClassNoWitness    = "no-witness"
	ClassDeadTarget   = "dead-target"
	ClassUncostedOp   = "uncosted-op"
)

// Finding is one machine-readable verifier result.
type Finding struct {
	Source   string `json:"source"`
	Rule     string `json:"rule,omitempty"`
	Class    string `json:"class"`
	Severity string `json:"severity"`
	Detail   string `json:"detail"`
}

func (f Finding) String() string {
	rule := ""
	if f.Rule != "" {
		rule = f.Rule + ": "
	}
	return fmt.Sprintf("%s: %s%s: %s [%s]", f.Source, rule, f.Severity, f.Detail, f.Class)
}

// HasErrors reports whether any finding is error-severity.
func HasErrors(fs []Finding) bool {
	for _, f := range fs {
		if f.Severity == SevError {
			return true
		}
	}
	return false
}

// CheckRules verifies a compiled rule set. source labels findings (a
// file path, or "builtin:<name>"). model prices target operators for
// the uncosted-op check; nil skips that check.
func CheckRules(source string, rs []*rewrite.Rule, model cost.Model) []Finding {
	var out []Finding
	for _, r := range rs {
		checkRule(source, r, model, &out)
	}
	return out
}

// CheckFile parses and verifies one .rules file.
func CheckFile(path string, model cost.Model) []Finding {
	data, err := os.ReadFile(path)
	if err != nil {
		return []Finding{{Source: path, Class: ClassLoadError, Severity: SevError, Detail: err.Error()}}
	}
	rs, err := rules.ParseRuleSet(path, data)
	if err != nil {
		return []Finding{{Source: path, Class: ClassLoadError, Severity: SevError, Detail: err.Error()}}
	}
	return CheckRules(path, rs, model)
}

// CheckDir verifies every *.rules file in dir (sorted by name).
func CheckDir(dir string, model cost.Model) ([]Finding, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.rules"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("rulecheck: no .rules files in %s", dir)
	}
	sort.Strings(paths)
	var out []Finding
	for _, p := range paths {
		out = append(out, CheckFile(p, model)...)
	}
	return out, nil
}

// maxAssignments bounds the witness scan per rule, so a pathological
// rule with many variables terminates. When the bound trips, findings
// say so instead of pretending the scan was exhaustive.
const maxAssignments = 1 << 21

func checkRule(source string, r *rewrite.Rule, model cost.Model, out *[]Finding) {
	vars, cands := candidates(r)
	for i, vc := range cands {
		if len(vc) == 0 {
			*out = append(*out, Finding{
				Source: source, Rule: r.Name, Class: ClassNoWitness, Severity: SevWarning,
				Detail: fmt.Sprintf("variable %s has no admissible bindings: its occurrences demand conflicting argument kinds, so the rule can never fire", vars[i]),
			})
			return
		}
	}

	// Cost coverage per target operator: evaluated on witnesses whose
	// metas are non-foldable (folded subtrees price at 0 regardless).
	type opCost struct{ evaluated, finite bool }
	costState := make(map[tensor.Op]*opCost)
	visit := func(p *pattern.Pat, args []*tensor.Meta, outMeta *tensor.Meta) {
		if model == nil || p.Op == tensor.OpInt || p.Op == tensor.OpStr || outMeta.Foldable {
			return
		}
		st := costState[p.Op]
		if st == nil {
			st = &opCost{}
			costState[p.Op] = st
		}
		st.evaluated = true
		if !math.IsInf(model.NodeCost(p.Op, p.Int, p.Str, args), 1) {
			st.finite = true
		}
	}

	bind := make(map[string]*tensor.Meta, len(vars))
	idx := make([]int, len(vars))
	applicable, targetOK := 0, 0
	capped := false
	var unsound *Finding

	for n := 0; ; n++ {
		if n >= maxAssignments {
			capped = true
			break
		}
		for i, v := range vars {
			bind[v] = cands[i][idx[i]]
		}
		checkWitness(source, r, bind, visit, &applicable, &targetOK, &unsound)
		if unsound != nil {
			break
		}
		if r.Cond != nil && targetOK > 0 {
			// Conditional rules get existence and cost checks only; one
			// witness with well-typed sources and targets settles both.
			break
		}
		// Odometer over the candidate lists.
		i := 0
		for ; i < len(idx); i++ {
			idx[i]++
			if idx[i] < len(cands[i]) {
				break
			}
			idx[i] = 0
		}
		if i == len(idx) {
			break
		}
	}

	scanned := "the built-in witness catalog"
	if capped {
		scanned = fmt.Sprintf("the first %d catalog assignments (scan capped)", maxAssignments)
	}
	switch {
	case unsound != nil:
		*out = append(*out, *unsound)
	case applicable == 0:
		*out = append(*out, Finding{
			Source: source, Rule: r.Name, Class: ClassNoWitness, Severity: SevWarning,
			Detail: fmt.Sprintf("no assignment from %s makes the source pattern(s) well-typed: check operator arities and argument kinds", scanned),
		})
	case r.Cond == nil && targetOK == 0:
		*out = append(*out, Finding{
			Source: source, Rule: r.Name, Class: ClassDeadTarget, Severity: SevWarning,
			Detail: fmt.Sprintf("sources matched %d witness(es) from %s but the target is never well-typed: the rule is dead weight", applicable, scanned),
		})
	}
	ops := make([]tensor.Op, 0, len(costState))
	for op := range costState {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	for _, op := range ops {
		if st := costState[op]; st.evaluated && !st.finite {
			*out = append(*out, Finding{
				Source: source, Rule: r.Name, Class: ClassUncostedOp, Severity: SevWarning,
				Detail: fmt.Sprintf("target operator %q prices at +Inf on every witness: the cost model has no entry for it, so extraction can never choose this rewrite", op),
			})
		}
	}
}

// checkWitness evaluates one variable assignment: counts it if every
// source infers; for unconditional rules, additionally infers the
// targets and compares metas pairwise.
func checkWitness(source string, r *rewrite.Rule, bind map[string]*tensor.Meta,
	visit func(*pattern.Pat, []*tensor.Meta, *tensor.Meta), applicable, targetOK *int, unsound **Finding) {
	srcMetas := make([]*tensor.Meta, len(r.Sources))
	for i, s := range r.Sources {
		m, err := inferPat(s, bind, nil)
		if err != nil {
			return
		}
		srcMetas[i] = m
	}
	*applicable++
	tgtMetas := make([]*tensor.Meta, len(r.Targets))
	for i, t := range r.Targets {
		m, err := inferPat(t, bind, visit)
		if err != nil {
			return // ill-typed target on this witness: engine skips it at apply time
		}
		tgtMetas[i] = m
	}
	*targetOK++
	if r.Cond != nil {
		return
	}
	for i := range srcMetas {
		if !srcMetas[i].Equivalent(tgtMetas[i]) {
			*unsound = &Finding{
				Source: source, Rule: r.Name, Class: ClassShapeUnsound, Severity: SevError,
				Detail: fmt.Sprintf("witness %s: source infers %s but target infers %s — applying this rule changes the value's shape",
					renderBind(bind), srcMetas[i], tgtMetas[i]),
			}
			return
		}
	}
}

// inferPat computes the meta of a pattern under a variable binding,
// invoking visit bottom-up for every successfully inferred operator
// node (with its argument metas) — the hook the cost check rides on.
func inferPat(p *pattern.Pat, bind map[string]*tensor.Meta,
	visit func(*pattern.Pat, []*tensor.Meta, *tensor.Meta)) (*tensor.Meta, error) {
	if p.IsVar() {
		m := bind[p.Var]
		if m == nil {
			return nil, fmt.Errorf("rulecheck: unbound variable %s", p.Var)
		}
		return m, nil
	}
	args := make([]*tensor.Meta, len(p.Children))
	for i, c := range p.Children {
		m, err := inferPat(c, bind, visit)
		if err != nil {
			return nil, err
		}
		args[i] = m
	}
	out, err := tensor.Infer(p.Op, p.Int, p.Str, args)
	if err != nil {
		return nil, err
	}
	if visit != nil {
		visit(p, args, out)
	}
	return out, nil
}

func renderBind(bind map[string]*tensor.Meta) string {
	names := make([]string, 0, len(bind))
	for v := range bind {
		names = append(names, v)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, v := range names {
		parts[i] = fmt.Sprintf("%s=%s", v, bind[v])
	}
	return strings.Join(parts, " ")
}
