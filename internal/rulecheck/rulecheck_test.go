package rulecheck

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"tensat/internal/cost"
	"tensat/internal/rewrite"
	"tensat/internal/rules"
	"tensat/internal/tensor"
)

func mustRule(t *testing.T, name, src, dst string) *rewrite.Rule {
	t.Helper()
	r, err := rewrite.NewRule(name, src, dst)
	if err != nil {
		t.Fatalf("NewRule(%s): %v", name, err)
	}
	return r
}

func classes(fs []Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Class
	}
	return out
}

func TestCheckRulesTable(t *testing.T) {
	cases := []struct {
		name string
		src  string
		dst  string
		want []string // finding classes, in order
	}{
		{
			name: "sound-commutativity",
			src:  "(ewadd ?x ?y)",
			dst:  "(ewadd ?y ?x)",
			want: nil,
		},
		{
			name: "sound-matmul-assoc",
			src:  "(matmul ?act (matmul ?act ?a ?b) ?c)",
			dst:  "(matmul ?act ?a (matmul ?act ?b ?c))",
			want: nil,
		},
		{
			// transpose changes the shape: classic unsound rewrite.
			name: "unsound-transpose-noop",
			src:  "(transpose ?x \"1 0\")",
			dst:  "?x",
			want: []string{ClassShapeUnsound},
		},
		{
			// swapping matmul operands changes the result shape
			// whenever it is typeable at all.
			name: "unsound-matmul-swap",
			src:  "(matmul ?act ?a ?b)",
			dst:  "(matmul ?act ?b ?a)",
			want: []string{ClassShapeUnsound},
		},
		{
			// ?x must be both a tensor (ewadd) and an axis (split):
			// the per-variable candidate intersection is empty.
			name: "conflicting-kinds",
			src:  "(ewadd ?x (split0 (split ?x ?y)))",
			dst:  "?y",
			want: []string{ClassNoWitness},
		},
		{
			// relu of an integer parameter can never be well-typed.
			name: "no-witness-kind",
			src:  "(relu (split ?a (ewadd ?x ?x)))",
			dst:  "(ewadd ?x ?x)",
			want: []string{ClassNoWitness},
		},
	}
	model := cost.NewT4()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := mustRule(t, tc.name, tc.src, tc.dst)
			got := CheckRules("test", []*rewrite.Rule{r}, model)
			if len(got) != len(tc.want) {
				t.Fatalf("findings = %v, want classes %v", got, tc.want)
			}
			for i := range got {
				if got[i].Class != tc.want[i] {
					t.Fatalf("finding %d class = %s, want %s (%v)", i, got[i].Class, tc.want[i], got)
				}
				if got[i].Rule != tc.name {
					t.Fatalf("finding %d rule = %q, want %q", i, got[i].Rule, tc.name)
				}
			}
		})
	}
}

func TestUnsoundFindingIsError(t *testing.T) {
	r := mustRule(t, "bad", "(transpose ?x \"1 0\")", "?x")
	fs := CheckRules("test", []*rewrite.Rule{r}, nil)
	if !HasErrors(fs) {
		t.Fatalf("shape-unsound must be error severity: %v", fs)
	}
	if len(fs) != 1 || fs[0].Severity != SevError {
		t.Fatalf("findings = %v", fs)
	}
	if !strings.Contains(fs[0].Detail, "witness") {
		t.Fatalf("detail should carry the counterexample witness: %q", fs[0].Detail)
	}
}

// blindModel prices matmul at +Inf — simulating a rule set that
// rewrites into an operator the active cost model has no entry for.
type blindModel struct{ cost.Model }

func (b blindModel) NodeCost(op tensor.Op, ival int64, sval string, args []*tensor.Meta) float64 {
	if op == tensor.OpMatmul {
		return math.Inf(1)
	}
	return b.Model.NodeCost(op, ival, sval, args)
}

func TestUncostedOp(t *testing.T) {
	r := mustRule(t, "fuse", "(relu (matmul 0 ?a ?b))", "(matmul 2 ?a ?b)")
	fs := CheckRules("test", []*rewrite.Rule{r}, blindModel{cost.NewT4()})
	var hit bool
	for _, f := range fs {
		if f.Class == ClassUncostedOp {
			hit = true
			if f.Severity != SevWarning {
				t.Fatalf("uncosted-op severity = %s", f.Severity)
			}
			if !strings.Contains(f.Detail, "matmul") {
				t.Fatalf("detail should name the operator: %q", f.Detail)
			}
		}
		if f.Class == ClassShapeUnsound {
			t.Fatalf("rule is shape-sound, got %v", f)
		}
	}
	if !hit {
		t.Fatalf("expected an uncosted-op finding, got %v", fs)
	}
	// The same rule under the full model is clean.
	if fs := CheckRules("test", []*rewrite.Rule{r}, cost.NewT4()); len(fs) != 0 {
		t.Fatalf("t4 prices matmul, expected no findings: %v", fs)
	}
}

func TestBuiltinRuleSetsAreClean(t *testing.T) {
	model := cost.NewT4()
	for _, tc := range []struct {
		name string
		rs   []*rewrite.Rule
	}{
		{"default", rules.Default()},
		{"single", rules.Single()},
		{"multi", rules.Multi()},
	} {
		if fs := CheckRules("builtin:"+tc.name, tc.rs, model); len(fs) != 0 {
			t.Errorf("builtin %s rule set has findings:\n%s", tc.name, renderFindings(fs))
		}
	}
}

func TestShippedProfilesAreClean(t *testing.T) {
	fs, err := CheckDir(filepath.Join("..", "..", "profiles", "rules"), cost.NewT4())
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Errorf("shipped profiles have findings:\n%s", renderFindings(fs))
	}
}

func TestCheckFileLoadError(t *testing.T) {
	fs := CheckFile(filepath.Join(t.TempDir(), "missing.rules"), nil)
	if len(fs) != 1 || fs[0].Class != ClassLoadError || fs[0].Severity != SevError {
		t.Fatalf("findings = %v", fs)
	}
}

func renderFindings(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString("  " + f.String() + "\n")
	}
	return b.String()
}
