// Package canonid implements the tensatlint analyzer enforcing e-graph
// ID canonicalization discipline: an expression used to index a map
// whose key type is a ClassID must be canonical — produced by
// find/canonicalization (Find, Canonicalize, Lookup), read from an
// already-canonical source (a Class.ID field, the keys of another
// ClassID-keyed map), or explicitly annotated //lint:canonical with a
// justification. IDs returned by Add and Union go stale after later
// unions; indexing a class map with a stale ID silently misses the
// class (map reads) or resurrects a dead one (map writes) — the
// hardest-to-reproduce bug class in an e-graph.
package canonid

import (
	"go/ast"
	"go/token"
	"go/types"

	"tensat/internal/analysis"
)

// Analyzer is the canonical-ID invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "canonid",
	Doc: "check that ClassID-keyed maps are only indexed with canonicalized IDs " +
		"(via Find/Canonicalize, a Class.ID, a ClassID-keyed map key, or //lint:canonical)",
	Run: run,
}

// canonicalizers are the function/method names whose ClassID results
// are canonical by contract. Find/find/Canonicalize/Lookup resolve to
// representatives; makeSet returns a freshly created root (its own
// representative by construction) and union returns the new root of
// the merged set.
var canonicalizers = map[string]bool{
	"Find":         true,
	"find":         true,
	"Canonicalize": true,
	"Lookup":       true,
	"makeSet":      true,
	"union":        true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Parameters listed in a //lint:canonical directive on the function
	// declaration are trusted: the function's contract is that callers
	// pass canonical IDs.
	trusted := make(map[types.Object]bool)
	if args, ok := pass.Pkg.LineDirective(fd.Pos(), "canonical"); ok {
		for _, name := range fieldNames(args) {
			if obj := lookupParam(pass, fd, name); obj != nil {
				trusted[obj] = true
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		idx, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		m, ok := pass.Pkg.Info.Types[idx.X]
		if !ok {
			return true
		}
		mt, ok := m.Type.Underlying().(*types.Map)
		if !ok || !isClassID(mt.Key()) {
			return true
		}
		if _, ok := pass.Pkg.LineDirective(idx.Pos(), "canonical"); ok {
			return true
		}
		if isCanonical(pass, fd, trusted, idx.Index, idx.Pos(), 0) {
			return true
		}
		pass.Reportf(idx.Index.Pos(),
			"ClassID map indexed with a value not canonicalized through Find: stale IDs (from Add/Union before a Rebuild) silently miss or split e-classes; pass it through Find, or annotate the line //lint:canonical <why>")
		return true
	})
}

// isClassID reports whether t is a named type called ClassID.
func isClassID(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "ClassID"
}

// isCanonical reports whether e is a canonical ClassID expression at
// position `use` inside fd.
func isCanonical(pass *analysis.Pass, fd *ast.FuncDecl, trusted map[types.Object]bool, e ast.Expr, use token.Pos, depth int) bool {
	if depth > 8 {
		return false
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return isCanonical(pass, fd, trusted, e.X, use, depth+1)
	case *ast.BasicLit:
		return true
	case *ast.CallExpr:
		// Canonicalizer results and explicit ClassID(...) conversions: a
		// conversion is a deliberate reinterpretation (e.g. enumerating
		// all slots 0..n), not an ID that aged across unions.
		switch fun := e.Fun.(type) {
		case *ast.SelectorExpr:
			if canonicalizers[fun.Sel.Name] {
				return true
			}
		case *ast.Ident:
			if canonicalizers[fun.Name] {
				return true
			}
			if obj := pass.Pkg.Info.Uses[fun]; obj != nil {
				if _, isType := obj.(*types.TypeName); isType {
					return true
				}
			}
		}
		return false
	case *ast.SelectorExpr:
		// A Class.ID field read is canonical: class objects come from
		// the canonical class table.
		return e.Sel.Name == "ID"
	case *ast.IndexExpr:
		// Reading the frozen canonicalization table (View.find and
		// friends) IS canonicalization: `v.find[id]` is the pure-lookup
		// equivalent of g.Find(id).
		if sel, ok := e.X.(*ast.SelectorExpr); ok && canonicalizers[sel.Sel.Name] {
			return true
		}
		if id, ok := e.X.(*ast.Ident); ok && canonicalizers[id.Name] {
			return true
		}
		return false
	case *ast.Ident:
		obj := pass.Pkg.Info.Uses[e]
		if obj == nil {
			return false
		}
		if trusted[obj] {
			return true
		}
		if def, ok := lastAssignment(pass, fd, obj, use); ok {
			switch d := def.(type) {
			case rangeKeyDef:
				return d.overCanonicalSource
			case exprDef:
				return isCanonical(pass, fd, trusted, d.rhs, d.pos, depth+1)
			}
		}
		return false
	}
	return false
}

type rangeKeyDef struct{ overCanonicalSource bool }
type exprDef struct {
	rhs ast.Expr
	pos token.Pos
}

// lastAssignment finds how obj was most recently defined before `use`:
// the latest assignment/definition lexically preceding the use. This
// is a linear approximation of real data flow — loops and goto can
// reorder execution — but e-graph code is straight-line enough that it
// holds, and the //lint:canonical escape hatch covers the rest.
func lastAssignment(pass *analysis.Pass, fd *ast.FuncDecl, obj types.Object, use token.Pos) (any, bool) {
	var best any
	var bestPos token.Pos = token.NoPos
	consider := func(pos token.Pos, def any) {
		if pos < use && pos > bestPos {
			best, bestPos = def, pos
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || resolve(pass, id) != obj {
					continue
				}
				if len(n.Rhs) == len(n.Lhs) {
					consider(n.Pos(), exprDef{rhs: n.Rhs[i], pos: n.Pos()})
				} else {
					// Multi-value assignment (id, ok := g.Lookup(n)):
					// treat the whole RHS call as the definition.
					consider(n.Pos(), exprDef{rhs: n.Rhs[0], pos: n.Pos()})
				}
			}
		case *ast.RangeStmt:
			if id, ok := n.Key.(*ast.Ident); ok && resolve(pass, id) == obj {
				consider(n.Pos(), rangeKeyDef{overCanonicalSource: canonicalRangeSource(pass, n.X)})
			}
			if id, ok := n.Value.(*ast.Ident); ok && resolve(pass, id) == obj {
				// Range *values* of a ClassID container (e.g. node
				// children) are not canonical.
				consider(n.Pos(), rangeKeyDef{overCanonicalSource: false})
			}
		}
		return true
	})
	return best, bestPos != token.NoPos
}

func resolve(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Pkg.Info.Uses[id]
}

// canonicalRangeSource reports whether ranging over x yields canonical
// ClassIDs as keys: a map keyed by ClassID, or a call to Classes().
func canonicalRangeSource(pass *analysis.Pass, x ast.Expr) bool {
	if tv, ok := pass.Pkg.Info.Types[x]; ok {
		if mt, ok := tv.Type.Underlying().(*types.Map); ok && isClassID(mt.Key()) {
			return true
		}
	}
	if call, ok := x.(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Classes" {
			return true
		}
	}
	return false
}

func lookupParam(pass *analysis.Pass, fd *ast.FuncDecl, name string) types.Object {
	for _, field := range fd.Type.Params.List {
		for _, id := range field.Names {
			if id.Name == name {
				return pass.Pkg.Info.Defs[id]
			}
		}
	}
	return nil
}

func fieldNames(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i < len(s) && s[i] != ' ' && s[i] != ',' && s[i] != '\t' {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out = append(out, s[start:i])
			start = -1
		}
	}
	return out
}
