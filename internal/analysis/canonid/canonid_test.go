package canonid_test

import (
	"testing"

	"tensat/internal/analysis/analysistest"
	"tensat/internal/analysis/canonid"
)

func TestCanonid(t *testing.T) {
	analysistest.Run(t, "testdata", canonid.Analyzer)
}
