module canonidtest

go 1.24
