// Package a is the canonid analyzer fixture: a miniature e-graph with
// every canonical and non-canonical way of indexing a ClassID map.
package a

type ClassID int

type Class struct{ ID ClassID }

type uf struct{ parent []ClassID }

func (u *uf) find(id ClassID) ClassID    { return u.parent[id] }
func (u *uf) makeSet() ClassID           { return 0 }
func (u *uf) union(a, b ClassID) ClassID { return a }

type EGraph struct {
	classes map[ClassID]*Class
	uf      uf
}

func (g *EGraph) Find(id ClassID) ClassID { return g.uf.find(id) }

// bad is the seeded violation: a raw parameter indexes the class map.
func (g *EGraph) bad(id ClassID) *Class {
	return g.classes[id] // want `ClassID map indexed with a value not canonicalized through Find`
}

func (g *EGraph) badRangeValues(ids []ClassID) {
	for _, id := range ids {
		_ = g.classes[id] // want `not canonicalized through Find`
	}
}

func (g *EGraph) goodFind(id ClassID) *Class {
	return g.classes[g.Find(id)]
}

func (g *EGraph) goodReassign(id ClassID) *Class {
	id = g.Find(id)
	return g.classes[id]
}

// goodTrusted documents a caller contract.
//
//lint:canonical id
func (g *EGraph) goodTrusted(id ClassID) *Class {
	return g.classes[id]
}

func (g *EGraph) goodAnnotated(id ClassID) *Class {
	//lint:canonical fixture: pretend the caller canonicalizes
	return g.classes[id]
}

func (g *EGraph) goodClassField(c *Class) *Class {
	return g.classes[c.ID]
}

func (g *EGraph) goodConversion(i int) *Class {
	return g.classes[ClassID(i)]
}

func (g *EGraph) goodFresh() *Class {
	id := g.uf.makeSet()
	return g.classes[id]
}

func (g *EGraph) goodUnionRoot(a, b ClassID) *Class {
	root := g.uf.union(g.Find(a), g.Find(b))
	return g.classes[root]
}

func (g *EGraph) goodRangeKeys() {
	for id := range g.classes {
		_ = g.classes[id]
	}
}

type View struct {
	find []ClassID
	byID map[ClassID]*Class
}

// goodFrozenTable reads the frozen find table, the pure-lookup
// equivalent of Find.
func (v *View) goodFrozenTable(id ClassID) *Class {
	return v.byID[v.find[id]]
}
