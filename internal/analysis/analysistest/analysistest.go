// Package analysistest runs a tensatlint analyzer over a self-contained
// testdata module and checks its diagnostics against golden expectations
// written as // want "regexp" comments, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// A testdata directory is a real Go module (its own go.mod), which the
// go tool never builds as part of the surrounding repository (path
// elements named "testdata" are skipped) — so it can hold deliberate
// invariant violations without tripping the repo-wide tensatlint run.
//
// Expectation syntax: a comment of the form
//
//	// want "regexp" "another regexp"
//
// on a source line states that the analyzer must report at least one
// diagnostic on that line matching each regexp. Diagnostics on lines
// without a matching want, and wants with no matching diagnostic, both
// fail the test.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"tensat/internal/analysis"
)

type want struct {
	pos     string // file:line
	raw     string
	re      *regexp.Regexp
	matched bool
}

// Run loads the module rooted at dir, applies the analyzer, and checks
// every diagnostic against the // want comments in the module's files.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	prog, err := analysis.Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := analysis.Run(prog, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	wants := collectWants(t, prog)
	for _, d := range diags {
		p := prog.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
		if !match(wants[key], d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching %s", w.pos, w.raw)
			}
		}
	}
}

// match marks the first unmatched want whose pattern matches msg; a
// duplicate diagnostic may also re-match an already-satisfied want.
func match(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	for _, w := range ws {
		if w.re.MatchString(msg) {
			return true
		}
	}
	return false
}

func collectWants(t *testing.T, prog *analysis.Program) map[string][]*want {
	t.Helper()
	out := make(map[string][]*want)
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					body, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					p := prog.Fset.Position(c.Pos())
					pos := fmt.Sprintf("%s:%d", p.Filename, p.Line)
					for _, raw := range quotedStrings(t, pos, body) {
						pat, err := strconv.Unquote(raw)
						if err != nil {
							t.Fatalf("%s: bad want string %s: %v", pos, raw, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
						}
						out[pos] = append(out[pos], &want{pos: pos, raw: raw, re: re})
					}
				}
			}
		}
	}
	return out
}

// quotedStrings splits `"a" "b"` into its Go-quoted segments.
func quotedStrings(t *testing.T, pos, s string) []string {
	t.Helper()
	var out []string
	for {
		s = strings.TrimLeft(s, " \t")
		if s == "" {
			return out
		}
		q, err := strconv.QuotedPrefix(s)
		if err != nil {
			t.Fatalf("%s: malformed want comment at %q: %v", pos, s, err)
		}
		out = append(out, q)
		s = s[len(q):]
	}
}
