// Package frozenview implements the tensatlint analyzer guarding
// frozen snapshot types: no method of a type annotated //lint:frozen
// may mutate the receiver's state, directly or through any call chain
// within the package. egraph.View is the motivating case — it is a
// read-only snapshot shared by concurrent extraction workers, and even
// an innocent-looking call like g.Find mutates (path compression), so
// the analyzer computes which functions mutate which parameters and
// follows receiver-derived values through calls.
package frozenview

import (
	"go/ast"
	"go/types"

	"tensat/internal/analysis"
)

// Analyzer is the frozen-snapshot invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "frozenview",
	Doc: "check that methods of //lint:frozen types never mutate receiver state, " +
		"directly or via calls to mutating functions (path-compressing Find included)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	frozen := frozenTypes(pass)
	if len(frozen) == 0 {
		return nil
	}
	mut := newMutSummary(pass)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			recvObj := receiverObject(pass, fd)
			if recvObj == nil || !frozen[namedOf(recvObj.Type())] {
				continue
			}
			checkFrozenMethod(pass, mut, fd, recvObj)
		}
	}
	return nil
}

// frozenTypes collects types annotated //lint:frozen in this package.
func frozenTypes(pass *analysis.Pass) map[*types.TypeName]bool {
	out := make(map[*types.TypeName]bool)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				_, marked := analysis.CommentDirective(doc, "frozen")
				if !marked {
					_, marked = pass.Pkg.LineDirective(ts.Pos(), "frozen")
				}
				if !marked {
					continue
				}
				if tn, ok := pass.Pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
					out[tn] = true
				}
			}
		}
	}
	return out
}

// checkFrozenMethod reports every statement in fd that mutates state
// reachable from the frozen receiver.
func checkFrozenMethod(pass *analysis.Pass, mut *mutSummary, fd *ast.FuncDecl, recv types.Object) {
	derived := derivedLocals(pass, fd, recv)
	report := func(pos ast.Node, format string, args ...any) {
		if _, ok := pass.Pkg.LineDirective(pos.Pos(), "frozenview-exempt"); ok {
			return
		}
		pass.Reportf(pos.Pos(), format, args...)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if root := rootObject(pass, lhs); root != nil && derived[root] {
					if _, isIdent := lhs.(*ast.Ident); isIdent {
						continue // rebinding a local, not a write through it
					}
					report(n, "method %s of frozen type writes receiver-owned state: frozen snapshots are shared read-only across goroutines", fd.Name.Name)
				}
			}
		case *ast.IncDecStmt:
			if root := rootObject(pass, n.X); root != nil && derived[root] {
				if _, isIdent := n.X.(*ast.Ident); !isIdent {
					report(n, "method %s of frozen type mutates receiver-owned state", fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkCall(pass, mut, derived, n, fd, report)
		}
		return true
	})
}

// checkCall flags calls that pass receiver-derived values into
// mutating positions: built-in delete/clear, and same-package
// functions or methods whose summary says they mutate that slot.
func checkCall(pass *analysis.Pass, mut *mutSummary, derived map[types.Object]bool, call *ast.CallExpr, fd *ast.FuncDecl, report func(ast.Node, string, ...any)) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if id.Name == "delete" || id.Name == "clear" {
			if len(call.Args) > 0 {
				if root := rootObject(pass, call.Args[0]); root != nil && derived[root] {
					report(call, "method %s of frozen type calls %s on receiver-owned state", fd.Name.Name, id.Name)
				}
			}
			return
		}
	}
	callee := mut.callee(call)
	if callee == nil {
		return
	}
	// Method call on a receiver-derived value whose method mutates its
	// receiver (e.g. v.g.Find — union-find path compression).
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && mut.mutatesReceiver(callee) {
		if root := rootObject(pass, sel.X); root != nil && derived[root] {
			report(call, "method %s of frozen type calls %s, which mutates its receiver (frozen views must stay read-only; snapshot what you need at Freeze time instead)", fd.Name.Name, callee.Name())
		}
	}
	for i, arg := range call.Args {
		if root := rootObject(pass, arg); root != nil && derived[root] && mut.mutatesParam(callee, i) {
			report(call, "method %s of frozen type passes receiver-owned state to %s, which mutates parameter %d", fd.Name.Name, callee.Name(), i)
		}
	}
}

// derivedLocals returns the receiver object plus every local variable
// assigned (lexically) from a receiver-derived expression.
func derivedLocals(pass *analysis.Pass, fd *ast.FuncDecl, recv types.Object) map[types.Object]bool {
	derived := map[types.Object]bool{recv: true}
	// Iterate to a small fixpoint: locals can chain (a := v.g; b := a.uf).
	for range 4 {
		changed := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(as.Rhs) {
					continue
				}
				obj := resolve(pass, id)
				if obj == nil || derived[obj] {
					continue
				}
				if root := rootObject(pass, as.Rhs[i]); root != nil && derived[root] {
					// Only reference-like values keep aliasing the
					// receiver's state; scalar copies do not.
					if referenceLike(obj.Type()) {
						derived[obj] = true
						changed = true
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return derived
}

// referenceLike reports whether mutating a value of type t can be
// observed through other references: pointers, maps, slices, chans,
// and structs containing them.
func referenceLike(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if referenceLike(u.Field(i).Type()) {
				return true
			}
		}
	}
	return false
}

// rootObject walks selectors/indexes/stars down to the base identifier
// and returns its object, or nil for non-ident-rooted expressions.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return resolve(pass, x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.CallExpr:
			// A call result is a fresh value unless it is a method on a
			// derived receiver returning internal state; treating it as
			// underived keeps the analyzer conservative-but-quiet, and
			// the mutation summaries still catch writes via the callee.
			return nil
		default:
			return nil
		}
	}
}

func resolve(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Pkg.Info.Uses[id]
}

func receiverObject(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.Pkg.Info.Defs[fd.Recv.List[0].Names[0]]
}

func namedOf(t types.Type) *types.TypeName {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}
