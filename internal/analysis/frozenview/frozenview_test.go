package frozenview_test

import (
	"testing"

	"tensat/internal/analysis/analysistest"
	"tensat/internal/analysis/frozenview"
)

func TestFrozenview(t *testing.T) {
	analysistest.Run(t, "testdata", frozenview.Analyzer)
}
