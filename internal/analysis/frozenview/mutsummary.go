package frozenview

import (
	"go/ast"
	"go/types"

	"tensat/internal/analysis"
)

// mutSummary computes, for every function declared in the package,
// which of its slots (receiver and parameters) it mutates — directly
// (assignment, IncDec, delete, clear through the slot) or transitively
// (passing the slot, or a local derived from it, to another function
// that mutates the corresponding slot). Receiver is slot -1; parameter
// i is slot i. The computation runs to a fixpoint so mutation facts
// propagate up arbitrary same-package call chains: unionFind.find path
// compression makes EGraph.Find mutating, which makes anything calling
// g.Find on a frozen view's inner graph a finding.
//
// Approximations: function literals and cross-package callees are
// treated as non-mutating, and local derivation is lexical. Both err
// quiet rather than noisy; the frozen types this analyzer guards live
// in self-contained packages where call chains are direct.
type mutSummary struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	mut   map[*types.Func]map[int]bool
}

const recvSlot = -1

func newMutSummary(pass *analysis.Pass) *mutSummary {
	m := &mutSummary{
		pass:  pass,
		decls: make(map[*types.Func]*ast.FuncDecl),
		mut:   make(map[*types.Func]map[int]bool),
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
					m.decls[fn] = fd
					m.mut[fn] = make(map[int]bool)
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, fd := range m.decls {
			if m.scan(fn, fd) {
				changed = true
			}
		}
	}
	return m
}

func (m *mutSummary) mutatesReceiver(fn *types.Func) bool { return m.mut[fn][recvSlot] }
func (m *mutSummary) mutatesParam(fn *types.Func, i int) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Variadic() && i >= sig.Params().Len()-1 {
		i = sig.Params().Len() - 1
	}
	return m.mut[fn][i]
}

// scan recomputes fn's mutation set; reports whether it grew.
func (m *mutSummary) scan(fn *types.Func, fd *ast.FuncDecl) bool {
	slots := m.slotObjects(fd)
	derived := m.deriveLocals(fd, slots)
	grew := false
	mark := func(mask map[int]bool) {
		for slot := range mask {
			if !m.mut[fn][slot] {
				m.mut[fn][slot] = true
				grew = true
			}
		}
	}
	slotsOf := func(e ast.Expr) map[int]bool {
		root := rootObject(m.pass, e)
		if root == nil {
			return nil
		}
		return derived[root]
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if _, isIdent := lhs.(*ast.Ident); isIdent {
					continue // rebinding a local
				}
				mark(slotsOf(lhs))
			}
		case *ast.IncDecStmt:
			if _, isIdent := n.X.(*ast.Ident); !isIdent {
				mark(slotsOf(n.X))
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && (id.Name == "delete" || id.Name == "clear") {
				if len(n.Args) > 0 {
					mark(slotsOf(n.Args[0]))
				}
				return true
			}
			callee := m.callee(n)
			if callee == nil {
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && m.mutatesReceiver(callee) {
				mark(slotsOf(sel.X))
			}
			for i, arg := range n.Args {
				if m.mutatesParam(callee, i) {
					mark(slotsOf(arg))
				}
			}
		}
		return true
	})
	return grew
}

// slotObjects maps the receiver and parameter objects to slot indexes.
func (m *mutSummary) slotObjects(fd *ast.FuncDecl) map[types.Object]int {
	out := make(map[types.Object]int)
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		if obj := m.pass.Pkg.Info.Defs[fd.Recv.List[0].Names[0]]; obj != nil {
			out[obj] = recvSlot
		}
	}
	i := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := m.pass.Pkg.Info.Defs[name]; obj != nil {
				out[obj] = i
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	return out
}

// deriveLocals maps each object to the set of slots its value aliases.
func (m *mutSummary) deriveLocals(fd *ast.FuncDecl, slots map[types.Object]int) map[types.Object]map[int]bool {
	derived := make(map[types.Object]map[int]bool, len(slots))
	for obj, slot := range slots {
		derived[obj] = map[int]bool{slot: true}
	}
	for range 4 {
		changed := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(as.Rhs) {
					continue
				}
				obj := resolve(m.pass, id)
				if obj == nil || !referenceLike(obj.Type()) {
					continue
				}
				root := rootObject(m.pass, as.Rhs[i])
				if root == nil {
					continue
				}
				for slot := range derived[root] {
					if !derived[obj][slot] {
						if derived[obj] == nil {
							derived[obj] = make(map[int]bool)
						}
						derived[obj][slot] = true
						changed = true
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return derived
}

// callee resolves a call expression to a function declared in this
// package (methods included), or nil.
func (m *mutSummary) callee(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = m.pass.Pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = m.pass.Pkg.Info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg() != m.pass.Pkg.Types {
		return nil
	}
	if _, hasDecl := m.decls[fn]; !hasDecl {
		return nil
	}
	return fn
}
