module frozentest

go 1.24
