// Package a is the frozenview analyzer fixture: a frozen snapshot type
// over a graph whose Find performs path compression (the real-world
// trap this analyzer exists for).
package a

type ClassID int

type Graph struct {
	n      int
	parent []ClassID
}

// Find mutates: path compression writes the parent table.
func (g *Graph) Find(id ClassID) ClassID {
	g.parent[id] = id
	return id
}

func (g *Graph) Size() int { return g.n }

func stomp(xs []ClassID) { xs[0] = 0 }

func reads(xs []ClassID) ClassID {
	if len(xs) > 0 {
		return xs[0]
	}
	return 0
}

// View is a read-only snapshot shared across goroutines.
//
//lint:frozen
type View struct {
	g    *Graph
	find []ClassID
	byID map[ClassID]int
}

func (v *View) BadWrite() {
	v.find[0] = 1 // want `writes receiver-owned state`
}

func (v *View) BadCallMutator(id ClassID) ClassID {
	return v.g.Find(id) // want `calls Find, which mutates its receiver`
}

func (v *View) BadDelete(id ClassID) {
	delete(v.byID, id) // want `calls delete on receiver-owned state`
}

func (v *View) BadAlias() {
	f := v.find
	f[1] = 2 // want `writes receiver-owned state`
}

func (v *View) BadPass() {
	stomp(v.find) // want `passes receiver-owned state to stomp, which mutates parameter 0`
}

func (v *View) GoodRead(id ClassID) ClassID { return v.find[id] }

func (v *View) GoodCall() int { return v.g.Size() }

func (v *View) GoodPass() ClassID { return reads(v.find) }

func (v *View) GoodLocal() int {
	n := 0
	n++
	return n
}

func (v *View) Exempt() {
	v.find[0] = 0 //lint:frozenview-exempt fixture: justified backdoor
}
