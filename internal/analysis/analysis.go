// Package analysis is a self-contained static-analysis framework for
// this repository's invariant checkers (cmd/tensatlint). It mirrors
// the shape of golang.org/x/tools/go/analysis — Analyzer, Pass,
// Diagnostic — but is built only on the standard library's go/ast,
// go/parser and go/types, because this module deliberately has zero
// external dependencies (go.mod) and must build in hermetic
// environments with no module proxy.
//
// Differences from x/tools worth knowing:
//
//   - A Pass sees the whole program, not just one package: Pass.Prog
//     holds every loaded package with full type information. The
//     project's invariants are cross-package (tensat.Options fields
//     must flow into serve's cache key), and at this module's size a
//     whole-program view is cheaper than a facts system.
//   - Directive comments (//lint:...) are first-class: the framework
//     indexes them per file and line so analyzers share one syntax for
//     exemptions and annotations.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is the one-paragraph description shown by tensatlint -help.
	Doc string
	// Run checks one package (Pass.Pkg) and reports findings through
	// Pass.Report. Analyzers enforcing whole-program invariants should
	// anchor them to a defining package (the one holding the annotated
	// declaration) so each finding is reported exactly once.
	Run func(*Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Category string // analyzer name
	Message  string
}

// Package is one type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info

	// directives indexes //lint:... comments by "file:line". Built
	// lazily by LineDirective.
	directives map[string][]string
}

// Program is the whole loaded program.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
	byPath   map[string]*Package
}

// Package returns the loaded package with the given import path.
func (p *Program) Package(path string) (*Package, bool) {
	pkg, ok := p.byPath[path]
	return pkg, ok
}

// Pass carries one analyzer run over one package.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package
	Fset     *token.FileSet

	diagnostics *[]Diagnostic
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) {
	if d.Category == "" {
		d.Category = p.Analyzer.Name
	}
	*p.diagnostics = append(*p.diagnostics, d)
}

// Reportf records a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// DirectivePrefix is the comment prefix shared by every annotation the
// analyzers understand (//lint:cachekey, //lint:canonical, ...).
const DirectivePrefix = "//lint:"

// LineDirective reports whether the source line holding pos (or the
// line just above it, where doc-style directives live) carries a
// //lint:<name> directive, and returns its argument text.
func (pkg *Package) LineDirective(pos token.Pos, name string) (string, bool) {
	if pkg.directives == nil {
		pkg.directives = make(map[string][]string)
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, DirectivePrefix) {
						continue
					}
					p := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
					pkg.directives[key] = append(pkg.directives[key], strings.TrimPrefix(c.Text, DirectivePrefix))
				}
			}
		}
	}
	p := pkg.Fset.Position(pos)
	for _, probe := range []int{p.Line, p.Line - 1} {
		key := fmt.Sprintf("%s:%d", p.Filename, probe)
		for _, d := range pkg.directives[key] {
			if d == name {
				return "", true
			}
			if strings.HasPrefix(d, name+" ") {
				return strings.TrimSpace(strings.TrimPrefix(d, name+" ")), true
			}
		}
	}
	return "", false
}

// CommentDirective scans a comment group for a //lint:<name> directive
// and returns its argument text.
func CommentDirective(cg *ast.CommentGroup, name string) (string, bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		if !strings.HasPrefix(c.Text, DirectivePrefix) {
			continue
		}
		body := strings.TrimPrefix(c.Text, DirectivePrefix)
		if body == name {
			return "", true
		}
		if strings.HasPrefix(body, name+" ") {
			return strings.TrimSpace(strings.TrimPrefix(body, name+" ")), true
		}
	}
	return "", false
}

// Run executes analyzers over every package of prog and returns the
// findings sorted by position.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range prog.Packages {
			pass := &Pass{
				Analyzer:    a,
				Prog:        prog,
				Pkg:         pkg,
				Fset:        prog.Fset,
				diagnostics: &diags,
			}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := prog.Fset.Position(diags[i].Pos), prog.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}
