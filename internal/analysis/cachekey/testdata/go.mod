module tensat

go 1.24
