// Package tensat is the cachekey analyzer fixture. The module is named
// tensat so the hardwired required-struct check fires on Options below.
package tensat

// Options deliberately lacks the //lint:cachekey directive: the
// analyzer must demand one even though nothing else refers to it.
type Options struct { // want `tensat\.Options is a cache-key struct and must carry a //lint:cachekey directive`
	NodeLimit int
}

// Knobs exercises the field-flow check: Alpha is read directly by the
// key function, Epsilon transitively through a helper, Gamma carries a
// justified exemption, Delta an unjustified one, and Beta is the
// deliberately omitted cache-key field.
//
//lint:cachekey keyfunc=tensat.knobsKey
type Knobs struct {
	Alpha int
	Beta  int // want `field Knobs\.Beta does not flow into any key function`
	// Gamma is pure observability.
	//lint:cachekey-exempt progress reporting never changes the result
	Gamma int
	//lint:cachekey-exempt
	Delta   int // want `//lint:cachekey-exempt on Knobs\.Delta needs a reason`
	Epsilon int
	hidden  int
}

func knobsKey(k *Knobs) string {
	_ = k.Alpha
	return helper(k)
}

func helper(k *Knobs) string {
	_ = k.Epsilon
	return ""
}

// Req exercises the <pkgpath>.<Type>.<method> keyfunc form.
//
//lint:cachekey keyfunc=tensat.Req.key
type Req struct {
	A int
	B int // want `field Req\.B does not flow into any key function`
}

func (r *Req) key() string {
	_ = r.A
	return ""
}

// Bad1 has a malformed directive argument.
//
//lint:cachekey bogus=thing
type Bad1 struct{ X int } // want `unknown directive argument`

// Bad2 names a key function that does not exist.
//
//lint:cachekey keyfunc=tensat.missing
type Bad2 struct{ X int } // want `key function "tensat\.missing" not found`

// Bad3 names no key functions at all.
//
//lint:cachekey
type Bad3 struct{ X int } // want `names no key functions`

func use() {
	_ = Knobs{}.hidden
}
