// Package cachekey implements the tensatlint analyzer enforcing
// cache-key completeness: every exported field of an options struct
// annotated //lint:cachekey must be read by one of the struct's
// declared key functions (or by a same-package function they call),
// or carry an explicit //lint:cachekey-exempt exemption. The serving
// layer's result cache is keyed by a canonical encoding of the
// effective options; a knob that influences results but never joins
// the key silently aliases cache entries — the bug class this
// repository shipped (and re-fixed) three times before this analyzer.
package cachekey

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"tensat/internal/analysis"
)

// Analyzer is the cachekey invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "cachekey",
	Doc: "check that every exported field of a //lint:cachekey struct flows into " +
		"its declared key functions or is //lint:cachekey-exempt",
	Run: run,
}

// required lists structs that MUST carry the //lint:cachekey
// directive, so deleting the annotation (or renaming the struct) can
// never silently disable the check. Maps package path to type names.
var required = map[string][]string{
	"tensat":                {"Options"},
	"tensat/internal/serve": {"RequestOptions"},
}

func run(pass *analysis.Pass) error {
	annotated := make(map[string]bool)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				args, ok := analysis.CommentDirective(doc, "cachekey")
				if !ok {
					continue
				}
				annotated[ts.Name.Name] = true
				checkStruct(pass, ts, args)
			}
		}
	}
	for _, name := range required[pass.Pkg.PkgPath] {
		if !annotated[name] {
			if obj := pass.Pkg.Types.Scope().Lookup(name); obj != nil {
				pass.Reportf(obj.Pos(), "%s.%s is a cache-key struct and must carry a //lint:cachekey directive naming its key functions", pass.Pkg.PkgPath, name)
			}
		}
	}
	return nil
}

// checkStruct verifies one annotated struct. The directive arguments
// name the key functions, each as keyfunc=<pkgpath>.<func> or
// keyfunc=<pkgpath>.<Type>.<method>.
func checkStruct(pass *analysis.Pass, ts *ast.TypeSpec, args string) {
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		pass.Reportf(ts.Pos(), "//lint:cachekey directive on non-struct type %s", ts.Name.Name)
		return
	}
	obj, ok := pass.Pkg.Info.Defs[ts.Name]
	if !ok {
		return
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return
	}

	var keyFuncs []*keyFunc
	var keyNames []string
	for _, field := range strings.Fields(args) {
		spec, ok := strings.CutPrefix(field, "keyfunc=")
		if !ok {
			pass.Reportf(ts.Pos(), "//lint:cachekey: unknown directive argument %q (want keyfunc=<pkgpath>.<func>)", field)
			return
		}
		kf := resolveKeyFunc(pass, spec)
		if kf == nil {
			pass.Reportf(ts.Pos(), "//lint:cachekey: key function %q not found — update the directive when renaming key functions", spec)
			return
		}
		keyFuncs = append(keyFuncs, kf)
		keyNames = append(keyNames, spec[strings.LastIndex(spec, "/")+1:])
	}
	if len(keyFuncs) == 0 {
		pass.Reportf(ts.Pos(), "//lint:cachekey on %s names no key functions (want keyfunc=<pkgpath>.<func>)", ts.Name.Name)
		return
	}

	read := make(map[string]bool)
	for _, kf := range keyFuncs {
		collectFieldReads(kf.pkg, kf.decl, named, read)
	}

	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if !name.IsExported() || read[name.Name] {
				continue
			}
			if reason, ok := exemption(pass, field, name); ok {
				if reason == "" {
					pass.Reportf(name.Pos(), "//lint:cachekey-exempt on %s.%s needs a reason (why is this knob not part of result identity?)", ts.Name.Name, name.Name)
				}
				continue
			}
			pass.Reportf(name.Pos(),
				"field %s.%s does not flow into any key function (%s) and is not //lint:cachekey-exempt: a knob that influences results but skips the cache key aliases cache entries",
				ts.Name.Name, name.Name, strings.Join(keyNames, ", "))
		}
	}
}

// exemption looks for //lint:cachekey-exempt on the field's doc or
// trailing line comment.
func exemption(pass *analysis.Pass, field *ast.Field, name *ast.Ident) (string, bool) {
	if r, ok := analysis.CommentDirective(field.Doc, "cachekey-exempt"); ok {
		return r, true
	}
	if r, ok := analysis.CommentDirective(field.Comment, "cachekey-exempt"); ok {
		return r, true
	}
	return pass.Pkg.LineDirective(name.Pos(), "cachekey-exempt")
}

type keyFunc struct {
	pkg  *analysis.Package
	decl *ast.FuncDecl
}

// resolveKeyFunc finds the declaration of a keyfunc=<spec> target
// anywhere in the loaded program.
func resolveKeyFunc(pass *analysis.Pass, spec string) *keyFunc {
	for _, pkg := range pass.Prog.Packages {
		rest, ok := strings.CutPrefix(spec, pkg.PkgPath+".")
		if !ok {
			continue
		}
		recv, name, hasRecv := strings.Cut(rest, ".")
		if !hasRecv {
			name, recv = rest, ""
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name.Name != name {
					continue
				}
				if recv != "" && receiverTypeName(fd) != recv {
					continue
				}
				if recv == "" && fd.Recv != nil {
					continue
				}
				return &keyFunc{pkg: pkg, decl: fd}
			}
		}
	}
	return nil
}

func receiverTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// collectFieldReads records every field of `target` selected inside
// decl or inside same-package functions it (transitively) calls.
func collectFieldReads(pkg *analysis.Package, decl *ast.FuncDecl, target *types.Named, read map[string]bool) {
	index := funcDecls(pkg)
	seen := make(map[*ast.FuncDecl]bool)
	var visit func(fd *ast.FuncDecl)
	visit = func(fd *ast.FuncDecl) {
		if fd == nil || seen[fd] || fd.Body == nil {
			return
		}
		seen[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				sel, ok := pkg.Info.Selections[n]
				if ok && sel.Kind() == types.FieldVal && sameNamed(sel.Recv(), target) {
					read[n.Sel.Name] = true
				}
			case *ast.CallExpr:
				if callee := calleeFunc(pkg, n); callee != nil {
					visit(index[callee])
				}
			}
			return true
		})
	}
	visit(decl)
}

// funcDecls maps each function object declared in pkg to its decl.
func funcDecls(pkg *analysis.Package) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					out[fn] = fd
				}
			}
		}
	}
	return out
}

// calleeFunc resolves a call to a same-package function object.
func calleeFunc(pkg *analysis.Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg() != pkg.Types {
		return nil
	}
	return fn
}

// sameNamed reports whether t (possibly a pointer) is the named type.
func sameNamed(t types.Type, target *types.Named) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj() == target.Obj()
}

// Describe returns a sorted list of the struct names `required`
// hard-wires, for documentation and tests.
func Describe() []string {
	var out []string
	for pkg, names := range required {
		for _, n := range names {
			out = append(out, fmt.Sprintf("%s.%s", pkg, n))
		}
	}
	sort.Strings(out)
	return out
}
