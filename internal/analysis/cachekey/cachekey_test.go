package cachekey_test

import (
	"testing"

	"tensat/internal/analysis/analysistest"
	"tensat/internal/analysis/cachekey"
)

func TestCachekey(t *testing.T) {
	analysistest.Run(t, "testdata", cachekey.Analyzer)
}

func TestDescribeListsRequiredStructs(t *testing.T) {
	got := cachekey.Describe()
	want := []string{"tensat.Options", "tensat/internal/serve.RequestOptions"}
	if len(got) != len(want) {
		t.Fatalf("Describe() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Describe() = %v, want %v", got, want)
		}
	}
}
