package ctxflow_test

import (
	"testing"

	"tensat/internal/analysis/analysistest"
	"tensat/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer)
}
