module ctxtest

go 1.24
