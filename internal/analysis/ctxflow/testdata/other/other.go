// Package other is outside ctxflow's scope: identical unbounded loops
// are not flagged here.
package other

func work(int) {}

func Saturate(items []int) {
	for _, it := range items {
		work(it)
	}
}
