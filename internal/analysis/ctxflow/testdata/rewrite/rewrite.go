// Package rewrite is the ctxflow analyzer fixture; the package base
// name puts it in the analyzer's scope.
package rewrite

import "context"

func work(int) {}

func Saturate(items []int) {
	for _, it := range items { // want `exported Saturate loops over work but accepts no context\.Context or done channel`
		work(it)
	}
}

func SaturateCtx(ctx context.Context, items []int) {
	for _, it := range items {
		if ctx.Err() != nil {
			return
		}
		work(it)
	}
}

func Ignores(ctx context.Context, items []int) { // want `Ignores accepts a cancellation input but never consults or forwards it`
	for _, it := range items {
		work(it)
	}
}

func WithDone(done <-chan struct{}, items []int) {
	for _, it := range items {
		select {
		case <-done:
			return
		default:
		}
		work(it)
	}
}

// Bounded's loop performs no calls: pure data traversal is fine.
func Bounded(items []int) int {
	total := 0
	for _, it := range items {
		total += it
	}
	return total
}

// Exempted carries a justification.
//
//lint:ctxflow-exempt one pass over an in-memory list at load time
func Exempted(items []int) {
	for _, it := range items {
		work(it)
	}
}

//lint:ctxflow-exempt
func BadExempt(items []int) { // want `//lint:ctxflow-exempt on BadExempt needs a reason`
	for _, it := range items {
		work(it)
	}
}

func Recv(ch chan int) int {
	return <-ch // want `exported Recv blocks on a channel receive but accepts no context\.Context or done channel`
}
