// Package ctxflow implements the tensatlint analyzer enforcing
// cancellation discipline in the long-running layers: exported
// functions of the rewrite, extract, ilp (with its presolve, backend
// and lpfile subpackages) and serve packages that loop or block must
// accept a context.Context (or an equivalent done channel) and
// actually consult it. Equality saturation and ILP
// extraction run for minutes; an exported entry point that loops
// without a cancellation path strands callers behind Ctrl-C and HTTP
// disconnects — the unpropagated-cancellation bug class PR 2 fixed by
// hand, now machine-checked.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"tensat/internal/analysis"
)

// Analyzer is the cancellation-discipline checker.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "check that exported looping/blocking functions in rewrite, extract, ilp " +
		"and serve accept and consult a context.Context (or done channel)",
	Run: run,
}

// scopedPackages are the package base names the invariant applies to:
// the layers whose entry points can run unboundedly long.
var scopedPackages = map[string]bool{
	"rewrite":  true,
	"extract":  true,
	"ilp":      true,
	"serve":    true,
	"presolve": true,
	"backend":  true,
	"lpfile":   true,
	// The resilience layers: peer requests retry with backoff and the
	// fault package can inject sleeps — both must stay cancelable.
	"cluster": true,
	"fault":   true,
}

func run(pass *analysis.Pass) error {
	base := pass.Pkg.PkgPath[strings.LastIndex(pass.Pkg.PkgPath, "/")+1:]
	if !scopedPackages[base] {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			switch fd.Name.Name {
			case "String", "Error", "GoString", "Format":
				// fmt interface implementations format in-memory data;
				// their loops are bounded by it.
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	if reason, ok := pass.Pkg.LineDirective(fd.Pos(), "ctxflow-exempt"); ok {
		if reason == "" {
			pass.Reportf(fd.Pos(), "//lint:ctxflow-exempt on %s needs a reason (why can this loop not outlive its caller's interest?)", fd.Name.Name)
		}
		return
	}
	cancel := cancellationParams(pass, fd)
	if len(cancel) > 0 {
		// Has a cancellation input: require that it is consulted (or at
		// least forwarded) somewhere in the body.
		used := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if ok && cancel[resolve(pass, id)] {
				used = true
			}
			return !used
		})
		if !used {
			pass.Reportf(fd.Pos(),
				"%s accepts a cancellation input but never consults or forwards it: a caller's cancel/disconnect is silently ignored", fd.Name.Name)
		}
		return
	}
	// No cancellation input: flag if the body can run unboundedly —
	// a loop that does real work (contains calls) or channel blocking.
	if pos, what := unboundedWork(pass, fd); pos != nil {
		pass.Reportf(pos.Pos(),
			"exported %s %s but accepts no context.Context or done channel: callers cannot cancel it (add a ctx parameter and check it, or annotate //lint:ctxflow-exempt <why>)",
			fd.Name.Name, what)
	}
}

// cancellationParams collects parameters that carry cancellation: a
// context.Context, or a receive-only/bidirectional struct{} channel
// conventionally named done/stop/quit/cancel.
func cancellationParams(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, field := range fd.Type.Params.List {
		for _, id := range field.Names {
			obj := pass.Pkg.Info.Defs[id]
			if obj == nil {
				continue
			}
			if isContext(obj.Type()) || isDoneChan(obj.Type(), id.Name) {
				out[obj] = true
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func isDoneChan(t types.Type, name string) bool {
	ch, ok := t.Underlying().(*types.Chan)
	if !ok || ch.Dir() == types.SendOnly {
		return false
	}
	switch name {
	case "done", "stop", "quit", "cancel":
		return true
	}
	return false
}

// unboundedWork finds the first construct that can run unboundedly
// long: a for/range loop whose body performs calls, a select, or a
// blocking channel operation. Pure data loops (no calls) are treated
// as bounded — they finish in time proportional to data already in
// memory.
func unboundedWork(pass *analysis.Pass, fd *ast.FuncDecl) (ast.Node, string) {
	var found ast.Node
	var what string
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // closures are the callee's concern
		case *ast.ForStmt:
			if loopDoesWork(n.Body) {
				found, what = n, "loops over work"
			}
			return found == nil
		case *ast.RangeStmt:
			if loopDoesWork(n.Body) {
				found, what = n, "loops over work"
			}
			return found == nil
		case *ast.SelectStmt:
			found, what = n, "blocks on channels"
		case *ast.UnaryExpr:
			// A bare receive outside a select blocks indefinitely.
			if n.Op.String() == "<-" {
				found, what = n, "blocks on a channel receive"
			}
		}
		return found == nil
	})
	return found, what
}

// loopDoesWork reports whether a loop body contains function calls —
// the signature of a loop whose per-iteration cost is unbounded.
func loopDoesWork(body *ast.BlockStmt) bool {
	work := false
	ast.Inspect(body, func(n ast.Node) bool {
		if work {
			return false
		}
		switch n.(type) {
		case *ast.CallExpr:
			work = true
		case *ast.FuncLit:
			return false
		}
		return !work
	})
	return work
}

func resolve(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Pkg.Info.Uses[id]
}
