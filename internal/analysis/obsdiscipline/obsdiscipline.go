// Package obsdiscipline implements the tensatlint analyzer enforcing
// the observability rules this repository's metrics layer depends on:
//
//  1. Instruments are registered on an obs Registry exactly once, in a
//     designated constructor (a function named newMetrics or init, or
//     one annotated //lint:metrics-init). Registration sprinkled over
//     request paths re-registers on every call — the obs registry
//     panics, and Prometheus scrapes see duplicate series.
//  2. Vec.With label arity matches the vec's declaration: a
//     CounterVec declared with two labels and observed with one
//     produces misattributed series at runtime, which no test of the
//     happy path catches.
//  3. No time.Now inside a function that already receives a start
//     time.Time: span-timed regions measure from the start their
//     caller captured; re-reading the clock silently shrinks the
//     measured window.
package obsdiscipline

import (
	"go/ast"
	"go/types"

	"tensat/internal/analysis"
)

// Analyzer is the observability-discipline checker.
var Analyzer = &analysis.Analyzer{
	Name: "obsdiscipline",
	Doc: "check metrics are registered once at init, Vec.With arity matches the " +
		"declaration, and span-timed code does not re-read the clock",
	Run: run,
}

// registrars are the obs.Registry methods that create instruments.
var registrars = map[string]bool{
	"Counter":      true,
	"CounterVec":   true,
	"Gauge":        true,
	"GaugeFunc":    true,
	"GaugeVec":     true,
	"Histogram":    true,
	"HistogramVec": true,
}

// vecRegistrars is the subset whose results carry labels.
var vecRegistrars = map[string]bool{
	"CounterVec":   true,
	"GaugeVec":     true,
	"HistogramVec": true,
}

func run(pass *analysis.Pass) error {
	if definesRegistry(pass) {
		// The instrument implementation package (and its tests) builds
		// registries as a matter of course.
		return nil
	}
	arity := make(map[types.Object]int)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkRegistrationSites(pass, fd, arity)
			checkStartParamClock(pass, fd)
		}
	}
	// Second pass: With arity, now that every declaration is known.
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			checkWithArity(pass, n, arity)
			return true
		})
	}
	return nil
}

// definesRegistry reports whether this package declares a type named
// Registry with registrar methods — i.e. it IS the metrics library.
func definesRegistry(pass *analysis.Pass) bool {
	obj := pass.Pkg.Types.Scope().Lookup("Registry")
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return false
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if registrars[named.Method(i).Name()] {
			return true
		}
	}
	return false
}

// checkRegistrationSites flags registrar calls outside designated
// metric-constructor functions, and records vec label arities.
func checkRegistrationSites(pass *analysis.Pass, fd *ast.FuncDecl, arity map[types.Object]int) {
	allowed := fd.Name.Name == "newMetrics" || fd.Name.Name == "init"
	if !allowed {
		if _, ok := pass.Pkg.LineDirective(fd.Pos(), "metrics-init"); ok {
			allowed = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !registrars[sel.Sel.Name] || !isRegistryRecv(pass, sel.X) {
			return true
		}
		if !allowed {
			if _, ok := pass.Pkg.LineDirective(call.Pos(), "metrics-init"); !ok {
				pass.Reportf(call.Pos(),
					"metric registered outside a metrics constructor: %s calls must live in newMetrics/init (or a //lint:metrics-init function) so each instrument registers exactly once",
					sel.Sel.Name)
			}
		}
		if vecRegistrars[sel.Sel.Name] {
			recordVecArity(pass, call, arity)
		}
		return true
	})
}

// isRegistryRecv reports whether e's type is (a pointer to) a named
// type called Registry.
func isRegistryRecv(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

// recordVecArity stores the declared label count for the variable or
// struct field this vec-construction call is assigned to. The label
// count is derived from the callee's signature: everything bound to
// the trailing variadic []string parameter is a label.
func recordVecArity(pass *analysis.Pass, call *ast.CallExpr, arity map[types.Object]int) {
	callee := calleeFunc(pass, call)
	if callee == nil {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || !sig.Variadic() {
		return
	}
	labels := len(call.Args) - (sig.Params().Len() - 1)
	if labels < 0 {
		return
	}
	if obj := assignTarget(pass, call); obj != nil {
		arity[obj] = labels
	}
}

// assignTarget finds the object (variable or struct field) the call's
// result is bound to: `x := r.CounterVec(...)`, `s.f = r.CounterVec(...)`,
// or a `field: r.CounterVec(...)` composite-literal entry.
func assignTarget(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	for _, file := range pass.Pkg.Files {
		if !(file.FileStart <= call.Pos() && call.Pos() < file.FileEnd) {
			continue
		}
		var found types.Object
		ast.Inspect(file, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if rhs == call && i < len(n.Lhs) {
						switch lhs := n.Lhs[i].(type) {
						case *ast.Ident:
							found = resolve(pass, lhs)
						case *ast.SelectorExpr:
							found = pass.Pkg.Info.Uses[lhs.Sel]
						}
					}
				}
			case *ast.KeyValueExpr:
				if n.Value == call {
					if key, ok := n.Key.(*ast.Ident); ok {
						found = pass.Pkg.Info.Uses[key]
					}
				}
			}
			return true
		})
		return found
	}
	return nil
}

// checkWithArity flags With calls whose argument count differs from
// the declared label count of the vec they are called on.
func checkWithArity(pass *analysis.Pass, n ast.Node, arity map[types.Object]int) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "With" || call.Ellipsis.IsValid() {
		return
	}
	var recvObj types.Object
	switch x := sel.X.(type) {
	case *ast.Ident:
		recvObj = resolve(pass, x)
	case *ast.SelectorExpr:
		recvObj = pass.Pkg.Info.Uses[x.Sel]
	}
	if recvObj == nil {
		return
	}
	want, tracked := arity[recvObj]
	if !tracked {
		return
	}
	if len(call.Args) != want {
		pass.Reportf(call.Pos(),
			"With called with %d label value(s) but %s was declared with %d label(s): mismatched arity misattributes every sample of this series",
			len(call.Args), recvObj.Name(), want)
	}
}

// checkStartParamClock flags time.Now() inside functions that already
// receive a start time.Time parameter.
func checkStartParamClock(pass *analysis.Pass, fd *ast.FuncDecl) {
	start := startParam(pass, fd)
	if start == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// Deferred/spawned closures legitimately re-read the clock
			// (e.g. measuring their own later execution).
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Now" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "time" {
			return true
		}
		if _, ok := pass.Pkg.LineDirective(call.Pos(), "obs-exempt"); ok {
			return true
		}
		pass.Reportf(call.Pos(),
			"time.Now inside a span that already receives a start time (%s): measure from the caller's start or the span silently shrinks", start.Name())
		return true
	})
}

// startParam returns the parameter of type time.Time whose name marks
// it as a span start (start, began, since, t0), if any.
func startParam(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	names := map[string]bool{"start": true, "began": true, "since": true, "t0": true, "startedAt": true}
	for _, field := range fd.Type.Params.List {
		for _, id := range field.Names {
			if !names[id.Name] {
				continue
			}
			obj := pass.Pkg.Info.Defs[id]
			if obj == nil {
				continue
			}
			if named, ok := obj.Type().(*types.Named); ok &&
				named.Obj().Name() == "Time" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "time" {
				return obj
			}
		}
	}
	return nil
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.Pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.Pkg.Info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

func resolve(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Pkg.Info.Uses[id]
}
