// Package obs is a miniature metrics library fixture. It defines a
// Registry with registrar methods, so the analyzer must skip this
// package entirely (the library itself builds instruments freely).
package obs

type Registry struct{ names []string }

type Counter struct{ n float64 }

func (c *Counter) Inc() { c.n++ }

type CounterVec struct{ labels int }

func (v *CounterVec) With(values ...string) *Counter { return &Counter{} }

type Histogram struct{}

func (h *Histogram) Observe(x float64) {}

func (r *Registry) Counter(name, help string) *Counter {
	r.names = append(r.names, name)
	return &Counter{}
}

func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	r.names = append(r.names, name)
	return &CounterVec{labels: len(labels)}
}

func (r *Registry) Histogram(name, help string) *Histogram {
	r.names = append(r.names, name)
	return &Histogram{}
}
