// Package a is the obsdiscipline analyzer fixture: registration sites,
// Vec.With arities, and span-timed clock reads.
package a

import (
	"time"

	"obstest/obs"
)

type metrics struct {
	requests *obs.CounterVec
	hits     *obs.Counter
}

func newMetrics(r *obs.Registry) *metrics {
	return &metrics{
		requests: r.CounterVec("requests_total", "requests by ruleset and cost model", "ruleset", "cost_model"),
		hits:     r.Counter("cache_hits_total", "cache hits"),
	}
}

// extraMetrics is a designated constructor by annotation.
//
//lint:metrics-init
func extraMetrics(r *obs.Registry) *obs.CounterVec {
	return r.CounterVec("extra_total", "extra", "kind")
}

func handle(m *metrics, r *obs.Registry) {
	r.Counter("oops_total", "registered per request") // want `metric registered outside a metrics constructor`
	m.requests.With("algebra").Inc()                  // want `With called with 1 label value\(s\) but requests was declared with 2 label\(s\)`
	m.requests.With("algebra", "t4").Inc()
	m.hits.Inc()
}

func record(start time.Time, h *obs.Histogram) {
	h.Observe(time.Since(start).Seconds())
	h.Observe(time.Since(time.Now()).Seconds()) // want `time\.Now inside a span that already receives a start time`
}

func recordExempt(start time.Time, h *obs.Histogram) {
	_ = start
	h.Observe(float64(time.Now().UnixNano())) //lint:obs-exempt wall-clock stamp, not a span duration
}

// recordDeferred closes over start; the closure may legitimately
// re-read the clock later.
func recordDeferred(start time.Time, h *obs.Histogram) func() {
	return func() {
		h.Observe(time.Since(start).Seconds())
		_ = time.Now()
	}
}

func init() {
	_ = newMetrics(&obs.Registry{})
	_ = extraMetrics(&obs.Registry{})
	h := &obs.Histogram{}
	record(time.Now(), h)
	recordExempt(time.Now(), h)
	recordDeferred(time.Now(), h)()
	handle(newMetrics(&obs.Registry{}), &obs.Registry{})
}
