module obstest

go 1.24
