package obsdiscipline_test

import (
	"testing"

	"tensat/internal/analysis/analysistest"
	"tensat/internal/analysis/obsdiscipline"
)

func TestObsdiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", obsdiscipline.Analyzer)
}
