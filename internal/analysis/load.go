package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Module     *struct{ Path string }
	GoFiles    []string
	Imports    []string
}

// Load builds a whole-program view of the packages matched by the
// given `go list` patterns (e.g. "./..."), rooted at dir. Every
// matched package is parsed with comments and fully type-checked.
// Standard-library imports are type-checked from $GOROOT source via
// the go/importer "source" compiler, so loading works with no
// pre-built export data and no network — the environment this module
// is built for.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	prog := &Program{Fset: fset, byPath: make(map[string]*Package)}

	// Parse everything first so type-checking can resolve
	// intra-module imports from source in dependency order.
	parsed := make(map[string][]*ast.File, len(pkgs))
	for _, lp := range pkgs {
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
			files = append(files, f)
		}
		parsed[lp.ImportPath] = files
	}

	imp := &progImporter{
		std:  importer.ForCompiler(fset, "source", nil),
		done: make(map[string]*types.Package),
	}
	order, err := topoOrder(pkgs)
	if err != nil {
		return nil, err
	}
	for _, lp := range order {
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, parsed[lp.ImportPath], info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", lp.ImportPath, err)
		}
		imp.done[lp.ImportPath] = tpkg
		pkg := &Package{
			PkgPath: lp.ImportPath,
			Dir:     lp.Dir,
			Fset:    fset,
			Files:   parsed[lp.ImportPath],
			Types:   tpkg,
			Info:    info,
		}
		prog.Packages = append(prog.Packages, pkg)
		prog.byPath[lp.ImportPath] = pkg
	}
	return prog, nil
}

// progImporter resolves module-internal imports from the packages
// already type-checked this load, and everything else (the standard
// library) from $GOROOT source.
type progImporter struct {
	std  types.Importer
	done map[string]*types.Package
}

func (i *progImporter) Import(path string) (*types.Package, error) {
	if p, ok := i.done[path]; ok {
		return p, nil
	}
	return i.std.Import(path)
}

// goList shells out to `go list -json` for package metadata; the
// toolchain owns build-constraint and module-layout knowledge, so the
// loader does not reimplement it.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list: %v: %s", err, errb.String())
	}
	dec := json.NewDecoder(&out)
	var pkgs []*listPackage
	for dec.More() {
		var lp listPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkgs = append(pkgs, &lp)
	}
	return pkgs, nil
}

// topoOrder sorts packages so every package follows the loaded
// packages it imports.
func topoOrder(pkgs []*listPackage) ([]*listPackage, error) {
	byPath := make(map[string]*listPackage, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	const (
		white = iota // unvisited
		gray         // on the current path
		black        // done
	)
	state := make(map[string]int, len(pkgs))
	var order []*listPackage
	var visit func(p *listPackage) error
	visit = func(p *listPackage) error {
		switch state[p.ImportPath] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("analysis: import cycle through %s", p.ImportPath)
		}
		state[p.ImportPath] = gray
		deps := append([]string(nil), p.Imports...)
		sort.Strings(deps)
		for _, imp := range deps {
			if dep, ok := byPath[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p.ImportPath] = black
		order = append(order, p)
		return nil
	}
	sorted := append([]*listPackage(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })
	for _, p := range sorted {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}
