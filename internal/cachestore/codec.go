package cachestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"tensat"
	"tensat/internal/tensor"
)

// CodecVersion is the current result-encoding schema. It is stamped at
// the front of every payload; Decode refuses payloads from other
// schema generations with ErrSchema so callers treat them as misses
// instead of misreading fields.
//
// Version history: v1 carried result+tensors only; v2 adds the
// KeyParts block so receivers of a record (the peer PUT surface in
// particular) can re-derive the cache key and verify it matches the
// key the record claims to answer.
const CodecVersion = 2

// KeyParts are the components the cache key is derived from: the
// request graph's canonical fingerprint, the canonical encoding of the
// effective option knobs, and the content hashes of the resolved
// rule-set and cost-model profiles. They ride inside every encoded
// record so a node handed a record for key K can recompute K from the
// record itself and reject a mislabeled one — a misconfigured (or
// version-skewed) peer must not be able to park a valid record under
// the wrong key.
type KeyParts struct {
	Fingerprint   string
	Options       string
	RuleSetHash   string
	CostModelHash string
}

// ErrSchema marks a payload written under a different codec version.
var ErrSchema = errors.New("cachestore: unknown result encoding version")

// ErrCorrupt marks a payload that does not parse under its declared
// version (truncated, or an embedded graph that no longer decodes).
var ErrCorrupt = errors.New("cachestore: corrupt result payload")

// Result flag bits (the flags byte of the version-1 payload).
const (
	flagSaturated  = 1 << 0
	flagTruncated  = 1 << 1
	flagILPOptimal = 1 << 2
)

// Encode serializes one finished optimization result, the tensor
// vocabulary of the graph that produced it (serve's cachedResult
// pair), and the cache-key derivation components into the versioned
// binary payload the store persists. The trace span tree is
// deliberately dropped: traces are in-memory observability and would
// dominate the record size.
func Encode(res *tensat.Result, tensors []string, parts KeyParts) ([]byte, error) {
	if res == nil || res.Graph == nil {
		return nil, fmt.Errorf("cachestore: cannot encode nil result/graph")
	}
	graphText, err := res.Graph.MarshalText()
	if err != nil {
		return nil, fmt.Errorf("cachestore: encoding graph: %w", err)
	}
	buf := make([]byte, 0, 256+len(graphText))
	buf = binary.LittleEndian.AppendUint16(buf, CodecVersion)
	for _, part := range []string{parts.Fingerprint, parts.Options, parts.RuleSetHash, parts.CostModelHash} {
		if len(part) > math.MaxUint16 {
			return nil, fmt.Errorf("cachestore: key component %d bytes exceeds encoding limit", len(part))
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(part)))
		buf = append(buf, part...)
	}
	buf = appendBytes32(buf, graphText)
	if len(tensors) > math.MaxUint16 {
		return nil, fmt.Errorf("cachestore: %d tensor names exceed encoding limit", len(tensors))
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(tensors)))
	for _, name := range tensors {
		if len(name) > math.MaxUint16 {
			return nil, fmt.Errorf("cachestore: tensor name %d bytes exceeds encoding limit", len(name))
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
		buf = append(buf, name...)
	}
	for _, f := range []float64{res.OrigCost, res.OptCost, res.SpeedupPercent} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	}
	for _, d := range []time.Duration{res.ExploreTime, res.ExtractTime, res.ApplyTime, res.RebuildTime} {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(d))
	}
	for _, n := range []int{res.ENodes, res.EClasses, res.Iterations, res.FilteredNodes} {
		buf = appendCount(buf, n)
	}
	var flags byte
	if res.Saturated {
		flags |= flagSaturated
	}
	if res.Truncated {
		flags |= flagTruncated
	}
	if res.ILPOptimal {
		flags |= flagILPOptimal
	}
	buf = append(buf, flags)

	buf = binary.LittleEndian.AppendUint64(buf, uint64(res.Search.Time))
	for _, n := range []int{res.Search.Scanned, res.Search.Pruned,
		res.Search.Dirty, res.Search.Clean, res.Search.Matches} {
		buf = appendCount(buf, n)
	}

	if len(res.ILP.Solver) > math.MaxUint16 {
		return nil, fmt.Errorf("cachestore: ILP solver name too long")
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(res.ILP.Solver)))
	buf = append(buf, res.ILP.Solver...)
	buf = appendCount(buf, res.ILP.Workers)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(res.ILP.Explored))
	for _, n := range []int{res.ILP.Incumbents, res.ILP.PresolveFixed,
		res.ILP.PresolveDropped, res.ILP.PresolveRemoved} {
		buf = appendCount(buf, n)
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(res.ILP.PresolveRatio))
	return buf, nil
}

// Decode parses a payload written by Encode back into the result, its
// tensor vocabulary, and the cache-key components. Payloads from other
// codec versions return ErrSchema; malformed payloads return
// ErrCorrupt.
func Decode(payload []byte) (*tensat.Result, []string, KeyParts, error) {
	var parts KeyParts
	r := reader{buf: payload}
	if v := r.uint16(); v != CodecVersion {
		if r.err != nil {
			return nil, nil, parts, fmt.Errorf("%w: %v", ErrCorrupt, r.err)
		}
		return nil, nil, parts, fmt.Errorf("%w: got %d, want %d", ErrSchema, v, CodecVersion)
	}
	parts.Fingerprint = string(r.bytes16())
	parts.Options = string(r.bytes16())
	parts.RuleSetHash = string(r.bytes16())
	parts.CostModelHash = string(r.bytes16())
	graphText := r.bytes32()
	nTensors := int(r.uint16())
	tensors := make([]string, 0, nTensors)
	for i := 0; i < nTensors && r.err == nil; i++ {
		tensors = append(tensors, string(r.bytes16()))
	}
	res := &tensat.Result{}
	res.OrigCost = r.float64()
	res.OptCost = r.float64()
	res.SpeedupPercent = r.float64()
	res.ExploreTime = time.Duration(r.uint64())
	res.ExtractTime = time.Duration(r.uint64())
	res.ApplyTime = time.Duration(r.uint64())
	res.RebuildTime = time.Duration(r.uint64())
	res.ENodes = r.count()
	res.EClasses = r.count()
	res.Iterations = r.count()
	res.FilteredNodes = r.count()
	flags := r.byte()
	res.Saturated = flags&flagSaturated != 0
	res.Truncated = flags&flagTruncated != 0
	res.ILPOptimal = flags&flagILPOptimal != 0

	res.Search.Time = time.Duration(r.uint64())
	res.Search.Scanned = r.count()
	res.Search.Pruned = r.count()
	res.Search.Dirty = r.count()
	res.Search.Clean = r.count()
	res.Search.Matches = r.count()

	res.ILP.Solver = string(r.bytes16())
	res.ILP.Workers = r.count()
	res.ILP.Explored = int64(r.uint64())
	res.ILP.Incumbents = r.count()
	res.ILP.PresolveFixed = r.count()
	res.ILP.PresolveDropped = r.count()
	res.ILP.PresolveRemoved = r.count()
	res.ILP.PresolveRatio = r.float64()
	if r.err != nil {
		return nil, nil, parts, fmt.Errorf("%w: %v", ErrCorrupt, r.err)
	}
	if len(r.buf) != r.off {
		return nil, nil, parts, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.buf)-r.off)
	}
	g, err := tensor.UnmarshalGraph(graphText)
	if err != nil {
		return nil, nil, parts, fmt.Errorf("%w: embedded graph: %v", ErrCorrupt, err)
	}
	res.Graph = g
	return res, tensors, parts, nil
}

func appendBytes32(buf, b []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

// appendCount encodes a non-negative int as u32 (clamped at 0; result
// counters are never negative).
func appendCount(buf []byte, n int) []byte {
	if n < 0 {
		n = 0
	}
	return binary.LittleEndian.AppendUint32(buf, uint32(n))
}

// reader is a bounds-checked little-endian cursor: the first overrun
// latches err and every later read returns zero values, so Decode can
// parse straight through and check once.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("truncated at offset %d (need %d bytes)", r.off, n)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) byte() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) uint16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) uint32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) uint64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) float64() float64 { return math.Float64frombits(r.uint64()) }

func (r *reader) count() int { return int(r.uint32()) }

func (r *reader) bytes16() []byte { return r.take(int(r.uint16())) }

func (r *reader) bytes32() []byte { return r.take(int(r.uint32())) }
