package cachestore

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"tensat/internal/fault"
)

// TestCrashDuringCompaction simulates a process that died between
// writing the compaction temp file and renaming it over the log: the
// next Open must serve every record from the (still authoritative) old
// log and remove the orphaned temp file.
func TestCrashDuringCompaction(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"a": "alpha", "b": "beta", "c": "gamma"}
	for k, v := range want {
		if err := s.Put(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite to create dead bytes a compaction would want to reclaim.
	want["a"] = "alpha-v2"
	if err := s.Put("a", []byte(want["a"])); err != nil {
		t.Fatal(err)
	}

	// Kill the compaction at the rename: the temp file is fully written
	// and fsync'd, but never swapped in — exactly the crash window.
	fault.Arm("store.compact.rename", fault.Action{Mode: fault.ModeError, Count: 1})
	if err := s.Compact(); err == nil {
		t.Fatal("Compact succeeded despite injected rename failure")
	}
	fault.Reset()

	// The failed compaction cleans its own temp file; recreate one to
	// model a hard crash (SIGKILL) where the deferred remove never ran.
	tmpPath := filepath.Join(dir, logName+".compact")
	if err := os.WriteFile(tmpPath, []byte("partial compaction junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after crashed compaction: %v", err)
	}
	defer s2.Close()
	if _, err := os.Stat(tmpPath); !os.IsNotExist(err) {
		t.Fatalf("stale compaction temp file survived reopen (stat err = %v)", err)
	}
	if got := s2.Len(); got != len(want) {
		t.Fatalf("Len after reopen = %d, want %d", got, len(want))
	}
	for k, v := range want {
		p, ok, err := s2.Get(k)
		if err != nil || !ok || string(p) != v {
			t.Fatalf("Get %q after reopen = %q, %v, %v (want %q)", k, p, ok, err, v)
		}
	}
	// And the store is still fully functional: a clean compaction now
	// succeeds and loses nothing.
	if err := s2.Compact(); err != nil {
		t.Fatalf("Compact after recovery: %v", err)
	}
	for k, v := range want {
		p, ok, err := s2.Get(k)
		if err != nil || !ok || string(p) != v {
			t.Fatalf("Get %q after compaction = %q, %v, %v (want %q)", k, p, ok, err, v)
		}
	}
}

// TestPutFaultLeavesStoreConsistent exercises the store.put and
// store.fsync injection points: a failed append must not corrupt the
// index, and the key must keep its previous value.
func TestPutFaultLeavesStoreConsistent(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}

	fault.Arm("store.put", fault.Action{Mode: fault.ModeENOSPC, Count: 1})
	if err := s.Put("k", []byte("v2")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Put with injected ENOSPC: err = %v", err)
	}
	p, ok, err := s.Get("k")
	if err != nil || !ok || string(p) != "v1" {
		t.Fatalf("Get after failed Put = %q, %v, %v (want v1)", p, ok, err)
	}

	fault.Arm("store.fsync", fault.Action{Mode: fault.ModeError, Count: 1})
	if err := s.Put("k", []byte("v3")); err == nil {
		t.Fatal("Put with injected fsync failure succeeded")
	}
	// The frame hit the file but was never acknowledged; the index must
	// still serve the last acknowledged value.
	p, ok, err = s.Get("k")
	if err != nil || !ok || string(p) != "v1" {
		t.Fatalf("Get after failed fsync = %q, %v, %v (want v1)", p, ok, err)
	}

	// Faults exhausted: the store works again.
	if err := s.Put("k", []byte("v4")); err != nil {
		t.Fatalf("Put after faults cleared: %v", err)
	}
	p, ok, err = s.Get("k")
	if err != nil || !ok || string(p) != "v4" {
		t.Fatalf("Get after recovery = %q, %v, %v (want v4)", p, ok, err)
	}
}

// TestGetFault exercises the store.get injection point.
func TestGetFault(t *testing.T) {
	defer fault.Reset()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	fault.Arm("store.get", fault.Action{Mode: fault.ModeError, Count: 1})
	if _, _, err := s.Get("k"); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Get with injected read fault: err = %v", err)
	}
	p, ok, err := s.Get("k")
	if err != nil || !ok || string(p) != "v" {
		t.Fatalf("Get after fault cleared = %q, %v, %v", p, ok, err)
	}
}
