package cachestore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"tensat"
)

func testResult(t testing.TB) (*tensat.Result, []string) {
	t.Helper()
	b := tensat.NewBuilder()
	x := b.Input("x", 8, 16)
	w := b.Weight("w", 16, 16)
	g, err := b.Finish(b.Relu(b.Matmul(0, x, w)))
	if err != nil {
		t.Fatal(err)
	}
	return &tensat.Result{
		Graph:          g,
		OrigCost:       12.5,
		OptCost:        7.25,
		SpeedupPercent: 72.41,
		ExploreTime:    250 * time.Millisecond,
		ExtractTime:    40 * time.Millisecond,
		ApplyTime:      11 * time.Millisecond,
		RebuildTime:    3 * time.Millisecond,
		ENodes:         321,
		EClasses:       120,
		Iterations:     7,
		Saturated:      true,
		ILPOptimal:     true,
		FilteredNodes:  4,
		Search: tensat.SearchStats{
			Time: 9 * time.Millisecond, Scanned: 1000, Pruned: 9000,
			Dirty: 50, Clean: 450, Matches: 77,
		},
		ILP: tensat.ILPStats{
			Solver: "builtin", Workers: 4, Explored: 12345, Incumbents: 3,
			PresolveFixed: 10, PresolveDropped: 20, PresolveRemoved: 5,
			PresolveRatio: 0.19,
		},
	}, []string{"x", "w"}
}

// testParts is the cache-identity stand-in codec tests embed.
var testParts = KeyParts{
	Fingerprint:   "fp-abc123",
	Options:       "20000|15|1|0|0|0|0|0|120000000000|",
	RuleSetHash:   "rh-deadbeef",
	CostModelHash: "ch-cafef00d",
}

func TestCodecRoundTrip(t *testing.T) {
	res, tensors := testResult(t)
	payload, err := Encode(res, tensors, testParts)
	if err != nil {
		t.Fatal(err)
	}
	got, gotTensors, gotParts, err := Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if gotParts != testParts {
		t.Fatalf("key parts round trip:\n got %+v\nwant %+v", gotParts, testParts)
	}
	wantText, _ := res.Graph.MarshalText()
	gotText, _ := got.Graph.MarshalText()
	if !bytes.Equal(wantText, gotText) {
		t.Fatalf("graph round trip:\n got %s\nwant %s", gotText, wantText)
	}
	if fmt.Sprint(gotTensors) != fmt.Sprint(tensors) {
		t.Fatalf("tensors = %v, want %v", gotTensors, tensors)
	}
	// Compare everything except the graph pointer by zeroing it.
	a, b := *res, *got
	a.Graph, b.Graph = nil, nil
	if a != b {
		t.Fatalf("result round trip:\n got %+v\nwant %+v", b, a)
	}
}

func TestDecodeRejectsOtherSchemas(t *testing.T) {
	res, tensors := testResult(t)
	payload, err := Encode(res, tensors, testParts)
	if err != nil {
		t.Fatal(err)
	}
	future := append([]byte(nil), payload...)
	binary.LittleEndian.PutUint16(future[:2], CodecVersion+1)
	if _, _, _, err := Decode(future); !errors.Is(err, ErrSchema) {
		t.Fatalf("future schema: err = %v, want ErrSchema", err)
	}
	// v1 records (pre key-parts) must also decode as ErrSchema — the
	// serve layer treats them as cache misses and overwrites them.
	old := append([]byte(nil), payload...)
	binary.LittleEndian.PutUint16(old[:2], CodecVersion-1)
	if _, _, _, err := Decode(old); !errors.Is(err, ErrSchema) {
		t.Fatalf("previous schema: err = %v, want ErrSchema", err)
	}
	for _, cut := range []int{1, 3, 10, len(payload) - 1} {
		if _, _, _, err := Decode(payload[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated at %d: err = %v, want ErrCorrupt", cut, err)
		}
	}
	if _, _, _, err := Decode(append(append([]byte(nil), payload...), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes: err = %v, want ErrCorrupt", err)
	}
}

func TestStorePutGetAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k1", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k2", []byte("world!")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k1", []byte("hello-v2")); err != nil { // overwrite
		t.Fatal(err)
	}
	if got := s.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if got := s.Bytes(); got != int64(len("hello-v2")+len("world!")) {
		t.Fatalf("Bytes = %d", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	p, ok, err := s2.Get("k1")
	if err != nil || !ok || string(p) != "hello-v2" {
		t.Fatalf("Get k1 after reopen = %q, %v, %v", p, ok, err)
	}
	p, ok, err = s2.Get("k2")
	if err != nil || !ok || string(p) != "world!" {
		t.Fatalf("Get k2 after reopen = %q, %v, %v", p, ok, err)
	}
	if _, ok, _ := s2.Get("missing"); ok {
		t.Fatal("Get of unknown key reported ok")
	}
}

func TestOpenTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("good", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	path := filepath.Join(dir, logName)
	// Simulate a crash mid-append: half a frame of garbage at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(append(frameMagic[:], 1, 0, 5, 0)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(path)

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open over torn tail: %v", err)
	}
	defer s2.Close()
	if p, ok, _ := s2.Get("good"); !ok || string(p) != "payload" {
		t.Fatalf("record before the tear lost: %q, %v", p, ok)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("torn tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
	// The truncated store must accept appends again.
	if err := s2.Put("more", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestOpenSkipsUnknownFrameVersions(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("keep", []byte("v")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Append a structurally valid frame stamped with a future schema
	// version, then a normal record after it: Open must skip the alien
	// record and still index the one behind it.
	path := filepath.Join(dir, logName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	alien := appendFrame(nil, "stale", []byte("old-schema"))
	binary.LittleEndian.PutUint16(alien[4:6], frameVersion+7)
	// Re-stamp the CRC over the mutated header.
	body := alien[:len(alien)-frameTrailerSize]
	binary.LittleEndian.PutUint32(alien[len(alien)-frameTrailerSize:], crc32.ChecksumIEEE(body))
	if _, err := f.Write(alien); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(appendFrame(nil, "after", []byte("new"))); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open over stale-schema record: %v", err)
	}
	defer s2.Close()
	if _, ok, _ := s2.Get("stale"); ok {
		t.Fatal("stale-schema record was indexed")
	}
	for _, key := range []string{"keep", "after"} {
		if _, ok, _ := s2.Get(key); !ok {
			t.Fatalf("record %q lost around the stale-schema skip", key)
		}
	}
}

func TestCompactReclaimsDeadBytes(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 50; i++ {
		if err := s.Put("hot", bytes.Repeat([]byte{byte(i)}, 128)); err != nil {
			t.Fatal(err)
		}
	}
	if s.DeadBytes() == 0 {
		t.Fatal("overwrites produced no dead bytes")
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := s.DeadBytes(); got != 0 {
		t.Fatalf("DeadBytes after Compact = %d", got)
	}
	p, ok, err := s.Get("hot")
	if err != nil || !ok || !bytes.Equal(p, bytes.Repeat([]byte{49}, 128)) {
		t.Fatalf("latest value lost by Compact: %v %v", ok, err)
	}
	// And the compacted file must reload.
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if p, ok, _ := s2.Get("hot"); !ok || !bytes.Equal(p, bytes.Repeat([]byte{49}, 128)) {
		t.Fatal("compacted store did not survive reopen")
	}
}

func TestAutoCompactTriggers(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.compactMinDead = 1024 // shrink the threshold for the test
	payload := bytes.Repeat([]byte{7}, 512)
	for i := 0; i < 10; i++ {
		if err := s.Put("k", payload); err != nil {
			t.Fatal(err)
		}
	}
	// Compaction runs on a background goroutine; poll until it lands.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if dead := s.DeadBytes(); dead <= 2*1024 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto-compaction never ran: %d dead bytes", s.DeadBytes())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if p, ok, err := s.Get("k"); err != nil || !ok || !bytes.Equal(p, payload) {
		t.Fatalf("latest value lost by auto-compaction: %v %v", ok, err)
	}
}

func TestOpenRefusesLockedDir(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := Open(dir); err == nil {
		t.Fatal("second Open of a live store directory succeeded")
	}
	// Releasing the lock (Close) makes the directory usable again.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	s2.Close()
}

func TestStoreConcurrentAccess(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key := fmt.Sprintf("k%d", i%5)
				if err := s.Put(key, []byte(key)); err != nil {
					t.Error(err)
					return
				}
				if p, ok, err := s.Get(key); err != nil || (ok && string(p) != key) {
					t.Errorf("Get(%s) = %q, %v, %v", key, p, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestClosedStoreErrors(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Put("k", nil); err != ErrClosed {
		t.Fatalf("Put after Close: %v, want ErrClosed", err)
	}
	if _, _, err := s.Get("k"); err != ErrClosed {
		t.Fatalf("Get after Close: %v, want ErrClosed", err)
	}
}
