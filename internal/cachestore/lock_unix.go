//go:build unix

package cachestore

import (
	"os"
	"syscall"
)

// lockExclusive takes a non-blocking exclusive advisory lock on f. It
// fails immediately when another process holds the lock — the caller
// turns that into a loud Open error instead of letting two daemons
// interleave appends on one log.
func lockExclusive(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}
