//go:build !unix

package cachestore

import "os"

// lockExclusive is a no-op where flock is unavailable: single-process
// use stays safe, and the unix builds — everything the daemon actually
// deploys on — get the real advisory lock.
func lockExclusive(*os.File) error { return nil }
