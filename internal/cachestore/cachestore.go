// Package cachestore persists optimization results across process
// restarts: a crash-safe, append-only log of (cache key, encoded
// result) records that internal/serve mounts under its in-memory LRU
// as a write-through second tier. The design goals, in order:
//
//   - Crash safety. Every Put is a single framed record appended and
//     fsync'd before it is acknowledged; a crash mid-append leaves a
//     torn tail that Open detects (CRC mismatch or short frame) and
//     truncates cleanly — everything before the tear survives.
//   - Corruption tolerance. A record whose checksum fails, or whose
//     payload no longer decodes under the current schema, is skipped
//     (and, at the tail, truncated), never fatal: a damaged store
//     degrades to a smaller warm set, not a boot failure.
//   - Schema evolution. Records carry an encoding version; Open skips
//     records from unknown (older or newer) schemas instead of
//     misreading them, so up-/downgrades keep whatever is still
//     intelligible.
//
// The file layout is a single log (results.log) in the store
// directory. The key → offset index is rebuilt by scanning at Open, so
// there is no separate index file to corrupt. Overwritten keys leave
// dead records behind; Compact (triggered automatically when dead
// bytes exceed the live set) rewrites the log atomically via a temp
// file + rename.
package cachestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"tensat/internal/fault"
)

// Store is the persistence interface serve's second cache tier talks
// to. Implementations must be safe for concurrent use. Payloads are
// opaque to the store itself; serve encodes results with Encode (the
// versioned binary codec in this package) before putting them.
type Store interface {
	// Get returns the payload stored under key, or ok=false on a miss.
	Get(key string) (payload []byte, ok bool, err error)
	// Put durably stores payload under key, replacing any prior value.
	Put(key string, payload []byte) error
	// Len reports the number of live keys.
	Len() int
	// Bytes reports the live payload bytes (excluding framing and dead
	// records) — the store's logical size.
	Bytes() int64
	// Keys lists the live keys in unspecified order.
	Keys() []string
	// Close releases the store. Get/Put after Close return ErrClosed.
	Close() error
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("cachestore: store closed")

const (
	logName = "results.log"

	// lockName is the advisory-lock file: Open takes an exclusive flock
	// on it so two processes pointed at the same store directory fail
	// loudly instead of interleaving appends and corrupting the log.
	// A separate file (not results.log itself) so compaction's
	// rename-swap of the log never drops the lock mid-lifetime.
	lockName = "LOCK"

	// frameVersion is the record framing schema. Records whose version
	// differs are skipped at Open (stale or future schema), not fatal.
	frameVersion = 1

	// frameHeaderSize is magic(4) + version(2) + keyLen(2) + payloadLen(4).
	frameHeaderSize = 12
	// frameTrailerSize is the CRC32 over header+key+payload.
	frameTrailerSize = 4

	// maxKeyLen and maxPayloadLen bound what Open will believe a frame
	// claims, so a corrupted length field cannot trigger a giant
	// allocation.
	maxKeyLen     = 1 << 12
	maxPayloadLen = 1 << 30
)

// frameMagic starts every record; scanning resynchronizes on it only
// in the trivial sense that a mismatch ends the scan (records after a
// tear are unreachable anyway without a trusted length).
var frameMagic = [4]byte{'t', 's', 'c', 's'}

// FileStore is the log-structured Store implementation.
//
// Locking discipline: wmu serializes the writers (Put appends and
// compaction) and is always acquired before mu; mu guards the index
// and file handle and is a RWMutex so concurrent Gets never queue
// behind each other — or, more importantly, behind a Put's fsync or a
// running compaction, both of which happen outside mu entirely.
type FileStore struct {
	wmu  sync.Mutex // serializes file writers; acquired before mu
	mu   sync.RWMutex
	dir  string
	f    *os.File
	lock *os.File // held flock on lockName for the store's lifetime
	size int64    // current log file size (append offset)

	index map[string]indexEntry
	live  int64 // live payload bytes
	dead  int64 // bytes of overwritten/unreadable records

	closed     bool
	compacting bool // a background compaction is scheduled or running

	// compactMinDead is how many dead bytes must accumulate (and exceed
	// the live set) before Put triggers an automatic background Compact.
	compactMinDead int64
}

type indexEntry struct {
	off        int64 // frame start offset
	payloadOff int64
	payloadLen int64
	recordLen  int64 // full frame length including trailer
}

// Open opens (creating if needed) the store in dir. A torn tail is
// truncated; records with bad checksums, unknown versions, or
// oversized fields are skipped. The returned store is ready for
// concurrent Get/Put.
func Open(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cachestore: %w", err)
	}
	lock, err := os.OpenFile(filepath.Join(dir, lockName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cachestore: %w", err)
	}
	if err := lockExclusive(lock); err != nil {
		lock.Close()
		return nil, fmt.Errorf("cachestore: store directory %s is already in use by another process: %w", dir, err)
	}
	// A leftover compaction temp file means a previous process died
	// between writing the rewrite and renaming it over the log. The old
	// log is still the authoritative copy (the rename never happened),
	// so the orphan is pure garbage — remove it rather than letting it
	// accumulate or confuse a later compaction.
	if err := os.Remove(filepath.Join(dir, logName+".compact")); err != nil && !os.IsNotExist(err) {
		lock.Close()
		return nil, fmt.Errorf("cachestore: removing stale compaction file: %w", err)
	}
	path := filepath.Join(dir, logName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		lock.Close()
		return nil, fmt.Errorf("cachestore: %w", err)
	}
	s := &FileStore{
		dir:            dir,
		f:              f,
		lock:           lock,
		index:          make(map[string]indexEntry),
		compactMinDead: 1 << 20,
	}
	if err := s.load(); err != nil {
		f.Close()
		lock.Close()
		return nil, err
	}
	return s, nil
}

// load scans the log, building the index and truncating any torn tail.
func (s *FileStore) load() error {
	info, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("cachestore: %w", err)
	}
	fileSize := info.Size()
	var off int64
	for off < fileSize {
		key, entry, next, ok := s.readFrame(off, fileSize)
		if !ok {
			// Torn or corrupted tail: keep everything before it. The
			// truncation is what makes the next append start on a clean
			// frame boundary.
			if err := s.f.Truncate(off); err != nil {
				return fmt.Errorf("cachestore: truncating torn tail: %w", err)
			}
			fileSize = off
			break
		}
		if entry.payloadLen >= 0 { // readable record (known version)
			if old, exists := s.index[key]; exists {
				s.dead += old.recordLen
				s.live -= old.payloadLen
			}
			s.index[key] = entry
			s.live += entry.payloadLen
		} else { // skipped (unknown schema version): dead weight
			s.dead += next - off
		}
		off = next
	}
	s.size = fileSize
	return nil
}

// readFrame parses one frame at off. ok=false means the frame is torn
// or corrupt (scan must stop and truncate here). A structurally valid
// frame with an unknown version returns ok=true with payloadLen=-1 so
// the scanner can skip it.
func (s *FileStore) readFrame(off, fileSize int64) (key string, e indexEntry, next int64, ok bool) {
	var hdr [frameHeaderSize]byte
	if off+frameHeaderSize > fileSize {
		return "", e, 0, false
	}
	if _, err := s.f.ReadAt(hdr[:], off); err != nil {
		return "", e, 0, false
	}
	if [4]byte(hdr[0:4]) != frameMagic {
		return "", e, 0, false
	}
	version := binary.LittleEndian.Uint16(hdr[4:6])
	keyLen := int64(binary.LittleEndian.Uint16(hdr[6:8]))
	payloadLen := int64(binary.LittleEndian.Uint32(hdr[8:12]))
	if keyLen == 0 || keyLen > maxKeyLen || payloadLen > maxPayloadLen {
		return "", e, 0, false
	}
	recordLen := frameHeaderSize + keyLen + payloadLen + frameTrailerSize
	if off+recordLen > fileSize {
		return "", e, 0, false
	}
	body := make([]byte, keyLen+payloadLen+frameTrailerSize)
	if _, err := s.f.ReadAt(body, off+frameHeaderSize); err != nil {
		return "", e, 0, false
	}
	crc := crc32.ChecksumIEEE(hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, body[:keyLen+payloadLen])
	if crc != binary.LittleEndian.Uint32(body[keyLen+payloadLen:]) {
		return "", e, 0, false
	}
	next = off + recordLen
	if version != frameVersion {
		// Valid frame from another schema generation: skippable.
		return "", indexEntry{payloadLen: -1}, next, true
	}
	key = string(body[:keyLen])
	return key, indexEntry{
		off:        off,
		payloadOff: off + frameHeaderSize + keyLen,
		payloadLen: payloadLen,
		recordLen:  recordLen,
	}, next, true
}

// Get implements Store. It holds only the read lock — concurrent Gets
// proceed in parallel, and a Put's append+fsync (or a running
// compaction) never blocks them.
func (s *FileStore) Get(key string) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	e, ok := s.index[key]
	if !ok {
		return nil, false, nil
	}
	if err := fault.Check("store.get"); err != nil {
		return nil, false, fmt.Errorf("cachestore: reading %q: %w", key, err)
	}
	payload := make([]byte, e.payloadLen)
	if _, err := s.f.ReadAt(payload, e.payloadOff); err != nil {
		return nil, false, fmt.Errorf("cachestore: reading %q: %w", key, err)
	}
	return payload, true, nil
}

// Put implements Store: append, fsync, index — in that order, so an
// acknowledged Put survives a crash. The append and fsync run under
// the writer mutex only, never the index lock, so readers proceed
// while the disk syncs; compaction is handed to a background goroutine
// instead of running on the caller.
func (s *FileStore) Put(key string, payload []byte) error {
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("cachestore: key length %d out of range", len(key))
	}
	if len(payload) > maxPayloadLen {
		return fmt.Errorf("cachestore: payload %d bytes exceeds limit", len(payload))
	}
	frame := appendFrame(nil, key, payload)
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.mu.RLock()
	f, off, closed := s.f, s.size, s.closed
	s.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	// With wmu held nothing else appends or swaps the log, so the
	// reserved offset stays valid without holding mu across the IO.
	if err := fault.Check("store.put"); err != nil {
		return fmt.Errorf("cachestore: append: %w", err)
	}
	if _, err := f.WriteAt(frame, off); err != nil {
		return fmt.Errorf("cachestore: append: %w", err)
	}
	if err := fault.Check("store.fsync"); err != nil {
		return fmt.Errorf("cachestore: fsync: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("cachestore: fsync: %w", err)
	}
	s.mu.Lock()
	s.size = off + int64(len(frame))
	if old, exists := s.index[key]; exists {
		s.dead += old.recordLen
		s.live -= old.payloadLen
	}
	s.index[key] = indexEntry{
		off:        off,
		payloadOff: off + frameHeaderSize + int64(len(key)),
		payloadLen: int64(len(payload)),
		recordLen:  int64(len(frame)),
	}
	s.live += int64(len(payload))
	trigger := s.dead > s.compactMinDead && s.dead > s.live && !s.compacting
	if trigger {
		s.compacting = true
	}
	s.mu.Unlock()
	if trigger {
		// Best effort and off the Put path: a failed compaction leaves
		// the current log intact.
		go s.backgroundCompact()
	}
	return nil
}

// backgroundCompact runs one automatic compaction triggered by Put.
func (s *FileStore) backgroundCompact() {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	_ = s.compactUnderWmu()
	s.mu.Lock()
	s.compacting = false
	s.mu.Unlock()
}

// appendFrame encodes one record frame onto buf.
func appendFrame(buf []byte, key string, payload []byte) []byte {
	start := len(buf)
	buf = append(buf, frameMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, frameVersion)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(key)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, key...)
	buf = append(buf, payload...)
	crc := crc32.ChecksumIEEE(buf[start:])
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// Compact rewrites the log with only the live records, reclaiming dead
// bytes. Put triggers it automatically in a background goroutine when
// dead bytes exceed the live set.
func (s *FileStore) Compact() error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return s.compactUnderWmu()
}

// compactUnderWmu rewrites the log. The caller holds wmu, so no writer
// can move the index or the append offset; mu is taken only to
// snapshot the index and for the final swap, so Gets keep being served
// from the old log for the whole rewrite.
func (s *FileStore) compactUnderWmu() error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	f := s.f
	// Deterministic record order (by key) so compacted logs are
	// byte-comparable across replicas holding the same entries.
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	snapshot := make(map[string]indexEntry, len(s.index))
	for k, e := range s.index {
		snapshot[k] = e
	}
	s.mu.RUnlock()
	sort.Strings(keys)

	tmpPath := filepath.Join(s.dir, logName+".compact")
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("cachestore: compact: %w", err)
	}
	defer os.Remove(tmpPath) // no-op after a successful rename

	newIndex := make(map[string]indexEntry, len(snapshot))
	var off int64
	for _, key := range keys {
		e := snapshot[key]
		payload := make([]byte, e.payloadLen)
		if _, err := f.ReadAt(payload, e.payloadOff); err != nil {
			tmp.Close()
			return fmt.Errorf("cachestore: compact read: %w", err)
		}
		frame := appendFrame(nil, key, payload)
		if _, err := tmp.WriteAt(frame, off); err != nil {
			tmp.Close()
			return fmt.Errorf("cachestore: compact write: %w", err)
		}
		newIndex[key] = indexEntry{
			off:        off,
			payloadOff: off + frameHeaderSize + int64(len(key)),
			payloadLen: e.payloadLen,
			recordLen:  int64(len(frame)),
		}
		off += int64(len(frame))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("cachestore: compact fsync: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		// Closed mid-rewrite: abandon the temp file, the old log stands.
		tmp.Close()
		return ErrClosed
	}
	if err := fault.Check("store.compact.rename"); err != nil {
		tmp.Close()
		return fmt.Errorf("cachestore: compact rename: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(s.dir, logName)); err != nil {
		tmp.Close()
		return fmt.Errorf("cachestore: compact rename: %w", err)
	}
	// Durable rename: fsync the directory so the swap itself survives a
	// crash (best effort — some filesystems refuse directory fsync).
	if d, err := os.Open(s.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	old := s.f
	s.f = tmp
	old.Close()
	s.index = newIndex
	s.size = off
	s.dead = 0
	return nil
}

// Len implements Store.
func (s *FileStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Bytes implements Store.
func (s *FileStore) Bytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.live
}

// DeadBytes reports bytes held by overwritten or unreadable records —
// what a Compact would reclaim. Observability only.
func (s *FileStore) DeadBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dead
}

// Keys implements Store.
func (s *FileStore) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.index))
	for k := range s.index {
		out = append(out, k)
	}
	return out
}

// Close implements Store. It waits for any in-flight append or
// compaction (wmu) so the log is never torn by the close, then
// releases the directory lock.
func (s *FileStore) Close() error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.f.Close()
	if s.lock != nil {
		s.lock.Close() // releases the flock
	}
	return err
}

var _ Store = (*FileStore)(nil)
