// Package cost provides the operator cost models TENSAT optimizes
// against. The paper measures each operator configuration once on an
// NVIDIA T4 through TASO's cuDNN backend (§5: "Each operator has a
// separate and independent cost, which is the measured runtime of that
// operator ... on hardware. The total cost of a graph is the sum of
// costs of each of its nodes."). This repository has no GPU, so Device
// is a deterministic analytical stand-in: per-kernel launch overhead
// plus a roofline term (max of compute and memory time) with
// utilization factors that fall off for small or heavily grouped
// kernels. The structure the search cares about is preserved:
//
//   - merging two kernels into one saves a launch and raises
//     utilization (Figures 2, 8, 9, 11 rewrites win);
//   - expressions over weights alone are free at inference time
//     (Figure 10 wins);
//   - split0/split1/reshape are zero-cost views;
//   - fused activations are nearly free, separate activation kernels
//     are not.
//
// Runtime (NewRuntime) is a second model with deterministic per-op
// deviations from the cost model, playing the role of "real" measured
// graph runtime so that cost-model/runtime discrepancy (§6.4,
// SqueezeNet) is reproducible.
package cost

import (
	"math"

	"tensat/internal/tensor"
)

// Model prices a single operator application, in microseconds, given
// the operator payloads and the metas of its arguments. Implementations
// must be deterministic: TENSAT assumes an independent per-operator
// cost (§5).
type Model interface {
	NodeCost(op tensor.Op, ival int64, sval string, args []*tensor.Meta) float64
}

// Device is the simulated accelerator. The defaults approximate a
// T4-class card; absolute values are irrelevant to the search, only
// ratios matter.
type Device struct {
	// LaunchUS is the fixed per-kernel launch overhead in microseconds.
	LaunchUS float64
	// PeakGFLOPS is the peak compute throughput.
	PeakGFLOPS float64
	// MemBWGBps is the memory bandwidth for element-wise/copy kernels.
	MemBWGBps float64
	// FusedActUS is the extra cost of a fused activation.
	FusedActUS float64
	// GroupPenalty scales down utilization per doubling of the group
	// count in grouped convolutions.
	GroupPenalty float64
}

// NewT4 returns the default simulated device.
func NewT4() *Device {
	return &Device{
		LaunchUS:     8.0,
		PeakGFLOPS:   4000,
		MemBWGBps:    220,
		FusedActUS:   0.5,
		GroupPenalty: 0.25,
	}
}

const bytesPerElem = 4 // fp32

// flopTime returns microseconds for a compute-bound kernel with a
// utilization that saturates with the work size (small kernels run at
// a fraction of peak — the reason merged kernels win).
func (d *Device) flopTime(flops float64) float64 {
	if flops <= 0 {
		return 0
	}
	util := flops / (flops + 2e7) // half of peak at 20 MFLOP
	if util < 0.02 {
		util = 0.02
	}
	return flops / (d.PeakGFLOPS * 1e3 * util) // GFLOPS -> FLOP/us
}

// memTime returns microseconds to move the given number of elements.
func (d *Device) memTime(elems float64) float64 {
	bytes := elems * bytesPerElem
	return bytes / (d.MemBWGBps * 1e3) // GB/s -> B/us
}

// NodeCost implements Model.
func (d *Device) NodeCost(op tensor.Op, ival int64, sval string, args []*tensor.Meta) float64 {
	switch op {
	case tensor.OpInt, tensor.OpStr, tensor.OpInput, tensor.OpWeight, tensor.OpNoop:
		return 0
	}
	out, err := tensor.Infer(op, ival, sval, args)
	if err != nil {
		// Ill-typed nodes are never extracted; price them prohibitively.
		return math.Inf(1)
	}
	// Anything computable from weights alone is folded at compile time.
	if out.Foldable {
		return 0
	}
	switch op {
	case tensor.OpSplit, tensor.OpSplit0, tensor.OpSplit1, tensor.OpReshape:
		// Views into an existing buffer: no kernel.
		return 0
	case tensor.OpEwadd, tensor.OpEwmul:
		vol := float64(out.Shape.Volume())
		return d.LaunchUS + d.memTime(3*vol)
	case tensor.OpRelu, tensor.OpTanh, tensor.OpSigmoid:
		vol := float64(out.Shape.Volume())
		return d.LaunchUS + d.memTime(2*vol)
	case tensor.OpTranspose:
		vol := float64(out.Shape.Volume())
		return d.LaunchUS + 1.6*d.memTime(2*vol) // strided access penalty
	case tensor.OpEnlarge, tensor.OpMerge:
		vol := float64(out.Shape.Volume())
		return d.LaunchUS + d.memTime(2*vol)
	case tensor.OpConcat2, tensor.OpConcat3, tensor.OpConcat4, tensor.OpConcat5:
		vol := float64(out.Shape.Volume())
		return d.LaunchUS + d.memTime(2*vol)
	case tensor.OpMatmul:
		a, b := args[1].Shape, args[2].Shape
		n := len(a)
		batch := 1.0
		for i := 0; i < n-2; i++ {
			batch *= float64(a[i])
		}
		flops := 2 * batch * float64(a[n-2]) * float64(a[n-1]) * float64(b[n-1])
		t := d.LaunchUS + math.Max(d.flopTime(flops), d.memTime(flopsMem(a, b)))
		if ival := args[0].IVal; ival != tensor.ActNone {
			t += d.FusedActUS
		}
		return t
	case tensor.OpConv:
		x, w := args[4].Shape, args[5].Shape
		groups := float64(x[1] / w[1])
		flops := 2 * float64(out.Shape.Volume()) * float64(w[1]*w[2]*w[3])
		ct := d.flopTime(flops)
		if groups > 1 {
			// Grouped convolutions run each group as a smaller, less
			// efficient GEMM; utilization decays with the group count.
			ct *= 1 + d.GroupPenalty*math.Log2(groups)
		}
		t := d.LaunchUS + math.Max(ct, d.memTime(float64(x[0]*x[1]*x[2]*x[3]+out.Shape.Volume())))
		if args[3].IVal != tensor.ActNone {
			t += d.FusedActUS
		}
		return t
	case tensor.OpPoolMax, tensor.OpPoolAvg:
		kh, kw := float64(args[1].IVal), float64(args[2].IVal)
		flops := float64(out.Shape.Volume()) * kh * kw
		return d.LaunchUS + math.Max(d.flopTime(flops), d.memTime(2*float64(out.Shape.Volume())))
	default:
		return math.Inf(1)
	}
}

// flopsMem estimates elements moved by a matmul.
func flopsMem(a, b tensor.Shape) float64 {
	return float64(a.Volume() + b.Volume())
}

// Runtime wraps a base model with deterministic per-op deviations,
// standing in for real on-device graph measurements. Deviations are
// chosen so that most rewrites behave as the cost model predicts, but
// data-movement ops (concat/split chains) are somewhat worse than
// modeled — the discrepancy §6.4 observes on SqueezeNet.
type Runtime struct {
	Base Model
}

// NewRuntime wraps base in the measurement model.
func NewRuntime(base Model) *Runtime { return &Runtime{Base: base} }

// NodeCost implements Model with per-op deviations.
func (r *Runtime) NodeCost(op tensor.Op, ival int64, sval string, args []*tensor.Meta) float64 {
	c := r.Base.NodeCost(op, ival, sval, args)
	if c == 0 || math.IsInf(c, 1) {
		// Views are not entirely free on device: they cost a little
		// pointer arithmetic in the runtime's launch path.
		if c == 0 {
			switch op {
			case tensor.OpSplit0, tensor.OpSplit1:
				return 0.1
			}
		}
		return c
	}
	switch op {
	case tensor.OpConcat2, tensor.OpConcat3, tensor.OpConcat4, tensor.OpConcat5:
		return c * 1.08 // concat kernels measure slightly worse than modeled
	case tensor.OpTranspose:
		return c * 1.05
	default:
		return c
	}
}

// GraphCost sums the model cost over the distinct operator nodes of a
// graph (the paper's additive cost model; sharing counted once).
func GraphCost(m Model, g *tensor.Graph) float64 {
	total := 0.0
	for _, n := range g.Nodes() {
		args := make([]*tensor.Meta, len(n.Inputs))
		for i, in := range n.Inputs {
			args[i] = in.Meta
		}
		total += m.NodeCost(n.Op, n.Int, n.Str, args)
	}
	return total
}

// SpeedupPercent returns the percentage speedup of optimized over
// original: (T_orig / T_opt - 1) * 100.
func SpeedupPercent(orig, opt float64) float64 {
	if opt <= 0 {
		return 0
	}
	return (orig/opt - 1) * 100
}
