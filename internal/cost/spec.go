package cost

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"tensat/internal/tensor"
)

// Spec is the declarative form of a simulated device: the roofline
// parameters of Device plus optional per-operator cost multipliers. It
// is the JSON schema of the device files tensatd loads with
// -device-dir, e.g.
//
//	{
//	  "name": "h100",
//	  "launch_us": 5.0,
//	  "peak_gflops": 51000,
//	  "mem_bw_gbps": 3350,
//	  "fused_act_us": 0.3,
//	  "group_penalty": 0.18,
//	  "op_scale": {"concat2": 1.2}
//	}
//
// op_scale keys are operator names as used in rule S-expressions
// (tensor.OpNames); each value multiplies the device's modeled cost
// for that operator, expressing hardware quirks the roofline terms
// miss (a weak copy engine, a slow transpose path, no native tanh).
type Spec struct {
	// Name is the profile name the registry and the HTTP surface use.
	Name string `json:"name"`
	// LaunchUS, PeakGFLOPS, MemBWGBps, FusedActUS and GroupPenalty map
	// one-to-one onto the Device fields.
	LaunchUS     float64 `json:"launch_us"`
	PeakGFLOPS   float64 `json:"peak_gflops"`
	MemBWGBps    float64 `json:"mem_bw_gbps"`
	FusedActUS   float64 `json:"fused_act_us"`
	GroupPenalty float64 `json:"group_penalty"`
	// OpScale multiplies the modeled cost of individual operators.
	OpScale map[string]float64 `json:"op_scale,omitempty"`
}

// ParseSpec decodes and validates a JSON device spec. Unknown fields
// are rejected, so a typo like "peak_gflop" fails loudly instead of
// silently modeling a zero-FLOP device.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("cost: parsing device spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the spec describes a physically meaningful device.
// The name's identifier alphabet is owned by the registry layer
// (tensat.Registry rejects names that would corrupt stats labels or
// collide with reserved labels); here only presence is required.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("cost: device spec missing name")
	}
	if !(s.PeakGFLOPS > 0) {
		return fmt.Errorf("cost: device %s: peak_gflops must be positive (got %v)", s.Name, s.PeakGFLOPS)
	}
	if !(s.MemBWGBps > 0) {
		return fmt.Errorf("cost: device %s: mem_bw_gbps must be positive (got %v)", s.Name, s.MemBWGBps)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"launch_us", s.LaunchUS},
		{"fused_act_us", s.FusedActUS},
		{"group_penalty", s.GroupPenalty},
	} {
		if f.v < 0 || math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("cost: device %s: %s must be a finite non-negative number (got %v)", s.Name, f.name, f.v)
		}
	}
	for op, scale := range s.OpScale {
		if _, ok := tensor.OpByName[op]; !ok {
			return fmt.Errorf("cost: device %s: op_scale names unknown operator %q", s.Name, op)
		}
		if !(scale > 0) || math.IsInf(scale, 0) {
			return fmt.Errorf("cost: device %s: op_scale[%q] must be a finite positive multiplier (got %v)", s.Name, op, scale)
		}
	}
	return nil
}

// Model compiles the spec into a cost model: a Device, wrapped with
// the per-operator multipliers when any are given.
func (s *Spec) Model() Model {
	d := &Device{
		LaunchUS:     s.LaunchUS,
		PeakGFLOPS:   s.PeakGFLOPS,
		MemBWGBps:    s.MemBWGBps,
		FusedActUS:   s.FusedActUS,
		GroupPenalty: s.GroupPenalty,
	}
	if len(s.OpScale) == 0 {
		return d
	}
	scale := make(map[tensor.Op]float64, len(s.OpScale))
	for name, f := range s.OpScale {
		scale[tensor.OpByName[name]] = f
	}
	return &scaledModel{base: d, scale: scale}
}

// Params counts the spec's tunable parameters (the five roofline
// scalars plus one per op_scale override), for discovery listings.
func (s *Spec) Params() int { return 5 + len(s.OpScale) }

// Hash computes the content hash of the device: a SHA-256 over the
// cost-relevant parameters, deliberately excluding Name, so two
// profiles describing the same hardware share cache entries and a
// renamed-but-unchanged device file keeps its entries across a
// registry reload.
func (s *Spec) Hash() string {
	h := sha256.New()
	io.WriteString(h, "tensat-device-v1")
	num := func(label string, v float64) {
		fmt.Fprintf(h, "|%s=%s", label, strconv.FormatFloat(v, 'g', -1, 64))
	}
	num("launch_us", s.LaunchUS)
	num("peak_gflops", s.PeakGFLOPS)
	num("mem_bw_gbps", s.MemBWGBps)
	num("fused_act_us", s.FusedActUS)
	num("group_penalty", s.GroupPenalty)
	ops := make([]string, 0, len(s.OpScale))
	for op := range s.OpScale {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		num("op_scale."+op, s.OpScale[op])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// scaledModel applies per-operator multipliers on top of a base model.
// Free operators (views, foldable weight expressions) stay free, and
// the +Inf price of ill-typed nodes is preserved.
type scaledModel struct {
	base  Model
	scale map[tensor.Op]float64
}

// NodeCost implements Model.
func (m *scaledModel) NodeCost(op tensor.Op, ival int64, sval string, args []*tensor.Meta) float64 {
	c := m.base.NodeCost(op, ival, sval, args)
	if f, ok := m.scale[op]; ok && c > 0 && !math.IsInf(c, 1) {
		return c * f
	}
	return c
}

// T4Spec is the declarative twin of NewT4: the default device, as a
// spec, so the registry can hash it like any loaded profile.
func T4Spec() *Spec {
	return &Spec{
		Name:         "t4",
		LaunchUS:     8.0,
		PeakGFLOPS:   4000,
		MemBWGBps:    220,
		FusedActUS:   0.5,
		GroupPenalty: 0.25,
	}
}

// A100Spec models an A100-class accelerator: an order of magnitude
// more compute and bandwidth than the T4, with cheaper launches —
// so small-kernel merging matters relatively more and bandwidth-bound
// rewrites relatively less.
func A100Spec() *Spec {
	return &Spec{
		Name:         "a100",
		LaunchUS:     6.0,
		PeakGFLOPS:   19500,
		MemBWGBps:    1555,
		FusedActUS:   0.4,
		GroupPenalty: 0.2,
	}
}

// CPUSpec models a server CPU: function-call-cheap "launches", modest
// throughput and bandwidth, and a relatively efficient strided-access
// path (the transpose override), so layout-shuffling rewrites price
// differently than on the GPUs.
func CPUSpec() *Spec {
	return &Spec{
		Name:         "cpu",
		LaunchUS:     0.5,
		PeakGFLOPS:   600,
		MemBWGBps:    90,
		FusedActUS:   0.05,
		GroupPenalty: 0.05,
		OpScale:      map[string]float64{"transpose": 0.7},
	}
}
