package cost

import (
	"math"
	"strings"
	"testing"

	"tensat/internal/tensor"
)

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec([]byte(`{
		"name": "x1",
		"launch_us": 5.0,
		"peak_gflops": 51000,
		"mem_bw_gbps": 3350,
		"fused_act_us": 0.3,
		"group_penalty": 0.18,
		"op_scale": {"concat2": 1.2}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "x1" || s.PeakGFLOPS != 51000 || s.OpScale["concat2"] != 1.2 {
		t.Fatalf("spec fields wrong: %+v", s)
	}
	if got := s.Params(); got != 6 {
		t.Errorf("Params() = %d, want 6", got)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		name, json, wantErr string
	}{
		{"unknown-field", `{"name":"x","peak_gflop":1,"mem_bw_gbps":1}`, "unknown field"},
		{"missing-name", `{"peak_gflops":1,"mem_bw_gbps":1}`, "missing name"},
		{"zero-peak", `{"name":"x","peak_gflops":0,"mem_bw_gbps":1}`, "peak_gflops"},
		{"zero-bw", `{"name":"x","peak_gflops":1,"mem_bw_gbps":0}`, "mem_bw_gbps"},
		{"neg-launch", `{"name":"x","peak_gflops":1,"mem_bw_gbps":1,"launch_us":-1}`, "launch_us"},
		{"bad-op", `{"name":"x","peak_gflops":1,"mem_bw_gbps":1,"op_scale":{"matmull":2}}`, "unknown operator"},
		{"bad-scale", `{"name":"x","peak_gflops":1,"mem_bw_gbps":1,"op_scale":{"matmul":0}}`, "positive multiplier"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(c.json))
			if err == nil {
				t.Fatalf("ParseSpec succeeded, want error containing %q", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not contain %q", err, c.wantErr)
			}
		})
	}
}

func TestSpecHash(t *testing.T) {
	a, b := T4Spec(), T4Spec()
	if a.Hash() != b.Hash() {
		t.Error("identical specs hash differently")
	}
	b.Name = "renamed"
	if a.Hash() != b.Hash() {
		t.Error("the name participates in the content hash; it must not")
	}
	b.MemBWGBps++
	if a.Hash() == b.Hash() {
		t.Error("parameter change does not change the hash")
	}
	if T4Spec().Hash() == A100Spec().Hash() || A100Spec().Hash() == CPUSpec().Hash() {
		t.Error("built-in devices share a content hash")
	}
	// Op overrides are order-independent (maps) but content-sensitive.
	c, d := CPUSpec(), CPUSpec()
	c.OpScale = map[string]float64{"transpose": 0.7, "concat2": 1.1}
	d.OpScale = map[string]float64{"concat2": 1.1, "transpose": 0.7}
	if c.Hash() != d.Hash() {
		t.Error("op_scale iteration order leaks into the hash")
	}
	d.OpScale["concat2"] = 1.2
	if c.Hash() == d.Hash() {
		t.Error("op_scale change does not change the hash")
	}
}

// TestT4SpecMatchesNewT4 pins the declarative twin to the programmatic
// default so the "t4" profile and DefaultCostModel never drift apart.
func TestT4SpecMatchesNewT4(t *testing.T) {
	m := T4Spec().Model()
	d, ok := m.(*Device)
	if !ok {
		t.Fatalf("T4Spec().Model() = %T, want *Device", m)
	}
	if *d != *NewT4() {
		t.Errorf("T4Spec parameters %+v drifted from NewT4 %+v", *d, *NewT4())
	}
}

func TestScaledModel(t *testing.T) {
	spec := T4Spec()
	spec.OpScale = map[string]float64{"tanh": 50}
	m := spec.Model()

	meta := &tensor.Meta{Shape: tensor.Shape{64, 256}}
	base := NewT4().NodeCost(tensor.OpTanh, 0, "", []*tensor.Meta{meta})
	scaled := m.NodeCost(tensor.OpTanh, 0, "", []*tensor.Meta{meta})
	if scaled != base*50 {
		t.Errorf("scaled tanh cost = %v, want %v", scaled, base*50)
	}
	// Unscaled ops pass through.
	other := m.NodeCost(tensor.OpRelu, 0, "", []*tensor.Meta{meta})
	if want := NewT4().NodeCost(tensor.OpRelu, 0, "", []*tensor.Meta{meta}); other != want {
		t.Errorf("unscaled relu cost = %v, want %v", other, want)
	}
	// Free ops stay free even when scaled, and the +Inf price of
	// ill-typed nodes is preserved rather than multiplied.
	spec.OpScale["input"] = 10
	spec.OpScale["matmul"] = 10
	m = spec.Model()
	if c := m.NodeCost(tensor.OpInput, 0, "x@2 2", nil); c != 0 {
		t.Errorf("scaled free op cost = %v, want 0", c)
	}
	illTyped := m.NodeCost(tensor.OpMatmul, 0, "", []*tensor.Meta{meta})
	if !math.IsInf(illTyped, 1) {
		t.Errorf("ill-typed scaled op cost = %v, want +Inf", illTyped)
	}
}
