package cost

import (
	"math"
	"testing"

	"tensat/internal/tensor"
)

func dev() *Device { return NewT4() }

func metaT(dims ...int) *tensor.Meta { return tensor.TensorMeta(tensor.Shape(dims)) }

func TestParametersAndLeavesAreFree(t *testing.T) {
	d := dev()
	if c := d.NodeCost(tensor.OpInt, 3, "", nil); c != 0 {
		t.Fatalf("int param cost %v", c)
	}
	if c := d.NodeCost(tensor.OpInput, 0, "x@4 4", nil); c != 0 {
		t.Fatalf("input cost %v", c)
	}
	if c := d.NodeCost(tensor.OpWeight, 0, "w@4 4", nil); c != 0 {
		t.Fatalf("weight cost %v", c)
	}
}

func TestMatmulCostScalesWithWork(t *testing.T) {
	d := dev()
	act := tensor.IntMeta(tensor.ActNone)
	small := d.NodeCost(tensor.OpMatmul, 0, "", []*tensor.Meta{act, metaT(8, 8), metaT(8, 8)})
	large := d.NodeCost(tensor.OpMatmul, 0, "", []*tensor.Meta{act, metaT(512, 512), metaT(512, 512)})
	if small <= 0 || large <= small {
		t.Fatalf("matmul costs: small=%v large=%v", small, large)
	}
	// Launch overhead dominates tiny kernels.
	if small < d.LaunchUS {
		t.Fatalf("small matmul %v below launch overhead %v", small, d.LaunchUS)
	}
}

func TestMergedMatmulBeatsTwoSmall(t *testing.T) {
	// The economics behind Figure 2: one (m,k)x(k,2n) matmul must be
	// cheaper than two (m,k)x(k,n) matmuls.
	d := dev()
	act := tensor.IntMeta(tensor.ActNone)
	one := d.NodeCost(tensor.OpMatmul, 0, "", []*tensor.Meta{act, metaT(64, 256), metaT(256, 512)})
	two := 2 * d.NodeCost(tensor.OpMatmul, 0, "", []*tensor.Meta{act, metaT(64, 256), metaT(256, 256)})
	if one >= two {
		t.Fatalf("merged matmul %v not cheaper than two halves %v", one, two)
	}
}

func TestFoldableExpressionsAreFree(t *testing.T) {
	d := dev()
	w1, w2 := metaT(64, 64, 3, 3), metaT(64, 64, 3, 3)
	w1.Foldable, w2.Foldable = true, true
	c := d.NodeCost(tensor.OpConcat2, 0, "", []*tensor.Meta{tensor.IntMeta(0), w1, w2})
	if c != 0 {
		t.Fatalf("concat of weights costs %v, want 0 (inference-time folding)", c)
	}
	x := metaT(64, 64, 3, 3)
	c = d.NodeCost(tensor.OpConcat2, 0, "", []*tensor.Meta{tensor.IntMeta(0), w1, x})
	if c <= 0 {
		t.Fatalf("concat with activation input costs %v, want > 0", c)
	}
}

func TestSplitAndReshapeAreFree(t *testing.T) {
	d := dev()
	cat, err := tensor.Infer(tensor.OpConcat2, 0, "", []*tensor.Meta{tensor.IntMeta(1), metaT(4, 8), metaT(4, 8)})
	if err != nil {
		t.Fatal(err)
	}
	tt, err := tensor.Infer(tensor.OpSplit, 0, "", []*tensor.Meta{tensor.IntMeta(1), cat})
	if err != nil {
		t.Fatal(err)
	}
	if c := d.NodeCost(tensor.OpSplit0, 0, "", []*tensor.Meta{tt}); c != 0 {
		t.Fatalf("split0 cost %v", c)
	}
	if c := d.NodeCost(tensor.OpReshape, 0, "", []*tensor.Meta{metaT(4, 8), tensor.StrMeta("8 4")}); c != 0 {
		t.Fatalf("reshape cost %v", c)
	}
}

func TestFusedActivationCheaperThanSeparate(t *testing.T) {
	d := dev()
	x, w := metaT(1, 64, 28, 28), metaT(64, 64, 3, 3)
	args := func(act int64) []*tensor.Meta {
		return []*tensor.Meta{
			tensor.IntMeta(1), tensor.IntMeta(1), tensor.IntMeta(tensor.PadSame),
			tensor.IntMeta(act), x, w,
		}
	}
	plain := d.NodeCost(tensor.OpConv, 0, "", args(tensor.ActNone))
	fused := d.NodeCost(tensor.OpConv, 0, "", args(tensor.ActRelu))
	out, _ := tensor.Infer(tensor.OpConv, 0, "", args(tensor.ActNone))
	relu := d.NodeCost(tensor.OpRelu, 0, "", []*tensor.Meta{out})
	if fused >= plain+relu {
		t.Fatalf("fusion not beneficial: fused=%v separate=%v", fused, plain+relu)
	}
}

func TestGroupedConvPenalty(t *testing.T) {
	d := dev()
	x := metaT(1, 64, 28, 28)
	dense := d.NodeCost(tensor.OpConv, 0, "", []*tensor.Meta{
		tensor.IntMeta(1), tensor.IntMeta(1), tensor.IntMeta(tensor.PadSame), tensor.IntMeta(0),
		x, metaT(64, 64, 3, 3)})
	grouped := d.NodeCost(tensor.OpConv, 0, "", []*tensor.Meta{
		tensor.IntMeta(1), tensor.IntMeta(1), tensor.IntMeta(tensor.PadSame), tensor.IntMeta(0),
		x, metaT(64, 2, 3, 3)})
	// Grouped conv does 1/32 the FLOPs; without a penalty it would be
	// ~32x cheaper. The penalty must keep it clearly above that, while
	// staying below the dense conv.
	if grouped*8 < dense {
		t.Fatalf("grouped conv unpenalized: grouped=%v dense=%v", grouped, dense)
	}
	if grouped > dense {
		t.Fatalf("grouped conv costlier than dense: grouped=%v dense=%v", grouped, dense)
	}
	if grouped <= d.LaunchUS {
		t.Fatalf("grouped conv below launch overhead: %v", grouped)
	}
}

func TestIllTypedNodeIsInfinite(t *testing.T) {
	d := dev()
	c := d.NodeCost(tensor.OpMatmul, 0, "", []*tensor.Meta{tensor.IntMeta(0), metaT(4, 8), metaT(9, 4)})
	if !math.IsInf(c, 1) {
		t.Fatalf("ill-typed matmul cost %v, want +inf", c)
	}
}

func TestGraphCostCountsSharingOnce(t *testing.T) {
	b := tensor.NewBuilder()
	x := b.Input("x", 64, 256)
	w := b.Weight("w", 256, 256)
	h := b.Matmul(tensor.ActNone, x, w)
	g1 := b.MustFinish(b.Ewadd(h, h)) // shared matmul
	d := dev()
	c1 := GraphCost(d, g1)

	b2 := tensor.NewBuilder()
	x2 := b2.Input("x", 64, 256)
	w2 := b2.Weight("w", 256, 256)
	wb := b2.Weight("w2", 256, 256)
	h1 := b2.Matmul(tensor.ActNone, x2, w2)
	h2 := b2.Matmul(tensor.ActNone, x2, wb)
	g2 := b2.MustFinish(b2.Ewadd(h1, h2)) // two distinct matmuls
	c2 := GraphCost(d, g2)
	if c1 >= c2 {
		t.Fatalf("sharing not counted once: shared=%v distinct=%v", c1, c2)
	}
}

func TestRuntimeDeviation(t *testing.T) {
	d := dev()
	r := NewRuntime(d)
	args := []*tensor.Meta{tensor.IntMeta(1), metaT(4, 1024), metaT(4, 1024)}
	base := d.NodeCost(tensor.OpConcat2, 0, "", args)
	measured := r.NodeCost(tensor.OpConcat2, 0, "", args)
	if measured <= base {
		t.Fatalf("runtime concat %v not above modeled %v", measured, base)
	}
	// split0 view costs a small constant at runtime.
	cat, err := tensor.Infer(tensor.OpConcat2, 0, "", args)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := tensor.Infer(tensor.OpSplit, 0, "", []*tensor.Meta{tensor.IntMeta(1), cat})
	if err != nil {
		t.Fatal(err)
	}
	if c := r.NodeCost(tensor.OpSplit0, 0, "", []*tensor.Meta{tt}); c <= 0 {
		t.Fatalf("runtime split0 cost %v, want > 0", c)
	}
	// Matmul is unchanged.
	mm := []*tensor.Meta{tensor.IntMeta(0), metaT(64, 64), metaT(64, 64)}
	if d.NodeCost(tensor.OpMatmul, 0, "", mm) != r.NodeCost(tensor.OpMatmul, 0, "", mm) {
		t.Fatal("runtime deviates on matmul")
	}
}

func TestSpeedupPercent(t *testing.T) {
	if s := SpeedupPercent(200, 100); s != 100 {
		t.Fatalf("speedup = %v, want 100", s)
	}
	if s := SpeedupPercent(100, 100); s != 0 {
		t.Fatalf("speedup = %v, want 0", s)
	}
	if s := SpeedupPercent(100, 0); s != 0 {
		t.Fatalf("speedup with zero opt = %v, want 0", s)
	}
}

func TestDeterminism(t *testing.T) {
	d := dev()
	args := []*tensor.Meta{tensor.IntMeta(0), metaT(31, 67), metaT(67, 13)}
	a := d.NodeCost(tensor.OpMatmul, 0, "", args)
	b := d.NodeCost(tensor.OpMatmul, 0, "", args)
	if a != b {
		t.Fatal("cost model nondeterministic")
	}
}
