// Package rewrite implements TENSAT's exploration phase (§4): the
// saturation runner, the multi-pattern rewrite algorithm (Algorithm 1),
// shape checking via an e-class analysis, and both cycle-filtering
// algorithms (Algorithm 2 and the vanilla variant, §5.2).
package rewrite

import (
	"fmt"

	"tensat/internal/egraph"
	"tensat/internal/tensor"
)

// ShapeAnalysis is the e-class analysis carrying tensor.Meta for every
// e-class (shape, split position, foldability), mirroring TENSAT's use
// of egg's analysis feature for shape checking (§6). Data is *tensor.Meta.
type ShapeAnalysis struct{}

// Make infers the meta of a freshly added node from its children's
// metas. Nodes are only added after shape checking, so inference is
// expected to succeed; a nil result marks an invalid class defensively.
//
//lint:ctxflow-exempt loop is bounded by the node's arity (at most a handful of children)
func (ShapeAnalysis) Make(g *egraph.EGraph, n egraph.Node) any {
	args := make([]*tensor.Meta, len(n.Children))
	for i, c := range n.Children {
		m, _ := g.Class(c).Data.(*tensor.Meta)
		if m == nil {
			return (*tensor.Meta)(nil)
		}
		args[i] = m
	}
	m, err := tensor.Infer(tensor.Op(n.Op), n.Int, n.Str, args)
	if err != nil {
		return (*tensor.Meta)(nil)
	}
	return m
}

// Merge joins two class metas. Equivalent shapes are required by
// soundness of the rules; the join keeps the split marker and
// foldability if either side has them, so that split stays applicable
// and weight-foldability is not lost when classes merge.
func (ShapeAnalysis) Merge(a, b any) (any, bool) {
	am, _ := a.(*tensor.Meta)
	bm, _ := b.(*tensor.Meta)
	if am == nil {
		return bm, bm != nil
	}
	if bm == nil {
		return am, false
	}
	changed := false
	out := am
	if !am.HasSplit && bm.HasSplit {
		out = out.Clone()
		out.HasSplit, out.SplitAxis, out.SplitAt = true, bm.SplitAxis, bm.SplitAt
		changed = true
	}
	if !am.Foldable && bm.Foldable {
		if out == am {
			out = out.Clone()
		}
		out.Foldable = true
		changed = true
	}
	return out, changed
}

// ClassMeta returns the analysis meta of a class (nil if invalid).
func ClassMeta(g *egraph.EGraph, id egraph.ClassID) *tensor.Meta {
	m, _ := g.Class(id).Data.(*tensor.Meta)
	return m
}

// Ingest loads a tensor graph into a fresh e-graph with ShapeAnalysis,
// returning the e-graph, the root e-class, and the node-to-class map.
func Ingest(t *tensor.Graph) (*egraph.EGraph, egraph.ClassID, map[*tensor.Node]egraph.ClassID, error) {
	g := egraph.New(ShapeAnalysis{})
	g.SetOpNames(tensor.OpNames())
	ids := make(map[*tensor.Node]egraph.ClassID)
	var add func(n *tensor.Node) (egraph.ClassID, error)
	add = func(n *tensor.Node) (egraph.ClassID, error) {
		if id, ok := ids[n]; ok {
			return id, nil
		}
		en := egraph.Node{Op: egraph.Op(n.Op), Int: n.Int, Str: n.Str}
		for _, in := range n.Inputs {
			cid, err := add(in)
			if err != nil {
				return 0, err
			}
			en.Children = append(en.Children, cid)
		}
		id := g.Add(en)
		if ClassMeta(g, id) == nil {
			return 0, fmt.Errorf("rewrite: node %v failed shape inference during ingest", n.Op)
		}
		ids[n] = id
		return id, nil
	}
	root, err := add(t.Root)
	if err != nil {
		return nil, 0, nil, err
	}
	return g, root, ids, nil
}
