package rewrite

import (
	"fmt"
	"math/rand"
	"testing"

	"tensat/internal/egraph"
	"tensat/internal/pattern"
	"tensat/internal/tensor"
)

// incrementalRules is a pattern mix exercising the interesting shapes:
// shallow and nested, linear and non-linear, plus shared canonical
// sources (the last two rules canonicalize to the same program).
func incrementalRules() []*Rule {
	return []*Rule{
		MustRule("comm", "(ewadd ?a ?b)", "(ewadd ?b ?a)"),
		MustRule("nest", "(ewmul (ewadd ?x ?y) ?z)", "(ewadd (ewmul ?x ?z) (ewmul ?y ?z))"),
		MustRule("same", "(ewadd ?a ?a)", "(ewmul ?a ?a)"),
		MustRule("deep", "(relu (ewadd ?a ?b))", "(relu (ewadd ?b ?a))"),
		MustRule("alias", "(relu (ewadd ?p ?q))", "(relu (ewadd ?q ?p))"),
	}
}

// mutate applies a random batch of adds and unions to g, returning
// whether anything changed.
func mutate(rng *rand.Rand, g *egraph.EGraph, ids *[]egraph.ClassID) bool {
	changed := false
	pick := func() egraph.ClassID { return (*ids)[rng.Intn(len(*ids))] }
	for i := 0; i < 3+rng.Intn(5); i++ {
		switch rng.Intn(3) {
		case 0:
			before := g.NodeCount()
			*ids = append(*ids, g.Add(egraph.NewNode(egraph.Op(tensor.OpEwadd), pick(), pick())))
			changed = changed || g.NodeCount() != before
		case 1:
			before := g.NodeCount()
			*ids = append(*ids, g.Add(egraph.NewNode(egraph.Op(tensor.OpRelu), pick())))
			changed = changed || g.NodeCount() != before
		default:
			if _, ch := g.Union(pick(), pick()); ch {
				changed = true
			}
		}
	}
	g.Rebuild()
	return changed
}

// TestIncrementalSearchEqualsFullRescan drives searchAll through
// several freeze → search → mutate rounds, comparing the incremental
// match lists (dirty re-search merged with the memo) against a fresh
// full search of the same view. This is the dirty-set completeness
// property end to end: a match appearing only through a newly-repaired
// or newly-reparented class is never missed, and the merged lists are
// identical to a full rescan — order and bindings included.
func TestIncrementalSearchEqualsFullRescan(t *testing.T) {
	cr := CompileRules(incrementalRules())
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := egraph.New(nil)
		var ids []egraph.ClassID
		for i := 0; i < 5; i++ {
			ids = append(ids, g.Add(egraph.StrNode(egraph.Op(tensor.OpInput), fmt.Sprintf("x%d", i))))
		}
		for i := 0; i < 20; i++ {
			mutate(rng, g, &ids)
		}

		r := &Runner{Workers: 1 + int(seed%4)} // cover sequential and parallel paths
		st := &searchState{matches: make([][]pattern.Compact, len(cr.pats))}
		for round := 0; round < 6; round++ {
			view := g.Freeze()
			var ex Explored
			r.searchAll(view, cr, st, &ex, nil)
			if round > 0 && ex.Stats.SearchClean == 0 && ex.Stats.SearchDirty == 0 {
				t.Fatalf("seed %d round %d: incremental path never engaged", seed, round)
			}

			// Oracle: a fresh full search of the same view.
			full := &searchState{matches: make([][]pattern.Compact, len(cr.pats))}
			r.searchAll(view, cr, full, &Explored{}, nil)
			for p := range cr.pats {
				if len(st.matches[p]) != len(full.matches[p]) {
					t.Fatalf("seed %d round %d pattern %d: incremental found %d matches, full rescan %d",
						seed, round, p, len(st.matches[p]), len(full.matches[p]))
				}
				for i := range full.matches[p] {
					a, b := st.matches[p][i], full.matches[p][i]
					if a.Class != b.Class {
						t.Fatalf("seed %d round %d pattern %d match %d: class e%d vs e%d",
							seed, round, p, i, a.Class, b.Class)
					}
					for k := range b.Bind {
						if a.Bind[k] != b.Bind[k] {
							t.Fatalf("seed %d round %d pattern %d match %d: binding %d differs",
								seed, round, p, i, k)
						}
					}
				}
			}

			mutate(rng, g, &ids)
		}
	}
}

// TestIncrementalSearchSeesRepairedMatch pins the concrete scenario of
// the dirty-set contract: a pattern match that only exists because a
// union made a descendant class match, with the match root itself
// never directly touched. The incremental search must find it.
func TestIncrementalSearchSeesRepairedMatch(t *testing.T) {
	rules := []*Rule{MustRule("nest", "(ewmul (ewadd ?x ?y) ?z)", "(ewmul ?z (ewadd ?x ?y))")}
	cr := CompileRules(rules)
	g := egraph.New(nil)
	a := g.Add(egraph.StrNode(egraph.Op(tensor.OpInput), "a"))
	b := g.Add(egraph.StrNode(egraph.Op(tensor.OpInput), "b"))
	c := g.Add(egraph.StrNode(egraph.Op(tensor.OpInput), "c"))
	add := g.Add(egraph.NewNode(egraph.Op(tensor.OpEwadd), a, b))
	mul := g.Add(egraph.NewNode(egraph.Op(tensor.OpEwmul), c, a)) // no match yet: c is a leaf

	r := &Runner{Workers: 1}
	st := &searchState{matches: make([][]pattern.Compact, len(cr.pats))}
	var ex1 Explored
	r.searchAll(g.Freeze(), cr, st, &ex1, nil)
	if len(st.matches[0]) != 0 {
		t.Fatalf("premature match: %d", len(st.matches[0]))
	}

	// c ~ add(a,b): now (ewmul (ewadd ?x ?y) ?z) matches at mul, whose
	// class was never unioned or added to.
	g.Union(c, add)
	g.Rebuild()
	var ex2 Explored
	r.searchAll(g.Freeze(), cr, st, &ex2, nil)
	if ex2.Stats.SearchDirty == 0 {
		t.Fatal("incremental path not engaged: mul's class was not re-searched")
	}
	if len(st.matches[0]) != 1 {
		t.Fatalf("incremental search found %d matches, want 1", len(st.matches[0]))
	}
	m := st.matches[0][0]
	if g.Find(m.Class) != g.Find(mul) {
		t.Fatalf("match rooted at e%d, want e%d", m.Class, g.Find(mul))
	}
	s := substFor(cr.pats[0].prog, cr.refs[rules[0]][0].back, m)
	if g.Find(s["?x"]) != g.Find(a) || g.Find(s["?y"]) != g.Find(b) || g.Find(s["?z"]) != g.Find(a) {
		t.Fatalf("unexpected bindings %v", s)
	}
}
