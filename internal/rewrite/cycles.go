package rewrite

import (
	"sort"

	"tensat/internal/egraph"
	"tensat/internal/pattern"
)

// FilterSet marks e-nodes as removed from the e-graph for extraction
// purposes (the "filter list" of Algorithm 2), keyed by the node's
// global insertion stamp. Filtered nodes stay in the e-graph (removal
// would break congruence bookkeeping) but are ignored by descendant
// computation, cycle detection and extraction; the ILP extractor adds
// x_i = 0 constraints for them, exactly as §5.2 prescribes.
type FilterSet map[int64]bool

// Has reports whether the node with this stamp is filtered.
func (f FilterSet) Has(stamp int64) bool { return f[stamp] }

// descendants maps every canonical e-class to the set of e-classes
// reachable strictly below it (through unfiltered nodes).
type descendants map[egraph.ClassID]*egraph.Bitset

// computeDescendants makes one pass over the e-graph and records the
// descendant e-class set for each e-class (the GETDESCENDANTS step of
// Algorithm 2). The e-graph must be acyclic modulo filtered nodes; if
// a residual cycle is encountered the edge closing it is ignored (the
// post-processing pass will resolve it).
func computeDescendants(g *egraph.EGraph, filtered FilterSet) descendants {
	desc := make(descendants, g.ClassCount())
	state := make(map[egraph.ClassID]uint8, g.ClassCount()) // 1 = on stack, 2 = done
	n := g.ClassCount()
	var dfs func(id egraph.ClassID)
	dfs = func(id egraph.ClassID) {
		id = g.Find(id)
		if state[id] != 0 {
			return
		}
		state[id] = 1
		b := egraph.NewBitset(n)
		cls := g.Class(id)
		for i, node := range cls.Nodes {
			if filtered.Has(cls.Stamps[i]) {
				continue
			}
			for _, ch := range node.Children {
				ch = g.Find(ch)
				if state[ch] == 1 {
					// Residual cycle; skip this edge, post-processing fixes it.
					continue
				}
				dfs(ch)
				b.Set(ch)
				b.Or(desc[ch])
			}
		}
		desc[id] = b
		state[id] = 2
	}
	g.Classes(func(cls *egraph.Class) { dfs(cls.ID) })
	return desc
}

// willCreateCycle is the pre-filtering check of Algorithm 2 (line 6):
// applying the rewrite would add nodes under class `matched` whose
// leaves are the classes bound in subst; a cycle appears iff some
// bound class can already reach `matched` (or is `matched` itself).
// The check is sound but not complete: desc is a snapshot from the
// start of the iteration.
func willCreateCycle(g *egraph.EGraph, desc descendants, target *pattern.Pat,
	subst pattern.Subst, matched egraph.ClassID) bool {
	cm := g.Find(matched)
	for _, v := range target.Vars() {
		b, ok := subst[v]
		if !ok {
			continue
		}
		b = g.Find(b)
		if b == cm {
			return true
		}
		if d := desc[b]; d != nil && d.Has(cm) {
			return true
		}
	}
	return false
}

// cycleEdge identifies one e-graph edge on a cycle: the e-node (by
// class and stamp) whose child closes the cycle.
type cycleEdge struct {
	class egraph.ClassID
	stamp int64
}

// findCycles performs the DFSGETCYCLES pass of Algorithm 2: a DFS over
// the class graph (through unfiltered nodes) collecting one cycle per
// back edge encountered.
func findCycles(g *egraph.EGraph, filtered FilterSet) [][]cycleEdge {
	state := make(map[egraph.ClassID]uint8, g.ClassCount())
	pos := make(map[egraph.ClassID]int, g.ClassCount())
	var stackEdges []cycleEdge // stackEdges[k] enters the class at depth k+1
	var cycles [][]cycleEdge

	var dfs func(id egraph.ClassID, depth int)
	dfs = func(id egraph.ClassID, depth int) {
		id = g.Find(id)
		state[id] = 1
		pos[id] = depth
		cls := g.Class(id)
		for i, node := range cls.Nodes {
			if filtered.Has(cls.Stamps[i]) {
				continue
			}
			stamp := cls.Stamps[i]
			for _, ch := range node.Children {
				ch = g.Find(ch)
				switch state[ch] {
				case 1: // back edge: cycle through stack from ch to id, plus this edge
					start := pos[ch]
					cyc := make([]cycleEdge, 0, depth-start+1)
					cyc = append(cyc, stackEdges[start:depth]...)
					cyc = append(cyc, cycleEdge{class: id, stamp: stamp})
					cycles = append(cycles, cyc)
				case 0:
					stackEdges = append(stackEdges, cycleEdge{class: id, stamp: stamp})
					dfs(ch, depth+1)
					stackEdges = stackEdges[:depth]
				}
			}
		}
		state[id] = 2
	}
	g.Classes(func(cls *egraph.Class) {
		if state[g.Find(cls.ID)] == 0 {
			dfs(g.Find(cls.ID), 0)
		}
	})
	return cycles
}

// resolveCycles implements RESOLVECYCLE: for each cycle not already
// broken by an earlier resolution, filter the most recently added
// e-node on it (largest insertion stamp). Returns how many nodes were
// filtered.
func resolveCycles(filtered FilterSet, cycles [][]cycleEdge) int {
	count := 0
	for _, cyc := range cycles {
		broken := false
		for _, e := range cyc {
			if filtered.Has(e.stamp) {
				broken = true
				break
			}
		}
		if broken {
			continue
		}
		// Filter the last-added node on the cycle.
		sort.Slice(cyc, func(i, j int) bool { return cyc[i].stamp > cyc[j].stamp })
		filtered[cyc[0].stamp] = true
		count++
	}
	return count
}

// FilterCycles runs the post-processing loop of Algorithm 2 (lines
// 10-18) until the e-graph is acyclic modulo the filter set. It
// returns the number of nodes newly filtered.
//
// Each detect-and-resolve round walks the whole class graph, and large
// e-graphs can need many rounds, so the loop checks done between
// rounds and stops early when it fires — the graph may then still be
// cyclic, and the caller must run a final uncancelable pass (done ==
// nil) before relying on acyclicity.
func FilterCycles(g *egraph.EGraph, filtered FilterSet, done <-chan struct{}) int {
	total := 0
	for !stopped(done) {
		cycles := findCycles(g, filtered)
		if len(cycles) == 0 {
			break
		}
		// findCycles only walks unfiltered edges, so the first cycle in
		// the list is never already broken: progress is guaranteed.
		total += resolveCycles(filtered, cycles)
	}
	return total
}

// IsAcyclic reports whether the class graph is acyclic through
// unfiltered nodes (the invariant the ILP extractor without cycle
// constraints relies on).
func IsAcyclic(g *egraph.EGraph, filtered FilterSet) bool {
	return len(findCycles(g, filtered)) == 0
}
