package rewrite

import (
	"testing"

	"tensat/internal/egraph"
	"tensat/internal/pattern"
	"tensat/internal/tensor"
)

// twoMatmulGraph is the motivating example of Figure 2: two matmuls
// sharing input1.
func twoMatmulGraph(t *testing.T) *tensor.Graph {
	t.Helper()
	b := tensor.NewBuilder()
	x := b.Input("input1", 8, 32)
	w2 := b.Weight("input2", 32, 16)
	w3 := b.Weight("input3", 32, 16)
	h1 := b.Matmul(tensor.ActNone, x, w2)
	h2 := b.Matmul(tensor.ActNone, x, w3)
	g, err := b.Finish(h1, h2)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// figure2Rule is the multi-pattern rewrite of Figure 2.
func figure2Rule(t *testing.T) *Rule {
	t.Helper()
	r, err := NewMultiRule("matmul-merge",
		"(matmul ?a ?x ?y) (matmul ?a ?x ?z)",
		"(split0 (split 1 (matmul ?a ?x (concat2 1 ?y ?z)))) (split1 (split 1 (matmul ?a ?x (concat2 1 ?y ?z))))")
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestIngest(t *testing.T) {
	g := twoMatmulGraph(t)
	eg, root, ids, err := Ingest(g)
	if err != nil {
		t.Fatal(err)
	}
	if eg.ClassCount() == 0 || len(ids) != len(g.Nodes()) {
		t.Fatalf("ingest: %d classes, %d ids for %d nodes", eg.ClassCount(), len(ids), len(g.Nodes()))
	}
	if m := ClassMeta(eg, root); m == nil || m.Kind != tensor.KindTensor {
		t.Fatalf("root meta = %v", m)
	}
	// Shared input ingested once.
	if eg.NodeCount() != len(g.Nodes()) {
		t.Fatalf("e-nodes %d != graph nodes %d", eg.NodeCount(), len(g.Nodes()))
	}
}

func TestSingleRuleSaturates(t *testing.T) {
	b := tensor.NewBuilder()
	x := b.Input("x", 4, 4)
	y := b.Input("y", 4, 4)
	g := b.MustFinish(b.Ewadd(x, y))
	r := NewRunner([]*Rule{MustRule("ewadd-comm", "(ewadd ?x ?y)", "(ewadd ?y ?x)")})
	ex, err := r.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Stats.Saturated {
		t.Fatalf("commutativity did not saturate: %+v", ex.Stats)
	}
	// Both orientations are present in the root class.
	ms := pattern.Search(ex.G, pattern.MustParse("(ewadd ?a ?b)"))
	if len(ms) != 2 {
		t.Fatalf("found %d ewadd nodes, want 2 (both orders)", len(ms))
	}
}

func TestShapeCheckBlocksBadRewrite(t *testing.T) {
	// x: 4x8, y: 8x16. The bogus rule (matmul ?a ?x ?y) => (matmul ?a ?y ?x)
	// is shape-incompatible and must be skipped.
	b := tensor.NewBuilder()
	x := b.Input("x", 4, 8)
	y := b.Weight("y", 8, 16)
	g := b.MustFinish(b.Matmul(tensor.ActNone, x, y))
	r := NewRunner([]*Rule{MustRule("bogus-swap", "(matmul ?a ?x ?y)", "(matmul ?a ?y ?x)")})
	ex, err := r.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Stats.Applied != 0 || ex.Stats.SkippedShape == 0 {
		t.Fatalf("shape check failed to block: %+v", ex.Stats)
	}
}

func TestConditionBlocksRewrite(t *testing.T) {
	b := tensor.NewBuilder()
	x := b.Input("x", 4, 4)
	g := b.MustFinish(b.Relu(x))
	rule := MustRule("gated", "(relu ?x)", "(relu (relu ?x))")
	calls := 0
	rule.Cond = func(_ *egraph.EGraph, _ pattern.Subst) bool {
		calls++
		return false
	}
	r := NewRunner([]*Rule{rule})
	ex, err := r.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("condition never evaluated")
	}
	if ex.Stats.Applied != 0 {
		t.Fatalf("condition did not block: %+v", ex.Stats)
	}
}

func TestMultiPatternFigure2(t *testing.T) {
	g := twoMatmulGraph(t)
	r := NewRunner([]*Rule{figure2Rule(t)})
	r.Limits.KMulti = 1
	ex, err := r.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Stats.Applied == 0 {
		t.Fatalf("figure 2 rule never applied: %+v", ex.Stats)
	}
	// The merged matmul over concatenated weights must now exist.
	merged := pattern.MustParse("(matmul ?a ?x (concat2 1 ?y ?z))")
	if len(pattern.Search(ex.G, merged)) == 0 {
		t.Fatal("merged matmul absent from e-graph")
	}
	// And the split nodes live in the original outputs' classes.
	s0 := pattern.MustParse("(split0 (split 1 ?t))")
	if len(pattern.Search(ex.G, s0)) == 0 {
		t.Fatal("split0 absent from e-graph")
	}
}

func TestMultiPatternNeedsSharedInput(t *testing.T) {
	// Two matmuls with *different* left inputs: rule may fire on the
	// diagonal (same matmul twice) but must not merge across inputs.
	b := tensor.NewBuilder()
	x1 := b.Input("x1", 8, 32)
	x2 := b.Input("x2", 8, 32)
	w1 := b.Weight("w1", 32, 16)
	w2 := b.Weight("w2", 32, 16)
	g := b.MustFinish(b.Matmul(tensor.ActNone, x1, w1), b.Matmul(tensor.ActNone, x2, w2))
	r := NewRunner([]*Rule{figure2Rule(t)})
	ex, err := r.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	// No concat of w1 and w2 may appear (they belong to different inputs).
	cross := pattern.MustParse("(concat2 1 (weight \"w1@32 16\") (weight \"w2@32 16\"))")
	if len(pattern.Search(ex.G, cross)) != 0 {
		t.Fatal("incompatible multi-pattern match was applied")
	}
}

func TestKMultiZeroDisablesMultiRules(t *testing.T) {
	g := twoMatmulGraph(t)
	r := NewRunner([]*Rule{figure2Rule(t)})
	r.Limits.KMulti = 0
	ex, err := r.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Stats.Applied != 0 {
		t.Fatalf("multi rule fired with k_multi=0: %+v", ex.Stats)
	}
}

func TestCycleFilteringKeepsEGraphAcyclic(t *testing.T) {
	// Figure 3: after the Figure 2 rewrite, picking split1 in the rhs
	// class would create a cycle; the filter must prevent that.
	g := twoMatmulGraph(t)
	for _, mode := range []FilterMode{FilterEfficient, FilterVanilla} {
		r := NewRunner([]*Rule{figure2Rule(t)})
		r.Filter = mode
		r.Limits.MaxIters = 4
		r.Limits.KMulti = 2
		ex, err := r.Run(g)
		if err != nil {
			t.Fatal(err)
		}
		if !IsAcyclic(ex.G, ex.Filtered) {
			t.Fatalf("%v filtering left a cyclic e-graph", mode)
		}
	}
}

func TestFilterNoneMayLeaveCycles(t *testing.T) {
	g := twoMatmulGraph(t)
	r := NewRunner([]*Rule{figure2Rule(t)})
	r.Filter = FilterNone
	r.Limits.MaxIters = 4
	r.Limits.KMulti = 2
	ex, err := r.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	// With no filtering the Figure 3 cycle is expected to exist.
	if IsAcyclic(ex.G, ex.Filtered) {
		t.Log("note: e-graph happens to be acyclic (rule application order)")
	}
	if len(ex.Filtered) != 0 {
		t.Fatal("FilterNone must not populate the filter list")
	}
}

func TestNodeLimitStopsExploration(t *testing.T) {
	g := twoMatmulGraph(t)
	r := NewRunner([]*Rule{figure2Rule(t)})
	r.Limits.MaxNodes = 12 // graph itself is about this size
	r.Limits.KMulti = 3
	r.Limits.MaxIters = 10
	ex, err := r.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Stats.HitNodeLimit {
		t.Fatalf("node limit not reported: %+v", ex.Stats)
	}
}

func TestIterLimit(t *testing.T) {
	b := tensor.NewBuilder()
	x := b.Input("x", 4, 4)
	y := b.Input("y", 4, 4)
	g := b.MustFinish(b.Ewadd(x, y))
	// assoc-style rule that keeps growing: x+y => (x+y)+0? Use comm rule
	// with small iter limit instead; it saturates in 1 iteration, so use
	// MaxIters=0 to check the limit path.
	r := NewRunner([]*Rule{MustRule("ewadd-comm", "(ewadd ?x ?y)", "(ewadd ?y ?x)")})
	r.Limits.MaxIters = 0
	ex, err := r.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Stats.HitIterLimit || ex.Stats.Iterations != 0 {
		t.Fatalf("iter limit not honored: %+v", ex.Stats)
	}
}

func TestVanillaAndEfficientAgree(t *testing.T) {
	// Both filters must produce e-graphs representing the same terms
	// (same node counts here, since rule application order is fixed).
	g := twoMatmulGraph(t)
	counts := map[FilterMode]int{}
	for _, mode := range []FilterMode{FilterEfficient, FilterVanilla} {
		r := NewRunner([]*Rule{figure2Rule(t)})
		r.Filter = mode
		r.Limits.KMulti = 1
		ex, err := r.Run(g)
		if err != nil {
			t.Fatal(err)
		}
		counts[mode] = ex.G.NodeCount()
	}
	if counts[FilterEfficient] != counts[FilterVanilla] {
		t.Fatalf("filters diverge: efficient=%d vanilla=%d",
			counts[FilterEfficient], counts[FilterVanilla])
	}
}

func TestDescendantsComputation(t *testing.T) {
	g := twoMatmulGraph(t)
	eg, root, ids, err := Ingest(g)
	if err != nil {
		t.Fatal(err)
	}
	desc := computeDescendants(eg, FilterSet{})
	rootDesc := desc[eg.Find(root)]
	// Every other class is below the root.
	for _, id := range ids {
		if eg.Find(id) != eg.Find(root) && !rootDesc.Has(eg.Find(id)) {
			t.Fatalf("class %d not a descendant of root", id)
		}
	}
	// Leaves have no descendants... except parameter-free leaves.
	for n, id := range ids {
		if len(n.Inputs) == 0 {
			if desc[eg.Find(id)].Count() != 0 {
				t.Fatalf("leaf %v has descendants", n.Op)
			}
		}
	}
}

func TestRuleValidation(t *testing.T) {
	if _, err := NewRule("bad", "(relu ?x)", "(relu ?y)"); err == nil {
		t.Fatal("unbound target variable accepted")
	}
	if _, err := NewMultiRule("bad", "(relu ?x)", "(relu ?x) (tanh ?x)"); err == nil {
		t.Fatal("mismatched source/target counts accepted")
	}
	r := MustMultiRule("ok", "(relu ?x) (tanh ?x)", "(tanh ?x) (relu ?x)")
	if !r.IsMulti() {
		t.Fatal("IsMulti false for 2-source rule")
	}
	if r.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestBidirectional(t *testing.T) {
	rules := Bidirectional("comm", "(ewadd ?x ?y)", "(ewadd ?y ?x)")
	if len(rules) != 2 || rules[1].Name != "comm-rev" {
		t.Fatalf("Bidirectional = %v", rules)
	}
}
