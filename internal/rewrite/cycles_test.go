package rewrite

import (
	"testing"

	"tensat/internal/egraph"
	"tensat/internal/pattern"
	"tensat/internal/tensor"
)

// cyclicEGraph hand-builds the Figure 3 situation: two classes that
// reference each other through e-nodes added at known stamps.
func cyclicEGraph(t *testing.T) (*egraph.EGraph, egraph.ClassID, egraph.ClassID) {
	t.Helper()
	g := egraph.New(nil)
	// Base tensors.
	x := g.Add(egraph.StrNode(egraph.Op(tensor.OpInput), "x@4 4"))
	y := g.Add(egraph.StrNode(egraph.Op(tensor.OpInput), "y@4 4"))
	a := g.Add(egraph.NewNode(egraph.Op(tensor.OpRelu), x))  // class A
	bb := g.Add(egraph.NewNode(egraph.Op(tensor.OpTanh), y)) // class B
	// Now add a node in A referencing B, and a node in B referencing A,
	// via unions (simulating rewrites whose targets point across).
	na := g.Add(egraph.NewNode(egraph.Op(tensor.OpSigmoid), bb)) // sigmoid(B)
	g.Union(a, na)
	nb := g.Add(egraph.NewNode(egraph.Op(tensor.OpSigmoid), a)) // sigmoid(A)
	g.Union(bb, nb)
	g.Rebuild()
	return g, g.Find(a), g.Find(bb)
}

func TestFindCyclesDetectsFigure3(t *testing.T) {
	g, _, _ := cyclicEGraph(t)
	cycles := findCycles(g, FilterSet{})
	if len(cycles) == 0 {
		t.Fatal("cycle not detected")
	}
}

func TestFilterCyclesBreaksAllCycles(t *testing.T) {
	g, _, _ := cyclicEGraph(t)
	filtered := FilterSet{}
	n := FilterCycles(g, filtered, nil)
	if n == 0 {
		t.Fatal("nothing filtered")
	}
	if !IsAcyclic(g, filtered) {
		t.Fatal("still cyclic after FilterCycles")
	}
}

// TestFilterCyclesHonorsDone is the regression test for the ctxflow
// finding on FilterCycles: the detect-and-resolve loop used to accept
// no cancellation input at all. A pre-fired done channel must stop it
// before the first round (returning 0 with the graph still cyclic),
// and a nil done must run it to completion.
func TestFilterCyclesHonorsDone(t *testing.T) {
	g, _, _ := cyclicEGraph(t)
	filtered := FilterSet{}
	done := make(chan struct{})
	close(done)
	if n := FilterCycles(g, filtered, done); n != 0 {
		t.Fatalf("canceled FilterCycles filtered %d nodes, want 0", n)
	}
	if IsAcyclic(g, filtered) {
		t.Fatal("canceled FilterCycles should leave the cycle in place")
	}
	if n := FilterCycles(g, filtered, nil); n == 0 {
		t.Fatal("uncancelable pass filtered nothing")
	}
	if !IsAcyclic(g, filtered) {
		t.Fatal("still cyclic after uncancelable FilterCycles")
	}
}

func TestFilterCyclesRemovesLastAddedNode(t *testing.T) {
	g, a, b := cyclicEGraph(t)
	filtered := FilterSet{}
	FilterCycles(g, filtered, nil)
	// The cycle consists of sigmoid(B) in A (earlier) and sigmoid(A) in
	// B (later). Algorithm 2 filters the most recently added node.
	var maxStamp int64
	for _, id := range []egraph.ClassID{a, b} {
		cls := g.Class(id)
		for i := range cls.Nodes {
			if cls.Stamps[i] > maxStamp {
				maxStamp = cls.Stamps[i]
			}
		}
	}
	if !filtered.Has(maxStamp) {
		t.Fatalf("expected last-added node (stamp %d) filtered, got %v", maxStamp, filtered)
	}
	if len(filtered) != 1 {
		t.Fatalf("filtered %d nodes, want 1", len(filtered))
	}
}

func TestIsAcyclicOnAcyclicGraph(t *testing.T) {
	g := egraph.New(nil)
	x := g.Add(egraph.StrNode(egraph.Op(tensor.OpInput), "x@4 4"))
	g.Add(egraph.NewNode(egraph.Op(tensor.OpRelu), x))
	if !IsAcyclic(g, FilterSet{}) {
		t.Fatal("acyclic graph reported cyclic")
	}
}

func TestDescendantsSkipFilteredNodes(t *testing.T) {
	g, a, b := cyclicEGraph(t)
	filtered := FilterSet{}
	FilterCycles(g, filtered, nil)
	desc := computeDescendants(g, filtered)
	// After filtering, at most one of A-reaches-B / B-reaches-A remains.
	ab := desc[g.Find(a)] != nil && desc[g.Find(a)].Has(g.Find(b))
	ba := desc[g.Find(b)] != nil && desc[g.Find(b)].Has(g.Find(a))
	if ab && ba {
		t.Fatal("descendants still mutually reachable after filtering")
	}
}

func TestWillCreateCycleSelfReference(t *testing.T) {
	g := egraph.New(nil)
	x := g.Add(egraph.StrNode(egraph.Op(tensor.OpInput), "x@4 4"))
	r := g.Add(egraph.NewNode(egraph.Op(tensor.OpRelu), x))
	desc := computeDescendants(g, FilterSet{})
	// A rewrite binding ?t to the matched class itself must be caught.
	p := mustPat(t, "(relu ?t)")
	subst := substOf("?t", r)
	if !willCreateCycle(g, desc, p, subst, r) {
		t.Fatal("self-referential target not flagged")
	}
	// Binding ?t to a leaf below is fine.
	subst = substOf("?t", x)
	if willCreateCycle(g, desc, p, subst, r) {
		t.Fatal("downward reference wrongly flagged")
	}
	// But binding ?t to an ancestor is a cycle.
	up := g.Add(egraph.NewNode(egraph.Op(tensor.OpTanh), r))
	desc = computeDescendants(g, FilterSet{})
	subst = substOf("?t", up)
	if !willCreateCycle(g, desc, p, subst, x) {
		t.Fatal("ancestor reference not flagged")
	}
}

func mustPat(t *testing.T, src string) *pattern.Pat {
	t.Helper()
	p, err := pattern.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func substOf(v string, id egraph.ClassID) pattern.Subst {
	return pattern.Subst{v: id}
}
