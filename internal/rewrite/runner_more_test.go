package rewrite

import (
	"testing"
	"time"

	"tensat/internal/tensor"
)

func TestExploreTimeout(t *testing.T) {
	// Many matmuls sharing an input with unbounded multi-pattern
	// iterations: the doubly-exponential growth guarantees exploration
	// outlives a tiny timeout.
	b := tensor.NewBuilder()
	x := b.Input("x", 8, 32)
	outs := make([]*tensor.Node, 8)
	for i := range outs {
		w := b.Weight(string(rune('a'+i)), 32, 16)
		outs[i] = b.Matmul(tensor.ActNone, x, w)
	}
	g := b.MustFinish(outs...)
	rule := MustMultiRule("merge",
		"(matmul ?a ?x ?y) (matmul ?a ?x ?z)",
		"(split0 (split 1 (matmul ?a ?x (concat2 1 ?y ?z)))) (split1 (split 1 (matmul ?a ?x (concat2 1 ?y ?z))))")
	r := NewRunner([]*Rule{rule})
	r.Limits = Limits{MaxNodes: 1 << 30, MaxIters: 1 << 20, KMulti: 1 << 20, Timeout: 30 * time.Millisecond}
	ex, err := r.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Stats.HitTimeout {
		t.Fatalf("timeout not reported: %+v", ex.Stats)
	}
}

func TestSaturationSmallAlgebra(t *testing.T) {
	// Comm+assoc over three operands saturates to all 12 orderings.
	b := tensor.NewBuilder()
	x := b.Input("x", 4, 4)
	y := b.Input("y", 4, 4)
	z := b.Input("z", 4, 4)
	g := b.MustFinish(b.Ewadd(x, b.Ewadd(y, z)))
	rules := []*Rule{MustRule("comm", "(ewadd ?x ?y)", "(ewadd ?y ?x)")}
	rules = append(rules, Bidirectional("assoc", "(ewadd ?x (ewadd ?y ?z))", "(ewadd (ewadd ?x ?y) ?z)")...)
	r := NewRunner(rules)
	ex, err := r.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Stats.Saturated {
		t.Fatalf("did not saturate: %+v", ex.Stats)
	}
	// Root class must contain multiple representations; e-graph stays small.
	if ex.Stats.ENodes > 40 {
		t.Fatalf("e-graph blew up on a 3-term algebra: %d nodes", ex.Stats.ENodes)
	}
}

func TestIngestRejectsNil(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic or error on nil graph")
		}
	}()
	_, _, _, err := Ingest(nil)
	if err != nil {
		panic(err) // treat returned error as the accepted outcome
	}
}

func TestRunnerPreservesAnalysisMetas(t *testing.T) {
	b := tensor.NewBuilder()
	x := b.Input("x", 2, 6)
	w1 := b.Weight("w1", 6, 4)
	g := b.MustFinish(b.Matmul(tensor.ActNone, x, w1))
	r := NewRunner([]*Rule{MustRule("fuse", "(relu (matmul 0 ?x ?y))", "(matmul 2 ?x ?y)")})
	ex, err := r.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	m := ClassMeta(ex.G, ex.Root)
	if m == nil || !m.Shape.Equal(tensor.Shape{2, 4}) {
		t.Fatalf("root meta corrupted: %v", m)
	}
}

func TestMultiPatternTripleSourceRule(t *testing.T) {
	// A contrived 3-output rule exercises the general cartesian product.
	rule := MustMultiRule("rotate3",
		"(relu ?x) (tanh ?x) (sigmoid ?x)",
		"(relu ?x) (tanh ?x) (sigmoid ?x)")
	b := tensor.NewBuilder()
	x := b.Input("x", 4, 4)
	g := b.MustFinish(b.Relu(x), b.Tanh(x), b.Sigmoid(x))
	r := NewRunner([]*Rule{rule})
	r.Limits.KMulti = 1
	ex, err := r.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Stats.Matches == 0 {
		t.Fatal("triple-source rule found no joint match")
	}
}
