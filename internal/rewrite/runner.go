package rewrite

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"tensat/internal/egraph"
	"tensat/internal/fault"
	"tensat/internal/obs"
	"tensat/internal/pattern"
	"tensat/internal/tensor"
)

// FilterMode selects the cycle-filtering strategy of §5.2.
type FilterMode int

const (
	// FilterEfficient is Algorithm 2: a descendants map built once per
	// iteration for pre-filtering, plus a DFS post-processing pass.
	FilterEfficient FilterMode = iota
	// FilterVanilla recomputes the descendants map before every single
	// substitution (O(n_m * N) per iteration).
	FilterVanilla
	// FilterNone performs no cycle filtering; extraction must then use
	// the ILP formulation with cycle constraints (§5.1).
	FilterNone
)

// String names the mode.
func (m FilterMode) String() string {
	switch m {
	case FilterEfficient:
		return "efficient"
	case FilterVanilla:
		return "vanilla"
	default:
		return "none"
	}
}

// Limits bound the exploration phase (§6.1: N_max = 50000, k_max = 15,
// k_multi = 1 by default).
type Limits struct {
	MaxNodes int           // stop when the e-graph holds this many e-nodes
	MaxIters int           // maximum exploration iterations
	KMulti   int           // iterations during which multi-pattern rules fire
	Timeout  time.Duration // wall-clock bound for the exploration phase
}

// DefaultLimits mirrors the paper's experimental setup.
func DefaultLimits() Limits {
	return Limits{MaxNodes: 50000, MaxIters: 15, KMulti: 1, Timeout: time.Hour}
}

// Stats reports what the exploration phase did.
type Stats struct {
	Iterations    int
	Saturated     bool
	HitNodeLimit  bool
	HitIterLimit  bool
	HitTimeout    bool
	Canceled      bool // the caller's context was canceled mid-exploration
	Matches       int  // candidate substitutions found
	Applied       int  // substitutions applied
	SkippedShape  int  // substitutions rejected by shape checking
	SkippedCycle  int  // substitutions rejected by the pre-filter
	FilteredNodes int  // e-nodes put on the filter list by post-processing
	ENodes        int  // final e-node count
	EClasses      int  // final e-class count
	ExploreTime   time.Duration
	// ApplyTime and RebuildTime split out the remainder of ExploreTime:
	// the rule-application loop (shape checks, cycle pre-filtering,
	// instantiation and unions) and the congruence rebuild plus cycle
	// post-processing, each summed over iterations.
	ApplyTime   time.Duration
	RebuildTime time.Duration
	// SearchTime is the part of ExploreTime spent in the e-matching
	// search phase (freezing the view, op-index build, dirty-class
	// computation and the pattern-program scans), summed over
	// iterations — the quantity the Workers knob parallelizes.
	SearchTime time.Duration
	// Search-phase work accounting, summed over iterations and
	// canonical patterns. For each (pattern, iteration) pair the
	// candidate classes (those containing the pattern's root operator)
	// split into scanned vs. answered-from-memo, while every class
	// without the root op is pruned without a visit:
	//
	//	SearchScanned  — classes the pattern VM actually visited
	//	SearchPruned   — classes skipped by the op index
	//	SearchClean    — candidate classes answered from the previous
	//	                 iteration's memoized matches (iterations >= 2)
	//	SearchDirty    — candidate classes re-searched because they were
	//	                 touched since the previous freeze (subset of
	//	                 SearchScanned)
	//	SearchMatches  — matches produced by the search phase
	SearchScanned int
	SearchPruned  int
	SearchClean   int
	SearchDirty   int
	SearchMatches int
}

// Explored is the result of the exploration phase: the saturated (or
// limit-bounded) e-graph, its root class, and the cycle filter list.
type Explored struct {
	G        *egraph.EGraph
	Root     egraph.ClassID
	Filtered FilterSet
	Stats    Stats
	// IngestStamp is the insertion-counter value right after the input
	// graph was loaded: e-nodes with stamps at or below it form the
	// original graph, which extraction uses as a warm start.
	IngestStamp int64
}

// Runner drives the exploration phase over a rule set.
type Runner struct {
	Rules  []*Rule
	Filter FilterMode
	Limits Limits
	// Compiled, when non-nil and compiled from exactly Rules, supplies
	// the precompiled pattern programs (CompileRules) — the
	// compile-at-registration path used by tensat.Registry. When nil or
	// out of date the runner compiles Rules itself at explore start.
	Compiled *CompiledRules
	// Workers bounds the goroutines used by the search phase of each
	// iteration. Searching runs against a frozen read-only view of the
	// e-graph (egraph.View), so N workers match concurrently with no
	// locks; results are deterministic and identical to the sequential
	// scan whatever the worker count. 0 means runtime.GOMAXPROCS(0);
	// 1 forces the sequential path; values above GOMAXPROCS are
	// clamped to it (extra goroutines cannot add parallelism).
	Workers int
	// Progress, when non-nil, is called from the exploring goroutine
	// once before the first iteration (with iteration 0 and the
	// freshly ingested e-graph's sizes) and again after every
	// completed iteration. It must return quickly and must not touch
	// the e-graph.
	Progress func(iteration, enodes, eclasses int)
	// Trace, when non-nil, receives phase spans: an "explore" span
	// containing one "iteration" span per iteration, each with
	// "search", "apply" and "rebuild" children annotated with e-node /
	// e-class deltas. A nil Trace records nothing and costs a nil
	// check per phase boundary.
	Trace *obs.Trace
}

// NewRunner builds a Runner with default limits and efficient filtering.
func NewRunner(rules []*Rule) *Runner {
	return &Runner{Rules: rules, Filter: FilterEfficient, Limits: DefaultLimits()}
}

// Run explores the e-graph of t until saturation or limits.
func (r *Runner) Run(t *tensor.Graph) (*Explored, error) {
	return r.RunContext(context.Background(), t)
}

// RunContext is Run with cancellation: when ctx is done, exploration
// stops at the next check point exactly as if Limits.Timeout had
// expired (Stats.Canceled is set), and the partial e-graph is returned.
// Deciding whether a canceled request should still be extracted is the
// caller's business (tensat.OptimizeContext aborts; an anytime caller
// may extract what it has).
func (r *Runner) RunContext(ctx context.Context, t *tensor.Graph) (*Explored, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g, root, _, err := Ingest(t)
	if err != nil {
		return nil, err
	}
	ex := &Explored{G: g, Root: root, Filtered: make(FilterSet), IngestStamp: g.Stamp()}
	r.explore(ex, ctx.Done())
	return ex, nil
}

// RunOnEGraph explores an existing e-graph (used by tests and by the
// incremental experiment harness).
func (r *Runner) RunOnEGraph(g *egraph.EGraph, root egraph.ClassID) *Explored {
	ex := &Explored{G: g, Root: root, Filtered: make(FilterSet), IngestStamp: g.Stamp()}
	r.explore(ex, nil)
	return ex
}

func (r *Runner) explore(ex *Explored, done <-chan struct{}) {
	start := time.Now()
	r.Trace.Begin("explore")
	g := ex.G
	lim := r.Limits
	// MaxNodes/Timeout zero means "default"; MaxIters 0 is honored as-is
	// (an explicit "do not explore"), matching the k_multi=0 baseline.
	if lim.MaxNodes == 0 {
		lim.MaxNodes = 50000
	}
	if lim.Timeout == 0 {
		lim.Timeout = time.Hour
	}

	// Resolve the compiled rule set: the precompiled programs from rule
	// registration when available, a fresh compilation otherwise
	// (Algorithm 1, lines 1-8, plus pattern-program compilation).
	cr := r.Compiled
	if !cr.compiledFor(r.Rules) {
		cr = CompileRules(r.Rules)
	}
	st := &searchState{matches: make([][]pattern.Compact, len(cr.pats))}

	if r.Progress != nil {
		r.Progress(0, g.NodeCount(), g.ClassCount())
	}
	deadline := start.Add(lim.Timeout)
	for iter := 0; ; iter++ {
		if iter >= lim.MaxIters {
			ex.Stats.HitIterLimit = true
			break
		}
		if g.NodeCount() >= lim.MaxNodes {
			ex.Stats.HitNodeLimit = true
			break
		}
		if stopped(done) {
			ex.Stats.Canceled = true
			break
		}
		if time.Now().After(deadline) {
			ex.Stats.HitTimeout = true
			break
		}
		useMulti := iter < lim.KMulti
		changed, interrupted := r.iterate(ex, cr, st, useMulti, lim, deadline, done)
		ex.Stats.Iterations++
		if r.Progress != nil {
			r.Progress(ex.Stats.Iterations, g.NodeCount(), g.ClassCount())
		}
		// Saturation means a full iteration ran to completion without
		// changing the e-graph. An iteration cut short by cancellation,
		// timeout, or the node limit proves nothing — a canceled or
		// timed-out run must never report Saturated; loop back so the
		// checks above classify the stop reason instead.
		if !changed && !interrupted && !stopped(done) && !time.Now().After(deadline) {
			ex.Stats.Saturated = true
			break
		}
	}

	// Guarantee the acyclic invariant before extraction. This final
	// pass is deliberately uncancelable (nil done): extraction relies
	// on acyclicity even when exploration was cut short.
	if r.Filter != FilterNone {
		ex.Stats.FilteredNodes += FilterCycles(g, ex.Filtered, nil)
	}
	ex.Stats.ENodes = g.NodeCount()
	ex.Stats.EClasses = g.ClassCount()
	ex.Stats.ExploreTime = time.Since(start)
	r.Trace.Attr("iterations", int64(ex.Stats.Iterations))
	r.Trace.Attr("enodes", int64(ex.Stats.ENodes))
	r.Trace.Attr("eclasses", int64(ex.Stats.EClasses))
	r.Trace.End()
}

// stopped reports whether the cancellation channel has fired; a nil
// channel (no context) never stops.
func stopped(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// iterate runs one exploration iteration: search all canonical
// patterns, then apply all rule matches (Algorithm 1, lines 9-22),
// then rebuild and post-process cycles (Algorithm 2, lines 10-18).
// It reports whether the e-graph changed and whether the iteration was
// interrupted (cancellation, deadline, or node limit) before every
// match was considered — an interrupted no-change iteration is not
// saturation.
func (r *Runner) iterate(ex *Explored, cr *CompiledRules, st *searchState,
	useMulti bool, lim Limits, deadline time.Time,
	done <-chan struct{}) (changed, interrupted bool) {

	g := ex.G
	nodesBefore := g.NodeCount()
	classesBefore := g.ClassCount()
	matchesBefore := ex.Stats.Matches
	appliedBefore := ex.Stats.Applied
	scannedBefore := ex.Stats.SearchScanned
	searchMatchesBefore := ex.Stats.SearchMatches
	unioned := false

	r.Trace.Begin("iteration")
	r.Trace.Attr("iteration", int64(ex.Stats.Iterations))

	// One descendants snapshot per iteration for the efficient filter.
	var desc descendants
	if r.Filter == FilterEfficient {
		desc = computeDescendants(g, ex.Filtered)
	}

	// SEARCH(G, e_c): all matches for all canonical patterns, matched
	// concurrently against a frozen read-only view of the e-graph.
	r.Trace.Begin("search")
	searchStart := time.Now()
	r.searchAll(g.Freeze(), cr, st, ex, done)
	ex.Stats.SearchTime += time.Since(searchStart)
	r.Trace.Attr("scanned", int64(ex.Stats.SearchScanned-scannedBefore))
	r.Trace.Attr("matches", int64(ex.Stats.SearchMatches-searchMatchesBefore))
	r.Trace.End()

	apply := func(rule *Rule, matched []egraph.ClassID, subst pattern.Subst) {
		// Chaos hook: a fault armed at rewrite.apply models a buggy rule.
		// Apply has no error channel, so an injected error panics too —
		// the job-level recovery barrier is exactly what it exercises.
		if err := fault.Check("rewrite.apply"); err != nil {
			panic(err)
		}
		// Shape checking (§4) over every target pattern.
		varMeta := func(v string) (*tensor.Meta, bool) {
			id, ok := subst[v]
			if !ok {
				return nil, false
			}
			m := ClassMeta(g, id)
			return m, m != nil
		}
		for _, tgt := range rule.Targets {
			if _, err := pattern.InferMeta(tgt, varMeta); err != nil {
				ex.Stats.SkippedShape++
				return
			}
		}
		if rule.Cond != nil && !rule.Cond(g, subst) {
			ex.Stats.SkippedShape++
			return
		}
		// Cycle pre-filtering.
		if r.Filter != FilterNone {
			d := desc
			if r.Filter == FilterVanilla {
				// Vanilla: a full pass over the e-graph per substitution.
				d = computeDescendants(g, ex.Filtered)
			}
			for i, tgt := range rule.Targets {
				if willCreateCycle(g, d, tgt, subst, matched[i]) {
					ex.Stats.SkippedCycle++
					return
				}
			}
		}
		// APPLY: instantiate each target and union with its matched output.
		for i, tgt := range rule.Targets {
			id, err := pattern.Instantiate(g, tgt, subst)
			if err != nil {
				return // unbound variable: cannot happen for validated rules
			}
			if _, ch := g.Union(id, matched[i]); ch {
				unioned = true
			}
		}
		ex.Stats.Applied++
	}

	r.Trace.Begin("apply")
	applyStart := time.Now()
	for _, rule := range r.Rules {
		if rule.IsMulti() && !useMulti {
			continue
		}
		if g.NodeCount() >= lim.MaxNodes || time.Now().After(deadline) || stopped(done) {
			// Record timeout/cancel here, not only at the explore loop
			// top: the iteration-limit check there runs first and would
			// otherwise mask a budget cut as a plain iter-limit stop.
			if stopped(done) {
				ex.Stats.Canceled = true
			} else if time.Now().After(deadline) {
				ex.Stats.HitTimeout = true
			}
			interrupted = true
			break
		}
		rrefs := cr.refs[rule]
		if !rule.IsMulti() {
			ref := rrefs[0]
			prog := cr.pats[ref.pat].prog
			for mi, m := range st.matches[ref.pat] {
				// Large match lists must notice a dead request between
				// rule boundaries, same cadence as applyMulti.
				if mi%256 == 255 && (time.Now().After(deadline) || stopped(done)) {
					if stopped(done) {
						ex.Stats.Canceled = true
					} else {
						ex.Stats.HitTimeout = true
					}
					interrupted = true
					break
				}
				ex.Stats.Matches++
				apply(rule, []egraph.ClassID{m.Class}, substFor(prog, ref.back, m))
				if g.NodeCount() >= lim.MaxNodes {
					interrupted = true
					break
				}
			}
			continue
		}
		// Multi-pattern: cartesian product of decanonicalized matches,
		// keeping only combinations compatible on shared variables
		// (Algorithm 1, lines 11-21).
		if r.applyMulti(ex, rule, cr, st, rrefs, apply, lim, deadline, done) {
			interrupted = true
		}
	}
	ex.Stats.ApplyTime += time.Since(applyStart)
	r.Trace.Attr("matches", int64(ex.Stats.Matches-matchesBefore))
	r.Trace.Attr("applied", int64(ex.Stats.Applied-appliedBefore))
	r.Trace.End()

	r.Trace.Begin("rebuild")
	rebuildStart := time.Now()
	g.Rebuild()

	if r.Filter != FilterNone {
		ex.Stats.FilteredNodes += FilterCycles(g, ex.Filtered, done)
	}
	ex.Stats.RebuildTime += time.Since(rebuildStart)
	r.Trace.End()

	r.Trace.Attr("enodes", int64(g.NodeCount()))
	r.Trace.Attr("eclasses", int64(g.ClassCount()))
	r.Trace.Attr("enodes_delta", int64(g.NodeCount()-nodesBefore))
	r.Trace.Attr("eclasses_delta", int64(g.ClassCount()-classesBefore))
	r.Trace.End()
	return unioned || g.NodeCount() != nodesBefore, interrupted
}

// searchShardSize bounds how many classes one search work unit scans
// before the cancellation channel is consulted again. It caps the
// latency between a caller canceling and the search phase noticing:
// on pathological, heavily merged e-graphs a single pattern × full
// class list scan can run for minutes, which must not pin a worker
// slot after every interested request is gone.
const searchShardSize = 1024

// workerPanic carries a panic out of a search worker goroutine to the
// calling goroutine, preserving the worker's stack — re-panicking with
// the raw value would otherwise report the barrier's stack instead of
// the site that actually blew up.
type workerPanic struct {
	value any
	stack []byte
}

func (p *workerPanic) String() string {
	return fmt.Sprintf("rewrite: search worker panic: %v\n%s", p.value, p.stack)
}

// searchParallelThreshold is the minimum per-pattern work-list length
// worth sharding across workers. Below it a pattern's candidate scan
// runs as one work unit (still overlapping other patterns on the
// pool): the op index leaves most patterns with short candidate
// lists, and for those the channel hand-offs and shard bookkeeping
// cost more than the scan itself. Measured on the nasrnn search
// benchmark at 4 workers (candidate lists ranging from a handful to a
// few thousand classes), sharding lists below ~256 classes was
// consistently slower than scanning them whole, while longer lists
// gained from the fan-out.
const searchParallelThreshold = 256

// searchAll fills st.matches for every canonical pattern by scanning a
// frozen view. Three accelerations apply, none of which change the
// match lists:
//
//  1. Op-index pruning: a pattern rooted at op only visits
//     view.ByOp(op), the classes containing at least one node with
//     that op (Stats.SearchPruned counts the skipped rest).
//  2. Incremental re-search: on iterations >= 2 only candidates dirty
//     since the previous freeze are re-scanned; clean candidates
//     answer from the previous iteration's memoized list. This is
//     sound because DirtySince is upward-closed — a clean class's
//     entire downward-reachable region is unchanged, so its matches
//     (bindings included) are exactly what they were.
//  3. Parallel sharding: work lists of searchParallelThreshold or more
//     classes fan out as (pattern × class-shard) units over a bounded
//     worker pool; shard results concatenate in scan order.
//
// The per-pattern match list is therefore byte-for-byte the one a
// sequential full scan would produce, regardless of Workers or
// iteration history. A fired done channel invalidates the memo and
// leaves the match lists empty (the caller's rule loop observes the
// cancellation before applying anything).
func (r *Runner) searchAll(view *egraph.View, cr *CompiledRules, st *searchState,
	ex *Explored, done <-chan struct{}) {

	workers := r.Workers
	if p := runtime.GOMAXPROCS(0); workers <= 0 || workers > p {
		// More workers than schedulable threads cannot add parallelism,
		// only channel hand-offs and context switches — the same
		// fan-out-overhead argument as searchParallelThreshold, applied
		// to hardware capacity. Results are identical for any worker
		// count, so clamping is invisible except in wall-clock time.
		workers = p
	}
	classCount := view.ClassCount()

	// Per-pattern work: the candidate list from the op index, narrowed
	// to the dirty subset when the previous iteration's memo is valid.
	incremental := st.valid
	var dirty map[egraph.ClassID]bool
	if incremental {
		dirty = view.DirtySince(st.version)
	}
	cands := make([][]*egraph.Class, len(cr.pats))
	scans := make([][]*egraph.Class, len(cr.pats))
	var planPruned, planDirty, planClean, planScanned int
	for i, cp := range cr.pats {
		if op, ok := cp.prog.RootOp(); ok {
			cands[i] = view.ByOp(op)
		} else {
			cands[i] = view.Classes()
		}
		planPruned += classCount - len(cands[i])
		if !incremental {
			scans[i] = cands[i]
		} else {
			for _, cls := range cands[i] {
				if dirty[cls.ID] {
					scans[i] = append(scans[i], cls)
				}
			}
			planDirty += len(scans[i])
			planClean += len(cands[i]) - len(scans[i])
		}
		planScanned += len(scans[i])
	}

	// Scan the work lists into fresh, per-pattern in scan order.
	fresh := make([][]pattern.Compact, len(cr.pats))
	if workers == 1 {
		for i, cp := range cr.pats {
			scan := scans[i]
			// Scan in bounded chunks, re-checking cancellation between
			// them; chunk results concatenate in scan order, so the
			// match list is identical to one whole-list scan.
			for lo := 0; lo < len(scan) && !stopped(done); lo += searchShardSize {
				hi := lo + searchShardSize
				if hi > len(scan) {
					hi = len(scan)
				}
				fresh[i] = cp.prog.AppendMatches(fresh[i], view, scan[lo:hi])
			}
		}
	} else {
		// Shard long work lists so a single hot pattern also spreads
		// across workers; short lists (below searchParallelThreshold)
		// stay whole and only ride the pool for cross-pattern overlap.
		type task struct{ p, s int }
		bounds := make([][]int, len(cr.pats)) // per pattern: shard start offsets
		results := make([][][]pattern.Compact, len(cr.pats))
		for i := range cr.pats {
			n := len(scans[i])
			size := n
			if n >= searchParallelThreshold {
				shards := workers * 4
				if min := (n + searchShardSize - 1) / searchShardSize; shards < min {
					shards = min
				}
				if shards > n {
					shards = n
				}
				size = (n + shards - 1) / shards
			}
			for lo := 0; lo < n; lo += size {
				bounds[i] = append(bounds[i], lo)
			}
			results[i] = make([][]pattern.Compact, len(bounds[i]))
		}
		tasks := make(chan task)
		var wg sync.WaitGroup
		// A panic in a worker (a buggy matcher program) must not kill
		// the process: the worker records the first panic with its
		// stack and keeps draining tasks so the producer never blocks,
		// and the panic is re-raised on the calling goroutine after the
		// barrier — where the job-level recovery turns it into a failed
		// job instead of a crash.
		var panicMu sync.Mutex
		var panicked *workerPanic
		recordPanic := func(r any) {
			panicMu.Lock()
			if panicked == nil {
				panicked = &workerPanic{value: r, stack: debug.Stack()}
			}
			panicMu.Unlock()
		}
		hasPanicked := func() bool {
			panicMu.Lock()
			defer panicMu.Unlock()
			return panicked != nil
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for t := range tasks {
					if stopped(done) || hasPanicked() {
						continue // drain cheaply once canceled or doomed
					}
					func() {
						defer func() {
							if r := recover(); r != nil {
								recordPanic(r)
							}
						}()
						scan := scans[t.p]
						lo := bounds[t.p][t.s]
						hi := len(scan)
						if t.s+1 < len(bounds[t.p]) {
							hi = bounds[t.p][t.s+1]
						}
						results[t.p][t.s] = cr.pats[t.p].prog.AppendMatches(nil, view, scan[lo:hi])
					}()
				}
			}()
		}
		for p := range cr.pats {
			for s := range bounds[p] {
				tasks <- task{p, s}
			}
		}
		close(tasks)
		wg.Wait()
		if panicked != nil {
			panic(panicked)
		}
		for i := range cr.pats {
			n := 0
			for _, ms := range results[i] {
				n += len(ms)
			}
			all := make([]pattern.Compact, 0, n)
			for _, ms := range results[i] {
				all = append(all, ms...)
			}
			fresh[i] = all
		}
	}

	if stopped(done) {
		// Incomplete scans must neither be applied (the rule loop checks
		// done before any apply) nor memoized for a later iteration —
		// and the planned work counters stay unrecorded, since a
		// canceled scan did not actually visit those classes.
		st.valid = false
		for i := range st.matches {
			st.matches[i] = nil
		}
		return
	}
	ex.Stats.SearchPruned += planPruned
	ex.Stats.SearchDirty += planDirty
	ex.Stats.SearchClean += planClean
	ex.Stats.SearchScanned += planScanned

	for i := range cr.pats {
		if incremental {
			st.matches[i] = mergeMatches(cands[i], dirty, st.matches[i], fresh[i])
		} else {
			st.matches[i] = fresh[i]
		}
		ex.Stats.SearchMatches += len(st.matches[i])
	}
	st.version = view.Version()
	st.valid = true
}

// applyMulti enumerates compatible match combinations for a
// multi-pattern rule via backtracking over the per-source match lists.
// It reports whether enumeration was aborted early (node limit,
// deadline, or cancellation): the abort flag unwinds the entire
// recursion, so no sibling branch of the cartesian product keeps
// enumerating after the budget is gone. An abort caused by the done
// channel sets Stats.Canceled.
func (r *Runner) applyMulti(ex *Explored, rule *Rule, cr *CompiledRules, st *searchState,
	rrefs []sourceRef, apply func(*Rule, []egraph.ClassID, pattern.Subst),
	lim Limits, deadline time.Time, done <-chan struct{}) (aborted bool) {

	g := ex.G
	matched := make([]egraph.ClassID, len(rrefs))
	visited := 0
	var rec func(i int, subst pattern.Subst)
	rec = func(i int, subst pattern.Subst) {
		if aborted {
			return
		}
		if g.NodeCount() >= lim.MaxNodes {
			aborted = true
			return
		}
		if visited++; visited%256 == 0 && (time.Now().After(deadline) || stopped(done)) {
			if stopped(done) {
				ex.Stats.Canceled = true
			} else {
				ex.Stats.HitTimeout = true
			}
			aborted = true
			return
		}
		if i == len(rrefs) {
			ex.Stats.Matches++
			apply(rule, append([]egraph.ClassID(nil), matched...), subst)
			return
		}
		ref := rrefs[i]
		prog := cr.pats[ref.pat].prog
		for _, m := range st.matches[ref.pat] {
			if aborted {
				return
			}
			ms := substFor(prog, ref.back, m)
			// COMPATIBLE: shared variables must map to the same e-class.
			merged := subst.Clone()
			ok := true
			for v, id := range ms {
				if prev, bound := merged[v]; bound {
					if g.Find(prev) != g.Find(id) {
						ok = false
						break
					}
					continue
				}
				merged[v] = id
			}
			if !ok {
				continue
			}
			matched[i] = m.Class
			rec(i+1, merged)
		}
	}
	rec(0, pattern.Subst{})
	return aborted
}
